"""GF(2) linear algebra: row reduction, complements, minimal bases."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.revtools import gf2


class TestParity:
    def test_parity(self):
        assert gf2.parity(0) == 0
        assert gf2.parity(1) == 1
        assert gf2.parity(0b1011) == 1
        assert gf2.parity(0b1111) == 0

    def test_apply_mask(self):
        # f = b47 ^ b35 ^ b23 (Figure 7's f0)
        mask = (1 << 47) | (1 << 35) | (1 << 23)
        assert gf2.apply_mask(mask, 1 << 47) == 1
        assert gf2.apply_mask(mask, (1 << 47) | (1 << 35)) == 0


class TestRowReduce:
    def test_removes_dependent_rows(self):
        rows = [0b110, 0b011, 0b101]  # third = first ^ second
        assert len(gf2.row_reduce(rows)) == 2

    def test_rank(self):
        assert gf2.rank([0b1, 0b10, 0b100]) == 3
        assert gf2.rank([0b11, 0b11]) == 1
        assert gf2.rank([0]) == 0

    def test_in_span(self):
        basis = gf2.row_reduce([0b110, 0b011])
        assert gf2.in_span(0b101, basis)
        assert gf2.in_span(0, basis)
        assert not gf2.in_span(0b1000, basis)


class TestComplement:
    def test_simple(self):
        # Vectors spanning {b0, b1} in width 3 -> complement is {b2}.
        comp = gf2.orthogonal_complement([0b001, 0b010], 3)
        assert comp == [0b100]

    def test_mixed(self):
        # span{b0^b1} in width 2 -> complement {b0^b1} itself.
        comp = gf2.orthogonal_complement([0b11], 2)
        assert gf2.row_reduce(comp) == [0b11]

    def test_dimension_theorem(self):
        rng = random.Random(1)
        width = 20
        vectors = [rng.getrandbits(width) for _ in range(8)]
        r = gf2.rank(vectors)
        comp = gf2.orthogonal_complement(vectors, width)
        assert len(comp) == width - r

    def test_every_complement_vector_annihilates(self):
        rng = random.Random(2)
        width = 32
        vectors = [rng.getrandbits(width) for _ in range(10)]
        comp = gf2.orthogonal_complement(vectors, width)
        for mask in comp:
            for v in vectors:
                assert gf2.parity(mask & v) == 0


class TestMinimalWeightBasis:
    def test_prefers_sparse_combination(self):
        # basis {b0^b1^b2, b1^b2} spans the same space as {b0, b1^b2};
        # the minimal-weight basis must find the single-bit function.
        basis = [0b111, 0b110]
        minimal = gf2.minimal_weight_basis(basis)
        assert 0b001 in minimal
        assert gf2.row_reduce(minimal) == gf2.row_reduce(basis)

    def test_max_weight_bound(self):
        basis = [0b11110000, 0b00001111]
        minimal = gf2.minimal_weight_basis(basis, max_weight=3)
        assert minimal == []  # nothing of weight <= 3 exists in the span

    def test_preserves_rank_when_unbounded(self):
        rng = random.Random(3)
        basis = gf2.row_reduce(rng.getrandbits(16) for _ in range(6))
        minimal = gf2.minimal_weight_basis(basis)
        assert gf2.rank(minimal) == len(basis)


class TestFormatting:
    def test_format_function(self):
        mask = (1 << 47) | (1 << 35) | (1 << 23)
        assert gf2.format_function(mask) == "b47 ^ b35 ^ b23"

    def test_mask_to_bits(self):
        assert gf2.mask_to_bits(0b1010) == [1, 3]


@given(st.lists(st.integers(min_value=0, max_value=(1 << 24) - 1),
                min_size=1, max_size=30))
@settings(max_examples=100)
def test_complement_dimension_property(vectors):
    width = 24
    comp = gf2.orthogonal_complement(vectors, width)
    assert len(comp) == width - gf2.rank(vectors)
    for mask in comp:
        for v in vectors:
            assert gf2.parity(mask & v) == 0


@given(st.lists(st.integers(min_value=1, max_value=(1 << 16) - 1),
                min_size=1, max_size=8))
@settings(max_examples=100)
def test_minimal_basis_spans_same_space(vectors):
    basis = gf2.row_reduce(vectors)
    minimal = gf2.minimal_weight_basis(basis)
    assert gf2.row_reduce(minimal) == basis
