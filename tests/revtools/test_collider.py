"""Collision sampling and function recovery against ground-truth functions.

The oracle here is built directly from Figure 7's functions; the
integration test against the simulated BTB lives in tests/integration.
"""

import random

import pytest

from repro.revtools import (brute_force_patterns, gf2, recover_functions,
                            sample_collisions, solve_alias_pattern)

# Figure 7 ground truth (Zen 3 cross-privilege functions).
ZEN3_FUNCTIONS = [
    (1 << 47) | (1 << 35) | (1 << 23),
    (1 << 47) | (1 << 36) | (1 << 24) | (1 << 12),
    (1 << 47) | (1 << 37) | (1 << 25) | (1 << 13),
    (1 << 47) | (1 << 38) | (1 << 26) | (1 << 14),
    (1 << 47) | (1 << 39) | (1 << 26) | (1 << 13),
    (1 << 47) | (1 << 39) | (1 << 27) | (1 << 15),
    (1 << 47) | (1 << 40) | (1 << 28) | (1 << 16),
    (1 << 47) | (1 << 41) | (1 << 29) | (1 << 17),
    (1 << 47) | (1 << 42) | (1 << 30) | (1 << 18),
    (1 << 47) | (1 << 43) | (1 << 31) | (1 << 19),
    (1 << 47) | (1 << 44) | (1 << 32) | (1 << 20),
    (1 << 47) | (1 << 45) | (1 << 33) | (1 << 21),
]

LOW12 = (1 << 12) - 1


def oracle(a: int, b: int) -> bool:
    """Ground-truth collision: same low 12 bits and equal functions."""
    if (a ^ b) & LOW12:
        return False
    return all(gf2.apply_mask(f, a) == gf2.apply_mask(f, b)
               for f in ZEN3_FUNCTIONS)


KERNEL_ADDR = 0xFFFF_FFFF_8120_0000 & ((1 << 48) - 1)


class TestPaperAliasMasks:
    """The two published Zen 3/4 alias patterns must satisfy the
    ground-truth functions (sanity of our transcription of Figure 7)."""

    @pytest.mark.parametrize("pattern", [
        0xFFFFBFF800000000, 0xFFFF8003FF800000,
    ])
    def test_published_masks_collide(self, pattern):
        low48 = pattern & ((1 << 48) - 1)
        assert oracle(KERNEL_ADDR, KERNEL_ADDR ^ low48)
        # And they cross the privilege boundary.
        assert (low48 >> 47) & 1


class TestSampling:
    def test_collision_rate_matches_function_count(self):
        """12 functions + pinned low bits -> ~2^-12 collision rate."""
        rng = random.Random(42)
        survey = sample_collisions(oracle, KERNEL_ADDR, samples=80_000,
                                   rng=rng)
        rate = len(survey.colliding) / survey.samples
        assert 0.5 / 4096 < rate < 2.0 / 4096

    def test_difference_vectors_have_zero_low_bits(self):
        rng = random.Random(43)
        survey = sample_collisions(oracle, KERNEL_ADDR, samples=30_000,
                                   rng=rng)
        for diff in survey.difference_vectors:
            assert diff & LOW12 == 0


class TestRecovery:
    @pytest.fixture(scope="class")
    def recovered(self):
        rng = random.Random(7)
        return recover_functions(oracle, [KERNEL_ADDR, KERNEL_ADDR ^ 0x40000],
                                 samples_per_addr=120_000, rng=rng)

    def test_recovers_full_function_space(self, recovered):
        assert gf2.row_reduce(recovered.masks) \
            == gf2.row_reduce(ZEN3_FUNCTIONS)

    def test_recovered_masks_are_sparse(self, recovered):
        assert all(gf2.popcount(m) <= 4 for m in recovered.masks)

    def test_alias_pattern_crosses_privilege(self, recovered):
        alias = recovered.alias_mask()
        assert alias >> 47 & 1
        assert oracle(KERNEL_ADDR, KERNEL_ADDR ^ alias)

    def test_solver_alias_for_ground_truth(self):
        alias = solve_alias_pattern(ZEN3_FUNCTIONS)
        assert alias >> 47 & 1
        assert alias & LOW12 == 0
        assert oracle(KERNEL_ADDR, KERNEL_ADDR ^ alias)

    def test_empty_data_yields_no_functions(self):
        result = recover_functions(lambda a, b: False, [KERNEL_ADDR],
                                   samples_per_addr=100,
                                   rng=random.Random(1))
        assert result.masks == []


class TestBruteForce:
    def test_small_flip_search_never_collides(self):
        """Reproduces the paper's negative result: a user-space alias of
        a Zen 3 kernel address (bit 47 flipped) needs every one of the
        12 functions repaired, which a small additional-flip budget
        cannot do."""
        result = brute_force_patterns(oracle, KERNEL_ADDR, max_bits=3)
        assert result.patterns == []
        assert result.exhausted

    def test_minimum_alias_weight_is_twelve(self):
        """The cheapest user alias (the published 0xffffbff8... pattern)
        flips 12 bits of the low 48; brute force below that fails, at
        that weight it succeeds."""
        pattern = 0xFFFFBFF800000000 & ((1 << 48) - 1)
        assert gf2.popcount(pattern) == 12
        assert oracle(KERNEL_ADDR, KERNEL_ADDR ^ pattern)

    def test_budget_respected(self):
        result = brute_force_patterns(oracle, KERNEL_ADDR, max_bits=6,
                                      budget=1000)
        assert result.tested == 1000
        assert not result.exhausted

    def test_finds_pattern_when_one_exists(self):
        """With a single weight-3 function involving bit 47 the brute
        force succeeds quickly."""
        simple = (1 << 47) | (1 << 13) | (1 << 14)

        def simple_oracle(a, b):
            diff = a ^ b
            return diff & LOW12 == 0 and gf2.parity(simple & diff) == 0

        result = brute_force_patterns(simple_oracle, KERNEL_ADDR,
                                      bit_range=(12, 15), max_bits=2,
                                      stop_after=1)
        assert result.patterns
        diff = result.patterns[0]
        assert gf2.parity(simple & diff) == 0
