"""BTBIndexing alias-mask solvers (kernel->user and user->user)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import BTBIndexing
from repro.params import VA_MASK
from repro.pipeline import (ALL_MICROARCHES, AMD_MICROARCHES,
                            INTEL_MICROARCHES, ZEN1, ZEN3)

KERNEL = 0xFFFF_FFFF_9234_5AC0 & VA_MASK
USER = 0x0000_5678_9ABC_D040


class TestKernelAliasMask:
    @pytest.mark.parametrize("uarch", AMD_MICROARCHES,
                             ids=lambda u: u.name)
    def test_solved_mask_collides(self, uarch):
        mask = uarch.btb.kernel_alias_mask()
        assert mask >> 47 & 1              # crosses the privilege bit
        assert mask & 0xFFF == 0           # preserves the set index
        alias = (KERNEL ^ mask) & VA_MASK
        assert alias >> 47 == 0            # lands in user space
        assert uarch.btb.collides(KERNEL, alias)

    @pytest.mark.parametrize("uarch", INTEL_MICROARCHES,
                             ids=lambda u: u.name)
    def test_intel_raises(self, uarch):
        with pytest.raises(ValueError):
            uarch.btb.kernel_alias_mask()

    def test_zen1_mask_is_cheap(self):
        """Retbleed-era folding: Zen 1/2 aliases need only 2 bit flips."""
        mask = ZEN1.btb.kernel_alias_mask()
        assert bin(mask).count("1") == 2

    def test_zen3_mask_is_expensive(self):
        """Figure 7: bit 47 is in every function, so the alias must
        repair all of them — many more flips."""
        mask = ZEN3.btb.kernel_alias_mask()
        assert bin(mask).count("1") >= 12


class TestUserAliasMask:
    @pytest.mark.parametrize("uarch", ALL_MICROARCHES,
                             ids=lambda u: u.name)
    def test_user_alias_collides_same_privilege(self, uarch):
        mask = uarch.btb.user_alias_mask()
        assert mask != 0
        assert mask >> 47 == 0
        assert mask & 0xFFF == 0
        alias = (USER ^ mask) & VA_MASK
        assert uarch.btb.collides(USER, alias)

    def test_user_alias_differs_from_kernel_alias(self):
        assert ZEN3.btb.user_alias_mask() != ZEN3.btb.kernel_alias_mask()


@given(st.integers(min_value=0, max_value=(1 << 47) - 1))
@settings(max_examples=100)
def test_user_alias_property(addr):
    """The user alias mask works for *every* user address."""
    idx = ZEN3.btb
    mask = idx.user_alias_mask()
    assert idx.collides(addr, addr ^ mask)
