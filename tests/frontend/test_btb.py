"""BTB: indexing functions, aliasing, entry semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import (BTB, BTBIndexing, ZEN1_ALIAS_PATTERN,
                            ZEN1_TAG_FUNCTIONS, ZEN3_ALIAS_PATTERNS,
                            ZEN3_BTB_FUNCTIONS)
from repro.isa import BranchKind
from repro.params import VA_MASK

KERNEL = 0xFFFF_FFFF_8112_3AC0 & VA_MASK


def zen3():
    return BTBIndexing("zen3", tag_functions=ZEN3_BTB_FUNCTIONS)


def zen1():
    return BTBIndexing("zen1", tag_functions=ZEN1_TAG_FUNCTIONS)


def intel():
    return BTBIndexing("intel", tag_functions=ZEN3_BTB_FUNCTIONS,
                       privilege_in_tag=True)


class TestIndexing:
    def test_identity_collision(self):
        assert zen3().collides(KERNEL, KERNEL)

    def test_low_bits_select_set(self):
        idx = zen3()
        set_a, _ = idx.index(KERNEL, True)
        assert set_a == KERNEL & 0xFFF
        assert not idx.collides(KERNEL, KERNEL ^ 0x40)

    @pytest.mark.parametrize("pattern", ZEN3_ALIAS_PATTERNS)
    def test_published_zen3_alias_patterns(self, pattern):
        """Both §6.2 masks produce user aliases of kernel addresses."""
        user = (KERNEL ^ pattern) & VA_MASK
        assert not user >> 47  # user-space address
        assert zen3().collides(KERNEL, user, kernel_a=True, kernel_b=False)

    def test_zen1_alias_pattern(self):
        user = (KERNEL ^ ZEN1_ALIAS_PATTERN) & VA_MASK
        assert not user >> 47
        assert zen1().collides(KERNEL, user)

    def test_zen1_pattern_does_not_work_on_zen3(self):
        user = (KERNEL ^ ZEN1_ALIAS_PATTERN) & VA_MASK
        assert not zen3().collides(KERNEL, user)

    def test_intel_privilege_separation(self):
        """Intel mixes privilege into the tag: the same alias pattern
        fails across privilege but works within one privilege level."""
        user = (KERNEL ^ ZEN3_ALIAS_PATTERNS[0]) & VA_MASK
        idx = intel()
        assert not idx.collides(KERNEL, user, kernel_a=True, kernel_b=False)
        assert idx.collides(KERNEL, user, kernel_a=True, kernel_b=True)

    def test_single_bit_flips_never_collide_zen3(self):
        idx = zen3()
        for bit in range(12, 48):
            assert not idx.collides(KERNEL, KERNEL ^ (1 << bit))


class TestEntries:
    def test_train_and_lookup(self):
        btb = BTB(zen3())
        btb.train(0x401000, BranchKind.INDIRECT, 0x555000,
                  kernel_mode=False)
        entry = btb.lookup(0x401000, kernel_mode=False)
        assert entry is not None
        assert entry.kind is BranchKind.INDIRECT
        assert entry.predicted_target(0x401000) == 0x555000

    def test_cross_privilege_reuse(self):
        """User-trained entry serves an aliased kernel source (the core
        of the user->kernel attacks)."""
        btb = BTB(zen3())
        user_src = (KERNEL ^ ZEN3_ALIAS_PATTERNS[0]) & VA_MASK
        btb.train(user_src, BranchKind.INDIRECT, 0x555000,
                  kernel_mode=False)
        entry = btb.lookup(KERNEL, kernel_mode=True)
        assert entry is not None
        assert entry.kind is BranchKind.INDIRECT

    def test_direct_branches_stored_pc_relative(self):
        """Figure 5 A: a jmp-trained entry serves target C' = B + (C-A)."""
        btb = BTB(zen3())
        train_src, train_target = 0x40_1000, 0x40_3000
        btb.train(train_src, BranchKind.DIRECT, train_target,
                  kernel_mode=False)
        # XOR of the two published patterns is a user->user alias mask
        # (bit 47 flips twice, every function stays preserved).
        victim_src = (train_src ^ ZEN3_ALIAS_PATTERNS[0]
                      ^ ZEN3_ALIAS_PATTERNS[1]) & VA_MASK
        entry = btb.lookup(victim_src, kernel_mode=False)
        assert entry is not None
        assert entry.predicted_target(victim_src) \
            == victim_src + (train_target - train_src)

    def test_indirect_branches_stored_absolute(self):
        btb = BTB(zen3())
        btb.train(0x40_1000, BranchKind.INDIRECT, 0x66_0000,
                  kernel_mode=False)
        victim = (0x40_1000 ^ ZEN3_ALIAS_PATTERNS[0]
                  ^ ZEN3_ALIAS_PATTERNS[1]) & VA_MASK
        entry = btb.lookup(victim, kernel_mode=False)
        assert entry.predicted_target(victim) == 0x66_0000

    def test_training_non_branch_rejected(self):
        btb = BTB(zen3())
        with pytest.raises(ValueError):
            btb.train(0x1000, BranchKind.NONE, 0x2000, kernel_mode=False)

    def test_evict(self):
        btb = BTB(zen3())
        btb.train(0x1000, BranchKind.DIRECT, 0x2000, kernel_mode=False)
        btb.evict(0x1000, kernel_mode=False)
        assert btb.lookup(0x1000, kernel_mode=False) is None

    def test_flush(self):
        btb = BTB(zen3())
        btb.train(0x1000, BranchKind.DIRECT, 0x2000, kernel_mode=False)
        btb.flush()
        assert len(btb) == 0

    def test_scan_block_ordering(self):
        btb = BTB(zen3())
        btb.train(0x1010, BranchKind.DIRECT, 0x2000, kernel_mode=False)
        btb.train(0x1004, BranchKind.RETURN, 0x3000, kernel_mode=False)
        sources = [pc for pc, _ in
                   btb.scan_block(0x1000, 32, kernel_mode=False)]
        assert sources == [0x1004, 0x1010]

    def test_scan_block_misses_other_blocks(self):
        btb = BTB(zen3())
        btb.train(0x1040, BranchKind.DIRECT, 0x2000, kernel_mode=False)
        assert btb.scan_block(0x1000, 32, kernel_mode=False) == []


@given(st.integers(min_value=0, max_value=(1 << 48) - 1),
       st.integers(min_value=0, max_value=(1 << 48) - 1))
@settings(max_examples=300)
def test_collision_is_equivalence(a, b):
    """Property: collides() is symmetric, and XOR-linearity holds —
    a ~ b iff (a ^ b) is a kernel-of-functions vector with equal low bits."""
    idx = zen3()
    assert idx.collides(a, a)
    assert idx.collides(a, b) == idx.collides(b, a)
    if idx.collides(a, b):
        diff = a ^ b
        assert diff & 0xFFF == 0
        shifted = (KERNEL ^ diff) & VA_MASK
        assert idx.collides(KERNEL, shifted)
