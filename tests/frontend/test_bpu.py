"""BPU integration: prediction resolution and training."""

import pytest

from repro.frontend import BPU, BTBIndexing, ZEN3_BTB_FUNCTIONS
from repro.isa import BranchKind


@pytest.fixture
def bpu():
    return BPU(BTBIndexing("zen3", tag_functions=ZEN3_BTB_FUNCTIONS))


class TestPrediction:
    def test_empty_bpu_predicts_nothing(self, bpu):
        assert bpu.predict_in_block(0x1000, 32, kernel_mode=False) is None

    def test_trained_branch_predicted(self, bpu):
        bpu.train_branch(0x1010, BranchKind.INDIRECT, 0x5000, True,
                         kernel_mode=False)
        pred = bpu.predict_in_block(0x1000, 32, kernel_mode=False)
        assert pred is not None
        assert pred.source_pc == 0x1010
        assert pred.kind is BranchKind.INDIRECT
        assert pred.target == 0x5000

    def test_from_pc_skips_earlier_sources(self, bpu):
        bpu.train_branch(0x1004, BranchKind.DIRECT, 0x5000, True,
                         kernel_mode=False)
        bpu.train_branch(0x1018, BranchKind.DIRECT, 0x6000, True,
                         kernel_mode=False)
        pred = bpu.predict_in_block(0x1000, 32, kernel_mode=False,
                                    from_pc=0x1008)
        assert pred.source_pc == 0x1018

    def test_not_taken_training_no_redirect(self, bpu):
        """A conditional trained not-taken yields no redirect even though
        a BTB entry exists."""
        bpu.train_branch(0x1010, BranchKind.CONDITIONAL, 0x5000, True,
                         kernel_mode=False)
        # PHT still weakly not-taken after one taken update.
        for _ in range(4):
            bpu.train_branch(0x1010, BranchKind.CONDITIONAL, 0x5000, False,
                             kernel_mode=False)
        assert bpu.predict_in_block(0x1000, 32, kernel_mode=False) is None

    def test_conditional_predicted_taken_after_training(self, bpu):
        for _ in range(3):
            bpu.train_branch(0x1010, BranchKind.CONDITIONAL, 0x5000, True,
                             kernel_mode=False)
        pred = bpu.predict_in_block(0x1000, 32, kernel_mode=False)
        assert pred is not None and pred.target == 0x5000

    def test_return_prediction_uses_rsb(self, bpu):
        bpu.train_branch(0x1010, BranchKind.RETURN, 0xDEAD, True,
                         kernel_mode=False)
        assert bpu.predict_in_block(0x1000, 32, kernel_mode=False) is None
        bpu.call_executed(0x7777)
        pred = bpu.predict_in_block(0x1000, 32, kernel_mode=False)
        assert pred.from_rsb
        assert pred.target == 0x7777

    def test_cross_privilege_flag(self, bpu):
        bpu.train_branch(0x1010, BranchKind.INDIRECT, 0x5000, True,
                         kernel_mode=False)
        pred_user = bpu.predict_at(0x1010, kernel_mode=False)
        assert not pred_user.cross_privilege
        # Look up the same (non-aliased here, same address) entry from
        # kernel mode: flag set.
        pred_kernel = bpu.predict_at(0x1010, kernel_mode=True)
        assert pred_kernel.cross_privilege

    def test_untaken_branch_not_installed(self, bpu):
        bpu.train_branch(0x1010, BranchKind.CONDITIONAL, 0x5000, False,
                         kernel_mode=False)
        assert bpu.btb.lookup(0x1010, kernel_mode=False) is None


class TestTrainingSideEffects:
    def test_call_ret_rsb_flow(self, bpu):
        bpu.call_executed(0x2005)
        assert bpu.ret_executed() == 0x2005
        assert bpu.ret_executed() is None

    def test_ibpb_flushes_everything(self, bpu):
        bpu.train_branch(0x1010, BranchKind.INDIRECT, 0x5000, True,
                         kernel_mode=False)
        bpu.call_executed(0x42)
        bpu.ibpb()
        assert bpu.predict_in_block(0x1000, 32, kernel_mode=False) is None
        assert bpu.ret_executed() is None
