"""RSB, conditional predictor, BHB, µop cache unit tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import BHB, RSB, ConditionalPredictor, UopCache


class TestRSB:
    def test_lifo_order(self):
        rsb = RSB()
        rsb.push(0x100)
        rsb.push(0x200)
        assert rsb.pop() == 0x200
        assert rsb.pop() == 0x100

    def test_underflow_returns_none(self):
        rsb = RSB()
        assert rsb.pop() is None
        assert rsb.underflows == 1

    def test_overflow_drops_oldest(self):
        rsb = RSB(depth=4)
        for i in range(6):
            rsb.push(i)
        assert rsb.overflows == 2
        assert len(rsb) == 4
        assert rsb.pop() == 5

    def test_peek_does_not_pop(self):
        rsb = RSB()
        rsb.push(0x42)
        assert rsb.peek() == 0x42
        assert len(rsb) == 1

    def test_clear(self):
        rsb = RSB()
        rsb.push(1)
        rsb.clear()
        assert rsb.peek() is None

    def test_bad_depth(self):
        with pytest.raises(ValueError):
            RSB(depth=0)

    @given(st.lists(st.integers(min_value=0, max_value=1 << 48),
                    min_size=1, max_size=40))
    @settings(max_examples=100)
    def test_matched_push_pop_is_stack(self, addrs):
        rsb = RSB(depth=64)
        for a in addrs:
            rsb.push(a)
        for a in reversed(addrs):
            assert rsb.pop() == a


class TestConditionalPredictor:
    def test_initial_prediction_not_taken(self):
        assert not ConditionalPredictor().predict(0x1234)

    def test_training_toward_taken(self):
        pht = ConditionalPredictor()
        pht.update(0x1234, True)
        assert not pht.predict(0x1234)  # weakly not-taken now
        pht.update(0x1234, True)
        assert pht.predict(0x1234)      # crossed into taken

    def test_hysteresis(self):
        pht = ConditionalPredictor()
        for _ in range(4):
            pht.update(0x40, True)
        pht.update(0x40, False)
        assert pht.predict(0x40)  # one not-taken doesn't flip a saturated ctr

    def test_distinct_pcs_independent(self):
        pht = ConditionalPredictor()
        for _ in range(3):
            pht.update(0x40, True)
        assert not pht.predict(0x41)

    def test_clear(self):
        pht = ConditionalPredictor()
        for _ in range(3):
            pht.update(0x40, True)
        pht.clear()
        assert not pht.predict(0x40)

    def test_bad_size(self):
        with pytest.raises(ValueError):
            ConditionalPredictor(entries=1000)


class TestBHB:
    def test_update_changes_value(self):
        bhb = BHB()
        before = bhb.snapshot()
        bhb.update(0x400000, 0x401000)
        assert bhb.snapshot() != before

    def test_deterministic(self):
        a, b = BHB(), BHB()
        for edge in [(0x1, 0x2), (0x40, 0x80)]:
            a.update(*edge)
            b.update(*edge)
        assert a.snapshot() == b.snapshot()

    def test_order_sensitive(self):
        a, b = BHB(), BHB()
        a.update(0x1000, 0x2000)
        a.update(0x3000, 0x4000)
        b.update(0x3000, 0x4000)
        b.update(0x1000, 0x2000)
        assert a.snapshot() != b.snapshot()

    def test_restore(self):
        bhb = BHB()
        bhb.update(0x1, 0x2)
        saved = bhb.snapshot()
        bhb.update(0x3, 0x4)
        bhb.restore(saved)
        assert bhb.snapshot() == saved

    def test_clear(self):
        bhb = BHB()
        bhb.update(0x1, 0x2)
        bhb.clear()
        assert bhb.snapshot() == 0


class TestUopCache:
    def test_geometry(self):
        uc = UopCache()
        assert uc.set_index(0x000) == 0
        assert uc.set_index(0x040) == 1
        assert uc.set_index(0xFC0) == 63
        assert uc.set_index(0x1000) == 0  # wraps: VA[6:12) only

    def test_page_offset_aliasing(self):
        """Addresses one page apart share a set — the property the
        jmp-series priming in Figure 5 B exploits."""
        uc = UopCache()
        assert uc.set_index(0x5AC0) == uc.set_index(0x7AC0)

    def test_miss_then_hit_counts(self):
        uc = UopCache()
        assert not uc.access(0x1000)
        assert uc.access(0x1000)
        assert uc.miss_events == 1
        assert uc.hit_events == 1

    def test_priming_and_eviction(self):
        """Fill a set with 8 windows 4096 bytes apart (the jmp-series),
        then a speculative fill of a 9th aliasing window evicts one."""
        uc = UopCache()
        series = [0xAC0 + i * 4096 for i in range(8)]
        for va in series:
            uc.access(va)
        uc.reset_counters()
        uc.fill(0x30AC0)  # phantom target decode
        # Probe MRU-first to avoid the classic LRU self-eviction cascade.
        hits = sum(uc.access(va) for va in reversed(series))
        assert hits == 7  # one way was evicted

    def test_no_eviction_when_offsets_differ(self):
        uc = UopCache()
        series = [0xAC0 + i * 4096 for i in range(8)]
        for va in series:
            uc.access(va)
        uc.reset_counters()
        uc.fill(0x30B00)  # different page offset -> different set
        hits = sum(uc.access(va) for va in series)
        assert hits == 8

    def test_fill_does_not_count_dispatch_events(self):
        uc = UopCache()
        uc.fill(0x2000)
        assert uc.miss_events == 0 and uc.hit_events == 0
        assert uc.lookup(0x2000)

    def test_invalidate_window(self):
        uc = UopCache()
        uc.access(0x2000)
        uc.invalidate_window(0x2000)
        assert not uc.lookup(0x2000)
