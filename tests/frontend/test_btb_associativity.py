"""BTB set-associativity: capacity, LRU eviction, injection survival."""

import pytest

from repro.frontend import BTB, BTBIndexing, ZEN3_BTB_FUNCTIONS
from repro.isa import BranchKind


def make_btb(ways=4):
    return BTB(BTBIndexing("zen3", tag_functions=ZEN3_BTB_FUNCTIONS),
               ways=ways)


def same_set_sources(btb, count, base=0x40_0AC0):
    """Addresses sharing a BTB set (equal low 12 bits) with distinct
    tags."""
    sources = []
    addr = base
    while len(sources) < count:
        set_a, tag_a = btb.indexing.index(addr, False)
        if all(btb.indexing.index(other, False)[1] != tag_a
               for other in sources):
            sources.append(addr)
        addr += 0x1000
    return sources


class TestAssociativity:
    def test_entries_within_ways_coexist(self):
        btb = make_btb(ways=4)
        sources = same_set_sources(btb, 4)
        for src in sources:
            btb.train(src, BranchKind.DIRECT, src + 0x100,
                      kernel_mode=False)
        for src in sources:
            assert btb.lookup(src, kernel_mode=False) is not None

    def test_capacity_evicts_lru(self):
        btb = make_btb(ways=4)
        sources = same_set_sources(btb, 5)
        for src in sources[:4]:
            btb.train(src, BranchKind.DIRECT, src + 0x100,
                      kernel_mode=False)
        # Refresh the first entry, then overflow the set.
        btb.lookup(sources[0], kernel_mode=False)
        btb.train(sources[4], BranchKind.DIRECT, sources[4] + 0x100,
                  kernel_mode=False)
        assert btb.lookup(sources[0], kernel_mode=False) is not None
        assert btb.lookup(sources[1], kernel_mode=False) is None
        assert btb.evictions == 1

    def test_injection_evicted_by_branch_pressure(self):
        """The paper's §7.4 failure mode: enough same-set branch
        activity silently drops an injected prediction — which is why
        exploits re-inject every round."""
        btb = make_btb(ways=4)
        sources = same_set_sources(btb, 5)
        injected = sources[0]
        btb.train(injected, BranchKind.INDIRECT, 0x6000,
                  kernel_mode=False)
        for src in sources[1:]:
            btb.train(src, BranchKind.DIRECT, src + 0x40,
                      kernel_mode=False)
        assert btb.lookup(injected, kernel_mode=False) is None

    def test_different_sets_do_not_interfere(self):
        btb = make_btb(ways=1)
        btb.train(0x40_0AC0, BranchKind.DIRECT, 0x41_0000,
                  kernel_mode=False)
        btb.train(0x40_0B00, BranchKind.DIRECT, 0x41_0100,
                  kernel_mode=False)
        assert btb.lookup(0x40_0AC0, kernel_mode=False) is not None
        assert btb.lookup(0x40_0B00, kernel_mode=False) is not None

    def test_retrain_same_source_updates_in_place(self):
        btb = make_btb(ways=2)
        btb.train(0x40_0AC0, BranchKind.DIRECT, 0x41_0000,
                  kernel_mode=False)
        btb.train(0x40_0AC0, BranchKind.INDIRECT, 0x42_0000,
                  kernel_mode=False)
        entry = btb.lookup(0x40_0AC0, kernel_mode=False)
        assert entry.kind is BranchKind.INDIRECT
        assert len(btb) == 1

    def test_bad_ways(self):
        with pytest.raises(ValueError):
            make_btb(ways=0)

    def test_set_occupancy(self):
        btb = make_btb(ways=4)
        sources = same_set_sources(btb, 3)
        for src in sources:
            btb.train(src, BranchKind.DIRECT, src + 0x40,
                      kernel_mode=False)
        set_index, _ = btb.indexing.index(sources[0], False)
        assert btb.set_occupancy(set_index) == 3
        assert btb.set_occupancy(set_index ^ 1) == 0
