"""The repro.api facade: every promised name, nothing dangling.

The facade is the import surface examples and downstream code build
on; this pins that every ``__all__`` entry resolves and that the
re-exports are the same objects the subsystems define (not copies).
"""

import repro.api as api


def test_all_names_resolve():
    assert len(api.__all__) == len(set(api.__all__))
    for name in api.__all__:
        assert getattr(api, name) is not None


def test_reexports_are_identities():
    from repro.core.experiment import Experiment
    from repro.kernel import Machine, MachineSpec
    from repro.resilience import spec_fingerprint
    from repro.runner import (CampaignOptions, CampaignResult, JobSpec,
                              manifest_fingerprint, run_campaign)
    from repro.service import (ResultStore, ServiceClient,
                               run_campaign_memoized)
    from repro.telemetry import RunManifest, enable_metrics

    assert api.Experiment is Experiment
    assert api.Machine is Machine
    assert api.MachineSpec is MachineSpec
    assert api.spec_fingerprint is spec_fingerprint
    assert api.CampaignOptions is CampaignOptions
    assert api.CampaignResult is CampaignResult
    assert api.JobSpec is JobSpec
    assert api.manifest_fingerprint is manifest_fingerprint
    assert api.run_campaign is run_campaign
    assert api.ResultStore is ResultStore
    assert api.ServiceClient is ServiceClient
    assert api.run_campaign_memoized is run_campaign_memoized
    assert api.RunManifest is RunManifest
    assert api.enable_metrics is enable_metrics


def test_facade_is_sufficient_to_boot_a_machine():
    """The quickstart path works through the facade alone."""
    machine = api.MachineSpec(uarch="zen 2").boot()
    assert machine.uarch.name == "Zen 2"
