"""Crash recovery end to end, in-process: journal → replay → identical.

These tests simulate the crash honestly: service A admits campaigns
(journaled write-ahead) and is then simply *abandoned* — no drain, no
terminal records, exactly what SIGKILL leaves behind.  Service B boots
on the same state dir and must recover: re-enqueue in admission order,
answer every pre-crash job from the content-addressed store, produce
fingerprint-identical manifests, and honor idempotency keys across the
restart.  The subprocess SIGKILL variant of the same contract lives in
``repro chaos --service`` (exercised by the CI crash smoke); these
stay in-process so they run in seconds under plain pytest.
"""

import asyncio
import json

import pytest

from repro.runner import manifest_fingerprint, run_campaign
from repro.service import (CampaignService, JOB_REQUEST_SCHEMA, JobRequest,
                           ResultStore, ServiceConfig, TenantPolicy,
                           Unavailable, error_from_doc)
from repro.telemetry import REGISTRY


def _config(tmp_path, **kw):
    defaults = dict(
        port=0, store_dir=str(tmp_path / "store"),
        state_dir=str(tmp_path / "state"), jobs=1,
        policy=TenantPolicy(rate_per_s=1000.0, burst=2000,
                            max_active_campaigns=100))
    defaults.update(kw)
    return ServiceConfig(**defaults)


def _matrix_doc(cells=2, seed=0, tenant="alice", key=None):
    doc = {"schema": JOB_REQUEST_SCHEMA, "tenant": tenant,
           "experiment": "matrix",
           "params": {"uarches": ["zen 2"], "cells": cells,
                      "seed": seed}}
    if key is not None:
        doc["idempotency_key"] = key
    return doc


def _clean_fingerprint(doc):
    experiment = JobRequest.from_doc(doc).build()
    return manifest_fingerprint(
        run_campaign(experiment, jobs=1).raise_on_failure().manifest)


def _crash_after_submitting(config, docs):
    """Service A: admit *docs* (journaled), then vanish without drain.

    ``submit_doc`` is synchronous on purpose (the loop only *runs*
    campaigns), so the crash side needs no event loop at all — just
    like a SIGKILL needs no cooperation from its victim.
    """
    service = CampaignService(config)
    service.lifecycle.transition("ready")
    ids = [service.submit_doc(doc).id for doc in docs]
    service.journal.close()      # the fd would not survive a real crash
    return ids


def _recover_and_finish(config, waited_ids):
    """Service B: boot on the same state dir, run recovery to the end."""
    service = CampaignService(config)

    async def drive():
        await service.start()
        for campaign_id in waited_ids:
            await asyncio.wait_for(
                service.campaigns[campaign_id].done.wait(), timeout=180)
        await service.close()

    asyncio.run(drive())
    return service


def test_recovery_requeues_in_admission_order_and_matches_clean(tmp_path):
    config = _config(tmp_path)
    docs = [_matrix_doc(cells=2, seed=0), _matrix_doc(cells=3, seed=1)]
    ids = _crash_after_submitting(config, docs)

    service = _recover_and_finish(config, ids)
    assert service.recovered_count == 2
    records = [service.campaigns[campaign_id] for campaign_id in ids]
    assert [r.seq for r in records] == [1, 2]
    assert all(r.state == "done" and r.recovered for r in records)
    for doc, record in zip(docs, records):
        assert manifest_fingerprint(record.manifest) \
            == _clean_fingerprint(doc)
        assert record.status_doc()["recovered"] is True


def test_recovery_answers_precrash_jobs_from_store(tmp_path):
    """The zero-duplicate-execution half of the contract: jobs that
    finished before the crash come back as memo hits, never re-runs."""
    config = _config(tmp_path)
    doc = _matrix_doc(cells=4)
    [campaign_id] = _crash_after_submitting(config, [doc])

    # Simulate two jobs having completed (and been banked) pre-crash.
    experiment = JobRequest.from_doc(doc).build()
    reference = run_campaign(experiment, jobs=1).raise_on_failure()
    store = ResultStore(config.store_dir)
    for result in reference.results[:2]:
        assert store.put(result.spec, result)

    service = _recover_and_finish(config, [campaign_id])
    record = service.campaigns[campaign_id]
    assert record.state == "done"
    assert record.memo["hits"] == 2 and record.memo["stored"] == 2
    assert manifest_fingerprint(record.manifest) \
        == manifest_fingerprint(reference.manifest)
    # the recovery lineage is recorded, and stripped by fingerprint
    assert record.manifest["outcome"]["resume"]["from"] \
        .startswith("recovery:")


def test_finished_campaigns_survive_restart_without_rerunning(tmp_path):
    config = _config(tmp_path)
    doc = _matrix_doc(cells=2)

    first = CampaignService(config)

    async def run_to_done():
        await first.start()
        record = first.submit_doc(doc)
        await asyncio.wait_for(record.done.wait(), timeout=180)
        await first.close()
        return record

    done_record = asyncio.run(run_to_done())
    assert done_record.state == "done"
    REGISTRY.enable()
    jobs_before = REGISTRY.counter("service.jobs_served").value

    second = _recover_and_finish(config, [])
    assert second.recovered_count == 0      # nothing to re-enqueue
    revived = second.campaigns[done_record.id]
    assert revived.state == "done" and revived.done.is_set()
    assert revived.memo == done_record.memo
    assert manifest_fingerprint(revived.manifest) \
        == manifest_fingerprint(done_record.manifest)
    # recovery registered the record; it did not execute anything
    assert REGISTRY.counter("service.jobs_served").value == jobs_before


def test_idempotency_key_survives_the_crash(tmp_path):
    config = _config(tmp_path)
    doc = _matrix_doc(cells=2, key="retry-handle-1")
    [original] = _crash_after_submitting(config, [doc])

    service = _recover_and_finish(config, [original])

    async def resubmit():
        return service.submit_doc(doc)

    service.lifecycle.state = "ready"       # close() left it mid-flight
    REGISTRY.enable()
    replay = asyncio.run(resubmit())
    assert replay.id == original
    assert REGISTRY.counter("service.idempotent_replays").value == 1


def test_idempotent_resubmit_same_instance(tmp_path):
    config = _config(tmp_path)
    service = CampaignService(config)
    service.lifecycle.transition("ready")
    first = service.submit_doc(_matrix_doc(key="k1"))
    again = service.submit_doc(_matrix_doc(key="k1"))
    assert again is first
    # same work, different key: a distinct submission on purpose
    other = service.submit_doc(_matrix_doc(key="k2"))
    assert other.id != first.id
    # no key: every resubmission runs (the pre-existing behaviour)
    assert service.submit_doc(_matrix_doc()).id \
        != service.submit_doc(_matrix_doc()).id
    service.journal.close()


def test_recovery_skips_undecodable_requests_and_fails_unbuildable(
        tmp_path):
    config = _config(tmp_path)
    [good] = _crash_after_submitting(config, [_matrix_doc(cells=2)])
    # hand-append two poisoned admitted records: one whose request no
    # longer parses (protocol drift), one that parses but cannot build
    with open(config.state_dir + "/intake.jsonl", "a") as fh:
        fh.write(json.dumps({
            "schema": "phantom.intake/1", "campaign_id": "c000098-dead",
            "seq": 98, "state": "admitted",
            "request": {"schema": "phantom.job-request/1",
                        "tenant": "bob", "experiment": "warp-drive"},
        }) + "\n")
        fh.write(json.dumps({
            "schema": "phantom.intake/1", "campaign_id": "c000099-dead",
            "seq": 99, "state": "admitted", "tenant": "bob",
            "request": {"schema": "phantom.job-request/1",
                        "tenant": "bob", "experiment": "matrix",
                        "params": {"cells": -4}},
        }) + "\n")

    service = _recover_and_finish(config, [good])
    assert service.campaigns[good].state == "done"
    assert "c000098-dead" not in service.campaigns      # skipped
    poisoned = service.campaigns["c000099-dead"]        # failed, visible
    assert poisoned.state == "failed" and poisoned.done.is_set()
    assert poisoned.error["error"] == "bad_request"
    # ids keep counting from the journal's high-water mark (the closed
    # journal degrades with a warning; the submit itself still works)
    service.lifecycle.state = "ready"
    with pytest.warns(RuntimeWarning, match="intake journal"):
        assert service.submit_doc(_matrix_doc()).seq == 100


# -- lifecycle: drain, queue-full, readiness ---------------------------------

def test_drain_rejects_new_work_with_typed_503(tmp_path):
    config = _config(tmp_path)
    service = CampaignService(config)

    async def drive():
        await service.start()
        assert service.lifecycle.state == "ready"
        await service.drain()
        assert service.lifecycle.state == "stopped"
        with pytest.raises(Unavailable) as excinfo:
            service.submit_doc(_matrix_doc())
        return excinfo.value

    error = asyncio.run(drive())
    assert error.http_status == 503
    assert error.retry_after_s > 0
    assert error.details["state"] == "stopped"
    # drain is idempotent: a second SIGTERM must be harmless
    asyncio.run(service.drain())


def test_queue_full_rejection_carries_backlog_retry_after(tmp_path):
    """Satellite: Retry-After from queue depth x mean campaign wall
    time, carried through the wire document back into a client-side
    typed error."""
    config = _config(tmp_path, max_queue=2, default_wall_s=7.0)
    service = CampaignService(config)
    service.lifecycle.transition("ready")    # no runner: queue only fills
    service.submit_doc(_matrix_doc(seed=1))
    service.submit_doc(_matrix_doc(seed=2))
    with pytest.raises(Unavailable) as excinfo:
        service.submit_doc(_matrix_doc(seed=3))
    error = excinfo.value
    assert error.http_status == 503
    # 2 queued campaigns x the 7s prior (no wall-time samples yet)
    assert error.retry_after_s == pytest.approx(14.0)
    assert error.details["queue_depth"] == 2
    assert error.details["max_queue"] == 2

    # the hint survives the wire round trip for any error code
    revived = error_from_doc(json.loads(json.dumps(error.to_doc())),
                             http_status=503)
    assert isinstance(revived, Unavailable)
    assert revived.retry_after_s == pytest.approx(14.0)
    service.journal.close()


def test_mean_wall_time_feeds_the_backlog_hint(tmp_path):
    config = _config(tmp_path, max_queue=1, default_wall_s=30.0)
    service = CampaignService(config)
    service.lifecycle.transition("ready")
    service._wall_times.extend([2.0, 4.0])   # two finished campaigns
    service.submit_doc(_matrix_doc(seed=1))
    with pytest.raises(Unavailable) as excinfo:
        service.submit_doc(_matrix_doc(seed=2))
    assert excinfo.value.retry_after_s == pytest.approx(3.0)  # 1 x mean
    service.journal.close()


def test_readyz_is_distinct_from_healthz(tmp_path):
    config = _config(tmp_path)
    service = CampaignService(config)
    status, doc = service.ready_doc()
    assert status == 503 and doc["lifecycle"] == "starting"
    assert service.health_doc()["status"] == "ok"    # alive regardless

    service.lifecycle.transition("ready")
    status, doc = service.ready_doc()
    assert status == 200 and doc["status"] == "ready"

    service.lifecycle.transition("draining")
    status, doc = service.ready_doc()
    assert status == 503 and doc["lifecycle"] == "draining"
    assert service.health_doc()["status"] == "ok"
    assert service.health_doc()["lifecycle"] == "draining"
    service.journal.close()


def test_recovery_restores_quota_accounting(tmp_path):
    config = _config(tmp_path)
    [campaign_id] = _crash_after_submitting(
        config, [_matrix_doc(cells=2, tenant="carol")])

    service = CampaignService(config)
    service.lifecycle.transition("recovering")
    service.recover()
    snapshot = service.quotas.snapshot()["carol"]
    assert snapshot["active_campaigns"] == 1
    assert snapshot["total_jobs"] == 2

    async def finish():
        service.lifecycle.transition("ready")
        service._runner_task = asyncio.ensure_future(service._drain())
        await asyncio.wait_for(
            service.campaigns[campaign_id].done.wait(), timeout=180)
        await service.close()

    asyncio.run(finish())
    assert service.quotas.snapshot()["carol"]["active_campaigns"] == 0
