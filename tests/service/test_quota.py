"""Admission control: token-bucket arithmetic under a fake clock,
typed quota rejections, and state accounting."""

import pytest

from repro.service import (QuotaExceeded, QuotaManager, RateLimited,
                           TenantPolicy, TokenBucket)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_token_bucket_burst_then_refill():
    clock = FakeClock()
    bucket = TokenBucket(rate_per_s=2.0, burst=3, clock=clock)
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() == 0.0
    retry = bucket.try_acquire()
    assert retry == pytest.approx(0.5)      # 1 token at 2/s
    clock.advance(0.25)                      # only half a token back
    assert bucket.try_acquire() == pytest.approx(0.25)
    clock.advance(0.25)
    assert bucket.try_acquire() == 0.0       # exactly refilled
    clock.advance(100.0)
    for _ in range(3):                       # capped at burst, not 200
        assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() > 0.0


def test_rejection_takes_nothing():
    clock = FakeClock()
    bucket = TokenBucket(rate_per_s=1.0, burst=1, clock=clock)
    assert bucket.try_acquire() == 0.0
    first = bucket.try_acquire()
    second = bucket.try_acquire()
    assert first == second == pytest.approx(1.0)


def _manager(clock, **policy):
    return QuotaManager(TenantPolicy(**policy), clock=clock)


def test_rate_limit_is_typed_with_retry_after():
    clock = FakeClock()
    quotas = _manager(clock, rate_per_s=1.0, burst=1)
    quotas.admit("alice", 4)
    with pytest.raises(RateLimited) as info:
        quotas.admit("alice", 4)
    assert info.value.code == "rate_limited"
    assert info.value.http_status == 429
    assert info.value.retry_after_s == pytest.approx(1.0)
    assert info.value.to_doc()["details"]["retry_after_s"] \
        == pytest.approx(1.0)
    clock.advance(1.0)
    quotas.admit("alice", 4)     # refilled


def test_per_campaign_job_ceiling():
    quotas = _manager(FakeClock(), max_jobs_per_campaign=10)
    with pytest.raises(QuotaExceeded) as info:
        quotas.admit("alice", 11)
    assert info.value.http_status == 403
    assert info.value.to_doc()["details"]["max_jobs_per_campaign"] == 10
    quotas.admit("alice", 10)    # the rejection consumed nothing


def test_active_campaign_limit_and_release():
    quotas = _manager(FakeClock(), max_active_campaigns=2,
                      rate_per_s=1000.0, burst=1000)
    quotas.admit("alice", 1)
    quotas.admit("alice", 1)
    with pytest.raises(QuotaExceeded):
        quotas.admit("alice", 1)
    quotas.release("alice")
    quotas.admit("alice", 1)


def test_cumulative_job_budget():
    quotas = _manager(FakeClock(), max_total_jobs=10,
                      rate_per_s=1000.0, burst=1000)
    quotas.admit("alice", 6)
    quotas.release("alice")
    with pytest.raises(QuotaExceeded):      # 6 + 6 > 10, forever
        quotas.admit("alice", 6)
    quotas.admit("alice", 4)                 # 6 + 4 == 10 fits


def test_tenants_are_isolated_and_overrides_apply():
    clock = FakeClock()
    quotas = QuotaManager(
        TenantPolicy(rate_per_s=1000.0, burst=1000,
                     max_active_campaigns=100),
        overrides={"throttled": TenantPolicy(rate_per_s=1.0, burst=1)},
        clock=clock)
    quotas.admit("throttled", 1)
    with pytest.raises(RateLimited):
        quotas.admit("throttled", 1)
    for _ in range(20):                      # default tenants unharmed
        quotas.admit("alice", 1)
    snapshot = quotas.snapshot()
    assert snapshot["alice"]["submitted"] == 20
    assert snapshot["alice"]["rejected"] == 0
    assert snapshot["throttled"]["submitted"] == 1
    assert snapshot["throttled"]["rejected"] == 1
    assert snapshot["throttled"]["policy"]["rate_per_s"] == 1.0
