"""The content-addressed result store: roundtrip, corruption
tolerance, eviction, and the property everything rests on — a warm
campaign fingerprints identically to a cold one at any worker count.

The toy experiment lives at module top level so the process pool can
pickle it for the ``--jobs 2/4`` warm runs.
"""

import json
import os
from dataclasses import dataclass
from typing import ClassVar

from repro.resilience import spec_fingerprint
from repro.runner import JobSpec, derive_seed, manifest_fingerprint
from repro.runner.executor import execute_job
from repro.service import MemoStats, ResultStore, run_campaign_memoized


@dataclass(frozen=True)
class ToyExperiment:
    name: ClassVar[str] = "toy"
    n: int = 6
    fail_keys: tuple = ()

    def campaign_config(self):
        return {"n": self.n}

    def job_specs(self):
        return [JobSpec.make(self.name, (i,), derive_seed(7, (i,)),
                             index=i)
                for i in range(self.n)]

    def run_one(self, spec, ctx):
        if spec.key in self.fail_keys:
            raise RuntimeError(f"boom {spec.key}")
        return spec.param("index") * 10 + spec.seed % 7

    def reduce(self, results):
        return [r.value for r in results if r.ok]


def _one_result(index=0):
    experiment = ToyExperiment()
    spec = experiment.job_specs()[index]
    return spec, execute_job(experiment, spec)


def test_put_get_roundtrip(tmp_path):
    store = ResultStore(tmp_path)
    spec, result = _one_result()
    fingerprint = spec_fingerprint(spec)
    assert store.get(fingerprint) is None          # cold miss
    assert store.put(spec, result) is True
    record = store.get(fingerprint)
    assert record is not None
    assert record.fingerprint == fingerprint
    rehydrated = record.to_job_result(spec)
    assert rehydrated.ok and rehydrated.value == result.value
    assert store.hits == 1 and store.misses == 1 and store.stored == 1
    assert fingerprint in store and len(store) == 1


def test_failed_results_are_not_stored(tmp_path):
    store = ResultStore(tmp_path)
    experiment = ToyExperiment(fail_keys=((0,),))
    spec = experiment.job_specs()[0]
    result = execute_job(experiment, spec)
    assert not result.ok
    assert store.put(spec, result) is False
    assert len(store) == 0 and store.stored == 0


def test_corrupt_entries_are_misses_and_deleted(tmp_path):
    store = ResultStore(tmp_path)
    spec, result = _one_result()
    fingerprint = spec_fingerprint(spec)
    store.put(spec, result)
    path = store.path_for(fingerprint)

    # torn write / garbage
    path.write_text("{not json", encoding="utf-8")
    assert store.get(fingerprint) is None
    assert not path.exists()
    assert store.corrupt == 1

    # valid JSON, wrong address
    store.put(spec, result)
    doc = json.loads(path.read_text(encoding="utf-8"))
    doc["fingerprint"] = "0" * 32
    path.write_text(json.dumps(doc), encoding="utf-8")
    assert store.get(fingerprint) is None
    assert store.corrupt == 2

    # foreign schema
    store.put(spec, result)
    path.write_text(json.dumps({"schema": "something/9"}),
                    encoding="utf-8")
    assert store.get(fingerprint) is None
    assert store.corrupt == 3

    # the store recovers: re-put, re-get
    store.put(spec, result)
    assert store.get(fingerprint) is not None


def test_evict_to_is_oldest_mtime_first(tmp_path):
    store = ResultStore(tmp_path)        # unbounded; evict manually
    experiment = ToyExperiment(n=3)
    paths = []
    for stamp, spec in enumerate(experiment.job_specs()):
        store.put(spec, execute_job(experiment, spec))
        path = store.path_for(spec_fingerprint(spec))
        os.utime(path, (1_000_000 + stamp, 1_000_000 + stamp))
        paths.append(path)
    assert store.evict_to(2) == 1
    assert not paths[0].exists()         # oldest stamp went first
    assert paths[1].exists() and paths[2].exists()
    assert store.evictions == 1 and len(store) == 2


def test_put_enforces_max_entries(tmp_path):
    store = ResultStore(tmp_path, max_entries=2)
    experiment = ToyExperiment(n=4)
    for spec in experiment.job_specs():
        store.put(spec, execute_job(experiment, spec))
    assert len(store) == 2
    assert store.evictions == 2


def test_lookup_returns_only_hits(tmp_path):
    store = ResultStore(tmp_path)
    experiment = ToyExperiment(n=4)
    specs = experiment.job_specs()
    for spec in specs[:2]:
        store.put(spec, execute_job(experiment, spec))
    found = store.lookup(specs)
    assert set(found) == {spec_fingerprint(s) for s in specs[:2]}


def test_stats_shape(tmp_path):
    store = ResultStore(tmp_path, max_entries=5)
    stats = store.stats()
    assert stats["entries"] == 0 and stats["max_entries"] == 5
    assert stats["hit_rate"] == 0.0
    assert str(tmp_path) in stats["root"]


def test_cold_vs_warm_fingerprints_at_any_jobs(tmp_path):
    """The acceptance property: a memoized (fully warm) campaign's
    manifest fingerprints identically to the cold run, at --jobs 1,
    2 and 4."""
    experiment = ToyExperiment(n=8)
    store = ResultStore(tmp_path)

    cold, cold_stats = run_campaign_memoized(experiment, store, jobs=1)
    assert cold_stats == MemoStats(jobs=8, hits=0, stored=8)
    want = manifest_fingerprint(cold.manifest)

    for jobs in (1, 2, 4):
        warm, warm_stats = run_campaign_memoized(experiment, store,
                                                 jobs=jobs)
        assert warm_stats.hits == 8 and warm_stats.hit_rate == 1.0
        assert warm.value == cold.value
        assert manifest_fingerprint(warm.manifest) == want


def test_partial_warm_campaign_banks_the_misses(tmp_path):
    store = ResultStore(tmp_path)
    small = ToyExperiment(n=3)
    big = ToyExperiment(n=6)     # same campaign_config? no — n differs
    run_campaign_memoized(small, store, jobs=1)
    # jobs 0..2 of the big campaign share specs with the small one
    # only if their fingerprints match; toy specs embed only the key
    # and seed, so they do.
    campaign, stats = run_campaign_memoized(big, store, jobs=1)
    assert stats.jobs == 6 and stats.hits == 3 and stats.stored == 3
    assert len(store) == 6
    # resume lineage names the store, and is stripped by fingerprint
    assert campaign.manifest["outcome"]["resume"]["from"] \
        == f"store:{store.root}"
    assert "resume" not in \
        manifest_fingerprint(campaign.manifest)["outcome"]


def test_memoized_rejects_explicit_resume(tmp_path):
    store = ResultStore(tmp_path)
    try:
        run_campaign_memoized(ToyExperiment(), store, resume="x.jsonl")
    except TypeError as exc:
        assert "resume" in str(exc)
    else:
        raise AssertionError("resume= should be rejected")


# -- eviction vs in-flight lookups (the service-lifetime races) --------------

def test_hit_refreshes_mtime_and_shields_from_eviction(tmp_path):
    """A lookup refreshes its entry's mtime *before* parsing, so an
    entry being read is never the oldest candidate by the time an
    eviction pass lists it."""
    store = ResultStore(tmp_path)
    experiment = ToyExperiment(n=3)
    specs = experiment.job_specs()
    for stamp, spec in enumerate(specs):
        store.put(spec, execute_job(experiment, spec))
        os.utime(store.path_for(spec_fingerprint(spec)),
                 (1_000_000 + stamp, 1_000_000 + stamp))
    # read the oldest: the hit bumps it to "now"
    assert store.get(spec_fingerprint(specs[0])) is not None
    assert store.evict_to(2) == 1
    assert store.path_for(spec_fingerprint(specs[0])).exists()
    assert not store.path_for(spec_fingerprint(specs[1])).exists()


def test_eviction_spares_entry_refreshed_mid_pass(tmp_path, monkeypatch):
    """The narrow race: an entry is listed as an eviction candidate,
    then a lookup touches it before the unlink.  The pass must re-stat
    and spare it, evicting the next-oldest instead."""
    from pathlib import Path

    store = ResultStore(tmp_path)
    experiment = ToyExperiment(n=4)
    specs = experiment.job_specs()
    paths = []
    for stamp, spec in enumerate(specs):
        store.put(spec, execute_job(experiment, spec))
        path = store.path_for(spec_fingerprint(spec))
        os.utime(path, (1_000_000 + stamp, 1_000_000 + stamp))
        paths.append(path)

    real_unlink = Path.unlink

    def racing_unlink(self, *args, **kwargs):
        # While the pass unlinks the oldest entry, a concurrent get()
        # lands on the second-oldest (candidate #2 of this very pass).
        if self == paths[0]:
            os.utime(paths[1])
        return real_unlink(self, *args, **kwargs)

    monkeypatch.setattr(Path, "unlink", racing_unlink)
    assert store.evict_to(2) == 2
    monkeypatch.undo()

    assert not paths[0].exists()      # oldest: evicted before the touch
    assert paths[1].exists()          # touched mid-pass: spared
    assert not paths[2].exists()      # next-oldest paid instead
    assert paths[3].exists()
    assert len(store) == 2


def test_corrupt_delete_then_eviction_recounts(tmp_path):
    """A corrupt entry's delete already shrank the store; the next
    eviction pass must work from a fresh count, not a stale one."""
    store = ResultStore(tmp_path)
    experiment = ToyExperiment(n=4)
    specs = experiment.job_specs()
    for stamp, spec in enumerate(specs):
        store.put(spec, execute_job(experiment, spec))
        os.utime(store.path_for(spec_fingerprint(spec)),
                 (1_000_000 + stamp, 1_000_000 + stamp))

    # corrupt the newest entry; the failed lookup deletes it
    store.path_for(spec_fingerprint(specs[3])).write_text("{torn")
    assert store.get(spec_fingerprint(specs[3])) is None
    assert store.corrupt == 1 and len(store) == 3

    # 3 entries toward a limit of 2: exactly one eviction, and the
    # already-deleted corrupt entry is never double-counted
    assert store.evict_to(2) == 1
    assert store.evictions == 1
    assert len(store) == 2 == store.stats()["entries"]
    assert not store.path_for(spec_fingerprint(specs[0])).exists()
