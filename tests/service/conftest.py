"""Service tests touch the process-wide metrics registry (cache
counters, admission counters); give each test a clean slate."""

import pytest

from repro.telemetry import REGISTRY


@pytest.fixture(autouse=True)
def clean_state():
    REGISTRY.reset()
    REGISTRY.set_base_labels()
    yield
    REGISTRY.disable()
    REGISTRY.reset()
    REGISTRY.set_base_labels()
