"""The wire protocol: request validation, experiment builders, work
fingerprints, and typed-error round-trips."""

import pytest

from repro.runner import CampaignOptions
from repro.service import (BadRequest, JOB_REQUEST_SCHEMA, JobRequest,
                           NotFound, QuotaExceeded, RateLimited,
                           ServiceError, error_from_doc)


def _doc(**overrides):
    doc = {"schema": JOB_REQUEST_SCHEMA, "tenant": "alice",
           "experiment": "matrix",
           "params": {"uarches": ["zen 2"], "cells": 2}}
    doc.update(overrides)
    return doc


def test_valid_request_roundtrip():
    request = JobRequest.from_doc(_doc(options={"jobs": 2}))
    assert request.tenant == "alice"
    assert request.options == CampaignOptions(jobs=2)
    again = JobRequest.from_doc(request.to_doc())
    assert again == request


@pytest.mark.parametrize("mutate, fragment", [
    ({"schema": "phantom.job-request/0"}, "schema"),
    ({"tenant": ""}, "tenant"),
    ({"tenant": 7}, "tenant"),
    ({"experiment": "nope"}, "unknown experiment"),
    ({"params": [1]}, "params"),
    ({"options": {"workers": 3}}, "workers"),
    ({"extra": 1}, "unknown field"),
])
def test_bad_documents_are_typed_rejections(mutate, fragment):
    with pytest.raises(BadRequest) as info:
        JobRequest.from_doc(_doc(**mutate))
    assert fragment in str(info.value)


def test_non_object_body_rejected():
    with pytest.raises(BadRequest):
        JobRequest.from_doc([1, 2])


def test_unknown_params_rejected_per_experiment():
    with pytest.raises(BadRequest) as info:
        JobRequest.from_doc(_doc(params={"cellz": 4})).build()
    assert "cellz" in str(info.value)
    with pytest.raises(BadRequest):
        JobRequest.from_doc(
            _doc(experiment="kaslr", params={"uarch": "zen 99"})).build()
    with pytest.raises(BadRequest):
        JobRequest.from_doc(
            _doc(experiment="covert",
                 params={"channel": "smoke-signal"})).build()
    with pytest.raises(BadRequest):
        JobRequest.from_doc(_doc(params={"cells": -1})).build()


def test_matrix_builder_slices_cells():
    small = JobRequest.from_doc(_doc(params={"uarches": ["zen 2"],
                                             "cells": 2})).build()
    full = JobRequest.from_doc(_doc(params={"uarches": ["zen 2"],
                                            "cells": 0})).build()
    assert len(small.job_specs()) == 2
    assert len(full.job_specs()) > len(small.job_specs())
    # prefix property: the small campaign's jobs are a subset
    small_keys = {s.key for s in small.job_specs()}
    full_keys = {s.key for s in full.job_specs()}
    assert small_keys <= full_keys


def test_every_experiment_builds():
    for experiment, params in [
        ("matrix", {"uarches": ["zen 2"], "cells": 1}),
        ("kaslr", {"uarch": "zen 3", "seed": 1}),
        ("covert", {"bits": 64, "channel": "execute"}),
        ("fuzz", {"iters": 2}),
    ]:
        built = JobRequest.from_doc(
            _doc(experiment=experiment, params=params)).build()
        assert len(built.job_specs()) >= 1


def test_fingerprint_ignores_tenant_and_options():
    a = JobRequest.from_doc(_doc(tenant="alice", options={"jobs": 1}))
    b = JobRequest.from_doc(_doc(tenant="bob", options={"jobs": 8}))
    c = JobRequest.from_doc(_doc(params={"uarches": ["zen 2"],
                                         "cells": 3}))
    assert a.fingerprint() == b.fingerprint()
    assert a.fingerprint() != c.fingerprint()


def test_error_doc_roundtrip_is_typed():
    for exc in (BadRequest("nope", field="x"),
                NotFound("gone"),
                RateLimited("slow down", retry_after_s=1.5),
                QuotaExceeded("too big", tenant="t"),
                ServiceError("broke")):
        doc = exc.to_doc()
        assert doc["schema"] == "phantom.error/1"
        back = error_from_doc(doc, http_status=exc.http_status)
        assert type(back) is type(exc)
        assert str(back) == str(exc)
        assert back.code == exc.code
    back = error_from_doc(RateLimited("x", retry_after_s=2.0).to_doc())
    assert back.retry_after_s == pytest.approx(2.0)


def test_unknown_error_code_degrades_to_base():
    back = error_from_doc({"schema": "phantom.error/1",
                           "error": "fancy_future_thing",
                           "message": "??"}, http_status=418)
    assert type(back) is ServiceError
    assert back.details["http_status"] == 418
