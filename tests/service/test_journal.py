"""The write-ahead intake journal: durability, tolerance, the schema.

The journal is the service's crash-survival organ, so these tests hit
the same edges the checkpoint-journal tests do — torn lines, foreign
lines, duplicate records, write failures — plus the intake-specific
contract: last record wins per campaign, orphan terminal records are
dropped, and every journaled line validates against the checked-in
``phantom.intake/1`` schema copy.
"""

import json
from pathlib import Path

import pytest

from repro.service import (INTAKE_SCHEMA, IntakeJournal, IntakeRecord,
                           load_intake)
from repro.telemetry import INTAKE_JSON_SCHEMA, validate_intake
from repro.telemetry.schema import SchemaError

SCHEMA_COPY = Path(__file__).parent.parent / "data" / "intake.schema.json"


def _admitted(campaign_id="c000001-abcd1234", seq=1, **kw):
    defaults = dict(
        campaign_id=campaign_id, seq=seq, state="admitted",
        tenant="alice",
        request={"schema": "phantom.job-request/1", "tenant": "alice",
                 "experiment": "matrix"},
        submitted_at=1700000000.0)
    defaults.update(kw)
    return IntakeRecord(**defaults)


# -- round trip ---------------------------------------------------------------

def test_append_then_load_roundtrip(tmp_path):
    path = tmp_path / "intake.jsonl"
    with IntakeJournal(path) as journal:
        assert journal.append_admitted(_admitted())
    [record] = load_intake(path)
    assert record.campaign_id == "c000001-abcd1234"
    assert record.state == "admitted" and not record.terminal
    assert record.request["experiment"] == "matrix"
    assert record.tenant == "alice"


def test_terminal_record_wins_and_merges_over_admitted(tmp_path):
    path = tmp_path / "intake.jsonl"
    with IntakeJournal(path) as journal:
        journal.append_admitted(_admitted(idempotency_key="k1"))
        journal.append_terminal(
            "c000001-abcd1234", 1, "done", finished_at=1700000100.0,
            memo={"jobs": 4, "hits": 0, "misses": 4, "stored": 4,
                  "hit_rate": 0.0},
            manifest={"schema": "phantom.run-manifest/1"})
    [record] = load_intake(path)
    assert record.terminal and record.state == "done"
    # merge keeps the admitted record's request context...
    assert record.request["experiment"] == "matrix"
    assert record.idempotency_key == "k1"
    assert record.submitted_at == 1700000000.0
    # ...under the terminal record's outcome.
    assert record.finished_at == 1700000100.0
    assert record.memo["jobs"] == 4
    assert record.manifest["schema"] == "phantom.run-manifest/1"


def test_load_preserves_admission_order(tmp_path):
    path = tmp_path / "intake.jsonl"
    with IntakeJournal(path) as journal:
        for seq in (1, 2, 3):
            journal.append_admitted(_admitted(f"c{seq:06d}-x", seq=seq))
        # finishing out of order must not reorder recovery
        journal.append_terminal("c000002-x", 2, "failed",
                                finished_at=1.0, error={"error": "boom"})
    records = load_intake(path)
    assert [r.campaign_id for r in records] \
        == ["c000001-x", "c000002-x", "c000003-x"]
    assert [r.terminal for r in records] == [False, True, False]


# -- tolerance ----------------------------------------------------------------

def test_torn_last_line_costs_one_record(tmp_path):
    path = tmp_path / "intake.jsonl"
    with IntakeJournal(path) as journal:
        journal.append_admitted(_admitted("c000001-x", seq=1))
        journal.append_admitted(_admitted("c000002-x", seq=2))
    blob = path.read_text()
    path.write_text(blob[:-30])          # crash mid-append
    records = load_intake(path)
    assert [r.campaign_id for r in records] == ["c000001-x"]


def test_foreign_and_invalid_lines_are_skipped(tmp_path):
    path = tmp_path / "intake.jsonl"
    with IntakeJournal(path) as journal:
        journal.append_admitted(_admitted())
    with open(path, "a") as fh:
        fh.write('{"schema": "phantom.progress/1", "event": "job"}\n')
        fh.write("not json at all\n")
        fh.write(json.dumps({"schema": INTAKE_SCHEMA,
                             "campaign_id": "c9", "seq": "NaN",
                             "state": "admitted"}) + "\n")
        fh.write("\n")
    assert len(load_intake(path)) == 1


def test_orphan_terminal_record_is_dropped(tmp_path):
    path = tmp_path / "intake.jsonl"
    with open(path, "w") as fh:
        fh.write(json.dumps({"schema": INTAKE_SCHEMA,
                             "campaign_id": "c000009-x", "seq": 9,
                             "state": "done", "finished_at": 1.0}) + "\n")
    assert load_intake(path) == []


def test_missing_journal_is_empty(tmp_path):
    assert load_intake(tmp_path / "never-written.jsonl") == []


def test_append_failure_degrades_with_one_warning(tmp_path, monkeypatch):
    journal = IntakeJournal(tmp_path / "intake.jsonl")

    def broken_write(_text):
        raise OSError(28, "no space left on device")

    monkeypatch.setattr(journal._fh, "write", broken_write)
    with pytest.warns(RuntimeWarning, match="will not survive"):
        assert journal.append_admitted(_admitted("c000001-x")) is False
        # second failure: counted, but no second warning
        assert journal.append_admitted(_admitted("c000002-x",
                                                 seq=2)) is False
    assert journal.write_errors == 2
    monkeypatch.undo()
    assert journal.append_admitted(_admitted("c000003-x", seq=3))
    journal.close()
    assert [r.campaign_id for r in load_intake(journal.path)] \
        == ["c000003-x"]


def test_append_validates_before_writing(tmp_path):
    journal = IntakeJournal(tmp_path / "intake.jsonl")
    bogus = _admitted()
    bogus.state = "exploded"
    with pytest.raises(SchemaError):
        journal.append(bogus)
    journal.close()
    assert journal.path.read_text() == ""    # nothing half-journaled


def test_append_terminal_rejects_non_terminal_state(tmp_path):
    with IntakeJournal(tmp_path / "intake.jsonl") as journal:
        with pytest.raises(ValueError, match="terminal state"):
            journal.append_terminal("c1", 1, "admitted", finished_at=1.0)


# -- the schema (satellite: checked-in copy + validation) --------------------

def test_checked_in_schema_copy_matches_source():
    """The committed copy is the wire contract reviewers diff against;
    it must never drift from the code."""
    assert json.loads(SCHEMA_COPY.read_text()) == INTAKE_JSON_SCHEMA


def test_every_journaled_line_validates_against_the_copy(tmp_path):
    path = tmp_path / "intake.jsonl"
    with IntakeJournal(path) as journal:
        journal.append_admitted(_admitted(idempotency_key="k"))
        journal.append_terminal("c000001-abcd1234", 1, "failed",
                                finished_at=2.0,
                                error={"error": "quota_exceeded"})
    copy = json.loads(SCHEMA_COPY.read_text())
    required = set(copy["required"])
    allowed = set(copy["properties"])
    for line in path.read_text().splitlines():
        doc = json.loads(line)
        validate_intake(doc)
        assert required <= set(doc) <= allowed


@pytest.mark.parametrize("mutation, message", [
    ({"schema": "phantom.intake/2"}, "schema"),
    ({"state": "paused"}, "state"),
    ({"seq": "one"}, "seq"),
    ({"surprise": True}, "surprise"),
])
def test_validate_intake_rejects(mutation, message):
    doc = {"schema": INTAKE_SCHEMA, "campaign_id": "c1", "seq": 1,
           "state": "admitted"}
    doc.update(mutation)
    with pytest.raises(SchemaError, match=message):
        validate_intake(doc)


def test_validate_intake_rejects_missing_required():
    with pytest.raises(SchemaError, match="campaign_id"):
        validate_intake({"schema": INTAKE_SCHEMA, "seq": 1,
                         "state": "admitted"})
