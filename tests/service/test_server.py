"""The HTTP service end to end: submit, memoize, stream, reject.

One service instance per module (ephemeral port, tmp store) — boots in
well under a second and every test drives it through the real client,
so this is the full wire path: argparse-free request documents in,
typed errors and fingerprint-stable manifests out.
"""

import json

import pytest

from repro.runner import manifest_fingerprint
from repro.service import (BadRequest, JOB_REQUEST_SCHEMA, NotFound,
                           RateLimited, ServiceClient, ServiceConfig,
                           TenantPolicy, start_in_thread)


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    config = ServiceConfig(
        port=0,
        store_dir=str(tmp_path_factory.mktemp("store")),
        policy=TenantPolicy(rate_per_s=1000.0, burst=2000,
                            max_active_campaigns=100),
        overrides=(("narrow", TenantPolicy(rate_per_s=0.001, burst=1,
                                           max_jobs_per_campaign=4)),))
    handle = start_in_thread(config)
    yield handle
    handle.stop()


@pytest.fixture
def client(service):
    return ServiceClient(service.url)


def _matrix_doc(tenant="alice", cells=2, jobs=0):
    doc = {"schema": JOB_REQUEST_SCHEMA, "tenant": tenant,
           "experiment": "matrix",
           "params": {"uarches": ["zen 2"], "cells": cells, "seed": 0}}
    if jobs:
        doc["options"] = {"jobs": jobs}
    return doc


def test_health_and_stats_shapes(client):
    health = client.health()
    assert health["schema"] == "phantom.service-health/1"
    assert health["status"] == "ok"
    stats = client.stats()
    assert stats["schema"] == "phantom.service-stats/1"
    assert "store" in stats and "tenants" in stats


def test_submit_wait_then_resubmit_is_memoized(client):
    cold = client.submit(_matrix_doc(cells=3), wait=True)
    assert cold["state"] == "done"
    assert cold["memo"]["jobs"] == 3

    warm = client.submit(_matrix_doc(tenant="bob", cells=3), wait=True)
    assert warm["state"] == "done"
    assert warm["memo"]["hits"] == 3
    assert warm["memo"]["hit_rate"] == 1.0

    # the dedup is invisible in the result: identical fingerprints
    assert manifest_fingerprint(warm["manifest"]) \
        == manifest_fingerprint(cold["manifest"])
    # and identical bytes once execution details are stripped
    assert json.dumps(manifest_fingerprint(warm["manifest"]),
                      sort_keys=True) \
        == json.dumps(manifest_fingerprint(cold["manifest"]),
                      sort_keys=True)


def test_worker_count_is_a_client_option(client):
    status = client.submit(_matrix_doc(cells=2, jobs=2), wait=True)
    assert status["state"] == "done"
    assert status["jobs"] == 2
    assert status["manifest"]["config"]["jobs"] == 2


def test_async_submit_then_poll_and_events(client):
    accepted = client.submit(_matrix_doc(cells=1))
    assert accepted["state"] in ("queued", "running", "done")
    campaign_id = accepted["id"]
    events = list(client.events(campaign_id))     # blocks until done
    kinds = [event["event"] for event in events]
    assert kinds[0] == "campaign_begin"
    assert kinds[-1] == "campaign_end"
    assert all(event["schema"] == "phantom.progress/1"
               for event in events)
    final = client.campaign(campaign_id)
    assert final["state"] == "done"
    assert final["request_fingerprint"]


def test_unknown_campaign_is_typed_404(client):
    with pytest.raises(NotFound):
        client.campaign("c999999-deadbeef")


def test_bad_request_is_typed_400(client):
    with pytest.raises(BadRequest) as info:
        client.submit({"schema": JOB_REQUEST_SCHEMA, "tenant": "x",
                       "experiment": "matrix",
                       "params": {"cellz": 1}})
    assert "cellz" in str(info.value)
    with pytest.raises(BadRequest):
        client.submit({"nope": True})


def test_unknown_route_is_typed_404(client):
    with pytest.raises(NotFound):
        client._request("GET", "/v2/everything")


def test_throttled_tenant_gets_typed_429_over_the_wire(client):
    first = client.submit(_matrix_doc(tenant="narrow", cells=1),
                          wait=True)
    assert first["state"] == "done"
    with pytest.raises(RateLimited) as info:
        client.submit(_matrix_doc(tenant="narrow", cells=1))
    assert info.value.retry_after_s > 0
    stats = client.stats()
    assert stats["tenants"]["narrow"]["rejected"] >= 1


def test_stats_reflect_the_store(client):
    stats = client.stats()
    assert stats["store"]["entries"] >= 3
    assert stats["store"]["hits"] >= 3
    assert stats["campaigns"].get("done", 0) >= 4


def test_disconnected_event_subscriber_is_unsubscribed(service):
    """Regression: a client that vanished mid-stream used to linger in
    ``record.subscribers`` forever — a half-closed socket's ``drain``
    may never raise, so the dead queue kept accumulating every event
    the campaign emitted.  The stream handler now watches the reader
    for EOF concurrently with the event queue and unsubscribes the
    moment the peer goes away."""
    import socket
    import time as _time

    from repro.service import JobRequest
    from repro.service.server import CampaignRecord

    svc = service.service
    record = CampaignRecord(
        id="c999999-leak", request=JobRequest.from_doc(_matrix_doc()),
        jobs=1, job_count=2, state="running")
    svc.campaigns[record.id] = record
    try:
        _scheme, rest = service.url.split("://")
        host, port = rest.split(":")
        sock = socket.create_connection((host, int(port)), timeout=10)
        sock.settimeout(10)
        sock.sendall(b"GET /v1/campaigns/c999999-leak/events HTTP/1.1\r\n"
                     b"Host: t\r\nConnection: close\r\n\r\n")
        assert b"200 OK" in sock.recv(4096)
        deadline = _time.time() + 5
        while not record.subscribers and _time.time() < deadline:
            _time.sleep(0.01)
        assert len(record.subscribers) == 1

        sock.close()                        # abrupt mid-stream disconnect
        # keep the campaign chatty: pushes to a dead subscriber must
        # neither crash the loop nor stop the cleanup from happening
        for i in range(3):
            service._loop.call_soon_threadsafe(
                svc._push_event, record, json.dumps({"event": "job",
                                                     "n": i}))
        deadline = _time.time() + 5
        while record.subscribers and _time.time() < deadline:
            _time.sleep(0.01)
        assert record.subscribers == []     # the leak, had it survived
        assert len(record.event_lines) == 3
    finally:
        svc.campaigns.pop(record.id, None)
