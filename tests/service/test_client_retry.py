"""Client-side robustness: retry policy, Retry-After, circuit breaker.

No sockets here — the transport is faked by monkeypatching
``ServiceClient._request_once`` and the sleeper, so every delay and
state transition is asserted exactly.  The wire path itself is covered
by ``test_server.py``; this file owns the *policy* arithmetic.
"""

import pytest

from repro.service import (BadRequest, CircuitBreaker, CircuitOpen,
                           RateLimited, RetryPolicy, ServiceClient,
                           ServiceError, Unavailable)


# -- RetryPolicy --------------------------------------------------------------

def test_backoff_is_deterministic_exponential_and_jittered():
    policy = RetryPolicy(attempts=5, backoff_base_s=0.1,
                         backoff_cap_s=10.0, jitter_seed=7)
    delays = [policy.delay_for(a, token="/v1/campaigns")
              for a in range(4)]
    # deterministic: same seed, same token, same delays
    assert delays == [policy.delay_for(a, token="/v1/campaigns")
                      for a in range(4)]
    # jitter stays within [0.5, 1.0] x the exponential envelope
    for attempt, delay in enumerate(delays):
        envelope = 0.1 * (2 ** attempt)
        assert envelope * 0.5 <= delay <= envelope
    # a different seed decorrelates the fleet
    assert delays != [RetryPolicy(attempts=5, backoff_base_s=0.1,
                                  jitter_seed=8).delay_for(
                          a, token="/v1/campaigns") for a in range(4)]


def test_backoff_caps_and_honors_retry_after():
    policy = RetryPolicy(backoff_base_s=1.0, backoff_cap_s=4.0)
    assert policy.delay_for(10) <= 4.0
    # the server's hint wins when it is longer than the schedule
    assert policy.delay_for(0, retry_after_s=9.5) == 9.5
    # ...but never shortens a backoff that is already longer
    assert policy.delay_for(10, retry_after_s=0.1) >= 2.0


# -- CircuitBreaker -----------------------------------------------------------

class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def test_breaker_opens_after_threshold_and_recovers_half_open():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=3, cooldown_s=30.0,
                             clock=clock)
    for _ in range(2):
        breaker.preflight()
        breaker.record_failure()
    assert breaker.state == "closed"
    breaker.preflight()
    breaker.record_failure()                  # third strike
    assert breaker.state == "open"

    with pytest.raises(CircuitOpen) as excinfo:
        breaker.preflight()
    assert 0 < excinfo.value.retry_after_s <= 30.0
    assert excinfo.value.http_status == 503

    clock.now += 31.0                         # cooldown elapsed
    breaker.preflight()                       # the half-open probe
    assert breaker.state == "half-open"
    with pytest.raises(CircuitOpen):
        breaker.preflight()                   # only ONE probe at a time
    breaker.record_success()
    assert breaker.state == "closed" and breaker.failures == 0


def test_half_open_probe_failure_reopens_immediately():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=2, cooldown_s=10.0,
                             clock=clock)
    breaker.record_failure()
    breaker.record_failure()
    clock.now += 11.0
    breaker.preflight()
    breaker.record_failure()                  # probe failed
    assert breaker.state == "open"            # no second chance
    with pytest.raises(CircuitOpen):
        breaker.preflight()


# -- ServiceClient wiring -----------------------------------------------------

class FakeTransport:
    """Scripted ``_request_once``: pops the next outcome per call."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = 0

    def __call__(self, method, path, body=None):
        self.calls += 1
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


def _client(outcomes, *, retry=None, breaker=None):
    sleeps = []
    client = ServiceClient("http://127.0.0.1:1", retry=retry,
                           breaker=breaker, sleeper=sleeps.append)
    transport = FakeTransport(outcomes)
    client._request_once = transport
    return client, transport, sleeps


def test_default_client_does_not_retry():
    client, transport, sleeps = _client([ConnectionRefusedError("nope")])
    with pytest.raises(ConnectionRefusedError):
        client.health()
    assert transport.calls == 1 and sleeps == []


def test_retry_recovers_from_transient_faults():
    client, transport, sleeps = _client(
        [ConnectionRefusedError("booting"),
         Unavailable("draining", retry_after_s=2.5),
         {"status": "ok"}],
        retry=RetryPolicy(attempts=4, backoff_base_s=0.01,
                          jitter_seed=3))
    assert client.health() == {"status": "ok"}
    assert transport.calls == 3
    assert len(sleeps) == 2
    assert sleeps[1] >= 2.5       # honored the server's Retry-After


def test_retry_gives_up_after_attempts_and_reraises_last():
    client, transport, sleeps = _client(
        [RateLimited(f"slow down {i}", retry_after_s=0.1)
         for i in range(3)],
        retry=RetryPolicy(attempts=3, backoff_base_s=0.01))
    with pytest.raises(RateLimited, match="slow down 2"):
        client.stats()
    assert transport.calls == 3 and len(sleeps) == 2


@pytest.mark.parametrize("error", [
    BadRequest("your fault"),
    ServiceError("weird 500"),
])
def test_request_shaped_errors_never_retry(error):
    client, transport, sleeps = _client(
        [error, {"never": "reached"}],
        retry=RetryPolicy(attempts=5, backoff_base_s=0.01))
    with pytest.raises(type(error)):
        client.stats()
    assert transport.calls == 1 and sleeps == []


def test_breaker_trips_then_fails_fast_without_transport_calls():
    client, transport, _sleeps = _client(
        [ConnectionRefusedError("down")] * 2,
        retry=RetryPolicy(attempts=2, backoff_base_s=0.0),
        breaker=CircuitBreaker(failure_threshold=2, cooldown_s=60.0))
    with pytest.raises(ConnectionRefusedError):
        client.health()
    assert client.breaker.state == "open"
    with pytest.raises(CircuitOpen):
        client.health()                      # fail-fast: no transport
    assert transport.calls == 2


def test_breaker_closes_again_after_successful_probe():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0,
                             clock=clock)
    client, transport, _sleeps = _client(
        [ConnectionRefusedError("down"), {"status": "ok"}],
        breaker=breaker)
    with pytest.raises(ConnectionRefusedError):
        client.health()
    assert breaker.state == "open"
    clock.now += 6.0
    assert client.health() == {"status": "ok"}   # half-open probe wins
    assert breaker.state == "closed"
    assert transport.calls == 2


def test_submit_idempotent_stamps_fingerprint_key():
    captured = {}

    class Capture:
        def __call__(self, method, path, body=None):
            captured["body"] = body
            return {"id": "c000001-x", "state": "queued"}

    client = ServiceClient("http://127.0.0.1:1")
    client._request_once = Capture()
    doc = {"schema": "phantom.job-request/1", "tenant": "t",
           "experiment": "matrix", "params": {"cells": 2}}
    client.submit(dict(doc), idempotent=True)
    key = captured["body"]["idempotency_key"]
    assert isinstance(key, str) and len(key) == 32
    # stable across resubmits, and derived from the work, not the tenant
    client.submit(dict(doc), idempotent=True)
    assert captured["body"]["idempotency_key"] == key
    other = dict(doc, tenant="someone-else")
    client.submit(other, idempotent=True)
    assert captured["body"]["idempotency_key"] == key
    # an explicit key is never overwritten
    client.submit(dict(doc, idempotency_key="mine"), idempotent=True)
    assert captured["body"]["idempotency_key"] == "mine"


def test_rejects_non_http_urls():
    with pytest.raises(ValueError, match="http"):
        ServiceClient("https://example.com")
