"""The load-replay harness at test scale: overlapping campaigns dedup,
fingerprints hold, the storm tenant is turned away with typed errors.

CI runs the full fleet (``repro serve --selftest``); this keeps the
harness itself honest with a smaller one.
"""

from repro.service import ReplayPlan, run_loadtest


def test_replay_dedups_and_rejects(tmp_path):
    plan = ReplayPlan(distinct=3, replays=15, storm_attempts=8)
    report = run_loadtest(tmp_path / "store", plan)

    assert report.cold_campaigns == 3
    assert report.replay_campaigns == 15
    # every replayed job must come from the store
    assert report.replay_hit_rate == 1.0
    assert report.mismatched_fingerprints == 0

    # the storm tenant got typed rejections, nothing untyped
    assert report.storm_untyped == 0
    assert report.storm_rate_limited + report.storm_quota_rejected > 0
    assert report.storm_accepted <= 2

    assert report.ok
    doc = report.to_dict()
    assert doc["schema"] == "phantom.load-replay/1"
    assert doc["ok"] is True
    assert doc["replay"]["hit_rate"] == 1.0

    # the store holds exactly the distinct union (3 cells), not one
    # entry per campaign
    assert report.store_stats["entries"] == 3
