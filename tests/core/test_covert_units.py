"""Covert channel units: determinism, error behaviour, result math."""

import pytest

from repro.core import CovertResult, execute_covert_channel, \
    fetch_covert_channel
from repro.kernel import Machine
from repro.pipeline import ZEN2, ZEN3


class TestResultMath:
    def test_accuracy(self):
        result = CovertResult(bits=100, correct=93, seconds=2.0)
        assert result.accuracy == 0.93
        assert result.bits_per_second == 50.0

    def test_zero_seconds(self):
        result = CovertResult(bits=10, correct=10, seconds=0.0)
        assert result.bits_per_second == float("inf")


class TestChannels:
    def test_fetch_deterministic_per_seed(self):
        a = fetch_covert_channel(Machine(ZEN3, kaslr_seed=4,
                                         sibling_load=True),
                                 n_bits=64, seed=9)
        b = fetch_covert_channel(Machine(ZEN3, kaslr_seed=4,
                                         sibling_load=True),
                                 n_bits=64, seed=9)
        assert a.correct == b.correct
        assert a.seconds == b.seconds

    def test_different_payloads_different_outcomes(self):
        machine = Machine(ZEN3, kaslr_seed=4, sibling_load=True)
        a = fetch_covert_channel(machine, n_bits=32, seed=1)
        machine2 = Machine(ZEN3, kaslr_seed=4, sibling_load=True)
        b = fetch_covert_channel(machine2, n_bits=32, seed=2)
        # Same channel quality, different random payloads.
        assert a.bits == b.bits == 32

    def test_execute_channel_rejects_zen3(self):
        with pytest.raises(ValueError):
            execute_covert_channel(Machine(ZEN3), n_bits=8)

    def test_simulated_time_advances_with_bits(self):
        short = fetch_covert_channel(
            Machine(ZEN2, kaslr_seed=4, sibling_load=True), n_bits=16)
        long = fetch_covert_channel(
            Machine(ZEN2, kaslr_seed=4, sibling_load=True), n_bits=64)
        assert long.seconds > short.seconds

    def test_channel_survives_default_noise(self):
        """With the default syscall thrash the channel stays usable
        (paper accuracies: 90-100 %)."""
        machine = Machine(ZEN2, kaslr_seed=8, sibling_load=True)
        result = fetch_covert_channel(machine, n_bits=128)
        assert result.accuracy >= 0.9
