"""Observation channels: per-channel behaviour on selected cells."""

import pytest

from repro.core import TrainKind, TypeConfusionExperiment, VictimKind
from repro.kernel import Machine
from repro.pipeline import Reach, ZEN2, ZEN3


def fresh(uarch):
    return Machine(uarch, syscall_noise_evictions=0)


def experiment(uarch, train, victim):
    return TypeConfusionExperiment(fresh(uarch), train, victim)


class TestChannels:
    def test_if_channel_zen3(self):
        exp = experiment(ZEN3, TrainKind.INDIRECT, VictimKind.NON_BRANCH)
        assert exp.measure_fetch()

    def test_id_channel_zen3(self):
        exp = experiment(ZEN3, TrainKind.INDIRECT, VictimKind.NON_BRANCH)
        assert exp.measure_decode()

    def test_ex_channel_zen3_negative(self):
        exp = experiment(ZEN3, TrainKind.INDIRECT, VictimKind.NON_BRANCH)
        assert not exp.measure_execute()

    def test_ex_channel_zen2_positive(self):
        exp = experiment(ZEN2, TrainKind.INDIRECT, VictimKind.NON_BRANCH)
        assert exp.measure_execute()

    def test_no_training_no_signal(self):
        """Without training there is no phantom at a non-branch."""
        exp = experiment(ZEN2, TrainKind.INDIRECT, VictimKind.NON_BRANCH)
        exp._reset_channels()
        exp._run_victim()
        assert exp.timer.time_exec(exp.landing) > exp.exec_threshold


class TestGeometry:
    def test_victim_aliases_trainer(self):
        exp = experiment(ZEN3, TrainKind.INDIRECT, VictimKind.NON_BRANCH)
        idx = exp.machine.uarch.btb
        assert idx.collides(exp.train_src, exp.victim_src)
        assert exp.train_src != exp.victim_src

    def test_same_page_offset(self):
        exp = experiment(ZEN3, TrainKind.INDIRECT, VictimKind.DIRECT)
        assert exp.train_src & 0xFFF == exp.victim_src & 0xFFF

    def test_pcrel_landing_is_c_prime(self):
        """Figure 5 A: C' = B + (C - A)."""
        exp = experiment(ZEN3, TrainKind.DIRECT, VictimKind.NON_BRANCH)
        c_a = 0x0000_0000_0410_0000 + 0x2B00
        assert exp.landing == exp.victim_src + (c_a - exp.train_src)

    def test_ret_landing_off_architectural_path(self):
        exp = experiment(ZEN2, TrainKind.RETURN, VictimKind.NON_BRANCH)
        # The stale return site is never the victim continuation.
        assert exp.landing != exp.victim_page + 0xC80

    def test_symmetric_combos_rejected(self):
        with pytest.raises(ValueError):
            experiment(ZEN3, TrainKind.INDIRECT, VictimKind.INDIRECT)
        with pytest.raises(ValueError):
            experiment(ZEN3, TrainKind.NON_BRANCH, VictimKind.NON_BRANCH)

    def test_displacement_variants_allowed(self):
        experiment(ZEN3, TrainKind.DIRECT, VictimKind.DIRECT)
        experiment(ZEN3, TrainKind.CONDITIONAL, VictimKind.CONDITIONAL)


class TestResultReach:
    def test_reach_ordering(self):
        from repro.core import ExperimentResult
        assert ExperimentResult(True, True, True).reach is Reach.EXECUTE
        assert ExperimentResult(True, True, False).reach is Reach.DECODE
        assert ExperimentResult(True, False, False).reach is Reach.FETCH
        assert ExperimentResult(False, False, False).reach is Reach.NONE
