"""The §5.1 negative-control refinement of the ID channel."""

import pytest

from repro.core import TrainKind, TypeConfusionExperiment, VictimKind
from repro.kernel import Machine
from repro.pipeline import INTEL_12TH, ZEN2, ZEN3


def experiment(uarch, train=TrainKind.INDIRECT,
               victim=VictimKind.NON_BRANCH):
    machine = Machine(uarch, syscall_noise_evictions=0)
    return TypeConfusionExperiment(machine, train, victim)


def test_positive_case_passes_control(ecls=None):
    exp = experiment(ZEN3)
    assert exp.measure_decode_with_negative_control()


def test_zen2_positive(ecls=None):
    exp = experiment(ZEN2, TrainKind.DIRECT, VictimKind.RETURN)
    assert exp.measure_decode_with_negative_control()


def test_intel_indirect_victim_fails_control():
    """Intel jmp* victims decode nothing — the control test agrees."""
    exp = experiment(INTEL_12TH, TrainKind.DIRECT, VictimKind.INDIRECT)
    assert not exp.measure_decode_with_negative_control()


def test_non_branch_training_rejected():
    exp = experiment(ZEN3, TrainKind.NON_BRANCH, VictimKind.DIRECT)
    with pytest.raises(ValueError):
        exp.measure_decode_with_negative_control()


def test_control_source_does_not_alias():
    exp = experiment(ZEN3)
    control = exp.train_src + 0x40_0000
    assert not exp.machine.uarch.btb.collides(control, exp.victim_src)
    assert control & 0xFFF == exp.victim_src & 0xFFF
