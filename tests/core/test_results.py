"""The shared Result surface: every result serializes and summarizes.

The CLI and the campaign reducer rely on ``to_dict()`` being
JSON-serializable and ``summary()`` being one human-readable line for
every experiment outcome — no per-type serialization anywhere else.
"""

import json

import pytest

from repro.core import Result
from repro.core.covert import CovertResult
from repro.core.kaslr_image import KaslrImageResult
from repro.core.kaslr_physmap import PhysmapResult
from repro.core.matrix import CellResult
from repro.core.mds import MdsLeakResult
from repro.core.observe import ExperimentResult, TrainKind, VictimKind
from repro.core.physaddr import PhysAddrResult
from repro.core.results import hexaddr
from repro.core.scoring import GuessScore
from repro.workloads import SuiteResult

RESULTS = [
    CellResult(uarch="Zen 2", train=TrainKind.INDIRECT,
               victim=VictimKind.NON_BRANCH,
               result=ExperimentResult(fetch=True, decode=True,
                                       execute=False)),
    CovertResult(bits=128, correct=120, seconds=0.001),
    KaslrImageResult(guessed_base=0xFFFF_FFFF_8100_0000, seconds=0.5,
                     scores=[GuessScore(0xFFFF_FFFF_8100_0000, 12)]),
    PhysmapResult(guessed_base=0xFFFF_8880_4000_0000, seconds=0.3,
                  candidates_scanned=4000),
    PhysmapResult(guessed_base=None, seconds=0.3, candidates_scanned=25600),
    PhysAddrResult(guessed_pa=0x1240_0000, seconds=0.2,
                   candidates_scanned=147),
    MdsLeakResult(leaked=b"ab", expected=b"ab", seconds=0.01,
                  no_signal_bytes=0),
]


@pytest.mark.parametrize("result", RESULTS,
                         ids=lambda r: type(r).__name__)
def test_to_dict_is_json_serializable(result):
    doc = result.to_dict()
    assert doc == json.loads(json.dumps(doc))


@pytest.mark.parametrize("result", RESULTS,
                         ids=lambda r: type(r).__name__)
def test_summary_is_one_line(result):
    line = result.summary()
    assert line
    assert "\n" not in line


@pytest.mark.parametrize("result", RESULTS,
                         ids=lambda r: type(r).__name__)
def test_results_satisfy_the_protocol(result):
    assert isinstance(result, Result)


def test_suite_result_is_not_forced_into_the_protocol():
    """SuiteResult reduces to a geometric mean, not a manifest row."""
    assert not isinstance(SuiteResult(cycles={"a": 1}), Result)


def test_hexaddr_none_safe():
    assert hexaddr(0x1000) == "0x1000"
    assert hexaddr(None) is None
