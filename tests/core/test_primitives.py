"""P1/P2/P3 primitives and cross-privilege injection."""

import pytest

from repro.core import (P1MappedExecutable, P2MappedMemory, P3RegisterLeak,
                        PhantomInjector)
from repro.core.primitives import ProbeSample
from repro.isa import BranchKind
from repro.kernel import Machine, SYS_GETPID, SYS_READV
from repro.kernel.layout import reference_offsets
from repro.pipeline import ZEN2, ZEN3
from repro.sidechannel import PrimeProbeL2


@pytest.fixture()
def machine():
    return Machine(ZEN2, kaslr_seed=3, syscall_noise_evictions=0)


class TestInjector:
    def test_user_alias_is_user_space(self, machine):
        injector = PhantomInjector(machine)
        kernel_src = machine.kaslr.image_base + 0xF6520
        alias = injector.user_alias(kernel_src)
        assert alias >> 47 == 0
        assert machine.uarch.btb.collides(kernel_src, alias)

    def test_inject_installs_cross_privilege_entry(self, machine):
        injector = PhantomInjector(machine)
        kernel_src = machine.kaslr.image_base + 0xF6520
        injector.inject(kernel_src, machine.kaslr.image_base + 0x1000)
        entry = machine.cpu.bpu.btb.lookup(kernel_src, kernel_mode=True)
        assert entry is not None
        assert entry.kind is BranchKind.INDIRECT
        assert not entry.trained_kernel

    def test_intel_has_no_alias(self):
        from repro.pipeline import INTEL_9TH
        m = Machine(INTEL_9TH)
        with pytest.raises(ValueError):
            PhantomInjector(m)


class TestP1:
    def test_detects_mapped_executable(self, machine):
        p1 = P1MappedExecutable(machine)
        nopl = machine.kaslr.image_base + 0xF6520
        mapped = machine.kaslr.image_base + 0x20_0000 + 44 * 64

        sample = p1.sample(nopl, mapped,
                           lambda: machine.syscall(SYS_GETPID))
        assert sample.signal > sample.baseline

    def test_unmapped_target_silent(self, machine):
        from statistics import median

        p1 = P1MappedExecutable(machine)
        nopl = machine.kaslr.image_base + 0xF6520
        unmapped = 0xFFFF_FFFF_4000_0000 + 44 * 64
        diffs = []
        for _ in range(3):
            sample = p1.sample(nopl, unmapped,
                               lambda: machine.syscall(SYS_GETPID))
            diffs.append(sample.signal - sample.baseline)
        assert abs(median(diffs)) <= 1  # jitter only, no systematic signal


class TestP2:
    def test_detects_mapped_nx_memory(self, machine):
        """physmap is NX, invisible to P1 — P2's transient load sees it."""
        offsets = reference_offsets()
        call_site = machine.kaslr.image_base + offsets["fdget_call_site"]
        gadget = machine.kaslr.image_base + offsets["physmap_gadget"]
        p2 = P2MappedMemory(machine)
        phys_off = 0x4_C240
        l2_set = PrimeProbeL2.set_of_phys(phys_off)
        target = machine.kaslr.physmap_base + phys_off

        latency = p2.probe_once(
            call_site, gadget, target, l2_set,
            lambda rsi: machine.syscall(SYS_READV, 3, rsi))
        misses = p2.pp.probe_misses(l2_set)
        # After one probe the state is consumed; measure via fresh round.
        p2.pp.prime(l2_set)
        baseline = p2.pp.probe(l2_set)
        assert latency > baseline

    def test_unmapped_kernel_address_silent(self, machine):
        offsets = reference_offsets()
        call_site = machine.kaslr.image_base + offsets["fdget_call_site"]
        gadget = machine.kaslr.image_base + offsets["physmap_gadget"]
        p2 = P2MappedMemory(machine)
        phys_off = 0x4_C240
        l2_set = PrimeProbeL2.set_of_phys(phys_off)
        bogus = 0xFFFF_F000_0000_0000 + phys_off  # not a physmap slot

        p2.pp.prime(l2_set)
        p2.injector.inject(call_site, gadget)
        machine.syscall(SYS_READV, 3,
                        bogus - P2MappedMemory.GADGET_DISPLACEMENT)
        assert p2.pp.probe_misses(l2_set) == 0

    def test_rejected_on_zen3(self):
        m = Machine(ZEN3)
        from repro.core import break_physmap_kaslr
        with pytest.raises(ValueError):
            break_physmap_kaslr(m, m.kaslr.image_base)


class TestP3:
    def test_leaks_register_byte(self, machine):
        """End-to-end P3 through the MDS module's call site."""
        from repro.kernel import SYS_MDS

        p3 = P3RegisterLeak(machine)
        reload_pa = machine.mem.aspace.translate_noperm(p3.reload.va)
        reload_kva = machine.kaslr.physmap_base + reload_pa
        call_site = machine.modules.sym("mds_call_site")
        gadget = machine.modules.sym("p3_gadget")
        secret_index = (machine.secret_va - (machine.data_base + 0x40))

        machine.syscall(SYS_MDS, 1, reload_kva)   # condition not-taken
        byte = p3.leak_byte(
            call_site, gadget,
            lambda: machine.syscall(SYS_MDS, secret_index, reload_kva))
        assert byte == machine.secret_bytes()[0]
