"""AttackerRuntime: JIT training snippets install the intended entries."""

import pytest

from repro.core import AttackerRuntime
from repro.isa import BranchKind, Reg
from repro.kernel import Machine
from repro.pipeline import ZEN2

SRC = 0x0000_0000_0810_0AC0
TARGET = 0x0000_0000_0890_0000


@pytest.fixture()
def machine():
    return Machine(ZEN2, syscall_noise_evictions=0)


@pytest.fixture()
def attacker(machine):
    return AttackerRuntime(machine)


def entry_at(machine, src):
    return machine.cpu.bpu.btb.lookup(src, kernel_mode=False)


class TestTrainers:
    def test_indirect_user_target(self, machine, attacker):
        attacker.write_code(TARGET, b"\xf4")
        assert attacker.train_indirect(SRC, TARGET)
        entry = entry_at(machine, SRC)
        assert entry.kind is BranchKind.INDIRECT
        assert entry.predicted_target(SRC) == TARGET

    def test_indirect_kernel_target_faults_but_trains(self, machine,
                                                      attacker):
        kernel_target = machine.kaslr.image_base + 0x1000
        assert not attacker.train_indirect(SRC, kernel_target)
        entry = entry_at(machine, SRC)
        assert entry is not None
        assert entry.predicted_target(SRC) == kernel_target

    def test_call_indirect(self, machine, attacker):
        attacker.write_code(TARGET, b"\xc3")  # ret back
        attacker.write_code(SRC + 2, b"\xf4")  # call rax is 2 bytes
        assert attacker.train_call_indirect(SRC, TARGET)
        assert entry_at(machine, SRC).kind is BranchKind.CALL_INDIRECT

    def test_direct(self, machine, attacker):
        assert attacker.train_direct(SRC, SRC + 0x2000)
        entry = entry_at(machine, SRC)
        assert entry.kind is BranchKind.DIRECT
        assert entry.pc_rel
        assert entry.predicted_target(SRC) == SRC + 0x2000

    def test_conditional(self, machine, attacker):
        assert attacker.train_cond(SRC, SRC + 0x2000)
        assert entry_at(machine, SRC).kind is BranchKind.CONDITIONAL

    def test_ret(self, machine, attacker):
        assert attacker.train_ret(SRC)
        assert entry_at(machine, SRC).kind is BranchKind.RETURN

    def test_non_branch_installs_nothing(self, machine, attacker):
        attacker.execute_nops(SRC)
        assert entry_at(machine, SRC) is None

    def test_seed_rsb(self, machine, attacker):
        call_site = 0x0000_0000_0820_0AFB
        stale = attacker.seed_rsb(call_site)
        assert stale == call_site + 5
        assert machine.cpu.bpu.rsb.peek() == stale


class TestRuntime:
    def test_ensure_mapped_idempotent(self, machine, attacker):
        attacker.ensure_mapped(SRC, 32)
        attacker.ensure_mapped(SRC, 32)  # second call must not remap
        attacker.write_code(SRC, b"\x90\xf4")
        attacker.run(SRC)

    def test_place_gadget(self, machine, attacker):
        symbols = attacker.place_gadget(
            TARGET, lambda asm: (asm.label("g"), asm.mov_ri(Reg.RAX, 9),
                                 asm.hlt()))
        assert symbols["g"] == TARGET
        attacker.run(TARGET)
        assert machine.cpu.state.read(Reg.RAX) == 9

    def test_run_catches_fault(self, machine, attacker):
        assert not attacker.run(0x0000_0000_0F10_0000)  # unmapped

    def test_run_propagates_when_asked(self, machine, attacker):
        from repro.errors import PageFault
        with pytest.raises(PageFault):
            attacker.run(0x0000_0000_0F10_0000, catch_fault=False)
