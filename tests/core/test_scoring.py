"""Section 7.3 scoring arithmetic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (GuessScore, best_guess, bounded_difference,
                        bounded_score, score_margin)
from repro.core.primitives import ProbeSample


class TestBoundedDifference:
    def test_within_bound(self):
        assert bounded_difference(15, 10) == 5

    def test_clamps_positive(self):
        assert bounded_difference(500, 10) == 10

    def test_clamps_negative(self):
        assert bounded_difference(10, 500) == -10

    def test_custom_bound(self):
        assert bounded_difference(500, 10, bound=3) == 3

    @given(st.integers(0, 10000), st.integers(0, 10000))
    @settings(max_examples=200)
    def test_always_within_bound(self, signal, baseline):
        assert -10 <= bounded_difference(signal, baseline) <= 10


class TestScore:
    def test_accumulates(self):
        samples = [ProbeSample(20, 10), ProbeSample(10, 20),
                   ProbeSample(900, 0)]
        assert bounded_score(samples) == 10 - 10 + 10

    def test_best_guess(self):
        scores = [GuessScore(1, 5), GuessScore(2, 40), GuessScore(3, -2)]
        assert best_guess(scores).guess == 2

    def test_margin_strong_winner(self):
        scores = [GuessScore(i, 0) for i in range(60)] + [GuessScore(99, 40)]
        assert score_margin(scores) == 40

    def test_margin_ambiguous(self):
        scores = [GuessScore(i, 40) for i in range(10)]
        assert score_margin(scores) == 0

    def test_margin_single(self):
        assert score_margin([GuessScore(1, 3)]) == float("inf")
