"""Table 1 matrix runner: combo enumeration and key cells."""

import pytest

from repro.core import ASYMMETRIC_COMBOS, TrainKind, VictimKind, measure_cell
from repro.core.matrix import (CHANNEL_MEASUREMENTS, format_matrix,
                               measure_channel, run_matrix)
from repro.pipeline import Reach, ZEN1, ZEN3


def test_twenty_two_combinations():
    """5x5 minus the 5 symmetric diagonal plus jmp/jcc displacement
    variants = 22, as the paper counts."""
    assert len(ASYMMETRIC_COMBOS) == 22
    assert (TrainKind.DIRECT, VictimKind.DIRECT) in ASYMMETRIC_COMBOS
    assert (TrainKind.INDIRECT, VictimKind.INDIRECT) not in ASYMMETRIC_COMBOS


def test_zen1_headline_cell_reaches_execute():
    result = measure_cell(ZEN1, TrainKind.INDIRECT, VictimKind.NON_BRANCH)
    assert result.reach is Reach.EXECUTE


def test_zen3_headline_cell_reaches_decode_only():
    result = measure_cell(ZEN3, TrainKind.INDIRECT, VictimKind.NON_BRANCH)
    assert result.reach is Reach.DECODE


def test_unknown_channel_fails_loudly():
    """The explicit dispatch replaces the old stringly ``getattr`` —
    a typo'd channel is a ValueError, not an AttributeError deep in a
    worker."""
    with pytest.raises(ValueError, match="unknown observation channel"):
        measure_channel(object(), "excute")


def test_channel_dispatch_covers_experiment_result_fields():
    assert set(CHANNEL_MEASUREMENTS) == {"fetch", "decode", "execute"}


def test_run_matrix_subset_and_format():
    combos = [(TrainKind.INDIRECT, VictimKind.NON_BRANCH),
              (TrainKind.RETURN, VictimKind.DIRECT)]
    results = run_matrix([ZEN3], combos=combos)
    assert len(results) == 2
    table = format_matrix(results)
    assert "Zen 3" in table
    assert "ID" in table
