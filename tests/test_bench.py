"""The bench harness: document shape, comparison, superblock stats.

The actual throughput numbers are host-dependent and untestable; what
is pinned here is everything around them — engines retiring identical
instruction counts, superblock statistics landing in the document,
regression comparison logic, and the summarize/diff text paths the
``repro stats`` command uses for ``phantom.bench/1`` documents.
"""

import pytest

from repro.bench import (BENCH_SCHEMA, WORKLOADS, WorkloadResult, compare,
                         diff_bench, document, is_bench_document,
                         summarize_bench, _run_idle_loop, _run_program,
                         _straight_line)


def make_result(name="branch_heavy", speedup=10.0, stats=None):
    return WorkloadResult(name=name, iterations=100, instructions=1000,
                          slow_seconds=speedup, fast_seconds=1.0,
                          superblocks=stats)


class TestWorkloadResult:
    def test_speedup_and_ips(self):
        r = make_result(speedup=8.0)
        assert r.speedup == 8.0
        assert r.fast_ips == 1000.0
        assert r.slow_ips == 125.0

    def test_to_dict_includes_superblocks_when_present(self):
        stats = {"compiled": 3, "fused_instructions": 30}
        assert make_result(stats=stats).to_dict()["superblocks"] == stats
        assert "superblocks" not in make_result().to_dict()


class TestDocument:
    def test_schema_and_detection(self):
        doc = document([make_result()], quick=True)
        assert doc["schema"] == BENCH_SCHEMA
        assert is_bench_document(doc)
        assert not is_bench_document({"schema": "phantom.run/1"})
        assert not is_bench_document([])

    def test_compare_flags_regressions_only_beyond_tolerance(self):
        baseline = document([make_result(speedup=10.0)])
        ok = document([make_result(speedup=8.0)])
        bad = document([make_result(speedup=6.0)])
        assert compare(ok, baseline, tolerance=0.3) == []
        problems = compare(bad, baseline, tolerance=0.3)
        assert len(problems) == 1
        assert "branch_heavy" in problems[0]

    def test_compare_rejects_non_bench_baseline(self):
        with pytest.raises(ValueError):
            compare(document([make_result()]), {"schema": "nope"})

    def test_summarize_mentions_superblock_stats(self):
        stats = {"compiled": 4, "mean_length": 12.0, "cycles_skipped": 77}
        text = summarize_bench(document([make_result(stats=stats)]))
        assert "branch_heavy" in text
        assert "compiled=4" in text
        assert "cycles_skipped=77" in text

    def test_diff_reports_speedup_delta_and_stat_changes(self):
        a = document([make_result(speedup=10.0,
                                  stats={"compiled": 4, "probe_bails": 0})])
        b = document([make_result(speedup=12.0,
                                  stats={"compiled": 4, "probe_bails": 9})])
        text = diff_bench(a, b)
        assert "+2.00x" in text
        assert "probe_bails 0 -> 9" in text
        assert "compiled" not in text   # unchanged stats stay silent

    def test_diff_notes_missing_workloads(self):
        a = document([make_result(name="syscall")])
        b = document([make_result(name="idle_loop")])
        text = diff_bench(a, b)
        assert "only in A" in text and "only in B" in text


class TestRunners:
    def test_idle_loop_engines_agree_and_record_stats(self):
        slow_instrs, _, slow_stats = _run_idle_loop(20, False)
        fast_instrs, _, fast_stats = _run_idle_loop(20, True)
        assert slow_instrs == fast_instrs > 0
        assert slow_stats["cycles_skipped"] == 0
        assert fast_stats["cycles_skipped"] == 20 * 2000

    def test_program_runner_returns_superblock_stats(self):
        instrs, wall, stats = _run_program(_straight_line, 50, True)
        assert instrs > 0 and wall > 0
        assert stats["compiled"] >= 1
        assert stats["fused_instructions"] >= 3 * stats["compiled"]
        assert stats["mean_length"] > 0

    def test_workload_registry_matches_sizes(self):
        from repro.bench import _SIZES
        assert set(WORKLOADS) == set(_SIZES)
        assert "idle_loop" in WORKLOADS
