"""Timer jitter and threshold calibration."""

import random

import pytest

from repro.kernel import Machine
from repro.params import PAGE_SIZE
from repro.pipeline import ZEN2
from repro.sidechannel import Timer, calibrate_threshold

DATA_VA = 0x0000_0000_2000_0000


@pytest.fixture(scope="module")
def machine():
    m = Machine(ZEN2)
    m.map_user(DATA_VA, PAGE_SIZE)
    return m


def test_jitter_is_seeded(machine):
    a = Timer(machine, rng=random.Random(1))
    b = Timer(machine, rng=random.Random(1))
    machine.user_touch(DATA_VA)
    assert a.time_load(DATA_VA) == b.time_load(DATA_VA)


def test_hit_vs_miss_distinguishable(machine):
    timer = Timer(machine)
    machine.user_touch(DATA_VA)
    hits = [timer.time_load(DATA_VA) for _ in range(16)]
    misses = []
    for _ in range(16):
        machine.clflush(DATA_VA)
        misses.append(timer.time_load(DATA_VA))
    assert min(misses) > max(hits)


def test_calibrate_threshold_separates(machine):
    timer = Timer(machine)
    threshold = calibrate_threshold(timer, DATA_VA)
    machine.user_touch(DATA_VA)
    assert timer.time_load(DATA_VA) < threshold
    machine.clflush(DATA_VA)
    assert timer.time_load(DATA_VA) > threshold


def test_exec_calibration(machine):
    code_va = 0x0000_0000_2100_0000
    machine.map_user(code_va, PAGE_SIZE)
    timer = Timer(machine)
    threshold = calibrate_threshold(timer, code_va, exec_=True)
    machine.user_exec_touch(code_va)
    assert timer.time_exec(code_va) < threshold


def test_sibling_load_reduces_sigma():
    quiet = Machine(ZEN2)
    loaded = Machine(ZEN2, sibling_load=True)
    assert Timer(loaded).sigma < Timer(quiet).sigma


def test_time_call(machine):
    timer = Timer(machine)
    elapsed = timer.time_call(lambda: machine.user_touch(DATA_VA))
    assert elapsed >= 0
