"""Side-channel primitives are engine-invariant.

The timing attacks are the most latency-sensitive consumers of the
simulator: a fast-path engine that perturbed a single cache fill or
cycle count would silently change thresholds, eviction counts and
ultimately exploit accuracy.  These tests replay identical seeded
measurement scripts under ``PHANTOM_REPRO_FASTPATH=0`` and ``=1`` and
require equal numbers out — not merely "both engines see a signal".
"""

import random

import pytest

from repro.kernel import Machine
from repro.params import PAGE_SIZE
from repro.pipeline import ZEN2
from repro.sidechannel import (PrimeProbeL1D, PrimeProbeL1I, PrimeProbeL2,
                               Timer, calibrate_threshold, probe_threshold)

DATA_VA = 0x0000_0000_2600_0000
CODE_VA = 0x0000_0000_2700_0000


def both_engines(monkeypatch, script):
    """Run *script* (fresh machine -> value) once per engine."""
    results = []
    for enabled in ("0", "1"):
        monkeypatch.setenv("PHANTOM_REPRO_FASTPATH", enabled)
        machine = Machine(ZEN2, syscall_noise_evictions=0)
        results.append(script(machine))
    return results


def test_timer_trace_is_engine_invariant(monkeypatch):
    def script(machine):
        machine.map_user(DATA_VA, PAGE_SIZE)
        timer = Timer(machine, rng=random.Random(7))
        trace = []
        for round_ in range(12):
            machine.user_touch(DATA_VA)
            trace.append(timer.time_load(DATA_VA))
            if round_ % 3 == 0:
                machine.clflush(DATA_VA)
            trace.append(timer.time_load(DATA_VA))
        return trace

    slow, fast = both_engines(monkeypatch, script)
    assert slow == fast


def test_calibrated_thresholds_are_engine_invariant(monkeypatch):
    def script(machine):
        machine.map_user(DATA_VA, PAGE_SIZE)
        machine.map_user(CODE_VA, PAGE_SIZE)
        timer = Timer(machine, rng=random.Random(3))
        return (calibrate_threshold(timer, DATA_VA),
                calibrate_threshold(timer, CODE_VA, exec_=True))

    slow, fast = both_engines(monkeypatch, script)
    assert slow == fast


@pytest.mark.parametrize("channel", ["l1i", "l1d"])
def test_l1_eviction_counts_are_engine_invariant(monkeypatch, channel):
    def script(machine):
        machine.map_user(CODE_VA, PAGE_SIZE)
        machine.map_user(DATA_VA, PAGE_SIZE, nx=True)
        cls = PrimeProbeL1I if channel == "l1i" else PrimeProbeL1D
        pp = cls(machine, timer=Timer(machine, rng=random.Random(11)))
        victim = (machine.user_exec_touch if channel == "l1i"
                  else machine.user_touch)
        victim_base = CODE_VA if channel == "l1i" else DATA_VA
        counts = []
        for set_index in (5, 13, 21):
            pp.prime(set_index)
            counts.append(pp.probe_misses(set_index))      # quiet set
            pp.prime(set_index)
            victim(victim_base + set_index * 64)
            counts.append(pp.probe_misses(set_index))      # active set
        return counts

    slow, fast = both_engines(monkeypatch, script)
    assert slow == fast
    # Sanity on the channel itself: victim activity evicts at least one
    # primed line that the quiet rounds kept resident.
    assert fast[1] > fast[0] or fast[3] > fast[2] or fast[5] > fast[4]


def test_l2_probe_signal_is_engine_invariant(monkeypatch):
    def script(machine):
        machine.map_user(DATA_VA, PAGE_SIZE, nx=True)
        pp = PrimeProbeL2(machine,
                          timer=Timer(machine, rng=random.Random(19)))
        victim_pa = machine.mem.aspace.translate_noperm(DATA_VA)
        target_set = pp.set_of_phys(victim_pa)
        baseline = probe_threshold(pp, target_set, rounds=4)
        pp.prime(target_set)
        machine.user_touch(DATA_VA)
        signal = pp.probe(target_set)
        return baseline, signal, pp.probe_misses(target_set)

    slow, fast = both_engines(monkeypatch, script)
    assert slow == fast
    baseline, signal, _ = fast
    assert signal > baseline


def test_machine_cycles_identical_after_probe_script(monkeypatch):
    """Beyond the measured latencies, the machine's own cycle counter
    must land on the same value — timers derive from it directly."""
    def script(machine):
        machine.map_user(CODE_VA, PAGE_SIZE)
        pp = PrimeProbeL1I(machine,
                           timer=Timer(machine, rng=random.Random(23)))
        for set_index in range(0, 16, 4):
            pp.prime(set_index)
            pp.probe(set_index)
        return machine.cycles

    slow, fast = both_engines(monkeypatch, script)
    assert slow == fast
