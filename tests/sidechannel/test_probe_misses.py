"""Per-line miss counting: the jitter-robust Prime+Probe readout."""

import pytest

from repro.kernel import Machine
from repro.params import PAGE_SIZE
from repro.pipeline import ZEN2
from repro.sidechannel import PrimeProbeL1D, PrimeProbeL1I, PrimeProbeL2

VICTIM_CODE = 0x0000_0000_2900_0000
VICTIM_DATA = 0x0000_0000_2A00_0000


@pytest.fixture()
def machine():
    return Machine(ZEN2, syscall_noise_evictions=0)


class TestL1IMissCounting:
    def test_quiet_set_zero_misses(self, machine):
        pp = PrimeProbeL1I(machine)
        pp.prime(17)
        assert pp.probe_misses(17) == 0

    def test_one_victim_line_one_miss(self, machine):
        machine.map_user(VICTIM_CODE, PAGE_SIZE)
        pp = PrimeProbeL1I(machine)
        pp.prime(17)
        machine.user_exec_touch(VICTIM_CODE + 17 * 64)
        assert pp.probe_misses(17) == 1

    def test_misses_bounded_by_ways(self, machine):
        machine.map_user(VICTIM_CODE, 16 * PAGE_SIZE)
        pp = PrimeProbeL1I(machine)
        pp.prime(17)
        for i in range(16):
            machine.user_exec_touch(VICTIM_CODE + i * PAGE_SIZE + 17 * 64)
        assert pp.probe_misses(17) <= 8


class TestL1D:
    def test_data_victim_detected(self, machine):
        machine.map_user(VICTIM_DATA, PAGE_SIZE, nx=True)
        pp = PrimeProbeL1D(machine)
        pp.prime(22)
        machine.user_touch(VICTIM_DATA + 22 * 64)
        assert pp.probe_misses(22) == 1

    def test_wrong_set_not_detected(self, machine):
        machine.map_user(VICTIM_DATA, PAGE_SIZE, nx=True)
        pp = PrimeProbeL1D(machine)
        pp.prime(22)
        machine.user_touch(VICTIM_DATA + 23 * 64)
        assert pp.probe_misses(22) == 0


class TestL2MissCounting:
    def test_l2_eviction_detected_as_memory_reload(self, machine):
        """An L2 miss costs memory latency — the probe_misses threshold
        sits between L2 and memory."""
        machine.map_user(VICTIM_DATA, PAGE_SIZE, nx=True)
        pp = PrimeProbeL2(machine)
        victim_pa = machine.mem.aspace.translate_noperm(VICTIM_DATA)
        target_set = PrimeProbeL2.set_of_phys(victim_pa)
        pp.prime(target_set)
        machine.user_touch(VICTIM_DATA)
        assert pp.probe_misses(target_set) >= 1

    def test_quiet_l2_set(self, machine):
        pp = PrimeProbeL2(machine)
        pp.prime(303)
        assert pp.probe_misses(303) == 0
