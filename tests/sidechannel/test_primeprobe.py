"""Prime+Probe: detecting victim activity in chosen cache sets."""

import pytest

from repro.kernel import Machine
from repro.params import PAGE_SIZE
from repro.pipeline import ZEN2
from repro.sidechannel import (L1I_SETS, L2_SETS, PrimeProbeL1I,
                               PrimeProbeL2, probe_threshold)

VICTIM_CODE = 0x0000_0000_2200_0000
VICTIM_DATA = 0x0000_0000_2300_0000


@pytest.fixture()
def machine():
    # No syscall noise: these tests characterise the channel itself.
    return Machine(ZEN2, syscall_noise_evictions=0)


class TestL1I:
    def test_probe_after_prime_is_fast(self, machine):
        pp = PrimeProbeL1I(machine)
        pp.prime(11)
        fast = pp.probe(11)
        # All 8 ways should hit L1.
        assert fast < 8 * machine.mem.hier.params.l2_latency

    def test_victim_fetch_detected_in_matching_set(self, machine):
        machine.map_user(VICTIM_CODE, PAGE_SIZE)
        pp = PrimeProbeL1I(machine)
        target_set = 13
        victim_va = VICTIM_CODE + target_set * 64

        pp.prime(target_set)
        baseline = pp.probe(target_set)

        pp.prime(target_set)
        machine.user_exec_touch(victim_va)
        signal = pp.probe(target_set)
        assert signal > baseline

    def test_victim_fetch_invisible_in_other_set(self, machine):
        machine.map_user(VICTIM_CODE, PAGE_SIZE)
        pp = PrimeProbeL1I(machine)
        pp.prime(20)
        baseline = pp.probe(20)
        pp.prime(20)
        machine.user_exec_touch(VICTIM_CODE + 45 * 64)
        quiet = pp.probe(20)
        assert abs(quiet - baseline) < machine.mem.hier.params.mem_latency

    def test_set_bounds(self, machine):
        pp = PrimeProbeL1I(machine)
        with pytest.raises(ValueError):
            pp.prime(L1I_SETS)


class TestL2:
    def test_prime_fills_absolute_set(self, machine):
        pp = PrimeProbeL2(machine)
        target_set = 600
        pp.prime(target_set)
        occupied = machine.mem.hier.l2.set_occupancy(target_set)
        assert occupied == 8

    def test_victim_load_detected(self, machine):
        machine.map_user(VICTIM_DATA, PAGE_SIZE)
        pp = PrimeProbeL2(machine)
        victim_pa = machine.mem.aspace.translate_noperm(VICTIM_DATA)
        target_set = PrimeProbeL2.set_of_phys(victim_pa)

        pp.prime(target_set)
        baseline = pp.probe(target_set)
        pp.prime(target_set)
        machine.user_touch(VICTIM_DATA)
        signal = pp.probe(target_set)
        assert signal > baseline

    def test_set_of_phys(self):
        assert PrimeProbeL2.set_of_phys(0) == 0
        assert PrimeProbeL2.set_of_phys(64) == 1
        assert PrimeProbeL2.set_of_phys(1024 * 64) == 0

    def test_probe_threshold_helper(self, machine):
        pp = PrimeProbeL2(machine)
        base = probe_threshold(pp, 100, rounds=4)
        assert base > 0
