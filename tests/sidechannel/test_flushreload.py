"""Flush+Reload through the shared (physmap-aliased) reload buffer."""

import pytest

from repro.kernel import Machine
from repro.pipeline import ZEN2
from repro.sidechannel import ReloadBuffer, SLOTS


@pytest.fixture()
def machine():
    return Machine(ZEN2, syscall_noise_evictions=0)


def test_flush_then_reload_all_cold(machine):
    buf = ReloadBuffer(machine)
    buf.flush()
    assert buf.reload() == []


def test_user_touch_detected(machine):
    buf = ReloadBuffer(machine)
    buf.flush()
    machine.user_touch(buf.slot_va(0x41))
    assert buf.reload() == [0x41]


def test_kernel_side_physmap_touch_detected(machine):
    """A supervisor load through physmap hits the same physical line —
    the property the MDS exploit's disclosure gadget relies on."""
    buf = ReloadBuffer(machine)
    pa = machine.mem.aspace.translate_noperm(buf.slot_va(0x77))
    kernel_alias = machine.kaslr.physmap_base + pa
    buf.flush()
    machine.mem.read_data(kernel_alias, 1, user_mode=False)
    assert buf.reload() == [0x77]


def test_leak_byte_via_trigger(machine):
    buf = ReloadBuffer(machine)
    leaked = buf.leak_byte(lambda: machine.user_touch(buf.slot_va(0xAB)))
    assert leaked == 0xAB


def test_leak_byte_no_signal_returns_none(machine):
    buf = ReloadBuffer(machine)
    assert buf.leak_byte(lambda: None, retries=2) is None


def test_slot_bounds(machine):
    buf = ReloadBuffer(machine)
    with pytest.raises(ValueError):
        buf.slot_va(SLOTS)
