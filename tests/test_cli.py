"""CLI: every command runs through the public API and exits cleanly."""

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_uarches(capsys):
    code, out = run(capsys, "uarches")
    assert code == 0
    assert "Zen 2" in out and "Intel 13th gen" in out
    assert "fetch+decode" in out and "uops" in out


def test_matrix_single_uarch(capsys):
    code, out = run(capsys, "matrix", "--uarch", "zen 1")
    assert code == 0
    assert "Zen 1" in out
    assert "EX" in out


def test_kaslr(capsys):
    code, out = run(capsys, "kaslr", "--uarch", "zen 3", "--seed", "5")
    assert code == 0
    assert "SUCCESS" in out


def test_covert(capsys):
    code, out = run(capsys, "covert", "--uarch", "zen 4", "--bits", "64")
    assert code == 0
    assert "fetch channel" in out
    assert "execute channel" not in out   # Zen 4 has no execute window


def test_covert_zen2_has_execute(capsys):
    code, out = run(capsys, "covert", "--uarch", "zen 2", "--bits", "64")
    assert code == 0
    assert "execute channel" in out


def test_gadgets(capsys):
    code, out = run(capsys, "gadgets", "--functions", "120", "--seed", "1")
    assert code == 0
    assert "Phantom-exploitable" in out


def test_rev_btb(capsys):
    code, out = run(capsys, "rev-btb", "--samples", "120000")
    assert code == 0
    assert "b47" in out
    assert "alias pattern" in out


def test_trace(capsys):
    code, out = run(capsys, "trace", "--nr", "39", "--limit", "40")
    assert code == 0
    assert "syscall" in out
    assert " K " in out   # kernel-mode instructions traced


def test_unknown_uarch_errors(capsys):
    with pytest.raises(KeyError):
        main(["kaslr", "--uarch", "zen 9"])


def test_missing_command_rejected(capsys):
    with pytest.raises(SystemExit):
        main([])
