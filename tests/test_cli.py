"""CLI: every command runs through the public API and exits cleanly."""

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_uarches(capsys):
    code, out = run(capsys, "uarches")
    assert code == 0
    assert "Zen 2" in out and "Intel 13th gen" in out
    assert "fetch+decode" in out and "uops" in out


def test_matrix_single_uarch(capsys):
    code, out = run(capsys, "matrix", "--uarch", "zen 1")
    assert code == 0
    assert "Zen 1" in out
    assert "EX" in out


def test_kaslr(capsys):
    code, out = run(capsys, "kaslr", "--uarch", "zen 3", "--seed", "5")
    assert code == 0
    assert "SUCCESS" in out


def test_covert(capsys):
    code, out = run(capsys, "covert", "--uarch", "zen 4", "--bits", "64")
    assert code == 0
    assert "fetch channel" in out
    assert "execute channel" not in out   # Zen 4 has no execute window


def test_covert_zen2_has_execute(capsys):
    code, out = run(capsys, "covert", "--uarch", "zen 2", "--bits", "64")
    assert code == 0
    assert "execute channel" in out


def test_gadgets(capsys):
    code, out = run(capsys, "gadgets", "--functions", "120", "--seed", "1")
    assert code == 0
    assert "Phantom-exploitable" in out


def test_rev_btb(capsys):
    code, out = run(capsys, "rev-btb", "--samples", "120000")
    assert code == 0
    assert "b47" in out
    assert "alias pattern" in out


def test_trace(capsys):
    code, out = run(capsys, "trace", "--nr", "39", "--limit", "40")
    assert code == 0
    assert "syscall" in out
    assert " K " in out   # kernel-mode instructions traced


def test_unknown_uarch_errors(capsys):
    with pytest.raises(KeyError):
        main(["kaslr", "--uarch", "zen 9"])


def test_missing_command_rejected(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_kaslr_json_emits_valid_manifest(capsys):
    import json

    from repro.telemetry import validate_manifest

    code, out = run(capsys, "kaslr", "--uarch", "zen2", "--json")
    assert code == 0
    doc = json.loads(out)          # manifest only: no text around it
    validate_manifest(doc)
    assert doc["command"] == "kaslr"
    assert doc["outcome"]["status"] == "success"
    assert doc["config"]["uarch"] == "Zen 2"
    assert doc["totals"]["cycles"] > 0
    assert doc["phases"][0]["name"] == "break-image-kaslr"


def test_matrix_jobs_flag_matches_serial(capsys):
    code, serial = run(capsys, "matrix", "--uarch", "zen 1", "--jobs", "1")
    assert code == 0
    code, pooled = run(capsys, "matrix", "--uarch", "zen 1", "--jobs", "2")
    assert code == 0
    assert pooled == serial          # identical table at any worker count


def test_kaslr_jobs_manifest_fingerprint_stable(capsys):
    import json

    from repro.runner import manifest_fingerprint

    docs = []
    for jobs in ("1", "2"):
        code, out = run(capsys, "kaslr", "--uarch", "zen2",
                        "--jobs", jobs, "--json")
        assert code == 0
        docs.append(json.loads(out))
    a, b = (manifest_fingerprint(d) for d in docs)
    assert a == b


def test_uarch_names_are_separator_insensitive(capsys):
    code, _ = run(capsys, "kaslr", "--uarch", "Zen-3", "--seed", "5")
    assert code == 0


def test_gadgets_json_valid(capsys):
    import json

    from repro.telemetry import validate_manifest

    code, out = run(capsys, "gadgets", "--functions", "60", "--json")
    assert code == 0
    doc = json.loads(out)
    validate_manifest(doc)
    assert doc["outcome"]["phantom_exploitable"] >= 0


def test_trace_out_writes_jsonl(capsys, tmp_path):
    from repro.telemetry import TRACE_SCHEMA, read_jsonl

    path = tmp_path / "trace.jsonl"
    code, _ = run(capsys, "trace", "--nr", "39", "--limit", "40",
                  "--trace-out", str(path))
    assert code == 0
    events = read_jsonl(path)
    assert events
    assert all(e["schema"] == TRACE_SCHEMA for e in events)
    assert {"retire", "syscall"} <= {e["kind"] for e in events}
    assert not __import__("repro.telemetry", fromlist=["TRACE"]).TRACE.enabled


def test_results_dir_archives_manifest(capsys, tmp_path):
    from repro.telemetry import RunManifest, validate_manifest

    code, out = run(capsys, "gadgets", "--functions", "60",
                    "--results-dir", str(tmp_path))
    assert code == 0
    (path,) = tmp_path.glob("gadgets-*.json")
    assert str(path) in out
    validate_manifest(RunManifest.load(path))


def test_stats_summarizes_one_manifest(capsys, tmp_path):
    code, out = run(capsys, "gadgets", "--functions", "60",
                    "--results-dir", str(tmp_path))
    (path,) = tmp_path.glob("gadgets-*.json")
    code, out = run(capsys, "stats", str(path))
    assert code == 0
    assert "run: gadgets" in out
    assert "status: success" in out


def test_stats_diffs_two_manifests(capsys, tmp_path):
    run(capsys, "gadgets", "--functions", "60",
        "--results-dir", str(tmp_path / "a"))
    run(capsys, "gadgets", "--functions", "90",
        "--results-dir", str(tmp_path / "b"))
    (a,) = (tmp_path / "a").glob("*.json")
    (b,) = (tmp_path / "b").glob("*.json")
    code, out = run(capsys, "stats", str(a), str(b))
    assert code == 0
    assert "diff: gadgets" in out


def _write_bench_doc(path, speedup=10.0):
    import json

    from repro.bench import WorkloadResult, document

    result = WorkloadResult(
        name="branch_heavy", iterations=10, instructions=100,
        slow_seconds=speedup, fast_seconds=1.0,
        superblocks={"compiled": 2, "fused_instructions": 10,
                     "mean_length": 5.0, "invalidated": 0,
                     "probe_bails": 0, "transient_compiled": 1,
                     "cycles_skipped": 0})
    path.write_text(json.dumps(document([result])))
    return path


def test_stats_summarizes_bench_document(capsys, tmp_path):
    path = _write_bench_doc(tmp_path / "bench.json")
    code, out = run(capsys, "stats", str(path))
    assert code == 0
    assert "branch_heavy" in out
    assert "superblocks:" in out


def test_stats_diffs_two_bench_documents(capsys, tmp_path):
    a = _write_bench_doc(tmp_path / "a.json", speedup=10.0)
    b = _write_bench_doc(tmp_path / "b.json", speedup=12.0)
    code, out = run(capsys, "stats", str(a), str(b))
    assert code == 0
    assert "+2.00x" in out


def test_stats_refuses_mixed_document_kinds(capsys, tmp_path):
    run(capsys, "gadgets", "--functions", "60",
        "--results-dir", str(tmp_path))
    (manifest,) = tmp_path.glob("gadgets-*.json")
    bench = _write_bench_doc(tmp_path / "bench.json")
    code = main(["stats", str(manifest), str(bench)])
    assert code == 2
    assert "cannot diff" in capsys.readouterr().err


def test_stats_rejects_three_manifests(capsys):
    code = main(["stats", "a.json", "b.json", "c.json"])
    assert code == 2


def test_stats_rejects_non_manifest_json(capsys, tmp_path):
    bogus = tmp_path / "bogus.json"
    bogus.write_text('{"hello": 1}')
    code = main(["stats", str(bogus)])
    assert code == 2
    assert "not a run manifest" in capsys.readouterr().err


def test_stats_missing_file(capsys):
    code = main(["stats", "/nonexistent/run.json"])
    assert code == 2
    assert "cannot read" in capsys.readouterr().err


def test_matrix_results_dir_checkpoints_and_resumes(capsys, tmp_path):
    import json

    code, _ = run(capsys, "matrix", "--uarch", "zen 1", "--jobs", "1",
                  "--results-dir", str(tmp_path))
    assert code == 0
    checkpoint = tmp_path / "matrix-checkpoint.jsonl"
    assert checkpoint.exists()
    code, out = run(capsys, "matrix", "--uarch", "zen 1", "--jobs", "1",
                    "--resume", str(checkpoint), "--json")
    assert code == 0
    doc = json.loads(out)
    assert doc["outcome"]["resume"]["jobs_skipped"] == 22
    assert doc["outcome"]["resume"]["jobs_rerun"] == 0


def test_spans_flag_captures_and_stitches(capsys, tmp_path):
    from repro.telemetry import read_spans, stitch, validate_span

    spans = tmp_path / "spans"
    code, out = run(capsys, "matrix", "--uarch", "zen 1", "--jobs", "1",
                    "--spans", str(spans))
    assert code == 0
    assert f"spans: {spans / 'trace.jsonl'}" in out
    assert (spans / "trace.jsonl").exists()
    records = read_spans(spans)
    for record in records:
        validate_span(record)
    trace = stitch(records)
    assert trace.problems() == []
    names = {r["name"] for r in trace.spans}
    assert "run:matrix" in names and "campaign:matrix" in names
    assert "measure:decode" in names and "boot" in names


def test_spans_structure_identical_at_any_jobs(capsys, tmp_path):
    from repro.telemetry import read_spans, stitch, trace_structure

    structures = []
    for jobs in ("1", "2"):
        spans = tmp_path / f"jobs{jobs}"
        code, _ = run(capsys, "matrix", "--uarch", "zen 1",
                      "--jobs", jobs, "--spans", str(spans))
        assert code == 0
        structures.append(trace_structure(stitch(read_spans(spans))))
    assert structures[0] == structures[1]


def test_trace_summarize_renders_critical_path(capsys, tmp_path):
    spans = tmp_path / "spans"
    run(capsys, "kaslr", "--uarch", "zen3", "--spans", str(spans))
    code, out = run(capsys, "trace", "summarize", str(spans))
    assert code == 0
    assert "critical path:" in out
    assert "run:kaslr" in out
    assert "spans by name:" in out


def test_trace_summarize_empty_capture_fails(capsys, tmp_path):
    code = main(["trace", "summarize", str(tmp_path)])
    assert code == 2
    assert "no phantom.span/1 records" in capsys.readouterr().err


def test_trace_export_perfetto(capsys, tmp_path):
    import json

    spans = tmp_path / "spans"
    run(capsys, "kaslr", "--uarch", "zen3", "--spans", str(spans))
    out_file = tmp_path / "trace.json"
    code, _ = run(capsys, "trace", "export", str(spans),
                  "--out", str(out_file))
    assert code == 0
    doc = json.loads(out_file.read_text())
    assert doc["otherData"]["schema"] == "phantom.span/1"
    assert doc["traceEvents"]
    assert all(e["ph"] == "X" for e in doc["traceEvents"])
    assert any(e["name"] == "run:kaslr" for e in doc["traceEvents"])


def test_trace_export_openmetrics_from_manifest(capsys, tmp_path):
    run(capsys, "kaslr", "--uarch", "zen3",
        "--results-dir", str(tmp_path))
    (manifest,) = tmp_path.glob("kaslr-2*.json")
    code, out = run(capsys, "trace", "export", str(manifest),
                    "--format", "openmetrics")
    assert code == 0
    assert "# TYPE phantom_" in out
    assert "phantom_pmc_" in out
    assert out.rstrip().endswith("# EOF")


def test_progress_flag_streams_events(capsys, tmp_path):
    import json

    progress = tmp_path / "progress.jsonl"
    code, _ = run(capsys, "matrix", "--uarch", "zen 1", "--jobs", "1",
                  "--progress", str(progress))
    assert code == 0
    events = [json.loads(line)
              for line in progress.read_text().splitlines()]
    assert events[0]["event"] == "campaign_begin"
    assert events[-1]["event"] == "campaign_end"
    assert events[-1]["status"] == "success"
    assert all(e["schema"] == "phantom.progress/1" for e in events)
    done = [e for e in events if e["event"] == "job_done"]
    assert len(done) == 22                  # one per matrix cell
    assert done[-1]["done"] == 22


def test_chaos_smoke_recovers_and_matches_clean(capsys, tmp_path):
    code, out = run(capsys, "chaos", "--seed", "0", "--jobs", "2",
                    "--cells", "4", "--watchdog", "1.0", "--hang", "10",
                    "--state-dir", str(tmp_path / "state"))
    assert code == 0
    assert "chaos smoke: OK" in out
    assert "faults fired: 4/4" in out
    assert "fingerprint-equals" in out


def test_serve_selftest_dedups_and_reports(capsys, tmp_path):
    code, out = run(capsys, "serve", "--selftest",
                    "--selftest-distinct", "2",
                    "--selftest-replays", "6",
                    "--store-dir", str(tmp_path / "store"))
    assert code == 0
    assert "hit rate 100.0%" in out
    assert "0 fingerprint mismatches" in out
    assert "0 untyped failures" in out
    assert "selftest: OK" in out


def test_serve_selftest_json_document(capsys, tmp_path):
    import json

    code, out = run(capsys, "serve", "--selftest", "--json",
                    "--selftest-distinct", "2",
                    "--selftest-replays", "4",
                    "--store-dir", str(tmp_path / "store"))
    assert code == 0
    doc = json.loads(out)
    assert doc["schema"] == "phantom.load-replay/1"
    assert doc["ok"] is True
    assert doc["replay"]["hit_rate"] >= 0.95


def test_submit_rejects_malformed_param(capsys):
    code = main(["submit", "matrix", "--param", "no-equals-sign"])
    err = capsys.readouterr().err
    assert code == 2
    assert "KEY=VALUE" in err


def test_submit_connection_refused_is_clean_failure(capsys):
    # nothing listens on this port; the client must fail, not hang
    import pytest

    with pytest.raises(OSError):
        main(["submit", "matrix", "--url", "http://127.0.0.1:9",
              "--param", "cells=1"])


def test_submit_and_serve_roundtrip(capsys, tmp_path):
    """Full CLI pair: a background service, two identical submissions,
    the second one answered from the store."""
    from repro.service import ServiceConfig, start_in_thread

    handle = start_in_thread(
        ServiceConfig(port=0, store_dir=str(tmp_path / "store")))
    try:
        code, out = run(capsys, "submit", "matrix",
                        "--url", handle.url, "--tenant", "cli-test",
                        "--param", 'uarches=["zen 2"]',
                        "--param", "cells=2")
        assert code == 0
        assert "done" in out
        assert "hit rate 0.0%" in out
        code, out = run(capsys, "submit", "matrix",
                        "--url", handle.url, "--tenant", "cli-test",
                        "--param", 'uarches=["zen 2"]',
                        "--param", "cells=2")
        assert code == 0
        assert "2/2 jobs from the store" in out
        assert "hit rate 100.0%" in out
    finally:
        handle.stop()


def test_campaign_flags_share_one_record(capsys, tmp_path):
    """--jobs/--resume/--checkpoint-every come from CampaignOptions on
    every campaign command (the six copies of flag plumbing are gone)."""
    from repro.cli import build_parser

    parser = build_parser()
    for command in ("matrix", "kaslr", "physmap", "leak", "covert",
                    "fuzz"):
        args = parser.parse_args([command, "--jobs", "3",
                                  "--checkpoint-every", "2"])
        from repro.runner import CampaignOptions
        options = CampaignOptions.from_args(args)
        assert options.jobs == 3
        assert options.checkpoint_every == 2
    # fuzz keeps its serial default
    assert parser.parse_args(["fuzz"]).jobs == 1
    assert parser.parse_args(["matrix"]).jobs == 0
