"""Assembler: labels, layout, fixups, image composition."""

import pytest

from repro.errors import AssemblerError
from repro.isa import Assembler, Cond, Image, Mnemonic, Reg, Segment, decode


class TestLayout:
    def test_pc_advances_by_encoded_length(self):
        asm = Assembler(0x1000)
        asm.nop()
        assert asm.pc == 0x1001
        asm.jmp(0x1000)
        assert asm.pc == 0x1006
        asm.mov_ri(Reg.RAX, 5)
        assert asm.pc == 0x1010

    def test_pad_to(self):
        asm = Assembler(0x1000)
        asm.nop()
        asm.pad_to(0x1040)
        assert asm.pc == 0x1040
        segment, _ = asm.finish()
        assert segment.data == b"\x90" * 0x40

    def test_pad_backwards_fails(self):
        asm = Assembler(0x1000)
        asm.nop_sled(16)
        with pytest.raises(AssemblerError):
            asm.pad_to(0x1008)

    def test_align(self):
        asm = Assembler(0x1001)
        asm.align(64)
        assert asm.pc == 0x1040
        asm.align(64)
        assert asm.pc == 0x1040


class TestLabels:
    def test_backward_jump(self):
        asm = Assembler(0x2000)
        asm.label("top")
        asm.nop()
        asm.jmp("top")
        segment, symbols = asm.finish()
        assert symbols["top"] == 0x2000
        instr = decode(segment.data, 1)
        # jmp ends at 0x2006; displacement back to 0x2000 is -6.
        assert instr.disp == -6

    def test_forward_jump(self):
        asm = Assembler(0x2000)
        asm.jmp("end")
        asm.nop_sled(11)
        asm.label("end")
        asm.ret()
        segment, _ = asm.finish()
        instr = decode(segment.data)
        assert instr.target(0x2000) == 0x2010

    def test_numeric_target(self):
        asm = Assembler(0x3000)
        asm.jmp(0x3100)
        segment, _ = asm.finish()
        assert decode(segment.data).target(0x3000) == 0x3100

    def test_call_label(self):
        asm = Assembler(0x4000)
        asm.call("fn")
        asm.hlt()
        asm.label("fn")
        asm.ret()
        segment, symbols = asm.finish()
        assert decode(segment.data).target(0x4000) == symbols["fn"]

    def test_jcc_label(self):
        asm = Assembler(0x5000)
        asm.label("loop")
        asm.sub_ri(Reg.RCX, 1)
        asm.jcc(Cond.NE, "loop")
        segment, _ = asm.finish()
        instr = decode(segment.data, 7)
        assert instr.mnemonic is Mnemonic.JCC
        assert instr.target(0x5007) == 0x5000

    def test_undefined_label(self):
        asm = Assembler(0x1000)
        asm.jmp("nowhere")
        with pytest.raises(AssemblerError):
            asm.finish()

    def test_duplicate_label(self):
        asm = Assembler(0x1000)
        asm.label("x")
        with pytest.raises(AssemblerError):
            asm.label("x")

    def test_short_jump_out_of_range(self):
        asm = Assembler(0x1000)
        asm.jmp_short("far")
        asm.nop_sled(300)
        asm.label("far")
        with pytest.raises(AssemblerError):
            asm.finish()


class TestImage:
    def test_overlap_rejected(self):
        image = Image()
        image.add(Segment(0x1000, b"\x90" * 16))
        with pytest.raises(AssemblerError):
            image.add(Segment(0x100F, b"\x90"))

    def test_adjacent_allowed(self):
        image = Image()
        image.add(Segment(0x1000, b"\x90" * 16))
        image.add(Segment(0x1010, b"\xc3"))
        assert image.read(0x1010, 1) == b"\xc3"

    def test_read_across_gap_fails(self):
        image = Image()
        image.add(Segment(0x1000, b"\x90" * 4))
        with pytest.raises(AssemblerError):
            image.read(0x1002, 4)

    def test_merge_symbols(self):
        a = Assembler(0x1000)
        a.label("a")
        a.ret()
        b = Assembler(0x2000)
        b.label("b")
        b.ret()
        image = a.image()
        image.merge(b.image())
        assert image.symbols == {"a": 0x1000, "b": 0x2000}

    def test_merge_duplicate_symbol_rejected(self):
        a = Assembler(0x1000)
        a.label("x")
        a.ret()
        b = Assembler(0x2000)
        b.label("x")
        b.ret()
        image = a.image()
        with pytest.raises(AssemblerError):
            image.merge(b.image())


class TestDisassemblyStream:
    def test_decode_stream_matches_emitted(self):
        asm = Assembler(0x8000)
        asm.push(Reg.RBP)
        asm.mov_rr(Reg.RBP, Reg.RSP)
        asm.mov_ri(Reg.RSI, 0x4000)
        asm.sub_ri(Reg.RSP, 8)
        asm.load(Reg.RAX, Reg.RDI, 0x10)
        asm.store(Reg.RBP, -8, Reg.RAX)
        asm.lfence()
        asm.pop(Reg.RBP)
        asm.ret()
        segment, _ = asm.finish()
        mnems = []
        pos = 0
        while pos < len(segment.data):
            instr = decode(segment.data, pos)
            mnems.append(instr.mnemonic)
            pos += instr.length
        assert mnems == [
            Mnemonic.PUSH, Mnemonic.MOV_RR, Mnemonic.MOV_RI, Mnemonic.SUB_RI,
            Mnemonic.MOV_RM, Mnemonic.MOV_MR, Mnemonic.LFENCE, Mnemonic.POP,
            Mnemonic.RET,
        ]
