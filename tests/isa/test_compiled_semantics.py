"""``compile_executor`` thunks must be bit-equivalent to ``execute``.

The fast path replaces the interpretive ``execute`` dispatch with one
closure per decoded instruction.  For every implemented mnemonic the
two must agree on: the returned ``ExecResult`` (next pc, trap, memory
access), every register, every flag, and the exact sequence of
load/store callbacks — over randomized input states.
"""

import random

from repro.isa import (ArchState, Assembler, Cond, Reg, compile_executor,
                       decode, execute)

PC_BASE = 0x0000_0040_0000


def corpus():
    """One of every implemented operation, branches included."""
    asm = Assembler(PC_BASE)
    asm.nop()
    asm.nopl(6)
    asm.mov_ri(Reg.RAX, 0x1122334455667788)
    asm.mov_rr(Reg.RBX, Reg.RCX)
    asm.load(Reg.RDX, Reg.RBX, 0x40)
    asm.loadb(Reg.RSI, Reg.RBX, 3)
    asm.store(Reg.RBX, 0x18, Reg.RDI)
    asm.lea(Reg.R8, Reg.RSP, -16)
    asm.add_ri(Reg.RAX, 123456)
    asm.add_rr(Reg.RAX, Reg.R9)
    asm.sub_ri(Reg.RCX, 7)
    asm.sub_rr(Reg.RCX, Reg.RDX)
    asm.cmp_ri(Reg.RAX, 99)
    asm.cmp_rr(Reg.RAX, Reg.RBX)
    asm.test_rr(Reg.RAX, Reg.RAX)
    asm.and_ri(Reg.RDX, 0xFF)
    asm.xor_rr(Reg.RSI, Reg.RDI)
    asm.or_rr(Reg.RSI, Reg.R10)
    asm.shl_ri(Reg.RAX, 13)
    asm.shr_ri(Reg.RAX, 7)
    asm.inc(Reg.R11)
    asm.dec(Reg.R11)
    asm.neg(Reg.RDX)
    asm.not_(Reg.RDX)
    asm.imul_rr(Reg.RAX, Reg.RBX)
    asm.xchg_rr(Reg.RAX, Reg.RBX)
    for cc in Cond:
        asm.cmov(cc, Reg.RAX, Reg.RBX)
        asm.jcc(cc, "fwd")
    asm.jmp("fwd")
    asm.jmp_short("fwd")
    asm.jmp_reg(Reg.RAX)
    asm.call("fwd")
    asm.call_reg(Reg.RBX)
    asm.ret()
    asm.push(Reg.RCX)
    asm.pop(Reg.RDX)
    asm.rdtsc()
    asm.lfence()
    asm.mfence()
    asm.syscall()
    asm.sysret()
    asm.hlt()
    asm.ud2()
    asm.label("fwd")
    asm.nop()
    segment, _ = asm.finish()
    out, off = [], 0
    while off < len(segment.data):
        instr = decode(segment.data, off)
        out.append((PC_BASE + off, instr))
        off += instr.length
    return out


def random_state(rng: random.Random) -> ArchState:
    state = ArchState()
    for reg in Reg:
        state.write(reg, rng.getrandbits(64))
    state.flags.zf = rng.random() < 0.5
    state.flags.sf = rng.random() < 0.5
    state.flags.cf = rng.random() < 0.5
    state.flags.of = rng.random() < 0.5
    return state


def recording_memory(log: list):
    def load(addr: int, size: int) -> int:
        log.append(("load", addr, size))
        # Deterministic value derived from the request, same both runs.
        return (addr * 0x9E3779B1 + size) & ((1 << (size * 8)) - 1)

    def store(addr: int, size: int, value: int) -> None:
        log.append(("store", addr, size, value))

    return load, store


def dump(state: ArchState) -> tuple:
    return (tuple(state.regs), state.flags.zf, state.flags.sf,
            state.flags.cf, state.flags.of)


def test_every_mnemonic_matches_interpreter():
    rng = random.Random(1234)
    instrs = corpus()
    assert len(instrs) > 60
    for pc, instr in instrs:
        thunk = compile_executor(instr, pc)
        for _ in range(8):
            seed_state = random_state(rng)
            ref_state, fast_state = seed_state.copy(), seed_state.copy()
            ref_log, fast_log = [], []
            ref_load, ref_store = recording_memory(ref_log)
            fast_load, fast_store = recording_memory(fast_log)
            ref = execute(instr, pc, ref_state, ref_load, ref_store,
                          rdtsc=lambda: 777)
            fast = thunk(fast_state, fast_load, fast_store, lambda: 777)
            assert fast == ref, instr
            assert fast_log == ref_log, instr
            assert dump(fast_state) == dump(ref_state), instr


def test_thunk_returns_fresh_results():
    """Each invocation must allocate a new ExecResult: results outlive
    re-execution of the same pc inside backend-mispredict windows."""
    pc, instr = corpus()[0]
    thunk = compile_executor(instr, pc)
    state = ArchState()
    load, store = recording_memory([])
    first = thunk(state, load, store, lambda: 0)
    second = thunk(state, load, store, lambda: 0)
    assert first is not second
