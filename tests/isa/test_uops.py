"""µop cracking coverage for every mnemonic."""

from repro.isa import Instruction, Mnemonic, Reg, UopKind, crack, uop_count


def test_nop_cracks_to_nop():
    uops = crack(Instruction(Mnemonic.NOP, length=1), 0x100)
    assert [u.kind for u in uops] == [UopKind.NOP]
    assert uops[0].pc == 0x100


def test_load_is_single_load_uop():
    uops = crack(Instruction(Mnemonic.MOV_RM, dest=Reg.RAX, base=Reg.RBX,
                             length=8), 0)
    assert [u.kind for u in uops] == [UopKind.LOAD]
    assert uops[0].is_memory


def test_call_cracks_to_store_plus_branch():
    uops = crack(Instruction(Mnemonic.CALL, disp=0, length=5), 0)
    assert [u.kind for u in uops] == [UopKind.STORE, UopKind.BRANCH]
    assert [u.index for u in uops] == [0, 1]


def test_ret_cracks_to_load_plus_branch():
    uops = crack(Instruction(Mnemonic.RET, length=1), 0)
    assert [u.kind for u in uops] == [UopKind.LOAD, UopKind.BRANCH]


def test_every_mnemonic_cracks():
    operands = dict(dest=Reg.RAX, src=Reg.RBX, base=Reg.RCX, imm=1)
    for mnemonic in Mnemonic:
        instr = Instruction(mnemonic, **operands, length=4)
        uops = crack(instr, 0)
        assert len(uops) == uop_count(instr) >= 1


def test_fence_uops():
    assert crack(Instruction(Mnemonic.LFENCE, length=3), 0)[0].kind \
        is UopKind.FENCE


def test_branch_uop_not_memory():
    uop = crack(Instruction(Mnemonic.JMP, disp=0, length=5), 0)[0]
    assert uop.kind is UopKind.BRANCH
    assert not uop.is_memory
