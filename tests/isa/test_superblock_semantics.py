"""``superblock_arch_lines`` must be bit-equivalent to ``execute``.

The superblock engine concatenates per-instruction source lines into
one fused closure.  For every fusible mnemonic the emitted lines must
produce exactly the architectural effect of the interpretive
``execute`` dispatch — every register, every flag, and the identical
load/store callback sequence — over randomized input states.  The
classification itself is pinned too: anything that branches, traps,
serializes or reads the clock must be refused.
"""

import random

from repro.isa import (ArchState, Assembler, Cond, Reg, decode, execute)
from repro.isa.instructions import Mnemonic
from repro.isa.semantics import (SUPERBLOCK_FUSIBLE, SUPERBLOCK_HELPERS,
                                 superblock_arch_lines, superblock_fusible)

PC_BASE = 0x0000_0040_0000


def fusible_corpus():
    """At least one instruction for every fusible mnemonic."""
    asm = Assembler(PC_BASE)
    asm.nop()
    asm.nopl(6)
    asm.mov_ri(Reg.RAX, 0x1122334455667788)
    asm.mov_rr(Reg.RBX, Reg.RCX)
    asm.load(Reg.RDX, Reg.RBX, 0x40)
    asm.loadb(Reg.RSI, Reg.RBX, 3)
    asm.store(Reg.RBX, 0x18, Reg.RDI)
    asm.lea(Reg.R8, Reg.RSP, -16)
    asm.add_ri(Reg.RAX, 123456)
    asm.add_rr(Reg.RAX, Reg.R9)
    asm.sub_ri(Reg.RCX, 7)
    asm.sub_rr(Reg.RCX, Reg.RDX)
    asm.cmp_ri(Reg.RAX, 99)
    asm.cmp_rr(Reg.RAX, Reg.RBX)
    asm.test_rr(Reg.RAX, Reg.RAX)
    asm.and_ri(Reg.RDX, 0xFF)
    asm.xor_rr(Reg.RSI, Reg.RDI)
    asm.or_rr(Reg.RSI, Reg.R10)
    asm.shl_ri(Reg.RAX, 13)
    asm.shr_ri(Reg.RAX, 7)
    asm.inc(Reg.R11)
    asm.dec(Reg.R11)
    asm.neg(Reg.RDX)
    asm.not_(Reg.RDX)
    asm.imul_rr(Reg.RAX, Reg.RBX)
    asm.xchg_rr(Reg.RAX, Reg.RBX)
    for cc in Cond:
        asm.cmov(cc, Reg.RAX, Reg.RBX)
    asm.push(Reg.RCX)
    asm.pop(Reg.RDX)
    segment, _ = asm.finish()
    out, off = [], 0
    while off < len(segment.data):
        instr = decode(segment.data, off)
        out.append((PC_BASE + off, instr))
        off += instr.length
    return out


def nonfusible_corpus():
    asm = Assembler(PC_BASE)
    asm.jcc(Cond.E, "fwd")
    asm.jmp("fwd")
    asm.jmp_reg(Reg.RAX)
    asm.call("fwd")
    asm.call_reg(Reg.RBX)
    asm.ret()
    asm.rdtsc()
    asm.lfence()
    asm.mfence()
    asm.syscall()
    asm.sysret()
    asm.hlt()
    asm.ud2()
    asm.label("fwd")
    asm.nop()
    segment, _ = asm.finish()
    out, off = [], 0
    while off < len(segment.data):
        instr = decode(segment.data, off)
        out.append(instr)
        off += instr.length
    return out[:-1]   # drop the trailing landing-pad nop


def fuse(instrs_with_pcs) -> "callable":
    """A fused closure over *instrs_with_pcs*, the way the CPU builds
    superblock bodies (same helper globals, same local names)."""
    consts = dict(SUPERBLOCK_HELPERS)
    lines = ["def _blk(state, load, store):",
             "    regs = state.regs",
             "    flags = state.flags"]
    for index, (pc, instr) in enumerate(instrs_with_pcs):
        for line in superblock_arch_lines(instr, pc, index, consts):
            lines.append("    " + line)
    lines.append("    return None")
    namespace = dict(consts)
    exec(compile("\n".join(lines), "<test-superblock>", "exec"), namespace)
    return namespace["_blk"]


def random_state(rng: random.Random) -> ArchState:
    state = ArchState()
    for reg in Reg:
        state.write(reg, rng.getrandbits(64))
    state.flags.zf = rng.random() < 0.5
    state.flags.sf = rng.random() < 0.5
    state.flags.cf = rng.random() < 0.5
    state.flags.of = rng.random() < 0.5
    return state


def recording_memory(log: list):
    def load(addr: int, size: int) -> int:
        log.append(("load", addr, size))
        return (addr * 0x9E3779B1 + size) & ((1 << (size * 8)) - 1)

    def store(addr: int, size: int, value: int) -> None:
        log.append(("store", addr, size, value))

    return load, store


def dump(state: ArchState) -> tuple:
    return (tuple(state.regs), state.flags.zf, state.flags.sf,
            state.flags.cf, state.flags.of)


class TestClassification:
    def test_corpus_covers_every_fusible_mnemonic(self):
        seen = {instr.mnemonic for _, instr in fusible_corpus()}
        assert seen == set(SUPERBLOCK_FUSIBLE)

    def test_every_corpus_instruction_is_fusible(self):
        for _, instr in fusible_corpus():
            assert superblock_fusible(instr), instr

    def test_control_flow_traps_fences_and_rdtsc_are_refused(self):
        refused = nonfusible_corpus()
        assert len(refused) >= 13
        for instr in refused:
            assert not superblock_fusible(instr), instr
        assert {i.mnemonic for i in refused} & {
            Mnemonic.RDTSC, Mnemonic.LFENCE, Mnemonic.SYSCALL}


class TestFusedEquivalence:
    def test_single_instructions_match_execute(self):
        rng = random.Random(0x5B)
        for pc, instr in fusible_corpus():
            fn = fuse([(pc, instr)])
            for _ in range(20):
                seed_state = random_state(rng)
                ref = ArchState()
                fut = ArchState()
                ref.regs[:] = seed_state.regs
                fut.regs[:] = seed_state.regs
                for name in ("zf", "sf", "cf", "of"):
                    setattr(ref.flags, name,
                            getattr(seed_state.flags, name))
                    setattr(fut.flags, name,
                            getattr(seed_state.flags, name))
                ref_log, fut_log = [], []
                execute(instr, pc, ref, *recording_memory(ref_log))
                fn(fut, *recording_memory(fut_log))
                assert dump(fut) == dump(ref), instr
                assert fut_log == ref_log, instr

    def test_whole_corpus_fused_as_one_block(self):
        rng = random.Random(0xB5)
        corpus = fusible_corpus()
        fn = fuse(corpus)
        for _ in range(50):
            seed_state = random_state(rng)
            ref = ArchState()
            fut = ArchState()
            ref.regs[:] = seed_state.regs
            fut.regs[:] = seed_state.regs
            for name in ("zf", "sf", "cf", "of"):
                setattr(ref.flags, name, getattr(seed_state.flags, name))
                setattr(fut.flags, name, getattr(seed_state.flags, name))
            ref_log, fut_log = [], []
            load, store = recording_memory(ref_log)
            for pc, instr in corpus:
                execute(instr, pc, ref, load, store)
            fn(fut, *recording_memory(fut_log))
            assert dump(fut) == dump(ref)
            assert fut_log == ref_log

    def test_random_blocks_match_sequential_execution(self):
        rng = random.Random(0xC4FE)
        corpus = fusible_corpus()
        for _ in range(40):
            block = [corpus[rng.randrange(len(corpus))]
                     for _ in range(rng.randrange(2, 24))]
            fn = fuse(block)
            seed_state = random_state(rng)
            ref = ArchState()
            fut = ArchState()
            ref.regs[:] = seed_state.regs
            fut.regs[:] = seed_state.regs
            for name in ("zf", "sf", "cf", "of"):
                setattr(ref.flags, name, getattr(seed_state.flags, name))
                setattr(fut.flags, name, getattr(seed_state.flags, name))
            ref_log, fut_log = [], []
            load, store = recording_memory(ref_log)
            for pc, instr in block:
                execute(instr, pc, ref, load, store)
            fn(fut, *recording_memory(fut_log))
            assert dump(fut) == dump(ref)
            assert fut_log == ref_log
