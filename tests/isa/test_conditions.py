"""All 16 condition codes, property-tested against reference predicates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import (ArchState, Cond, Instruction, Mnemonic, Reg,
                       condition_met, execute)
from repro.params import MASK64

u64 = st.integers(min_value=0, max_value=MASK64)


def signed(x):
    return x - (1 << 64) if x >> 63 else x


def flags_after_cmp(a, b):
    state = ArchState()
    state.write(Reg.RAX, a)
    instr = Instruction(Mnemonic.CMP_RI, dest=Reg.RAX, imm=0, length=7)
    # Use register-register compare to cover full 64-bit b.
    state.write(Reg.RBX, b)
    instr = Instruction(Mnemonic.CMP_RR, dest=Reg.RAX, src=Reg.RBX,
                        length=3)
    execute(instr, 0, state, lambda a_, s: 0, lambda a_, s, v: None)
    return state.flags


#: cc -> reference predicate over (a, b) after ``cmp a, b``.
REFERENCE = {
    Cond.E: lambda a, b: a == b,
    Cond.NE: lambda a, b: a != b,
    Cond.B: lambda a, b: a < b,                      # unsigned
    Cond.AE: lambda a, b: a >= b,
    Cond.BE: lambda a, b: a <= b,
    Cond.A: lambda a, b: a > b,
    Cond.L: lambda a, b: signed(a) < signed(b),      # signed
    Cond.GE: lambda a, b: signed(a) >= signed(b),
    Cond.LE: lambda a, b: signed(a) <= signed(b),
    Cond.G: lambda a, b: signed(a) > signed(b),
    Cond.S: lambda a, b: bool(((a - b) & MASK64) >> 63),
    Cond.NS: lambda a, b: not (((a - b) & MASK64) >> 63),
}


@pytest.mark.parametrize("cc", sorted(REFERENCE, key=lambda c: c.value))
@given(a=u64, b=u64)
@settings(max_examples=60)
def test_condition_matches_reference(cc, a, b):
    flags = flags_after_cmp(a, b)
    assert condition_met(cc, flags) == REFERENCE[cc](a, b)


@given(a=u64, b=u64)
@settings(max_examples=60)
def test_complementary_pairs(a, b):
    """cc and its complement always disagree."""
    flags = flags_after_cmp(a, b)
    for cc, inverse in ((Cond.E, Cond.NE), (Cond.B, Cond.AE),
                        (Cond.BE, Cond.A), (Cond.L, Cond.GE),
                        (Cond.LE, Cond.G), (Cond.S, Cond.NS),
                        (Cond.O, Cond.NO), (Cond.P, Cond.NP)):
        assert condition_met(cc, flags) != condition_met(inverse, flags)


def test_overflow_conditions():
    # INT64_MIN - 1 overflows.
    flags = flags_after_cmp(1 << 63, 1)
    assert condition_met(Cond.O, flags)
    flags = flags_after_cmp(5, 1)
    assert not condition_met(Cond.O, flags)
