"""The extended ALU subset: test/inc/dec/neg/not/imul/xchg/cmov."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import (ArchState, Cond, Instruction, Mnemonic, Reg,
                       condition_met, decode, encode, execute)
from repro.params import MASK64

u64 = st.integers(min_value=0, max_value=MASK64)


def run(instr, state):
    return execute(instr, 0x1000, state,
                   lambda a, s: 0, lambda a, s, v: None)


def signed(x):
    return x - (1 << 64) if x >> 63 else x


class TestEncodings:
    @pytest.mark.parametrize("instr,expected", [
        (Instruction(Mnemonic.TEST_RR, dest=Reg.RAX, src=Reg.RBX),
         "4885d8"),
        (Instruction(Mnemonic.INC, dest=Reg.RAX), "48ffc0"),
        (Instruction(Mnemonic.DEC, dest=Reg.RCX), "48ffc9"),
        (Instruction(Mnemonic.NEG, dest=Reg.RDX), "48f7da"),
        (Instruction(Mnemonic.NOT, dest=Reg.RBX), "48f7d3"),
        (Instruction(Mnemonic.IMUL_RR, dest=Reg.RAX, src=Reg.RBX),
         "480fafc3"),
        (Instruction(Mnemonic.XCHG_RR, dest=Reg.RAX, src=Reg.RBX),
         "4887d8"),
        (Instruction(Mnemonic.CMOV, cc=Cond.E, dest=Reg.RAX, src=Reg.RBX),
         "480f44c3"),
    ])
    def test_known_bytes(self, instr, expected):
        assert encode(instr).hex() == expected

    @pytest.mark.parametrize("mnemonic", [
        Mnemonic.TEST_RR, Mnemonic.INC, Mnemonic.DEC, Mnemonic.NEG,
        Mnemonic.NOT, Mnemonic.IMUL_RR, Mnemonic.XCHG_RR,
    ])
    def test_roundtrip_extended_regs(self, mnemonic):
        instr = Instruction(mnemonic, dest=Reg.R13, src=Reg.R9)
        back = decode(encode(instr))
        assert back.mnemonic is mnemonic
        assert back.dest is Reg.R13


class TestSemantics:
    def test_inc_dec(self):
        state = ArchState()
        state.write(Reg.RAX, 41)
        run(Instruction(Mnemonic.INC, dest=Reg.RAX, length=3), state)
        assert state.read(Reg.RAX) == 42
        run(Instruction(Mnemonic.DEC, dest=Reg.RAX, length=3), state)
        assert state.read(Reg.RAX) == 41

    def test_inc_preserves_carry(self):
        state = ArchState()
        state.flags.cf = True
        state.write(Reg.RAX, MASK64)
        run(Instruction(Mnemonic.INC, dest=Reg.RAX, length=3), state)
        assert state.read(Reg.RAX) == 0
        assert state.flags.zf
        assert state.flags.cf   # unlike add, inc keeps CF

    def test_neg(self):
        state = ArchState()
        state.write(Reg.RAX, 5)
        run(Instruction(Mnemonic.NEG, dest=Reg.RAX, length=3), state)
        assert state.read(Reg.RAX) == (-5) & MASK64
        assert state.flags.cf
        state.write(Reg.RBX, 0)
        run(Instruction(Mnemonic.NEG, dest=Reg.RBX, length=3), state)
        assert not state.flags.cf

    def test_not_leaves_flags(self):
        state = ArchState()
        state.flags.zf = True
        state.write(Reg.RAX, 0)
        run(Instruction(Mnemonic.NOT, dest=Reg.RAX, length=3), state)
        assert state.read(Reg.RAX) == MASK64
        assert state.flags.zf

    def test_test_sets_flags_without_write(self):
        state = ArchState()
        state.write(Reg.RAX, 0b1100)
        state.write(Reg.RBX, 0b0011)
        run(Instruction(Mnemonic.TEST_RR, dest=Reg.RAX, src=Reg.RBX,
                        length=3), state)
        assert state.flags.zf
        assert state.read(Reg.RAX) == 0b1100

    def test_imul(self):
        state = ArchState()
        state.write(Reg.RAX, 7)
        state.write(Reg.RBX, (-6) & MASK64)
        run(Instruction(Mnemonic.IMUL_RR, dest=Reg.RAX, src=Reg.RBX,
                        length=4), state)
        assert state.read(Reg.RAX) == (-42) & MASK64
        assert not state.flags.of

    def test_imul_overflow(self):
        state = ArchState()
        state.write(Reg.RAX, 1 << 62)
        state.write(Reg.RBX, 4)
        run(Instruction(Mnemonic.IMUL_RR, dest=Reg.RAX, src=Reg.RBX,
                        length=4), state)
        assert state.flags.of and state.flags.cf

    def test_xchg(self):
        state = ArchState()
        state.write(Reg.RAX, 1)
        state.write(Reg.RBX, 2)
        run(Instruction(Mnemonic.XCHG_RR, dest=Reg.RAX, src=Reg.RBX,
                        length=3), state)
        assert state.read(Reg.RAX) == 2
        assert state.read(Reg.RBX) == 1

    def test_cmov_taken_and_not(self):
        state = ArchState()
        state.write(Reg.RAX, 0xAAA)
        state.write(Reg.RBX, 0xBBB)
        state.flags.zf = True
        run(Instruction(Mnemonic.CMOV, cc=Cond.E, dest=Reg.RAX,
                        src=Reg.RBX, length=4), state)
        assert state.read(Reg.RAX) == 0xBBB
        state.flags.zf = False
        state.write(Reg.RBX, 0xCCC)
        run(Instruction(Mnemonic.CMOV, cc=Cond.E, dest=Reg.RAX,
                        src=Reg.RBX, length=4), state)
        assert state.read(Reg.RAX) == 0xBBB   # condition false: no move


@given(a=u64, b=u64)
@settings(max_examples=80)
def test_imul_matches_python(a, b):
    state = ArchState()
    state.write(Reg.RAX, a)
    state.write(Reg.RBX, b)
    run(Instruction(Mnemonic.IMUL_RR, dest=Reg.RAX, src=Reg.RBX,
                    length=4), state)
    assert state.read(Reg.RAX) == (signed(a) * signed(b)) & MASK64


@given(a=u64)
@settings(max_examples=80)
def test_neg_not_identities(a):
    state = ArchState()
    state.write(Reg.RAX, a)
    run(Instruction(Mnemonic.NOT, dest=Reg.RAX, length=3), state)
    run(Instruction(Mnemonic.NEG, dest=Reg.RAX, length=3), state)
    # -(~a) == a + 1 (mod 2^64)
    assert state.read(Reg.RAX) == (a + 1) & MASK64


def test_branchless_select_idiom():
    """cmov is the speculation-free alternative §2.4's masking papers
    recommend: select without a conditional branch."""
    from repro.isa import Assembler
    from repro.kernel import Machine
    from repro.pipeline import ZEN2

    machine = Machine(ZEN2, syscall_noise_evictions=0)
    code = 0x0000_0000_3000_0000
    asm = Assembler(code)
    asm.cmp_ri(Reg.RDI, 64)
    asm.cmov(Cond.AE, Reg.RDI, Reg.R8)     # idx = oob ? 0 : idx
    asm.hlt()
    machine.load_user_image(asm.image())
    machine.run_user(code, regs={Reg.RDI: 1000, Reg.R8: 0})
    assert machine.cpu.state.read(Reg.RDI) == 0
    # No conditional branch: no direction misprediction possible.
    assert machine.cpu.pmc.read("resteer_backend") == 0