"""Architectural semantics: ALU, flags, branches, memory, traps."""

import pytest

from repro.isa import (ArchState, Cond, Instruction, Mnemonic, Reg,
                       condition_met, execute)
from repro.params import MASK64


class FakeMemory:
    def __init__(self):
        self.data = {}
        self.loads = []
        self.stores = []

    def load(self, addr, size):
        self.loads.append((addr, size))
        return int.from_bytes(
            bytes(self.data.get(addr + i, 0) for i in range(size)), "little")

    def store(self, addr, size, value):
        self.stores.append((addr, size, value))
        for i in range(size):
            self.data[addr + i] = (value >> (8 * i)) & 0xFF


@pytest.fixture
def state():
    return ArchState()


@pytest.fixture
def mem():
    return FakeMemory()


def run(instr, state, mem, pc=0x1000, length=4):
    instr = Instruction(**{**instr.__dict__, "length": length}) \
        if instr.length == 0 else instr
    return execute(instr, pc, state, mem.load, mem.store)


class TestMovAlu:
    def test_mov_ri(self, state, mem):
        run(Instruction(Mnemonic.MOV_RI, dest=Reg.RAX, imm=0xDEAD), state, mem)
        assert state.read(Reg.RAX) == 0xDEAD

    def test_mov_rr(self, state, mem):
        state.write(Reg.RBX, 7)
        run(Instruction(Mnemonic.MOV_RR, dest=Reg.RCX, src=Reg.RBX), state, mem)
        assert state.read(Reg.RCX) == 7

    def test_add_wraps(self, state, mem):
        state.write(Reg.RAX, MASK64)
        run(Instruction(Mnemonic.ADD_RI, dest=Reg.RAX, imm=1), state, mem)
        assert state.read(Reg.RAX) == 0
        assert state.flags.zf
        assert state.flags.cf

    def test_sub_sets_sign(self, state, mem):
        state.write(Reg.RAX, 1)
        run(Instruction(Mnemonic.SUB_RI, dest=Reg.RAX, imm=2), state, mem)
        assert state.read(Reg.RAX) == MASK64
        assert state.flags.sf
        assert state.flags.cf

    def test_xor_self_zeroes(self, state, mem):
        state.write(Reg.R9, 0x1234)
        run(Instruction(Mnemonic.XOR_RR, dest=Reg.R9, src=Reg.R9), state, mem)
        assert state.read(Reg.R9) == 0
        assert state.flags.zf

    def test_shifts(self, state, mem):
        state.write(Reg.RBX, 0x3F)
        run(Instruction(Mnemonic.SHL_RI, dest=Reg.RBX, imm=6), state, mem)
        assert state.read(Reg.RBX) == 0x3F << 6
        run(Instruction(Mnemonic.SHR_RI, dest=Reg.RBX, imm=6), state, mem)
        assert state.read(Reg.RBX) == 0x3F

    def test_and_mask_byte(self, state, mem):
        # The P3 disclosure-gadget idiom: isolate one byte, shift to
        # a cache-line-aligned offset (bits [13:6]).
        state.write(Reg.RDI, 0xAABBCCDD)
        run(Instruction(Mnemonic.AND_RI, dest=Reg.RDI, imm=0xFF), state, mem)
        run(Instruction(Mnemonic.SHL_RI, dest=Reg.RDI, imm=6), state, mem)
        assert state.read(Reg.RDI) == 0xDD << 6

    def test_lea(self, state, mem):
        state.write(Reg.RBP, 0x8000)
        run(Instruction(Mnemonic.LEA, dest=Reg.RAX, base=Reg.RBP, disp=-16),
            state, mem)
        assert state.read(Reg.RAX) == 0x7FF0
        assert mem.loads == []


class TestCmpJcc:
    def test_cmp_below(self, state, mem):
        state.write(Reg.RDI, 5)
        run(Instruction(Mnemonic.CMP_RI, dest=Reg.RDI, imm=10), state, mem)
        assert condition_met(Cond.B, state.flags)
        assert not condition_met(Cond.AE, state.flags)

    def test_cmp_equal(self, state, mem):
        state.write(Reg.RDI, 10)
        run(Instruction(Mnemonic.CMP_RI, dest=Reg.RDI, imm=10), state, mem)
        assert condition_met(Cond.E, state.flags)
        assert condition_met(Cond.BE, state.flags)
        assert not condition_met(Cond.B, state.flags)

    def test_signed_conditions(self, state, mem):
        state.write(Reg.RAX, (-5) & MASK64)
        run(Instruction(Mnemonic.CMP_RI, dest=Reg.RAX, imm=3), state, mem)
        assert condition_met(Cond.L, state.flags)
        assert not condition_met(Cond.GE, state.flags)

    def test_jcc_taken(self, state, mem):
        state.flags.zf = True
        instr = Instruction(Mnemonic.JCC, cc=Cond.E, disp=0x100, length=6)
        res = execute(instr, 0x1000, state, mem.load, mem.store)
        assert res.taken
        assert res.next_pc == 0x1000 + 6 + 0x100

    def test_jcc_not_taken(self, state, mem):
        state.flags.zf = False
        instr = Instruction(Mnemonic.JCC, cc=Cond.E, disp=0x100, length=6)
        res = execute(instr, 0x1000, state, mem.load, mem.store)
        assert res.taken is False
        assert res.next_pc == 0x1006


class TestBranches:
    def test_jmp(self, state, mem):
        instr = Instruction(Mnemonic.JMP, disp=-0x10, length=5)
        res = execute(instr, 0x2000, state, mem.load, mem.store)
        assert res.taken and res.next_pc == 0x2005 - 0x10

    def test_jmp_reg(self, state, mem):
        state.write(Reg.RAX, 0x5000)
        instr = Instruction(Mnemonic.JMP_REG, dest=Reg.RAX, length=2)
        res = execute(instr, 0x2000, state, mem.load, mem.store)
        assert res.next_pc == 0x5000

    def test_call_pushes_return_address(self, state, mem):
        state.write(Reg.RSP, 0x9000)
        instr = Instruction(Mnemonic.CALL, disp=0x100, length=5)
        res = execute(instr, 0x2000, state, mem.load, mem.store)
        assert state.read(Reg.RSP) == 0x8FF8
        assert mem.stores == [(0x8FF8, 8, 0x2005)]
        assert res.next_pc == 0x2105

    def test_ret_pops(self, state, mem):
        state.write(Reg.RSP, 0x8FF8)
        mem.store(0x8FF8, 8, 0x2005)
        mem.stores.clear()
        instr = Instruction(Mnemonic.RET, length=1)
        res = execute(instr, 0x3000, state, mem.load, mem.store)
        assert res.next_pc == 0x2005
        assert state.read(Reg.RSP) == 0x9000

    def test_call_ret_roundtrip(self, state, mem):
        state.write(Reg.RSP, 0x9000)
        call = Instruction(Mnemonic.CALL, disp=0x100, length=5)
        execute(call, 0x2000, state, mem.load, mem.store)
        ret = Instruction(Mnemonic.RET, length=1)
        res = execute(ret, 0x2105, state, mem.load, mem.store)
        assert res.next_pc == 0x2005
        assert state.read(Reg.RSP) == 0x9000


class TestMemory:
    def test_load_store(self, state, mem):
        state.write(Reg.RBX, 0x7000)
        state.write(Reg.RCX, 0xCAFEBABE)
        run(Instruction(Mnemonic.MOV_MR, src=Reg.RCX, base=Reg.RBX, disp=8),
            state, mem)
        run(Instruction(Mnemonic.MOV_RM, dest=Reg.RDX, base=Reg.RBX, disp=8),
            state, mem)
        assert state.read(Reg.RDX) == 0xCAFEBABE

    def test_byte_load_zero_extends(self, state, mem):
        mem.store(0x7000, 8, 0xAABB)
        state.write(Reg.RBX, 0x7000)
        state.write(Reg.RDX, MASK64)
        run(Instruction(Mnemonic.MOVB_RM, dest=Reg.RDX, base=Reg.RBX), state, mem)
        assert state.read(Reg.RDX) == 0xBB

    def test_push_pop(self, state, mem):
        state.write(Reg.RSP, 0x9000)
        state.write(Reg.R14, 42)
        run(Instruction(Mnemonic.PUSH, dest=Reg.R14), state, mem)
        run(Instruction(Mnemonic.POP, dest=Reg.R15), state, mem)
        assert state.read(Reg.R15) == 42
        assert state.read(Reg.RSP) == 0x9000


class TestTraps:
    @pytest.mark.parametrize("mnemonic,trap", [
        (Mnemonic.SYSCALL, "syscall"),
        (Mnemonic.SYSRET, "sysret"),
        (Mnemonic.HLT, "hlt"),
        (Mnemonic.UD2, "ud2"),
    ])
    def test_traps(self, state, mem, mnemonic, trap):
        res = run(Instruction(mnemonic), state, mem)
        assert res.trap == trap

    def test_rdtsc(self, state, mem):
        instr = Instruction(Mnemonic.RDTSC, length=2)
        execute(instr, 0, state, mem.load, mem.store,
                rdtsc=lambda: 0x1_2345_6789)
        assert state.read(Reg.RAX) == 0x2345_6789
        assert state.read(Reg.RDX) == 0x1
