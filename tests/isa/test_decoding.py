"""Decoder unit tests plus encode/decode roundtrip property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodeError
from repro.isa import (Cond, Instruction, Mnemonic, Reg, decode, encode,
                       NOPL_SEQUENCES)

REGS = list(Reg)
CONDS = list(Cond)


class TestDecodeBasics:
    def test_nop(self):
        instr = decode(b"\x90")
        assert instr.mnemonic is Mnemonic.NOP
        assert instr.length == 1

    def test_decode_at_offset(self):
        instr = decode(b"\x90\x90\xc3", offset=2)
        assert instr.mnemonic is Mnemonic.RET
        assert instr.length == 1

    def test_jmp(self):
        instr = decode(bytes.fromhex("e900100000"))
        assert instr.mnemonic is Mnemonic.JMP
        assert instr.disp == 0x1000
        assert instr.length == 5

    def test_branch_target_relative_to_end(self):
        instr = decode(bytes.fromhex("e900100000"))
        assert instr.target(0x400000) == 0x400000 + 5 + 0x1000

    def test_listing3_gadget(self):
        # mov r12, QWORD PTR [r12+0xbe0]
        instr = decode(bytes.fromhex("4d8ba424e00b0000"))
        assert instr.mnemonic is Mnemonic.MOV_RM
        assert instr.dest is Reg.R12
        assert instr.base is Reg.R12
        assert instr.disp == 0xBE0

    def test_truncated(self):
        with pytest.raises(DecodeError):
            decode(bytes.fromhex("e90010"))

    def test_garbage(self):
        with pytest.raises(DecodeError):
            decode(b"\x06")  # invalid in 64-bit mode

    def test_unsupported_modrm(self):
        with pytest.raises(DecodeError):
            decode(bytes.fromhex("488b00"))  # mod=00 not in subset

    def test_nopl_all_lengths(self):
        for length, seq in NOPL_SEQUENCES.items():
            instr = decode(seq)
            assert instr.mnemonic is Mnemonic.NOPL
            assert instr.length == length


def instruction_strategy():
    """Generate arbitrary well-formed instructions of every mnemonic."""
    reg = st.sampled_from(REGS)
    imm32 = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)
    imm64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
    disp8 = st.integers(min_value=-128, max_value=127)
    shift = st.integers(min_value=0, max_value=63)
    nopl_len = st.sampled_from(sorted(NOPL_SEQUENCES))

    def simple(m):
        return st.just(Instruction(m))

    return st.one_of(
        simple(Mnemonic.NOP),
        st.builds(lambda n: Instruction(Mnemonic.NOPL, imm=n), nopl_len),
        st.builds(lambda d: Instruction(Mnemonic.JMP, disp=d), imm32),
        st.builds(lambda d: Instruction(Mnemonic.JMP_SHORT, disp=d), disp8),
        st.builds(lambda c, d: Instruction(Mnemonic.JCC, cc=c, disp=d),
                  st.sampled_from(CONDS), imm32),
        st.builds(lambda d: Instruction(Mnemonic.CALL, disp=d), imm32),
        st.builds(lambda r: Instruction(Mnemonic.JMP_REG, dest=r), reg),
        st.builds(lambda r: Instruction(Mnemonic.CALL_REG, dest=r), reg),
        simple(Mnemonic.RET),
        st.builds(lambda r, i: Instruction(Mnemonic.MOV_RI, dest=r, imm=i),
                  reg, imm64),
        st.builds(lambda d, s: Instruction(Mnemonic.MOV_RR, dest=d, src=s),
                  reg, reg),
        st.builds(lambda d, b, i: Instruction(Mnemonic.MOV_RM, dest=d,
                                              base=b, disp=i),
                  reg, reg, imm32),
        st.builds(lambda d, b, i: Instruction(Mnemonic.MOVB_RM, dest=d,
                                              base=b, disp=i),
                  reg, reg, imm32),
        st.builds(lambda s, b, i: Instruction(Mnemonic.MOV_MR, src=s,
                                              base=b, disp=i),
                  reg, reg, imm32),
        st.builds(lambda d, b, i: Instruction(Mnemonic.LEA, dest=d, base=b,
                                              disp=i),
                  reg, reg, imm32),
        st.builds(lambda d, i: Instruction(Mnemonic.ADD_RI, dest=d, imm=i),
                  reg, imm32),
        st.builds(lambda d, i: Instruction(Mnemonic.SUB_RI, dest=d, imm=i),
                  reg, imm32),
        st.builds(lambda d, i: Instruction(Mnemonic.AND_RI, dest=d, imm=i),
                  reg, imm32),
        st.builds(lambda d, i: Instruction(Mnemonic.CMP_RI, dest=d, imm=i),
                  reg, imm32),
        st.builds(lambda d, s: Instruction(Mnemonic.ADD_RR, dest=d, src=s),
                  reg, reg),
        st.builds(lambda d, s: Instruction(Mnemonic.SUB_RR, dest=d, src=s),
                  reg, reg),
        st.builds(lambda d, s: Instruction(Mnemonic.XOR_RR, dest=d, src=s),
                  reg, reg),
        st.builds(lambda d, s: Instruction(Mnemonic.OR_RR, dest=d, src=s),
                  reg, reg),
        st.builds(lambda d, s: Instruction(Mnemonic.CMP_RR, dest=d, src=s),
                  reg, reg),
        st.builds(lambda d, i: Instruction(Mnemonic.SHL_RI, dest=d, imm=i),
                  reg, shift),
        st.builds(lambda d, i: Instruction(Mnemonic.SHR_RI, dest=d, imm=i),
                  reg, shift),
        st.builds(lambda r: Instruction(Mnemonic.PUSH, dest=r), reg),
        st.builds(lambda r: Instruction(Mnemonic.POP, dest=r), reg),
        st.builds(lambda d, s: Instruction(Mnemonic.TEST_RR, dest=d, src=s),
                  reg, reg),
        st.builds(lambda d, s: Instruction(Mnemonic.XCHG_RR, dest=d, src=s),
                  reg, reg),
        st.builds(lambda d, s: Instruction(Mnemonic.IMUL_RR, dest=d, src=s),
                  reg, reg),
        st.builds(lambda c, d, s: Instruction(Mnemonic.CMOV, cc=c, dest=d,
                                              src=s),
                  st.sampled_from(CONDS), reg, reg),
        st.builds(lambda r: Instruction(Mnemonic.INC, dest=r), reg),
        st.builds(lambda r: Instruction(Mnemonic.DEC, dest=r), reg),
        st.builds(lambda r: Instruction(Mnemonic.NEG, dest=r), reg),
        st.builds(lambda r: Instruction(Mnemonic.NOT, dest=r), reg),
        simple(Mnemonic.LFENCE),
        simple(Mnemonic.MFENCE),
        simple(Mnemonic.SYSCALL),
        simple(Mnemonic.SYSRET),
        simple(Mnemonic.RDTSC),
        simple(Mnemonic.HLT),
        simple(Mnemonic.UD2),
    )


class TestRoundtrip:
    @given(instruction_strategy())
    @settings(max_examples=500)
    def test_encode_decode_roundtrip(self, instr):
        raw = encode(instr)
        back = decode(raw)
        assert back.length == len(raw)
        assert back.mnemonic is instr.mnemonic
        assert back.dest == instr.dest
        assert back.src == instr.src
        assert back.base == instr.base
        assert back.cc == instr.cc
        assert back.disp == instr.disp
        if instr.mnemonic is Mnemonic.NOPL:
            assert back.imm == len(raw)
        else:
            assert back.imm == instr.imm

    @given(instruction_strategy(), st.binary(max_size=8))
    @settings(max_examples=200)
    def test_decode_ignores_trailing_bytes(self, instr, tail):
        raw = encode(instr)
        back = decode(raw + tail)
        assert back.length == len(raw)
        assert back.mnemonic is instr.mnemonic

    @given(st.binary(min_size=1, max_size=16))
    @settings(max_examples=300)
    def test_decode_never_crashes_on_garbage(self, blob):
        """Arbitrary bytes either decode or raise DecodeError — nothing else.

        The pipeline decodes speculatively fetched bytes which may be
        data; the decoder must be total over byte strings.
        """
        try:
            instr = decode(blob)
        except DecodeError:
            return
        assert 1 <= instr.length <= len(blob)
        # Whatever decoded must re-encode to the same prefix.
        assert encode(instr) == blob[:instr.length]
