"""Property test: decode is the exact inverse of encode.

Hypothesis drives the whole implemented subset — every mnemonic with
every legal operand combination — through ``encode`` → ``decode`` and
requires the original :class:`Instruction` back, with ``length`` equal
to the bytes consumed.  ``derandomize=True`` keeps the suite
deterministic (the repo's determinism bar applies to its tests too).
"""

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.isa import (Assembler, Cond, Instruction, Mnemonic, Reg,
                       decode, encode)
from repro.isa.encoder import NOPL_SEQUENCES

REGS = st.sampled_from(list(Reg))
CONDS = st.sampled_from(list(Cond))
IMM64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
IMM32 = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)
DISP32 = IMM32
DISP8 = st.integers(min_value=-128, max_value=127)
SHIFT = st.integers(min_value=0, max_value=63)

_NO_OPERANDS = [Mnemonic.NOP, Mnemonic.RET, Mnemonic.LFENCE,
                Mnemonic.MFENCE, Mnemonic.SYSCALL, Mnemonic.SYSRET,
                Mnemonic.RDTSC, Mnemonic.HLT, Mnemonic.UD2]
_RR = [Mnemonic.MOV_RR, Mnemonic.ADD_RR, Mnemonic.SUB_RR, Mnemonic.XOR_RR,
       Mnemonic.OR_RR, Mnemonic.CMP_RR, Mnemonic.TEST_RR, Mnemonic.XCHG_RR,
       Mnemonic.IMUL_RR]
_RI32 = [Mnemonic.ADD_RI, Mnemonic.SUB_RI, Mnemonic.AND_RI, Mnemonic.CMP_RI]
_UNARY = [Mnemonic.INC, Mnemonic.DEC, Mnemonic.NEG, Mnemonic.NOT]
_MEM = [Mnemonic.MOV_RM, Mnemonic.MOV_MR, Mnemonic.MOVB_RM, Mnemonic.LEA]
_REG_BRANCH = [Mnemonic.JMP_REG, Mnemonic.CALL_REG]
_STACK = [Mnemonic.PUSH, Mnemonic.POP]


def _mem_instr(mnemonic, reg, base, disp):
    if mnemonic is Mnemonic.MOV_MR:
        return Instruction(mnemonic, src=reg, base=base, disp=disp)
    return Instruction(mnemonic, dest=reg, base=base, disp=disp)


instructions = st.one_of(
    st.sampled_from(_NO_OPERANDS).map(Instruction),
    st.builds(Instruction, st.sampled_from(_RR), dest=REGS, src=REGS),
    st.builds(lambda m, d, i: Instruction(m, dest=d, imm=i),
              st.sampled_from(_RI32), REGS, IMM32),
    st.builds(lambda m, d: Instruction(m, dest=d),
              st.sampled_from(_UNARY + _REG_BRANCH + _STACK), REGS),
    st.builds(_mem_instr, st.sampled_from(_MEM), REGS, REGS, DISP32),
    st.builds(lambda d, i: Instruction(Mnemonic.MOV_RI, dest=d, imm=i),
              REGS, IMM64),
    st.builds(lambda m, d, i: Instruction(m, dest=d, imm=i),
              st.sampled_from([Mnemonic.SHL_RI, Mnemonic.SHR_RI]),
              REGS, SHIFT),
    st.builds(lambda d, s, cc: Instruction(Mnemonic.CMOV, dest=d, src=s,
                                           cc=cc),
              REGS, REGS, CONDS),
    st.builds(lambda cc, disp: Instruction(Mnemonic.JCC, cc=cc, disp=disp),
              CONDS, DISP32),
    st.builds(lambda m, disp: Instruction(m, disp=disp),
              st.sampled_from([Mnemonic.JMP, Mnemonic.CALL]), DISP32),
    st.builds(lambda disp: Instruction(Mnemonic.JMP_SHORT, disp=disp),
              DISP8),
    st.builds(lambda n: Instruction(Mnemonic.NOPL, imm=n),
              st.sampled_from(sorted(NOPL_SEQUENCES))),
)


@settings(max_examples=400, derandomize=True)
@given(instructions)
def test_encode_decode_round_trip(instr):
    raw = encode(instr)
    decoded = decode(raw)
    assert decoded.length == len(raw)
    assert replace(decoded, length=0) == instr


@settings(max_examples=100, derandomize=True)
@given(instructions, st.binary(min_size=0, max_size=16))
def test_trailing_bytes_do_not_change_decoding(instr, garbage):
    raw = encode(instr)
    assert decode(raw + garbage) == decode(raw)


@settings(max_examples=100, derandomize=True)
@given(instructions, instructions, st.integers(min_value=0, max_value=15))
def test_decode_at_offset_matches_standalone(first, second, pad):
    buf = b"\xcc" * pad + encode(first) + encode(second)
    decoded_first = decode(buf, offset=pad)
    decoded_second = decode(buf, offset=pad + decoded_first.length)
    assert replace(decoded_first, length=0) == first
    assert replace(decoded_second, length=0) == second


@settings(max_examples=50, derandomize=True)
@given(st.lists(instructions, min_size=1, max_size=24),
       st.integers(min_value=0, max_value=(1 << 40) - 1))
def test_assembled_stream_decodes_back(instrs, base):
    """Assembler output is a decodable stream reproducing the input."""
    asm = Assembler(base)
    for instr in instrs:
        asm.emit(instr)
    segment, _ = asm.finish()
    offset = 0
    for instr in instrs:
        decoded = decode(segment.data, offset=offset)
        assert replace(decoded, length=0) == instr
        offset += decoded.length
    assert offset == len(segment.data)


@settings(max_examples=50, derandomize=True)
@given(st.lists(instructions, min_size=0, max_size=12))
def test_assembled_label_branch_targets_resolve(instrs):
    """A label-targeted jmp decodes to a displacement that lands
    exactly on the label, wherever layout put it."""
    asm = Assembler(0x40_0000)
    jmp_pc = asm.jmp("end")
    for instr in instrs:
        asm.emit(instr)
    end = asm.label("end")
    asm.emit(Instruction(Mnemonic.HLT))
    segment, symbols = asm.finish()
    decoded = decode(segment.data, offset=jmp_pc - segment.base)
    assert decoded.target(jmp_pc) == end == symbols["end"]
