"""Unit tests for the x86-subset encoder against known-good encodings.

Reference bytes were produced with a standard x86-64 assembler; they pin
the encoder to genuine machine code so instruction lengths and page
offsets in the experiments match the paper's listings.
"""

import pytest

from repro.errors import EncodingError
from repro.isa import Cond, Instruction, Mnemonic, Reg, encode


def enc(mnemonic, **kwargs):
    return encode(Instruction(mnemonic, **kwargs))


class TestKnownEncodings:
    def test_nop(self):
        assert enc(Mnemonic.NOP) == b"\x90"

    @pytest.mark.parametrize("length,expected", [
        (2, "6690"),
        (3, "0f1f00"),
        (8, "0f1f840000000000"),
        (9, "660f1f840000000000"),
    ])
    def test_nopl(self, length, expected):
        assert enc(Mnemonic.NOPL, imm=length).hex() == expected

    def test_listing1_nop_is_8_bytes(self):
        # Paper Listing 1: "nop DWORD PTR [rax+rax*1+0x0]" — 8-byte nop.
        assert len(enc(Mnemonic.NOPL, imm=8)) == 8

    def test_jmp_rel32(self):
        assert enc(Mnemonic.JMP, disp=0x1000).hex() == "e900100000"

    def test_jmp_rel32_negative(self):
        assert enc(Mnemonic.JMP, disp=-5).hex() == "e9fbffffff"

    def test_jmp_short(self):
        assert enc(Mnemonic.JMP_SHORT, disp=3).hex() == "eb03"

    def test_jcc(self):
        assert enc(Mnemonic.JCC, cc=Cond.E, disp=0x10).hex() == "0f8410000000"
        assert enc(Mnemonic.JCC, cc=Cond.B, disp=0).hex() == "0f8200000000"

    def test_call_rel32(self):
        assert enc(Mnemonic.CALL, disp=0x20).hex() == "e820000000"

    def test_jmp_reg(self):
        assert enc(Mnemonic.JMP_REG, dest=Reg.RAX).hex() == "ffe0"
        assert enc(Mnemonic.JMP_REG, dest=Reg.R12).hex() == "41ffe4"

    def test_call_reg(self):
        assert enc(Mnemonic.CALL_REG, dest=Reg.RDX).hex() == "ffd2"

    def test_ret(self):
        assert enc(Mnemonic.RET) == b"\xc3"

    def test_mov_ri(self):
        assert (enc(Mnemonic.MOV_RI, dest=Reg.RDI, imm=0xFF).hex()
                == "48bfff00000000000000")
        assert enc(Mnemonic.MOV_RI, dest=Reg.R8, imm=1).hex().startswith("49b8")

    def test_mov_rr(self):
        # mov rbp, rsp = 48 89 e5 (Listing 1 line 3)
        assert enc(Mnemonic.MOV_RR, dest=Reg.RBP, src=Reg.RSP).hex() == "4889e5"

    def test_load_disp32(self):
        # mov r12, [r12+0xbe0] (Listing 3) = 4d 8b a4 24 e0 0b 00 00
        raw = enc(Mnemonic.MOV_RM, dest=Reg.R12, base=Reg.R12, disp=0xBE0)
        assert raw.hex() == "4d8ba424e00b0000"

    def test_load_rbp_base(self):
        raw = enc(Mnemonic.MOV_RM, dest=Reg.RAX, base=Reg.RBP, disp=8)
        assert raw.hex() == "488b8508000000"

    def test_store(self):
        raw = enc(Mnemonic.MOV_MR, src=Reg.RAX, base=Reg.RBX, disp=0x10)
        assert raw.hex() == "48898310000000"

    def test_push_pop(self):
        assert enc(Mnemonic.PUSH, dest=Reg.RBP) == b"\x55"
        assert enc(Mnemonic.POP, dest=Reg.RBP) == b"\x5d"
        assert enc(Mnemonic.PUSH, dest=Reg.R15).hex() == "4157"

    def test_fences(self):
        assert enc(Mnemonic.LFENCE).hex() == "0fae e8".replace(" ", "")
        assert enc(Mnemonic.MFENCE).hex() == "0faef0"

    def test_syscall(self):
        assert enc(Mnemonic.SYSCALL).hex() == "0f05"

    def test_alu(self):
        assert enc(Mnemonic.ADD_RI, dest=Reg.RSP, imm=8).hex() == "4881c408000000"
        assert enc(Mnemonic.SUB_RI, dest=Reg.RSP, imm=8).hex() == "4881ec08000000"
        assert enc(Mnemonic.XOR_RR, dest=Reg.RAX, src=Reg.RAX).hex() == "4831c0"
        assert enc(Mnemonic.SHL_RI, dest=Reg.RBX, imm=6).hex() == "48c1e306"


class TestEncodingErrors:
    def test_rel8_overflow(self):
        with pytest.raises(EncodingError):
            enc(Mnemonic.JMP_SHORT, disp=1000)

    def test_rel32_overflow(self):
        with pytest.raises(EncodingError):
            enc(Mnemonic.JMP, disp=1 << 40)

    def test_missing_operand(self):
        with pytest.raises(EncodingError):
            enc(Mnemonic.MOV_RI, dest=Reg.RAX)  # no imm

    def test_bad_nopl_length(self):
        with pytest.raises(EncodingError):
            enc(Mnemonic.NOPL, imm=17)

    def test_bad_shift_count(self):
        with pytest.raises(EncodingError):
            enc(Mnemonic.SHL_RI, dest=Reg.RAX, imm=200)
