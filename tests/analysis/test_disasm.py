"""Disassembler: linear sweep, recursive descent, basic blocks."""

from repro.analysis import Disassembler
from repro.isa import Assembler, Cond, Mnemonic, Reg

BASE = 0x40_0000


def build(builder):
    asm = Assembler(BASE)
    builder(asm)
    return asm.image()


class TestLinearSweep:
    def test_simple_sequence(self):
        image = build(lambda asm: (asm.nop(), asm.mov_ri(Reg.RAX, 1),
                                   asm.ret()))
        instrs = Disassembler(image).linear_sweep(BASE)
        assert [i.instr.mnemonic for i in instrs] == \
            [Mnemonic.NOP, Mnemonic.MOV_RI, Mnemonic.RET]
        assert instrs[1].pc == BASE + 1

    def test_stops_at_terminator(self):
        image = build(lambda asm: (asm.ret(), asm.nop(), asm.nop()))
        instrs = Disassembler(image).linear_sweep(BASE)
        assert len(instrs) == 1

    def test_stops_at_garbage(self):
        asm = Assembler(BASE)
        asm.nop()
        asm.raw(b"\x06\x07")  # invalid opcodes
        image = asm.image()
        instrs = Disassembler(image).linear_sweep(BASE)
        assert len(instrs) == 1

    def test_unmapped_pc(self):
        image = build(lambda asm: asm.ret())
        assert Disassembler(image).instruction_at(0x99_0000) is None


class TestBlocks:
    def test_conditional_splits_blocks(self):
        def builder(asm):
            asm.cmp_ri(Reg.RDI, 4)
            asm.jcc(Cond.AE, "out")
            asm.mov_ri(Reg.RAX, 1)
            asm.label("out")
            asm.ret()

        image = build(builder)
        blocks = Disassembler(image).discover_blocks(BASE)
        assert len(blocks) == 3   # entry / fallthrough / out
        entry = blocks[BASE]
        assert entry.terminator.instr.mnemonic is Mnemonic.JCC
        targets = dict(entry.successors())
        assert set(targets.values()) == {"taken", "fallthrough"}

    def test_call_creates_edge_to_callee(self):
        def builder(asm):
            asm.call("fn")
            asm.ret()
            asm.label("fn")
            asm.nop()
            asm.ret()

        image = build(builder)
        blocks = Disassembler(image).discover_blocks(BASE)
        entry = blocks[BASE]
        labels = [label for _, label in entry.successors()]
        assert "call" in labels and "fallthrough" in labels

    def test_loop(self):
        def builder(asm):
            asm.label("top")
            asm.sub_ri(Reg.RCX, 1)
            asm.jcc(Cond.NE, "top")
            asm.ret()

        image = build(builder)
        blocks = Disassembler(image).discover_blocks(BASE)
        top = blocks[BASE]
        assert (BASE, "taken") in top.successors()

    def test_indirect_has_no_static_successor(self):
        def builder(asm):
            asm.jmp_reg(Reg.RAX)

        image = build(builder)
        blocks = Disassembler(image).discover_blocks(BASE)
        assert blocks[BASE].successors() == []
