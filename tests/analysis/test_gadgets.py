"""Gadget scanner: taint rules, classification, corpus census."""

import pytest

from repro.analysis import (GadgetKind, generate_corpus, scan_corpus,
                            scan_function)
from repro.isa import Assembler, Cond, Reg

BASE = 0xFFFF_FFFF_D000_0000
DATA = 0xFFFF_FFFF_D800_0000


def scan(builder, **kwargs):
    asm = Assembler(BASE)
    builder(asm)
    return scan_function(asm.image(), BASE, **kwargs)


class TestClassification:
    def test_v1_double_load(self):
        def builder(asm):
            asm.cmp_ri(Reg.RDI, 64)
            asm.jcc(Cond.AE, "out")
            asm.mov_ri(Reg.RCX, DATA)
            asm.add_rr(Reg.RCX, Reg.RDI)
            asm.loadb(Reg.RAX, Reg.RCX)      # secret
            asm.mov_ri(Reg.RBX, DATA + 0x1000)
            asm.add_rr(Reg.RBX, Reg.RAX)
            asm.loadb(Reg.R9, Reg.RBX)       # transmit
            asm.label("out")
            asm.ret()

        reports = scan(builder)
        assert len(reports) == 1
        assert reports[0].kind is GadgetKind.SPECTRE_V1
        assert reports[0].second_load_pc is not None

    def test_mds_single_load(self):
        def builder(asm):
            asm.cmp_ri(Reg.RDI, 64)
            asm.jcc(Cond.AE, "out")
            asm.mov_ri(Reg.RCX, DATA)
            asm.add_rr(Reg.RCX, Reg.RDI)
            asm.loadb(Reg.RAX, Reg.RCX)
            asm.label("out")
            asm.ret()

        reports = scan(builder)
        assert len(reports) == 1
        assert reports[0].kind is GadgetKind.MDS_SINGLE_LOAD

    def test_clean_load_not_reported(self):
        def builder(asm):
            asm.cmp_ri(Reg.RDI, 64)
            asm.jcc(Cond.AE, "out")
            asm.mov_ri(Reg.RCX, DATA)
            asm.load(Reg.RAX, Reg.RCX, 0x20)   # fixed address
            asm.label("out")
            asm.ret()

        assert scan(builder) == []

    def test_no_branch_no_gadget(self):
        def builder(asm):
            asm.mov_ri(Reg.RCX, DATA)
            asm.add_rr(Reg.RCX, Reg.RDI)
            asm.loadb(Reg.RAX, Reg.RCX)
            asm.ret()

        assert scan(builder) == []

    def test_lfence_kills_the_gadget(self):
        """§8.2: a barrier behind the branch stops the speculative path
        before the tainted load."""
        def builder(asm):
            asm.cmp_ri(Reg.RDI, 64)
            asm.jcc(Cond.AE, "out")
            asm.lfence()
            asm.mov_ri(Reg.RCX, DATA)
            asm.add_rr(Reg.RCX, Reg.RDI)
            asm.loadb(Reg.RAX, Reg.RCX)
            asm.label("out")
            asm.ret()

        assert scan(builder) == []

    def test_taint_cleared_by_immediate_overwrite(self):
        def builder(asm):
            asm.cmp_ri(Reg.RDI, 64)
            asm.jcc(Cond.AE, "out")
            asm.mov_ri(Reg.RDI, 4)            # overwrites attacker input
            asm.mov_ri(Reg.RCX, DATA)
            asm.add_rr(Reg.RCX, Reg.RDI)
            asm.loadb(Reg.RAX, Reg.RCX)
            asm.label("out")
            asm.ret()

        assert scan(builder) == []

    def test_nospec_mask_sanitizes(self):
        """array_index_nospec (§2.4 [74]): a small AND mask makes the
        speculative dereference harmless, and the scanner knows."""
        def builder(asm):
            asm.cmp_ri(Reg.RDI, 64)
            asm.jcc(Cond.AE, "out")
            asm.and_ri(Reg.RDI, 63)
            asm.mov_ri(Reg.RCX, DATA)
            asm.add_rr(Reg.RCX, Reg.RDI)
            asm.loadb(Reg.RAX, Reg.RCX)
            asm.label("out")
            asm.ret()

        assert scan(builder) == []

    def test_wide_mask_does_not_sanitize(self):
        """AND with a wide immediate still leaves attacker reach."""
        def builder(asm):
            asm.cmp_ri(Reg.RDI, 64)
            asm.jcc(Cond.AE, "out")
            asm.and_ri(Reg.RDI, 0xFFFFFF)
            asm.mov_ri(Reg.RCX, DATA)
            asm.add_rr(Reg.RCX, Reg.RDI)
            asm.loadb(Reg.RAX, Reg.RCX)
            asm.label("out")
            asm.ret()

        reports = scan(builder)
        assert reports and reports[0].kind is GadgetKind.MDS_SINGLE_LOAD

    def test_taint_flows_through_mov_and_lea(self):
        def builder(asm):
            asm.cmp_ri(Reg.RSI, 64)
            asm.jcc(Cond.AE, "out")
            asm.mov_rr(Reg.R8, Reg.RSI)
            asm.lea(Reg.R9, Reg.R8, 0x100)
            asm.load(Reg.RAX, Reg.R9)
            asm.label("out")
            asm.ret()

        reports = scan(builder)
        assert reports and reports[0].kind is GadgetKind.MDS_SINGLE_LOAD

    def test_window_bound_respected(self):
        """A load beyond the speculation window is unreachable."""
        def builder(asm):
            asm.cmp_ri(Reg.RDI, 64)
            asm.jcc(Cond.AE, "out")
            for _ in range(30):
                asm.add_ri(Reg.RBX, 1)
            asm.mov_ri(Reg.RCX, DATA)
            asm.add_rr(Reg.RCX, Reg.RDI)
            asm.loadb(Reg.RAX, Reg.RCX)
            asm.label("out")
            asm.ret()

        assert scan(builder, window=24) == []
        assert scan(builder, window=64) != []


class TestCorpusCensus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_corpus(total=300, seed=5)

    def test_scanner_recovers_ground_truth(self, corpus):
        summary = scan_corpus(corpus.image, corpus.entries)
        assert summary.spectre_v1 == corpus.count("v1_double_load")
        assert summary.mds_single_load == corpus.count("mds_single_load")

    def test_amplification_ratio_near_paper(self, corpus):
        """§9.3: Phantom grows the gadget population ~4x (183 -> 722)."""
        summary = scan_corpus(corpus.image, corpus.entries)
        assert 2.5 < summary.amplification < 6.0

    def test_hardened_corpus_scans_clean(self):
        corpus = generate_corpus(total=150, seed=6, hardened=True)
        summary = scan_corpus(corpus.image, corpus.entries)
        assert summary.spectre_v1 == 0
        assert summary.mds_single_load == 0
