"""Binary rewriter: lifting, relocation, hardening transforms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (GadgetKind, harden_function, lift_function,
                            emit_function, insert_lfence_after_conditionals,
                            retpoline_indirect_branches, scan_function)
from repro.isa import Assembler, BranchKind, Cond, Mnemonic, Reg
from repro.kernel import Machine
from repro.pipeline import ZEN2

OLD_BASE = 0x0000_0000_0B00_0000
NEW_BASE = 0x0000_0000_0B80_0000
DATA = 0x0000_0000_0BC0_0000


def build_gadget_image():
    """A v1-style function with a loop and a call out of function."""
    asm = Assembler(OLD_BASE)
    asm.label("entry")
    asm.cmp_ri(Reg.RDI, 64)
    asm.jcc(Cond.AE, "out")
    asm.mov_ri(Reg.RCX, DATA)
    asm.add_rr(Reg.RCX, Reg.RDI)
    asm.loadb(Reg.RAX, Reg.RCX)
    asm.label("out")
    asm.ret()
    return asm.image()


class TestLift:
    def test_lift_decodes_whole_function(self):
        image = build_gadget_image()
        code = lift_function(image, OLD_BASE)
        assert code.mnemonics()[0] is Mnemonic.CMP_RI
        assert code.mnemonics()[-1] is Mnemonic.RET

    def test_local_branch_becomes_label(self):
        image = build_gadget_image()
        code = lift_function(image, OLD_BASE)
        jcc = next(i for i in code.items
                   if i.original.mnemonic is Mnemonic.JCC)
        assert jcc.local_target is not None
        assert jcc.absolute_target is None

    def test_external_call_stays_absolute(self):
        asm = Assembler(OLD_BASE)
        asm.call(0x0000_0000_0BF0_0000)   # outside the function
        asm.ret()
        code = lift_function(asm.image(), OLD_BASE)
        call = code.items[0]
        assert call.absolute_target == 0x0000_0000_0BF0_0000

    def test_multi_exit_function(self):
        asm = Assembler(OLD_BASE)
        asm.cmp_ri(Reg.RDI, 1)
        asm.jcc(Cond.E, "second")
        asm.ret()
        asm.label("second")
        asm.mov_ri(Reg.RAX, 2)
        asm.ret()
        code = lift_function(asm.image(), OLD_BASE)
        assert code.mnemonics().count(Mnemonic.RET) == 2


class TestRelocation:
    def run_both(self, builder, rdi):
        """Run original and relocated code; return both RAX values."""
        results = []
        for relocate in (False, True):
            machine = Machine(ZEN2, syscall_noise_evictions=0)
            machine.map_user(DATA, 4096)
            asm = Assembler(OLD_BASE)
            builder(asm)
            image = asm.image()
            if relocate:
                code = lift_function(image, OLD_BASE)
                image = emit_function(code, NEW_BASE)
                entry = NEW_BASE
            else:
                entry = OLD_BASE
            machine.load_user_image(image)
            machine.run_user(entry, regs={Reg.RDI: rdi})
            results.append(machine.cpu.state.read(Reg.RAX))
        return results

    @pytest.mark.parametrize("rdi", [0, 5, 99])
    def test_relocated_function_equivalent(self, rdi):
        def builder(asm):
            asm.cmp_ri(Reg.RDI, 64)
            asm.jcc(Cond.AE, "big")
            asm.mov_ri(Reg.RAX, 1)
            asm.jmp("done")
            asm.label("big")
            asm.mov_ri(Reg.RAX, 2)
            asm.label("done")
            asm.hlt()

        original, relocated = self.run_both(builder, rdi)
        assert original == relocated

    def test_loop_relocates(self):
        def builder(asm):
            asm.mov_ri(Reg.RCX, 5)
            asm.mov_ri(Reg.RAX, 0)
            asm.label("top")
            asm.add_ri(Reg.RAX, 3)
            asm.sub_ri(Reg.RCX, 1)
            asm.jcc(Cond.NE, "top")
            asm.hlt()

        original, relocated = self.run_both(builder, 0)
        assert original == relocated == 15


class TestHardening:
    def test_lfence_insertion_kills_gadget(self):
        image = build_gadget_image()
        assert scan_function(image, OLD_BASE)  # gadget present
        hardened = harden_function(image, OLD_BASE, NEW_BASE,
                                   retpoline=False)
        assert scan_function(hardened, NEW_BASE) == []

    def test_lfence_on_both_sides(self):
        image = build_gadget_image()
        code = insert_lfence_after_conditionals(
            lift_function(image, OLD_BASE))
        fences = code.mnemonics().count(Mnemonic.LFENCE)
        assert fences == 2   # fallthrough side + taken side

    def test_hardened_function_architecturally_equivalent(self):
        """Call both versions through a wrapper; results must match."""
        machine = Machine(ZEN2, syscall_noise_evictions=0)
        machine.map_user(DATA, 4096)
        image = build_gadget_image()
        hardened = harden_function(image, OLD_BASE, NEW_BASE,
                                   retpoline=False)
        machine.load_user_image(image)
        machine.load_user_image(hardened)
        wrapper = 0x0000_0000_0BE0_0000
        for entry, rdi in ((OLD_BASE, 3), (NEW_BASE, 3),
                           (OLD_BASE, 200), (NEW_BASE, 200)):
            asm = Assembler(wrapper)
            asm.call(entry)
            asm.hlt()
            segment, _ = asm.finish()
            machine.write_user(wrapper, segment.data) \
                if machine.mem.aspace.is_mapped(wrapper) \
                else machine.load_user_image(asm.image())
            machine.run_user(wrapper, regs={Reg.RDI: rdi,
                                            Reg.RAX: 0xFEED})
            value = machine.cpu.state.read(Reg.RAX)
            if entry == OLD_BASE:
                original = value
            else:
                assert value == original, rdi

    def test_retpoline_transform_removes_indirect(self):
        asm = Assembler(OLD_BASE)
        asm.mov_ri(Reg.RAX, DATA)
        asm.jmp_reg(Reg.RAX)
        image = asm.image()
        code = retpoline_indirect_branches(lift_function(image, OLD_BASE))
        rewritten = emit_function(code, NEW_BASE)
        # No jmp* survives in the rewritten bytes.
        from repro.analysis import Disassembler
        instrs = Disassembler(rewritten).linear_sweep(NEW_BASE,
                                                      max_bytes=256)
        kinds = {i.kind for i in instrs}
        assert BranchKind.INDIRECT not in kinds

    def test_retpolined_function_still_reaches_target(self):
        machine = Machine(ZEN2, syscall_noise_evictions=0)
        target = 0x0000_0000_0BD0_0000
        tasm = Assembler(target)
        tasm.mov_ri(Reg.RBX, 0x5AFE)
        tasm.hlt()
        machine.load_user_image(tasm.image())

        asm = Assembler(OLD_BASE)
        asm.mov_ri(Reg.RAX, target)
        asm.jmp_reg(Reg.RAX)
        hardened = harden_function(asm.image(), OLD_BASE, NEW_BASE,
                                   lfence=False)
        machine.load_user_image(hardened)
        machine.run_user(NEW_BASE)
        assert machine.cpu.state.read(Reg.RBX) == 0x5AFE


@given(st.integers(min_value=0, max_value=255),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=40, deadline=None)
def test_relocation_equivalence_property(rdi, loop_count):
    """Property: lift + emit at a new base preserves semantics for a
    family of branchy functions."""
    def builder(asm):
        asm.mov_ri(Reg.RCX, loop_count)
        asm.mov_ri(Reg.RAX, 0)
        asm.label("top")
        asm.add_ri(Reg.RAX, 2)
        asm.sub_ri(Reg.RCX, 1)
        asm.jcc(Cond.NE, "top")
        asm.cmp_ri(Reg.RDI, 100)
        asm.jcc(Cond.B, "small")
        asm.add_ri(Reg.RAX, 1000)
        asm.label("small")
        asm.hlt()

    values = []
    for base, relocate in ((OLD_BASE, False), (NEW_BASE, True)):
        machine = Machine(ZEN2, syscall_noise_evictions=0)
        asm = Assembler(OLD_BASE)
        builder(asm)
        image = asm.image()
        if relocate:
            image = emit_function(lift_function(image, OLD_BASE), NEW_BASE)
        machine.load_user_image(image)
        machine.run_user(base, regs={Reg.RDI: rdi})
        values.append(machine.cpu.state.read(Reg.RAX))
    assert values[0] == values[1]
