"""Retpoline and lfence codegen: architectural and speculative behaviour."""

from repro.analysis import emit_retpoline, emit_retpoline_call
from repro.isa import Assembler, BranchKind, Reg
from repro.kernel import Machine
from repro.pipeline import ZEN2

CODE = 0x0000_0000_0A00_0000
DEST = 0x0000_0000_0A10_0000


def build_machine():
    return Machine(ZEN2, syscall_noise_evictions=0)


class TestRetpolineJmp:
    def setup_machine(self):
        machine = build_machine()
        asm = Assembler(CODE)
        asm.mov_ri(Reg.RAX, DEST)
        labels = emit_retpoline(asm, Reg.RAX)
        machine.load_user_image(asm.image())
        dest = Assembler(DEST)
        dest.mov_ri(Reg.RBX, 0x5AFE)
        dest.hlt()
        machine.load_user_image(dest.image())
        return machine, labels

    def test_architecturally_reaches_target(self):
        machine, _ = self.setup_machine()
        machine.run_user(CODE)
        assert machine.cpu.state.read(Reg.RBX) == 0x5AFE

    def test_no_indirect_branch_trained(self):
        """The whole point: no jmp* retires, so no INDIRECT BTB entry
        exists for an attacker to poison."""
        machine, _ = self.setup_machine()
        machine.run_user(CODE)
        kinds = {entry.kind
                 for ways in machine.cpu.bpu.btb._sets.values()
                 for entry in ways.values()}
        assert BranchKind.INDIRECT not in kinds
        assert BranchKind.CALL_INDIRECT not in kinds

    def test_speculation_captured_by_fence(self):
        """The thunk ret's RSB prediction points into the capture loop;
        the fence there stops transient progress (no load at DEST can
        run speculatively)."""
        machine, labels = self.setup_machine()
        machine.cpu.record_episodes = True
        machine.run_user(CODE)
        for ep in machine.cpu.episodes:
            if not ep.frontend_resteer:
                # Backend (ret) mispredictions must land in the capture
                # loop, never at the architectural destination early.
                assert ep.target == labels["capture"]


class TestRetpolineCall:
    def test_call_returns_to_continuation(self):
        machine = build_machine()
        asm = Assembler(CODE)
        asm.mov_ri(Reg.RAX, DEST)
        emit_retpoline_call(asm, Reg.RAX)
        asm.mov_ri(Reg.RCX, 0xC0DE)
        asm.hlt()
        machine.load_user_image(asm.image())
        dest = Assembler(DEST)
        dest.mov_ri(Reg.RBX, 0x5AFE)
        dest.ret()
        machine.load_user_image(dest.image())
        machine.run_user(CODE)
        assert machine.cpu.state.read(Reg.RBX) == 0x5AFE
        assert machine.cpu.state.read(Reg.RCX) == 0xC0DE
