"""Execution tracer: timelines, episode attribution, rendering."""

from repro.analysis import Tracer
from repro.core import AttackerRuntime
from repro.isa import Assembler, Reg
from repro.kernel import Machine, SYS_GETPID
from repro.pipeline import ZEN2

CODE = 0x0000_0000_0900_0000


def test_traces_instructions():
    machine = Machine(ZEN2)
    asm = Assembler(CODE)
    asm.mov_ri(Reg.RAX, 5)
    asm.add_ri(Reg.RAX, 2)
    asm.hlt()
    machine.load_user_image(asm.image())
    with Tracer(machine) as trace:
        machine.run_user(CODE)
    assert len(trace.entries) == 3
    assert trace.entries[0].pc == CODE
    assert "mov_ri" in trace.entries[0].text
    assert trace.entries[-1].cycle >= trace.entries[0].cycle


def test_kernel_mode_marked():
    machine = Machine(ZEN2)
    with Tracer(machine) as trace:
        machine.syscall(SYS_GETPID)
    modes = {entry.kernel_mode for entry in trace.entries}
    assert modes == {True, False}
    rendered = trace.render()
    assert " K " in rendered and " u " in rendered


def test_episodes_attributed_to_instruction():
    machine = Machine(ZEN2, syscall_noise_evictions=0)
    attacker = AttackerRuntime(machine)
    src = 0x0000_0000_0910_0AC0
    target = 0x0000_0000_0920_0000
    attacker.write_code(target, b"\x90\xf4")
    attacker.train_indirect(src, target)
    attacker.write_code(src, b"\x90" * 4 + b"\xf4")
    with Tracer(machine) as trace:
        machine.run_user(src)
    phantom_entries = [e for e in trace.entries if e.episodes]
    assert phantom_entries
    assert phantom_entries[0].pc == src
    assert trace.episode_count(frontend=True) >= 1
    assert "phantom" in trace.render()


def test_tracer_restores_hooks():
    machine = Machine(ZEN2)
    with Tracer(machine):
        pass
    assert machine.cpu.instr_hook is None
    assert machine.cpu.record_episodes is False


def test_limit_respected():
    machine = Machine(ZEN2)
    asm = Assembler(CODE)
    for _ in range(50):
        asm.nop()
    asm.hlt()
    machine.load_user_image(asm.image())
    with Tracer(machine, limit=10) as trace:
        machine.run_user(CODE)
    assert len(trace.entries) == 10
