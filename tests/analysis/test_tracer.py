"""Execution tracer: timelines, episode attribution, rendering."""

from repro.analysis import Tracer
from repro.core import AttackerRuntime
from repro.isa import Assembler, Reg
from repro.kernel import Machine, SYS_GETPID
from repro.pipeline import ZEN2

CODE = 0x0000_0000_0900_0000


def test_traces_instructions():
    machine = Machine(ZEN2)
    asm = Assembler(CODE)
    asm.mov_ri(Reg.RAX, 5)
    asm.add_ri(Reg.RAX, 2)
    asm.hlt()
    machine.load_user_image(asm.image())
    with Tracer(machine) as trace:
        machine.run_user(CODE)
    assert len(trace.entries) == 3
    assert trace.entries[0].pc == CODE
    assert "mov_ri" in trace.entries[0].text
    assert trace.entries[-1].cycle >= trace.entries[0].cycle


def test_kernel_mode_marked():
    machine = Machine(ZEN2)
    with Tracer(machine) as trace:
        machine.syscall(SYS_GETPID)
    modes = {entry.kernel_mode for entry in trace.entries}
    assert modes == {True, False}
    rendered = trace.render()
    assert " K " in rendered and " u " in rendered


def test_episodes_attributed_to_instruction():
    machine = Machine(ZEN2, syscall_noise_evictions=0)
    attacker = AttackerRuntime(machine)
    src = 0x0000_0000_0910_0AC0
    target = 0x0000_0000_0920_0000
    attacker.write_code(target, b"\x90\xf4")
    attacker.train_indirect(src, target)
    attacker.write_code(src, b"\x90" * 4 + b"\xf4")
    with Tracer(machine) as trace:
        machine.run_user(src)
    phantom_entries = [e for e in trace.entries if e.episodes]
    assert phantom_entries
    assert phantom_entries[0].pc == src
    assert trace.episode_count(frontend=True) >= 1
    assert "phantom" in trace.render()


def test_tracer_restores_hooks():
    machine = Machine(ZEN2)
    with Tracer(machine):
        pass
    assert machine.cpu.instr_hook is None
    assert machine.cpu.record_episodes is False


def test_limit_respected():
    machine = Machine(ZEN2)
    asm = Assembler(CODE)
    for _ in range(50):
        asm.nop()
    asm.hlt()
    machine.load_user_image(asm.image())
    with Tracer(machine, limit=10) as trace:
        machine.run_user(CODE)
    assert len(trace.entries) == 10


def test_hooks_restored_when_body_raises():
    machine = Machine(ZEN2)
    machine.cpu.instr_hook = sentinel = (lambda pc, instr: None)
    try:
        with Tracer(machine):
            assert machine.cpu.instr_hook is not sentinel
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert machine.cpu.instr_hook is sentinel
    assert machine.cpu.record_episodes is False


def _nop_sled_machine(n):
    machine = Machine(ZEN2)
    asm = Assembler(CODE)
    for _ in range(n):
        asm.nop()
    asm.hlt()
    machine.load_user_image(asm.image())
    return machine


def test_truncation_is_marked_not_silent():
    machine = _nop_sled_machine(50)
    with Tracer(machine, limit=10) as trace:
        machine.run_user(CODE)
    assert len(trace.entries) == 10
    assert trace.truncated
    assert trace.dropped_instructions == 41   # 40 nops + hlt
    assert "trace truncated at limit=10" in trace.render()
    assert any(e.kind == "trace_truncated" for e in trace.events)


def test_episodes_after_truncation_become_orphans():
    machine = Machine(ZEN2, syscall_noise_evictions=0)
    attacker = AttackerRuntime(machine)
    src = 0x0000_0000_0910_0AC0
    target = 0x0000_0000_0920_0000
    attacker.write_code(target, b"\x90\xf4")
    attacker.train_indirect(src, target)
    # 8 nops before the phantom source: a limit of 4 cuts the trace
    # well before the episode fires.
    attacker.write_code(src - 8, b"\x90" * 12 + b"\xf4")
    with Tracer(machine, limit=4) as trace:
        machine.run_user(src - 8)
    assert trace.truncated
    assert trace.orphan_episodes
    assert trace.episode_count(frontend=True) >= 1   # orphans counted
    assert all(not e.episodes for e in trace.entries)
    rendered = trace.render()
    assert "orphan episode" in rendered
    assert any(e.kind == "orphan_episodes" for e in trace.events)


def test_typed_events_written_as_jsonl(tmp_path):
    machine = Machine(ZEN2)
    with Tracer(machine) as trace:
        machine.syscall(SYS_GETPID)
    path = tmp_path / "trace.jsonl"
    count = trace.write_jsonl(path)
    from repro.telemetry import TRACE_SCHEMA, read_jsonl
    events = read_jsonl(path)
    assert len(events) == count == len(trace.events)
    assert all(e["schema"] == TRACE_SCHEMA for e in events)
    kinds = {e["kind"] for e in events}
    assert "retire" in kinds and "episode" in kinds
