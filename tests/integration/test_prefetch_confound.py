"""§5.1's methodological point: why an IF-only channel is not enough.

"Discerning IF from BPU-assisted I-cache prefetching is not possible
using this method" — an I-cache timing probe cannot tell whether bytes
*entered the pipeline* or were merely prefetched.  The µop-cache (ID)
channel exists to disambiguate.  With the prefetchers modelled, these
tests exhibit the confound and show the ID channel resolving it.
"""

from dataclasses import replace

from repro.core import TrainKind, TypeConfusionExperiment, VictimKind
from repro.kernel import Machine
from repro.pipeline import INTEL_9TH, INTEL_12TH, ZEN3


def experiment(uarch, train=TrainKind.INDIRECT,
               victim=VictimKind.INDIRECT):
    machine = Machine(uarch, syscall_noise_evictions=0)
    return TypeConfusionExperiment(machine, train, victim)


class TestBpuPrefetchConfound:
    """Intel jmp*-victim cells: parts with BPU prefetch show IF without
    ID — fetch alone cannot prove the target entered the pipeline."""

    def test_prefetching_part_shows_if_but_not_id(self):
        exp = experiment(INTEL_9TH, TrainKind.DIRECT,
                         VictimKind.INDIRECT)
        assert exp.measure_fetch()       # looks like transient fetch...
        exp2 = experiment(INTEL_9TH, TrainKind.DIRECT,
                          VictimKind.INDIRECT)
        assert not exp2.measure_decode()  # ...but nothing was decoded

    def test_non_prefetching_part_shows_neither(self):
        exp = experiment(INTEL_12TH, TrainKind.DIRECT,
                         VictimKind.INDIRECT)
        assert not exp.measure_fetch()
        exp2 = experiment(INTEL_12TH, TrainKind.DIRECT,
                          VictimKind.INDIRECT)
        assert not exp2.measure_decode()

    def test_real_phantom_shows_both(self):
        """On AMD the same probes agree: fetched AND decoded."""
        exp = experiment(ZEN3, TrainKind.DIRECT, VictimKind.NON_BRANCH)
        assert exp.measure_fetch()
        exp2 = experiment(ZEN3, TrainKind.DIRECT, VictimKind.NON_BRANCH)
        assert exp2.measure_decode()


class TestNextLinePrefetchConfound:
    """A sequential next-line prefetcher warms lines adjacent to
    architecturally executed code — a false IF signal the ID channel
    does not reproduce."""

    def test_next_line_pollutes_if_channel(self):
        uarch = replace(ZEN3, next_line_prefetch=True)
        machine = Machine(uarch, syscall_noise_evictions=0)
        page = 0x0000_0000_2800_0000
        code = page + 0xAC0
        machine.map_user(page, 4096)
        # hlt at the end of one line; next line never executes.
        machine.write_user(code, b"\x90" * 10 + b"\xf4")
        adjacent = (code & ~63) + 64
        machine.clflush(adjacent)
        machine.run_user(code)
        pa = machine.mem.aspace.translate_noperm(adjacent)
        assert machine.mem.hier.instr_cached(pa)   # prefetched!
        # But nothing at the adjacent line was decoded.
        assert not machine.cpu.uopcache.lookup(adjacent)

    def test_without_prefetcher_line_stays_cold(self):
        machine = Machine(ZEN3, syscall_noise_evictions=0)
        page = 0x0000_0000_2800_0000
        code = page + 0xAC0
        machine.map_user(page, 4096)
        machine.write_user(code, b"\x90" * 10 + b"\xf4")
        adjacent = (code & ~63) + 64
        machine.clflush(adjacent)
        machine.run_user(code)
        pa = machine.mem.aspace.translate_noperm(adjacent)
        assert not machine.mem.hier.instr_cached(pa)
