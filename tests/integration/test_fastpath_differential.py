"""Fast path vs naive interpreter: byte-identical campaign manifests.

The fast-path engine (step cache, compiled executors, software TLB —
``docs/performance.md``) claims *zero architecturally-visible cycle
changes*.  The strongest end-to-end statement of that claim: running
whole experiment campaigns under ``PHANTOM_REPRO_FASTPATH=0`` and
``=1`` must produce equal manifest fingerprints — every PMC, every
metric, every simulated-cycle total, across worker processes
(``jobs=2`` exercises the fork boundary: workers inherit the toggle).
"""

import pytest

from repro.core import CovertExperiment, KaslrImageExperiment
from repro.core.matrix import MatrixExperiment
from repro.kernel import MachineSpec
from repro.pipeline import ALL_MICROARCHES
from repro.runner import manifest_fingerprint, run_campaign


def fingerprint(experiment, monkeypatch, enabled: bool) -> dict:
    monkeypatch.setenv("PHANTOM_REPRO_FASTPATH", "1" if enabled else "0")
    campaign = run_campaign(experiment, jobs=2)
    campaign.raise_on_failure()
    return manifest_fingerprint(campaign.manifest)


def matrix_experiment():
    return MatrixExperiment(
        uarches=tuple(u.name for u in ALL_MICROARCHES))


def covert_experiment():
    return CovertExperiment(
        machine=MachineSpec(uarch="zen 4", sibling_load=True),
        channel="fetch", n_bits=48, seed=1)


def kaslr_experiment():
    return KaslrImageExperiment(machine=MachineSpec(uarch="zen 3"))


@pytest.mark.parametrize("factory", [matrix_experiment, covert_experiment,
                                     kaslr_experiment],
                         ids=["matrix", "covert", "kaslr-image"])
def test_engines_produce_identical_manifests(factory, monkeypatch):
    slow = fingerprint(factory(), monkeypatch, enabled=False)
    fast = fingerprint(factory(), monkeypatch, enabled=True)
    assert fast == slow
