"""Classic Spectre-v2 (BTI) against a kernel-module indirect branch, and
the mitigations around it: retpolines, AutoIBRS, RSB stuffing.

These extend §2.4/§8's discussion with runnable experiments: Phantom
matters precisely because this conventional surface is well defended —
the kernel's own branches are retpolined and AutoIBRS guards indirect
prediction *use*, yet the phantom fetch/decode effects survive.
"""

import pytest

from repro.core import PhantomInjector
from repro.kernel import (Machine, MitigationConfig, SYS_BTC, SYS_BTC_SAFE,
                          SYS_GETPID)
from repro.params import VA_MASK
from repro.pipeline import ZEN2, ZEN4
from repro.sidechannel import Timer, calibrate_threshold


def leak_probe(machine):
    """Map a probe page and return (probe_va, timer, threshold)."""
    probe = 0x0000_0000_2600_0000
    machine.map_user(probe, 4096)
    timer = Timer(machine)
    threshold = calibrate_threshold(timer, probe)
    return probe, timer, threshold


def bti_attack(machine, syscall_nr) -> bool:
    """Poison the module dispatcher's jmp* and see if the injected
    kernel gadget (Listing 3-style load) ran transiently."""
    injector = PhantomInjector(machine)
    probe, timer, threshold = leak_probe(machine)
    branch_src = machine.modules.sym("btc_fn") + 10   # the jmp rax
    gadget = machine.modules.sym("covert_load_gadget")
    probe_kva = machine.kaslr.physmap_base \
        + machine.mem.aspace.translate_noperm(probe)

    machine.clflush(probe)
    injector.inject(branch_src, gadget)
    machine.syscall(syscall_nr, probe_kva)
    return timer.time_load(probe) < threshold


class TestSpectreV2:
    def test_unprotected_module_leaks(self):
        """Matching-kind injection at the module's jmp*: the backend
        window executes the injected gadget with kernel arguments."""
        machine = Machine(ZEN2, kaslr_seed=31, syscall_noise_evictions=0)
        assert bti_attack(machine, SYS_BTC)

    def test_retpolined_module_does_not_leak(self):
        """The retpolined dispatcher has no jmp* to poison."""
        machine = Machine(ZEN2, kaslr_seed=31, syscall_noise_evictions=0)
        assert not bti_attack(machine, SYS_BTC_SAFE)

    def test_retpolined_module_still_works(self):
        machine = Machine(ZEN2, kaslr_seed=31)
        assert machine.syscall(SYS_BTC_SAFE) is not None
        assert not machine.cpu.kernel_mode

    def test_auto_ibrs_blocks_cross_privilege_use(self):
        """AutoIBRS refuses the user-trained prediction at execute: the
        v2 window never opens (though IF/ID of the target still happen
        — observation O5's other face)."""
        machine = Machine(ZEN4, kaslr_seed=31, syscall_noise_evictions=0,
                          mitigations=MitigationConfig(auto_ibrs=True))
        assert not bti_attack(machine, SYS_BTC)

    def test_without_auto_ibrs_zen4_fetches_but_cannot_execute(self):
        """Even unmitigated, Zen 4's phantom window has no execute
        reach; matching-kind v2 with its backend window is the only
        execute path — which works."""
        machine = Machine(ZEN4, kaslr_seed=31, syscall_noise_evictions=0)
        assert bti_attack(machine, SYS_BTC)


class TestRsbStuffing:
    def test_stuffing_replaces_user_rsb_entries(self):
        machine = Machine(ZEN2, kaslr_seed=32, mitigations=MitigationConfig(
            rsb_stuffing_on_entry=True))
        # Poison the RSB from user space: calls that never return.
        from repro.core import AttackerRuntime

        attacker = AttackerRuntime(machine)
        for i in range(4):
            attacker.seed_rsb(0x0000_0000_2700_0AFB + i * 0x1000)
        machine.syscall(SYS_GETPID)
        # After the syscall the RSB holds only kernel pad entries (the
        # kernel's own call/ret traffic is balanced on top of them).
        pad = machine.kernel.sym("rsb_stuff_pad")
        assert machine.cpu.bpu.rsb.peek() == pad

    def test_stuffing_costs_cycles(self):
        base = Machine(ZEN2, kaslr_seed=33)
        hardened = Machine(ZEN2, kaslr_seed=33,
                           mitigations=MitigationConfig(
                               rsb_stuffing_on_entry=True))
        base.syscall(SYS_GETPID)
        hardened.syscall(SYS_GETPID)
        assert hardened.cycles > base.cycles

    def test_stuffing_does_not_stop_phantom(self):
        """RSB stuffing addresses return mispredictions, not phantom
        type confusion: the KASLR primitive still works."""
        from repro.core import break_kernel_image_kaslr

        machine = Machine(ZEN4, kaslr_seed=34, mitigations=MitigationConfig(
            rsb_stuffing_on_entry=True))
        result = break_kernel_image_kaslr(machine)
        assert result.correct(machine.kaslr)
