"""Negative paths: resource exhaustion, bad inputs, fault robustness."""

import pytest

from repro.errors import (GeneralProtectionFault, MemoryError_, PageFault,
                          ReproError, SimulationLimit)
from repro.isa import Assembler, Reg
from repro.kernel import Machine, SYS_GETPID
from repro.pipeline import ZEN2


class TestResourceLimits:
    def test_tiny_memory_fails_boot_cleanly(self):
        with pytest.raises(MemoryError_):
            Machine(ZEN2, phys_mem=4 << 20)   # smaller than the kernel

    def test_huge_page_exhaustion(self):
        machine = Machine(ZEN2, phys_mem=64 << 20)
        with pytest.raises(MemoryError_):
            for i in range(64):
                machine.map_user_huge(0x4000_0000 + i * (2 << 20))

    def test_runaway_user_program(self):
        machine = Machine(ZEN2)
        code = 0x0000_0000_2B00_0000
        asm = Assembler(code)
        asm.label("spin")
        asm.jmp("spin")
        machine.load_user_image(asm.image())
        with pytest.raises(SimulationLimit):
            machine.run_user(code, max_instructions=500)


class TestFaultDelivery:
    def test_user_exec_of_kernel_address_faults(self):
        machine = Machine(ZEN2)
        with pytest.raises(PageFault) as info:
            machine.run_user(machine.kaslr.image_base + 0x1000)
        assert info.value.user

    def test_fault_leaves_machine_usable(self):
        """A crashed attacker program must not wedge the machine."""
        machine = Machine(ZEN2)
        with pytest.raises(PageFault):
            machine.run_user(0x0000_0000_2C00_0000)
        assert machine.syscall(SYS_GETPID) == 1234

    def test_ud2_is_an_error(self):
        machine = Machine(ZEN2)
        code = 0x0000_0000_2D00_0000
        machine.map_user(code, 4096)
        machine.write_user(code, b"\x0f\x0b")   # ud2
        with pytest.raises(ReproError):
            machine.run_user(code)

    def test_undecodable_bytes_raise(self):
        from repro.errors import DecodeError

        machine = Machine(ZEN2)
        code = 0x0000_0000_2E00_0000
        machine.map_user(code, 4096)
        machine.write_user(code, b"\x06\x07\x08")
        with pytest.raises(DecodeError):
            machine.run_user(code)

    def test_stack_overflow_faults(self):
        machine = Machine(ZEN2)
        code = 0x0000_0000_2F00_0000
        asm = Assembler(code)
        asm.label("push_forever")
        asm.push(Reg.RAX)
        asm.jmp("push_forever")
        machine.load_user_image(asm.image())
        with pytest.raises(PageFault) as info:
            machine.run_user(code, max_instructions=200_000)
        assert info.value.write
