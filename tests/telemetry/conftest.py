"""Telemetry tests share the process-wide registry/collector; give each
test a clean, disabled slate."""

import pytest

from repro.telemetry import REGISTRY, SPANS, TRACE


@pytest.fixture(autouse=True)
def clean_telemetry():
    REGISTRY.reset()
    REGISTRY.set_base_labels()
    yield
    REGISTRY.disable()
    REGISTRY.reset()
    REGISTRY.set_base_labels()
    TRACE.close()
    SPANS.finish()
