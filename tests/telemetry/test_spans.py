"""The span layer: recorder lifecycle, deterministic ids, stitching."""

import json
from pathlib import Path

import pytest

from repro.telemetry import SchemaError
from repro.telemetry.spans import (SPAN_JSON_SCHEMA, SPANS, STITCHED_NAME,
                                   SpanRecorder, TraceContext, critical_path,
                                   derive_span_id, new_trace_id, read_spans,
                                   stitch, stitch_to_file, summarize_trace,
                                   trace_structure, validate_span)

SCHEMA_COPY = Path(__file__).parent.parent / "data" / "span.schema.json"


def test_checked_in_span_schema_matches_canonical():
    # The copy CI validates against must never drift from the source.
    assert json.loads(SCHEMA_COPY.read_text()) == SPAN_JSON_SCHEMA


# -- ids ---------------------------------------------------------------------

def test_trace_ids_are_fresh_128_bit_hex():
    a, b = new_trace_id(), new_trace_id()
    assert a != b
    assert len(a) == 32 and int(a, 16) >= 0


def test_span_ids_derive_from_causal_coordinates_only():
    tid = "ab" * 16
    base = derive_span_id(tid, "p" * 16, "measure:fetch", 0)
    assert base == derive_span_id(tid, "p" * 16, "measure:fetch", 0)
    assert len(base) == 16
    # Any causal coordinate moving moves the id.
    assert base != derive_span_id(tid, "p" * 16, "measure:fetch", 1)
    assert base != derive_span_id(tid, "p" * 16, "measure:decode", 0)
    assert base != derive_span_id(tid, "q" * 16, "measure:fetch", 0)
    assert base != derive_span_id("cd" * 16, "p" * 16, "measure:fetch", 0)


# -- recorder lifecycle ------------------------------------------------------

def test_disabled_recorder_is_a_no_op(tmp_path):
    recorder = SpanRecorder()
    assert not recorder.enabled
    assert recorder.context() is None
    with recorder.span("anything", attempt=0) as span:
        span.set(status="error", note="ignored")
    recorder.event("also-ignored")
    assert recorder.finish() is None
    assert list(tmp_path.iterdir()) == []


def test_records_are_schema_valid_and_nested(tmp_path):
    recorder = SpanRecorder()
    recorder.start(tmp_path, name="unit")
    with recorder.span("campaign:toy", jobs=1):
        with recorder.span("job"):
            pass
    span_dir = recorder.finish()
    assert span_dir == tmp_path
    records = read_spans(span_dir)
    assert len(records) == 3
    for record in records:
        validate_span(record)
    by_name = {r["name"]: r for r in records}
    assert by_name["run:unit"]["parent_id"] is None
    assert by_name["campaign:toy"]["parent_id"] \
        == by_name["run:unit"]["span_id"]
    assert by_name["job"]["parent_id"] == by_name["campaign:toy"]["span_id"]
    assert by_name["campaign:toy"]["attrs"] == {"jobs": 1}


def test_malformed_span_record_is_rejected():
    with pytest.raises(SchemaError):
        validate_span({"schema": "phantom.span/1", "name": "x"})


def test_escaping_exception_marks_the_span_error(tmp_path):
    recorder = SpanRecorder()
    recorder.start(tmp_path, name="unit")
    with pytest.raises(RuntimeError):
        with recorder.span("doomed"):
            raise RuntimeError("boom")
    recorder.finish()
    by_name = {r["name"]: r for r in read_spans(tmp_path)}
    assert by_name["doomed"]["status"] == "error"
    assert by_name["run:unit"]["status"] == "ok"


def test_finish_closes_dangling_spans_and_stamps_root_status(tmp_path):
    recorder = SpanRecorder()
    recorder.start(tmp_path, name="unit")
    recorder._open("left-open", recorder.current_id)
    recorder.finish(status="error")
    by_name = {r["name"]: r for r in read_spans(tmp_path)}
    assert "left-open" in by_name
    assert by_name["run:unit"]["status"] == "error"
    assert not recorder.enabled


def test_events_are_zero_duration_spans(tmp_path):
    recorder = SpanRecorder()
    recorder.start(tmp_path, name="unit")
    recorder.event("supervisor:watchdog_kill", status="error", grace_s=2.0)
    recorder.finish()
    by_name = {r["name"]: r for r in read_spans(tmp_path)}
    kill = by_name["supervisor:watchdog_kill"]
    validate_span(kill)
    assert kill["duration_s"] == 0.0
    assert kill["status"] == "error"
    assert kill["attrs"] == {"grace_s": 2.0}


def test_adopt_is_idempotent_per_process(tmp_path):
    recorder = SpanRecorder()
    ctx = TraceContext(trace_id=new_trace_id(), parent_span_id="f" * 16,
                       span_dir=str(tmp_path))
    recorder.adopt(ctx)
    first = recorder._fh
    recorder.adopt(ctx)          # reused pool worker: same file
    assert recorder._fh is first
    with recorder.span("job", parent_id=ctx.parent_span_id, seq=0):
        pass
    recorder.finish()
    files = [p.name for p in tmp_path.glob("*.jsonl")]
    assert len(files) == 1 and files[0].startswith("worker-")
    [record] = read_spans(tmp_path)
    assert record["trace_id"] == ctx.trace_id
    assert record["parent_id"] == ctx.parent_span_id


def test_context_carries_innermost_span(tmp_path):
    recorder = SpanRecorder()
    root = recorder.start(tmp_path, name="unit")
    assert recorder.context().parent_span_id == root.span_id
    with recorder.span("campaign:toy") as campaign:
        ctx = recorder.context()
        assert ctx.parent_span_id == campaign.span_id
        assert ctx.span_dir == str(tmp_path)
        assert ctx.trace_id == recorder.trace_id
    recorder.finish()


# -- stitching ---------------------------------------------------------------

def _record(name, span_id, parent_id, *, start=0.0, duration=0.0,
            status="ok", pid=1, trace_id="t" * 32):
    return {"schema": "phantom.span/1", "name": name, "trace_id": trace_id,
            "span_id": span_id, "parent_id": parent_id, "start_s": start,
            "duration_s": duration, "status": status, "pid": pid,
            "attrs": {}}


def test_stitch_orders_parents_before_children():
    records = [
        _record("leaf-b", "bb", "aa", start=3.0),
        _record("root", "rr", None, start=0.0, duration=5.0),
        _record("leaf-a", "aa", "rr", start=1.0, duration=3.0),
    ]
    trace = stitch(records)
    assert [r["name"] for r in trace.spans] == ["root", "leaf-a", "leaf-b"]
    assert trace.problems() == []


def test_stitch_collects_orphans_instead_of_dropping():
    records = [
        _record("root", "rr", None),
        _record("lost-parent-child", "oo", "zz", start=9.0),
    ]
    trace = stitch(records)
    assert [r["name"] for r in trace.orphans] == ["lost-parent-child"]
    assert trace.spans[-1]["name"] == "lost-parent-child"
    problems = trace.problems()
    assert any("orphan" in p for p in problems)


def test_stitch_flags_multiple_roots():
    trace = stitch([_record("a", "aa", None), _record("b", "bb", None)])
    assert any("exactly one root" in p for p in trace.problems())


def test_stitch_to_file_writes_and_rereads_cleanly(tmp_path):
    recorder = SpanRecorder()
    recorder.start(tmp_path, name="unit")
    with recorder.span("phase"):
        pass
    recorder.finish()
    out = stitch_to_file(tmp_path)
    assert out == tmp_path / STITCHED_NAME
    lines = [json.loads(line) for line in out.read_text().splitlines()]
    assert [r["name"] for r in lines] == ["run:unit", "phase"]
    # The stitched file is excluded when re-reading the directory.
    assert len(read_spans(tmp_path)) == 2


def test_read_spans_skips_torn_lines(tmp_path):
    path = tmp_path / "worker-1.jsonl"
    good = _record("ok", "aa", None)
    path.write_text(json.dumps(good) + "\n" + '{"schema": "phantom.sp')
    assert read_spans(tmp_path) == [good]


def test_trace_structure_ignores_timing_ids_and_pids():
    def build(start_offsets, pids):
        return [
            _record("root", "rr", None, start=start_offsets[0],
                    pid=pids[0]),
            _record("job-a", "aa", "rr", start=start_offsets[1],
                    pid=pids[1]),
            _record("job-b", "bb", "rr", start=start_offsets[2],
                    pid=pids[2]),
        ]

    serial = stitch(build([0.0, 1.0, 2.0], [1, 1, 1]))
    pooled = stitch(build([5.0, 7.5, 6.0], [1, 2, 3]))
    assert trace_structure(serial) == trace_structure(pooled)
    # But a different shape is a different structure.
    reparented = [
        _record("root", "rr", None),
        _record("job-a", "aa", "rr"),
        _record("job-b", "bb", "aa"),
    ]
    assert trace_structure(stitch(reparented)) != trace_structure(serial)


def test_critical_path_follows_longest_children():
    records = [
        _record("root", "rr", None, duration=10.0),
        _record("fast", "ff", "rr", duration=1.0),
        _record("slow", "ss", "rr", duration=8.0),
        _record("slow-leaf", "sl", "ss", duration=7.0),
    ]
    path = [r["name"] for r in critical_path(stitch(records))]
    assert path == ["root", "slow", "slow-leaf"]
    assert critical_path(stitch([])) == []


def test_summarize_trace_renders_table_and_errors():
    records = [
        _record("root", "rr", None, duration=4.0),
        _record("job", "aa", "rr", duration=1.5),
        _record("job", "bb", "rr", duration=0.5, status="error"),
    ]
    text = "\n".join(summarize_trace(stitch(records)))
    assert "3 spans" in text and "root" in text
    assert "critical path:" in text
    assert "spans by name:" in text
    assert "errors: 1 span(s)" in text
    assert summarize_trace(stitch([])) == ["no spans"]


def test_global_recorder_starts_disabled():
    assert SPANS.enabled is False
