"""Host-time profiling hooks (satellite: lazy histogram binding)."""

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiling import profile_block, time_callable


def test_profile_block_records_into_enabled_registry():
    registry = MetricsRegistry()
    registry.enable()
    with profile_block("decode", registry=registry) as result:
        pass
    assert result["elapsed_s"] >= 0.0
    snap = registry.snapshot()
    assert snap["histograms"]["profile_decode_seconds"]["count"] == 1


def test_profile_block_on_disabled_registry_is_a_no_op():
    """The histogram binds lazily: profiling with telemetry off must
    leave no profile_* instrument behind in later snapshots."""
    registry = MetricsRegistry()
    assert not registry.enabled
    with profile_block("decode", registry=registry) as result:
        pass
    assert result["elapsed_s"] >= 0.0      # timing works regardless
    registry.enable()
    snap = registry.snapshot(include_zero=True)
    assert "profile_decode_seconds" not in snap["histograms"]


def test_time_callable_returns_best_of_seconds():
    calls = []
    best = time_callable(lambda: calls.append(None), repeat=2, number=3)
    assert best >= 0.0
    assert len(calls) == 6
