"""Metrics registry: instruments, labels, enable/disable, snapshots."""

from repro.telemetry import REGISTRY
from repro.telemetry.metrics import (Counter, Gauge, Histogram,
                                     HISTOGRAM_BUCKETS, MetricsRegistry)


def test_disabled_registry_is_a_noop():
    c = REGISTRY.counter("test_noop")
    c.inc()
    c.inc(10)
    assert c.value == 0


def test_counter_counts_when_enabled():
    REGISTRY.enable()
    c = REGISTRY.counter("test_counts")
    c.inc()
    c.inc(4)
    assert c.value == 5


def test_direct_attribute_bump_respects_manual_guard():
    # The hot-path idiom: `if REGISTRY.enabled: inst.value += 1`.
    c = REGISTRY.counter("test_guarded")
    if REGISTRY.enabled:
        c.value += 1
    assert c.value == 0
    REGISTRY.enable()
    if REGISTRY.enabled:
        c.value += 1
    assert c.value == 1


def test_same_name_and_labels_share_one_instrument():
    a = REGISTRY.counter("test_shared", level="L1I")
    b = REGISTRY.counter("test_shared", level="L1I")
    other = REGISTRY.counter("test_shared", level="L2")
    assert a is b
    assert a is not other


def test_gauge_set_and_add():
    REGISTRY.enable()
    g = REGISTRY.gauge("test_gauge")
    g.set(7)
    g.add(3)
    assert g.value == 10


def test_histogram_observe_and_summary():
    REGISTRY.enable()
    h = REGISTRY.histogram("test_hist")
    for v in (1, 2, 3, 1000):
        h.observe(v)
    s = h.summary()
    assert s["count"] == 4
    assert s["sum"] == 1006
    assert s["min"] == 1 and s["max"] == 1000
    assert sum(h.buckets) == 4


def test_histogram_overflow_bucket():
    REGISTRY.enable()
    h = REGISTRY.histogram("test_hist_overflow")
    h.observe(HISTOGRAM_BUCKETS[-1] + 1)
    assert h.buckets[-1] == 1


def test_snapshot_format_and_zero_suppression():
    REGISTRY.enable()
    REGISTRY.counter("test_snap_zero")          # stays zero: suppressed
    REGISTRY.counter("test_snap", level="L1I").inc(3)
    snap = REGISTRY.snapshot()
    assert "test_snap{level=L1I}" in snap["counters"]
    assert snap["counters"]["test_snap{level=L1I}"] == 3
    assert "test_snap_zero" not in snap["counters"]


def test_base_labels_in_snapshot():
    REGISTRY.set_base_labels(uarch="Zen 2")
    assert REGISTRY.snapshot()["base_labels"] == {"uarch": "Zen 2"}


def test_reset_zeroes_but_keeps_bindings():
    REGISTRY.enable()
    c = REGISTRY.counter("test_reset")
    c.inc(5)
    REGISTRY.reset()
    assert c.value == 0
    c.inc()
    assert c.value == 1
    assert REGISTRY.counter("test_reset") is c


def test_registries_are_independent():
    mine = MetricsRegistry()
    mine.enable()
    c = mine.counter("test_private")
    c.inc()
    assert c.value == 1
    assert ("Counter", "test_private", ()) not in REGISTRY._instruments


def test_instrument_kinds():
    assert isinstance(REGISTRY.counter("test_kind_c"), Counter)
    assert isinstance(REGISTRY.gauge("test_kind_g"), Gauge)
    assert isinstance(REGISTRY.histogram("test_kind_h"), Histogram)
