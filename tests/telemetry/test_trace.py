"""Trace collector: sinks, schema, spans, JSON-lines round-trips."""

from repro.telemetry import TRACE, TRACE_SCHEMA, read_jsonl
from repro.telemetry.trace import (JsonLinesSink, MemorySink,
                                   TraceCollector, TraceEvent)


def test_disabled_collector_drops_events():
    collector = TraceCollector()
    collector.emit("retire", 1, pc=0x1000)
    sink = MemorySink()
    collector.add_sink(sink)
    collector.remove_sink(sink)
    assert sink.events == []


def test_adding_a_sink_enables_removing_disables():
    collector = TraceCollector()
    assert not collector.enabled
    sink = MemorySink()
    collector.add_sink(sink)
    assert collector.enabled
    collector.remove_sink(sink)
    assert not collector.enabled


def test_events_fan_out_to_all_sinks():
    collector = TraceCollector()
    a, b = MemorySink(), MemorySink()
    collector.add_sink(a)
    collector.add_sink(b)
    collector.emit("episode", 42, flavour="phantom")
    assert len(a.events) == len(b.events) == 1
    assert a.events[0].kind == "episode"
    assert a.events[0].cycle == 42
    assert a.events[0].fields["flavour"] == "phantom"


def test_event_dict_carries_schema():
    event = TraceEvent("retire", 7, {"pc": 0x1000})
    doc = event.to_dict()
    assert doc["schema"] == TRACE_SCHEMA
    assert doc["kind"] == "retire"
    assert doc["cycle"] == 7
    assert doc["pc"] == 0x1000


def test_jsonl_sink_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    collector = TraceCollector()
    with collector.sink(JsonLinesSink(path)) as sink:
        collector.emit("retire", 1, pc=0x40)
        collector.emit("syscall", 2, nr=39)
        sink.close()
    events = read_jsonl(path)
    assert [e["kind"] for e in events] == ["retire", "syscall"]
    assert all(e["schema"] == TRACE_SCHEMA for e in events)


def test_span_brackets_with_begin_end():
    collector = TraceCollector()
    sink = MemorySink()
    collector.add_sink(sink)
    cycles = iter((10, 20))
    with collector.span("attack", lambda: next(cycles)):
        collector.emit("retire", 15, pc=0)
    kinds = [e.kind for e in sink.events]
    assert kinds == ["span_begin", "retire", "span_end"]
    assert sink.events[0].cycle == 10
    assert sink.events[-1].cycle == 20


def test_sink_contextmanager_detaches_on_error():
    collector = TraceCollector()
    try:
        with collector.sink(MemorySink()):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert not collector.enabled


def test_machine_emits_typed_events(tmp_path):
    from repro.kernel import Machine, SYS_GETPID
    from repro.pipeline import ZEN2

    machine = Machine(ZEN2)
    sink = MemorySink()
    with TRACE.sink(sink):
        machine.syscall(SYS_GETPID)
    kinds = {e.kind for e in sink.events}
    assert "retire" in kinds
    assert "syscall" in kinds
    assert "episode" in kinds and "resteer" in kinds
    episode = next(e for e in sink.events if e.kind == "episode")
    assert episode.fields["flavour"] in ("phantom", "spectre")
    assert episode.fields["reach"] in ("NONE", "FETCH", "DECODE", "EXECUTE")
