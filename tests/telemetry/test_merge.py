"""Merging per-job telemetry into campaign views (satellite: histogram
merge semantics and absorb lineage)."""

from repro.telemetry import RunManifest
from repro.telemetry.merge import merge_metric_snapshots, merge_pmc


def _snapshot(counters=None, gauges=None, histograms=None, labels=None):
    snap = {"counters": counters or {}, "gauges": gauges or {},
            "histograms": histograms or {}}
    if labels is not None:
        snap["base_labels"] = labels
    return snap


def test_counters_add_and_gauges_keep_max():
    merged = merge_metric_snapshots(
        _snapshot(counters={"a": 2}, gauges={"depth": 3}),
        _snapshot(counters={"a": 5, "b": 1}, gauges={"depth": 2}))
    assert merged["counters"] == {"a": 7, "b": 1}
    assert merged["gauges"] == {"depth": 3}


def test_histograms_add_counts_and_widen_bounds():
    a = {"h": {"count": 2, "sum": 3.0, "mean": 1.5, "min": 1.0, "max": 2.0}}
    b = {"h": {"count": 1, "sum": 9.0, "mean": 9.0, "min": 9.0, "max": 9.0}}
    merged = merge_metric_snapshots(_snapshot(histograms=a),
                                    _snapshot(histograms=b))
    assert merged["histograms"]["h"] == {
        "count": 3, "sum": 12.0, "mean": 4.0, "min": 1.0, "max": 9.0}


def test_empty_histogram_merges_without_poisoning_bounds():
    empty = {"h": {"count": 0, "sum": 0.0, "mean": 0.0,
                   "min": None, "max": None}}
    full = {"h": {"count": 2, "sum": 1.0, "mean": 0.5,
                  "min": 0.25, "max": 0.75}}
    merged = merge_metric_snapshots(_snapshot(histograms=empty),
                                    _snapshot(histograms=full))
    assert merged["histograms"]["h"]["min"] == 0.25
    assert merged["histograms"]["h"]["max"] == 0.75
    both_empty = merge_metric_snapshots(_snapshot(histograms=empty),
                                        _snapshot(histograms=empty))
    assert both_empty["histograms"]["h"]["min"] is None
    assert both_empty["histograms"]["h"]["max"] is None


def test_disjoint_histogram_keys_pass_through_as_copies():
    a = {"only_a": {"count": 1, "sum": 1.0, "mean": 1.0,
                    "min": 1.0, "max": 1.0}}
    b = {"only_b": {"count": 1, "sum": 2.0, "mean": 2.0,
                    "min": 2.0, "max": 2.0}}
    merged = merge_metric_snapshots(_snapshot(histograms=a),
                                    _snapshot(histograms=b))
    assert set(merged["histograms"]) == {"only_a", "only_b"}
    merged["histograms"]["only_b"]["count"] = 99
    assert b["only_b"]["count"] == 1       # inputs never mutated


def test_merge_does_not_mutate_inputs():
    base = _snapshot(counters={"a": 1})
    other = _snapshot(counters={"a": 2})
    merge_metric_snapshots(base, other)
    assert base["counters"] == {"a": 1}
    assert other["counters"] == {"a": 2}


def test_pmc_banks_sum():
    assert merge_pmc({"x": 1, "y": 2}, {"y": 3, "z": 4}) \
        == {"x": 1, "y": 5, "z": 4}


def test_absorb_merges_histograms_and_lifts_observability_lineage():
    host = RunManifest.begin("matrix", config={})
    host.metrics = _snapshot(histograms={
        "profile_decode_seconds": {"count": 1, "sum": 0.5, "mean": 0.5,
                                   "min": 0.5, "max": 0.5}})
    host.finish("success")
    host.metrics = _snapshot(histograms={
        "profile_decode_seconds": {"count": 1, "sum": 0.5, "mean": 0.5,
                                   "min": 0.5, "max": 0.5}})
    campaign = {
        "phases": [{"name": "jobs", "cycles": 10, "wall_time_s": 1.0}],
        "metrics": _snapshot(histograms={
            "profile_decode_seconds": {"count": 3, "sum": 4.5, "mean": 1.5,
                                       "min": 0.25, "max": 3.0}}),
        "pmc": {"syscalls": 2},
        "totals": {"cycles": 10, "simulated_seconds": 0.5},
        "outcome": {"status": "success",
                    "supervision": {"pool_respawns": 1},
                    "spans": {"trace_id": "ab" * 16, "count": 42},
                    "progress": {"done": 6, "failed": 0}},
    }
    host.absorb(campaign)
    merged = host.metrics["histograms"]["profile_decode_seconds"]
    assert merged["count"] == 4
    assert merged["min"] == 0.25 and merged["max"] == 3.0
    assert host.pmc["syscalls"] == 2
    # Recovery AND observability lineage lift into the host outcome.
    assert host.outcome["supervision"] == {"pool_respawns": 1}
    assert host.outcome["spans"] == {"trace_id": "ab" * 16, "count": 42}
    assert host.outcome["progress"] == {"done": 6, "failed": 0}
    # But absorb never overwrites lineage the host already carries.
    host.absorb({"outcome": {"spans": {"count": 0}}})
    assert host.outcome["spans"]["count"] == 42
