"""Exporters: Chrome trace-event JSON and OpenMetrics text."""

import json

from repro.telemetry import to_chrome_trace, to_openmetrics


def _record(name, span_id, parent_id, *, start=100.0, duration=0.25,
            status="ok", pid=7, attrs=None):
    return {"schema": "phantom.span/1", "name": name, "trace_id": "t" * 32,
            "span_id": span_id, "parent_id": parent_id, "start_s": start,
            "duration_s": duration, "status": status, "pid": pid,
            "attrs": attrs or {}}


# -- Chrome trace events -----------------------------------------------------

def test_chrome_trace_is_valid_json_with_complete_events():
    records = [
        _record("run:matrix", "rr", None, start=100.0, duration=2.0),
        _record("job", "jj", "rr", start=100.5, duration=0.5,
                attrs={"attempt": 0}),
    ]
    doc = json.loads(json.dumps(to_chrome_trace(records)))
    assert doc["otherData"]["schema"] == "phantom.span/1"
    assert doc["otherData"]["trace_id"] == "t" * 32
    events = doc["traceEvents"]
    assert [e["ph"] for e in events] == ["X", "X"]
    by_name = {e["name"]: e for e in events}
    # Timestamps rebase to the earliest span, in microseconds.
    assert by_name["run:matrix"]["ts"] == 0.0
    assert by_name["job"]["ts"] == 500_000.0
    assert by_name["job"]["dur"] == 500_000.0
    assert by_name["job"]["args"]["attempt"] == 0
    assert by_name["job"]["args"]["parent_id"] == "rr"


def test_chrome_trace_tracks_processes_and_flags_errors():
    records = [
        _record("a", "aa", None, pid=1),
        _record("b", "bb", "aa", pid=2, status="error"),
    ]
    events = to_chrome_trace(records)["traceEvents"]
    assert {e["pid"] for e in events} == {1, 2}
    by_name = {e["name"]: e for e in events}
    assert by_name["a"]["cat"] == "phantom"
    assert by_name["b"]["cat"] == "phantom,error"


def test_chrome_trace_of_nothing_is_still_a_document():
    doc = to_chrome_trace([])
    assert doc["traceEvents"] == []
    assert doc["otherData"]["trace_id"] == ""


# -- OpenMetrics -------------------------------------------------------------

def test_openmetrics_renders_counters_gauges_histograms():
    metrics = {
        "counters": {"btb.installs": 12},
        "gauges": {"pool.workers": 4},
        "histograms": {"profile_decode_seconds": {
            "count": 3, "sum": 0.75, "mean": 0.25, "min": 0.1, "max": 0.4}},
    }
    text = to_openmetrics(metrics)
    assert "# TYPE phantom_btb_installs counter" in text
    assert "phantom_btb_installs_total 12" in text
    assert "# TYPE phantom_pool_workers gauge" in text
    assert "phantom_pool_workers 4" in text
    assert "phantom_profile_decode_seconds_count 3" in text
    assert "phantom_profile_decode_seconds_sum 0.75" in text
    assert "phantom_profile_decode_seconds_min 0.1" in text
    assert "phantom_profile_decode_seconds_max 0.4" in text
    assert text.endswith("# EOF\n")


def test_openmetrics_merges_instrument_and_base_labels():
    metrics = {
        "counters": {"leaks{channel=fetch}": 9},
        "gauges": {}, "histograms": {},
        "base_labels": {"uarch": "zen2"},
    }
    text = to_openmetrics(metrics)
    assert 'phantom_leaks_total{channel="fetch",uarch="zen2"} 9' in text


def test_openmetrics_exports_pmc_bank_as_counters():
    text = to_openmetrics({"counters": {}, "gauges": {}, "histograms": {}},
                          pmc={"de_dis_uop_queue_empty": 41})
    assert "# TYPE phantom_pmc_de_dis_uop_queue_empty counter" in text
    assert "phantom_pmc_de_dis_uop_queue_empty_total 41" in text


def test_openmetrics_handles_empty_histogram_bounds():
    metrics = {"counters": {}, "gauges": {},
               "histograms": {"empty": {"count": 0, "sum": 0.0,
                                        "min": None, "max": None}}}
    text = to_openmetrics(metrics)
    assert "phantom_empty_min NaN" in text
    assert "phantom_empty_max NaN" in text
