"""Stats rendering, manifest diffs, and schema-copy synchronisation."""

import json
from pathlib import Path

from repro.telemetry import (MANIFEST_JSON_SCHEMA, RunManifest,
                             diff_manifests, summarize_manifest)

SCHEMA_COPY = Path(__file__).parent.parent / "data" / \
    "run_manifest.schema.json"


def _doc(command="kaslr", status="success", cycles=1000, counters=None,
         pmc=None, histograms=None):
    manifest = RunManifest.begin(command, config={"uarch": "Zen 2"})
    manifest.finish(status)
    doc = manifest.to_dict()
    doc["totals"]["cycles"] = cycles
    doc["totals"]["simulated_seconds"] = cycles / 3.1e9
    doc["phases"] = [{"name": "attack", "cycles": cycles,
                      "wall_time_s": 0.5}]
    doc["metrics"]["counters"] = counters or {}
    doc["metrics"]["histograms"] = histograms or {}
    doc["pmc"] = pmc or {}
    return doc


def test_checked_in_schema_matches_canonical():
    # The copy CI validates against must never drift from the source.
    assert json.loads(SCHEMA_COPY.read_text()) == MANIFEST_JSON_SCHEMA


def test_summary_renders_the_run():
    doc = _doc(counters={"btb_installs": 12}, pmc={"syscalls": 3})
    text = "\n".join(summarize_manifest(doc))
    assert "run: kaslr" in text
    assert "status: success" in text
    assert "uarch=Zen 2" in text
    assert "1,000 cycles" in text
    assert "attack" in text
    assert "btb_installs" in text and "12" in text
    assert "syscalls" in text


def test_summary_lists_enabled_mitigations():
    doc = _doc()
    doc["config"]["mitigations"] = {"retpolines": True, "auto_ibrs": False}
    text = "\n".join(summarize_manifest(doc))
    assert "mitigations on: retpolines" in text


def test_diff_reports_moved_counters():
    before = _doc(cycles=1000, counters={"btb_installs": 10, "same": 5})
    after = _doc(cycles=1500, counters={"btb_installs": 40, "same": 5})
    text = "\n".join(diff_manifests(before, after))
    assert "totals.cycles: 1,000 -> 1,500" in text
    assert "+500 (+50.0%)" in text
    assert "btb_installs" in text
    assert "+30 (+300.0%)" in text
    assert "same" not in text


def test_diff_reports_status_change():
    before = _doc(status="success")
    after = _doc(status="failure")
    text = "\n".join(diff_manifests(before, after))
    assert "status: success -> failure" in text


def test_diff_of_identical_runs_says_so():
    doc = _doc()
    text = "\n".join(diff_manifests(doc, doc))
    assert "no differences" in text


def test_diff_handles_new_counters():
    before = _doc(counters={})
    after = _doc(counters={"fresh_counter": 9})
    text = "\n".join(diff_manifests(before, after))
    assert "fresh_counter" in text and "+9" in text


def test_summary_renders_histograms():
    doc = _doc(histograms={"profile_decode_seconds": {
        "count": 4, "sum": 2.0, "mean": 0.5, "min": 0.1, "max": 0.9}})
    text = "\n".join(summarize_manifest(doc))
    assert "histograms:" in text
    assert "profile_decode_seconds" in text
    assert "count" in text and "4" in text
    assert "min" in text and "0.100" in text
    assert "max" in text and "0.900" in text


def test_summary_renders_empty_histogram_bounds_as_dash():
    doc = _doc(histograms={"empty": {"count": 0, "sum": 0.0,
                                     "min": None, "max": None}})
    text = "\n".join(summarize_manifest(doc))
    assert "min          -" in text or "-" in text.split("empty")[1]


def test_diff_reports_moved_histograms():
    before = _doc(histograms={"profile_decode_seconds": {
        "count": 2, "sum": 1.0, "mean": 0.5, "min": 0.5, "max": 0.5}})
    after = _doc(histograms={"profile_decode_seconds": {
        "count": 6, "sum": 1.5, "mean": 0.25, "min": 0.1, "max": 0.5}})
    text = "\n".join(diff_manifests(before, after))
    assert "metric histograms:" in text
    assert "profile_decode_seconds.count" in text
    assert "+4 (+200.0%)" in text
    assert "profile_decode_seconds.sum" in text


def test_diff_of_identical_histograms_is_silent():
    doc = _doc(histograms={"h": {"count": 1, "sum": 1.0, "mean": 1.0,
                                 "min": 1.0, "max": 1.0}})
    text = "\n".join(diff_manifests(doc, doc))
    assert "metric histograms" not in text
    assert "no differences" in text
