"""Live progress: the phantom.progress/1 stream and the TTY line."""

import io
import json

from repro.telemetry import PROGRESS_SCHEMA, ProgressReporter


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class BrokenStream(io.StringIO):
    def write(self, text):
        raise OSError("broken pipe")


def _reporter(**kwargs):
    clock = FakeClock()
    stream = kwargs.pop("stream", io.StringIO())
    return ProgressReporter(stream=stream, clock=clock, **kwargs), \
        stream, clock


def _events(stream):
    return [json.loads(line) for line in
            stream.getvalue().splitlines()]


def test_stream_carries_schema_counts_and_eta():
    reporter, stream, clock = _reporter()
    reporter.begin(campaign="matrix", total=4)
    clock.now = 2.0
    reporter.job_done("matrix[zen2/jmp/call]", ok=True)
    clock.now = 4.0
    reporter.job_done("matrix[zen2/jmp/ret]", ok=False)
    reporter.end("partial")
    events = _events(stream)
    assert [e["event"] for e in events] \
        == ["campaign_begin", "job_done", "job_done", "campaign_end"]
    assert all(e["schema"] == PROGRESS_SCHEMA for e in events)
    assert all(e["campaign"] == "matrix" for e in events)
    first_done = events[1]
    assert first_done["job"] == "matrix[zen2/jmp/call]"
    assert first_done["status"] == "success"
    assert first_done["done"] == 1 and first_done["total"] == 4
    # 1 job in 2s -> 0.5 job/s -> 3 remaining in 6s.
    assert first_done["jobs_per_s"] == 0.5
    assert first_done["eta_s"] == 6.0
    assert events[2]["failed"] == 1
    assert events[3]["status"] == "partial"


def test_resumed_jobs_precount_toward_done():
    reporter, stream, clock = _reporter()
    reporter.begin(campaign="kaslr", total=10, done=7)
    assert _events(stream)[0]["done"] == 7
    clock.now = 1.0
    reporter.job_done("kaslr[8]", ok=True)
    assert reporter.done == 8


def test_retried_jobs_are_counted():
    reporter, stream, clock = _reporter()
    reporter.begin(campaign="toy", total=2)

    class Result:
        class spec:
            label = "toy[0]"
        ok = True
        attempts = 2

    reporter.on_job_done(Result())
    assert reporter.retried == 1
    assert _events(stream)[-1]["retried"] == 1


def test_eta_is_unknown_before_first_completion_and_zero_at_end():
    reporter, stream, clock = _reporter()
    reporter.begin(campaign="toy", total=1)
    assert reporter.snapshot()["eta_s"] is None
    clock.now = 3.0
    reporter.job_done("toy[0]", ok=True)
    assert reporter.snapshot()["eta_s"] == 0.0


def test_tty_renderer_rewrites_one_line():
    tty = io.StringIO()
    clock = FakeClock()
    reporter = ProgressReporter(tty=tty, clock=clock)
    reporter.begin(campaign="toy", total=2)
    clock.now = 1.0
    reporter.job_done("toy[0]", ok=True)
    reporter.end("success")
    text = tty.getvalue()
    assert text.count("\r") >= 2           # rewrites, not scrolls
    assert "[toy]" in text and "1/2" in text
    assert text.endswith("\n")             # final newline on end()


def test_broken_stream_disables_itself_without_killing_the_run():
    reporter = ProgressReporter(stream=BrokenStream(),
                                clock=FakeClock())
    reporter.begin(campaign="toy", total=1)
    assert reporter.stream is None
    reporter.job_done("toy[0]", ok=True)   # must not raise
    reporter.end("success")


def test_begin_resets_counters_between_sequential_campaigns():
    reporter, stream, clock = _reporter()
    reporter.begin(campaign="first", total=1)
    reporter.job_done("first[0]", ok=False)
    reporter.begin(campaign="second", total=3)
    assert reporter.done == 0 and reporter.failed == 0
    assert _events(stream)[-1]["campaign"] == "second"
