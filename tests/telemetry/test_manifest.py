"""Run manifests: building, schema validity, write/load round-trips."""

import pytest

from repro.kernel import Machine, SYS_GETPID
from repro.pipeline import ZEN2
from repro.telemetry import (MANIFEST_SCHEMA, REGISTRY, RunManifest,
                             SchemaError, machine_config,
                             validate_manifest)


def test_machine_config_captures_the_run_parameters():
    machine = Machine(ZEN2, kaslr_seed=7)
    config = machine_config(machine)
    assert config["uarch"] == "Zen 2"
    assert config["vendor"] == "amd"
    assert config["kaslr_seed"] == 7
    assert isinstance(config["mitigations"], dict)
    assert all(isinstance(v, bool)
               for v in config["mitigations"].values())


def test_begin_phase_finish_produces_a_valid_document():
    REGISTRY.enable()
    machine = Machine(ZEN2, kaslr_seed=1)
    manifest = RunManifest.begin("test-run", machine=machine, extra=3)
    with manifest.phase("syscalls", machine=machine):
        machine.syscall(SYS_GETPID)
    manifest.finish("success", machine=machine, answer=42)
    doc = manifest.to_dict()
    validate_manifest(doc)
    assert doc["schema"] == MANIFEST_SCHEMA
    assert doc["config"]["extra"] == 3
    assert doc["outcome"] == {"status": "success", "answer": 42}
    (phase,) = doc["phases"]
    assert phase["name"] == "syscalls"
    assert phase["cycles"] > 0
    assert doc["totals"]["cycles"] == machine.cycles
    assert doc["totals"]["simulated_seconds"] == machine.seconds()
    assert doc["pmc"]["syscalls"] == 1
    assert any(k.startswith("machine_syscalls")
               for k in doc["metrics"]["counters"])


def test_phase_records_even_when_body_raises():
    manifest = RunManifest.begin("test-error")
    with pytest.raises(RuntimeError):
        with manifest.phase("doomed"):
            raise RuntimeError("boom")
    assert [p.name for p in manifest.phases] == ["doomed"]


def test_write_and_load_round_trip(tmp_path):
    manifest = RunManifest.begin("test-io", config={"seed": 9})
    manifest.finish("success")
    path = manifest.write(tmp_path, name="run.json")
    doc = RunManifest.load(path)
    validate_manifest(doc)
    assert doc == manifest.to_dict()


def test_default_write_name_includes_command(tmp_path):
    manifest = RunManifest.begin("my cmd")
    manifest.finish("success")
    path = manifest.write(tmp_path)
    assert path.name.startswith("my_cmd-")
    assert path.suffix == ".json"


def test_validator_rejects_missing_sections():
    manifest = RunManifest.begin("test-invalid")
    manifest.finish("success")
    doc = manifest.to_dict()
    del doc["totals"]
    with pytest.raises(SchemaError):
        validate_manifest(doc)


def test_validator_rejects_wrong_schema_id():
    manifest = RunManifest.begin("test-schema-id")
    manifest.finish("success")
    doc = manifest.to_dict()
    doc["schema"] = "phantom.run-manifest/999"
    with pytest.raises(SchemaError):
        validate_manifest(doc)


def test_validator_rejects_malformed_phase():
    manifest = RunManifest.begin("test-bad-phase")
    manifest.finish("success")
    doc = manifest.to_dict()
    doc["phases"] = [{"name": "p"}]   # missing cycles/wall_time_s
    with pytest.raises(SchemaError):
        validate_manifest(doc)


def test_mini_validator_agrees_without_jsonschema(monkeypatch):
    import builtins
    import sys

    from repro.telemetry import schema as schema_mod

    real_import = builtins.__import__

    def no_jsonschema(name, *args, **kwargs):
        if name == "jsonschema":
            raise ImportError(name)
        return real_import(name, *args, **kwargs)

    monkeypatch.delitem(sys.modules, "jsonschema", raising=False)
    monkeypatch.setattr(builtins, "__import__", no_jsonschema)

    manifest = RunManifest.begin("test-fallback")
    manifest.finish("success")
    schema_mod.validate_manifest(manifest.to_dict())
    broken = manifest.to_dict()
    broken["totals"]["cycles"] = "not-an-int"
    with pytest.raises(SchemaError):
        schema_mod.validate_manifest(broken)
