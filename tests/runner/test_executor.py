"""The campaign executor: determinism at any --jobs, failure capture.

The toy experiments live at module top level so the process pool can
pickle their specs into worker processes.
"""

import time
from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.kernel import MachineSpec
from repro.runner import (CampaignError, JobSpec, derive_seed, execute_job,
                          manifest_fingerprint, resolve_jobs, run_campaign)
from repro.telemetry import validate_manifest


@dataclass(frozen=True)
class ToyExperiment:
    """Pure-compute campaign: value depends only on the spec."""

    name: ClassVar[str] = "toy"

    n: int = 6
    fail_keys: tuple = ()
    sleep_s: float = 0.0

    def campaign_config(self) -> dict:
        return {"n": self.n}

    def job_specs(self):
        return [JobSpec.make(self.name, (i,), derive_seed(42, (i,)),
                             index=i)
                for i in range(self.n)]

    def run_one(self, spec, ctx):
        if spec.key in self.fail_keys:
            raise RuntimeError(f"boom {spec.key}")
        if self.sleep_s:
            time.sleep(self.sleep_s)
        return spec.param("index") * 10 + spec.seed % 7

    def reduce(self, results):
        return [r.value for r in results if r.ok]


_FLAKY_STATE = {"calls": 0}


@dataclass(frozen=True)
class FlakyExperiment(ToyExperiment):
    """Fails on the first attempt, succeeds on the retry."""

    def run_one(self, spec, ctx):
        _FLAKY_STATE["calls"] += 1
        if _FLAKY_STATE["calls"] == 1:
            raise RuntimeError("transient")
        return super().run_one(spec, ctx)


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(4) == 4
    assert resolve_jobs(0) >= 1
    assert resolve_jobs(None) >= 1


def test_resolve_jobs_honors_scheduling_affinity(monkeypatch):
    """A cgroup-limited container may expose 2 of 64 cores; the default
    worker count must follow the affinity mask, not the raw count."""
    import os

    if not hasattr(os, "sched_getaffinity"):
        pytest.skip("platform has no scheduling affinity")
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 3})
    assert resolve_jobs(0) == 2
    assert resolve_jobs(None) == 2
    # Explicit --jobs always wins over the mask.
    assert resolve_jobs(5) == 5


def test_resolve_jobs_survives_affinity_errors(monkeypatch):
    import os

    if not hasattr(os, "sched_getaffinity"):
        pytest.skip("platform has no scheduling affinity")

    def broken(pid):
        raise OSError("no affinity for you")

    monkeypatch.setattr(os, "sched_getaffinity", broken)
    assert resolve_jobs(0) >= 1


def test_unenforceable_timeout_is_counted_and_warned_once():
    """Off the main thread SIGALRM cannot be delivered: the timeout
    degrades to unenforced — but visibly (counter + one warning), never
    silently."""
    import threading
    import warnings as warnings_mod

    import repro.runner.executor as executor

    experiment = ToyExperiment(n=1)
    [spec] = experiment.job_specs()
    old_flag = executor._UNENFORCED_WARNED
    executor._UNENFORCED_WARNED = False
    box = {}

    def run():
        with warnings_mod.catch_warnings(record=True) as caught:
            warnings_mod.simplefilter("always")
            box["first"] = execute_job(experiment, spec, timeout_s=1.0)
            box["second"] = execute_job(experiment, spec, timeout_s=1.0)
            box["warnings"] = [w for w in caught
                               if issubclass(w.category, RuntimeWarning)
                               and "cannot be enforced" in str(w.message)]

    try:
        thread = threading.Thread(target=run)
        thread.start()
        thread.join()
    finally:
        executor._UNENFORCED_WARNED = old_flag
    assert box["first"].ok and box["second"].ok
    counters = box["first"].manifest["metrics"]["counters"]
    assert counters.get("runner.timeout_unenforced") == 1
    # Warned exactly once per process, not per job.
    assert len(box["warnings"]) == 1


def test_retried_success_keeps_failure_history():
    """Satellite regression: a retried job's manifest used to report a
    clean single-attempt success, erasing the earlier failure."""
    _FLAKY_STATE["calls"] = 0
    campaign = run_campaign(FlakyExperiment(n=1), jobs=1, retries=1)
    assert not campaign.failures
    [result] = campaign.results
    assert result.attempts == 2
    assert len(result.attempt_history) == 1
    assert result.attempt_history[0]["error_kind"] == "exception"
    assert "transient" in result.attempt_history[0]["error"]
    retried = campaign.manifest["outcome"]["retried"]
    assert retried == [{"job": "toy[0]", "attempts": 2,
                        "history": result.attempt_history}]
    validate_manifest(campaign.manifest)
    # Retry lineage is an execution detail: the fingerprint still
    # matches a campaign that never failed.
    _FLAKY_STATE["calls"] = 99
    clean = run_campaign(FlakyExperiment(n=1), jobs=1)
    assert (manifest_fingerprint(campaign.manifest)
            == manifest_fingerprint(clean.manifest))


def test_serial_campaign_reduces_in_spec_order():
    campaign = run_campaign(ToyExperiment(), jobs=1)
    assert campaign.value == [i * 10 + derive_seed(42, (i,)) % 7
                              for i in range(6)]
    assert not campaign.failures
    assert campaign.manifest["outcome"]["status"] == "success"
    validate_manifest(campaign.manifest)


@pytest.mark.parametrize("jobs", [2, 4])
def test_results_and_manifest_identical_at_any_jobs(jobs):
    serial = run_campaign(ToyExperiment(), jobs=1)
    pooled = run_campaign(ToyExperiment(), jobs=jobs)
    assert pooled.value == serial.value
    assert (manifest_fingerprint(pooled.manifest)
            == manifest_fingerprint(serial.manifest))


def test_real_experiment_identical_at_any_jobs():
    """End to end on booted machines: a covert campaign's value AND
    merged manifest (metrics, PMC, phases, totals) match between the
    in-process path and the process pool."""
    from repro.core import CovertExperiment

    experiment = CovertExperiment(
        machine=MachineSpec(uarch="zen3", kaslr_seed=4, rng_seed=4,
                            sibling_load=True),
        channel="fetch", n_bits=64, seed=3, chunk_bits=16)
    serial = run_campaign(experiment, jobs=1)
    pooled = run_campaign(experiment, jobs=2)
    assert serial.value == pooled.value
    assert serial.value.bits == 64
    assert (manifest_fingerprint(pooled.manifest)
            == manifest_fingerprint(serial.manifest))
    validate_manifest(pooled.manifest)


def test_failed_job_is_captured_not_raised():
    campaign = run_campaign(ToyExperiment(fail_keys=((2,),)), jobs=1)
    assert len(campaign.failures) == 1
    failure = campaign.failures[0]
    assert failure.error_kind == "exception"
    assert "boom" in failure.error
    assert campaign.manifest["outcome"]["status"] == "partial"
    assert campaign.manifest["outcome"]["jobs_failed"] == 1
    assert campaign.manifest["outcome"]["failures"][0]["job"] == "toy[2]"
    validate_manifest(campaign.manifest)
    # The other five jobs still reduced.
    assert len(campaign.value) == 5
    with pytest.raises(CampaignError, match="boom"):
        campaign.raise_on_failure()


def test_all_jobs_failing_degrades_to_failure_status():
    keys = tuple((i,) for i in range(6))
    campaign = run_campaign(ToyExperiment(fail_keys=keys), jobs=1)
    assert campaign.manifest["outcome"]["status"] == "failure"
    assert campaign.value == []


def test_job_timeout_is_captured():
    experiment = ToyExperiment(n=2, sleep_s=0.5)
    [spec, _] = experiment.job_specs()
    result = execute_job(experiment, spec, timeout_s=0.05)
    assert not result.ok
    assert result.error_kind == "timeout"
    assert "0.05" in result.error
    assert result.manifest["outcome"]["status"] == "failure"


def test_retry_recovers_transient_failure():
    _FLAKY_STATE["calls"] = 0
    experiment = FlakyExperiment(n=1)
    [spec] = experiment.job_specs()
    result = execute_job(experiment, spec, retries=1)
    assert result.ok
    assert result.attempts == 2


def test_no_retry_reports_first_failure():
    _FLAKY_STATE["calls"] = 0
    experiment = FlakyExperiment(n=1)
    [spec] = experiment.job_specs()
    result = execute_job(experiment, spec, retries=0)
    assert not result.ok
    assert "transient" in result.error
