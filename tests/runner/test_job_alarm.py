"""_JobAlarm: SIGALRM state is fully restored, nested or not.

Regression tests for an alarm leak: the old ``__exit__`` set
``ITIMER_REAL`` to zero unconditionally, so an inner alarm cancelled
any outer pending deadline on the way out.
"""

import signal
import time

import pytest

from repro.runner.executor import JobTimeout, _JobAlarm


@pytest.fixture()
def clean_alarm():
    """Guarantee a known SIGALRM state around each test."""
    previous = signal.signal(signal.SIGALRM, signal.SIG_DFL)
    signal.setitimer(signal.ITIMER_REAL, 0)
    yield
    signal.setitimer(signal.ITIMER_REAL, 0)
    signal.signal(signal.SIGALRM, previous)


def test_zero_and_none_timeouts_touch_nothing(clean_alarm):
    sentinel = lambda signum, frame: None            # noqa: E731
    signal.signal(signal.SIGALRM, sentinel)
    signal.setitimer(signal.ITIMER_REAL, 30.0)
    for timeout in (0, None, -1):
        alarm = _JobAlarm(timeout)
        assert not alarm.armed
        with alarm:
            assert signal.getsignal(signal.SIGALRM) is sentinel
    delay, _ = signal.getitimer(signal.ITIMER_REAL)
    assert delay > 29.0
    assert signal.getsignal(signal.SIGALRM) is sentinel


def test_handler_and_timer_restored_after_exit(clean_alarm):
    sentinel = lambda signum, frame: None            # noqa: E731
    signal.signal(signal.SIGALRM, sentinel)
    with _JobAlarm(30.0):
        assert signal.getsignal(signal.SIGALRM) is not sentinel
        delay, _ = signal.getitimer(signal.ITIMER_REAL)
        assert 0 < delay <= 30.0
    assert signal.getsignal(signal.SIGALRM) is sentinel
    delay, _ = signal.getitimer(signal.ITIMER_REAL)
    assert delay == 0


def test_timeout_raises_job_timeout(clean_alarm):
    with pytest.raises(JobTimeout, match="exceeded"):
        with _JobAlarm(0.05):
            time.sleep(5)


def test_nested_alarm_preserves_outer_deadline(clean_alarm):
    with _JobAlarm(30.0):
        with _JobAlarm(10.0):
            delay, _ = signal.getitimer(signal.ITIMER_REAL)
            assert 9.0 < delay <= 10.0
        # The outer deadline survives, minus the time spent inside.
        delay, _ = signal.getitimer(signal.ITIMER_REAL)
        assert 29.0 < delay <= 30.0
    delay, _ = signal.getitimer(signal.ITIMER_REAL)
    assert delay == 0


def test_outer_deadline_expiring_under_inner_still_fires(clean_alarm):
    """If the outer deadline lapses while an inner alarm holds the
    timer, the outer alarm fires promptly after the inner exits
    instead of being lost."""
    with pytest.raises(JobTimeout):
        with _JobAlarm(0.05):
            with _JobAlarm(30.0):
                time.sleep(0.1)      # outer deadline passes in here
            time.sleep(5)            # re-armed outer alarm cuts this short


def test_external_itimer_survives_a_job_alarm(clean_alarm):
    """An alarm armed by host code (not _JobAlarm) is re-armed with
    the remaining delay on exit."""
    fired = []
    signal.signal(signal.SIGALRM, lambda s, f: fired.append(s))
    signal.setitimer(signal.ITIMER_REAL, 30.0)
    with _JobAlarm(5.0):
        pass
    delay, _ = signal.getitimer(signal.ITIMER_REAL)
    assert 29.0 < delay <= 30.0
    assert not fired
