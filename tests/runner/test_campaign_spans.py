"""Distributed tracing across the campaign executor.

The guarantees under test: span capture changes nothing about results
or manifests, and the stitched trace has the same *structure* at any
``--jobs`` (timing, pids and worker identity are execution details).
"""

from dataclasses import replace

import pytest

from repro.resilience import spec_fingerprint
from repro.runner import manifest_fingerprint, run_campaign
from repro.telemetry import SPANS, TraceContext, validate_span
from repro.telemetry.spans import (read_spans, stitch, trace_structure)

from .test_executor import _FLAKY_STATE, FlakyExperiment, ToyExperiment


@pytest.fixture(autouse=True)
def reset_spans():
    yield
    SPANS.finish()


def _traced_campaign(tmp_path, jobs, experiment=None, **kwargs):
    span_dir = tmp_path / f"jobs{jobs}"
    SPANS.start(span_dir, name="campaign-test")
    campaign = run_campaign(experiment or ToyExperiment(), jobs=jobs,
                            **kwargs)
    SPANS.finish()
    return campaign, read_spans(span_dir)


def test_untraced_campaign_stamps_no_context():
    campaign = run_campaign(ToyExperiment(n=2), jobs=1)
    assert all(r.spec.trace is None for r in campaign.results)


def test_traced_campaign_is_well_formed(tmp_path):
    campaign, records = _traced_campaign(tmp_path, jobs=1)
    for record in records:
        validate_span(record)
    trace = stitch(records)
    assert trace.problems() == []
    names = [r["name"] for r in trace.spans]
    assert names[0] == "run:campaign-test"
    assert "campaign:toy" in names
    assert "reduce" in names
    assert sum(name.startswith("toy[") for name in names) == 6
    # Job spans parent on the campaign span, not on each other.
    by_name = {r["name"]: r for r in trace.spans}
    campaign_id = by_name["campaign:toy"]["span_id"]
    assert by_name["toy[3]"]["parent_id"] == campaign_id
    assert campaign.manifest["outcome"]["status"] == "success"


@pytest.mark.parametrize("jobs", [2, 4])
def test_trace_structure_identical_at_any_jobs(tmp_path, jobs):
    _, serial_records = _traced_campaign(tmp_path, jobs=1)
    _, pooled_records = _traced_campaign(tmp_path, jobs=jobs)
    serial, pooled = stitch(serial_records), stitch(pooled_records)
    assert pooled.problems() == []
    assert trace_structure(pooled) == trace_structure(serial)
    # Workers wrote their own files; stitching still found one root.
    assert len(pooled.roots) == 1


def test_span_ids_are_deterministic_across_runs(tmp_path):
    """Same trace id + same campaign -> byte-equal ids and parents, so
    traces from reruns can be diffed record-for-record."""
    ids = []
    for attempt in range(2):
        span_dir = tmp_path / f"run{attempt}"
        SPANS.start(span_dir, name="campaign-test", trace_id="ab" * 16)
        run_campaign(ToyExperiment(n=3), jobs=1)
        SPANS.finish()
        trace = stitch(read_spans(span_dir))
        ids.append([(r["name"], r["span_id"], r["parent_id"])
                    for r in trace.spans])
    assert ids[0] == ids[1]


def test_manifest_identical_with_tracing_on_and_off(tmp_path):
    plain = run_campaign(ToyExperiment(), jobs=1)
    traced, _ = _traced_campaign(tmp_path, jobs=1)
    assert traced.value == plain.value
    assert (manifest_fingerprint(traced.manifest)
            == manifest_fingerprint(plain.manifest))
    # The stamped context never leaks into job manifests either.
    for result in traced.results:
        assert "trace" not in result.manifest["config"]


def test_trace_context_excluded_from_checkpoint_fingerprint():
    [spec] = ToyExperiment(n=1).job_specs()
    ctx = TraceContext(trace_id="ab" * 16, parent_span_id="cd" * 8,
                       span_dir="/tmp/anywhere")
    assert spec_fingerprint(replace(spec, trace=ctx)) \
        == spec_fingerprint(spec)


def test_retried_job_records_one_span_per_attempt(tmp_path):
    _FLAKY_STATE["calls"] = 0
    campaign, records = _traced_campaign(
        tmp_path, jobs=1, experiment=FlakyExperiment(n=1), retries=1)
    assert not campaign.failures
    attempts = sorted((r["attrs"]["attempt"], r["status"])
                      for r in records if r["name"] == "toy[0]")
    assert attempts == [(0, "error"), (1, "ok")]
    # The attempt number is the sibling seq, so the two spans have
    # distinct, deterministic ids.
    ids = {r["span_id"] for r in records if r["name"] == "toy[0]"}
    assert len(ids) == 2
