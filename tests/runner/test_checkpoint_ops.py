"""The typed checkpoint-primitive object and the mapping-resume seam.

Regression coverage for the old positional 3-tuple plumbing between
``run_campaign`` and its checkpoint module: the bundle is now a frozen
:class:`CheckpointOps`, and ``resume=`` additionally accepts an
in-memory ``{fingerprint: CheckpointRecord}`` mapping (the seam the
campaign service's result store answers through).
"""

from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.resilience import (CheckpointRecord, CheckpointWriter,
                              load_checkpoint, spec_fingerprint)
from repro.runner import (CheckpointOps, JobSpec, derive_seed,
                          manifest_fingerprint, run_campaign)
from repro.runner.executor import execute_job


@dataclass(frozen=True)
class ToyExperiment:
    name: ClassVar[str] = "toy"
    n: int = 5

    def campaign_config(self):
        return {"n": self.n}

    def job_specs(self):
        return [JobSpec.make(self.name, (i,), derive_seed(3, (i,)),
                             index=i)
                for i in range(self.n)]

    def run_one(self, spec, ctx):
        return spec.param("index") + 100

    def reduce(self, results):
        return sum(r.value for r in results if r.ok)


def test_default_ops_bundle_the_checkpoint_module():
    ops = CheckpointOps.default()
    assert ops.writer_cls is CheckpointWriter
    assert ops.load is load_checkpoint
    assert ops.fingerprint is spec_fingerprint


def test_ops_are_frozen():
    ops = CheckpointOps.default()
    with pytest.raises(AttributeError):
        ops.writer_cls = dict


def _records(experiment, indices):
    records = {}
    for index in indices:
        spec = experiment.job_specs()[index]
        result = execute_job(experiment, spec)
        records[spec_fingerprint(spec)] = \
            CheckpointRecord.from_result(spec, result)
    return records


def test_resume_accepts_in_memory_mapping():
    experiment = ToyExperiment()
    clean = run_campaign(experiment, jobs=1)

    resumed = run_campaign(experiment, jobs=1,
                           resume=_records(experiment, (0, 2, 4)))
    assert resumed.value == clean.value
    info = resumed.manifest["outcome"]["resume"]
    assert info["from"] == "<records>"
    assert info["jobs_skipped"] == 3
    assert info["jobs_rerun"] == 2
    assert manifest_fingerprint(resumed.manifest) \
        == manifest_fingerprint(clean.manifest)


def test_mapping_resume_with_checkpoint_path(tmp_path):
    """The regression: a mapping resume plus a checkpoint path used to
    hit ``Path(resume)`` on a dict.  The journal must re-record the
    inherited jobs so it is self-contained."""
    experiment = ToyExperiment()
    journal = tmp_path / "checkpoint.jsonl"
    campaign = run_campaign(experiment, jobs=1,
                            resume=_records(experiment, (0, 1)),
                            checkpoint=journal)
    assert campaign.value == run_campaign(experiment, jobs=1).value
    replayed = load_checkpoint(journal)
    assert len(replayed) == experiment.n      # inherited + fresh

    # and that self-contained journal resumes everything
    final = run_campaign(experiment, jobs=1, resume=journal)
    assert final.manifest["outcome"]["resume"]["jobs_skipped"] \
        == experiment.n


def test_empty_mapping_means_no_resume():
    experiment = ToyExperiment()
    campaign = run_campaign(experiment, jobs=1, resume={})
    # an empty mapping still counts as "resuming from records"
    assert campaign.manifest["outcome"]["resume"]["jobs_skipped"] == 0
    assert campaign.value == sum(range(100, 105))
