"""JobSpec / derive_seed: the deterministic decomposition contract."""

import pickle

from repro.kernel import MachineSpec, MitigationConfig
from repro.runner import JobSpec, derive_seed


def test_derive_seed_is_stable():
    """Seeds come from SHA-256, not the salted builtin hash — the same
    (campaign_seed, key) gives the same seed in every process."""
    assert derive_seed(0, ("a", 1)) == derive_seed(0, ("a", 1))
    # Pinned value: changing the derivation breaks cross-version
    # reproducibility, which is an API break.
    assert derive_seed(7, ("covert", 3)) == derive_seed(7, ("covert", 3))


def test_derive_seed_spreads_over_keys_and_campaigns():
    seeds = {derive_seed(0, (i,)) for i in range(64)}
    assert len(seeds) == 64
    assert derive_seed(0, (1,)) != derive_seed(1, (1,))


def test_derive_seed_fits_in_63_bits():
    for i in range(32):
        assert 0 <= derive_seed(i, ("k", i)) < 1 << 63


def test_job_spec_make_sorts_params():
    a = JobSpec.make("x", (0,), 1, b=2, a=1)
    b = JobSpec.make("x", (0,), 1, a=1, b=2)
    assert a == b
    assert a.param("a") == 1
    assert a.param("missing", 9) == 9


def test_job_spec_label():
    spec = JobSpec.make("covert", ("fetch", 3), 1)
    assert spec.label == "covert[fetch/3]"


def test_job_spec_pickles_with_machine_spec():
    machine = MachineSpec(uarch="zen2", kaslr_seed=5,
                          mitigations=MitigationConfig(
                              suppress_bp_on_non_br=True))
    spec = JobSpec.make("kaslr-image", (0,), derive_seed(5, (0,)),
                        machine=machine, start=0, stop=61)
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert clone.machine.mitigations.suppress_bp_on_non_br


def test_machine_spec_boots_identical_machines():
    spec = MachineSpec(uarch="zen3", kaslr_seed=9, rng_seed=9)
    a, b = spec.boot(), spec.boot()
    assert a.kaslr.image_base == b.kaslr.image_base
    assert a.uarch.name == "Zen 3"


def test_machine_spec_describe_needs_no_boot():
    config = MachineSpec(uarch="zen2", kaslr_seed=3).describe()
    assert config["uarch"] == "Zen 2"
    assert config["kaslr_seed"] == 3
    assert config["phys_mem_bytes"] == 2 << 30
    assert isinstance(config["mitigations"], dict)
