"""CampaignOptions: the one record behind six subcommands' flags and
the service submit path."""

import argparse

import pytest

from repro.runner import CampaignOptions


def _parse(argv, **add_kwargs):
    parser = argparse.ArgumentParser()
    CampaignOptions.add_arguments(parser, **add_kwargs)
    return parser.parse_args(argv)


def test_add_arguments_defaults():
    args = _parse([])
    options = CampaignOptions.from_args(args)
    assert options == CampaignOptions()


def test_add_arguments_jobs_default_override():
    assert _parse([], jobs_default=1).jobs == 1
    assert _parse(["--jobs", "4"], jobs_default=1).jobs == 4


def test_from_args_collects_only_present_fields():
    args = argparse.Namespace(jobs=3, progress="-")   # no resume etc.
    options = CampaignOptions.from_args(args)
    assert options.jobs == 3 and options.progress == "-"
    assert options.resume is None


def test_dict_roundtrip_drops_defaults():
    options = CampaignOptions(jobs=2, checkpoint_every=5)
    doc = options.to_dict()
    assert doc == {"jobs": 2, "checkpoint_every": 5}
    assert CampaignOptions.from_dict(doc) == options
    assert CampaignOptions.from_dict({}) == CampaignOptions()


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError) as info:
        CampaignOptions.from_dict({"workers": 8})
    assert "workers" in str(info.value)


def test_for_service_strips_server_paths():
    options = CampaignOptions(jobs=4, resume="j.jsonl", spans="s",
                              progress="p", results_dir="r",
                              checkpoint_every=3)
    safe = options.for_service()
    assert safe.jobs == 4 and safe.checkpoint_every == 3
    assert safe.resume is None and safe.spans is None
    assert safe.progress is None and safe.results_dir is None


def test_checkpoint_path_precedence(tmp_path):
    results = CampaignOptions(results_dir=str(tmp_path))
    assert results.checkpoint_path("matrix") \
        == tmp_path / "matrix-checkpoint.jsonl"
    resume_only = CampaignOptions(resume="old.jsonl")
    assert str(resume_only.checkpoint_path("matrix")) == "old.jsonl"
    assert CampaignOptions().checkpoint_path("matrix") is None


def test_campaign_kwargs_shapes(tmp_path):
    assert CampaignOptions().campaign_kwargs("matrix") == {}
    kwargs = CampaignOptions(results_dir=str(tmp_path),
                             checkpoint_every=4).campaign_kwargs("kaslr")
    assert kwargs["checkpoint"] == tmp_path / "kaslr-checkpoint.jsonl"
    assert kwargs["checkpoint_every"] == 4
    assert "resume" not in kwargs
    sentinel = object()
    kwargs = CampaignOptions(resume="j.jsonl").campaign_kwargs(
        "leak", progress=sentinel)
    assert kwargs["resume"] == "j.jsonl"
    assert kwargs["progress"] is sentinel


def test_frozen():
    with pytest.raises(AttributeError):
        CampaignOptions().jobs = 5
