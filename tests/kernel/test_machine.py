"""Machine boot, syscalls, paper-offset gadgets, mitigations, physmap."""

import pytest

from repro.errors import PageFault
from repro.isa import Assembler, Reg, decode, Mnemonic
from repro.kernel import (DISCLOSURE_GADGET_OFFSET, FDGET_POS_OFFSET,
                          IBPB_HARDENED, Machine, MitigationConfig,
                          SYS_GETPID, SYS_MDS, SYS_READV, SYS_REV,
                          TASK_PID_NR_NS_OFFSET)
from repro.params import PAGE_SIZE
from repro.pipeline import ZEN2, ZEN3


@pytest.fixture(scope="module")
def machine():
    return Machine(ZEN2, kaslr_seed=11)


class TestBoot:
    def test_kernel_not_user_accessible(self, machine):
        with pytest.raises(PageFault):
            machine.mem.aspace.translate(machine.kaslr.image_base,
                                         user_mode=True)

    def test_listing1_at_paper_offset(self, machine):
        """image + 0xf6520 must decode to Listing 1's byte sequence."""
        base = machine.kaslr.image_base + TASK_PID_NR_NS_OFFSET
        raw, _ = machine.mem.fetch_code(base, 16)
        first = decode(raw)
        assert first.mnemonic is Mnemonic.NOPL and first.length == 8
        second = decode(raw, 8)
        assert second.mnemonic is Mnemonic.PUSH
        assert second.dest is Reg.RBP

    def test_listing3_at_paper_offset(self, machine):
        base = machine.kaslr.image_base + DISCLOSURE_GADGET_OFFSET
        raw, _ = machine.mem.fetch_code(base, 16)
        instr = decode(raw)
        assert instr.mnemonic is Mnemonic.MOV_RM
        assert instr.dest is Reg.R12 and instr.base is Reg.R12
        assert instr.disp == 0xBE0

    def test_listing2_call_site(self, machine):
        call_site = machine.kernel.sym("fdget_call_site")
        assert call_site > machine.kaslr.image_base + FDGET_POS_OFFSET
        raw, _ = machine.mem.fetch_code(call_site, 8)
        assert decode(raw).mnemonic is Mnemonic.CALL

    def test_physmap_maps_physical_memory(self, machine):
        """Writing through a user page must be readable through physmap."""
        user_va = 0x0000_0000_0100_0000
        machine.map_user(user_va, PAGE_SIZE)
        machine.mem.write_data(user_va, 8, 0x1122334455667788,
                               user_mode=True)
        pa = machine.mem.aspace.translate_noperm(user_va)
        value, _ = machine.mem.read_data(machine.kaslr.physmap_base + pa, 8)
        assert value == 0x1122334455667788

    def test_physmap_not_executable(self, machine):
        with pytest.raises(PageFault):
            machine.mem.fetch_code(machine.kaslr.physmap_base + 0x1000, 8)

    def test_different_seeds_different_layout(self):
        a = Machine(ZEN3, kaslr_seed=1)
        b = Machine(ZEN3, kaslr_seed=2)
        assert a.kaslr.image_base != b.kaslr.image_base


class TestSyscalls:
    def test_getpid(self, machine):
        assert machine.syscall(SYS_GETPID) == 1234

    def test_unknown_syscall_enosys(self, machine):
        assert machine.syscall(999) == (-38) & ((1 << 64) - 1)

    def test_readv_returns_zero(self, machine):
        assert machine.syscall(SYS_READV, 3, 0x4000) == 0

    def test_syscall_preserves_user_context(self, machine):
        rsp_before = machine.cpu.state.read(Reg.RSP)
        machine.syscall(SYS_GETPID)
        assert machine.cpu.state.read(Reg.RSP) == rsp_before
        assert not machine.cpu.kernel_mode

    def test_rev_module_callable(self, machine):
        machine.syscall(SYS_REV)
        assert not machine.cpu.kernel_mode

    def test_mds_module_in_bounds(self, machine):
        assert machine.syscall(SYS_MDS, 3, 0) == 0

    def test_syscall_counts(self, machine):
        before = machine.cpu.pmc.read("syscalls")
        machine.syscall(SYS_GETPID)
        assert machine.cpu.pmc.read("syscalls") == before + 1


class TestAttackerRuntime:
    def test_run_user_program(self, machine):
        code = 0x0000_0000_0200_0000
        asm = Assembler(code)
        asm.mov_ri(Reg.RAX, 55)
        asm.hlt()
        machine.load_user_image(asm.image())
        machine.run_user(code)
        assert machine.cpu.state.read(Reg.RAX) == 55

    def test_user_fault_propagates(self, machine):
        with pytest.raises(PageFault):
            machine.run_user(0x0000_0000_0300_0000)

    def test_timed_load_hot_cold(self, machine):
        va = 0x0000_0000_0210_0000
        machine.map_user(va, PAGE_SIZE)
        machine.user_touch(va)
        hot = machine.timed_user_load(va)
        machine.clflush(va)
        cold = machine.timed_user_load(va)
        assert cold > hot

    def test_timed_exec_hot_cold(self, machine):
        va = 0x0000_0000_0220_0000
        machine.map_user(va, PAGE_SIZE)
        machine.user_exec_touch(va)
        hot = machine.timed_user_exec(va)
        machine.clflush(va)
        cold = machine.timed_user_exec(va)
        assert cold > hot

    def test_huge_page_physically_contiguous(self, machine):
        va = 0x0000_0000_4000_0000
        machine.map_user_huge(va)
        pa0 = machine.mem.aspace.translate_noperm(va)
        pa1 = machine.mem.aspace.translate_noperm(va + 5 * PAGE_SIZE)
        assert pa1 - pa0 == 5 * PAGE_SIZE
        assert pa0 % (2 << 20) == 0

    def test_seconds_advances(self, machine):
        t0 = machine.seconds()
        machine.syscall(SYS_GETPID)
        assert machine.seconds() > t0

    def test_write_user_invalidate(self, machine):
        code = 0x0000_0000_0230_0000
        asm = Assembler(code)
        asm.mov_ri(Reg.RAX, 1)
        asm.hlt()
        machine.load_user_image(asm.image())
        machine.run_user(code)
        asm2 = Assembler(code)
        asm2.mov_ri(Reg.RAX, 2)
        asm2.hlt()
        machine.write_user(code, asm2.finish()[0].data)
        machine.run_user(code)
        assert machine.cpu.state.read(Reg.RAX) == 2


class TestMitigationsWiring:
    def test_msr_bits_applied(self):
        m = Machine(ZEN2, mitigations=MitigationConfig(
            suppress_bp_on_non_br=True))
        assert m.cpu.msr.suppress_bp_on_non_br

    def test_ibpb_on_entry_flushes_btb(self):
        m = Machine(ZEN2, mitigations=IBPB_HARDENED)
        from repro.isa import BranchKind
        m.cpu.bpu.btb.train(0x1000, BranchKind.DIRECT, 0x2000,
                            kernel_mode=False)
        m.syscall(SYS_GETPID)
        # The user-planted entry is gone (the kernel's own branches
        # legitimately retrain entries after the barrier).
        assert m.cpu.bpu.btb.lookup(0x1000, kernel_mode=False) is None
