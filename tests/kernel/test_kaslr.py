"""KASLR: slot counts, determinism, candidate lists."""

from repro.kernel import (KERNEL_IMAGE_REGION, KERNEL_IMAGE_STRIDE, Kaslr,
                          PHYSMAP_REGION, PHYSMAP_STRIDE)
from repro.params import KERNEL_IMAGE_SLOTS, PHYSMAP_SLOTS


def test_candidate_counts_match_paper():
    assert len(Kaslr.image_candidates()) == 488
    assert len(Kaslr.physmap_candidates()) == 25600


def test_randomize_deterministic_per_seed():
    assert Kaslr.randomize(7) == Kaslr.randomize(7)
    assert Kaslr.randomize(7) != Kaslr.randomize(8)


def test_bases_are_candidates():
    k = Kaslr.randomize(3)
    assert k.image_base in Kaslr.image_candidates()
    assert k.physmap_base in Kaslr.physmap_candidates()


def test_image_base_alignment():
    for seed in range(20):
        base = Kaslr.randomize(seed).image_base
        assert base % KERNEL_IMAGE_STRIDE == 0
        assert KERNEL_IMAGE_REGION <= base \
            < KERNEL_IMAGE_REGION + KERNEL_IMAGE_SLOTS * KERNEL_IMAGE_STRIDE


def test_physmap_base_alignment():
    for seed in range(20):
        base = Kaslr.randomize(seed).physmap_base
        assert base % PHYSMAP_STRIDE == 0
        assert PHYSMAP_REGION <= base \
            < PHYSMAP_REGION + PHYSMAP_SLOTS * PHYSMAP_STRIDE


def test_slots_cover_space():
    slots = {Kaslr.randomize(seed).image_slot for seed in range(300)}
    assert len(slots) > 100  # randomization actually spreads
