"""Kernel layout: dispatcher, paper offsets, reference offsets, modules."""

import pytest

from repro.kernel import Machine, SYS_GETPID
from repro.kernel.layout import (DISCLOSURE_GADGET_OFFSET, FDGET_POS_OFFSET,
                                 TASK_PID_NR_NS_OFFSET, reference_offsets)
from repro.kernel.modules import COVERT_BRANCHES, build_modules
from repro.pipeline import ZEN2


class TestReferenceOffsets:
    def test_paper_offsets_present(self):
        offsets = reference_offsets()
        assert offsets["__task_pid_nr_ns"] == TASK_PID_NR_NS_OFFSET
        assert offsets["physmap_gadget"] == DISCLOSURE_GADGET_OFFSET
        assert offsets["__fdget_pos"] == FDGET_POS_OFFSET

    def test_call_site_inside_fdget_pos(self):
        offsets = reference_offsets()
        assert FDGET_POS_OFFSET < offsets["fdget_call_site"] \
            < FDGET_POS_OFFSET + 0x40

    def test_offsets_independent_of_kaslr(self):
        """Symbol offsets are a property of the binary, not the boot."""
        offsets = reference_offsets()
        for seed in (1, 2):
            machine = Machine(ZEN2, kaslr_seed=seed)
            for name, offset in offsets.items():
                assert machine.kernel.sym(name) \
                    == machine.kaslr.image_base + offset

    def test_offsets_deterministic(self):
        assert reference_offsets() == reference_offsets()


class TestModules:
    @pytest.fixture(scope="class")
    def modules(self):
        return build_modules(0xFFFF_FFFF_C000_0000, 0xFFFF_FFFF_D000_0000)

    def test_covert_branch_symbols(self, modules):
        for i in range(COVERT_BRANCHES):
            assert f"covert_branch_{i}" in modules.symbols

    def test_expected_entry_points(self, modules):
        for name in ("covert_fn", "mds_read_data", "p3_gadget",
                     "covert_load_gadget", "rev_fn", "noise_fn",
                     "btc_fn", "btc_safe_fn", "parse_data"):
            assert name in modules.symbols, name

    def test_mds_call_site_is_a_call(self, modules):
        from repro.isa import Mnemonic, decode

        call_site = modules.sym("mds_call_site")
        raw = modules.image.read(call_site, 5)
        assert decode(raw).mnemonic is Mnemonic.CALL

    def test_p3_gadget_fits_phantom_window(self, modules):
        """shl+add+load must fit Zen 1/2's 4-uop execute window."""
        from repro.analysis import Disassembler
        from repro.isa import uop_count

        disasm = Disassembler(modules.image)
        pc = modules.sym("p3_gadget")
        total = 0
        for _ in range(3):   # shl, add, loadb
            decoded = disasm.instruction_at(pc)
            total += uop_count(decoded.instr)
            pc = decoded.end
        assert total <= ZEN2.phantom_exec_uops


class TestDispatcher:
    def test_dispatcher_has_no_indirect_branches(self):
        """§3's threat model: retpoline-era kernels dispatch without
        exploitable jmp* — ours is compare+direct-branch chains."""
        from repro.analysis import Disassembler
        from repro.isa import BranchKind

        machine = Machine(ZEN2)
        disasm = Disassembler(machine.kernel.image)
        instrs = disasm.linear_sweep(machine.kernel.sym("syscall_entry"),
                                     max_bytes=512)
        kinds = {i.kind for i in instrs}
        assert BranchKind.INDIRECT not in kinds
        assert BranchKind.CALL_INDIRECT not in kinds

    def test_every_syscall_number_dispatches(self):
        from repro.kernel import (SYS_BTC, SYS_BTC_SAFE, SYS_COVERT,
                                  SYS_MDS, SYS_NOISE, SYS_READV, SYS_REV)

        machine = Machine(ZEN2)
        for nr in (SYS_GETPID, SYS_READV, SYS_COVERT, SYS_MDS, SYS_REV,
                   SYS_NOISE, SYS_BTC, SYS_BTC_SAFE):
            machine.syscall(nr, 1, 0)
            assert not machine.cpu.kernel_mode
