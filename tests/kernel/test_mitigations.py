"""The mitigation registry: every entry toggles exactly the behaviour
it documents, at the config level and on the simulated hardware."""

import pytest

from repro.kernel import (DEFAULT_MITIGATIONS, MITIGATIONS, Machine,
                          MachineSpec, MitigationConfig,
                          mitigation_by_name, mitigation_names)


# -- registry shape --------------------------------------------------------


def test_registry_names_are_unique_and_ordered():
    names = mitigation_names()
    assert len(names) == len(set(names))
    assert names[0] == "none"


def test_by_name_is_separator_and_case_insensitive():
    assert mitigation_by_name("suppress-bp").name == "suppress-bp"
    assert mitigation_by_name("SUPPRESS_BP").name == "suppress-bp"
    assert mitigation_by_name(" rsb stuffing ").name == "rsb-stuffing"


def test_unknown_name_lists_the_registry():
    with pytest.raises(ValueError) as excinfo:
        mitigation_by_name("retpoline-ng")
    for name in mitigation_names():
        assert name in str(excinfo.value)


def test_none_entry_is_the_default_config():
    assert mitigation_by_name("none").config == MitigationConfig()
    assert mitigation_by_name("none").toggles == ()


@pytest.mark.parametrize("mitigation", MITIGATIONS,
                         ids=[m.name for m in MITIGATIONS])
def test_each_entry_toggles_exactly_what_it_documents(mitigation):
    """The documented ``toggles`` tuple and the config's actual
    deviation from baseline must agree, field for field."""
    assert mitigation.config.toggled() == mitigation.toggles
    baseline = MitigationConfig()
    for name in mitigation.toggles:
        assert getattr(mitigation.config, name) \
            != getattr(baseline, name)


def test_to_dict_round_trips_the_claim():
    doc = mitigation_by_name("suppress-bp").to_dict()
    assert doc["name"] == "suppress-bp"
    assert doc["toggles"] == ["suppress_bp_on_non_br"]
    assert "mechanism" in doc and "description" in doc


def test_default_mitigations_unchanged():
    # The registry must not silently redefine the machine default.
    assert DEFAULT_MITIGATIONS == MitigationConfig()


# -- behaviour on the simulated hardware ----------------------------------


def _boot(mitigation_name: str) -> Machine:
    config = mitigation_by_name(mitigation_name).config
    return MachineSpec(uarch="zen2", kaslr_seed=0, rng_seed=0,
                       mitigations=config,
                       syscall_noise_evictions=0).boot()


def test_msr_mitigations_reach_the_cpu_at_boot():
    machine = _boot("hardened")
    assert machine.cpu.msr.suppress_bp_on_non_br
    assert machine.cpu.msr.auto_ibrs
    baseline = _boot("none")
    assert not baseline.cpu.msr.suppress_bp_on_non_br
    assert not baseline.cpu.msr.auto_ibrs


def test_suppress_bp_gates_execute_but_not_fetch():
    """O4: the MSR stops non-branch phantom *execution*; the fetch and
    decode of the predicted target still happen (Listing 3 on Zen 2,
    the only listing whose window reaches execute)."""
    from repro.fuzz.witness import run_listing

    unmitigated = dict(run_listing(
        "listing3", "zen2", mitigation_by_name("none").config, 7).pmc)
    gated = dict(run_listing(
        "listing3", "zen2", mitigation_by_name("suppress-bp").config,
        7).pmc)
    assert unmitigated["phantom_exec_uops"] > 0
    assert gated["phantom_exec_uops"] == 0
    assert gated["transient_load"] == 0
    # The frontend half of the episode is untouched.
    assert gated["phantom_fetch"] == unmitigated["phantom_fetch"]
    assert gated["phantom_decode"] == unmitigated["phantom_decode"]


def test_auto_ibrs_refuses_cross_privilege_prediction_use():
    """O5: AutoIBRS (Zen 4) refuses the user-trained prediction for a
    real kernel jmp*, so the Spectre-v2 backend window never opens."""
    from repro.core import PhantomInjector
    from repro.kernel import SYS_BTC
    from repro.pipeline import ZEN4
    from repro.sidechannel import Timer, calibrate_threshold

    def attack(config) -> bool:
        machine = Machine(ZEN4, kaslr_seed=31, syscall_noise_evictions=0,
                          mitigations=config)
        probe = 0x0000_0000_2600_0000
        machine.map_user(probe, 4096)
        timer = Timer(machine)
        threshold = calibrate_threshold(timer, probe)
        injector = PhantomInjector(machine)
        branch_src = machine.modules.sym("btc_fn") + 10   # the jmp rax
        gadget = machine.modules.sym("covert_load_gadget")
        probe_kva = machine.kaslr.physmap_base \
            + machine.mem.aspace.translate_noperm(probe)
        machine.clflush(probe)
        injector.inject(branch_src, gadget)
        machine.syscall(SYS_BTC, probe_kva)
        return timer.time_load(probe) < threshold

    assert attack(mitigation_by_name("none").config)
    assert not attack(mitigation_by_name("auto-ibrs").config)


def test_ibpb_on_entry_flushes_the_injected_prediction():
    """With IBPB on every kernel entry the user-planted BTB entry is
    gone before kernel code runs: the secret-steered I-cache/L2
    residue of Listing 1 disappears."""
    from repro.fuzz.witness import run_listing

    def residue_differs(config) -> bool:
        trace_a = run_listing("listing1", "zen2", config, 11)
        trace_b = run_listing("listing1", "zen2", config, 52)
        return bool(trace_a.diff(trace_b, ("icache", "l2")))

    assert residue_differs(mitigation_by_name("none").config)
    assert not residue_differs(mitigation_by_name("ibpb").config)


def test_rsb_stuffing_costs_entry_cycles_in_the_fuzz_harness():
    """The harness trap mirrors Machine._trap: stuffing overwrites the
    RSB and charges 2 cycles per slot on every kernel entry."""
    from repro.fuzz import generate, run_program
    from repro.pipeline import by_name

    program = generate(4, "syscall")
    uarch = by_name("zen2")
    bare, _ = run_program(program, uarch, fastpath=False)
    stuffed, world = run_program(
        program, uarch, fastpath=False,
        mitigations=mitigation_by_name("rsb-stuffing").config)
    syscalls = dict(stuffed.pmc)["syscalls"]
    assert syscalls > 0
    # At minimum the per-entry stuffing cost; mispredicted returns into
    # the stuff pad can only add more.
    assert stuffed.cycles >= bare.cycles + \
        2 * world.cpu.bpu.rsb.depth * syscalls
