"""Chaos harness: deterministic plans, one-shot faults, and the
acceptance property — an interrupted, fault-riddled, resumed campaign
fingerprints equal to a clean run at any --jobs value."""

import errno
from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.resilience import (CAMPAIGN_TARGET, CHECKPOINT_TARGET,
                              FAULT_KINDS, ChaosExperiment, ChaosFault,
                              ChaosInterruptor, ChaosPlan,
                              CheckpointWriter, SupervisionPolicy,
                              plan_chaos)
from repro.runner import (CampaignInterrupted, JobSpec, derive_seed,
                          manifest_fingerprint, run_campaign)


@dataclass(frozen=True)
class ToyExperiment:
    name: ClassVar[str] = "toy"

    n: int = 8

    def campaign_config(self) -> dict:
        return {"n": self.n}

    def job_specs(self):
        return [JobSpec.make(self.name, (i,), derive_seed(42, (i,)),
                             index=i)
                for i in range(self.n)]

    def run_one(self, spec, ctx):
        return spec.param("index") * 10 + spec.seed % 7

    def reduce(self, results):
        return [r.value for r in results if r.ok]


def test_plan_is_deterministic_and_covers_every_kind(tmp_path):
    experiment = ToyExperiment()
    plan = plan_chaos(experiment, seed=3, state_dir=tmp_path)
    again = plan_chaos(experiment, seed=3, state_dir=tmp_path)
    assert plan.faults == again.faults
    assert sorted(kind for _, kind in plan.faults) == sorted(FAULT_KINDS)
    # enospc targets the journal; job-level faults hit distinct jobs.
    targets = [target for target, kind in plan.faults if kind == "enospc"]
    assert targets == [CHECKPOINT_TARGET]
    job_targets = [t for t, k in plan.faults if k != "enospc"]
    assert len(set(job_targets)) == len(job_targets)
    labels = {spec.label for spec in experiment.job_specs()}
    assert set(job_targets) <= labels


def test_plan_rejects_unknown_kind(tmp_path):
    with pytest.raises(ValueError, match="unknown chaos fault kind"):
        plan_chaos(ToyExperiment(), seed=0, state_dir=tmp_path,
                   kinds=("raise", "segfault"))


def test_more_kinds_than_jobs_truncates(tmp_path):
    plan = plan_chaos(ToyExperiment(n=1), seed=0, state_dir=tmp_path)
    job_faults = [f for f in plan.faults if f[1] != "enospc"]
    assert len(job_faults) == 1


def test_claim_fires_exactly_once_and_survives(tmp_path):
    plan = ChaosPlan(seed=0, state_dir=str(tmp_path), faults=())
    assert plan.claim("toy[0]:raise")
    assert not plan.claim("toy[0]:raise")
    # A fresh plan object over the same state dir sees the marker.
    again = ChaosPlan(seed=0, state_dir=str(tmp_path), faults=())
    assert not again.claim("toy[0]:raise")
    assert again.fired_tokens() == ["toy[0]:raise"]


def test_raise_fault_fires_once(tmp_path):
    plan = ChaosPlan(seed=0, state_dir=str(tmp_path),
                     faults=(("toy[0]", "raise"),))
    with pytest.raises(ChaosFault):
        plan.maybe_inject("toy[0]")
    plan.maybe_inject("toy[0]")        # second run: clean
    plan.maybe_inject("toy[1]")        # unplanned label: never faults


def test_kill_and_hang_soften_in_parent_process(tmp_path):
    """In the campaign's own process (serial path, degraded mode) a
    SIGKILL would kill the campaign and a hang would stall it with no
    supervisor above to recover — both soften to a plain raise."""
    for kind in ("sigkill", "hang"):
        plan = ChaosPlan(seed=0, state_dir=str(tmp_path / kind),
                         faults=(("toy[0]", kind),), hang_s=60.0)
        with pytest.raises(ChaosFault):
            plan.maybe_inject("toy[0]")


def test_checkpoint_hook_injects_enospc_once(tmp_path):
    plan = ChaosPlan(seed=0, state_dir=str(tmp_path),
                     faults=((CHECKPOINT_TARGET, "enospc"),))
    hook = plan.checkpoint_hook()
    with pytest.raises(OSError) as excinfo:
        hook(None)
    assert excinfo.value.errno == errno.ENOSPC
    hook(None)                         # fired already: no-op
    no_fault = ChaosPlan(seed=0, state_dir=str(tmp_path), faults=())
    assert no_fault.checkpoint_hook() is None


def test_interruptor_interrupts_once_after_n_jobs(tmp_path):
    plan = ChaosPlan(seed=0, state_dir=str(tmp_path), faults=())
    interrupt = ChaosInterruptor(plan, after_jobs=2)
    interrupt(None)
    with pytest.raises(KeyboardInterrupt):
        interrupt(None)
    interrupt(None)                    # claimed: never fires again


def test_chaos_experiment_is_transparent(tmp_path):
    inner = ToyExperiment()
    plan = ChaosPlan(seed=0, state_dir=str(tmp_path), faults=())
    chaotic = ChaosExperiment(inner, plan)
    assert chaotic.name == "toy"
    assert chaotic.campaign_config() == inner.campaign_config()
    assert [s.label for s in chaotic.job_specs()] \
        == [s.label for s in inner.job_specs()]


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_interrupted_chaotic_resumed_campaign_matches_clean(tmp_path, jobs):
    """The acceptance criterion: inject every fault kind, interrupt the
    campaign partway, resume it — value and manifest fingerprint equal
    a clean uninterrupted run, at --jobs 1, 2 and 4."""
    experiment = ToyExperiment()
    clean = run_campaign(experiment, jobs=1)

    checkpoint = tmp_path / "ckpt.jsonl"
    plan = plan_chaos(experiment, seed=0, state_dir=tmp_path / "state",
                      hang_s=8.0)
    chaotic = ChaosExperiment(experiment, plan)
    policy = SupervisionPolicy(backoff_base_s=0.01, backoff_max_s=0.05,
                               watchdog_grace_s=0.5, jitter_seed=0)
    interrupt = ChaosInterruptor(plan, after_jobs=3)
    with CheckpointWriter(checkpoint,
                          fault_hook=plan.checkpoint_hook()) as writer:
        with pytest.raises(CampaignInterrupted) as excinfo:
            with pytest.warns(RuntimeWarning, match="checkpoint append"):
                run_campaign(chaotic, jobs=jobs, timeout_s=3.0, retries=2,
                             checkpoint=writer, supervision=policy,
                             on_job_done=interrupt)
    assert excinfo.value.checkpoint == str(checkpoint)
    assert 0 < excinfo.value.done < len(experiment.job_specs())

    resumed = run_campaign(chaotic, jobs=jobs, timeout_s=3.0, retries=2,
                           checkpoint=checkpoint, resume=checkpoint,
                           supervision=policy)
    assert not resumed.failures
    assert resumed.value == clean.value
    assert (manifest_fingerprint(resumed.manifest)
            == manifest_fingerprint(clean.manifest))
    fired = set(plan.fired_tokens())
    planned = {f"{target}:{kind}" for target, kind in plan.faults}
    assert planned <= fired
    assert f"{CAMPAIGN_TARGET}:interrupt" in fired
