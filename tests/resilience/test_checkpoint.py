"""Checkpoint journal: fingerprints, round-trips, torn lines, resume."""

import errno
import json
from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.kernel import MachineSpec
from repro.resilience import (CHECKPOINT_SCHEMA, CheckpointRecord,
                              CheckpointWriter, load_checkpoint,
                              spec_fingerprint)
from repro.runner import (JobSpec, derive_seed, execute_job,
                          manifest_fingerprint, run_campaign)


@dataclass(frozen=True)
class ToyExperiment:
    """Pure-compute campaign: value depends only on the spec."""

    name: ClassVar[str] = "toy"

    n: int = 6

    def campaign_config(self) -> dict:
        return {"n": self.n}

    def job_specs(self):
        return [JobSpec.make(self.name, (i,), derive_seed(42, (i,)),
                             index=i)
                for i in range(self.n)]

    def run_one(self, spec, ctx):
        return spec.param("index") * 10 + spec.seed % 7

    def reduce(self, results):
        return [r.value for r in results if r.ok]


@dataclass(frozen=True)
class PoisonExperiment(ToyExperiment):
    """Same specs as ToyExperiment; running any job is an error.

    Resuming a fully-journaled campaign must not call ``run_one`` at
    all — this makes silently re-running jobs a loud failure.
    """

    def run_one(self, spec, ctx):
        raise AssertionError(f"{spec.label} should have been resumed, "
                             "not re-run")


def test_fingerprint_is_stable_and_discriminates():
    [a0, a1, *_] = ToyExperiment().job_specs()
    assert spec_fingerprint(a0) == spec_fingerprint(a0)
    assert spec_fingerprint(a0) != spec_fingerprint(a1)
    # Different experiment name, seed, machine or params → new key.
    base = JobSpec.make("exp", (1,), 7, x=1)
    assert spec_fingerprint(base) != spec_fingerprint(
        JobSpec.make("other", (1,), 7, x=1))
    assert spec_fingerprint(base) != spec_fingerprint(
        JobSpec.make("exp", (1,), 8, x=1))
    assert spec_fingerprint(base) != spec_fingerprint(
        JobSpec.make("exp", (1,), 7, x=2))
    machine = MachineSpec(uarch="zen2", kaslr_seed=1, rng_seed=1)
    assert spec_fingerprint(base) != spec_fingerprint(
        JobSpec.make("exp", (1,), 7, machine=machine, x=1))


def test_record_roundtrips_through_json_and_pickle():
    experiment = ToyExperiment(n=1)
    [spec] = experiment.job_specs()
    result = execute_job(experiment, spec)
    record = CheckpointRecord.from_result(spec, result)
    wire = CheckpointRecord.from_dict(json.loads(
        json.dumps(record.to_dict())))
    back = wire.to_job_result(spec)
    assert back.ok
    assert back.value == result.value
    assert back.attempts == result.attempts
    assert back.manifest == result.manifest


def test_writer_journals_and_loader_keys_by_fingerprint(tmp_path):
    experiment = ToyExperiment(n=3)
    specs = experiment.job_specs()
    path = tmp_path / "ckpt.jsonl"
    with CheckpointWriter(path) as writer:
        for spec in specs:
            writer.append(spec, execute_job(experiment, spec))
        # Re-journaling is harmless: last record wins.
        writer.append(specs[0], execute_job(experiment, specs[0]))
    journal = load_checkpoint(path)
    assert len(journal) == 3
    for spec in specs:
        record = journal[spec_fingerprint(spec)]
        assert record.label == spec.label
        assert record.status == "success"


def test_loader_tolerates_torn_and_foreign_lines(tmp_path):
    experiment = ToyExperiment(n=1)
    [spec] = experiment.job_specs()
    record = CheckpointRecord.from_result(spec, execute_job(experiment, spec))
    path = tmp_path / "ckpt.jsonl"
    path.write_text(
        json.dumps(record.to_dict()) + "\n"
        + '{"schema": "someone.elses/1", "fingerprint": "zz"}\n'
        + '["not", "a", "record"]\n'
        + '{"truncated mid-wri\n',
        encoding="utf-8")
    journal = load_checkpoint(path)
    assert list(journal) == [spec_fingerprint(spec)]
    assert load_checkpoint(tmp_path / "never-written.jsonl") == {}


def test_write_failure_degrades_and_is_counted(tmp_path):
    calls = {"n": 0}

    def flaky_disk(record):
        calls["n"] += 1
        if calls["n"] == 1:
            raise OSError(errno.ENOSPC, "no space left on device")

    experiment = ToyExperiment(n=3)
    specs = experiment.job_specs()
    with CheckpointWriter(tmp_path / "ckpt.jsonl",
                          fault_hook=flaky_disk) as writer:
        with pytest.warns(RuntimeWarning, match="checkpoint append"):
            writer.append(specs[0], execute_job(experiment, specs[0]))
        writer.append(specs[1], execute_job(experiment, specs[1]))
    assert writer.write_errors == 1
    journal = load_checkpoint(writer.path)
    # The failed append is simply absent: that job re-runs on resume.
    assert spec_fingerprint(specs[0]) not in journal
    assert spec_fingerprint(specs[1]) in journal


def test_checkpoint_every_batches_flushes(tmp_path):
    experiment = ToyExperiment(n=4)
    specs = experiment.job_specs()
    path = tmp_path / "ckpt.jsonl"
    writer = CheckpointWriter(path, every=3)
    try:
        writer.append(specs[0], execute_job(experiment, specs[0]))
        writer.append(specs[1], execute_job(experiment, specs[1]))
        assert writer._unflushed == 2
        writer.append(specs[2], execute_job(experiment, specs[2]))
        assert writer._unflushed == 0      # hit the batch size
    finally:
        writer.close()
    assert len(load_checkpoint(path)) == 3


def test_resume_skips_journaled_jobs_and_matches_clean_run(tmp_path):
    checkpoint = tmp_path / "ckpt.jsonl"
    clean = run_campaign(ToyExperiment(), jobs=1)
    first = run_campaign(ToyExperiment(), jobs=1, checkpoint=checkpoint)
    # Every job is journaled: the resumed campaign must not run any
    # (PoisonExperiment raises from run_one) and must reduce and merge
    # to the same result and manifest fingerprint.
    resumed = run_campaign(PoisonExperiment(), jobs=1, resume=checkpoint)
    assert resumed.value == first.value == clean.value
    assert (manifest_fingerprint(resumed.manifest)
            == manifest_fingerprint(clean.manifest))
    assert resumed.manifest["outcome"]["resume"] == {
        "from": str(checkpoint), "jobs_skipped": 6, "jobs_rerun": 0}


def test_resume_into_fresh_journal_is_self_contained(tmp_path):
    old = tmp_path / "old.jsonl"
    new = tmp_path / "new.jsonl"
    run_campaign(ToyExperiment(), jobs=1, checkpoint=old)
    run_campaign(PoisonExperiment(), jobs=1, checkpoint=new, resume=old)
    # The new journal inherited every record: it can resume on its own.
    resumed = run_campaign(PoisonExperiment(), jobs=1, resume=new)
    assert resumed.value == run_campaign(ToyExperiment(), jobs=1).value


def test_partial_journal_reruns_only_missing_jobs(tmp_path):
    checkpoint = tmp_path / "ckpt.jsonl"
    experiment = ToyExperiment()
    specs = experiment.job_specs()
    with CheckpointWriter(checkpoint) as writer:
        for spec in specs[:4]:
            writer.append(spec, execute_job(experiment, spec))
    resumed = run_campaign(experiment, jobs=1, resume=checkpoint)
    assert resumed.manifest["outcome"]["resume"]["jobs_skipped"] == 4
    assert resumed.manifest["outcome"]["resume"]["jobs_rerun"] == 2
    clean = run_campaign(experiment, jobs=1)
    assert resumed.value == clean.value
    assert (manifest_fingerprint(resumed.manifest)
            == manifest_fingerprint(clean.manifest))


def test_checkpoint_schema_is_versioned(tmp_path):
    experiment = ToyExperiment(n=1)
    [spec] = experiment.job_specs()
    path = tmp_path / "ckpt.jsonl"
    with CheckpointWriter(path) as writer:
        writer.append(spec, execute_job(experiment, spec))
    doc = json.loads(path.read_text(encoding="utf-8").splitlines()[0])
    assert doc["schema"] == CHECKPOINT_SCHEMA
