"""Resilience tests poke the process-wide metrics registry and the
module-level warn-once flags; give each test a clean slate."""

import pytest

import repro.runner.executor as executor
from repro.telemetry import REGISTRY


@pytest.fixture(autouse=True)
def clean_state():
    REGISTRY.reset()
    REGISTRY.set_base_labels()
    executor._UNENFORCED_WARNED = False
    yield
    REGISTRY.disable()
    REGISTRY.reset()
    REGISTRY.set_base_labels()
