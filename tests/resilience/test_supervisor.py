"""Worker supervision: killed workers, hung workers, degradation.

The hostile experiments live at module top level so the process pool
can pickle them; each uses an ``O_CREAT|O_EXCL`` marker file to
misbehave exactly once per test (in-memory state dies with the worker,
which is the point).
"""

import os
import signal
import time
from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.resilience import SupervisionPolicy
from repro.runner import (JobSpec, derive_seed, manifest_fingerprint,
                          run_campaign)


def _claim_once(state_dir: str, token: str) -> bool:
    """True exactly once per (state_dir, token), surviving SIGKILL."""
    try:
        fd = os.open(os.path.join(state_dir, token.replace("/", "_")),
                     os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


@dataclass(frozen=True)
class ToyExperiment:
    name: ClassVar[str] = "toy"

    n: int = 6

    def campaign_config(self) -> dict:
        return {"n": self.n}

    def job_specs(self):
        return [JobSpec.make(self.name, (i,), derive_seed(42, (i,)),
                             index=i)
                for i in range(self.n)]

    def run_one(self, spec, ctx):
        return spec.param("index") * 10 + spec.seed % 7

    def reduce(self, results):
        return [r.value for r in results if r.ok]


@dataclass(frozen=True)
class KillOnceExperiment(ToyExperiment):
    """SIGKILLs its own worker the first time job 2 runs."""

    state_dir: str = ""

    def run_one(self, spec, ctx):
        if spec.param("index") == 2 and _claim_once(self.state_dir, "kill"):
            os.kill(os.getpid(), signal.SIGKILL)
        return super().run_one(spec, ctx)


@dataclass(frozen=True)
class HangOnceExperiment(ToyExperiment):
    """Blocks SIGALRM and stalls past every timeout, once, in job 1.

    The per-job alarm provably cannot fire here — only the parent-side
    wall-clock watchdog can reap the worker.
    """

    state_dir: str = ""
    hang_s: float = 30.0

    def run_one(self, spec, ctx):
        if spec.param("index") == 1 and _claim_once(self.state_dir, "hang"):
            if hasattr(signal, "pthread_sigmask"):
                signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGALRM})
            time.sleep(self.hang_s)
        return super().run_one(spec, ctx)


@dataclass(frozen=True)
class AlwaysKillInWorkerExperiment(ToyExperiment):
    """Kills every worker that picks it up; survives only in-process.

    ``parent_pid`` tells jobs whether they are expendable — in the
    supervisor's degraded in-process mode they run in the parent and
    must *not* kill the campaign.
    """

    parent_pid: int = 0

    def run_one(self, spec, ctx):
        if os.getpid() != self.parent_pid:
            os.kill(os.getpid(), signal.SIGKILL)
        return super().run_one(spec, ctx)


_FAST = SupervisionPolicy(backoff_base_s=0.01, backoff_max_s=0.05)


def test_sigkilled_worker_is_requeued_not_fatal(tmp_path):
    """The satellite regression: a worker SIGKILLed mid-campaign used
    to abort the whole run with BrokenProcessPool.  Now the pool is
    respawned, only the lost jobs re-run, and the result is identical
    to a clean serial campaign."""
    experiment = KillOnceExperiment(state_dir=str(tmp_path))
    campaign = run_campaign(experiment, jobs=2, supervision=_FAST)
    clean = run_campaign(ToyExperiment(), jobs=1)
    assert not campaign.failures
    assert campaign.value == clean.value
    assert (manifest_fingerprint(campaign.manifest)
            == manifest_fingerprint(clean.manifest))
    # The recovery left its lineage in the (stripped) outcome.
    supervision = campaign.manifest["outcome"]["supervision"]
    assert supervision["pool_respawns"] >= 1
    assert supervision["requeues"] >= 1
    assert supervision["jobs_lost"] == 0


def test_watchdog_reaps_hung_worker(tmp_path):
    """SIGALRM is blocked in the worker, so only the parent's
    wall-clock watchdog can recover — and the hang fires once, so the
    requeued job completes."""
    experiment = HangOnceExperiment(state_dir=str(tmp_path))
    policy = SupervisionPolicy(backoff_base_s=0.01, backoff_max_s=0.05,
                               watchdog_grace_s=0.5)
    campaign = run_campaign(experiment, jobs=2, timeout_s=5.0,
                            supervision=policy)
    assert not campaign.failures
    assert campaign.value == run_campaign(ToyExperiment(), jobs=1).value
    supervision = campaign.manifest["outcome"]["supervision"]
    assert supervision["watchdog_kills"] >= 1


def test_degrades_to_in_process_after_respawn_budget():
    experiment = AlwaysKillInWorkerExperiment(n=3, parent_pid=os.getpid())
    policy = SupervisionPolicy(max_pool_respawns=1, max_requeues=10,
                               backoff_base_s=0.01, backoff_max_s=0.02)
    campaign = run_campaign(experiment, jobs=2, supervision=policy)
    assert not campaign.failures
    assert campaign.value == run_campaign(ToyExperiment(n=3), jobs=1).value
    supervision = campaign.manifest["outcome"]["supervision"]
    assert supervision["degraded_in_process"] is True


def test_requeue_budget_exhaustion_is_a_captured_failure():
    experiment = AlwaysKillInWorkerExperiment(n=3, parent_pid=os.getpid())
    policy = SupervisionPolicy(max_pool_respawns=10, max_requeues=1,
                               backoff_base_s=0.01, backoff_max_s=0.02,
                               degrade_in_process=False)
    campaign = run_campaign(experiment, jobs=2, supervision=policy)
    assert campaign.failures
    assert all(f.error_kind in ("worker-lost", "hung")
               for f in campaign.failures)
    assert campaign.manifest["outcome"]["status"] in ("partial", "failure")
    supervision = campaign.manifest["outcome"]["supervision"]
    assert supervision["jobs_lost"] == len(campaign.failures)


def test_backoff_is_deterministic_and_bounded():
    policy = SupervisionPolicy(jitter_seed=7)
    again = SupervisionPolicy(jitter_seed=7)
    other = SupervisionPolicy(jitter_seed=8)
    delays = [policy.backoff_s(n) for n in range(1, 8)]
    assert delays == [again.backoff_s(n) for n in range(1, 8)]
    assert delays != [other.backoff_s(n) for n in range(1, 8)]
    # Exponential up to the cap, plus at most 25% jitter.
    assert all(d <= policy.backoff_max_s * 1.25 for d in delays)
    assert delays[0] >= policy.backoff_base_s


def test_watchdog_grace_derives_from_timeout():
    policy = SupervisionPolicy()
    assert policy.grace_s(10.0) == 20.0
    assert policy.grace_s(0.1) == 1.0            # floor
    assert policy.grace_s(None) is None          # nothing to scale from
    assert SupervisionPolicy(watchdog_grace_s=3.0).grace_s(None) == 3.0
