"""Workload suite: determinism and mitigation overhead shape."""

import pytest

from repro.kernel import Machine, MitigationConfig
from repro.pipeline import ZEN1, ZEN2
from repro.workloads import WORKLOADS, mitigation_overhead, run_suite


def test_all_workloads_run():
    machine = Machine(ZEN2)
    for name, workload in WORKLOADS.items():
        before = machine.cycles
        workload(machine)
        assert machine.cycles > before, name


def test_suite_deterministic():
    a = run_suite(ZEN2, runs=1)
    b = run_suite(ZEN2, runs=1)
    assert a.cycles == b.cycles


def test_suite_identical_at_any_jobs():
    serial = run_suite(ZEN2, runs=1, jobs=1)
    pooled = run_suite(ZEN2, runs=1, jobs=2)
    assert pooled.cycles == serial.cycles


def test_geometric_mean_positive():
    result = run_suite(ZEN2, runs=1)
    assert result.geometric_mean() > 0
    assert len(result.cycles) == 6


def test_overhead_small_but_positive():
    """§6.3: SuppressBPOnNonBr costs well under 1 % (paper: 0.69 %)."""
    overhead = mitigation_overhead(ZEN2, runs=1)
    assert 0.0 < overhead < 0.02


def test_overhead_zero_on_zen1():
    """Zen 1 does not support the bit: setting it changes nothing."""
    base = run_suite(ZEN1, runs=1)
    hardened = run_suite(ZEN1, runs=1, mitigations=MitigationConfig(
        suppress_bp_on_non_br=True))
    assert hardened.cycles == base.cycles
