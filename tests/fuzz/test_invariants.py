"""Invariant checkers: each one actually fires on a violated state.

The positive direction ("clean runs have no violations") is covered by
the oracle tests and the corpus replay; here each checker is pointed at
a state known to be wrong and must say so.
"""

from repro.fuzz import Observables, generate
from repro.fuzz.harness import build_world, run_world
from repro.fuzz.invariants import (PMCMonotoneHook, check_cache_coherence,
                                   check_episodes,
                                   check_no_transient_architectural_effect,
                                   check_pmc_episode_consistency,
                                   despeculated)
from repro.params import PAGE_SHIFT
from repro.pipeline import by_name


def run_fast_world(seed):
    world = build_world(generate(seed), by_name("zen2"), fastpath=True)
    run_world(world)
    return world


def observables_with(episodes=(), pmc=()):
    return Observables(outcome="halt", pc=0, kernel_mode=False,
                       regs=(0,) * 16, flags=(False,) * 4, cycles=0,
                       instructions=0, pmc=tuple(pmc),
                       episodes=tuple(episodes), data_sha="")


def episode(source_pc=0x14000000, predicted="jcc", actual="jcc",
            target=0x14000040, reach="FETCH", frontend=True,
            cycle=10):
    return (source_pc, predicted, actual, target, reach, frontend,
            False, False, cycle)


def test_despeculated_closes_every_transient_window():
    uarch = by_name("zen2")
    nospec = despeculated(uarch)
    assert nospec.backend_window_uops == 0
    assert nospec.frontend_resteer_latency == nospec.issue_latency


def test_transient_check_skips_rdtsc_programs():
    from repro.fuzz import FuzzProgram, InstrSpec, Item
    program = FuzzProgram(
        name="t", seed=0, shape="mixed",
        user_items=(Item(InstrSpec("rdtsc")), Item(InstrSpec("hlt"))))
    fake_reference = observables_with()
    assert check_no_transient_architectural_effect(
        program, by_name("zen2"), fake_reference) == []


def test_clean_world_has_coherent_caches():
    world = run_fast_world(0)
    assert world.cpu._decode_cache          # the fast path was exercised
    assert check_cache_coherence(world) == []


def test_stale_decode_cache_is_detected():
    world = run_fast_world(0)
    # Rewrite code behind the engine's back: no invalidate_code call.
    pc = max(world.cpu._decode_cache)       # last pc: the hlt / exit area
    pa = world.mem.aspace.translate_noperm(pc)
    world.mem.phys.write(pa, b"\x48\x01\xc8")   # now an add_rr
    violations = check_cache_coherence(world)
    assert any(v.invariant == "stale-cache" and f"{pc:#x}" in v.detail
               for v in violations)


def test_unindexed_cache_entry_is_detected():
    world = run_fast_world(0)
    cpu = world.cpu
    pc = next(iter(cpu._decode_cache))
    page = pc >> PAGE_SHIFT
    cpu._code_pages[page] = {p for p in cpu._code_pages[page] if p != pc}
    violations = check_cache_coherence(world)
    assert any("not indexed" in v.detail for v in violations)


def test_pmc_monotone_hook_catches_a_decrease():
    world = build_world(generate(0), by_name("zen2"), fastpath=True)
    hook = PMCMonotoneHook(world.cpu)
    pmc = world.cpu.pmc
    pmc.add("l1d_access")
    hook(0x1000, None)
    assert hook.violations == []
    slot = list(pmc.snapshot()).index("l1d_access")
    pmc.counts[slot] -= 1
    hook(0x1008, None)
    assert len(hook.violations) == 1
    assert "l1d_access" in hook.violations[0].detail


def test_episode_cycle_must_be_monotone():
    obs = observables_with(episodes=(episode(cycle=50), episode(cycle=40)))
    violations = check_episodes(obs, by_name("zen2"))
    assert any("cycle went backwards" in v.detail for v in violations)


def test_episode_addresses_must_be_canonical():
    obs = observables_with(
        episodes=(episode(target=0x0100_0000_0000_0000),))
    violations = check_episodes(obs, by_name("zen2"))
    assert any("non-canonical" in v.detail for v in violations)


def test_frontend_episode_cannot_reach_execute_when_decoder_wins():
    obs = observables_with(
        episodes=(episode(reach="EXECUTE", frontend=True),))
    # Zen 3's decoder wins the race: no phantom execute window.
    assert check_episodes(obs, by_name("zen3"))
    # Zen 2's loses it: the same episode is legal.
    assert check_episodes(obs, by_name("zen2")) == []


def test_backend_episode_must_reach_execute():
    obs = observables_with(
        episodes=(episode(reach="DECODE", frontend=False),))
    violations = check_episodes(obs, by_name("zen2"))
    assert any("backend-detected" in v.detail for v in violations)


def test_unknown_reach_and_kind_are_flagged():
    obs = observables_with(episodes=(episode(reach="WAT"),
                                     episode(predicted="mul")))
    violations = check_episodes(obs, by_name("zen2"))
    assert any("unknown reach" in v.detail for v in violations)
    assert any("not a branch kind" in v.detail for v in violations)


def test_pmc_and_episodes_must_tell_the_same_story():
    obs = observables_with(
        episodes=(episode(frontend=True), episode(frontend=False)),
        pmc=(("resteer_frontend", 1), ("resteer_backend", 1)))
    assert check_pmc_episode_consistency(obs) == []
    skewed = observables_with(
        episodes=(episode(frontend=True),),
        pmc=(("resteer_frontend", 2), ("resteer_backend", 0)))
    violations = check_pmc_episode_consistency(skewed)
    assert any("resteer_frontend" in v.detail for v in violations)
