"""FuzzProgram: serialization, validation, deterministic layout."""

import pytest

from repro.fuzz import (FuzzProgram, FuzzProgramError, InstrSpec, Item,
                        PROGRAM_SCHEMA, Patch, generate)
from repro.fuzz.program import USER_CODE


def tiny_program(**changes):
    items = (
        Item(InstrSpec("mov_ri", dest="rax", imm=7), labels=("start",)),
        Item(InstrSpec("add_ri", dest="rax", imm=1)),
        Item(InstrSpec("hlt"), labels=("exit",)),
    )
    fields = dict(name="tiny", seed=1, shape="mixed", user_items=items)
    fields.update(changes)
    return FuzzProgram(**fields)


def test_json_round_trip():
    program = generate(42)
    assert FuzzProgram.from_json(program.to_json()) == program


def test_round_trip_all_shapes():
    from repro.fuzz import SHAPES
    for index, shape in enumerate(SHAPES):
        program = generate(100 + index, shape)
        assert FuzzProgram.from_json(program.to_json()) == program


def test_from_dict_rejects_wrong_schema():
    doc = tiny_program().to_dict()
    doc["schema"] = "something-else"
    with pytest.raises(FuzzProgramError, match="not a"):
        FuzzProgram.from_dict(doc)
    assert PROGRAM_SCHEMA in tiny_program().to_json()


def test_from_dict_rejects_unknown_instr_fields():
    with pytest.raises(FuzzProgramError, match="unknown InstrSpec"):
        InstrSpec.from_dict({"mnemonic": "nop", "extra": 1})


def test_resolve_rejects_unknown_mnemonic_and_register():
    with pytest.raises(FuzzProgramError, match="mnemonic"):
        InstrSpec("frob").resolve()
    with pytest.raises(FuzzProgramError, match="register"):
        InstrSpec("mov_ri", dest="r99", imm=0).resolve()


def test_empty_program_rejected():
    with pytest.raises(FuzzProgramError, match="no user items"):
        tiny_program(user_items=())


def test_patch_validation():
    patch = Patch(before_run=1, index=0,
                  instr=InstrSpec("mov_ri", dest="rax", imm=9))
    with pytest.raises(FuzzProgramError, match="before_run"):
        tiny_program(patches=(patch,), runs=1)
    bad_index = Patch(before_run=1, index=99, instr=patch.instr)
    with pytest.raises(FuzzProgramError, match="out of range"):
        tiny_program(patches=(bad_index,), runs=2)
    tiny_program(patches=(patch,), runs=2)   # valid


def test_oversized_data_rejected():
    with pytest.raises(FuzzProgramError, match="data exceeds"):
        tiny_program(data=b"\x00" * (2 * 4096 + 1))


def test_build_is_deterministic():
    program = generate(7)
    a, b = program.build(), program.build()
    assert a.item_pcs == b.item_pcs
    seg_a = a.user_image.segments[0]
    seg_b = b.user_image.segments[0]
    assert seg_a.data == seg_b.data and seg_a.base == seg_b.base


def test_imm_label_resolves_to_symbol_address():
    items = (
        Item(InstrSpec("mov_ri", dest="rax", imm_label="exit")),
        Item(InstrSpec("hlt"), labels=("exit",)),
    )
    built = tiny_program(user_items=items).build()
    # The label sits right after the 10-byte mov_ri.
    assert built.symbols["exit"] == USER_CODE + 10


def test_imm_label_only_on_mov_ri():
    with pytest.raises(FuzzProgramError, match="imm_label"):
        InstrSpec("add_ri", dest="rax", imm_label="exit").resolve({"exit": 0})


def test_patch_bytes_pads_with_nops():
    program = tiny_program(
        patches=(Patch(before_run=1, index=0, instr=InstrSpec("nop")),),
        runs=2)
    built = program.build()
    va, raw = built.patch_bytes(program.patches[0])
    assert va == built.item_pcs[0]
    assert len(raw) == built.item_lengths[0] == 10   # mov_ri span
    assert raw[0] == 0x90 and set(raw[1:]) == {0x90}


def test_patch_bytes_rejects_longer_encoding():
    # nop (1 byte) patched with mov_ri (10 bytes) cannot fit.
    items = (Item(InstrSpec("nop")), Item(InstrSpec("hlt"),
                                          labels=("exit",)))
    program = tiny_program(
        user_items=items,
        patches=(Patch(before_run=1, index=0,
                       instr=InstrSpec("mov_ri", dest="rax", imm=1)),),
        runs=2)
    with pytest.raises(FuzzProgramError, match="span"):
        program.build().patch_bytes(program.patches[0])


def test_uses_rdtsc_scans_items_and_patches():
    assert not tiny_program().uses_rdtsc
    with_item = tiny_program(user_items=(
        Item(InstrSpec("rdtsc")), Item(InstrSpec("hlt"))))
    assert with_item.uses_rdtsc
    with_patch = tiny_program(
        patches=(Patch(before_run=1, index=1, instr=InstrSpec("rdtsc")),),
        runs=2)
    assert with_patch.uses_rdtsc
