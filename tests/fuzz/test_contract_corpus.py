"""Replay the pinned relational corpus.

Two kinds of entry live under ``tests/fuzz/corpus/`` next to the
program corpus:

* ``violation-*.json`` — shrunk ``phantom.contract-violation/1``
  artifacts.  Each must still violate its recorded contract with
  exactly the recorded divergence classes (the expected-violation pin),
  and must validate against the checked-in schema.
* ``pair-*.json`` — ``phantom.fuzz-pair/1`` documents pinned as
  contract-*satisfying*: they must stay clean under the strictest
  contract (``no-leak``).

``check_pair`` runs every variant on both engines (slow and fastpath)
and cross-checks their leak traces, so one green replay covers the
dual-engine requirement; any engine split would surface as an
``engine`` divergence and change the classes.
"""

import json
from pathlib import Path

import pytest

from repro.fuzz import (RelationalPair, check_pair, contract_by_name,
                        generate_pair, iter_corpus, iter_pair_corpus,
                        load_pair)
from repro.kernel import mitigation_by_name
from repro.telemetry import validate_violation

CORPUS_DIR = Path(__file__).parent / "corpus"
ENTRIES = iter_pair_corpus(CORPUS_DIR)
VIOLATIONS = [(p, d) for p, d in ENTRIES
              if d["schema"] == "phantom.contract-violation/1"]
CLEAN_PAIRS = [(p, d) for p, d in ENTRIES
               if d["schema"] == "phantom.fuzz-pair/1"]


def entry_ids(entries):
    return [path.stem for path, _ in entries]


def test_corpus_has_the_required_pins():
    # The issue floor: two violating and two satisfying entries.
    assert len(VIOLATIONS) >= 2
    assert len(CLEAN_PAIRS) >= 2


def test_relational_entries_are_invisible_to_the_program_corpus():
    # iter_corpus must keep returning only program counterexamples;
    # the relational documents ride alongside without breaking it.
    program_names = {path.name for path, _ in iter_corpus(CORPUS_DIR)}
    for path, _ in ENTRIES:
        assert path.name not in program_names


@pytest.mark.parametrize(("path", "doc"), VIOLATIONS,
                         ids=entry_ids(VIOLATIONS))
def test_violation_artifact_validates(path, doc):
    validate_violation(doc)
    assert doc["classes"], f"{path.name} pinned without classes"


@pytest.mark.parametrize(("path", "doc"), VIOLATIONS,
                         ids=entry_ids(VIOLATIONS))
def test_pinned_violation_still_violates(path, doc):
    """The shrunk reproducer re-violates its contract with exactly the
    recorded divergence classes, on both engines."""
    pair = load_pair(path)
    contract = contract_by_name(doc["contract"])
    mitigation = mitigation_by_name(doc["mitigation"])
    verdict = check_pair(pair, contract, doc["uarches"],
                         mitigation=mitigation)
    assert not verdict.ok
    assert list(verdict.classes) == doc["classes"]
    # The pin was a *contract* violation, not an engine split.
    assert verdict.contract_classes == verdict.classes


@pytest.mark.parametrize(("path", "doc"), CLEAN_PAIRS,
                         ids=entry_ids(CLEAN_PAIRS))
def test_pinned_clean_pair_stays_clean(path, doc):
    """The satisfying pins hold under the strictest contract."""
    pair = RelationalPair.from_dict(doc)
    verdict = check_pair(pair, contract_by_name("no-leak"))
    assert verdict.ok, verdict.classes


@pytest.mark.parametrize(("path", "doc"), CLEAN_PAIRS,
                         ids=entry_ids(CLEAN_PAIRS))
def test_pinned_clean_pair_matches_its_generator(path, doc):
    """Unshrunk pins regenerate bit-for-bit from their recorded seed —
    the generator cannot drift under the corpus."""
    pair = RelationalPair.from_dict(doc)
    assert generate_pair(pair.program.seed, pair.program.shape) == pair


def test_artifacts_round_trip_through_json():
    for path, doc in ENTRIES:
        assert json.loads(path.read_text()) == doc
