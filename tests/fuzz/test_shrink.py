"""Shrinker: minimizes while preserving the failure class."""

import importlib

import pytest

from repro.fuzz import Divergence, Verdict, generate, shrink

# ``repro.fuzz.shrink`` the *attribute* is the function (the package
# re-exports it); reach the module itself for monkeypatching.
shrink_module = importlib.import_module("repro.fuzz.shrink")


def fake_oracle(monkeypatch, failing):
    """Install a stand-in oracle: a program 'fails' iff *failing* says
    so; the divergence class is fixed so the shrinker must preserve it."""

    def check(program, uarches, *, invariants=True):
        verdict = Verdict(program=program)
        if failing(program):
            verdict.divergences.append(
                Divergence("engine", "Zen 2", "cycles: injected"))
        return verdict

    monkeypatch.setattr(shrink_module, "check_program", check)
    return check


def count_mnemonic(program, mnemonic):
    return sum(item.instr.mnemonic == mnemonic
               for item in program.user_items)


def find_seed_with(mnemonic, shape=None):
    for seed in range(64):
        if count_mnemonic(generate(seed, shape), mnemonic):
            return seed
    raise AssertionError(f"no seed produced {mnemonic}")


def test_shrinks_to_the_failure_carrying_instruction(monkeypatch):
    seed = find_seed_with("imul_rr")
    program = generate(seed)
    check = fake_oracle(
        monkeypatch, lambda p: count_mnemonic(p, "imul_rr") > 0)
    verdict = check(program, ())
    result = shrink(program, verdict)
    assert result.reduced
    assert result.items_after < result.items_before
    assert result.items_after <= 4
    # The culprit survived, the reduction still builds, still "fails".
    assert count_mnemonic(result.program, "imul_rr") >= 1
    result.program.build()
    assert not check(result.program, ()).ok
    assert "shrunk" in result.program.description


def test_shrinking_drops_unneeded_patches(monkeypatch):
    seed = find_seed_with("imul_rr", "smc")
    program = generate(seed, "smc")
    if not program.patches:
        pytest.skip("pinned smc seed scheduled no patches")
    fake_oracle(monkeypatch, lambda p: count_mnemonic(p, "imul_rr") > 0)
    verdict = Verdict(program, [Divergence("engine", "Zen 2",
                                           "cycles: injected")])
    result = shrink(program, verdict)
    assert result.program.patches == ()
    assert result.program.runs == 1


def test_shrink_respects_the_check_budget(monkeypatch):
    program = generate(find_seed_with("imul_rr"))
    fake_oracle(monkeypatch, lambda p: count_mnemonic(p, "imul_rr") > 0)
    verdict = Verdict(program, [Divergence("engine", "Zen 2",
                                           "cycles: injected")])
    result = shrink(program, verdict, max_checks=3)
    assert result.checks <= 3
    result.program.build()                     # partial result is valid


def test_shrink_rejects_class_changing_reductions(monkeypatch):
    """A reduction that swaps the failure for a *different* class is
    not accepted — the minimized program reproduces the original bug."""
    program = generate(find_seed_with("imul_rr"))

    def check(candidate, uarches, *, invariants=True):
        verdict = Verdict(program=candidate)
        if count_mnemonic(candidate, "imul_rr") > 0:
            verdict.divergences.append(
                Divergence("engine", "Zen 2", "cycles: injected"))
        else:
            verdict.divergences.append(
                Divergence("engine", "Zen 2", "regs: other bug"))
        return verdict

    monkeypatch.setattr(shrink_module, "check_program", check)
    verdict = Verdict(program, [Divergence("engine", "Zen 2",
                                           "cycles: injected")])
    result = shrink(program, verdict)
    assert count_mnemonic(result.program, "imul_rr") >= 1


def test_shrinking_a_passing_program_is_an_error():
    program = generate(0)
    with pytest.raises(ValueError, match="passing"):
        shrink(program, Verdict(program=program))


def test_malformed_reductions_are_rejected_not_fatal(monkeypatch):
    """Candidates that fail to build (dangling labels, span overflows)
    must be treated as 'does not reproduce', never crash the shrink."""
    seed = find_seed_with("imul_rr")
    program = generate(seed)

    def check(candidate, uarches, *, invariants=True):
        candidate.build()                      # raises on malformed input
        verdict = Verdict(program=candidate)
        if count_mnemonic(candidate, "imul_rr") > 0:
            verdict.divergences.append(
                Divergence("engine", "Zen 2", "cycles: injected"))
        return verdict

    monkeypatch.setattr(shrink_module, "check_program", check)
    verdict = Verdict(program, [Divergence("engine", "Zen 2",
                                           "cycles: injected")])
    result = shrink(program, verdict)
    result.program.build()
    assert count_mnemonic(result.program, "imul_rr") >= 1


# -- secret-operand annotation migration -----------------------------------


def find_tainted_seed_with(mnemonic):
    for seed in range(64):
        program = generate(seed, taint=True)
        if program.secret_loads and count_mnemonic(program, mnemonic):
            # The regression needs droppable items *before* an
            # annotated load so a stale index would dangle or
            # mis-point after removal.
            if min(i for i, _ in program.secret_loads) >= 4:
                return seed
    raise AssertionError(f"no tainted seed produced {mnemonic}")


def test_dropping_items_remaps_secret_annotations(monkeypatch):
    """Regression: deleting instructions before a secret-tainted load
    must shift its ``secret_loads`` index with it, exactly like patch
    offsets — a stale index points the annotation at an arbitrary
    surviving instruction (or out of range)."""
    seed = find_tainted_seed_with("movb_rm")
    program = generate(seed, taint=True)
    fake_oracle(monkeypatch,
                lambda p: bool(p.secret_loads)
                and count_mnemonic(p, "movb_rm") > 0)
    verdict = shrink_module.check_program(program, ())
    result = shrink(program, verdict)
    assert result.items_after < result.items_before
    # Every surviving annotation still points at a secret load ...
    assert result.program.secret_loads
    for index, byte in result.program.secret_loads:
        assert result.program.user_items[index].instr.mnemonic \
            == "movb_rm"
    # ... reading one of the originally annotated secret bytes.
    assert {b for _, b in result.program.secret_loads} \
        <= {b for _, b in program.secret_loads}
    result.program.build()


def test_neutralizing_a_secret_load_deletes_its_annotation(monkeypatch):
    """When the shrinker rewrites an annotated load to a nop the
    annotation must go with it, not survive pointing at the nop."""
    seed = find_tainted_seed_with("imul_rr")
    program = generate(seed, taint=True)
    # The oracle only needs the imul: every secret load is fair game
    # for dropping or neutralizing.
    fake_oracle(monkeypatch,
                lambda p: count_mnemonic(p, "imul_rr") > 0)
    verdict = shrink_module.check_program(program, ())
    result = shrink(program, verdict)
    for index, byte in result.program.secret_loads:
        assert result.program.user_items[index].instr.mnemonic \
            == "movb_rm"
    result.program.build()
