"""Shrinker: minimizes while preserving the failure class."""

import importlib

import pytest

from repro.fuzz import Divergence, Verdict, generate, shrink

# ``repro.fuzz.shrink`` the *attribute* is the function (the package
# re-exports it); reach the module itself for monkeypatching.
shrink_module = importlib.import_module("repro.fuzz.shrink")


def fake_oracle(monkeypatch, failing):
    """Install a stand-in oracle: a program 'fails' iff *failing* says
    so; the divergence class is fixed so the shrinker must preserve it."""

    def check(program, uarches, *, invariants=True):
        verdict = Verdict(program=program)
        if failing(program):
            verdict.divergences.append(
                Divergence("engine", "Zen 2", "cycles: injected"))
        return verdict

    monkeypatch.setattr(shrink_module, "check_program", check)
    return check


def count_mnemonic(program, mnemonic):
    return sum(item.instr.mnemonic == mnemonic
               for item in program.user_items)


def find_seed_with(mnemonic, shape=None):
    for seed in range(64):
        if count_mnemonic(generate(seed, shape), mnemonic):
            return seed
    raise AssertionError(f"no seed produced {mnemonic}")


def test_shrinks_to_the_failure_carrying_instruction(monkeypatch):
    seed = find_seed_with("imul_rr")
    program = generate(seed)
    check = fake_oracle(
        monkeypatch, lambda p: count_mnemonic(p, "imul_rr") > 0)
    verdict = check(program, ())
    result = shrink(program, verdict)
    assert result.reduced
    assert result.items_after < result.items_before
    assert result.items_after <= 4
    # The culprit survived, the reduction still builds, still "fails".
    assert count_mnemonic(result.program, "imul_rr") >= 1
    result.program.build()
    assert not check(result.program, ()).ok
    assert "shrunk" in result.program.description


def test_shrinking_drops_unneeded_patches(monkeypatch):
    seed = find_seed_with("imul_rr", "smc")
    program = generate(seed, "smc")
    if not program.patches:
        pytest.skip("pinned smc seed scheduled no patches")
    fake_oracle(monkeypatch, lambda p: count_mnemonic(p, "imul_rr") > 0)
    verdict = Verdict(program, [Divergence("engine", "Zen 2",
                                           "cycles: injected")])
    result = shrink(program, verdict)
    assert result.program.patches == ()
    assert result.program.runs == 1


def test_shrink_respects_the_check_budget(monkeypatch):
    program = generate(find_seed_with("imul_rr"))
    fake_oracle(monkeypatch, lambda p: count_mnemonic(p, "imul_rr") > 0)
    verdict = Verdict(program, [Divergence("engine", "Zen 2",
                                           "cycles: injected")])
    result = shrink(program, verdict, max_checks=3)
    assert result.checks <= 3
    result.program.build()                     # partial result is valid


def test_shrink_rejects_class_changing_reductions(monkeypatch):
    """A reduction that swaps the failure for a *different* class is
    not accepted — the minimized program reproduces the original bug."""
    program = generate(find_seed_with("imul_rr"))

    def check(candidate, uarches, *, invariants=True):
        verdict = Verdict(program=candidate)
        if count_mnemonic(candidate, "imul_rr") > 0:
            verdict.divergences.append(
                Divergence("engine", "Zen 2", "cycles: injected"))
        else:
            verdict.divergences.append(
                Divergence("engine", "Zen 2", "regs: other bug"))
        return verdict

    monkeypatch.setattr(shrink_module, "check_program", check)
    verdict = Verdict(program, [Divergence("engine", "Zen 2",
                                           "cycles: injected")])
    result = shrink(program, verdict)
    assert count_mnemonic(result.program, "imul_rr") >= 1


def test_shrinking_a_passing_program_is_an_error():
    program = generate(0)
    with pytest.raises(ValueError, match="passing"):
        shrink(program, Verdict(program=program))


def test_malformed_reductions_are_rejected_not_fatal(monkeypatch):
    """Candidates that fail to build (dangling labels, span overflows)
    must be treated as 'does not reproduce', never crash the shrink."""
    seed = find_seed_with("imul_rr")
    program = generate(seed)

    def check(candidate, uarches, *, invariants=True):
        candidate.build()                      # raises on malformed input
        verdict = Verdict(program=candidate)
        if count_mnemonic(candidate, "imul_rr") > 0:
            verdict.divergences.append(
                Divergence("engine", "Zen 2", "cycles: injected"))
        return verdict

    monkeypatch.setattr(shrink_module, "check_program", check)
    verdict = Verdict(program, [Divergence("engine", "Zen 2",
                                           "cycles: injected")])
    result = shrink(program, verdict)
    result.program.build()
    assert count_mnemonic(result.program, "imul_rr") >= 1
