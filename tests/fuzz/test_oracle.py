"""Oracle: divergence classification, seed derivation, counterexamples."""

import pytest

from repro.fuzz import (Divergence, Verdict, check_program, check_range,
                        generate, load_program, program_seed,
                        save_counterexample)


def test_clean_programs_pass_the_full_oracle():
    for index in range(4):
        verdict = check_program(generate(program_seed(0, index)))
        assert verdict.ok, \
            "\n".join(str(d) for d in verdict.divergences)


def test_program_seed_depends_only_on_campaign_seed_and_index():
    assert program_seed(0, 3) == program_seed(0, 3)
    assert program_seed(0, 3) != program_seed(0, 4)
    assert program_seed(0, 3) != program_seed(1, 3)


def test_check_range_matches_per_index_generation():
    verdicts = check_range(9, 2, 5)
    assert [v.program for v in verdicts] == \
        [generate(program_seed(9, index)) for index in range(2, 5)]


def test_divergence_klass_keeps_kind_uarch_and_leading_token():
    engine = Divergence("engine", "Zen 2",
                        "cycles: 10 != 11")
    invariant = Divergence("invariant", "Zen 3",
                           "[stale-cache] decode-cache entry at 0x14000000")
    assert engine.klass == "engine/Zen 2/cycles"
    assert invariant.klass == "invariant/Zen 3/[stale-cache]"
    assert str(engine) == "engine/Zen 2: cycles: 10 != 11"


def test_verdict_classes_sorted_and_unique():
    program = generate(1)
    verdict = Verdict(program, [
        Divergence("engine", "Zen 2", "cycles: 1 != 2"),
        Divergence("engine", "Zen 2", "cycles: 3 != 4"),
        Divergence("engine", "Zen 2", "regs: a != b"),
    ])
    assert verdict.classes == ("engine/Zen 2/cycles", "engine/Zen 2/regs")
    assert not verdict.ok
    doc = verdict.to_dict()
    assert doc["ok"] is False and len(doc["divergences"]) == 3


def test_counterexample_round_trips_through_disk(tmp_path):
    program = generate(55)
    path = save_counterexample(program, ["engine/Zen 2: cycles: 1 != 2"],
                               tmp_path, shrink_checks=17)
    assert path.name == f"counterexample-{program.name}.json"
    assert load_program(path) == program


def test_invariants_flag_skips_invariant_checks(monkeypatch):
    import repro.fuzz.oracle as oracle_module

    def boom(*args, **kwargs):
        raise AssertionError("invariant check ran with invariants=False")

    monkeypatch.setattr(oracle_module, "check_cache_coherence", boom)
    verdict = check_program(generate(2), invariants=False)
    assert verdict.ok


def test_oracle_reports_engine_divergence(monkeypatch):
    """Fault-inject the fast engine: a cycle perturbation must surface
    as an engine-class divergence on every µarch."""
    import repro.fuzz.oracle as oracle_module

    real_run_world = oracle_module.run_world

    def skewed_run_world(world):
        observables = real_run_world(world)
        if world.cpu._fastpath:
            object.__setattr__(observables, "cycles",
                               observables.cycles + 1)
        return observables

    monkeypatch.setattr(oracle_module, "run_world", skewed_run_world)
    verdict = check_program(generate(3), invariants=False)
    assert not verdict.ok
    assert {d.kind for d in verdict.divergences} == {"engine"}
    assert all("cycles" in d.detail for d in verdict.divergences)
