"""The ``repro fuzz`` command: clean runs, budgets, artifacts."""

import importlib
import json

import repro.fuzz
from repro.cli import main
from repro.fuzz import Divergence, Verdict, load_program
from repro.telemetry import validate_manifest

shrink_module = importlib.import_module("repro.fuzz.shrink")


def run(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_fuzz_clean_run(capsys, tmp_path):
    code, out = run(capsys, "fuzz", "--iters", "3",
                    "--artifact-dir", str(tmp_path / "artifacts"))
    assert code == 0
    assert "checked 3/3 programs" in out
    assert "0 divergence(s)" in out
    assert not (tmp_path / "artifacts").exists()


def test_fuzz_emits_valid_manifest(capsys, tmp_path):
    code, out = run(capsys, "fuzz", "--iters", "2", "--json",
                    "--artifact-dir", str(tmp_path))
    assert code == 0
    doc = json.loads(out)
    validate_manifest(doc)
    assert doc["outcome"]["programs"] == 2
    assert doc["config"]["uarches"] == ["zen2", "zen3"]


def test_fuzz_respects_time_budget(capsys, tmp_path):
    code, out = run(capsys, "fuzz", "--iters", "500",
                    "--time-budget", "0.01",
                    "--artifact-dir", str(tmp_path))
    assert code == 0
    assert "time budget hit" in out


def test_fuzz_jobs_matches_serial(capsys, tmp_path):
    code_serial, _ = run(capsys, "fuzz", "--iters", "6", "--seed", "21",
                         "--artifact-dir", str(tmp_path))
    code_jobs, _ = run(capsys, "fuzz", "--iters", "6", "--seed", "21",
                       "--jobs", "2", "--artifact-dir", str(tmp_path))
    assert code_serial == code_jobs == 0


def test_fuzz_divergence_writes_counterexample(capsys, tmp_path,
                                               monkeypatch):
    """Fault-inject the oracle: the command must exit 1 and write a
    replayable counterexample artifact."""

    def fake_check(program, uarches, *, invariants=True):
        verdict = Verdict(program=program)
        if program.seed % 2:
            verdict.divergences.append(
                Divergence("engine", "zen2", "cycles: injected"))
        return verdict

    monkeypatch.setattr(repro.fuzz, "check_program", fake_check)
    monkeypatch.setattr(shrink_module, "check_program", fake_check)
    artifact_dir = tmp_path / "artifacts"
    code, out = run(capsys, "fuzz", "--iters", "8",
                    "--artifact-dir", str(artifact_dir))
    assert code == 1
    assert "DIVERGENCE" in out and "wrote" in out
    artifacts = sorted(artifact_dir.glob("counterexample-*.json"))
    assert artifacts
    for path in artifacts:
        program = load_program(path)
        assert program.seed % 2 == 1
        program.build()


def test_fuzz_no_shrink_skips_minimization(capsys, tmp_path, monkeypatch):
    def fake_check(program, uarches, *, invariants=True):
        return Verdict(program=program,
                       divergences=[Divergence("engine", "zen2",
                                               "cycles: injected")])

    monkeypatch.setattr(repro.fuzz, "check_program", fake_check)
    code, out = run(capsys, "fuzz", "--iters", "1", "--no-shrink",
                    "--artifact-dir", str(tmp_path / "a"))
    assert code == 1
    assert "shrunk" not in out
    assert list((tmp_path / "a").glob("counterexample-*.json"))


# -- relational (contract) mode --------------------------------------------


def test_contracts_list(capsys):
    code, out = run(capsys, "contracts", "list")
    assert code == 0
    for name in ("no-leak", "no-if-leak", "retbleed-safe"):
        assert name in out
    for mitigation in ("suppress-bp", "rsb-stuffing"):
        assert mitigation in out


def test_fuzz_mitigation_requires_contract(capsys):
    assert main(["fuzz", "--mitigation", "ibpb", "--iters", "1"]) == 2


def test_contract_clean_run(capsys, tmp_path):
    code, out = run(capsys, "fuzz", "--contract", "retbleed-safe",
                    "--seed", "0", "--iters", "2",
                    "--artifact-dir", str(tmp_path / "artifacts"))
    assert code == 0
    assert "retbleed-safe" in out and "0 violation(s)" in out
    assert not (tmp_path / "artifacts").exists()


def test_contract_violation_ships_valid_artifact(capsys, tmp_path):
    from repro.telemetry import validate_violation

    artifact_dir = tmp_path / "artifacts"
    code, out = run(capsys, "fuzz", "--contract", "no-leak",
                    "--seed", "0", "--iters", "1", "--no-shrink",
                    "--artifact-dir", str(artifact_dir))
    assert code == 1
    assert "CONTRACT VIOLATION" in out
    artifacts = sorted(artifact_dir.glob("violation-*.json"))
    assert artifacts
    for path in artifacts:
        validate_violation(json.loads(path.read_text()))


def test_contract_manifest_identical_across_jobs(capsys, tmp_path):
    from repro.runner import manifest_fingerprint

    docs = []
    for jobs in ("1", "2"):
        code, out = run(capsys, "fuzz", "--contract", "retbleed-safe",
                        "--seed", "3", "--iters", "4", "--json",
                        "--jobs", jobs,
                        "--artifact-dir", str(tmp_path / jobs))
        assert code == 0
        docs.append(json.loads(out))
    for doc in docs:
        validate_manifest(doc)
        assert doc["config"]["contract"] == "retbleed-safe"
    assert manifest_fingerprint(docs[0]) == manifest_fingerprint(docs[1])
