"""Known-answer contract checks: Phantom's listings, pinned.

The relational fuzzer would be easy to fool — a model change that
silently closes the phantom fetch channel would just make every
campaign green.  These tests nail the contract machinery to the
paper's published results so the fuzzer's notion of "violation" cannot
drift:

* Listings 1–3 all **violate** ``no-if-leak`` on unmitigated Zen 2 and
  Zen 3 — the secret-steered phantom target lands in L1I/L2 (§6.2).
* All three **satisfy** ``suppress-bp-safe`` — with the MSR armed the
  contract's clause (no secret-dependent *data* access) holds on both
  µarches (O4).
* Listing 3 under ``no-leak`` leaks through the data side on Zen 2
  (phantom window reaches execute) but not on Zen 3 (fetch/decode
  only) — Table 1's regime split, visible as a per-µarch class.
"""

import pytest

from repro.fuzz import LISTINGS, check_listing, contract_by_name
from repro.pipeline import by_name

ZEN2 = by_name("zen2").name
ZEN3 = by_name("zen3").name


@pytest.mark.parametrize("listing", LISTINGS)
def test_listing_violates_no_if_leak_on_both_uarches(listing):
    verdict = check_listing(listing, contract_by_name("no-if-leak"))
    assert not verdict.ok
    for uarch in ("zen2", "zen3"):
        classes = verdict.classes_on(uarch)
        assert any(k.endswith("/icache") for k in classes), \
            f"{listing} on {uarch}: no I-cache divergence ({classes})"
        assert any(k.endswith("/l2") for k in classes)


@pytest.mark.parametrize("listing", LISTINGS)
def test_listing_satisfies_suppress_bp_safe(listing):
    verdict = check_listing(listing, contract_by_name("suppress-bp-safe"))
    assert verdict.ok, verdict.classes


def test_listing3_no_leak_splits_by_phantom_window():
    """Table 1: only µarches whose phantom window reaches execute show
    the disclosure gadget's data-side residue."""
    verdict = check_listing("listing3", contract_by_name("no-leak"))
    zen2 = verdict.classes_on("zen2")
    zen3 = verdict.classes_on("zen3")
    assert f"contract/{ZEN2}/dcache" in zen2
    assert f"contract/{ZEN3}/dcache" not in zen3
    # The fetch side still leaks everywhere (that is no-if-leak above).
    assert any(k.endswith("/icache") for k in zen3)


def test_verdict_serializes():
    verdict = check_listing("listing1", contract_by_name("no-if-leak"),
                            uarches=("zen2",))
    doc = verdict.to_dict()
    assert doc["listing"] == "listing1"
    assert doc["contract"] == "no-if-leak"
    assert doc["mitigation"] == "none"
    assert doc["ok"] is False
    assert doc["classes"] == list(verdict.classes)


def test_unknown_listing_is_rejected():
    from repro.fuzz import run_listing
    from repro.kernel import mitigation_by_name

    with pytest.raises(ValueError, match="unknown listing"):
        run_listing("listing9", "zen2",
                    mitigation_by_name("none").config, 0)
