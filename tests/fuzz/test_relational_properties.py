"""Property-based tests of the relational pair machinery.

These check the *construction* guarantees the contract oracle relies
on — no machine boots here, so hypothesis can sweep the seed space:

* pair generation is a pure function of the seed,
* the two variants are public-equivalent by construction,
* the secrets diverge at exactly the consumed bytes,
* campaign sharding partitions the index space independent of chunking,
* shrinking a violating pair never changes the violating
  contract + observer class set (checked against a deterministic
  stand-in oracle; the corpus replay test covers the real one).
"""

import importlib

from hypothesis import given, settings, strategies as st

from repro.fuzz import (SECRET_OFFSET, SECRET_SIZE, SHAPES,
                        ContractExperiment, ContractVerdict, Divergence,
                        contract_by_name, generate, generate_pair,
                        pair_seed, RelationalPair, shrink_pair)

relational_module = importlib.import_module("repro.fuzz.relational")

seeds = st.integers(min_value=0, max_value=2**32 - 1)
shapes = st.sampled_from((None,) + SHAPES)


@settings(max_examples=20, deadline=None)
@given(seed=seeds, shape=shapes)
def test_pair_generation_is_deterministic(seed, shape):
    assert generate_pair(seed, shape) == generate_pair(seed, shape)


@settings(max_examples=20, deadline=None)
@given(seed=seeds, shape=shapes)
def test_variants_are_public_equivalent_secret_divergent(seed, shape):
    pair = generate_pair(seed, shape)
    a, b = pair.variant_a, pair.variant_b
    # Public projections agree by construction: same code, same
    # registers, same non-secret data.
    assert pair.public_projection(a) == pair.public_projection(b)
    assert a.user_items == b.user_items
    assert a.kernel_items == b.kernel_items
    assert a.regs == b.regs
    assert a.patches == b.patches
    # The secrets diverge at exactly the consumed bytes.
    diff = {i for i in range(SECRET_SIZE)
            if pair.secret_a[i] != pair.secret_b[i]}
    assert diff == set(pair.consumed)
    # Tainted generation always consumes at least one secret byte.
    assert pair.consumed
    # Variant A is the program as serialized.
    assert a == pair.program


@settings(max_examples=20, deadline=None)
@given(seed=seeds, shape=shapes)
def test_annotations_point_at_secret_loads(seed, shape):
    pair = generate_pair(seed, shape)
    for index, byte in pair.program.secret_loads:
        item = pair.program.user_items[index]
        assert item.instr.mnemonic == "movb_rm"
        assert 0 <= byte < SECRET_SIZE


@settings(max_examples=20, deadline=None)
@given(seed=seeds, shape=shapes)
def test_taint_does_not_perturb_the_untainted_stream(seed, shape):
    """A tainted program differs from the plain generator's output only
    by inserted gadgets: the untainted stream itself is unchanged, so
    existing program-corpus pins survive the generator hooks."""
    assert generate(seed, shape) == generate(seed, shape, taint=False)


@settings(max_examples=30, deadline=None)
@given(seed=seeds, index=st.integers(min_value=0, max_value=10_000))
def test_pair_seed_depends_only_on_campaign_seed_and_index(seed, index):
    assert pair_seed(seed, index) == pair_seed(seed, index)
    assert pair_seed(seed, index) != pair_seed(seed, index + 1)


@settings(max_examples=25, deadline=None)
@given(count=st.integers(min_value=1, max_value=257))
def test_job_specs_partition_the_index_space(count):
    experiment = ContractExperiment(seed=3, count=count)
    covered = []
    for spec in experiment.job_specs():
        covered.extend(range(spec.param("start"), spec.param("stop")))
    assert covered == list(range(count))


# -- shrinking preserves the violating class -------------------------------


_CLASSES = ("contract/Zen 2/dcache", "contract/Zen 3/l2")


def _fake_check_pair(pair, contract, uarches=("zen2", "zen3"), *,
                     mitigation=None):
    """Deterministic stand-in oracle: a pair violates iff an annotated
    secret load survives *and* the secrets still diverge somewhere the
    program reads them."""
    effective = mitigation or contract.resolve_mitigation()
    verdict = ContractVerdict(pair=pair, contract=contract,
                              mitigation=effective,
                              uarches=tuple(uarches))
    diverges = any(pair.secret_a[b] != pair.secret_b[b]
                   for b in pair.consumed)
    if pair.program.secret_loads and diverges:
        for klass in _CLASSES:
            spot, uarch, channel = klass.split("/")
            verdict.divergences.append(
                Divergence(spot, uarch, f"{channel}: differs"))
    return verdict


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_shrink_preserves_the_violating_class_set(seed):
    pair = generate_pair(seed)
    contract = contract_by_name("no-leak")
    original = relational_module.check_pair
    relational_module.check_pair = _fake_check_pair
    try:
        verdict = _fake_check_pair(pair, contract)
        assert not verdict.ok
        result = shrink_pair(pair, verdict)
        after = _fake_check_pair(result.pair, contract)
    finally:
        relational_module.check_pair = original
    # The shrunk pair still violates with the same class set ...
    assert set(after.contract_classes) == set(verdict.contract_classes)
    # ... is no bigger than what we started with ...
    assert len(result.pair.program.user_items) \
        <= len(pair.program.user_items)
    # ... and its secrets were aligned outside the consumed bytes.
    for i in range(SECRET_SIZE):
        if i not in result.pair.consumed:
            assert result.pair.secret_a[i] == result.pair.secret_b[i]
