"""The leakage-contract registry and violation artifacts."""

import json
from pathlib import Path

import pytest

from repro.fuzz import (CONTRACTS, Contract, VIOLATION_SCHEMA, check_pair,
                        contract_by_name, contract_names, generate_pair,
                        load_pair, pair_seed, save_violation,
                        violation_document)
from repro.kernel import mitigation_names
from repro.sidechannel import CHANNELS
from repro.telemetry import (CONTRACT_VIOLATION_JSON_SCHEMA, SchemaError,
                             validate_violation)

SCHEMA_COPY = Path(__file__).parent.parent / "data" \
    / "contract_violation.schema.json"


# -- registry --------------------------------------------------------------


def test_registry_names_unique():
    names = contract_names()
    assert len(names) == len(set(names))
    assert "no-leak" in names and "retbleed-safe" in names


@pytest.mark.parametrize("contract", CONTRACTS,
                         ids=[c.name for c in CONTRACTS])
def test_every_contract_is_well_formed(contract):
    # Clause channels exist; the mitigation resolves; permits is the
    # exact complement of protects.
    assert set(contract.protects) <= set(CHANNELS)
    assert contract.resolve_mitigation().name == contract.mitigation
    assert contract.mitigation in mitigation_names()
    assert set(contract.permits) | set(contract.protects) == set(CHANNELS)
    assert not set(contract.permits) & set(contract.protects)
    assert contract.claim
    assert contract.mitigation_config() \
        == contract.resolve_mitigation().config


def test_no_leak_protects_everything():
    assert contract_by_name("no-leak").protects == CHANNELS
    assert contract_by_name("no-leak").permits == ()


def test_suppress_bp_clause_permits_the_fetch_side():
    """O4 in contract form: the MSR gate closes the data side only;
    I-cache/L2 fetch residue stays an honest, permitted channel."""
    contract = contract_by_name("suppress-bp-safe")
    assert "dcache" in contract.protects
    assert "icache" in contract.permits
    assert "l2" in contract.permits


def test_by_name_is_separator_and_case_insensitive():
    assert contract_by_name("NO_IF_LEAK").name == "no-if-leak"
    assert contract_by_name(" retbleed safe ").name == "retbleed-safe"


def test_unknown_contract_lists_the_registry():
    with pytest.raises(ValueError) as excinfo:
        contract_by_name("constant-time")
    for name in contract_names():
        assert name in str(excinfo.value)


def test_unknown_channel_is_rejected_at_construction():
    with pytest.raises(ValueError, match="unknown channels"):
        Contract(name="bogus", mitigation="none",
                 protects=("icache", "tlb"), claim="x")


def test_to_dict_is_json_clean():
    for contract in CONTRACTS:
        doc = json.loads(json.dumps(contract.to_dict()))
        assert doc["name"] == contract.name
        assert doc["protects"] == list(contract.protects)


# -- violation artifacts ---------------------------------------------------


@pytest.fixture(scope="module")
def violating_verdict():
    """A real violating pair under the strictest contract (pinned seed
    known to diverge; cheap enough to run once per module)."""
    pair = generate_pair(pair_seed(0, 0))
    verdict = check_pair(pair, contract_by_name("no-leak"))
    assert not verdict.ok
    return pair, verdict


def test_violation_document_shape(violating_verdict):
    pair, verdict = violating_verdict
    doc = violation_document(pair, verdict, shrink_checks=7)
    assert doc["schema"] == VIOLATION_SCHEMA
    assert doc["contract"] == "no-leak"
    assert doc["mitigation"] == "none"
    assert doc["classes"] == list(verdict.classes)
    assert doc["shrink_checks"] == 7
    assert doc["pair"]["name"] == pair.name
    validate_violation(doc)


def test_save_violation_round_trips(tmp_path, violating_verdict):
    pair, verdict = violating_verdict
    path = save_violation(pair, verdict, tmp_path)
    assert path.name == f"violation-no-leak-{pair.name}.json"
    doc = json.loads(path.read_text())
    validate_violation(doc)
    # load_pair unwraps the embedded pair for replay.
    assert load_pair(path) == pair


def test_validate_violation_rejects_garbage(violating_verdict):
    pair, verdict = violating_verdict
    doc = violation_document(pair, verdict)
    doc["schema"] = "phantom.contract-violation/2"
    with pytest.raises(SchemaError):
        validate_violation(doc)
    doc = violation_document(pair, verdict)
    del doc["classes"]
    with pytest.raises(SchemaError):
        validate_violation(doc)


def test_checked_in_schema_copy_matches_the_source():
    """``tests/data/contract_violation.schema.json`` is the published
    form of the violation schema; drift here means the artifact format
    changed without the docs noticing."""
    assert json.loads(SCHEMA_COPY.read_text()) \
        == CONTRACT_VIOLATION_JSON_SCHEMA
