"""Generator: deterministic, shape-respecting, always buildable."""

import pytest

from repro.fuzz import SHAPES, generate, run_program
from repro.pipeline import by_name


def test_same_seed_same_program():
    assert generate(123) == generate(123)
    assert generate(123).to_json() == generate(123).to_json()


def test_different_seeds_differ():
    programs = {generate(seed).to_json() for seed in range(8)}
    assert len(programs) == 8


def test_shape_is_honoured():
    for shape in SHAPES:
        program = generate(5, shape)
        assert program.shape == shape
        program.build()


def test_unpinned_shape_is_seed_derived():
    shapes = {generate(seed).shape for seed in range(24)}
    assert len(shapes) >= 3          # the seed stream mixes shapes
    assert shapes <= set(SHAPES)


@pytest.mark.parametrize("seed", range(12))
def test_generated_programs_build_and_run(seed):
    program = generate(seed)
    built = program.build()
    assert built.item_pcs                     # layout known per item
    obs, _ = run_program(program, by_name("zen2"), fastpath=True)
    # Termination by construction: the instruction budget is a backstop,
    # not the expected exit.
    assert obs.outcome
    assert all(token != "limit" for token in obs.outcome.split(";"))


def test_smc_shape_schedules_patches():
    patched = [generate(seed, "smc") for seed in range(10)]
    with_patches = [p for p in patched if p.patches]
    assert with_patches, "no smc program out of 10 seeds had patches"
    for program in with_patches:
        assert program.runs > 1
        assert all(1 <= patch.before_run < program.runs
                   for patch in program.patches)


def test_syscall_shape_has_kernel_stub():
    stubs = [generate(seed, "syscall").kernel_items for seed in range(6)]
    assert all(stubs)
    mnemonics = {item.instr.mnemonic for items in stubs for item in items}
    assert "sysret" in mnemonics


def test_run_is_deterministic_across_replays():
    program = generate(31)
    first, _ = run_program(program, by_name("zen3"), fastpath=True)
    second, _ = run_program(program, by_name("zen3"), fastpath=True)
    assert first == second
