"""The committed regression corpus replays green, forever.

Three statements per committed entry:

1. it still is what the generator pin says it is (a corpus file that
   drifts from its ``(shape, seed)`` pin means the generator changed —
   version the pin, don't silently regenerate);
2. both engines produce byte-identical observables on it, on both
   default oracle µarchs;
3. the full oracle (engine differential + every invariant) passes.

Plus the jobs axis: sharding the fuzz campaign across worker processes
must not change the campaign manifest fingerprint.
"""

from pathlib import Path

import pytest

from repro.fuzz import (DEFAULT_UARCHES, FuzzExperiment, SEED_CORPUS,
                        check_program, compare_observables, generate,
                        iter_corpus, run_program)
from repro.pipeline import by_name
from repro.runner import manifest_fingerprint, run_campaign

CORPUS_DIR = Path(__file__).parent / "corpus"

ENTRIES = iter_corpus(CORPUS_DIR)


def entry_ids():
    return [path.stem for path, _ in ENTRIES]


def test_corpus_is_committed():
    assert len(ENTRIES) >= 5
    assert len(ENTRIES) >= len(SEED_CORPUS)


def test_corpus_matches_generator_pins():
    by_name_ = {program.name: program for _, program in ENTRIES}
    for shape, seed in SEED_CORPUS:
        regenerated = generate(seed, shape)
        committed = by_name_.get(regenerated.name)
        assert committed is not None, \
            f"pinned program {regenerated.name} missing from corpus"
        assert committed == regenerated


@pytest.mark.parametrize("path,program", ENTRIES, ids=entry_ids())
def test_corpus_entry_builds(path, program):
    built = program.build()
    assert built.user_image.segments


@pytest.mark.parametrize("path,program", ENTRIES, ids=entry_ids())
@pytest.mark.parametrize("uarch_name", DEFAULT_UARCHES)
def test_corpus_entry_engines_agree(path, program, uarch_name):
    uarch = by_name(uarch_name)
    slow, _ = run_program(program, uarch, fastpath=False)
    fast, _ = run_program(program, uarch, fastpath=True)
    assert compare_observables(slow, fast) == []


@pytest.mark.parametrize("path,program", ENTRIES, ids=entry_ids())
def test_corpus_entry_passes_full_oracle(path, program):
    verdict = check_program(program)
    assert verdict.ok, "\n".join(str(d) for d in verdict.divergences)


def test_corpus_outcomes_are_diverse():
    """The seed corpus was pinned to cover distinct terminal behaviours
    (clean halts, a user page fault, multi-run SMC programs)."""
    outcomes = set()
    multi_run = 0
    for _, program in ENTRIES:
        obs, _ = run_program(program, by_name("zen2"), fastpath=True)
        outcomes.update(obs.outcome.split(";"))
        multi_run += program.runs > 1
    assert "halt" in outcomes
    assert any(o.startswith("pagefault:u") for o in outcomes)
    assert multi_run >= 1


def test_fuzz_campaign_fingerprint_independent_of_jobs():
    experiment = FuzzExperiment(seed=11, count=10)
    fingerprints = []
    for jobs in (1, 2):
        campaign = run_campaign(experiment, jobs=jobs)
        outcome = campaign.raise_on_failure().value
        assert outcome["programs"] == 10
        assert outcome["failures"] == []
        fingerprints.append(manifest_fingerprint(campaign.manifest))
    assert fingerprints[0] == fingerprints[1]
