"""TLB: hit/miss timing, capacity, flushes."""

from repro.memory import TLB
from repro.params import PAGE_SIZE


def test_first_access_misses():
    tlb = TLB()
    assert tlb.access(0x1000) == tlb.walk_penalty
    assert tlb.misses == 1


def test_second_access_hits():
    tlb = TLB()
    tlb.access(0x1000)
    assert tlb.access(0x1FFF) == 0   # same page
    assert tlb.hits == 1


def test_different_page_misses():
    tlb = TLB()
    tlb.access(0x1000)
    assert tlb.access(0x2000) == tlb.walk_penalty


def test_capacity_eviction_lru():
    tlb = TLB(entries=4)
    for i in range(5):
        tlb.access(i * PAGE_SIZE)
    # Page 0 is the LRU victim.
    assert tlb.access(0) == tlb.walk_penalty
    assert tlb.access(4 * PAGE_SIZE) == 0


def test_lru_refresh():
    tlb = TLB(entries=2)
    tlb.access(0)
    tlb.access(PAGE_SIZE)
    tlb.access(0)              # refresh page 0
    tlb.access(2 * PAGE_SIZE)  # evicts page 1, not page 0
    assert tlb.access(0) == 0
    assert tlb.access(PAGE_SIZE) == tlb.walk_penalty


def test_flush_all():
    tlb = TLB()
    tlb.access(0x1000)
    tlb.flush()
    assert tlb.access(0x1000) == tlb.walk_penalty


def test_flush_page():
    tlb = TLB()
    tlb.access(0x1000)
    tlb.access(0x2000)
    tlb.flush_page(0x1000)
    assert tlb.access(0x2000) == 0
    assert tlb.access(0x1000) == tlb.walk_penalty
