"""TranslationFront: the software TLB must be invisible.

Same physical addresses, same ``PageFault`` attribute combinations as
the raw page walk — plus wholesale invalidation on every page-table
generation bump (map, unmap, linear map, attribute change), so stale
entries can never survive a mutation.
"""

import pytest

from repro.errors import PageFault
from repro.memory import AddressSpace, TranslationFront
from repro.params import PAGE_SIZE

VA = 0x0000_0040_0000
KVA = 0xFFFF_FFFF_8000_0000


def fault_of(fn, *args, **kwargs) -> tuple:
    with pytest.raises(PageFault) as exc:
        fn(*args, **kwargs)
    f = exc.value
    return (f.va, f.present, f.write, f.user, f.exec_)


@pytest.fixture
def aspace():
    space = AddressSpace()
    space.map_page(VA, 0x1000, user=True)
    space.map_page(KVA, 0x2000, user=False, writable=False, nx=True)
    return space


class TestParity:
    def test_successful_translations_match(self, aspace):
        front = TranslationFront(aspace)
        for va in (VA, VA + 1, VA + PAGE_SIZE - 1, KVA + 0x123):
            assert front.translate(va) == aspace.translate(va)
            # Warm (cached) probe returns the same thing again.
            assert front.translate(va) == aspace.translate(va)

    @pytest.mark.parametrize("kwargs", [
        {},                                       # not-present read
        {"write": True},                          # not-present write
        {"exec_": True},                          # not-present fetch
        {"user_mode": True},                      # not-present from user
        {"write": True, "user_mode": True},
    ])
    def test_unmapped_fault_attributes_match(self, aspace, kwargs):
        front = TranslationFront(aspace)
        bad = 0x0000_1234_5000
        assert fault_of(front.translate, bad, **kwargs) == \
            fault_of(aspace.translate, bad, **kwargs)

    def test_permission_fault_attributes_match(self, aspace):
        front = TranslationFront(aspace)
        cases = [
            (KVA, {"user_mode": True}),            # user -> supervisor
            (KVA, {"write": True}),                # write -> read-only
            (KVA, {"exec_": True}),                # fetch -> NX
            (KVA, {"write": True, "user_mode": True}),
        ]
        for va, kwargs in cases:
            assert fault_of(front.translate, va, **kwargs) == \
                fault_of(aspace.translate, va, **kwargs), kwargs

    def test_linear_range_translations_match(self, aspace):
        aspace.map_linear(0xFFFF_8880_0000_0000, 0, 1 << 21)
        front = TranslationFront(aspace)
        for off in (0, PAGE_SIZE + 7, (1 << 21) - 1):
            va = 0xFFFF_8880_0000_0000 + off
            assert front.translate(va) == aspace.translate(va)


class TestInvalidation:
    def test_unmap_invalidates(self, aspace):
        front = TranslationFront(aspace)
        front.translate(VA)
        aspace.unmap(VA)
        with pytest.raises(PageFault):
            front.translate(VA)

    def test_map_page_invalidates_negative_entry(self, aspace):
        front = TranslationFront(aspace)
        fresh = VA + 0x10 * PAGE_SIZE
        with pytest.raises(PageFault):
            front.translate(fresh)
        aspace.map_page(fresh, 0x8000, user=True)
        assert front.translate(fresh) == aspace.translate(fresh)

    def test_set_attrs_invalidates(self, aspace):
        front = TranslationFront(aspace)
        front.translate(VA, write=True)
        aspace.set_attrs(VA, writable=False)
        with pytest.raises(PageFault):
            front.translate(VA, write=True)
        # Reads still work, and still match the raw walk.
        assert front.translate(VA) == aspace.translate(VA)

    def test_map_linear_invalidates(self, aspace):
        front = TranslationFront(aspace)
        base = 0xFFFF_8880_0000_0000
        with pytest.raises(PageFault):
            front.translate(base)
        aspace.map_linear(base, 0, 1 << 21)
        assert front.translate(base) == aspace.translate(base)

    def test_materialised_range_page_shadow(self, aspace):
        """set_attrs on a range-covered page materialises a PTE that
        must shadow the (previously cached) range snapshot."""
        base = 0xFFFF_8880_0000_0000
        aspace.map_linear(base, 0x10_0000, 1 << 21)
        front = TranslationFront(aspace)
        pa = front.translate(base, write=True)
        aspace.set_attrs(base, writable=False)
        with pytest.raises(PageFault):
            front.translate(base, write=True)
        assert front.translate(base) == pa
