"""Page tables: translation, permissions, faults, huge pages."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageFault
from repro.memory import AddressSpace
from repro.params import HUGE_PAGE_SIZE, PAGE_SIZE, canonical

KERNEL_VA = 0xFFFF_FFFF_8000_0000
USER_VA = 0x0000_5555_0000_0000


@pytest.fixture
def aspace():
    return AddressSpace()


class TestTranslate:
    def test_identity_offset(self, aspace):
        aspace.map_page(USER_VA, 0x4000, user=True)
        assert aspace.translate(USER_VA + 0x123, user_mode=True) \
            == 0x4123

    def test_unmapped_faults_not_present(self, aspace):
        with pytest.raises(PageFault) as info:
            aspace.translate(USER_VA)
        assert not info.value.present

    def test_user_cannot_touch_supervisor(self, aspace):
        aspace.map_page(KERNEL_VA, 0x8000, user=False)
        with pytest.raises(PageFault) as info:
            aspace.translate(KERNEL_VA, user_mode=True)
        assert info.value.present and info.value.user
        # Supervisor access succeeds.
        assert aspace.translate(KERNEL_VA) == 0x8000

    def test_nx_blocks_exec_only(self, aspace):
        aspace.map_page(USER_VA, 0x4000, user=True, nx=True)
        assert aspace.translate(USER_VA, user_mode=True) == 0x4000
        with pytest.raises(PageFault) as info:
            aspace.translate(USER_VA, exec_=True, user_mode=True)
        assert info.value.exec_

    def test_readonly_blocks_write(self, aspace):
        aspace.map_page(USER_VA, 0x4000, user=True, writable=False)
        with pytest.raises(PageFault) as info:
            aspace.translate(USER_VA, write=True, user_mode=True)
        assert info.value.write

    def test_kernel_address_canonical_form(self, aspace):
        aspace.map_page(KERNEL_VA, 0x8000)
        # Translation accepts the truncated 48-bit alias as well.
        assert aspace.translate(canonical(KERNEL_VA)) == 0x8000


class TestAttrs:
    def test_set_attrs_retypes_page(self, aspace):
        """Paper section 6.2: make kernel page K user-accessible."""
        aspace.map_page(KERNEL_VA, 0x8000, user=False)
        aspace.set_attrs(KERNEL_VA, user=True)
        assert aspace.translate(KERNEL_VA, user_mode=True) == 0x8000

    def test_set_attrs_unmapped_raises(self, aspace):
        with pytest.raises(KeyError):
            aspace.set_attrs(USER_VA, user=True)

    def test_set_unknown_attr_raises(self, aspace):
        aspace.map_page(USER_VA, 0x4000)
        with pytest.raises(AttributeError):
            aspace.set_attrs(USER_VA, bogus=1)


class TestMapping:
    def test_unaligned_rejected(self, aspace):
        with pytest.raises(ValueError):
            aspace.map_page(USER_VA + 1, 0x4000)
        with pytest.raises(ValueError):
            aspace.map_page(USER_VA, 0x4001)

    def test_noncanonical_rejected(self, aspace):
        with pytest.raises(ValueError):
            aspace.map_page(0x0001_0000_0000_0000, 0x4000)

    def test_map_range_contiguous(self, aspace):
        aspace.map_range(USER_VA, 0x100000, 4 * PAGE_SIZE, user=True)
        for i in range(4):
            assert aspace.translate(USER_VA + i * PAGE_SIZE, user_mode=True) \
                == 0x100000 + i * PAGE_SIZE

    def test_huge_page(self, aspace):
        aspace.map_huge_page(0x4020_0000, 0x20_0000, user=True)
        assert aspace.pte(0x4020_0000).huge
        assert aspace.translate(0x4020_0000 + HUGE_PAGE_SIZE - 1,
                                user_mode=True) \
            == 0x20_0000 + HUGE_PAGE_SIZE - 1

    def test_huge_page_alignment(self, aspace):
        with pytest.raises(ValueError):
            aspace.map_huge_page(0x4020_0000 + PAGE_SIZE, 0x20_0000)

    def test_unmap(self, aspace):
        aspace.map_page(USER_VA, 0x4000)
        aspace.unmap(USER_VA)
        assert not aspace.is_mapped(USER_VA)


@given(st.integers(min_value=0, max_value=(1 << 47) - PAGE_SIZE),
       st.integers(min_value=0, max_value=PAGE_SIZE - 1))
@settings(max_examples=200)
def test_translation_preserves_page_offset(va_page, offset):
    """Property: PA offset within page always equals VA offset."""
    aspace = AddressSpace()
    va = (va_page // PAGE_SIZE) * PAGE_SIZE
    aspace.map_page(va, 0x7000, user=True)
    assert aspace.translate(va + offset, user_mode=True) & (PAGE_SIZE - 1) \
        == offset
