"""Hierarchy: latency ordering, inclusivity, flushes."""

from repro.memory import HierarchyParams, MemoryHierarchy


def test_latency_ordering():
    hier = MemoryHierarchy()
    first = hier.access_data(0x1000)
    second = hier.access_data(0x1000)
    assert first == hier.params.mem_latency
    assert second == hier.params.l1_latency
    assert second < first


def test_l2_hit_latency_between():
    hier = MemoryHierarchy()
    hier.access_data(0x1000)
    # Evict from L1 only by filling its set (L1: 64 sets, 8 ways; L2 is
    # 1024 sets so these don't collide in L2).
    conflicts = [0x1000 + i * 64 * 64 for i in range(1, 9)]
    for addr in conflicts:
        hier.access_data(addr)
    assert not hier.l1d.lookup(0x1000)
    assert hier.l2.lookup(0x1000)
    lat = hier.access_data(0x1000)
    assert lat == hier.params.l2_latency


def test_inclusive_back_invalidation():
    """Evicting a line from L2 must evict it from L1 (paper section 7.2's
    L2 Prime+Probe relies on this)."""
    hier = MemoryHierarchy()
    victim = 0x10000
    hier.access_data(victim)
    assert hier.l1d.lookup(victim)
    # Fill the L2 set of `victim` with 8 conflicting lines.
    stride = hier.l2.num_sets * 64
    for i in range(1, 9):
        hier.access_data(victim + i * stride)
    assert not hier.l2.lookup(victim)
    assert not hier.l1d.lookup(victim)


def test_instr_and_data_paths_separate_l1():
    hier = MemoryHierarchy()
    hier.access_instr(0x2000)
    assert hier.l1i.lookup(0x2000)
    assert not hier.l1d.lookup(0x2000)
    # But both share L2.
    assert hier.l2.lookup(0x2000)


def test_flush_line_removes_everywhere():
    hier = MemoryHierarchy()
    hier.access_instr(0x3000)
    hier.access_data(0x3000)
    hier.flush_line(0x3000)
    assert not hier.instr_cached(0x3000)
    assert not hier.data_cached(0x3000)
    assert hier.access_data(0x3000) == hier.params.mem_latency


def test_prefetch_instr_fills_without_stats():
    hier = MemoryHierarchy()
    hier.prefetch_instr(0x4000)
    assert hier.instr_cached(0x4000)
    assert hier.l1i.stats.misses == 0


def test_custom_latencies():
    params = HierarchyParams(l1_latency=3, l2_latency=11, mem_latency=200)
    hier = MemoryHierarchy(params)
    assert hier.access_data(0) == 200
    assert hier.access_data(0) == 3
