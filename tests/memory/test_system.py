"""MemorySystem facade: loads, stores, fetches, image loading, clflush."""

import pytest

from repro.errors import PageFault
from repro.isa import Assembler
from repro.memory import MemorySystem
from repro.params import PAGE_SIZE

USER_VA = 0x0000_5555_0000_0000
KERNEL_VA = 0xFFFF_FFFF_8000_0000


@pytest.fixture
def mem():
    return MemorySystem(64 << 20)


class TestDataPath:
    def test_read_write_roundtrip(self, mem):
        mem.map_anonymous(USER_VA, PAGE_SIZE, user=True)
        mem.write_data(USER_VA + 8, 8, 0xDEADBEEF, user_mode=True)
        value, _ = mem.read_data(USER_VA + 8, 8, user_mode=True)
        assert value == 0xDEADBEEF

    def test_miss_slower_than_hit(self, mem):
        mem.map_anonymous(USER_VA, PAGE_SIZE, user=True)
        _, cold = mem.read_data(USER_VA, 8, user_mode=True)
        _, warm = mem.read_data(USER_VA, 8, user_mode=True)
        assert warm < cold

    def test_user_mode_enforced(self, mem):
        mem.map_anonymous(KERNEL_VA, PAGE_SIZE, user=False)
        with pytest.raises(PageFault):
            mem.read_data(KERNEL_VA, 8, user_mode=True)
        value, _ = mem.read_data(KERNEL_VA, 8, user_mode=False)
        assert value == 0


class TestCodePath:
    def test_fetch_reads_bytes(self, mem):
        asm = Assembler(USER_VA)
        asm.nop()
        asm.ret()
        mem.load_image(asm.image(), user=True)
        raw, _ = mem.fetch_code(USER_VA, 2, user_mode=True)
        assert raw == b"\x90\xc3"

    def test_fetch_nx_faults(self, mem):
        mem.map_anonymous(USER_VA, PAGE_SIZE, user=True, nx=True)
        with pytest.raises(PageFault) as info:
            mem.fetch_code(USER_VA, 16, user_mode=True)
        assert info.value.exec_

    def test_fetch_across_page_boundary(self, mem):
        mem.map_anonymous(USER_VA, 2 * PAGE_SIZE, user=True)
        raw, _ = mem.fetch_code(USER_VA + PAGE_SIZE - 8, 16, user_mode=True)
        assert raw == bytes(16)

    def test_fetch_warms_icache(self, mem):
        mem.map_anonymous(USER_VA, PAGE_SIZE, user=True)
        _, cold = mem.fetch_code(USER_VA, 32, user_mode=True)
        _, warm = mem.fetch_code(USER_VA, 32, user_mode=True)
        assert warm < cold


class TestImageLoading:
    def test_symbols_usable(self, mem):
        asm = Assembler(KERNEL_VA)
        asm.label("entry")
        asm.nop_sled(10)
        asm.label("gadget")
        asm.ret()
        image = asm.image()
        mem.load_image(image)
        raw, _ = mem.fetch_code(image.symbols["gadget"], 1)
        assert raw == b"\xc3"

    def test_unaligned_segment_base(self, mem):
        asm = Assembler(KERNEL_VA + 0x520)  # like kernel offset 0xf6520
        asm.nopl(8)
        asm.push(__import__("repro.isa", fromlist=["Reg"]).Reg.RBP)
        mem.load_image(asm.image())
        raw, _ = mem.fetch_code(KERNEL_VA + 0x520, 8)
        assert raw == bytes.fromhex("0f1f840000000000")


class TestClflush:
    def test_clflush_forces_memory_latency(self, mem):
        mem.map_anonymous(USER_VA, PAGE_SIZE, user=True)
        mem.read_data(USER_VA, 8, user_mode=True)
        mem.clflush(USER_VA)
        _, lat = mem.read_data(USER_VA, 8, user_mode=True)
        assert lat >= mem.hier.params.mem_latency

    def test_clflush_unmapped_is_noop(self, mem):
        mem.clflush(USER_VA)  # must not raise


class TestFrameAllocator:
    def test_huge_alloc_aligned(self, mem):
        pa = mem.frames.alloc_huge()
        assert pa % (2 * 1024 * 1024) == 0

    def test_exhaustion(self):
        small = MemorySystem(1 << 20)
        with pytest.raises(Exception):
            small.frames.alloc(2 << 20)
