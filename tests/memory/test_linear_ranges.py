"""Linear range mappings (kernel image / physmap) in the address space."""

import pytest

from repro.errors import PageFault
from repro.memory import AddressSpace
from repro.params import PAGE_SIZE

KVA = 0xFFFF_8880_0000_0000


@pytest.fixture
def aspace():
    space = AddressSpace()
    space.map_linear(KVA, 0, 1 << 30, nx=True)
    return space


class TestLinearTranslate:
    def test_identity_offset(self, aspace):
        assert aspace.translate(KVA + 0x1234_5678) == 0x1234_5678

    def test_end_exclusive(self, aspace):
        assert aspace.translate(KVA + (1 << 30) - 1) == (1 << 30) - 1
        with pytest.raises(PageFault):
            aspace.translate(KVA + (1 << 30))

    def test_nx_enforced(self, aspace):
        with pytest.raises(PageFault):
            aspace.translate(KVA, exec_=True)

    def test_supervisor_only(self, aspace):
        with pytest.raises(PageFault):
            aspace.translate(KVA, user_mode=True)

    def test_pte_synthesised(self, aspace):
        pte = aspace.pte(KVA + 5 * PAGE_SIZE)
        assert pte is not None
        assert pte.nx
        assert pte.pfn == 5

    def test_is_mapped(self, aspace):
        assert aspace.is_mapped(KVA + 0x100)
        assert not aspace.is_mapped(KVA - PAGE_SIZE)


class TestOverrides:
    def test_set_attrs_materialises_page(self, aspace):
        """The §6.2 trick on a range-backed page: make it user-visible."""
        aspace.set_attrs(KVA + 0x3000, user=True, nx=False)
        assert aspace.translate(KVA + 0x3000, user_mode=True,
                                exec_=True) == 0x3000
        # Neighbouring pages keep the range's attributes.
        with pytest.raises(PageFault):
            aspace.translate(KVA + 0x4000, user_mode=True)

    def test_explicit_pte_shadows_range(self, aspace):
        aspace.map_page(KVA + 0x5000, 0x7_0000, user=True, nx=True)
        assert aspace.translate(KVA + 0x5000, user_mode=True) == 0x7_0000


class TestValidation:
    def test_overlapping_ranges_rejected(self, aspace):
        with pytest.raises(ValueError):
            aspace.map_linear(KVA + (1 << 29), 0, 1 << 30)

    def test_unaligned_rejected(self):
        space = AddressSpace()
        with pytest.raises(ValueError):
            space.map_linear(KVA + 1, 0, PAGE_SIZE)
        with pytest.raises(ValueError):
            space.map_linear(KVA, 0, PAGE_SIZE + 1)

    def test_noncanonical_rejected(self):
        space = AddressSpace()
        with pytest.raises(ValueError):
            space.map_linear(0x0008_0000_0000_0000, 0, PAGE_SIZE)

    def test_adjacent_ranges_allowed(self, aspace):
        aspace.map_linear(KVA + (1 << 30), 1 << 30, 1 << 30)
        assert aspace.translate(KVA + (1 << 30)) == 1 << 30
