"""Cache model: geometry, LRU, eviction, prime+probe building blocks."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import Cache, Replacement

LINE = 64


def make_cache(size=32 * 1024, ways=8, **kwargs):
    return Cache("test", size, ways, **kwargs)


class TestGeometry:
    def test_l1_geometry(self):
        cache = make_cache()
        assert cache.num_sets == 64

    def test_l2_geometry(self):
        cache = make_cache(512 * 1024, 8)
        assert cache.num_sets == 1024

    def test_set_index_uses_line_bits(self):
        cache = make_cache()
        assert cache.set_index(0) == 0
        assert cache.set_index(64) == 1
        assert cache.set_index(64 * 64) == 0  # wraps at 64 sets

    def test_same_page_offset_same_set(self):
        cache = make_cache()
        assert cache.set_index(0x1AC0) == cache.set_index(0x7AC0)

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            Cache("bad", 1000, 3)


class TestAccess:
    def test_miss_then_hit(self):
        cache = make_cache()
        hit, _ = cache.access(0x1000)
        assert not hit
        hit, _ = cache.access(0x1000)
        assert hit

    def test_same_line_hits(self):
        cache = make_cache()
        cache.access(0x1000)
        hit, _ = cache.access(0x103F)
        assert hit

    def test_adjacent_line_misses(self):
        cache = make_cache()
        cache.access(0x1000)
        hit, _ = cache.access(0x1040)
        assert not hit

    def test_lru_eviction_order(self):
        cache = make_cache()
        set0 = [i * 64 * 64 for i in range(9)]  # 9 lines in set 0, 8 ways
        for addr in set0[:8]:
            cache.access(addr)
        # Touch line 0 to make line 1 the LRU victim.
        cache.access(set0[0])
        _, evicted = cache.access(set0[8])
        assert evicted == set0[1]

    def test_fill_does_not_change_stats(self):
        cache = make_cache()
        cache.fill(0x2000)
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0
        assert cache.lookup(0x2000)

    def test_invalidate(self):
        cache = make_cache()
        cache.access(0x3000)
        assert cache.invalidate(0x3000)
        assert not cache.lookup(0x3000)
        assert not cache.invalidate(0x3000)

    def test_flush_all(self):
        cache = make_cache()
        for i in range(100):
            cache.access(i * 64)
        cache.flush_all()
        assert all(cache.set_occupancy(s) == 0 for s in range(cache.num_sets))

    def test_random_replacement_stays_within_ways(self):
        cache = make_cache(replacement=Replacement.RANDOM,
                           rng=random.Random(7))
        for i in range(100):
            cache.access(i * 64 * 64)  # all map to set 0
        assert cache.set_occupancy(0) == 8


class TestPrimeProbe:
    """The eviction behaviour Prime+Probe depends on."""

    def test_priming_fills_set(self):
        cache = make_cache()
        target_set = 11
        prime = [(target_set * 64) + i * 64 * 64 for i in range(8)]
        for addr in prime:
            cache.access(addr)
        assert cache.set_occupancy(target_set) == 8

    def test_victim_access_evicts_a_primed_line(self):
        cache = make_cache()
        target_set = 11
        prime = [(target_set * 64) + i * 64 * 64 for i in range(8)]
        for addr in prime:
            cache.access(addr)
        victim = (target_set * 64) + 100 * 64 * 64
        cache.access(victim)
        resident = cache.resident_lines(target_set)
        assert victim in resident
        assert len(set(prime) & set(resident)) == 7

    def test_probe_after_no_victim_all_hit(self):
        cache = make_cache()
        target_set = 11
        prime = [(target_set * 64) + i * 64 * 64 for i in range(8)]
        for addr in prime:
            cache.access(addr)
        hits = sum(cache.access(addr)[0] for addr in prime)
        assert hits == 8


@given(st.lists(st.integers(min_value=0, max_value=(1 << 30) - 1),
                min_size=1, max_size=200))
@settings(max_examples=100)
def test_occupancy_never_exceeds_ways(addrs):
    cache = make_cache(4096, 4)
    for addr in addrs:
        cache.access(addr)
    for s in range(cache.num_sets):
        assert cache.set_occupancy(s) <= 4


@given(st.lists(st.integers(min_value=0, max_value=(1 << 24) - 1),
                min_size=1, max_size=100))
@settings(max_examples=100)
def test_most_recent_access_always_resident(addrs):
    cache = make_cache(4096, 4)
    for addr in addrs:
        cache.access(addr)
        assert cache.lookup(addr)


@given(st.lists(st.integers(min_value=0, max_value=(1 << 24) - 1),
                min_size=2, max_size=100))
@settings(max_examples=100)
def test_stats_balance(addrs):
    cache = make_cache(4096, 4)
    for addr in addrs:
        cache.access(addr)
    assert cache.stats.hits + cache.stats.misses == len(addrs)
