"""Physical memory: sparse backing, bounds, cross-page access."""

import pytest

from repro.errors import MemoryError_
from repro.memory import PhysicalMemory
from repro.params import PAGE_SIZE


def test_zero_initialised():
    mem = PhysicalMemory(1 << 20)
    assert mem.read(0x1234, 8) == bytes(8)


def test_read_write_roundtrip():
    mem = PhysicalMemory(1 << 20)
    mem.write(0x100, b"hello world")
    assert mem.read(0x100, 11) == b"hello world"


def test_cross_page_write():
    mem = PhysicalMemory(1 << 20)
    addr = PAGE_SIZE - 4
    mem.write(addr, b"12345678")
    assert mem.read(addr, 8) == b"12345678"
    assert mem.read(PAGE_SIZE, 4) == b"5678"


def test_int_accessors():
    mem = PhysicalMemory(1 << 20)
    mem.write_int(0x40, 8, 0x1122334455667788)
    assert mem.read_int(0x40, 8) == 0x1122334455667788
    assert mem.read_int(0x40, 4) == 0x55667788  # little endian low half


def test_out_of_range():
    mem = PhysicalMemory(1 << 20)
    with pytest.raises(MemoryError_):
        mem.read(1 << 20, 1)
    with pytest.raises(MemoryError_):
        mem.write((1 << 20) - 4, b"12345678")


def test_sparse_is_lazy():
    mem = PhysicalMemory(64 << 30)  # 64 GB like the EPYC 7252 testbed
    mem.write(48 << 30, b"x")
    assert mem.read(48 << 30, 1) == b"x"
    assert len(mem._pages) == 1


def test_bad_size_rejected():
    with pytest.raises(ValueError):
        PhysicalMemory(12345)
