"""Ticked vs event-skipped idle must be cycle-exact equivalents.

``CPU.idle`` has two implementations: the naive mode ticks every
quiescent cycle and polls the scheduler, the fast mode (``quiesce``)
jumps straight between event deadlines and applies the per-cycle
counter effect arithmetically.  Everything observable — the cycle
clock, every PMC slot, event fire timestamps and ordering, episodes of
surrounding bursts — must be identical, no matter how events and
retire bursts interleave.
"""

import pytest

from repro.errors import HaltRequested
from repro.isa import Assembler, Cond, Reg
from repro.memory import MemorySystem
from repro.params import PAGE_SIZE
from repro.pipeline import CPU, ZEN2

CODE = 0x0000_0010_0000
STACK = 0x0000_7FF0_0000


def make_cpu(*, fastpath: bool = True, quiesce: bool) -> CPU:
    mem = MemorySystem(128 << 20, fastpath=fastpath)
    cpu = CPU(ZEN2, mem, fastpath=fastpath, quiesce=quiesce)
    cpu.record_episodes = True
    mem.map_anonymous(STACK - 16 * PAGE_SIZE, 16 * PAGE_SIZE,
                      user=True, nx=True)
    cpu.state.write(Reg.RSP, STACK)
    return cpu


def burst(iters: int = 40) -> Assembler:
    """A small mispredicting loop: episodes around the idle stretches."""
    asm = Assembler(CODE)
    asm.mov_ri(Reg.RAX, 0x9E3779B97F4A7C15)
    asm.mov_ri(Reg.RCX, iters)
    asm.label("loop")
    asm.mov_rr(Reg.RDX, Reg.RAX)
    asm.shl_ri(Reg.RDX, 13)
    asm.xor_rr(Reg.RAX, Reg.RDX)
    asm.mov_rr(Reg.RDX, Reg.RAX)
    asm.and_ri(Reg.RDX, 1)
    asm.cmp_ri(Reg.RDX, 0)
    asm.jcc(Cond.E, "skip")
    asm.add_ri(Reg.RBX, 1)
    asm.label("skip")
    asm.sub_ri(Reg.RCX, 1)
    asm.jcc(Cond.NE, "loop")
    asm.hlt()
    return asm


def run_to_halt(cpu: CPU, pc: int = CODE) -> None:
    try:
        cpu.run(pc, max_instructions=100_000)
    except HaltRequested:
        return
    raise AssertionError("program did not halt")


def observables(cpu: CPU) -> tuple:
    return (cpu.cycles, cpu.pmc.snapshot(), cpu.episodes,
            tuple(cpu.state.read(r) for r in Reg))


def idle_heavy_scenario(cpu: CPU) -> list:
    """Bursts interleaved with idles through a mixed event schedule."""
    cpu.mem.load_image(burst().image(), user=True)
    fired: list[int] = []
    for delay in (1, 7, 250, 999, 1000, 1001, 5000):
        run_to_halt(cpu)
        cpu.sched.schedule(cpu.cycles, delay, fired.append)
        cpu.sched.schedule(cpu.cycles, delay, fired.append)  # same cycle
        cpu.sched.schedule(cpu.cycles, 2 * delay + 3, fired.append)
        cpu.idle(1000)
    cpu.idle(10_000)   # drain whatever is still armed
    return fired


class TestTickedVsSkipped:
    def test_idle_heavy_scenario_is_cycle_exact(self):
        ticked = make_cpu(quiesce=False)
        skipped = make_cpu(quiesce=True)
        fired_ticked = idle_heavy_scenario(ticked)
        fired_skipped = idle_heavy_scenario(skipped)
        assert fired_skipped == fired_ticked   # timestamps and order
        assert observables(skipped) == observables(ticked)
        assert skipped.cycles_skipped > 0
        assert ticked.cycles_skipped == 0

    def test_slow_engine_agrees_with_skipping_fast_engine(self):
        slow = make_cpu(fastpath=False, quiesce=False)
        fast = make_cpu(fastpath=True, quiesce=True)
        fired_slow = idle_heavy_scenario(slow)
        fired_fast = idle_heavy_scenario(fast)
        assert fired_fast == fired_slow
        assert observables(fast) == observables(slow)

    def test_eventless_idle_jumps_to_end(self):
        ticked = make_cpu(quiesce=False)
        skipped = make_cpu(quiesce=True)
        for cpu in (ticked, skipped):
            cpu.idle(12_345)
        assert skipped.cycles == ticked.cycles == 12_345
        assert skipped.pmc.snapshot() == ticked.pmc.snapshot()
        assert skipped.cycles_skipped == 12_345
        assert skipped.sched.fired == ticked.sched.fired == 0

    def test_zero_and_negative_idle_are_noops(self):
        for cpu in (make_cpu(quiesce=False), make_cpu(quiesce=True)):
            cpu.idle(0)
            cpu.idle(-5)
            assert cpu.cycles == 0
            assert cpu.sched.fired == 0


class TestEventSemantics:
    @pytest.mark.parametrize("quiesce", [False, True])
    def test_overdue_event_fires_on_first_idle_cycle(self, quiesce):
        cpu = make_cpu(quiesce=quiesce)
        fired: list[int] = []
        deadline = cpu.sched.schedule(cpu.cycles, 5, fired.append)
        # Run the clock past the deadline with retire work, then idle:
        # the event is overdue and must fire on the first idle cycle.
        cpu.mem.load_image(burst(5).image(), user=True)
        run_to_halt(cpu)
        assert cpu.cycles > deadline
        start = cpu.cycles
        cpu.idle(100)
        assert fired == [start + 1]

    @pytest.mark.parametrize("quiesce", [False, True])
    def test_zero_delay_clamps_to_next_cycle(self, quiesce):
        cpu = make_cpu(quiesce=quiesce)
        fired: list[int] = []
        cpu.sched.schedule(cpu.cycles, 0, fired.append)
        cpu.sched.schedule(cpu.cycles, -3, fired.append)
        cpu.idle(10)
        assert fired == [1, 1]
        assert cpu.cycles == 10

    @pytest.mark.parametrize("quiesce", [False, True])
    def test_same_deadline_fires_in_arming_order(self, quiesce):
        cpu = make_cpu(quiesce=quiesce)
        order: list[str] = []
        for tag in ("a", "b", "c"):
            cpu.sched.schedule(cpu.cycles, 50,
                               lambda now, tag=tag: order.append(tag))
        cpu.idle(100)
        assert order == ["a", "b", "c"]

    @pytest.mark.parametrize("quiesce", [False, True])
    def test_deadline_beyond_idle_span_stays_armed(self, quiesce):
        cpu = make_cpu(quiesce=quiesce)
        fired: list[int] = []
        cpu.sched.schedule(cpu.cycles, 500, fired.append)
        cpu.idle(100)
        assert fired == []
        assert cpu.cycles == 100
        cpu.idle(1000)
        assert fired == [500]

    @pytest.mark.parametrize("quiesce", [False, True])
    def test_callbacks_may_rearm_within_the_same_idle(self, quiesce):
        cpu = make_cpu(quiesce=quiesce)
        fired: list[int] = []

        def periodic(now: int) -> None:
            fired.append(now)
            if len(fired) < 4:
                cpu.sched.schedule(now, 100, periodic)

        cpu.sched.schedule(cpu.cycles, 100, periodic)
        cpu.idle(1000)
        assert fired == [100, 200, 300, 400]
        assert cpu.cycles == 1000
