"""CPU architectural execution: programs, traps, timing, counters."""

import pytest

from repro.errors import PageFault, SimulationLimit
from repro.isa import Assembler, Cond, Reg
from repro.params import PAGE_SIZE

from .conftest import Harness, USER_CODE, USER_DATA


class TestPrograms:
    def test_arithmetic(self, harness):
        asm = Assembler(USER_CODE)
        asm.mov_ri(Reg.RAX, 10)
        asm.mov_ri(Reg.RBX, 32)
        asm.add_rr(Reg.RAX, Reg.RBX)
        asm.hlt()
        harness.load(asm)
        harness.run(USER_CODE)
        assert harness.cpu.state.read(Reg.RAX) == 42

    def test_loop(self, harness):
        asm = Assembler(USER_CODE)
        asm.mov_ri(Reg.RCX, 10)
        asm.mov_ri(Reg.RAX, 0)
        asm.label("loop")
        asm.add_ri(Reg.RAX, 3)
        asm.sub_ri(Reg.RCX, 1)
        asm.jcc(Cond.NE, "loop")
        asm.hlt()
        harness.load(asm)
        harness.run(USER_CODE)
        assert harness.cpu.state.read(Reg.RAX) == 30

    def test_memory_roundtrip(self, harness):
        harness.mem.map_anonymous(USER_DATA, PAGE_SIZE, user=True)
        asm = Assembler(USER_CODE)
        asm.mov_ri(Reg.RBX, USER_DATA)
        asm.mov_ri(Reg.RAX, 0xC0FFEE)
        asm.store(Reg.RBX, 0x10, Reg.RAX)
        asm.load(Reg.RDX, Reg.RBX, 0x10)
        asm.hlt()
        harness.load(asm)
        harness.run(USER_CODE)
        assert harness.cpu.state.read(Reg.RDX) == 0xC0FFEE

    def test_call_ret(self, harness):
        asm = Assembler(USER_CODE)
        asm.call("fn")
        asm.hlt()
        asm.label("fn")
        asm.mov_ri(Reg.RAX, 7)
        asm.ret()
        harness.load(asm)
        harness.run(USER_CODE)
        assert harness.cpu.state.read(Reg.RAX) == 7

    def test_indirect_jump(self, harness):
        asm = Assembler(USER_CODE)
        asm.mov_ri(Reg.RAX, 0)  # patched below via label math
        target_slot = asm.pc - 8  # imm64 field of the mov
        asm.jmp_reg(Reg.RAX)
        asm.nop_sled(8)
        asm.label("dest")
        asm.mov_ri(Reg.RBX, 99)
        asm.hlt()
        segment, symbols = asm.finish()
        data = bytearray(segment.data)
        dest = symbols["dest"]
        data[target_slot - USER_CODE:target_slot - USER_CODE + 8] = \
            dest.to_bytes(8, "little")
        from repro.isa import Image, Segment
        image = Image()
        image.add(Segment(USER_CODE, bytes(data)), symbols)
        harness.mem.load_image(image, user=True)
        harness.run(USER_CODE)
        assert harness.cpu.state.read(Reg.RBX) == 99

    def test_rdtsc_monotonic(self, harness):
        asm = Assembler(USER_CODE)
        asm.rdtsc()
        asm.mov_rr(Reg.RSI, Reg.RAX)
        asm.nop_sled(50)
        asm.rdtsc()
        asm.hlt()
        harness.load(asm)
        harness.run(USER_CODE)
        assert harness.cpu.state.read(Reg.RAX) \
            > harness.cpu.state.read(Reg.RSI)


class TestFaultsAndLimits:
    def test_unmapped_fetch_faults(self, harness):
        with pytest.raises(PageFault):
            harness.cpu.run(0x0000_4000_0000, max_instructions=10)

    def test_unmapped_load_faults(self, harness):
        asm = Assembler(USER_CODE)
        asm.mov_ri(Reg.RBX, 0x4000_0000)
        asm.load(Reg.RAX, Reg.RBX)
        asm.hlt()
        harness.load(asm)
        with pytest.raises(PageFault):
            harness.run(USER_CODE)

    def test_instruction_budget(self, harness):
        asm = Assembler(USER_CODE)
        asm.label("spin")
        asm.jmp("spin")
        harness.load(asm)
        with pytest.raises(SimulationLimit):
            harness.cpu.run(USER_CODE, max_instructions=100)

    def test_user_cannot_execute_supervisor_page(self, harness):
        kva = 0xFFFF_FFFF_8000_0000
        harness.mem.map_anonymous(kva, PAGE_SIZE, user=False)
        with pytest.raises(PageFault):
            harness.cpu.run(kva, max_instructions=1)


class TestTimingAndCounters:
    def test_warm_run_faster(self, harness):
        asm = Assembler(USER_CODE)
        asm.mov_ri(Reg.RCX, 1)
        asm.label("again")
        asm.nop_sled(64)
        asm.sub_ri(Reg.RCX, 1)
        asm.jcc(Cond.NS, "again")  # runs twice (rcx: 1 -> 0 -> -1)
        asm.hlt()
        harness.load(asm)
        harness.run(USER_CODE)
        # Second pass hits the µop cache.
        assert harness.cpu.pmc.read("op_cache_hit") > 30

    def test_instruction_count(self, harness):
        asm = Assembler(USER_CODE)
        for _ in range(10):
            asm.nop()
        asm.hlt()
        harness.load(asm)
        harness.run(USER_CODE)
        assert harness.cpu.pmc.read("instructions") == 11

    def test_branch_counters(self, harness):
        asm = Assembler(USER_CODE)
        asm.mov_ri(Reg.RCX, 5)
        asm.label("loop")
        asm.sub_ri(Reg.RCX, 1)
        asm.jcc(Cond.NE, "loop")
        asm.hlt()
        harness.load(asm)
        harness.run(USER_CODE)
        assert harness.cpu.pmc.read("branch_retired") == 5

    def test_decode_cache_invalidation(self, harness):
        """Self-modifying code must be re-decoded after invalidate_code."""
        asm = Assembler(USER_CODE)
        asm.mov_ri(Reg.RAX, 1)
        asm.hlt()
        harness.load(asm)
        harness.run(USER_CODE)
        assert harness.cpu.state.read(Reg.RAX) == 1
        # Patch the immediate in place.
        pa = harness.pa(USER_CODE)
        harness.mem.phys.write(pa + 2, (77).to_bytes(8, "little"))
        harness.cpu.invalidate_code(USER_CODE, USER_CODE + 16)
        harness.run(USER_CODE)
        assert harness.cpu.state.read(Reg.RAX) == 77
