"""Shared helpers for pipeline tests: bare-metal user-mode CPU setups."""

import pytest

from repro.errors import HaltRequested
from repro.isa import Assembler
from repro.memory import MemorySystem
from repro.pipeline import CPU, ZEN2
from repro.params import PAGE_SIZE

USER_CODE = 0x0000_0010_0000
USER_STACK = 0x0000_7FF0_0000
USER_DATA = 0x0000_0200_0000


class Harness:
    """A CPU with memory, a stack, and convenience runners."""

    def __init__(self, uarch=ZEN2, phys=256 << 20):
        self.mem = MemorySystem(phys)
        self.cpu = CPU(uarch, self.mem)
        self.cpu.record_episodes = True
        self.mem.map_anonymous(USER_STACK - 16 * PAGE_SIZE, 16 * PAGE_SIZE,
                               user=True, nx=True)
        self.cpu.state.write(
            __import__("repro.isa", fromlist=["Reg"]).Reg.RSP, USER_STACK)

    def load(self, asm: Assembler, **attrs) -> dict:
        image = asm.image()
        self.mem.load_image(image, user=True, **attrs)
        return image.symbols

    def run(self, pc: int, max_instructions: int = 100_000) -> None:
        try:
            self.cpu.run(pc, max_instructions=max_instructions)
        except HaltRequested:
            return
        raise AssertionError("program did not halt")

    def pa(self, va: int) -> int:
        return self.mem.aspace.translate_noperm(va)


@pytest.fixture
def harness():
    return Harness()


def make_harness(uarch):
    return Harness(uarch=uarch)
