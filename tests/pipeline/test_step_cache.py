"""The fast-path execution engine: equivalence, caching, invalidation.

The step cache (compiled ``(pc, privilege)`` thunks) and the naive
interpreter must be indistinguishable to everything architectural and
everything the paper measures: cycles, PMCs, speculation episodes.
These tests pin that equivalence at CPU level and the cache-coherence
rules (``invalidate_code`` must drop step/decode/transient entries and
the µop-cache windows they fed).
"""

import pytest

from repro.errors import HaltRequested
from repro.isa import Assembler, Cond, Reg
from repro.memory import MemorySystem
from repro.params import PAGE_SIZE
from repro.pipeline import CPU, ZEN2

CODE = 0x0000_0010_0000
DATA = 0x0000_0200_0000
STACK = 0x0000_7FF0_0000


class Twin:
    """One CPU per engine, same program, same inputs."""

    def __init__(self, fastpath: bool):
        self.mem = MemorySystem(128 << 20, fastpath=fastpath)
        self.cpu = CPU(ZEN2, self.mem, fastpath=fastpath)
        self.cpu.record_episodes = True
        self.mem.map_anonymous(STACK - 16 * PAGE_SIZE, 16 * PAGE_SIZE,
                               user=True, nx=True)
        self.cpu.state.write(Reg.RSP, STACK)

    def load_and_run(self, asm: Assembler, **attrs):
        self.mem.load_image(asm.image(), user=True, **attrs)
        self.run()

    def run(self, pc: int = CODE):
        try:
            self.cpu.run(pc, max_instructions=200_000)
        except HaltRequested:
            return
        raise AssertionError("program did not halt")


def branchy_program(iters: int = 300) -> Assembler:
    """Data-dependent branches: mispredicts, Spectre windows, episodes."""
    asm = Assembler(CODE)
    asm.mov_ri(Reg.RAX, 0x9E3779B97F4A7C15)
    asm.mov_ri(Reg.RBX, DATA)
    asm.mov_ri(Reg.RCX, iters)
    asm.label("loop")
    asm.mov_rr(Reg.RDX, Reg.RAX)
    asm.shl_ri(Reg.RDX, 13)
    asm.xor_rr(Reg.RAX, Reg.RDX)
    asm.mov_rr(Reg.RDX, Reg.RAX)
    asm.shr_ri(Reg.RDX, 7)
    asm.xor_rr(Reg.RAX, Reg.RDX)
    asm.mov_rr(Reg.RDX, Reg.RAX)
    asm.and_ri(Reg.RDX, 1)
    asm.cmp_ri(Reg.RDX, 0)
    asm.jcc(Cond.E, "skip")
    asm.store(Reg.RBX, 0, Reg.RAX)
    asm.load(Reg.RSI, Reg.RBX, 0)
    asm.label("skip")
    asm.call("leaf")
    asm.sub_ri(Reg.RCX, 1)
    asm.jcc(Cond.NE, "loop")
    asm.hlt()
    asm.label("leaf")
    asm.add_ri(Reg.RDI, 1)
    asm.ret()
    return asm


class TestEngineEquivalence:
    def test_identical_cycles_pmcs_and_episodes(self):
        slow, fast = Twin(fastpath=False), Twin(fastpath=True)
        for twin in (slow, fast):
            twin.mem.map_anonymous(DATA, PAGE_SIZE, user=True)
            twin.load_and_run(branchy_program())
        assert fast.cpu.cycles == slow.cpu.cycles
        assert fast.cpu.pmc.snapshot() == slow.cpu.pmc.snapshot()
        assert fast.cpu.episodes == slow.cpu.episodes
        for r in Reg:
            assert fast.cpu.state.read(r) == slow.cpu.state.read(r), r

    def test_mispredicts_actually_happened(self):
        fast = Twin(fastpath=True)
        fast.mem.map_anonymous(DATA, PAGE_SIZE, user=True)
        fast.load_and_run(branchy_program())
        assert fast.cpu.pmc.read("branch_mispredict") > 10


class TestStepCache:
    def test_cache_fills_after_warm_execution(self):
        fast = Twin(fastpath=True)
        asm = Assembler(CODE)
        asm.mov_ri(Reg.RCX, 3)
        asm.label("loop")
        asm.sub_ri(Reg.RCX, 1)
        asm.jcc(Cond.NE, "loop")
        asm.hlt()
        fast.load_and_run(asm)
        # Every revisited pc got a compiled thunk (HLT traps out before
        # its thunk would run a second time, but it compiles too).
        assert len(fast.cpu._step_cache_user) >= 3

    def test_disabled_engine_compiles_nothing(self):
        slow = Twin(fastpath=False)
        asm = Assembler(CODE)
        asm.mov_ri(Reg.RAX, 5)
        asm.hlt()
        slow.load_and_run(asm)
        assert not slow.cpu._step_cache_user
        assert slow.cpu.state.read(Reg.RAX) == 5

    def test_invalidate_drops_compiled_thunks(self):
        fast = Twin(fastpath=True)
        asm = Assembler(CODE)
        asm.mov_ri(Reg.RAX, 1)
        asm.hlt()
        fast.load_and_run(asm)
        assert CODE in fast.cpu._step_cache_user
        fast.cpu.invalidate_code(CODE, CODE + 16)
        assert CODE not in fast.cpu._step_cache_user
        assert CODE not in fast.cpu._decode_cache

    def test_self_modifying_code_reexecutes(self):
        fast = Twin(fastpath=True)
        asm = Assembler(CODE)
        asm.mov_ri(Reg.RAX, 1)
        asm.hlt()
        fast.load_and_run(asm)
        assert fast.cpu.state.read(Reg.RAX) == 1
        pa = fast.mem.aspace.translate_noperm(CODE)
        fast.mem.phys.write(pa + 2, (77).to_bytes(8, "little"))
        fast.cpu.invalidate_code(CODE, CODE + 16)
        fast.run()
        assert fast.cpu.state.read(Reg.RAX) == 77

    def test_invalidate_flushes_uop_windows(self):
        fast = Twin(fastpath=True)
        asm = Assembler(CODE)
        asm.mov_ri(Reg.RCX, 2)
        asm.label("loop")
        asm.nop_sled(32)
        asm.sub_ri(Reg.RCX, 1)
        asm.jcc(Cond.NE, "loop")
        asm.hlt()
        fast.load_and_run(asm)
        assert fast.cpu.uopcache.lookup(CODE)
        fast.cpu.invalidate_code(CODE, CODE + 64)
        assert not fast.cpu.uopcache.lookup(CODE)

    def test_invalidate_reaches_back_across_page_boundary(self):
        """An instruction starting on the previous page whose bytes
        spill into the invalidated range must be dropped too."""
        fast = Twin(fastpath=True)
        straddle = CODE + PAGE_SIZE - 4   # 10-byte mov crosses the page
        asm = Assembler(straddle)
        asm.mov_ri(Reg.RAX, 0xAB)
        asm.hlt()
        fast.mem.load_image(asm.image(), user=True)
        fast.run(straddle)
        assert straddle in fast.cpu._step_cache_user
        fast.cpu.invalidate_code(CODE + PAGE_SIZE, CODE + PAGE_SIZE + 8)
        assert straddle not in fast.cpu._step_cache_user


class TestL1MissCounting:
    """Satellite: the shared L1-miss heuristic (latency >= L2 latency).

    Pins the current counting behaviour for both cache levels on both
    engines: the first touch of a line is a miss, re-touches are hits.
    """

    @pytest.mark.parametrize("fastpath", [False, True])
    def test_l1d_miss_counted_once_per_cold_line(self, fastpath):
        twin = Twin(fastpath=fastpath)
        twin.mem.map_anonymous(DATA, PAGE_SIZE, user=True)
        asm = Assembler(CODE)
        asm.mov_ri(Reg.RBX, DATA)
        asm.load(Reg.RAX, Reg.RBX, 0)
        asm.load(Reg.RDX, Reg.RBX, 0)
        asm.hlt()
        twin.load_and_run(asm)
        assert twin.cpu.pmc.read("l1d_access") == 2
        assert twin.cpu.pmc.read("l1d_miss") == 1

    @pytest.mark.parametrize("fastpath", [False, True])
    def test_l1i_miss_counted_once_per_cold_line(self, fastpath):
        twin = Twin(fastpath=fastpath)
        asm = Assembler(CODE)   # ~16 bytes: one cache line of code
        asm.mov_ri(Reg.RAX, 1)
        asm.mov_ri(Reg.RDX, 2)
        asm.hlt()
        twin.load_and_run(asm)
        assert twin.cpu.pmc.read("l1i_miss") == 1
        assert twin.cpu.pmc.read("l1i_access") == \
            twin.cpu.pmc.read("instructions")

    def test_threshold_is_l2_latency(self):
        twin = Twin(fastpath=True)
        assert twin.cpu._l1_miss_threshold == \
            twin.mem.hier.params.l2_latency
