"""Microarchitecture configs: the phantom latency race per model."""

import pytest

from repro.pipeline import (ALL_MICROARCHES, AMD_MICROARCHES,
                            INTEL_MICROARCHES, ZEN1, ZEN2, ZEN3, ZEN4,
                            by_name)


def test_eight_models():
    assert len(ALL_MICROARCHES) == 8
    assert len(AMD_MICROARCHES) == 4
    assert len(INTEL_MICROARCHES) == 4


def test_zen12_reach_execute():
    """Observation O3: only Zen 1 and Zen 2 lose the race to the decoder."""
    for uarch in (ZEN1, ZEN2):
        assert uarch.phantom_reaches_execute
        assert uarch.phantom_exec_uops >= 3  # enough for a P3 gadget

    for uarch in (ZEN3, ZEN4) + INTEL_MICROARCHES:
        assert not uarch.phantom_reaches_execute


def test_zen1_lacks_suppress_bit():
    assert not ZEN1.supports_suppress_bp_on_non_br
    assert ZEN2.supports_suppress_bp_on_non_br


def test_only_zen4_has_auto_ibrs():
    assert ZEN4.supports_auto_ibrs
    assert not any(u.supports_auto_ibrs
                   for u in ALL_MICROARCHES if u is not ZEN4)


def test_intel_privilege_separated_btb():
    for uarch in INTEL_MICROARCHES:
        assert uarch.btb.privilege_in_tag
        assert uarch.indirect_victim_opaque
    for uarch in AMD_MICROARCHES:
        assert not uarch.btb.privilege_in_tag


def test_zen3_zen4_share_functions():
    assert ZEN3.btb.tag_functions == ZEN4.btb.tag_functions
    assert ZEN1.btb.tag_functions == ZEN2.btb.tag_functions
    assert ZEN1.btb.tag_functions != ZEN3.btb.tag_functions


def test_by_name():
    assert by_name("zen 2") is ZEN2
    with pytest.raises(KeyError):
        by_name("zen 9")


def test_clock_frequencies_reasonable():
    for uarch in ALL_MICROARCHES:
        assert 2.0 < uarch.clock_ghz < 6.0
