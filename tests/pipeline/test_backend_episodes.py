"""Backend (execute-detected) speculation: ret mispredicts, nesting,
fences, store-buffer isolation."""

import pytest

from repro.isa import Assembler, BranchKind, Cond, Reg
from repro.params import PAGE_SIZE
from repro.pipeline import Reach, ZEN2

from .conftest import Harness, USER_CODE, USER_DATA


class TestReturnMisprediction:
    def test_rsb_mispredict_opens_window(self):
        """Overwrite the on-stack return address after the call: the RSB
        predicts the stale target, which executes transiently
        (ret2spec-style)."""
        harness = Harness(uarch=ZEN2)
        harness.mem.map_anonymous(USER_DATA, PAGE_SIZE, user=True)
        asm = Assembler(USER_CODE)
        asm.call("fn")
        asm.label("stale")          # RSB prediction: here
        asm.load(Reg.RBX, Reg.RCX)  # transient signal
        asm.hlt()
        asm.label("fn")
        # Overwrite [rsp] with 'real', then return.
        asm.mov_ri(Reg.RAX, 0)      # patched below
        slot = asm.pc - 8
        asm.store(Reg.RSP, 0, Reg.RAX)
        asm.ret()
        asm.label("real")
        asm.hlt()
        segment, symbols = asm.finish()
        data = bytearray(segment.data)
        data[slot - USER_CODE:slot - USER_CODE + 8] = \
            symbols["real"].to_bytes(8, "little")
        from repro.isa import Image, Segment
        image = Image()
        image.add(Segment(USER_CODE, bytes(data)), symbols)
        harness.mem.load_image(image, user=True)

        probe = USER_DATA + 0x200
        harness.cpu.state.write(Reg.RCX, probe)
        harness.run(USER_CODE)
        # Architecturally we ended at 'real'; transiently 'stale' ran.
        assert harness.mem.hier.data_cached(harness.pa(probe))
        assert harness.cpu.pmc.read("resteer_backend") >= 1


class TestWindowTermination:
    def build_v1(self, harness, *, insert=None):
        harness.mem.map_anonymous(USER_DATA, PAGE_SIZE, user=True)
        asm = Assembler(USER_CODE)
        asm.cmp_ri(Reg.RDI, 16)
        asm.jcc(Cond.AE, "out")
        if insert is not None:
            insert(asm)
        asm.add_rr(Reg.RSI, Reg.RDI)
        asm.load(Reg.RAX, Reg.RSI)
        asm.label("out")
        asm.hlt()
        harness.load(asm)
        harness.cpu.state.write(Reg.RDI, 0x800)
        harness.cpu.state.write(Reg.RSI, USER_DATA)

    def test_lfence_stops_the_window(self):
        """§8.2: lfence at the source of bad speculation blocks the
        transient load."""
        harness = Harness(uarch=ZEN2)
        self.build_v1(harness, insert=lambda asm: asm.lfence())
        harness.run(USER_CODE)
        assert not harness.mem.hier.data_cached(
            harness.pa(USER_DATA + 0x800))

    def test_without_lfence_window_leaks(self):
        harness = Harness(uarch=ZEN2)
        self.build_v1(harness)
        harness.run(USER_CODE)
        assert harness.mem.hier.data_cached(harness.pa(USER_DATA + 0x800))

    def test_window_bounded_by_uop_budget(self):
        """A long transient path stops at backend_window_uops."""
        harness = Harness(uarch=ZEN2)
        harness.mem.map_anonymous(USER_DATA, PAGE_SIZE, user=True)
        asm = Assembler(USER_CODE)
        asm.cmp_ri(Reg.RDI, 16)
        asm.jcc(Cond.AE, "out")
        for _ in range(harness.cpu.uarch.backend_window_uops + 8):
            asm.add_ri(Reg.RBX, 1)
        asm.load(Reg.RAX, Reg.RSI)   # beyond the window: never issues
        asm.label("out")
        asm.hlt()
        harness.load(asm)
        harness.cpu.state.write(Reg.RDI, 0x800)
        harness.cpu.state.write(Reg.RSI, USER_DATA)
        harness.run(USER_CODE)
        assert not harness.mem.hier.data_cached(harness.pa(USER_DATA))


class TestTransientIsolation:
    def test_transient_stores_never_commit(self):
        """Stores on the wrong path stay in the store buffer."""
        harness = Harness(uarch=ZEN2)
        harness.mem.map_anonymous(USER_DATA, PAGE_SIZE, user=True)
        asm = Assembler(USER_CODE)
        asm.cmp_ri(Reg.RDI, 16)
        asm.jcc(Cond.AE, "out")
        asm.mov_ri(Reg.RAX, 0xE1)
        asm.store(Reg.RSI, 0, Reg.RAX)
        asm.label("out")
        asm.hlt()
        harness.load(asm)
        harness.cpu.state.write(Reg.RDI, 99)   # out of bounds: taken
        harness.cpu.state.write(Reg.RSI, USER_DATA)
        harness.run(USER_CODE)
        value, _ = harness.mem.read_data(USER_DATA, 8, user_mode=True)
        assert value == 0

    def test_store_to_load_forwarding_in_window(self):
        """Within the window, a transient load sees the transient store
        (store-buffer forwarding) — but memory is untouched."""
        harness = Harness(uarch=ZEN2)
        harness.mem.map_anonymous(USER_DATA, 2 * PAGE_SIZE, user=True)
        asm = Assembler(USER_CODE)
        asm.cmp_ri(Reg.RDI, 16)
        asm.jcc(Cond.AE, "out")
        asm.mov_ri(Reg.RAX, 0x40)            # line offset to signal
        asm.store(Reg.RSI, 0, Reg.RAX)
        asm.load(Reg.RBX, Reg.RSI)           # forwarded: rbx = 0x40
        asm.add_rr(Reg.RDX, Reg.RBX)
        asm.loadb(Reg.R9, Reg.RDX)           # signal at USER_DATA+0x1040
        asm.label("out")
        asm.hlt()
        harness.load(asm)
        harness.cpu.state.write(Reg.RDI, 99)
        harness.cpu.state.write(Reg.RSI, USER_DATA)
        harness.cpu.state.write(Reg.RDX, USER_DATA + 0x1000)
        harness.run(USER_CODE)
        assert harness.mem.hier.data_cached(
            harness.pa(USER_DATA + 0x1040))

    def test_architectural_registers_unchanged(self):
        harness = Harness(uarch=ZEN2)
        harness.mem.map_anonymous(USER_DATA, PAGE_SIZE, user=True)
        asm = Assembler(USER_CODE)
        asm.cmp_ri(Reg.RDI, 16)
        asm.jcc(Cond.AE, "out")
        asm.mov_ri(Reg.R15, 0xBAD)
        asm.label("out")
        asm.hlt()
        harness.load(asm)
        harness.cpu.state.write(Reg.RDI, 99)
        harness.cpu.state.write(Reg.R15, 0x600D)
        harness.run(USER_CODE)
        assert harness.cpu.state.read(Reg.R15) == 0x600D


class TestNestedPhantom:
    def test_phantom_inside_spectre_window(self):
        """§7.4's composition: a type-confused prediction at a direct
        call inside a v1 window redirects with the *transient* register
        state."""
        harness = Harness(uarch=ZEN2)
        harness.mem.map_anonymous(USER_DATA, 2 * PAGE_SIZE, user=True)
        gadget = 0x0000_0000_0077_0000
        gasm = Assembler(gadget)
        gasm.shl_ri(Reg.RDX, 6)
        gasm.add_rr(Reg.RDX, Reg.RSI)
        gasm.loadb(Reg.R9, Reg.RDX)
        gasm.ret()
        harness.load(gasm)

        asm = Assembler(USER_CODE)
        asm.cmp_ri(Reg.RDI, 16)
        asm.jcc(Cond.AE, "out")
        asm.add_rr(Reg.RCX, Reg.RDI)
        asm.loadb(Reg.RDX, Reg.RCX)        # rdx = secret byte (transient)
        asm.label("call_site")
        asm.call("helper")
        asm.label("out")
        asm.hlt()
        asm.label("helper")
        asm.ret()
        symbols = harness.load(asm)

        # Secret byte 0x2A at USER_DATA+0x900 (out of bounds).
        harness.mem.phys.write(harness.pa(USER_DATA + 0x900), b"\x2a")
        harness.cpu.bpu.btb.train(symbols["call_site"],
                                  BranchKind.INDIRECT, gadget,
                                  kernel_mode=False)
        harness.cpu.state.write(Reg.RDI, 0x900)
        harness.cpu.state.write(Reg.RCX, USER_DATA)
        harness.cpu.state.write(Reg.RSI, USER_DATA + 0x1000)
        harness.run(USER_CODE)
        # Reload-buffer slot 0x2A was filled by the nested phantom.
        assert harness.mem.hier.data_cached(
            harness.pa(USER_DATA + 0x1000 + 0x2A * 64))
        nested = [e for e in harness.cpu.episodes if e.nested]
        assert nested and nested[0].reach is Reach.EXECUTE
