"""Performance counter bank."""

import pytest

from repro.pipeline import EVENTS, PMC


def test_counters_start_zero():
    pmc = PMC()
    for event in EVENTS:
        assert pmc.read(event) == 0


def test_add_and_read():
    pmc = PMC()
    pmc.add("op_cache_hit")
    pmc.add("op_cache_hit", 4)
    assert pmc.read("op_cache_hit") == 5


def test_unknown_event_rejected():
    pmc = PMC()
    with pytest.raises(KeyError):
        pmc.add("bogus_event")
    with pytest.raises(KeyError):
        pmc.read("bogus_event")


def test_sample_context_measures_delta():
    pmc = PMC()
    pmc.add("instructions", 100)
    with pmc.sample("instructions", "cycles") as sample:
        pmc.add("instructions", 7)
        pmc.add("cycles", 3)
    assert sample["instructions"] == 7
    assert sample["cycles"] == 3
    assert pmc.read("instructions") == 107


def test_snapshot_covers_all_events():
    pmc = PMC()
    pmc.add("syscalls")
    snap = pmc.snapshot()
    assert set(snap) == set(EVENTS)
    assert snap["syscalls"] == 1


def test_reset():
    pmc = PMC()
    pmc.add("branch_retired", 9)
    pmc.reset()
    assert pmc.read("branch_retired") == 0


def test_paper_event_names_present():
    """The counters the paper samples exist under their real names."""
    assert "op_cache_hit" in EVENTS
    assert "op_cache_miss" in EVENTS
    assert "de_dis_uops_from_decoder" in EVENTS


def test_sample_contexts_nest_independently():
    pmc = PMC()
    with pmc.sample("instructions") as outer:
        pmc.add("instructions", 2)
        with pmc.sample("instructions", "cycles") as inner:
            pmc.add("instructions", 5)
            pmc.add("cycles", 9)
        assert inner["instructions"] == 5
        assert inner["cycles"] == 9
        pmc.add("instructions", 1)
    assert outer["instructions"] == 8   # sees inner's additions too


def test_sample_records_delta_when_body_raises():
    pmc = PMC()
    try:
        with pmc.sample("instructions") as sample:
            pmc.add("instructions", 3)
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    # The generator-based contextmanager does not run past the yield on
    # an exception, so the delta dict stays empty rather than lying.
    assert sample == {}
    assert pmc.read("instructions") == 3
