"""Store-to-load forwarding inside transient windows.

Transient stores land in a private store buffer; transient loads must
see them the way hardware's store-buffer forwarding does:

* a load whose bytes are *fully contained* in a buffered store is
  forwarded from the buffer (any alignment inside the store);
* when several buffered stores contain the load, the **youngest** in
  program order wins — including a re-store to an old address, which
  moves that address to youngest;
* a load only *partially* overlapping buffered stores reads memory —
  the simulator does not merge buffer bytes with memory bytes (real
  store buffers stall such loads; the simplification is documented
  here and in docs/performance.md).
"""

import pytest

from repro.isa import Reg
from repro.memory import MemorySystem
from repro.params import PAGE_SIZE
from repro.pipeline import CPU, ZEN2
from repro.pipeline.cpu import _TransientState

DATA = 0x0000_0200_0000


@pytest.fixture(params=[False, True], ids=["slow", "fast"])
def setup(request):
    mem = MemorySystem(64 << 20, fastpath=request.param)
    cpu = CPU(ZEN2, mem, fastpath=request.param)
    mem.map_anonymous(DATA, PAGE_SIZE, user=True)
    mem.phys.write(mem.aspace.translate_noperm(DATA),
                   bytes(range(1, 65)))   # 0x01 0x02 ... 0x40
    transient = _TransientState(cpu, cpu.state.copy())
    return cpu, transient


class TestForwarding:
    def test_exact_match(self, setup):
        _, t = setup
        t.store(DATA, 8, 0x1122334455667788)
        assert t.load(DATA, 8) == 0x1122334455667788

    def test_contained_smaller_load(self, setup):
        _, t = setup
        t.store(DATA, 8, 0x1122334455667788)
        assert t.load(DATA, 1) == 0x88
        assert t.load(DATA + 3, 1) == 0x55
        assert t.load(DATA + 4, 4) == 0x11223344
        assert t.load(DATA + 6, 2) == 0x1122

    def test_youngest_store_wins(self, setup):
        _, t = setup
        t.store(DATA, 8, 0xAAAA_AAAA_AAAA_AAAA)
        t.store(DATA + 2, 2, 0xBBBB)
        # Both contain a 1-byte load at DATA+2; the later store wins.
        assert t.load(DATA + 2, 1) == 0xBB
        # Bytes outside the younger store still forward from the older.
        assert t.load(DATA, 2) == 0xAAAA

    def test_restore_moves_address_to_youngest(self, setup):
        _, t = setup
        t.store(DATA, 8, 0x1111_1111_1111_1111)
        t.store(DATA + 1, 2, 0x2222)
        t.store(DATA, 8, 0x3333_3333_3333_3333)   # re-store: now youngest
        assert t.load(DATA + 1, 1) == 0x33

    def test_partial_overlap_reads_memory(self, setup):
        _, t = setup
        t.store(DATA + 2, 4, 0xDEADBEEF)
        # 8-byte load at DATA overlaps the store but is not contained:
        # it reads the backing memory (0x01..0x08 little-endian).
        assert t.load(DATA, 8) == 0x0807060504030201

    def test_unrelated_load_reads_memory_and_counts(self, setup):
        cpu, t = setup
        t.store(DATA, 8, 0x1234)
        before = cpu.pmc.read("transient_load")
        assert t.load(DATA + 32, 4) == 0x24232221
        assert cpu.pmc.read("transient_load") == before + 1

    def test_forwarded_load_does_not_touch_memory(self, setup):
        cpu, t = setup
        t.store(DATA, 8, 0x42)
        before = cpu.pmc.read("transient_load")
        t.load(DATA, 8)
        assert cpu.pmc.read("transient_load") == before
