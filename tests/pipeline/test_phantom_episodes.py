"""Phantom speculation behaviour of the CPU.

These tests drive real training and victim code through the simulator
and then inspect microarchitectural state — they are the white-box
counterparts of the paper's observation channels.
"""

import pytest

from repro.isa import Assembler, BranchKind, Cond, Reg
from repro.params import PAGE_SIZE
from repro.pipeline import Reach, ZEN1, ZEN2, ZEN3, ZEN4

from .conftest import Harness, USER_CODE, USER_DATA

# User->user alias for the Zen 1/2 folding functions: flipping b12 and
# b24 together preserves every g_i.
ZEN12_USER_ALIAS = (1 << 12) | (1 << 24)

TRAIN_SRC = 0x0000_0040_1AC0
VICTIM_SRC = TRAIN_SRC ^ ZEN12_USER_ALIAS
TARGET = 0x0000_0066_0000
PROBE = USER_DATA + 0x1C0


def build_training(harness, *, target=TARGET):
    """Map and run: ``mov rax, target ; jmp rax`` with the jmp at
    TRAIN_SRC, target contains a load of [rcx] then hlt."""
    asm = Assembler(TRAIN_SRC - 10)
    asm.mov_ri(Reg.RAX, target)
    jmp_pc = asm.jmp_reg(Reg.RAX)
    assert jmp_pc == TRAIN_SRC
    harness.load(asm)

    tgt = Assembler(target)
    tgt.load(Reg.RBX, Reg.RCX)   # the transient-execution signal
    tgt.hlt()
    harness.load(tgt)

    harness.mem.map_anonymous(USER_DATA, PAGE_SIZE, user=True)
    harness.cpu.state.write(Reg.RCX, PROBE)
    harness.run(TRAIN_SRC - 10)


def build_victim(harness):
    """nop sled at the aliased source; no branch anywhere."""
    asm = Assembler(VICTIM_SRC - 6)
    asm.nop_sled(12)
    asm.hlt()
    harness.load(asm)


def run_victim(harness):
    # Reset the observation state the training polluted.
    harness.mem.clflush(PROBE)
    harness.mem.clflush(TARGET)
    harness.cpu.uopcache.invalidate_window(TARGET)
    harness.cpu.episodes.clear()
    harness.cpu.state.write(Reg.RCX, PROBE)
    harness.run(VICTIM_SRC - 6)


class TestPhantomOnNonBranch:
    """Training jmp*, victim non-branch (the headline Phantom case)."""

    @pytest.fixture(params=[ZEN1, ZEN2, ZEN3, ZEN4],
                    ids=lambda u: u.name)
    def trained(self, request):
        harness = Harness(uarch=request.param)
        build_training(harness)
        build_victim(harness)
        return harness

    def test_episode_detected_by_decoder(self, trained):
        run_victim(trained)
        episodes = [e for e in trained.cpu.episodes if e.frontend_resteer
                    and e.predicted_kind is BranchKind.INDIRECT]
        assert episodes, "no phantom episode triggered"
        episode = episodes[0]
        assert episode.actual_kind is BranchKind.NONE
        assert episode.target == TARGET
        assert episode.source_pc == VICTIM_SRC

    def test_transient_fetch_always(self, trained):
        """O1: the target enters the I-cache on every tested µarch."""
        run_victim(trained)
        assert trained.mem.hier.instr_cached(trained.pa(TARGET))

    def test_transient_decode_always(self, trained):
        """O2: the target enters the µop cache on every tested µarch."""
        run_victim(trained)
        assert trained.cpu.uopcache.lookup(TARGET)

    def test_transient_execute_only_zen12(self, trained):
        """O3: the load at the target fires on Zen 1/2 only."""
        run_victim(trained)
        probe_cached = trained.mem.hier.data_cached(trained.pa(PROBE))
        if trained.cpu.uarch.phantom_reaches_execute:
            assert probe_cached
        else:
            assert not probe_cached

    def test_architectural_state_untouched(self, trained):
        before = trained.cpu.state.read(Reg.RBX)
        run_victim(trained)
        assert trained.cpu.state.read(Reg.RBX) == before


class TestPhantomTargetConditions:
    def test_unmapped_target_no_signal(self):
        """Training toward an unmapped page: the trainer catches the
        architectural page fault (the paper's §6.2 technique), the BTB
        entry survives, and the phantom fetch leaves nothing behind."""
        from repro.errors import PageFault

        harness = Harness(uarch=ZEN2)
        unmapped = 0x0000_0077_0000
        asm = Assembler(TRAIN_SRC - 10)
        asm.mov_ri(Reg.RAX, unmapped)
        asm.jmp_reg(Reg.RAX)
        harness.load(asm)
        with pytest.raises(PageFault):
            harness.run(TRAIN_SRC - 10)
        assert harness.cpu.bpu.btb.lookup(TRAIN_SRC,
                                          kernel_mode=False) is not None
        build_victim(harness)
        harness.cpu.episodes.clear()
        harness.run(VICTIM_SRC - 6)
        episodes = [e for e in harness.cpu.episodes if e.frontend_resteer
                    and e.predicted_kind is BranchKind.INDIRECT]
        assert episodes and episodes[0].reach is Reach.NONE

    def test_nx_target_fetch_blocked(self):
        """P1's discriminator: NX targets never enter the I-cache."""
        harness = Harness(uarch=ZEN2)
        nx_target = 0x0000_0088_0000
        harness.mem.map_anonymous(nx_target, PAGE_SIZE, user=True, nx=True)
        build_victim(harness)
        harness.cpu.bpu.btb.train(VICTIM_SRC, BranchKind.INDIRECT,
                                  nx_target, kernel_mode=False)
        harness.cpu.episodes.clear()
        harness.run(VICTIM_SRC - 6)
        episode = [e for e in harness.cpu.episodes
                   if e.target == nx_target][0]
        assert episode.reach is Reach.NONE
        assert not harness.mem.hier.instr_cached(harness.pa(nx_target))


class TestTypeConfusionMatrixSamples:
    """Spot checks of asymmetric combinations (full matrix: benchmarks)."""

    def test_victim_direct_jmp_trained_indirect(self):
        """jmp victim with jmp* training: decoder detects the type
        mismatch; phantom reach applies."""
        harness = Harness(uarch=ZEN2)
        build_training(harness)
        asm = Assembler(VICTIM_SRC - 6)
        asm.nop_sled(6)
        asm.jmp("next")       # a real direct branch at VICTIM_SRC
        asm.label("next")
        asm.hlt()
        harness.load(asm)
        run_victim(harness)
        episodes = [e for e in harness.cpu.episodes
                    if e.source_pc == VICTIM_SRC and e.frontend_resteer]
        assert episodes
        assert episodes[0].actual_kind is BranchKind.DIRECT
        assert episodes[0].reach is Reach.EXECUTE

    def test_direct_jmp_displacement_mismatch(self):
        """Same-kind jmp with different displacement is also
        decoder-detectable (asymmetric displacement case)."""
        harness = Harness(uarch=ZEN3)
        # Train a direct jmp at TRAIN_SRC.
        asm = Assembler(TRAIN_SRC)
        asm.jmp(TRAIN_SRC + 0x800)
        harness.load(asm)
        cont = Assembler(TRAIN_SRC + 0x800)
        cont.hlt()
        harness.load(cont)
        harness.run(TRAIN_SRC)
        # Victim: jmp with a different displacement at the aliased pc.
        victim = TRAIN_SRC ^ 0x3000_0000  # user alias? must collide
        # Build a colliding address for zen3 functions instead:
        from repro.frontend import ZEN3_ALIAS_PATTERNS
        victim = (TRAIN_SRC ^ ZEN3_ALIAS_PATTERNS[0]
                  ^ ZEN3_ALIAS_PATTERNS[1])
        vasm = Assembler(victim)
        vasm.jmp(victim + 0x900)
        harness.load(vasm)
        vcont = Assembler(victim + 0x900)
        vcont.hlt()
        harness.load(vcont)
        harness.cpu.episodes.clear()
        harness.run(victim)
        episodes = [e for e in harness.cpu.episodes
                    if e.source_pc == victim and e.frontend_resteer]
        assert episodes, "displacement mismatch not detected"
        # Predicted target is PC-relative: victim + trained displacement.
        assert episodes[0].target == victim + 0x800
        # Phantom C' was transiently fetched.
        assert harness.mem.hier.instr_cached(harness.pa(victim + 0x800))

    def test_sls_on_untrained_ret(self):
        """Victim ret with no prediction: fall-through bytes are
        transiently fetched (straight-line speculation)."""
        harness = Harness(uarch=ZEN1)
        asm = Assembler(USER_CODE)
        asm.call("fn")
        asm.hlt()
        asm.label("fn")
        asm.ret()
        asm.label("after_ret")
        asm.nop_sled(16)
        asm.hlt()
        symbols = harness.load(asm)
        harness.run(USER_CODE)
        sls = [e for e in harness.cpu.episodes
               if e.source_pc == symbols["fn"]]
        assert sls
        assert sls[0].target == symbols["after_ret"]
        assert sls[0].reach >= Reach.FETCH


class TestBackendWindows:
    def test_spectre_v1_window(self):
        """Conditional predicted not-taken but actually taken: the
        fall-through (load) path runs transiently with the out-of-bounds
        index — the Listing 4 pattern."""
        harness = Harness(uarch=ZEN2)
        secret_page = USER_DATA + 0x10000
        harness.mem.map_anonymous(USER_DATA, PAGE_SIZE, user=True)
        harness.mem.map_anonymous(secret_page, PAGE_SIZE, user=True)

        asm = Assembler(USER_CODE)
        asm.cmp_ri(Reg.RDI, 16)
        asm.jcc(Cond.AE, "skip")
        asm.add_rr(Reg.RSI, Reg.RDI)
        asm.load(Reg.RAX, Reg.RSI)   # array[user_index]
        asm.label("skip")
        asm.hlt()
        harness.load(asm)

        # Out-of-bounds: rdi such that rsi+rdi lands in the secret page.
        harness.cpu.state.write(Reg.RDI, secret_page - USER_DATA)
        harness.cpu.state.write(Reg.RSI, USER_DATA)
        harness.run(USER_CODE)

        assert harness.mem.hier.data_cached(harness.pa(secret_page))
        assert harness.cpu.state.read(Reg.RAX) == 0  # not architectural
        assert harness.cpu.pmc.read("resteer_backend") == 1

    def test_in_bounds_no_window(self):
        harness = Harness(uarch=ZEN2)
        harness.mem.map_anonymous(USER_DATA, PAGE_SIZE, user=True)
        asm = Assembler(USER_CODE)
        asm.cmp_ri(Reg.RDI, 16)
        asm.jcc(Cond.AE, "skip")
        asm.add_rr(Reg.RSI, Reg.RDI)
        asm.load(Reg.RAX, Reg.RSI)
        asm.label("skip")
        asm.hlt()
        harness.load(asm)
        harness.cpu.state.write(Reg.RDI, 8)
        harness.cpu.state.write(Reg.RSI, USER_DATA)
        harness.run(USER_CODE)
        assert harness.cpu.pmc.read("resteer_backend") == 0

    def test_btb_injection_wrong_indirect_target(self):
        """Classic BTI: matching kinds, wrong target -> backend window
        transiently executes the injected target."""
        harness = Harness(uarch=ZEN2)
        gadget = 0x0000_0070_0000
        harness.mem.map_anonymous(USER_DATA, PAGE_SIZE, user=True)
        gasm = Assembler(gadget)
        gasm.load(Reg.RBX, Reg.RCX)
        gasm.hlt()
        harness.load(gasm)

        asm = Assembler(USER_CODE)
        asm.mov_ri(Reg.RAX, 0)
        slot = asm.pc - 8
        asm.jmp_reg(Reg.RAX)
        asm.label("legit")
        asm.hlt()
        segment, symbols = asm.finish()
        data = bytearray(segment.data)
        data[slot - USER_CODE:slot - USER_CODE + 8] = \
            symbols["legit"].to_bytes(8, "little")
        from repro.isa import Image, Segment
        image = Image()
        image.add(Segment(USER_CODE, bytes(data)), symbols)
        harness.mem.load_image(image, user=True)

        jmp_pc = slot + 8
        harness.cpu.bpu.btb.train(jmp_pc, BranchKind.INDIRECT, gadget,
                                  kernel_mode=False)
        harness.cpu.state.write(Reg.RCX, USER_DATA + 0x340)
        harness.run(USER_CODE)
        assert harness.mem.hier.data_cached(harness.pa(USER_DATA + 0x340))
        assert harness.cpu.pmc.read("resteer_backend") == 1


class TestMitigationMSRs:
    def test_suppress_bp_on_non_br_blocks_execute_only(self):
        """O4: with the MSR bit set, a phantom at a non-branch still
        fetches and decodes, but no longer executes (Zen 2)."""
        harness = Harness(uarch=ZEN2)
        harness.cpu.msr.suppress_bp_on_non_br = True
        build_training(harness)
        build_victim(harness)
        run_victim(harness)
        assert harness.mem.hier.instr_cached(harness.pa(TARGET))
        assert harness.cpu.uopcache.lookup(TARGET)
        assert not harness.mem.hier.data_cached(harness.pa(PROBE))

    def test_suppress_not_supported_on_zen1(self):
        """Zen 1 lacks the MSR: setting the bit changes nothing."""
        harness = Harness(uarch=ZEN1)
        harness.cpu.msr.suppress_bp_on_non_br = True
        build_training(harness)
        build_victim(harness)
        run_victim(harness)
        assert harness.mem.hier.data_cached(harness.pa(PROBE))

    def test_ibpb_blocks_everything(self):
        harness = Harness(uarch=ZEN2)
        build_training(harness)
        build_victim(harness)
        harness.cpu.bpu.ibpb()
        run_victim(harness)
        assert not [e for e in harness.cpu.episodes
                    if e.predicted_kind is BranchKind.INDIRECT]
