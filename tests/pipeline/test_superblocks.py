"""Superblock fusion: equivalence, lifecycle, and the escape hatch.

The superblock engine consumes straight-line runs in one fused call
behind a BTB entry guard.  It must be observably identical to the
per-step engines (architecture, cycles, PMCs, episodes), split/retire
around self-modifying writes, fall back when the instruction budget
cannot fit a whole block, and bail to the per-step path the moment a
BTB entry lands inside a fused range — phantom episodes included.
"""

import pytest

from repro.errors import HaltRequested, SimulationLimit
from repro.fastpath import ENV_VAR
from repro.isa import Assembler, BranchKind, Cond, Reg
from repro.memory import MemorySystem
from repro.params import PAGE_SIZE
from repro.pipeline import CPU, ZEN2

CODE = 0x0000_0010_0000
STACK = 0x0000_7FF0_0000


class Twin:
    """One CPU per engine configuration, same program, same inputs."""

    def __init__(self, *, fastpath: bool = True, superblocks: bool = True):
        self.mem = MemorySystem(128 << 20, fastpath=fastpath)
        self.cpu = CPU(ZEN2, self.mem, fastpath=fastpath,
                       superblocks=superblocks)
        self.cpu.record_episodes = True
        self.mem.map_anonymous(STACK - 16 * PAGE_SIZE, 16 * PAGE_SIZE,
                               user=True, nx=True)
        self.cpu.state.write(Reg.RSP, STACK)

    def load(self, asm: Assembler) -> None:
        self.mem.load_image(asm.image(), user=True)

    def run(self, pc: int = CODE, max_instructions: int = 200_000) -> None:
        try:
            self.cpu.run(pc, max_instructions=max_instructions)
        except HaltRequested:
            return
        raise AssertionError("program did not halt")

    def observables(self) -> tuple:
        return (self.cpu.cycles, self.cpu.pmc.snapshot(),
                self.cpu.episodes,
                tuple(self.cpu.state.read(r) for r in Reg))


def fused_loop(iters: int = 100, body: int = 8) -> Assembler:
    """A loop whose body is one long fusible straight-line run."""
    asm = Assembler(CODE)
    asm.mov_ri(Reg.RAX, 1)
    asm.mov_ri(Reg.RBX, 3)
    asm.mov_ri(Reg.RCX, iters)
    asm.label("loop")
    for _ in range(body):
        asm.add_rr(Reg.RAX, Reg.RBX)
        asm.xor_rr(Reg.RBX, Reg.RAX)
        asm.add_ri(Reg.RAX, 7)
    asm.sub_ri(Reg.RCX, 1)
    asm.jcc(Cond.NE, "loop")
    asm.hlt()
    return asm


def branchy(iters: int = 200) -> Assembler:
    """Data-dependent branches: mispredicts open transient windows."""
    asm = Assembler(CODE)
    asm.mov_ri(Reg.RAX, 0x9E3779B97F4A7C15)
    asm.mov_ri(Reg.RCX, iters)
    asm.label("loop")
    asm.mov_rr(Reg.RDX, Reg.RAX)
    asm.shl_ri(Reg.RDX, 13)
    asm.xor_rr(Reg.RAX, Reg.RDX)
    asm.mov_rr(Reg.RDX, Reg.RAX)
    asm.shr_ri(Reg.RDX, 7)
    asm.xor_rr(Reg.RAX, Reg.RDX)
    asm.mov_rr(Reg.RDX, Reg.RAX)
    asm.and_ri(Reg.RDX, 1)
    asm.cmp_ri(Reg.RDX, 0)
    asm.jcc(Cond.E, "skip")
    asm.add_ri(Reg.RBX, 1)
    asm.label("skip")
    asm.sub_ri(Reg.RCX, 1)
    asm.jcc(Cond.NE, "loop")
    asm.hlt()
    return asm


class TestEquivalence:
    @pytest.mark.parametrize("program", [fused_loop, branchy])
    def test_superblocks_match_both_other_engines(self, program):
        slow = Twin(fastpath=False)
        stepped = Twin(superblocks=False)
        fused = Twin(superblocks=True)
        for twin in (slow, stepped, fused):
            twin.load(program())
            twin.run()
        assert fused.observables() == stepped.observables()
        assert fused.observables() == slow.observables()
        assert fused.cpu.sb_compiled > 0
        assert fused.cpu.sb_fused_instructions >= \
            3 * fused.cpu.sb_compiled
        assert stepped.cpu.sb_compiled == 0
        assert slow.cpu.sb_compiled == 0

    def test_env_escape_hatch_disables_fusion(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "superblocks=0")
        # No explicit superblocks= argument: the flag must come from
        # the environment's selective syntax.
        mem = MemorySystem(128 << 20, fastpath=True)
        cpu = CPU(ZEN2, mem, fastpath=True)
        assert cpu._fastpath
        assert not cpu._superblocks
        mem.map_anonymous(STACK - 16 * PAGE_SIZE, 16 * PAGE_SIZE,
                          user=True, nx=True)
        cpu.state.write(Reg.RSP, STACK)
        mem.load_image(fused_loop(20).image(), user=True)
        with pytest.raises(HaltRequested):
            cpu.run(CODE, max_instructions=10_000)
        assert cpu.sb_compiled == 0
        assert cpu.tb_compiled == 0
        assert len(cpu._step_cache_user) > 0


class TestLifecycle:
    def test_midblock_write_retires_and_recompiles(self):
        fused = Twin()
        fused.load(fused_loop())
        fused.run()
        compiled = fused.cpu.sb_compiled
        heads = [head for head, entry in fused.cpu._sb_user.items()
                 if entry is not None]
        assert heads
        # Find an interior pc of a live block (indexed, not the head).
        interior = next(pc for pc, owners in fused.cpu._sb_index.items()
                        if any(not kernel and head != pc and head in heads
                               for kernel, head in owners))
        owner = next(head for kernel, head
                     in fused.cpu._sb_index[interior]
                     if not kernel and head in heads)
        fused.cpu.invalidate_code(interior, interior + 1)
        assert owner not in fused.cpu._sb_user
        assert fused.cpu.sb_invalidated > 0
        # Re-dispatch recompiles over whatever decodes survive, and the
        # rerun still matches the per-step engine exactly.  The stepped
        # twin gets the identical invalidation: dropping µop-cache
        # windows is cycle-visible, and both engines must pay it.
        stepped = Twin(superblocks=False)
        stepped.load(fused_loop())
        stepped.run()
        stepped.cpu.invalidate_code(interior, interior + 1)
        fused.run()
        stepped.run()
        assert fused.observables() == stepped.observables()
        assert fused.cpu.sb_compiled > compiled

    def test_remap_flushes_block_caches(self):
        fused = Twin()
        fused.load(fused_loop(50))
        fused.run()
        assert any(entry is not None
                   for entry in fused.cpu._sb_user.values())
        generation = fused.mem.aspace.generation
        fused.mem.map_anonymous(0x0000_0300_0000, PAGE_SIZE, user=True)
        assert fused.mem.aspace.generation != generation
        fused.run()            # first dispatch notices and clears
        assert fused.cpu._sb_gen == fused.mem.aspace.generation
        # Blocks recompiled under the new generation still agree.
        stepped = Twin(superblocks=False)
        stepped.load(fused_loop(50))
        stepped.run()
        stepped.run()
        assert fused.cpu.cycles == stepped.cpu.cycles
        assert fused.cpu.pmc.snapshot() == stepped.cpu.pmc.snapshot()

    def test_budget_smaller_than_block_still_exact(self):
        for budget in (1, 2, 7):
            fused = Twin()
            fused.load(fused_loop())
            fused.run()        # warm + compile
            stepped = Twin(superblocks=False)
            stepped.load(fused_loop())
            stepped.run()
            for twin in (fused, stepped):
                with pytest.raises(SimulationLimit):
                    twin.cpu.run(CODE, max_instructions=budget)
            assert fused.cpu.pmc.read("instructions") == \
                stepped.cpu.pmc.read("instructions")
            assert fused.cpu.pc == stepped.cpu.pc
            assert fused.cpu.cycles == stepped.cpu.cycles


class TestProbeGuard:
    def test_btb_entry_inside_block_bails_to_step_path(self):
        """An aliasing BTB entry landing mid-block must force the
        per-step path, which performs the phantom episode — fused and
        stepped engines stay identical through it."""
        fused = Twin()
        stepped = Twin(superblocks=False)
        slow = Twin(fastpath=False)
        twins = (fused, stepped, slow)
        for twin in twins:
            twin.load(fused_loop())
            twin.run()
        heads = [head for head, entry in fused.cpu._sb_user.items()
                 if entry is not None]
        interior = next(pc for pc, owners in fused.cpu._sb_index.items()
                        if any(not kernel and head != pc and head in heads
                               for kernel, head in owners))
        bails = fused.cpu.sb_probe_bails
        for twin in twins:
            # Train a jump "at" a straight-line pc: the decoder will
            # detect the disagreement (Phantom's trigger condition).
            twin.cpu.bpu.btb.train(interior, BranchKind.DIRECT,
                                   CODE, kernel_mode=False)
            twin.run()
        assert fused.cpu.sb_probe_bails > bails
        assert fused.observables() == stepped.observables()
        assert fused.observables() == slow.observables()
        # The rerun actually tripped phantom machinery somewhere.
        assert any(e.frontend_resteer for e in fused.cpu.episodes)


class TestTransientBlocks:
    def test_compile_and_invalidate(self):
        fused = Twin()
        fused.load(branchy(400))
        fused.run()
        assert fused.cpu.tb_compiled > 0
        assert any(entry is not None
                   for entry in fused.cpu._tb_user.values())
        invalidated = fused.cpu.sb_invalidated
        fused.cpu.invalidate_code(CODE, CODE + PAGE_SIZE)
        assert not fused.cpu._tb_user
        assert fused.cpu.sb_invalidated > invalidated

    def test_disabled_superblocks_compile_no_transient_blocks(self):
        stepped = Twin(superblocks=False)
        stepped.load(branchy(400))
        stepped.run()
        assert stepped.cpu.tb_compiled == 0
