"""Address-arithmetic helpers in repro.params."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import params


class TestCanonical:
    def test_user_addresses_unchanged(self):
        assert params.canonical(0x7FFF_FFFF_FFFF) == 0x7FFF_FFFF_FFFF
        assert params.canonical(0) == 0

    def test_kernel_addresses_sign_extended(self):
        assert params.canonical(0x0000_8000_0000_0000) \
            == 0xFFFF_8000_0000_0000
        assert params.canonical(0xFFFF_FFFF_8000_0000) \
            == 0xFFFF_FFFF_8000_0000

    def test_is_canonical(self):
        assert params.is_canonical(0x7FFF_FFFF_FFFF)
        assert params.is_canonical(0xFFFF_8000_0000_0000)
        assert not params.is_canonical(0x0001_0000_0000_0000)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    @settings(max_examples=200)
    def test_canonical_idempotent(self, va):
        once = params.canonical(va)
        assert params.canonical(once) == once
        assert params.is_canonical(once)

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    @settings(max_examples=200)
    def test_canonical_preserves_low_bits(self, va):
        assert params.canonical(va) & params.VA_MASK == va


class TestClassifiers:
    def test_is_kernel_va(self):
        assert params.is_kernel_va(0xFFFF_FFFF_8000_0000)
        assert not params.is_kernel_va(0x0000_5555_0000_0000)

    def test_page_base(self):
        assert params.page_base(0x1234) == 0x1000
        assert params.page_base(0x1000) == 0x1000

    def test_line_base(self):
        assert params.line_base(0x12F) == 0x100
        assert params.line_base(0x140) == 0x140


class TestConstants:
    def test_search_spaces_match_paper(self):
        assert params.KERNEL_IMAGE_SLOTS == 488
        assert params.PHYSMAP_SLOTS == 25600

    def test_geometry(self):
        assert params.PAGE_SIZE == 1 << params.PAGE_SHIFT
        assert params.HUGE_PAGE_SIZE == 1 << params.HUGE_PAGE_SHIFT
        assert params.CACHE_LINE == 1 << params.CACHE_LINE_SHIFT
        assert params.FETCH_BLOCK == 32
