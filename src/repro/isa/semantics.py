"""Architectural execution semantics for the implemented x86-64 subset.

The pipeline backend calls :func:`execute` for each instruction once its
µops are scheduled; memory traffic is routed through caller-supplied
load/store callables so the cache hierarchy observes every access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..params import MASK64, canonical
from .instructions import Cond, Instruction, Mnemonic, Reg


@dataclass(slots=True)
class Flags:
    """The subset of RFLAGS the implemented instructions read or write."""

    zf: bool = False
    sf: bool = False
    cf: bool = False
    of: bool = False


@dataclass(slots=True)
class ArchState:
    """Architectural register state."""

    regs: list[int] = field(default_factory=lambda: [0] * 16)
    flags: Flags = field(default_factory=Flags)

    def read(self, reg: Reg) -> int:
        return self.regs[reg]

    def write(self, reg: Reg, value: int) -> None:
        self.regs[reg] = value & MASK64

    def copy(self) -> "ArchState":
        clone = ArchState(regs=list(self.regs), flags=Flags(
            self.flags.zf, self.flags.sf, self.flags.cf, self.flags.of))
        return clone


@dataclass(frozen=True, slots=True)
class MemAccess:
    """One memory access performed by an instruction."""

    addr: int
    size: int
    is_write: bool


@dataclass(slots=True)
class ExecResult:
    """Outcome of architecturally executing one instruction."""

    next_pc: int
    taken: bool | None = None          # branch direction (None: not a branch)
    target: int | None = None          # resolved branch target, if branch
    accesses: list[MemAccess] = field(default_factory=list)
    trap: str | None = None            # 'syscall' | 'sysret' | 'hlt' | 'ud2'


LoadFn = Callable[[int, int], int]
StoreFn = Callable[[int, int, int], None]


def _signed(value: int) -> int:
    value &= MASK64
    return value - (1 << 64) if value & (1 << 63) else value


def _set_logic_flags(flags: Flags, result: int) -> None:
    result &= MASK64
    flags.zf = result == 0
    flags.sf = bool(result >> 63)
    flags.cf = False
    flags.of = False


def _set_add_flags(flags: Flags, a: int, b: int, result: int) -> None:
    flags.zf = (result & MASK64) == 0
    flags.sf = bool((result >> 63) & 1)
    flags.cf = result > MASK64
    flags.of = (_signed(a) + _signed(b)) != _signed(result)


def _set_sub_flags(flags: Flags, a: int, b: int, result: int) -> None:
    flags.zf = (result & MASK64) == 0
    flags.sf = bool((result >> 63) & 1)
    flags.cf = (a & MASK64) < (b & MASK64)
    flags.of = (_signed(a) - _signed(b)) != _signed(result & MASK64)


def condition_met(cc: Cond, flags: Flags) -> bool:
    """Evaluate condition code *cc* against *flags*."""
    table = {
        Cond.O: flags.of,
        Cond.NO: not flags.of,
        Cond.B: flags.cf,
        Cond.AE: not flags.cf,
        Cond.E: flags.zf,
        Cond.NE: not flags.zf,
        Cond.BE: flags.cf or flags.zf,
        Cond.A: not flags.cf and not flags.zf,
        Cond.S: flags.sf,
        Cond.NS: not flags.sf,
        Cond.P: False,   # parity not modelled
        Cond.NP: True,
        Cond.L: flags.sf != flags.of,
        Cond.GE: flags.sf == flags.of,
        Cond.LE: flags.zf or (flags.sf != flags.of),
        Cond.G: not flags.zf and (flags.sf == flags.of),
    }
    return table[cc]


def execute(instr: Instruction, pc: int, state: ArchState,
            load: LoadFn, store: StoreFn,
            rdtsc: Callable[[], int] | None = None) -> ExecResult:
    """Execute *instr* at *pc*, mutating *state* and calling load/store.

    ``load(addr, size) -> value`` and ``store(addr, size, value)`` are
    supplied by the pipeline so memory effects traverse the cache
    hierarchy.  Returns the architectural :class:`ExecResult`.
    """
    m = instr.mnemonic
    flags = state.flags
    fall = (pc + instr.length) & MASK64
    res = ExecResult(next_pc=fall)

    def mem_addr() -> int:
        assert instr.base is not None
        return canonical(state.read(instr.base) + instr.disp)

    if m in (Mnemonic.NOP, Mnemonic.NOPL, Mnemonic.LFENCE, Mnemonic.MFENCE):
        return res
    if m in (Mnemonic.JMP, Mnemonic.JMP_SHORT):
        res.taken = True
        res.target = instr.target(pc)
        res.next_pc = res.target
        return res
    if m is Mnemonic.JMP_REG:
        res.taken = True
        res.target = canonical(state.read(instr.dest))
        res.next_pc = res.target
        return res
    if m is Mnemonic.JCC:
        res.taken = condition_met(instr.cc, flags)
        res.target = instr.target(pc)
        res.next_pc = res.target if res.taken else fall
        return res
    if m in (Mnemonic.CALL, Mnemonic.CALL_REG):
        rsp = (state.read(Reg.RSP) - 8) & MASK64
        state.write(Reg.RSP, rsp)
        store(rsp, 8, fall)
        res.accesses.append(MemAccess(rsp, 8, True))
        res.taken = True
        if m is Mnemonic.CALL:
            res.target = instr.target(pc)
        else:
            res.target = canonical(state.read(instr.dest))
        res.next_pc = res.target
        return res
    if m is Mnemonic.RET:
        rsp = state.read(Reg.RSP)
        ret_addr = canonical(load(rsp, 8))
        state.write(Reg.RSP, (rsp + 8) & MASK64)
        res.accesses.append(MemAccess(rsp, 8, False))
        res.taken = True
        res.target = ret_addr
        res.next_pc = ret_addr
        return res
    if m is Mnemonic.MOV_RI:
        state.write(instr.dest, instr.imm)
        return res
    if m is Mnemonic.MOV_RR:
        state.write(instr.dest, state.read(instr.src))
        return res
    if m is Mnemonic.MOV_RM:
        addr = mem_addr()
        state.write(instr.dest, load(addr, 8))
        res.accesses.append(MemAccess(addr, 8, False))
        return res
    if m is Mnemonic.MOVB_RM:
        # Modelled as a zero-extending byte load (movzx-style), which is
        # how the paper's disclosure gadgets use byte loads.
        addr = mem_addr()
        state.write(instr.dest, load(addr, 1) & 0xFF)
        res.accesses.append(MemAccess(addr, 1, False))
        return res
    if m is Mnemonic.MOV_MR:
        addr = mem_addr()
        store(addr, 8, state.read(instr.src))
        res.accesses.append(MemAccess(addr, 8, True))
        return res
    if m is Mnemonic.LEA:
        state.write(instr.dest, canonical(state.read(instr.base) + instr.disp))
        return res
    if m is Mnemonic.ADD_RI or m is Mnemonic.ADD_RR:
        a = state.read(instr.dest)
        b = instr.imm if m is Mnemonic.ADD_RI else state.read(instr.src)
        result = a + (b & MASK64)
        _set_add_flags(flags, a, b & MASK64, result)
        state.write(instr.dest, result)
        return res
    if m is Mnemonic.SUB_RI or m is Mnemonic.SUB_RR:
        a = state.read(instr.dest)
        b = instr.imm if m is Mnemonic.SUB_RI else state.read(instr.src)
        result = (a - (b & MASK64)) & MASK64
        _set_sub_flags(flags, a, b & MASK64, result)
        state.write(instr.dest, result)
        return res
    if m is Mnemonic.CMP_RI or m is Mnemonic.CMP_RR:
        a = state.read(instr.dest)
        b = instr.imm if m is Mnemonic.CMP_RI else state.read(instr.src)
        result = (a - (b & MASK64)) & MASK64
        _set_sub_flags(flags, a, b & MASK64, result)
        return res
    if m is Mnemonic.TEST_RR:
        _set_logic_flags(flags, state.read(instr.dest)
                         & state.read(instr.src))
        return res
    if m is Mnemonic.INC:
        a = state.read(instr.dest)
        result = (a + 1) & MASK64
        # inc preserves CF, updates the rest like add.
        carry = flags.cf
        _set_add_flags(flags, a, 1, a + 1)
        flags.cf = carry
        state.write(instr.dest, result)
        return res
    if m is Mnemonic.DEC:
        a = state.read(instr.dest)
        result = (a - 1) & MASK64
        carry = flags.cf
        _set_sub_flags(flags, a, 1, result)
        flags.cf = carry
        state.write(instr.dest, result)
        return res
    if m is Mnemonic.NEG:
        a = state.read(instr.dest)
        result = (-a) & MASK64
        _set_sub_flags(flags, 0, a, result)
        flags.cf = a != 0
        state.write(instr.dest, result)
        return res
    if m is Mnemonic.NOT:
        state.write(instr.dest, ~state.read(instr.dest))
        return res   # not touches no flags
    if m is Mnemonic.IMUL_RR:
        a = _signed(state.read(instr.dest))
        b = _signed(state.read(instr.src))
        product = a * b
        result = product & MASK64
        overflow = product != _signed(result)
        flags.cf = flags.of = overflow
        # zf/sf are architecturally undefined after imul; we model them
        # from the truncated result for determinism.
        flags.zf = result == 0
        flags.sf = bool(result >> 63)
        state.write(instr.dest, result)
        return res
    if m is Mnemonic.XCHG_RR:
        a = state.read(instr.dest)
        state.write(instr.dest, state.read(instr.src))
        state.write(instr.src, a)
        return res
    if m is Mnemonic.CMOV:
        if condition_met(instr.cc, flags):
            state.write(instr.dest, state.read(instr.src))
        return res
    if m is Mnemonic.AND_RI:
        result = state.read(instr.dest) & (instr.imm & MASK64)
        _set_logic_flags(flags, result)
        state.write(instr.dest, result)
        return res
    if m is Mnemonic.XOR_RR:
        result = state.read(instr.dest) ^ state.read(instr.src)
        _set_logic_flags(flags, result)
        state.write(instr.dest, result)
        return res
    if m is Mnemonic.OR_RR:
        result = state.read(instr.dest) | state.read(instr.src)
        _set_logic_flags(flags, result)
        state.write(instr.dest, result)
        return res
    if m is Mnemonic.SHL_RI:
        result = (state.read(instr.dest) << instr.imm) & MASK64
        _set_logic_flags(flags, result)
        state.write(instr.dest, result)
        return res
    if m is Mnemonic.SHR_RI:
        result = state.read(instr.dest) >> instr.imm
        _set_logic_flags(flags, result)
        state.write(instr.dest, result)
        return res
    if m is Mnemonic.PUSH:
        rsp = (state.read(Reg.RSP) - 8) & MASK64
        state.write(Reg.RSP, rsp)
        store(rsp, 8, state.read(instr.dest))
        res.accesses.append(MemAccess(rsp, 8, True))
        return res
    if m is Mnemonic.POP:
        rsp = state.read(Reg.RSP)
        state.write(instr.dest, load(rsp, 8))
        state.write(Reg.RSP, (rsp + 8) & MASK64)
        res.accesses.append(MemAccess(rsp, 8, False))
        return res
    if m is Mnemonic.RDTSC:
        cycles = rdtsc() if rdtsc is not None else 0
        state.write(Reg.RAX, cycles & 0xFFFFFFFF)
        state.write(Reg.RDX, (cycles >> 32) & 0xFFFFFFFF)
        return res
    if m is Mnemonic.SYSCALL:
        res.trap = "syscall"
        return res
    if m is Mnemonic.SYSRET:
        res.trap = "sysret"
        return res
    if m is Mnemonic.HLT:
        res.trap = "hlt"
        return res
    if m is Mnemonic.UD2:
        res.trap = "ud2"
        return res
    raise AssertionError(f"unhandled mnemonic {m}")


#: Per-condition flag evaluators for compiled executors.  Must stay in
#: lock-step with :func:`condition_met` (P/NP: parity is not modelled).
_COND_EVAL: dict[Cond, Callable[[Flags], bool]] = {
    Cond.O: lambda f: f.of,
    Cond.NO: lambda f: not f.of,
    Cond.B: lambda f: f.cf,
    Cond.AE: lambda f: not f.cf,
    Cond.E: lambda f: f.zf,
    Cond.NE: lambda f: not f.zf,
    Cond.BE: lambda f: f.cf or f.zf,
    Cond.A: lambda f: not f.cf and not f.zf,
    Cond.S: lambda f: f.sf,
    Cond.NS: lambda f: not f.sf,
    Cond.P: lambda f: False,
    Cond.NP: lambda f: True,
    Cond.L: lambda f: f.sf != f.of,
    Cond.GE: lambda f: f.sf == f.of,
    Cond.LE: lambda f: f.zf or (f.sf != f.of),
    Cond.G: lambda f: not f.zf and (f.sf == f.of),
}

#: ``thunk(state, load, store, rdtsc) -> ExecResult``
ExecutorFn = Callable[
    [ArchState, LoadFn, StoreFn, "Callable[[], int] | None"], ExecResult]

_RAX = int(Reg.RAX)
_RDX = int(Reg.RDX)
_RSP = int(Reg.RSP)


def compile_executor(instr: Instruction, pc: int) -> ExecutorFn:
    """Specialise :func:`execute` for one decoded instruction at *pc*.

    Returns a thunk with the mnemonic dispatch, condition table, operand
    indices and address arithmetic resolved once at compile time.  The
    thunk mutates *state* and calls load/store exactly as ``execute``
    would and returns an equal :class:`ExecResult` — every register,
    flag, memory-access and trap effect is byte-identical, so the fast
    path stays architecturally invisible (pinned by
    ``tests/isa/test_compiled_semantics.py``).  A fresh ``ExecResult``
    is allocated per call: results outlive the next execution of the
    same pc (e.g. a backend-mispredict window re-running it
    transiently), so thunks must never reuse one.
    """
    m = instr.mnemonic
    fall = (pc + instr.length) & MASK64

    if m in (Mnemonic.NOP, Mnemonic.NOPL, Mnemonic.LFENCE, Mnemonic.MFENCE):
        def thunk(state, load, store, rdtsc):
            return ExecResult(next_pc=fall)
        return thunk
    if m in (Mnemonic.JMP, Mnemonic.JMP_SHORT):
        tgt = instr.target(pc)

        def thunk(state, load, store, rdtsc):
            return ExecResult(next_pc=tgt, taken=True, target=tgt)
        return thunk
    if m is Mnemonic.JMP_REG:
        d = int(instr.dest)

        def thunk(state, load, store, rdtsc):
            tgt = canonical(state.regs[d])
            return ExecResult(next_pc=tgt, taken=True, target=tgt)
        return thunk
    if m is Mnemonic.JCC:
        tgt = instr.target(pc)
        cond = _COND_EVAL[instr.cc]

        def thunk(state, load, store, rdtsc):
            taken = cond(state.flags)
            return ExecResult(next_pc=tgt if taken else fall,
                              taken=taken, target=tgt)
        return thunk
    if m in (Mnemonic.CALL, Mnemonic.CALL_REG):
        tgt = instr.target(pc) if m is Mnemonic.CALL else None
        d = None if instr.dest is None else int(instr.dest)

        def thunk(state, load, store, rdtsc):
            regs = state.regs
            rsp = (regs[_RSP] - 8) & MASK64
            regs[_RSP] = rsp
            store(rsp, 8, fall)
            target = tgt if tgt is not None else canonical(regs[d])
            return ExecResult(next_pc=target, taken=True, target=target,
                              accesses=[MemAccess(rsp, 8, True)])
        return thunk
    if m is Mnemonic.RET:
        def thunk(state, load, store, rdtsc):
            regs = state.regs
            rsp = regs[_RSP]
            ret_addr = canonical(load(rsp, 8))
            regs[_RSP] = (rsp + 8) & MASK64
            return ExecResult(next_pc=ret_addr, taken=True, target=ret_addr,
                              accesses=[MemAccess(rsp, 8, False)])
        return thunk
    if m is Mnemonic.MOV_RI:
        d = int(instr.dest)
        value = instr.imm & MASK64

        def thunk(state, load, store, rdtsc):
            state.regs[d] = value
            return ExecResult(next_pc=fall)
        return thunk
    if m is Mnemonic.MOV_RR:
        d = int(instr.dest)
        s = int(instr.src)

        def thunk(state, load, store, rdtsc):
            regs = state.regs
            regs[d] = regs[s]
            return ExecResult(next_pc=fall)
        return thunk
    if m is Mnemonic.MOV_RM:
        d = int(instr.dest)
        b = int(instr.base)
        disp = instr.disp

        def thunk(state, load, store, rdtsc):
            regs = state.regs
            addr = canonical(regs[b] + disp)
            regs[d] = load(addr, 8) & MASK64
            return ExecResult(next_pc=fall,
                              accesses=[MemAccess(addr, 8, False)])
        return thunk
    if m is Mnemonic.MOVB_RM:
        d = int(instr.dest)
        b = int(instr.base)
        disp = instr.disp

        def thunk(state, load, store, rdtsc):
            regs = state.regs
            addr = canonical(regs[b] + disp)
            regs[d] = load(addr, 1) & 0xFF
            return ExecResult(next_pc=fall,
                              accesses=[MemAccess(addr, 1, False)])
        return thunk
    if m is Mnemonic.MOV_MR:
        s = int(instr.src)
        b = int(instr.base)
        disp = instr.disp

        def thunk(state, load, store, rdtsc):
            regs = state.regs
            addr = canonical(regs[b] + disp)
            store(addr, 8, regs[s])
            return ExecResult(next_pc=fall,
                              accesses=[MemAccess(addr, 8, True)])
        return thunk
    if m is Mnemonic.LEA:
        d = int(instr.dest)
        b = int(instr.base)
        disp = instr.disp

        def thunk(state, load, store, rdtsc):
            regs = state.regs
            regs[d] = canonical(regs[b] + disp)
            return ExecResult(next_pc=fall)
        return thunk
    if m in (Mnemonic.ADD_RI, Mnemonic.ADD_RR):
        d = int(instr.dest)
        imm = None if m is Mnemonic.ADD_RR else instr.imm & MASK64
        s = None if instr.src is None else int(instr.src)

        def thunk(state, load, store, rdtsc):
            regs = state.regs
            a = regs[d]
            b = imm if imm is not None else regs[s]
            result = a + b
            _set_add_flags(state.flags, a, b, result)
            regs[d] = result & MASK64
            return ExecResult(next_pc=fall)
        return thunk
    if m in (Mnemonic.SUB_RI, Mnemonic.SUB_RR, Mnemonic.CMP_RI,
             Mnemonic.CMP_RR):
        d = int(instr.dest)
        imm = (None if m in (Mnemonic.SUB_RR, Mnemonic.CMP_RR)
               else instr.imm & MASK64)
        s = None if instr.src is None else int(instr.src)
        writes = m in (Mnemonic.SUB_RI, Mnemonic.SUB_RR)

        def thunk(state, load, store, rdtsc):
            regs = state.regs
            a = regs[d]
            b = imm if imm is not None else regs[s]
            result = (a - b) & MASK64
            _set_sub_flags(state.flags, a, b, result)
            if writes:
                regs[d] = result
            return ExecResult(next_pc=fall)
        return thunk
    if m is Mnemonic.TEST_RR:
        d = int(instr.dest)
        s = int(instr.src)

        def thunk(state, load, store, rdtsc):
            regs = state.regs
            _set_logic_flags(state.flags, regs[d] & regs[s])
            return ExecResult(next_pc=fall)
        return thunk
    if m is Mnemonic.INC:
        d = int(instr.dest)

        def thunk(state, load, store, rdtsc):
            regs = state.regs
            flags = state.flags
            a = regs[d]
            carry = flags.cf
            _set_add_flags(flags, a, 1, a + 1)
            flags.cf = carry
            regs[d] = (a + 1) & MASK64
            return ExecResult(next_pc=fall)
        return thunk
    if m is Mnemonic.DEC:
        d = int(instr.dest)

        def thunk(state, load, store, rdtsc):
            regs = state.regs
            flags = state.flags
            a = regs[d]
            result = (a - 1) & MASK64
            carry = flags.cf
            _set_sub_flags(flags, a, 1, result)
            flags.cf = carry
            regs[d] = result
            return ExecResult(next_pc=fall)
        return thunk
    if m is Mnemonic.NEG:
        d = int(instr.dest)

        def thunk(state, load, store, rdtsc):
            regs = state.regs
            flags = state.flags
            a = regs[d]
            result = (-a) & MASK64
            _set_sub_flags(flags, 0, a, result)
            flags.cf = a != 0
            regs[d] = result
            return ExecResult(next_pc=fall)
        return thunk
    if m is Mnemonic.NOT:
        d = int(instr.dest)

        def thunk(state, load, store, rdtsc):
            regs = state.regs
            regs[d] = ~regs[d] & MASK64
            return ExecResult(next_pc=fall)
        return thunk
    if m is Mnemonic.IMUL_RR:
        d = int(instr.dest)
        s = int(instr.src)

        def thunk(state, load, store, rdtsc):
            regs = state.regs
            flags = state.flags
            product = _signed(regs[d]) * _signed(regs[s])
            result = product & MASK64
            flags.cf = flags.of = product != _signed(result)
            flags.zf = result == 0
            flags.sf = bool(result >> 63)
            regs[d] = result
            return ExecResult(next_pc=fall)
        return thunk
    if m is Mnemonic.XCHG_RR:
        d = int(instr.dest)
        s = int(instr.src)

        def thunk(state, load, store, rdtsc):
            regs = state.regs
            a = regs[d]
            regs[d] = regs[s]
            regs[s] = a
            return ExecResult(next_pc=fall)
        return thunk
    if m is Mnemonic.CMOV:
        d = int(instr.dest)
        s = int(instr.src)
        cond = _COND_EVAL[instr.cc]

        def thunk(state, load, store, rdtsc):
            if cond(state.flags):
                regs = state.regs
                regs[d] = regs[s]
            return ExecResult(next_pc=fall)
        return thunk
    if m is Mnemonic.AND_RI:
        d = int(instr.dest)
        imm = instr.imm & MASK64

        def thunk(state, load, store, rdtsc):
            regs = state.regs
            result = regs[d] & imm
            _set_logic_flags(state.flags, result)
            regs[d] = result
            return ExecResult(next_pc=fall)
        return thunk
    if m in (Mnemonic.XOR_RR, Mnemonic.OR_RR):
        d = int(instr.dest)
        s = int(instr.src)
        is_xor = m is Mnemonic.XOR_RR

        def thunk(state, load, store, rdtsc):
            regs = state.regs
            result = regs[d] ^ regs[s] if is_xor else regs[d] | regs[s]
            _set_logic_flags(state.flags, result)
            regs[d] = result
            return ExecResult(next_pc=fall)
        return thunk
    if m in (Mnemonic.SHL_RI, Mnemonic.SHR_RI):
        d = int(instr.dest)
        shift = instr.imm
        left = m is Mnemonic.SHL_RI

        def thunk(state, load, store, rdtsc):
            regs = state.regs
            result = ((regs[d] << shift) & MASK64 if left
                      else regs[d] >> shift)
            _set_logic_flags(state.flags, result)
            regs[d] = result
            return ExecResult(next_pc=fall)
        return thunk
    if m is Mnemonic.PUSH:
        d = int(instr.dest)

        def thunk(state, load, store, rdtsc):
            regs = state.regs
            rsp = (regs[_RSP] - 8) & MASK64
            regs[_RSP] = rsp
            store(rsp, 8, regs[d])
            return ExecResult(next_pc=fall,
                              accesses=[MemAccess(rsp, 8, True)])
        return thunk
    if m is Mnemonic.POP:
        d = int(instr.dest)

        def thunk(state, load, store, rdtsc):
            regs = state.regs
            rsp = regs[_RSP]
            regs[d] = load(rsp, 8) & MASK64
            regs[_RSP] = (rsp + 8) & MASK64
            return ExecResult(next_pc=fall,
                              accesses=[MemAccess(rsp, 8, False)])
        return thunk
    if m is Mnemonic.RDTSC:
        def thunk(state, load, store, rdtsc):
            cycles = rdtsc() if rdtsc is not None else 0
            regs = state.regs
            regs[_RAX] = cycles & 0xFFFFFFFF
            regs[_RDX] = (cycles >> 32) & 0xFFFFFFFF
            return ExecResult(next_pc=fall)
        return thunk
    if m in (Mnemonic.SYSCALL, Mnemonic.SYSRET, Mnemonic.HLT, Mnemonic.UD2):
        trap = {Mnemonic.SYSCALL: "syscall", Mnemonic.SYSRET: "sysret",
                Mnemonic.HLT: "hlt", Mnemonic.UD2: "ud2"}[m]

        def thunk(state, load, store, rdtsc):
            return ExecResult(next_pc=fall, trap=trap)
        return thunk
    raise AssertionError(f"unhandled mnemonic {m}")


# ---------------------------------------------------------------------------
# superblock compilation
# ---------------------------------------------------------------------------

#: Mnemonics a superblock may fuse: straight-line architectural effects
#: only.  Branches terminate blocks (they resolve/train the BPU), traps
#: and serializing fences end them (they leave the straight-line world),
#: and RDTSC is excluded because it observes ``cycles`` mid-block while
#: the block batches its cycle accounting.
SUPERBLOCK_FUSIBLE = frozenset((
    Mnemonic.NOP, Mnemonic.NOPL, Mnemonic.MOV_RI, Mnemonic.MOV_RR,
    Mnemonic.MOV_RM, Mnemonic.MOVB_RM, Mnemonic.MOV_MR, Mnemonic.LEA,
    Mnemonic.ADD_RI, Mnemonic.ADD_RR, Mnemonic.SUB_RI, Mnemonic.SUB_RR,
    Mnemonic.CMP_RI, Mnemonic.CMP_RR, Mnemonic.TEST_RR, Mnemonic.INC,
    Mnemonic.DEC, Mnemonic.NEG, Mnemonic.NOT, Mnemonic.IMUL_RR,
    Mnemonic.XCHG_RR, Mnemonic.CMOV, Mnemonic.AND_RI, Mnemonic.XOR_RR,
    Mnemonic.OR_RR, Mnemonic.SHL_RI, Mnemonic.SHR_RI, Mnemonic.PUSH,
    Mnemonic.POP,
))


def superblock_fusible(instr: Instruction) -> bool:
    """True when *instr* can be fused into the body of a superblock."""
    return instr.mnemonic in SUPERBLOCK_FUSIBLE


#: Names the generated superblock source expects in its globals —
#: callers weaving :func:`superblock_arch_lines` into their own
#: generated functions (the CPU's superblock engine) must merge these
#: into the exec namespace.  Shared read-only by every generated
#: function.
SUPERBLOCK_HELPERS = {
    "MASK64": MASK64,
    "canonical": canonical,
    "_af": _set_add_flags,
    "_sf": _set_sub_flags,
    "_sg": _signed,
}

#: Python literal of 2**63, used for the inline sign-flag test
#: (``value >= _B63`` is bit 63 for already-masked values).
_B63 = "0x8000000000000000"


def _logic_flag_lines(result: str) -> list[str]:
    """Inline equivalent of :func:`_set_logic_flags` for a masked value."""
    return [
        f"flags.zf = {result} == 0",
        f"flags.sf = {result} >= {_B63}",
        "flags.cf = False",
        "flags.of = False",
    ]


def superblock_arch_lines(instr: Instruction, pc: int, index: int,
                          consts: dict) -> list[str]:
    """Source lines for the architectural effect of one fused instruction.

    The emitted statements are the body :func:`compile_executor` would
    run for *instr*, with operand indices and immediates baked in as
    literals.  They assume local names ``regs``, ``flags``, ``load``,
    ``store`` and the helper globals of ``_SB_GLOBALS``; per-instruction
    constants that cannot be literals (condition evaluators) are added
    to *consts* under an index-suffixed name.  Ordering of register
    writes relative to loads/stores matches the executor thunks exactly,
    so a fault mid-instruction leaves identical architectural state.
    """
    m = instr.mnemonic
    d = None if instr.dest is None else int(instr.dest)
    s = None if instr.src is None else int(instr.src)
    b = None if instr.base is None else int(instr.base)
    disp = instr.disp

    if m in (Mnemonic.NOP, Mnemonic.NOPL):
        return []
    if m is Mnemonic.MOV_RI:
        return [f"regs[{d}] = {instr.imm & MASK64:#x}"]
    if m is Mnemonic.MOV_RR:
        return [f"regs[{d}] = regs[{s}]"]
    if m is Mnemonic.MOV_RM:
        return [f"regs[{d}] = load(canonical(regs[{b}] + {disp}), 8) "
                f"& MASK64"]
    if m is Mnemonic.MOVB_RM:
        return [f"regs[{d}] = load(canonical(regs[{b}] + {disp}), 1) "
                f"& 0xFF"]
    if m is Mnemonic.MOV_MR:
        return [f"store(canonical(regs[{b}] + {disp}), 8, regs[{s}])"]
    if m is Mnemonic.LEA:
        return [f"regs[{d}] = canonical(regs[{b}] + {disp})"]
    if m in (Mnemonic.ADD_RI, Mnemonic.ADD_RR):
        src = f"{instr.imm & MASK64:#x}" if m is Mnemonic.ADD_RI \
            else f"regs[{s}]"
        return [
            f"_x = regs[{d}]",
            f"_r = _x + {src}",
            f"_af(flags, _x, {src}, _r)",
            f"regs[{d}] = _r & MASK64",
        ]
    if m in (Mnemonic.SUB_RI, Mnemonic.SUB_RR, Mnemonic.CMP_RI,
             Mnemonic.CMP_RR):
        src = f"{instr.imm & MASK64:#x}" \
            if m in (Mnemonic.SUB_RI, Mnemonic.CMP_RI) else f"regs[{s}]"
        lines = [
            f"_x = regs[{d}]",
            f"_r = (_x - {src}) & MASK64",
            f"_sf(flags, _x, {src}, _r)",
        ]
        if m in (Mnemonic.SUB_RI, Mnemonic.SUB_RR):
            lines.append(f"regs[{d}] = _r")
        return lines
    if m is Mnemonic.TEST_RR:
        return [f"_r = regs[{d}] & regs[{s}]"] + _logic_flag_lines("_r")
    if m is Mnemonic.INC:
        return [
            f"_x = regs[{d}]",
            "_c = flags.cf",
            "_af(flags, _x, 1, _x + 1)",
            "flags.cf = _c",
            f"regs[{d}] = (_x + 1) & MASK64",
        ]
    if m is Mnemonic.DEC:
        return [
            f"_x = regs[{d}]",
            "_r = (_x - 1) & MASK64",
            "_c = flags.cf",
            "_sf(flags, _x, 1, _r)",
            "flags.cf = _c",
            f"regs[{d}] = _r",
        ]
    if m is Mnemonic.NEG:
        return [
            f"_x = regs[{d}]",
            "_r = (-_x) & MASK64",
            "_sf(flags, 0, _x, _r)",
            "flags.cf = _x != 0",
            f"regs[{d}] = _r",
        ]
    if m is Mnemonic.NOT:
        return [f"regs[{d}] = ~regs[{d}] & MASK64"]
    if m is Mnemonic.IMUL_RR:
        return [
            f"_p = _sg(regs[{d}]) * _sg(regs[{s}])",
            "_r = _p & MASK64",
            "flags.cf = flags.of = _p != _sg(_r)",
            "flags.zf = _r == 0",
            f"flags.sf = _r >= {_B63}",
            f"regs[{d}] = _r",
        ]
    if m is Mnemonic.XCHG_RR:
        return [
            f"_x = regs[{d}]",
            f"regs[{d}] = regs[{s}]",
            f"regs[{s}] = _x",
        ]
    if m is Mnemonic.CMOV:
        cond_name = f"_cc{index}"
        consts[cond_name] = _COND_EVAL[instr.cc]
        return [f"if {cond_name}(flags):",
                f"    regs[{d}] = regs[{s}]"]
    if m is Mnemonic.AND_RI:
        return [f"_r = regs[{d}] & {instr.imm & MASK64:#x}"] \
            + _logic_flag_lines("_r") + [f"regs[{d}] = _r"]
    if m in (Mnemonic.XOR_RR, Mnemonic.OR_RR):
        op = "^" if m is Mnemonic.XOR_RR else "|"
        return [f"_r = regs[{d}] {op} regs[{s}]"] \
            + _logic_flag_lines("_r") + [f"regs[{d}] = _r"]
    if m is Mnemonic.SHL_RI:
        return [f"_r = (regs[{d}] << {instr.imm}) & MASK64"] \
            + _logic_flag_lines("_r") + [f"regs[{d}] = _r"]
    if m is Mnemonic.SHR_RI:
        return [f"_r = regs[{d}] >> {instr.imm}"] \
            + _logic_flag_lines("_r") + [f"regs[{d}] = _r"]
    if m is Mnemonic.PUSH:
        return [
            f"_a = (regs[{_RSP}] - 8) & MASK64",
            f"regs[{_RSP}] = _a",
            f"store(_a, 8, regs[{d}])",
        ]
    if m is Mnemonic.POP:
        return [
            f"_a = regs[{_RSP}]",
            f"regs[{d}] = load(_a, 8) & MASK64",
            f"regs[{_RSP}] = (_a + 8) & MASK64",
        ]
    raise AssertionError(f"mnemonic {m} is not superblock-fusible")


#: ``fn(state, load, store) -> next_pc``
SuperblockFn = Callable[[ArchState, LoadFn, StoreFn], int]


def compile_superblock(instrs: list[tuple[int, Instruction]]) -> SuperblockFn:
    """Fuse a straight-line run of decoded instructions into one closure.

    *instrs* is a list of ``(pc, instruction)`` pairs forming a
    contiguous fall-through run; every instruction must satisfy
    :func:`superblock_fusible`.  The returned function applies all
    architectural effects in order — register writes, flag updates and
    load/store traffic byte-identical to executing the thunks of
    :func:`compile_executor` one by one (pinned by
    ``tests/isa/test_superblock_semantics.py``) — and returns the
    canonical fall-through pc of the final instruction.  Branch
    direction, trap and ``accesses`` bookkeeping are not produced:
    fusible instructions have none.

    The pipeline's superblock engine (``pipeline/cpu.py``) uses
    :func:`superblock_arch_lines` directly to weave these effects with
    the frontend accounting; this entry point is the pure-architecture
    fusion, used by its unit tests and by callers that only need
    register semantics.
    """
    if not instrs:
        raise ValueError("cannot fuse an empty superblock")
    consts: dict = dict(SUPERBLOCK_HELPERS)
    lines = [
        "def _superblock(state, load, store):",
        "    regs = state.regs",
        "    flags = state.flags",
    ]
    for index, (pc, instr) in enumerate(instrs):
        if not superblock_fusible(instr):
            raise ValueError(f"{instr.mnemonic} at {pc:#x} is not fusible")
        for line in superblock_arch_lines(instr, pc, index, consts):
            lines.append("    " + line)
    last_pc, last = instrs[-1]
    end_pc = canonical((last_pc + last.length) & MASK64)
    lines.append(f"    return {end_pc:#x}")
    namespace: dict = consts
    exec(compile("\n".join(lines), "<superblock>", "exec"), namespace)
    return namespace["_superblock"]
