"""Decode x86-64 bytes back into :class:`Instruction` objects.

The decoder is the exact inverse of :mod:`repro.isa.encoder` over the
implemented subset.  Decoding arbitrary (e.g. speculatively fetched)
bytes may raise :class:`DecodeError`; the pipeline's ID unit treats such
bytes as undecodable garbage, which is what a real decoder does with a
phantom target that holds data rather than code.
"""

from __future__ import annotations

import struct
from dataclasses import replace

from ..errors import DecodeError, TruncatedError
from .encoder import NOPL_SEQUENCES
from .instructions import Cond, Instruction, Mnemonic, Reg

_NOPL_BY_BYTES = sorted(NOPL_SEQUENCES.items(), key=lambda kv: -kv[0])


class _Cursor:
    """Byte reader with bounds checking over an immutable buffer."""

    def __init__(self, buf: bytes, offset: int) -> None:
        self._buf = buf
        self._start = offset
        self._pos = offset

    def u8(self) -> int:
        if self._pos >= len(self._buf):
            raise TruncatedError("truncated instruction")
        value = self._buf[self._pos]
        self._pos += 1
        return value

    def peek(self) -> int:
        if self._pos >= len(self._buf):
            raise TruncatedError("truncated instruction")
        return self._buf[self._pos]

    def s8(self) -> int:
        return struct.unpack("<b", bytes([self.u8()]))[0]

    def s32(self) -> int:
        raw = self._take(4)
        return struct.unpack("<i", raw)[0]

    def u64(self) -> int:
        raw = self._take(8)
        return struct.unpack("<Q", raw)[0]

    def _take(self, n: int) -> bytes:
        if self._pos + n > len(self._buf):
            raise TruncatedError("truncated instruction")
        raw = self._buf[self._pos:self._pos + n]
        self._pos += n
        return raw

    @property
    def length(self) -> int:
        return self._pos - self._start


def _reg(num: int) -> Reg:
    return Reg(num)


def _mem_operand(cur: _Cursor, rex_r: int, rex_b: int) -> tuple[Reg, Reg, int]:
    """Parse a mod=10 ``[base+disp32]`` ModRM.  Returns (reg, base, disp)."""
    modrm = cur.u8()
    mod = modrm >> 6
    if mod != 0b10:
        raise DecodeError(f"unsupported ModRM mod={mod:#b} for memory operand")
    reg = _reg(((modrm >> 3) & 7) | (rex_r << 3))
    rm = modrm & 7
    if rm == 4:
        sib = cur.u8()
        if sib != 0x24:
            raise DecodeError(f"unsupported SIB byte {sib:#x}")
        base = _reg(4 | (rex_b << 3))
    else:
        base = _reg(rm | (rex_b << 3))
    disp = cur.s32()
    return reg, base, disp


def _reg_operand(cur: _Cursor, rex_r: int, rex_b: int) -> tuple[int, Reg]:
    """Parse a mod=11 register-direct ModRM.  Returns (reg_field, rm_reg)."""
    modrm = cur.u8()
    if modrm >> 6 != 0b11:
        raise DecodeError("expected register-direct ModRM")
    reg_field = ((modrm >> 3) & 7) | (rex_r << 3)
    rm = _reg((modrm & 7) | (rex_b << 3))
    return reg_field, rm


_RR_OPCODES = {
    0x89: Mnemonic.MOV_RR,
    0x01: Mnemonic.ADD_RR,
    0x29: Mnemonic.SUB_RR,
    0x31: Mnemonic.XOR_RR,
    0x09: Mnemonic.OR_RR,
    0x39: Mnemonic.CMP_RR,
}

_GROUP81 = {0: Mnemonic.ADD_RI, 5: Mnemonic.SUB_RI, 4: Mnemonic.AND_RI,
            7: Mnemonic.CMP_RI}


def decode(buf: bytes, offset: int = 0) -> Instruction:
    """Decode one instruction starting at ``buf[offset]``.

    Returns an :class:`Instruction` with ``length`` set to the number of
    bytes consumed.  Raises :class:`DecodeError` on invalid encodings.
    """
    for length, seq in _NOPL_BY_BYTES:
        available = buf[offset:offset + length]
        if available == seq:
            return Instruction(Mnemonic.NOPL, imm=length, length=length)
        if len(available) < length and available \
                and seq.startswith(available):
            raise TruncatedError("truncated multi-byte nop")

    cur = _Cursor(buf, offset)
    rex = 0
    first = cur.u8()
    if 0x40 <= first <= 0x4F:
        rex = first
        first = cur.u8()
    rex_w = (rex >> 3) & 1
    rex_r = (rex >> 2) & 1
    rex_b = rex & 1

    def done(instr: Instruction) -> Instruction:
        # Strict decoding: the consumed bytes must be the canonical
        # encoding (rejects e.g. meaningless REX prefixes), so that
        # decode is the exact inverse of encode over the subset.
        out = replace(instr, length=cur.length)
        from .encoder import encode

        consumed = buf[offset:offset + cur.length]
        if encode(instr) != consumed:
            raise DecodeError(f"non-canonical encoding: {consumed.hex()}")
        return out

    if first == 0x90 and not rex:
        return done(Instruction(Mnemonic.NOP))
    if first == 0xE9:
        return done(Instruction(Mnemonic.JMP, disp=cur.s32()))
    if first == 0xEB:
        return done(Instruction(Mnemonic.JMP_SHORT, disp=cur.s8()))
    if first == 0xE8:
        return done(Instruction(Mnemonic.CALL, disp=cur.s32()))
    if first == 0xC3:
        return done(Instruction(Mnemonic.RET))
    if first == 0xF4:
        return done(Instruction(Mnemonic.HLT))
    if first == 0xFF:
        reg_field, rm = _reg_operand(cur, 0, rex_b)
        if reg_field == 4:
            return done(Instruction(Mnemonic.JMP_REG, dest=rm))
        if reg_field == 2:
            return done(Instruction(Mnemonic.CALL_REG, dest=rm))
        if reg_field == 0 and rex_w:
            return done(Instruction(Mnemonic.INC, dest=rm))
        if reg_field == 1 and rex_w:
            return done(Instruction(Mnemonic.DEC, dest=rm))
        raise DecodeError(f"unsupported FF /{reg_field}")
    if first == 0xF7:
        if not rex_w:
            raise DecodeError("F7 group requires REX.W")
        reg_field, rm = _reg_operand(cur, 0, rex_b)
        if reg_field == 3:
            return done(Instruction(Mnemonic.NEG, dest=rm))
        if reg_field == 2:
            return done(Instruction(Mnemonic.NOT, dest=rm))
        raise DecodeError(f"unsupported F7 /{reg_field}")
    if first in (0x85, 0x87):
        if not rex_w:
            raise DecodeError("64-bit op requires REX.W")
        reg_field, rm = _reg_operand(cur, rex_r, rex_b)
        mnemonic = Mnemonic.TEST_RR if first == 0x85 else Mnemonic.XCHG_RR
        return done(Instruction(mnemonic, dest=rm, src=_reg(reg_field)))
    if 0x50 <= first <= 0x57:
        return done(Instruction(Mnemonic.PUSH, dest=_reg((first & 7) | (rex_b << 3))))
    if 0x58 <= first <= 0x5F:
        return done(Instruction(Mnemonic.POP, dest=_reg((first & 7) | (rex_b << 3))))
    if 0xB8 <= first <= 0xBF:
        if not rex_w:
            raise DecodeError("mov reg, imm64 requires REX.W")
        dest = _reg((first & 7) | (rex_b << 3))
        return done(Instruction(Mnemonic.MOV_RI, dest=dest, imm=cur.u64()))
    if first == 0x8B:
        if not rex_w:
            raise DecodeError("mov reg, [mem] requires REX.W")
        reg, base, disp = _mem_operand(cur, rex_r, rex_b)
        return done(Instruction(Mnemonic.MOV_RM, dest=reg, base=base, disp=disp))
    if first == 0x8A:
        if rex_w:
            raise DecodeError("byte load must not set REX.W")
        reg, base, disp = _mem_operand(cur, rex_r, rex_b)
        return done(Instruction(Mnemonic.MOVB_RM, dest=reg, base=base, disp=disp))
    if first == 0x8D:
        if not rex_w:
            raise DecodeError("lea requires REX.W")
        reg, base, disp = _mem_operand(cur, rex_r, rex_b)
        return done(Instruction(Mnemonic.LEA, dest=reg, base=base, disp=disp))
    if first == 0x89:
        if not rex_w:
            raise DecodeError("mov requires REX.W")
        if cur.peek() >> 6 == 0b11:
            reg_field, rm = _reg_operand(cur, rex_r, rex_b)
            return done(Instruction(Mnemonic.MOV_RR, dest=rm, src=_reg(reg_field)))
        reg, base, disp = _mem_operand(cur, rex_r, rex_b)
        return done(Instruction(Mnemonic.MOV_MR, src=reg, base=base, disp=disp))
    if first in _RR_OPCODES and first != 0x89:
        if not rex_w:
            raise DecodeError("64-bit ALU op requires REX.W")
        reg_field, rm = _reg_operand(cur, rex_r, rex_b)
        return done(Instruction(_RR_OPCODES[first], dest=rm, src=_reg(reg_field)))
    if first == 0x81:
        if not rex_w:
            raise DecodeError("group-81 op requires REX.W")
        reg_field, rm = _reg_operand(cur, 0, rex_b)
        if reg_field not in _GROUP81:
            raise DecodeError(f"unsupported 81 /{reg_field}")
        return done(Instruction(_GROUP81[reg_field], dest=rm, imm=cur.s32()))
    if first == 0xC1:
        if not rex_w:
            raise DecodeError("shift requires REX.W")
        reg_field, rm = _reg_operand(cur, 0, rex_b)
        if reg_field == 4:
            return done(Instruction(Mnemonic.SHL_RI, dest=rm, imm=cur.u8()))
        if reg_field == 5:
            return done(Instruction(Mnemonic.SHR_RI, dest=rm, imm=cur.u8()))
        raise DecodeError(f"unsupported C1 /{reg_field}")
    if first == 0x0F:
        second = cur.u8()
        if 0x80 <= second <= 0x8F:
            return done(Instruction(Mnemonic.JCC, cc=Cond(second & 0xF),
                                    disp=cur.s32()))
        if second == 0xAE:
            third = cur.u8()
            if third == 0xE8:
                return done(Instruction(Mnemonic.LFENCE))
            if third == 0xF0:
                return done(Instruction(Mnemonic.MFENCE))
            raise DecodeError(f"unsupported 0F AE {third:#x}")
        if second == 0x05:
            return done(Instruction(Mnemonic.SYSCALL))
        if second == 0x07:
            if not rex_w:
                raise DecodeError("sysret requires REX.W")
            return done(Instruction(Mnemonic.SYSRET))
        if second == 0x31:
            return done(Instruction(Mnemonic.RDTSC))
        if second == 0x0B:
            return done(Instruction(Mnemonic.UD2))
        if second == 0xAF:
            if not rex_w:
                raise DecodeError("imul requires REX.W")
            reg_field, rm = _reg_operand(cur, rex_r, rex_b)
            return done(Instruction(Mnemonic.IMUL_RR, dest=_reg(reg_field),
                                    src=rm))
        if 0x40 <= second <= 0x4F:
            if not rex_w:
                raise DecodeError("cmov requires REX.W")
            reg_field, rm = _reg_operand(cur, rex_r, rex_b)
            return done(Instruction(Mnemonic.CMOV, dest=_reg(reg_field),
                                    src=rm, cc=Cond(second & 0xF)))
        raise DecodeError(f"unsupported two-byte opcode 0F {second:#x}")
    raise DecodeError(f"unsupported opcode {first:#x}")
