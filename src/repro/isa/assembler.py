"""Two-pass assembler producing loadable images with symbol tables.

Because every implemented encoding has a displacement-independent
length, layout is finalized in the first pass and label displacements
are patched in the second.  The assembler emits into a single
contiguous region starting at ``base``; multi-region programs combine
several assemblers into one :class:`Image`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AssemblerError
from ..params import MASK64
from .encoder import NOPL_SEQUENCES, encode
from .instructions import Cond, Instruction, Mnemonic, Reg

Target = "str | int"


@dataclass(frozen=True)
class Segment:
    """A contiguous span of bytes at a fixed virtual address."""

    base: int
    data: bytes

    @property
    def end(self) -> int:
        return self.base + len(self.data)

    def contains(self, va: int) -> bool:
        return self.base <= va < self.end


@dataclass
class Image:
    """A set of non-overlapping segments plus a symbol table."""

    segments: list[Segment] = field(default_factory=list)
    symbols: dict[str, int] = field(default_factory=dict)

    def add(self, segment: Segment, symbols: dict[str, int] | None = None) -> None:
        for existing in self.segments:
            if segment.base < existing.end and existing.base < segment.end:
                raise AssemblerError(
                    f"segment [{segment.base:#x},{segment.end:#x}) overlaps "
                    f"[{existing.base:#x},{existing.end:#x})")
        self.segments.append(segment)
        if symbols:
            clash = set(symbols) & set(self.symbols)
            if clash:
                raise AssemblerError(f"duplicate symbols: {sorted(clash)}")
            self.symbols.update(symbols)

    def merge(self, other: "Image") -> None:
        for segment in other.segments:
            self.add(segment)
        clash = set(other.symbols) & set(self.symbols)
        if clash:
            raise AssemblerError(f"duplicate symbols: {sorted(clash)}")
        self.symbols.update(other.symbols)

    def read(self, va: int, size: int) -> bytes:
        """Read *size* bytes at *va*; gaps are an error."""
        for segment in self.segments:
            if segment.contains(va):
                off = va - segment.base
                if off + size > len(segment.data):
                    raise AssemblerError(f"read beyond segment at {va:#x}")
                return segment.data[off:off + size]
        raise AssemblerError(f"no segment maps {va:#x}")


@dataclass
class _Fixup:
    index: int          # instruction index in self._items
    pc: int             # address of the instruction
    label: str
    short: bool = False


class Assembler:
    """Sequential emitter for one segment.

    Usage::

        asm = Assembler(0x400000)
        asm.label("loop")
        asm.nop()
        asm.jmp("loop")
        segment, symbols = asm.finish()
    """

    def __init__(self, base: int) -> None:
        self.base = base
        self._pc = base
        self._items: list[bytes] = []
        self._fixups: list[_Fixup] = []
        self._symbols: dict[str, int] = {}

    # -- layout ----------------------------------------------------------

    @property
    def pc(self) -> int:
        """Address of the next emitted byte."""
        return self._pc

    def label(self, name: str) -> int:
        if name in self._symbols:
            raise AssemblerError(f"duplicate label {name!r}")
        self._symbols[name] = self._pc
        return self._pc

    def pad_to(self, va: int, fill: int = 0x90) -> None:
        """Advance to *va*, filling with *fill* bytes (default: nop)."""
        if va < self._pc:
            raise AssemblerError(
                f"pad_to {va:#x} is behind current pc {self._pc:#x}")
        self._raw(bytes([fill]) * (va - self._pc))

    def align(self, alignment: int, fill: int = 0x90) -> None:
        rem = self._pc % alignment
        if rem:
            self._raw(bytes([fill]) * (alignment - rem))

    def _raw(self, data: bytes) -> None:
        self._items.append(data)
        self._pc += len(data)

    def raw(self, data: bytes) -> None:
        """Emit raw bytes (e.g. data constants inside a code region)."""
        self._raw(data)

    def _emit(self, instr: Instruction) -> int:
        pc = self._pc
        self._raw(encode(instr))
        return pc

    def emit(self, instr: Instruction) -> int:
        """Emit an already-constructed :class:`Instruction` verbatim.

        Branch displacements are taken as-is (no label resolution);
        used by the binary rewriter when re-emitting lifted code.
        """
        return self._emit(instr)

    def _emit_branch(self, mnemonic: Mnemonic, target: "str | int",
                     cc: Cond | None = None) -> int:
        short = mnemonic is Mnemonic.JMP_SHORT
        if isinstance(target, str):
            instr = Instruction(mnemonic, cc=cc, disp=0)
            pc = self._pc
            index = len(self._items)
            self._emit(instr)
            self._fixups.append(_Fixup(index, pc, target, short))
            return pc
        instr_len = len(encode(Instruction(mnemonic, cc=cc, disp=0)))
        disp = (target - (self._pc + instr_len))
        disp = ((disp + (1 << 63)) & MASK64) - (1 << 63)  # wrap to signed
        return self._emit(Instruction(mnemonic, cc=cc, disp=disp))

    # -- instructions ------------------------------------------------------

    def nop(self) -> int:
        return self._emit(Instruction(Mnemonic.NOP))

    def nopl(self, length: int = 8) -> int:
        if length not in NOPL_SEQUENCES:
            raise AssemblerError(f"no canonical nop of length {length}")
        return self._emit(Instruction(Mnemonic.NOPL, imm=length))

    def nop_sled(self, byte_count: int) -> int:
        """Emit *byte_count* bytes of single-byte nops."""
        pc = self._pc
        self._raw(b"\x90" * byte_count)
        return pc

    def jmp(self, target: "str | int") -> int:
        return self._emit_branch(Mnemonic.JMP, target)

    def jmp_short(self, target: "str | int") -> int:
        return self._emit_branch(Mnemonic.JMP_SHORT, target)

    def jmp_reg(self, reg: Reg) -> int:
        return self._emit(Instruction(Mnemonic.JMP_REG, dest=reg))

    def jcc(self, cc: Cond, target: "str | int") -> int:
        return self._emit_branch(Mnemonic.JCC, target, cc=cc)

    def call(self, target: "str | int") -> int:
        return self._emit_branch(Mnemonic.CALL, target)

    def call_reg(self, reg: Reg) -> int:
        return self._emit(Instruction(Mnemonic.CALL_REG, dest=reg))

    def ret(self) -> int:
        return self._emit(Instruction(Mnemonic.RET))

    def mov_ri(self, dest: Reg, imm: int) -> int:
        return self._emit(Instruction(Mnemonic.MOV_RI, dest=dest,
                                      imm=imm & MASK64))

    def mov_rr(self, dest: Reg, src: Reg) -> int:
        return self._emit(Instruction(Mnemonic.MOV_RR, dest=dest, src=src))

    def load(self, dest: Reg, base: Reg, disp: int = 0) -> int:
        return self._emit(Instruction(Mnemonic.MOV_RM, dest=dest, base=base,
                                      disp=disp))

    def loadb(self, dest: Reg, base: Reg, disp: int = 0) -> int:
        return self._emit(Instruction(Mnemonic.MOVB_RM, dest=dest, base=base,
                                      disp=disp))

    def store(self, base: Reg, disp: int, src: Reg) -> int:
        return self._emit(Instruction(Mnemonic.MOV_MR, src=src, base=base,
                                      disp=disp))

    def lea(self, dest: Reg, base: Reg, disp: int = 0) -> int:
        return self._emit(Instruction(Mnemonic.LEA, dest=dest, base=base,
                                      disp=disp))

    def add_ri(self, dest: Reg, imm: int) -> int:
        return self._emit(Instruction(Mnemonic.ADD_RI, dest=dest, imm=imm))

    def add_rr(self, dest: Reg, src: Reg) -> int:
        return self._emit(Instruction(Mnemonic.ADD_RR, dest=dest, src=src))

    def sub_ri(self, dest: Reg, imm: int) -> int:
        return self._emit(Instruction(Mnemonic.SUB_RI, dest=dest, imm=imm))

    def sub_rr(self, dest: Reg, src: Reg) -> int:
        return self._emit(Instruction(Mnemonic.SUB_RR, dest=dest, src=src))

    def and_ri(self, dest: Reg, imm: int) -> int:
        return self._emit(Instruction(Mnemonic.AND_RI, dest=dest, imm=imm))

    def xor_rr(self, dest: Reg, src: Reg) -> int:
        return self._emit(Instruction(Mnemonic.XOR_RR, dest=dest, src=src))

    def or_rr(self, dest: Reg, src: Reg) -> int:
        return self._emit(Instruction(Mnemonic.OR_RR, dest=dest, src=src))

    def shl_ri(self, dest: Reg, imm: int) -> int:
        return self._emit(Instruction(Mnemonic.SHL_RI, dest=dest, imm=imm))

    def shr_ri(self, dest: Reg, imm: int) -> int:
        return self._emit(Instruction(Mnemonic.SHR_RI, dest=dest, imm=imm))

    def cmp_ri(self, dest: Reg, imm: int) -> int:
        return self._emit(Instruction(Mnemonic.CMP_RI, dest=dest, imm=imm))

    def cmp_rr(self, dest: Reg, src: Reg) -> int:
        return self._emit(Instruction(Mnemonic.CMP_RR, dest=dest, src=src))

    def test_rr(self, dest: Reg, src: Reg) -> int:
        return self._emit(Instruction(Mnemonic.TEST_RR, dest=dest, src=src))

    def inc(self, dest: Reg) -> int:
        return self._emit(Instruction(Mnemonic.INC, dest=dest))

    def dec(self, dest: Reg) -> int:
        return self._emit(Instruction(Mnemonic.DEC, dest=dest))

    def neg(self, dest: Reg) -> int:
        return self._emit(Instruction(Mnemonic.NEG, dest=dest))

    def not_(self, dest: Reg) -> int:
        return self._emit(Instruction(Mnemonic.NOT, dest=dest))

    def imul_rr(self, dest: Reg, src: Reg) -> int:
        return self._emit(Instruction(Mnemonic.IMUL_RR, dest=dest, src=src))

    def xchg_rr(self, dest: Reg, src: Reg) -> int:
        return self._emit(Instruction(Mnemonic.XCHG_RR, dest=dest, src=src))

    def cmov(self, cc: Cond, dest: Reg, src: Reg) -> int:
        return self._emit(Instruction(Mnemonic.CMOV, cc=cc, dest=dest,
                                      src=src))

    def push(self, reg: Reg) -> int:
        return self._emit(Instruction(Mnemonic.PUSH, dest=reg))

    def pop(self, reg: Reg) -> int:
        return self._emit(Instruction(Mnemonic.POP, dest=reg))

    def lfence(self) -> int:
        return self._emit(Instruction(Mnemonic.LFENCE))

    def mfence(self) -> int:
        return self._emit(Instruction(Mnemonic.MFENCE))

    def syscall(self) -> int:
        return self._emit(Instruction(Mnemonic.SYSCALL))

    def sysret(self) -> int:
        return self._emit(Instruction(Mnemonic.SYSRET))

    def rdtsc(self) -> int:
        return self._emit(Instruction(Mnemonic.RDTSC))

    def hlt(self) -> int:
        return self._emit(Instruction(Mnemonic.HLT))

    def ud2(self) -> int:
        return self._emit(Instruction(Mnemonic.UD2))

    # -- output ------------------------------------------------------------

    def finish(self) -> tuple[Segment, dict[str, int]]:
        """Resolve fixups and return ``(segment, symbols)``."""
        for fixup in self._fixups:
            if fixup.label not in self._symbols:
                raise AssemblerError(f"undefined label {fixup.label!r}")
            target = self._symbols[fixup.label]
            item = self._items[fixup.index]
            disp = target - (fixup.pc + len(item))
            mnemonic = Mnemonic.JMP_SHORT if fixup.short else None
            patched = self._patch(item, disp)
            self._items[fixup.index] = patched
        return (Segment(self.base, b"".join(self._items)),
                dict(self._symbols))

    @staticmethod
    def _patch(encoded: bytes, disp: int) -> bytes:
        """Re-encode the displacement field of an already-laid-out branch."""
        import struct

        if encoded[0] == 0xEB:  # jmp short rel8
            if not -128 <= disp <= 127:
                raise AssemblerError(f"short jump displacement {disp} too far")
            return bytes([0xEB]) + struct.pack("<b", disp)
        if encoded[0] in (0xE9, 0xE8):  # jmp/call rel32
            return bytes([encoded[0]]) + struct.pack("<i", disp)
        if encoded[0] == 0x0F and 0x80 <= encoded[1] <= 0x8F:  # jcc rel32
            return encoded[:2] + struct.pack("<i", disp)
        raise AssemblerError(f"cannot patch {encoded.hex()}")

    def image(self) -> Image:
        """Finish and wrap the single segment in an :class:`Image`."""
        segment, symbols = self.finish()
        image = Image()
        image.add(segment, symbols)
        return image
