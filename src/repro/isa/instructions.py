"""Instruction model for the x86-64 subset used by the simulator.

The subset covers everything the paper's listings and exploits need:
single- and multi-byte ``nop``, direct/indirect/conditional branches,
``call``/``ret``, 64-bit moves, loads and stores with displacement,
ALU operations, stack operations, fences and ``syscall``.

Instructions are immutable value objects.  The encoded byte length is
part of the instruction's identity because the frontend reasons about
byte addresses (fetch blocks, page offsets, branch-source end
addresses), exactly as real hardware does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Reg(enum.IntEnum):
    """x86-64 general-purpose registers, numbered as in ModRM encoding."""

    RAX = 0
    RCX = 1
    RDX = 2
    RBX = 3
    RSP = 4
    RBP = 5
    RSI = 6
    RDI = 7
    R8 = 8
    R9 = 9
    R10 = 10
    R11 = 11
    R12 = 12
    R13 = 13
    R14 = 14
    R15 = 15


class Cond(enum.IntEnum):
    """Condition codes, numbered as in the ``0F 8x`` jcc opcodes."""

    O = 0
    NO = 1
    B = 2
    AE = 3
    E = 4
    NE = 5
    BE = 6
    A = 7
    S = 8
    NS = 9
    P = 10
    NP = 11
    L = 12
    GE = 13
    LE = 14
    G = 15


class BranchKind(enum.Enum):
    """Control-flow classification used by the branch predictor and decoder.

    The decoder compares the *predicted* kind recorded in a BTB entry
    against the *decoded* kind of the branch source; a mismatch is a
    decoder-detectable misprediction — the core mechanism behind Phantom.
    """

    NONE = "none"
    DIRECT = "jmp"
    INDIRECT = "jmp*"
    CONDITIONAL = "jcc"
    CALL_DIRECT = "call"
    CALL_INDIRECT = "call*"
    RETURN = "ret"

    @property
    def is_branch(self) -> bool:
        return self is not BranchKind.NONE

    @property
    def is_call(self) -> bool:
        return self in (BranchKind.CALL_DIRECT, BranchKind.CALL_INDIRECT)

    @property
    def is_execute_dependent(self) -> bool:
        """True when the final target is only known at execute.

        These are the sources classic Spectre exploits; conditional
        branches have a decode-known target but execute-known direction.
        """
        return self in (
            BranchKind.INDIRECT,
            BranchKind.CONDITIONAL,
            BranchKind.CALL_INDIRECT,
            BranchKind.RETURN,
        )


class Mnemonic(enum.Enum):
    """Operation selector for :class:`Instruction`."""

    NOP = "nop"              # 1-byte 0x90
    NOPL = "nopl"            # multi-byte nop (2..9 bytes)
    JMP = "jmp"              # e9 rel32
    JMP_SHORT = "jmp8"       # eb rel8
    JMP_REG = "jmp_reg"      # ff /4
    JCC = "jcc"              # 0f 8x rel32
    CALL = "call"            # e8 rel32
    CALL_REG = "call_reg"    # ff /2
    RET = "ret"              # c3
    MOV_RI = "mov_ri"        # rex.w b8+r imm64
    MOV_RR = "mov_rr"        # rex.w 89 /r
    MOV_RM = "mov_rm"        # rex.w 8b /r  (load reg <- [base+disp32])
    MOV_MR = "mov_mr"        # rex.w 89 /r  (store [base+disp32] <- reg)
    MOVB_RM = "movb_rm"      # 8a /r  (load low byte, zero-extended here)
    LEA = "lea"              # rex.w 8d /r
    ADD_RI = "add_ri"        # rex.w 81 /0 imm32
    ADD_RR = "add_rr"        # rex.w 01 /r
    SUB_RI = "sub_ri"        # rex.w 81 /5 imm32
    SUB_RR = "sub_rr"        # rex.w 29 /r
    AND_RI = "and_ri"        # rex.w 81 /4 imm32
    XOR_RR = "xor_rr"        # rex.w 31 /r
    OR_RR = "or_rr"          # rex.w 09 /r
    SHL_RI = "shl_ri"        # rex.w c1 /4 imm8
    SHR_RI = "shr_ri"        # rex.w c1 /5 imm8
    CMP_RI = "cmp_ri"        # rex.w 81 /7 imm32
    CMP_RR = "cmp_rr"        # rex.w 39 /r
    TEST_RR = "test_rr"      # rex.w 85 /r
    INC = "inc"              # rex.w ff /0
    DEC = "dec"              # rex.w ff /1
    NEG = "neg"              # rex.w f7 /3
    NOT = "not"              # rex.w f7 /2
    IMUL_RR = "imul_rr"      # rex.w 0f af /r   (dest in reg field)
    XCHG_RR = "xchg_rr"      # rex.w 87 /r
    CMOV = "cmov"            # rex.w 0f 4x /r   (dest in reg field)
    PUSH = "push"            # 50+r
    POP = "pop"              # 58+r
    LFENCE = "lfence"        # 0f ae e8
    MFENCE = "mfence"        # 0f ae f0
    SYSCALL = "syscall"      # 0f 05
    SYSRET = "sysret"        # rex.w 0f 07
    RDTSC = "rdtsc"          # 0f 31
    HLT = "hlt"              # f4
    UD2 = "ud2"              # 0f 0b


#: Mnemonics that read memory.
_LOADS = frozenset({Mnemonic.MOV_RM, Mnemonic.MOVB_RM, Mnemonic.POP, Mnemonic.RET})
#: Mnemonics that write memory.
_STORES = frozenset({Mnemonic.MOV_MR, Mnemonic.PUSH, Mnemonic.CALL,
                     Mnemonic.CALL_REG})

_BRANCH_KINDS = {
    Mnemonic.JMP: BranchKind.DIRECT,
    Mnemonic.JMP_SHORT: BranchKind.DIRECT,
    Mnemonic.JMP_REG: BranchKind.INDIRECT,
    Mnemonic.JCC: BranchKind.CONDITIONAL,
    Mnemonic.CALL: BranchKind.CALL_DIRECT,
    Mnemonic.CALL_REG: BranchKind.CALL_INDIRECT,
    Mnemonic.RET: BranchKind.RETURN,
}


@dataclass(frozen=True)
class Instruction:
    """One decoded (or to-be-encoded) instruction.

    ``disp`` holds the PC-relative displacement for direct branches and
    the memory displacement for load/store/lea addressing.  ``imm``
    holds immediates.  ``length`` is the encoded size in bytes; the
    encoder fills it in and the decoder reproduces it.
    """

    mnemonic: Mnemonic
    dest: Reg | None = None
    src: Reg | None = None
    base: Reg | None = None
    imm: int | None = None
    disp: int = 0
    cc: Cond | None = None
    length: int = 0

    @property
    def branch_kind(self) -> BranchKind:
        """Control-flow class of this instruction (NONE for non-branches)."""
        return _BRANCH_KINDS.get(self.mnemonic, BranchKind.NONE)

    @property
    def is_branch(self) -> bool:
        return self.branch_kind is not BranchKind.NONE

    @property
    def is_load(self) -> bool:
        return self.mnemonic in _LOADS

    @property
    def is_store(self) -> bool:
        return self.mnemonic in _STORES

    @property
    def is_fence(self) -> bool:
        return self.mnemonic in (Mnemonic.LFENCE, Mnemonic.MFENCE)

    def target(self, pc: int) -> int | None:
        """Architectural target of a direct branch located at *pc*.

        Direct branch displacements are relative to the *end* of the
        instruction, as on x86.  Returns None for indirect branches and
        returns, whose targets are execute-dependent.
        """
        if self.mnemonic in (Mnemonic.JMP, Mnemonic.JMP_SHORT, Mnemonic.JCC,
                             Mnemonic.CALL):
            return (pc + self.length + self.disp) & ((1 << 64) - 1)
        return None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.mnemonic.value]
        if self.cc is not None:
            parts[0] = f"j{self.cc.name.lower()}"
        for attr in ("dest", "src", "base"):
            value = getattr(self, attr)
            if value is not None:
                parts.append(value.name.lower())
        if self.imm is not None:
            parts.append(hex(self.imm))
        if self.disp:
            parts.append(f"disp={self.disp:#x}")
        return " ".join(parts)
