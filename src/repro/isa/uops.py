"""Micro-operation model.

The decoder cracks each architectural instruction into one or more µops
which are dispatched onto the µop queue (paper Figure 2).  The µop kind
determines which backend resources an operation consumes and — crucial
for Phantom — whether a speculatively decoded instruction can emit a
memory request before a frontend resteer squashes it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .instructions import Instruction, Mnemonic


class UopKind(enum.Enum):
    NOP = "nop"
    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    FENCE = "fence"
    SYSTEM = "system"


_CRACK_TABLE: dict[Mnemonic, tuple[UopKind, ...]] = {
    Mnemonic.NOP: (UopKind.NOP,),
    Mnemonic.NOPL: (UopKind.NOP,),
    Mnemonic.JMP: (UopKind.BRANCH,),
    Mnemonic.JMP_SHORT: (UopKind.BRANCH,),
    Mnemonic.JMP_REG: (UopKind.BRANCH,),
    Mnemonic.JCC: (UopKind.BRANCH,),
    Mnemonic.CALL: (UopKind.STORE, UopKind.BRANCH),
    Mnemonic.CALL_REG: (UopKind.STORE, UopKind.BRANCH),
    Mnemonic.RET: (UopKind.LOAD, UopKind.BRANCH),
    Mnemonic.MOV_RI: (UopKind.ALU,),
    Mnemonic.MOV_RR: (UopKind.ALU,),
    Mnemonic.MOV_RM: (UopKind.LOAD,),
    Mnemonic.MOVB_RM: (UopKind.LOAD,),
    Mnemonic.MOV_MR: (UopKind.STORE,),
    Mnemonic.LEA: (UopKind.ALU,),
    Mnemonic.ADD_RI: (UopKind.ALU,),
    Mnemonic.ADD_RR: (UopKind.ALU,),
    Mnemonic.SUB_RI: (UopKind.ALU,),
    Mnemonic.SUB_RR: (UopKind.ALU,),
    Mnemonic.AND_RI: (UopKind.ALU,),
    Mnemonic.XOR_RR: (UopKind.ALU,),
    Mnemonic.OR_RR: (UopKind.ALU,),
    Mnemonic.SHL_RI: (UopKind.ALU,),
    Mnemonic.SHR_RI: (UopKind.ALU,),
    Mnemonic.CMP_RI: (UopKind.ALU,),
    Mnemonic.CMP_RR: (UopKind.ALU,),
    Mnemonic.TEST_RR: (UopKind.ALU,),
    Mnemonic.INC: (UopKind.ALU,),
    Mnemonic.DEC: (UopKind.ALU,),
    Mnemonic.NEG: (UopKind.ALU,),
    Mnemonic.NOT: (UopKind.ALU,),
    Mnemonic.IMUL_RR: (UopKind.ALU,),
    Mnemonic.XCHG_RR: (UopKind.ALU, UopKind.ALU),
    Mnemonic.CMOV: (UopKind.ALU,),
    Mnemonic.PUSH: (UopKind.STORE,),
    Mnemonic.POP: (UopKind.LOAD,),
    Mnemonic.LFENCE: (UopKind.FENCE,),
    Mnemonic.MFENCE: (UopKind.FENCE,),
    Mnemonic.SYSCALL: (UopKind.SYSTEM,),
    Mnemonic.SYSRET: (UopKind.SYSTEM,),
    Mnemonic.RDTSC: (UopKind.ALU,),
    Mnemonic.HLT: (UopKind.SYSTEM,),
    Mnemonic.UD2: (UopKind.SYSTEM,),
}


@dataclass(frozen=True)
class Uop:
    """One micro-operation cracked from *instr* (µop *index* of that crack)."""

    kind: UopKind
    instr: Instruction
    pc: int
    index: int

    @property
    def is_memory(self) -> bool:
        return self.kind in (UopKind.LOAD, UopKind.STORE)


def crack(instr: Instruction, pc: int) -> tuple[Uop, ...]:
    """Crack *instr* (located at *pc*) into its µop sequence."""
    kinds = _CRACK_TABLE[instr.mnemonic]
    return tuple(Uop(kind, instr, pc, i) for i, kind in enumerate(kinds))


def uop_count(instr: Instruction) -> int:
    """Number of µops *instr* cracks into (µop-cache occupancy)."""
    return len(_CRACK_TABLE[instr.mnemonic])
