"""Encode :class:`~repro.isa.instructions.Instruction` to x86-64 bytes.

Encodings use the genuine x86-64 opcodes for the implemented subset so
that instruction lengths, page offsets and fetch-block straddling behave
as they do in the paper's native exploits.  Memory operands are always
encoded in the ``[base + disp32]`` form (mod=10), with a SIB byte when
the base register requires one (RSP/R12).
"""

from __future__ import annotations

import struct

from ..errors import EncodingError
from .instructions import Cond, Instruction, Mnemonic, Reg

#: Intel-recommended multi-byte NOP sequences, by total length.
NOPL_SEQUENCES: dict[int, bytes] = {
    2: bytes.fromhex("6690"),
    3: bytes.fromhex("0f1f00"),
    4: bytes.fromhex("0f1f4000"),
    5: bytes.fromhex("0f1f440000"),
    6: bytes.fromhex("660f1f440000"),
    7: bytes.fromhex("0f1f8000000000"),
    8: bytes.fromhex("0f1f840000000000"),
    9: bytes.fromhex("660f1f840000000000"),
}

_S32_MIN, _S32_MAX = -(1 << 31), (1 << 31) - 1


def _s8(value: int) -> bytes:
    if not -128 <= value <= 127:
        raise EncodingError(f"rel8 displacement out of range: {value}")
    return struct.pack("<b", value)


def _s32(value: int) -> bytes:
    if not _S32_MIN <= value <= _S32_MAX:
        raise EncodingError(f"imm32/disp32 out of range: {value}")
    return struct.pack("<i", value)


def _u64(value: int) -> bytes:
    return struct.pack("<Q", value & ((1 << 64) - 1))


def _rex(w: int, r: int, x: int, b: int) -> bytes:
    return bytes([0x40 | (w << 3) | (r << 2) | (x << 1) | b])


def _modrm_mem(reg_field: int, base: Reg, disp: int) -> tuple[int, bytes]:
    """mod=10 ``[base+disp32]`` ModRM (+SIB for RSP/R12 bases)."""
    rex_b = base >> 3
    rm = base & 7
    body = bytearray([0x80 | ((reg_field & 7) << 3) | rm])
    if rm == 4:  # RSP/R12 base needs a SIB byte (no index).
        body.append(0x24)
    body += _s32(disp)
    return rex_b, bytes(body)


def _need(instr: Instruction, *attrs: str) -> None:
    for attr in attrs:
        if getattr(instr, attr) is None:
            raise EncodingError(f"{instr.mnemonic.value} requires {attr}")


def _enc_rr(opcode: int, dest: Reg, src: Reg) -> bytes:
    """rex.w <opcode> /r with mod=11: operation dest <- dest op src.

    The ModRM reg field carries *src* (extended by REX.R) and the rm
    field carries *dest* (extended by REX.B), matching the store-form
    opcodes (89/01/29/31/09/39) we use for register-register ops.
    """
    rex = _rex(1, src >> 3, 0, dest >> 3)
    return rex + bytes([opcode, 0xC0 | ((src & 7) << 3) | (dest & 7)])


def _enc_group_ri(reg_field: int, dest: Reg, imm: int) -> bytes:
    """rex.w 81 /reg_field imm32 (ADD/SUB/AND/CMP immediate forms)."""
    rex = _rex(1, 0, 0, dest >> 3)
    return rex + bytes([0x81, 0xC0 | (reg_field << 3) | (dest & 7)]) + _s32(imm)


def _enc_shift(reg_field: int, dest: Reg, imm: int) -> bytes:
    if not 0 <= imm <= 63:
        raise EncodingError(f"shift count out of range: {imm}")
    rex = _rex(1, 0, 0, dest >> 3)
    return rex + bytes([0xC1, 0xC0 | (reg_field << 3) | (dest & 7), imm])


def _enc_mem_op(opcode: int, reg: Reg, base: Reg, disp: int, *,
                rex_w: int = 1, force_rex: bool = False) -> bytes:
    rex_b, modrm = _modrm_mem(reg & 7, base, disp)
    rex_r = reg >> 3
    out = b""
    if rex_w or rex_r or rex_b or force_rex:
        out += _rex(rex_w, rex_r, 0, rex_b)
    return out + bytes([opcode]) + modrm


def encode(instr: Instruction) -> bytes:
    """Return the byte encoding of *instr*.

    Raises :class:`EncodingError` for malformed operands.
    """
    m = instr.mnemonic
    if m is Mnemonic.NOP:
        return b"\x90"
    if m is Mnemonic.NOPL:
        length = instr.imm if instr.imm is not None else 8
        if length not in NOPL_SEQUENCES:
            raise EncodingError(f"no canonical nop of length {length}")
        return NOPL_SEQUENCES[length]
    if m is Mnemonic.JMP:
        return b"\xe9" + _s32(instr.disp)
    if m is Mnemonic.JMP_SHORT:
        return b"\xeb" + _s8(instr.disp)
    if m is Mnemonic.JCC:
        if instr.cc is None:
            raise EncodingError("jcc requires a condition code")
        return bytes([0x0F, 0x80 | instr.cc]) + _s32(instr.disp)
    if m is Mnemonic.CALL:
        return b"\xe8" + _s32(instr.disp)
    if m in (Mnemonic.JMP_REG, Mnemonic.CALL_REG):
        _need(instr, "dest")
        reg_field = 4 if m is Mnemonic.JMP_REG else 2
        prefix = b"" if instr.dest < Reg.R8 else _rex(0, 0, 0, 1)
        return prefix + bytes([0xFF, 0xC0 | (reg_field << 3) | (instr.dest & 7)])
    if m is Mnemonic.RET:
        return b"\xc3"
    if m is Mnemonic.MOV_RI:
        _need(instr, "dest", "imm")
        rex = _rex(1, 0, 0, instr.dest >> 3)
        return rex + bytes([0xB8 | (instr.dest & 7)]) + _u64(instr.imm)
    if m is Mnemonic.MOV_RR:
        _need(instr, "dest", "src")
        return _enc_rr(0x89, instr.dest, instr.src)
    if m is Mnemonic.MOV_RM:
        _need(instr, "dest", "base")
        return _enc_mem_op(0x8B, instr.dest, instr.base, instr.disp)
    if m is Mnemonic.MOV_MR:
        _need(instr, "src", "base")
        return _enc_mem_op(0x89, instr.src, instr.base, instr.disp)
    if m is Mnemonic.MOVB_RM:
        _need(instr, "dest", "base")
        return _enc_mem_op(0x8A, instr.dest, instr.base, instr.disp, rex_w=0,
                           force_rex=True)
    if m is Mnemonic.LEA:
        _need(instr, "dest", "base")
        return _enc_mem_op(0x8D, instr.dest, instr.base, instr.disp)
    if m is Mnemonic.ADD_RI:
        _need(instr, "dest", "imm")
        return _enc_group_ri(0, instr.dest, instr.imm)
    if m is Mnemonic.SUB_RI:
        _need(instr, "dest", "imm")
        return _enc_group_ri(5, instr.dest, instr.imm)
    if m is Mnemonic.AND_RI:
        _need(instr, "dest", "imm")
        return _enc_group_ri(4, instr.dest, instr.imm)
    if m is Mnemonic.CMP_RI:
        _need(instr, "dest", "imm")
        return _enc_group_ri(7, instr.dest, instr.imm)
    if m is Mnemonic.ADD_RR:
        _need(instr, "dest", "src")
        return _enc_rr(0x01, instr.dest, instr.src)
    if m is Mnemonic.SUB_RR:
        _need(instr, "dest", "src")
        return _enc_rr(0x29, instr.dest, instr.src)
    if m is Mnemonic.XOR_RR:
        _need(instr, "dest", "src")
        return _enc_rr(0x31, instr.dest, instr.src)
    if m is Mnemonic.OR_RR:
        _need(instr, "dest", "src")
        return _enc_rr(0x09, instr.dest, instr.src)
    if m is Mnemonic.CMP_RR:
        _need(instr, "dest", "src")
        return _enc_rr(0x39, instr.dest, instr.src)
    if m is Mnemonic.TEST_RR:
        _need(instr, "dest", "src")
        return _enc_rr(0x85, instr.dest, instr.src)
    if m is Mnemonic.XCHG_RR:
        _need(instr, "dest", "src")
        return _enc_rr(0x87, instr.dest, instr.src)
    if m in (Mnemonic.INC, Mnemonic.DEC):
        _need(instr, "dest")
        reg_field = 0 if m is Mnemonic.INC else 1
        rex = _rex(1, 0, 0, instr.dest >> 3)
        return rex + bytes([0xFF, 0xC0 | (reg_field << 3)
                            | (instr.dest & 7)])
    if m in (Mnemonic.NEG, Mnemonic.NOT):
        _need(instr, "dest")
        reg_field = 3 if m is Mnemonic.NEG else 2
        rex = _rex(1, 0, 0, instr.dest >> 3)
        return rex + bytes([0xF7, 0xC0 | (reg_field << 3)
                            | (instr.dest & 7)])
    if m is Mnemonic.IMUL_RR:
        _need(instr, "dest", "src")
        # dest sits in the ModRM reg field (load-form operand order).
        rex = _rex(1, instr.dest >> 3, 0, instr.src >> 3)
        return rex + bytes([0x0F, 0xAF,
                            0xC0 | ((instr.dest & 7) << 3)
                            | (instr.src & 7)])
    if m is Mnemonic.CMOV:
        _need(instr, "dest", "src")
        if instr.cc is None:
            raise EncodingError("cmov requires a condition code")
        rex = _rex(1, instr.dest >> 3, 0, instr.src >> 3)
        return rex + bytes([0x0F, 0x40 | instr.cc,
                            0xC0 | ((instr.dest & 7) << 3)
                            | (instr.src & 7)])
    if m is Mnemonic.SHL_RI:
        _need(instr, "dest", "imm")
        return _enc_shift(4, instr.dest, instr.imm)
    if m is Mnemonic.SHR_RI:
        _need(instr, "dest", "imm")
        return _enc_shift(5, instr.dest, instr.imm)
    if m is Mnemonic.PUSH:
        _need(instr, "dest")
        prefix = b"" if instr.dest < Reg.R8 else _rex(0, 0, 0, 1)
        return prefix + bytes([0x50 | (instr.dest & 7)])
    if m is Mnemonic.POP:
        _need(instr, "dest")
        prefix = b"" if instr.dest < Reg.R8 else _rex(0, 0, 0, 1)
        return prefix + bytes([0x58 | (instr.dest & 7)])
    if m is Mnemonic.LFENCE:
        return b"\x0f\xae\xe8"
    if m is Mnemonic.MFENCE:
        return b"\x0f\xae\xf0"
    if m is Mnemonic.SYSCALL:
        return b"\x0f\x05"
    if m is Mnemonic.SYSRET:
        return b"\x48\x0f\x07"
    if m is Mnemonic.RDTSC:
        return b"\x0f\x31"
    if m is Mnemonic.HLT:
        return b"\xf4"
    if m is Mnemonic.UD2:
        return b"\x0f\x0b"
    raise EncodingError(f"unhandled mnemonic: {m}")


def encode_with_length(instr: Instruction) -> tuple[bytes, Instruction]:
    """Encode *instr* and return ``(bytes, instr-with-length-filled-in)``."""
    raw = encode(instr)
    if instr.length not in (0, len(raw)):
        raise EncodingError(
            f"{instr.mnemonic.value}: declared length {instr.length} != "
            f"encoded length {len(raw)}")
    from dataclasses import replace

    return raw, replace(instr, length=len(raw))
