"""x86-64 subset ISA: instruction model, encoder/decoder, assembler, µops."""

from .assembler import Assembler, Image, Segment
from .decoder import decode
from .encoder import NOPL_SEQUENCES, encode, encode_with_length
from .instructions import BranchKind, Cond, Instruction, Mnemonic, Reg
from .semantics import (SUPERBLOCK_FUSIBLE, ArchState, ExecResult, Flags,
                        MemAccess, compile_executor, compile_superblock,
                        condition_met, execute, superblock_fusible)
from .uops import Uop, UopKind, crack, uop_count

__all__ = [
    "Assembler",
    "ArchState",
    "BranchKind",
    "Cond",
    "ExecResult",
    "Flags",
    "Image",
    "Instruction",
    "MemAccess",
    "Mnemonic",
    "NOPL_SEQUENCES",
    "Reg",
    "SUPERBLOCK_FUSIBLE",
    "Segment",
    "Uop",
    "UopKind",
    "compile_executor",
    "compile_superblock",
    "condition_met",
    "crack",
    "decode",
    "encode",
    "encode_with_length",
    "execute",
    "superblock_fusible",
    "uop_count",
]
