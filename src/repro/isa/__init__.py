"""x86-64 subset ISA: instruction model, encoder/decoder, assembler, µops."""

from .assembler import Assembler, Image, Segment
from .decoder import decode
from .encoder import NOPL_SEQUENCES, encode, encode_with_length
from .instructions import BranchKind, Cond, Instruction, Mnemonic, Reg
from .semantics import (ArchState, ExecResult, Flags, MemAccess,
                        compile_executor, condition_met, execute)
from .uops import Uop, UopKind, crack, uop_count

__all__ = [
    "Assembler",
    "ArchState",
    "BranchKind",
    "Cond",
    "ExecResult",
    "Flags",
    "Image",
    "Instruction",
    "MemAccess",
    "Mnemonic",
    "NOPL_SEQUENCES",
    "Reg",
    "Segment",
    "Uop",
    "UopKind",
    "compile_executor",
    "condition_met",
    "crack",
    "decode",
    "encode",
    "encode_with_length",
    "execute",
    "uop_count",
]
