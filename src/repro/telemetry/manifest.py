"""Run manifests: one JSON document per experiment run.

A manifest captures everything needed to compare two runs of the same
experiment without rerunning them: the configuration (µarch, seeds,
mitigations), a per-phase cycle/wall-time profile, a snapshot of the
metrics registry and the CPU's performance counters, and the outcome.

Schema id: ``phantom.run-manifest/1`` — the machine-checkable JSON
Schema lives in :mod:`repro.telemetry.schema` (and, checked into the
test tree, ``tests/data/run_manifest.schema.json``).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from pathlib import Path

from .merge import merge_metric_snapshots, merge_pmc
from .metrics import REGISTRY

MANIFEST_SCHEMA = "phantom.run-manifest/1"


@dataclass
class PhaseProfile:
    """Cycle/wall-time cost of one named phase of a run."""

    name: str
    cycles: int = 0
    wall_time_s: float = 0.0

    def to_dict(self) -> dict:
        return {"name": self.name, "cycles": self.cycles,
                "wall_time_s": self.wall_time_s}


def machine_config(machine, **extra) -> dict:
    """The config block for a run driven by one :class:`Machine`."""
    mit = asdict(machine.mitigations)
    config = {
        "uarch": machine.uarch.name,
        "model": machine.uarch.model,
        "vendor": machine.uarch.vendor,
        "clock_ghz": machine.uarch.clock_ghz,
        "kaslr_seed": getattr(machine, "kaslr_seed", None),
        "mitigations": {k: bool(v) for k, v in mit.items()},
        "phys_mem_bytes": machine.mem.phys.size,
    }
    config.update(extra)
    return config


class RunManifest:
    """Builder/loader for one run's manifest document."""

    def __init__(self, command: str, config: dict | None = None) -> None:
        self.command = command
        self.config = dict(config or {})
        self.created_at = time.strftime("%Y-%m-%dT%H:%M:%S%z")
        self.phases: list[PhaseProfile] = []
        self.metrics: dict = {}
        self.pmc: dict[str, int] = {}
        self.outcome: dict = {"status": "unknown"}
        self.totals: dict = {"cycles": 0, "wall_time_s": 0.0,
                             "simulated_seconds": 0.0}
        self._wall_start = time.perf_counter()

    # -- building ----------------------------------------------------------

    @classmethod
    def begin(cls, command: str, config: dict | None = None,
              machine=None, **extra_config) -> "RunManifest":
        config = dict(config or {})
        if machine is not None:
            config.update(machine_config(machine))
        config.update(extra_config)
        return cls(command, config)

    @contextmanager
    def phase(self, name: str, machine=None):
        """Record one named phase's wall time (and cycles, if a machine
        is supplied)."""
        profile = PhaseProfile(name=name)
        cycles_before = machine.cycles if machine is not None else 0
        wall_before = time.perf_counter()
        try:
            yield profile
        finally:
            profile.wall_time_s = time.perf_counter() - wall_before
            if machine is not None:
                profile.cycles = machine.cycles - cycles_before
            self.phases.append(profile)

    def finish(self, status: str, machine=None, registry=None,
               **outcome) -> "RunManifest":
        """Seal the manifest: outcome, metric/PMC snapshots, totals."""
        self.outcome = {"status": status}
        self.outcome.update(outcome)
        registry = registry if registry is not None else REGISTRY
        self.metrics = registry.snapshot()
        if machine is not None:
            self.pmc = machine.cpu.pmc.snapshot()
            self.totals["cycles"] = machine.cycles
            self.totals["simulated_seconds"] = machine.seconds()
        self.totals["wall_time_s"] = time.perf_counter() - self._wall_start
        return self

    def absorb(self, doc: dict) -> "RunManifest":
        """Fold another manifest document (typically a merged campaign
        manifest from :mod:`repro.runner`) into this one: its phases are
        appended, metrics and PMC snapshots merged, its simulated
        totals added, and its recovery/observability lineage (resume /
        retried / supervision / spans / progress) lifted into this
        outcome.  Wall time stays this manifest's own."""
        for phase in doc.get("phases", ()):
            self.phases.append(PhaseProfile(**phase))
        self.metrics = merge_metric_snapshots(self.metrics,
                                              doc.get("metrics", {}))
        self.pmc = merge_pmc(self.pmc, doc.get("pmc", {}))
        totals = doc.get("totals", {})
        self.totals["cycles"] += totals.get("cycles", 0)
        self.totals["simulated_seconds"] += totals.get(
            "simulated_seconds", 0.0)
        for lineage in ("resume", "retried", "supervision",
                        "spans", "progress"):
            if lineage in doc.get("outcome", {}):
                self.outcome.setdefault(lineage, doc["outcome"][lineage])
        return self

    # -- export / import ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": MANIFEST_SCHEMA,
            "command": self.command,
            "created_at": self.created_at,
            "config": self.config,
            "phases": [p.to_dict() for p in self.phases],
            "metrics": self.metrics,
            "pmc": self.pmc,
            "outcome": self.outcome,
            "totals": self.totals,
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def write(self, results_dir, *, name: str | None = None) -> Path:
        """Write the manifest under *results_dir*; returns the path."""
        results_dir = Path(results_dir)
        results_dir.mkdir(parents=True, exist_ok=True)
        if name is None:
            stamp = time.strftime("%Y%m%d-%H%M%S")
            name = f"{self.command.replace(' ', '_')}-{stamp}.json"
        path = results_dir / name
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @staticmethod
    def load(path) -> dict:
        """Load a manifest document (as a plain dict) from disk."""
        with open(path, encoding="utf-8") as fp:
            return json.load(fp)
