"""Structured event trace: typed events with cycle timestamps.

The simulator emits *events* — instruction retire, speculation episode,
frontend/backend resteer, syscall, probe round — into a process-wide
:class:`TraceCollector`.  Sinks consume them: a JSON-lines file sink
(one object per line, schema-versioned) for machine processing, and an
in-memory sink for programmatic consumers such as
:class:`repro.analysis.Tracer`, whose text timeline is just one
rendering of the same event stream.

Emission is a no-op while the collector is disabled; enabling it never
touches simulated state, so tracing is behaviour-neutral by
construction.

Schema (``phantom.trace/1``) — every line carries::

    {"schema": "phantom.trace/1", "kind": <str>, "cycle": <int>, ...}

Event kinds and their extra fields:

* ``retire``        — pc, text, kernel_mode
* ``episode``       — source_pc, predicted_kind, actual_kind, target,
                      reach, flavour ("phantom"|"spectre"),
                      cross_privilege, nested
* ``resteer``       — source ("frontend"|"backend"), pc
* ``syscall``       — nr
* ``probe_round``   — channel, set, misses
* ``span_begin`` / ``span_end`` — name (cycle-bounded phases)
* ``trace_truncated`` — dropped (instructions beyond a tracer's limit)
* ``orphan_episodes`` — count (episodes with no traced instruction)

Supervision/chaos lifecycle events (cycle 0 — they happen in real
time, not simulated time; see :mod:`repro.resilience`):

* ``pool_respawn``  — respawn, hung, requeued (job labels)
* ``watchdog_kill`` — grace_s
* ``backoff``       — respawn, delay_s
* ``job_lost``      — job, requeues, hung
* ``degraded_in_process`` — jobs (labels run without isolation)
* ``checkpoint_write_error`` — job, error
* ``chaos_fault``   — target, fault (the injected fault that fired)
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field

TRACE_SCHEMA = "phantom.trace/1"


@dataclass
class TraceEvent:
    """One typed, cycle-stamped trace event."""

    kind: str
    cycle: int
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = {"schema": TRACE_SCHEMA, "kind": self.kind,
               "cycle": self.cycle}
        out.update(self.fields)
        return out


class MemorySink:
    """Collects events in a list (programmatic consumers)."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class JsonLinesSink:
    """Writes one JSON object per event to a file."""

    def __init__(self, path) -> None:
        self.path = path
        self._fp = open(path, "w", encoding="utf-8")

    def emit(self, event: TraceEvent) -> None:
        json.dump(event.to_dict(), self._fp, separators=(",", ":"))
        self._fp.write("\n")

    def close(self) -> None:
        self._fp.flush()
        self._fp.close()


class TraceCollector:
    """Fan-out point between the simulator's emitters and the sinks."""

    def __init__(self) -> None:
        self.enabled = False
        self._sinks: list = []

    # -- sink management ---------------------------------------------------

    def add_sink(self, sink) -> None:
        self._sinks.append(sink)
        self.enabled = True

    def remove_sink(self, sink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)
        if not self._sinks:
            self.enabled = False

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()
        self._sinks.clear()
        self.enabled = False

    @contextmanager
    def sink(self, sink):
        """Attach *sink* for the duration of a ``with`` block."""
        self.add_sink(sink)
        try:
            yield sink
        finally:
            self.remove_sink(sink)

    # -- emission ----------------------------------------------------------

    def emit(self, kind: str, cycle: int, **fields) -> None:
        """Emit one event (call only behind an ``enabled`` check on hot
        paths; calling while disabled is still safe)."""
        if not self.enabled:
            return
        event = TraceEvent(kind=kind, cycle=cycle, fields=fields)
        for sink in self._sinks:
            sink.emit(event)

    @contextmanager
    def span(self, name: str, cycle_fn):
        """Bracket a phase with span_begin/span_end events.

        *cycle_fn* supplies the current cycle count (e.g.
        ``lambda: machine.cycles``).
        """
        self.emit("span_begin", cycle_fn(), name=name)
        try:
            yield
        finally:
            self.emit("span_end", cycle_fn(), name=name)


#: The process-wide collector the simulator emits into.
TRACE = TraceCollector()


def read_jsonl(path) -> list[dict]:
    """Load a JSON-lines trace file back into dicts."""
    events = []
    with open(path, encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
