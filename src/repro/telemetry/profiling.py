"""Wall-clock profiling hooks feeding the metrics registry.

These measure *host* time (how long the simulator itself takes), not
simulated cycles — the instrument for "make a hot path measurably
faster" claims.  Observations land in a histogram named
``profile_<name>_seconds`` in the process registry, so profiles travel
inside run manifests like any other metric.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from .metrics import REGISTRY


@contextmanager
def profile_block(name: str, *, registry=None):
    """Time a block and record the duration; yields a dict that gains
    an ``elapsed_s`` key on exit (usable even when telemetry is off).

    The histogram instrument binds lazily, on the first observation
    made while the registry is enabled — profiling with telemetry off
    must leave no ``profile_*`` entry behind in later snapshots.
    """
    registry = registry if registry is not None else REGISTRY
    result: dict = {}
    start = time.perf_counter()
    try:
        yield result
    finally:
        result["elapsed_s"] = time.perf_counter() - start
        if registry.enabled:
            registry.histogram(
                f"profile_{name}_seconds").observe(result["elapsed_s"])


def time_callable(fn, *, repeat: int = 5, number: int = 10_000) -> float:
    """Best-of-*repeat* seconds for *number* calls of *fn* (timeit-style,
    min defeats scheduler noise)."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, time.perf_counter() - start)
    return best
