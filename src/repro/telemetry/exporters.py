"""Exporters: stitched span traces and metric snapshots, outbound.

Two wire formats the rest of the world already speaks:

* :func:`to_chrome_trace` — Chrome trace-event JSON (the ``"X"``
  complete-event form) from ``phantom.span/1`` records; load the
  result straight into Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``.  Each emitting process becomes one track, so
  the worker fan-out of a campaign is visible as parallel lanes.
* :func:`to_openmetrics` — OpenMetrics text exposition from any
  metrics snapshot (the ``{"counters": …, "gauges": …, "histograms":
  …}`` dict a :class:`~repro.telemetry.MetricsRegistry` produces and
  run manifests embed), optionally folding in a PMC snapshot.  Point a
  Prometheus scrape job (or ``promtool check metrics``) at the output.

Both are pure functions of their inputs — no I/O, no registry access —
so they export live snapshots and years-old archived manifests alike.
"""

from __future__ import annotations

import re

#: Leading component every exported metric name carries.
_PREFIX = "phantom_"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_KEY = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")


def to_chrome_trace(records: list[dict]) -> dict:
    """``phantom.span/1`` records → a Chrome trace-event document.

    Timestamps are rebased to the earliest span so the trace starts at
    t=0 regardless of wall-clock epoch; span/parent ids and status ride
    along in ``args`` for drill-down in the Perfetto UI.
    """
    events = []
    t0 = min((r["start_s"] for r in records), default=0.0)
    for record in records:
        events.append({
            "name": record["name"],
            "cat": "phantom" if record["status"] == "ok"
                   else "phantom,error",
            "ph": "X",
            "ts": round((record["start_s"] - t0) * 1e6, 3),
            "dur": round(record["duration_s"] * 1e6, 3),
            "pid": record.get("pid", 0),
            "tid": record.get("pid", 0),
            "args": {"span_id": record["span_id"],
                     "parent_id": record.get("parent_id"),
                     "status": record["status"],
                     **record.get("attrs", {})},
        })
    trace_ids = sorted({r.get("trace_id", "") for r in records})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": "phantom.span/1",
                      "trace_id": trace_ids[0] if trace_ids else ""},
    }


def _metric_name(key: str) -> tuple[str, str]:
    """``"name{a=b,c=d}"`` → (sanitized metric name, label body)."""
    match = _KEY.match(key)
    name = _NAME_OK.sub("_", match.group("name"))
    labels = match.group("labels") or ""
    return name, labels


def _label_block(label_body: str, base: dict) -> str:
    """Merge instrument labels with base labels into ``{k="v",…}``."""
    pairs = dict(base)
    if label_body:
        for part in label_body.split(","):
            key, _, value = part.partition("=")
            pairs[key.strip()] = value.strip()
    if not pairs:
        return ""
    inner = ",".join(f'{_NAME_OK.sub("_", k)}="{v}"'
                     for k, v in sorted(pairs.items()))
    return "{" + inner + "}"


def _num(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def to_openmetrics(metrics: dict, *, pmc: dict | None = None) -> str:
    """A metrics snapshot (+ optional PMC bank) → OpenMetrics text.

    Counters become ``counter`` families (``_total`` samples), gauges
    become ``gauge``\\ s, histograms expose their count/sum/min/max as a
    gauge quartet (the snapshot's summary is what travels in manifests;
    per-bucket data stays in-process, see
    ``repro.telemetry.metrics.HISTOGRAM_BUCKETS``).  PMC values
    export as counters under ``phantom_pmc_``.  Ends with the
    mandatory ``# EOF`` marker.
    """
    base_labels = dict(metrics.get("base_labels", {}))
    lines: list[str] = []

    for key, value in sorted(metrics.get("counters", {}).items()):
        name, labels = _metric_name(key)
        family = f"{_PREFIX}{name}"
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family}_total{_label_block(labels, base_labels)} "
                     f"{_num(value)}")

    for key, value in sorted(metrics.get("gauges", {}).items()):
        name, labels = _metric_name(key)
        family = f"{_PREFIX}{name}"
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family}{_label_block(labels, base_labels)} "
                     f"{_num(value)}")

    for key, summary in sorted(metrics.get("histograms", {}).items()):
        name, labels = _metric_name(key)
        family = f"{_PREFIX}{name}"
        block = _label_block(labels, base_labels)
        lines.append(f"# TYPE {family} gauge")
        for stat in ("count", "sum", "min", "max"):
            lines.append(f"{family}_{stat}{block} "
                         f"{_num(summary.get(stat))}")

    for key, value in sorted((pmc or {}).items()):
        name, labels = _metric_name(key)
        family = f"{_PREFIX}pmc_{name}"
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family}_total{_label_block(labels, base_labels)} "
                     f"{_num(value)}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"
