"""Process-wide metrics registry: counters, gauges, histograms.

Every simulator layer binds its instruments once (at construction) and
emits into them on the hot path.  Emission is a no-op while the
registry is disabled — one attribute load and a branch — so leaving the
hooks compiled in costs effectively nothing when nobody is measuring
(the instrumentation contract every later perf PR relies on).

Instruments carry **labels** (``uarch="zen2"``, ``level="L1I"``),
resolved at bind time; the registry additionally applies *base labels*
(set once per run, e.g. the µarch under test) to every snapshot.

The registry is deliberately simulator-agnostic: it never touches
cycles or machine state, so enabling or disabling telemetry cannot
change any experiment's simulated behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing count, bound to one label set."""

    __slots__ = ("_registry", "name", "labels", "value")

    def __init__(self, registry: "MetricsRegistry", name: str,
                 labels: dict[str, str]) -> None:
        self._registry = registry
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if self._registry.enabled:
            self.value += n


class Gauge:
    """Point-in-time value (set, not accumulated)."""

    __slots__ = ("_registry", "name", "labels", "value")

    def __init__(self, registry: "MetricsRegistry", name: str,
                 labels: dict[str, str]) -> None:
        self._registry = registry
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value) -> None:
        if self._registry.enabled:
            self.value = value

    def add(self, n=1) -> None:
        if self._registry.enabled:
            self.value += n


#: Histogram bucket upper bounds (powers of two; last bucket is +inf).
HISTOGRAM_BUCKETS = tuple(1 << i for i in range(1, 21))


class Histogram:
    """Power-of-two bucketed histogram with count/sum/min/max."""

    __slots__ = ("_registry", "name", "labels", "count", "sum",
                 "min", "max", "buckets")

    def __init__(self, registry: "MetricsRegistry", name: str,
                 labels: dict[str, str]) -> None:
        self._registry = registry
        self.name = name
        self.labels = labels
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self.buckets = [0] * (len(HISTOGRAM_BUCKETS) + 1)

    def observe(self, value) -> None:
        if not self._registry.enabled:
            return
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(HISTOGRAM_BUCKETS):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def summary(self) -> dict:
        mean = self.sum / self.count if self.count else 0.0
        return {"count": self.count, "sum": self.sum, "mean": mean,
                "min": self.min, "max": self.max}


class MetricsRegistry:
    """A process-wide bank of named, labelled instruments."""

    def __init__(self) -> None:
        self.enabled = False
        self.base_labels: dict[str, str] = {}
        self._instruments: dict[tuple, object] = {}

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero every instrument (bindings stay valid)."""
        for inst in self._instruments.values():
            if isinstance(inst, Histogram):
                inst.count = 0
                inst.sum = 0.0
                inst.min = inst.max = None
                inst.buckets = [0] * len(inst.buckets)
            else:
                inst.value = 0

    def set_base_labels(self, **labels: str) -> None:
        """Labels applied to the whole snapshot (e.g. ``uarch='zen2'``)."""
        self.base_labels = {k: str(v) for k, v in labels.items()}

    # -- binding -----------------------------------------------------------

    def _bind(self, cls, name: str, labels: dict[str, str]):
        key = (cls.__name__, name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(self, name, labels)
            self._instruments[key] = inst
        return inst

    def counter(self, name: str, **labels: str) -> Counter:
        return self._bind(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._bind(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._bind(Histogram, name, labels)

    # -- export ------------------------------------------------------------

    def snapshot(self, *, include_zero: bool = False) -> dict:
        """JSON-ready dump: ``{kind: {name{labels}: value}}``."""
        out: dict[str, dict] = {"counters": {}, "gauges": {},
                                "histograms": {}}
        for inst in self._instruments.values():
            label_txt = ",".join(f"{k}={v}"
                                 for k, v in sorted(inst.labels.items()))
            key = f"{inst.name}{{{label_txt}}}" if label_txt else inst.name
            if isinstance(inst, Counter):
                if inst.value or include_zero:
                    out["counters"][key] = inst.value
            elif isinstance(inst, Gauge):
                if inst.value or include_zero:
                    out["gauges"][key] = inst.value
            elif isinstance(inst, Histogram):
                if inst.count or include_zero:
                    out["histograms"][key] = inst.summary()
        out["base_labels"] = dict(self.base_labels)
        return out


#: The process-wide registry every simulator layer binds against.
REGISTRY = MetricsRegistry()


def counter(name: str, **labels: str) -> Counter:
    return REGISTRY.counter(name, **labels)


def gauge(name: str, **labels: str) -> Gauge:
    return REGISTRY.gauge(name, **labels)


def histogram(name: str, **labels: str) -> Histogram:
    return REGISTRY.histogram(name, **labels)
