"""Merging telemetry across runs: metric snapshots, PMC banks, docs.

The parallel campaign runner (:mod:`repro.runner`) executes every job
in its own metrics scope — a worker process, or a reset registry in
serial mode — and each job returns a small ``phantom.run-manifest/1``
document.  These helpers fold those per-job documents into one
campaign-level view:

* **counters** and **pmc** values are totals, so they add;
* **gauges** are point-in-time values with no cross-job ordering, so
  the merge keeps the maximum;
* **histograms** combine exactly (counts and sums add, min/max widen,
  the mean is recomputed).

All functions are pure: inputs are never mutated.
"""

from __future__ import annotations


def _merge_histogram(a: dict, b: dict) -> dict:
    count = a.get("count", 0) + b.get("count", 0)
    total = a.get("sum", 0.0) + b.get("sum", 0.0)
    mins = [v for v in (a.get("min"), b.get("min")) if v is not None]
    maxs = [v for v in (a.get("max"), b.get("max")) if v is not None]
    return {"count": count, "sum": total,
            "mean": total / count if count else 0.0,
            "min": min(mins) if mins else None,
            "max": max(maxs) if maxs else None}


def merge_metric_snapshots(base: dict, other: dict) -> dict:
    """Fold one registry snapshot into another (see module doc)."""
    out = {
        "counters": dict(base.get("counters", {})),
        "gauges": dict(base.get("gauges", {})),
        "histograms": dict(base.get("histograms", {})),
    }
    for key, value in other.get("counters", {}).items():
        out["counters"][key] = out["counters"].get(key, 0) + value
    for key, value in other.get("gauges", {}).items():
        out["gauges"][key] = max(out["gauges"].get(key, value), value)
    for key, value in other.get("histograms", {}).items():
        if key in out["histograms"]:
            out["histograms"][key] = _merge_histogram(
                out["histograms"][key], value)
        else:
            out["histograms"][key] = dict(value)
    labels_a = base.get("base_labels", {})
    labels_b = other.get("base_labels", {})
    out["base_labels"] = {k: v for k, v in labels_a.items()
                          if labels_b.get(k, v) == v} or dict(labels_b)
    return out


def merge_pmc(base: dict, other: dict) -> dict:
    """Sum two performance-counter snapshots."""
    out = dict(base)
    for name, value in other.items():
        out[name] = out.get(name, 0) + value
    return out
