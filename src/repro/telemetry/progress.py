"""Live campaign progress: ``phantom.progress/1`` events + TTY line.

A thousand-job campaign used to be silent until its merged manifest
appeared.  The :class:`ProgressReporter` turns the executor's
``on_job_done`` stream into two live views:

* a machine-readable JSONL event stream (``--progress FILE`` on the
  CLI) — one ``phantom.progress/1`` object per campaign begin/end and
  per finished job, carrying done/failed/retried counts, throughput
  and an ETA, so dashboards and orchestrators can watch a run without
  parsing human output;
* a ``repro top``-style single-line TTY renderer (carriage-return
  rewrite, auto-enabled when stderr is a terminal) for humans.

The reporter never touches results or manifests — it observes the
:class:`~repro.runner.JobResult` stream and stays strictly on the
observability side of the PR-1 contract: with no stream and no TTY it
is never constructed, and campaign output is byte-identical either
way.  One reporter may serve several sequential campaigns (the
``leak`` command runs four); :meth:`begin` resets the counters and the
events carry the campaign name.
"""

from __future__ import annotations

import json
import time

PROGRESS_SCHEMA = "phantom.progress/1"


def _fmt_eta(seconds: float | None) -> str:
    if seconds is None:
        return "--:--"
    seconds = max(0, int(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}:{seconds % 3600 // 60:02d}:" \
               f"{seconds % 60:02d}"
    return f"{seconds // 60:02d}:{seconds % 60:02d}"


class ProgressReporter:
    """Fan the executor's job-completion stream out to live views.

    *stream* (optional) receives one JSON line per event; *tty*
    (optional) receives the single-line renderer.  *clock* is
    injectable for deterministic tests.
    """

    def __init__(self, *, stream=None, tty=None,
                 clock=time.monotonic) -> None:
        self.stream = stream
        self.tty = tty
        self._clock = clock
        self.campaign = ""
        self.total = 0
        self.done = 0
        self.failed = 0
        self.retried = 0
        self._started = clock()

    # -- lifecycle ---------------------------------------------------------

    def begin(self, *, campaign: str, total: int, done: int = 0) -> None:
        """Start (or restart, for the next campaign) the counters.

        *done* pre-counts jobs inherited from a resume journal, so the
        ETA reflects the work actually remaining.
        """
        self.campaign = campaign
        self.total = total
        self.done = done
        self.failed = 0
        self.retried = 0
        self._started = self._clock()
        self._emit("campaign_begin")
        self._render()

    def end(self, status: str) -> None:
        self._emit("campaign_end", status=status)
        if self.tty is not None:
            self._render()
            self.tty.write("\n")
            self.tty.flush()

    def close(self) -> None:
        if self.stream is not None:
            try:
                self.stream.flush()
            except (OSError, ValueError):
                pass

    # -- the event stream --------------------------------------------------

    def job_done(self, label: str, *, ok: bool,
                 retried: bool = False) -> None:
        """Record one finished unit of work and emit/render."""
        self.done += 1
        if not ok:
            self.failed += 1
        if retried:
            self.retried += 1
        self._emit("job_done", job=label,
                   status="success" if ok else "failure")
        self._render()

    def on_job_done(self, result) -> None:
        """``run_campaign(on_job_done=…)``-compatible adapter."""
        self.job_done(result.spec.label, ok=result.ok,
                      retried=getattr(result, "attempts", 1) > 1)

    # -- derived state -----------------------------------------------------

    def snapshot(self) -> dict:
        elapsed = max(self._clock() - self._started, 1e-9)
        rate = self.done / elapsed
        remaining = max(self.total - self.done, 0)
        eta = remaining / rate if self.done and remaining else \
            (0.0 if not remaining else None)
        return {"done": self.done, "failed": self.failed,
                "retried": self.retried, "total": self.total,
                "elapsed_s": round(elapsed, 3),
                "jobs_per_s": round(rate, 3),
                "eta_s": round(eta, 3) if eta is not None else None}

    def _emit(self, event: str, **fields) -> None:
        if self.stream is None:
            return
        doc = {"schema": PROGRESS_SCHEMA, "event": event,
               "campaign": self.campaign}
        doc.update(fields)
        doc.update(self.snapshot())
        try:
            self.stream.write(json.dumps(doc, separators=(",", ":"))
                              + "\n")
            self.stream.flush()
        except (OSError, ValueError):
            self.stream = None   # a closed pipe must not kill the run

    def _render(self) -> None:
        if self.tty is None:
            return
        snap = self.snapshot()
        width = 24
        filled = int(width * self.done / self.total) if self.total else 0
        bar = "#" * filled + "." * (width - filled)
        line = (f"[{self.campaign}] {bar} {self.done}/{self.total} "
                f"done  {self.failed} failed  {self.retried} retried  "
                f"{snap['jobs_per_s']:.1f} job/s  "
                f"eta {_fmt_eta(snap['eta_s'])}")
        try:
            self.tty.write("\r" + line[:119].ljust(79))
            self.tty.flush()
        except (OSError, ValueError):
            self.tty = None
