"""Campaign-wide distributed tracing: ``phantom.span/1`` records.

Phantom's methodology is *observing* where in a pipeline a
misprediction becomes visible; this module applies the same discipline
to our own campaign fleet.  A **span** is one named wall-clock interval
— a campaign, a job, a phase inside a job, a fast-path compile, a
checkpoint flush — recorded as one JSON line:

.. code-block:: json

    {"schema": "phantom.span/1", "name": "matrix[zen2/jmp/call]",
     "trace_id": "…32 hex…", "span_id": "…16 hex…",
     "parent_id": "…16 hex…", "start_s": 1723000000.0, "duration_s": 0.12,
     "status": "ok", "pid": 4242, "attrs": {"attempt": 0}}

Three rules make the layer fit the repo's telemetry contract:

* **Disabled tracing is a no-op branch.**  The process-wide
  :data:`SPANS` recorder starts disabled; every emission site guards on
  ``SPANS.enabled`` (or goes through :meth:`SpanRecorder.span`, which
  yields a shared null span when disabled).  Enabling it never touches
  simulated state, so observables are bit-identical with spans on or
  off.
* **Context propagates through job specs.**  The parent opens a
  campaign root span and stamps a :class:`TraceContext` (trace id,
  parent span id, capture directory) into each
  :class:`~repro.runner.JobSpec`; workers :meth:`~SpanRecorder.adopt`
  the context and append their spans to a per-worker
  ``worker-<pid>.jsonl`` file in the same directory.  The stitcher
  (:func:`stitch`) later merges every file into one causally-ordered
  trace.
* **Structure is deterministic at any ``--jobs``.**  Span ids derive
  from SHA-256 over ``(trace_id, parent_id, name, seq)`` — never from
  pids, clocks or worker identity — and the sequence number counts
  same-named siblings within the emitting process (explicitly the
  attempt number for job spans).  Two runs of the same campaign produce
  the same tree of names and parent/child edges whether one worker ran
  everything or sixteen shared the load; only the timing fields differ.

Exporters for the stitched trace live in
:mod:`repro.telemetry.exporters` (Chrome trace-event JSON for Perfetto,
OpenMetrics text for metrics snapshots); ``repro trace summarize`` and
``repro trace export`` are the CLI front ends.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

SPAN_SCHEMA = "phantom.span/1"

#: Name of the stitched, causally-ordered output file inside a capture
#: directory (excluded when re-reading the directory's raw records).
STITCHED_NAME = "trace.jsonl"

SPAN_JSON_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "$id": "phantom.span/1",
    "title": "Phantom distributed-trace span record",
    "type": "object",
    "required": ["schema", "name", "trace_id", "span_id", "parent_id",
                 "start_s", "duration_s", "status", "pid", "attrs"],
    "properties": {
        "schema": {"type": "string", "enum": ["phantom.span/1"]},
        "name": {"type": "string"},
        "trace_id": {"type": "string"},
        "span_id": {"type": "string"},
        "parent_id": {"type": ["string", "null"]},
        "start_s": {"type": "number"},
        "duration_s": {"type": "number"},
        "status": {"type": "string", "enum": ["ok", "error"]},
        "pid": {"type": "integer"},
        "attrs": {"type": "object"},
    },
}


def validate_span(doc: dict) -> None:
    """Raise :class:`repro.telemetry.SchemaError` on a malformed record."""
    from .schema import validate

    validate(doc, SPAN_JSON_SCHEMA)


def new_trace_id() -> str:
    """A fresh 128-bit trace id (hex)."""
    return os.urandom(16).hex()


def derive_span_id(trace_id: str, parent_id: str | None, name: str,
                   seq: int) -> str:
    """Deterministic 64-bit span id.

    SHA-256 over the causal coordinates only — never the pid, worker or
    clock — so the id of, say, job ``matrix[zen2/jmp/call]`` under a
    given campaign span is the same whichever worker runs it.  That is
    what makes stitched traces structurally identical at any ``--jobs``.
    """
    blob = f"{trace_id}|{parent_id or ''}|{name}|{seq}".encode()
    return hashlib.sha256(blob).hexdigest()[:16]


@dataclass(frozen=True)
class TraceContext:
    """The cross-process propagation envelope.

    Frozen and picklable: the executor stamps one into every
    :class:`~repro.runner.JobSpec` it dispatches, and
    :func:`~repro.runner.execute_job` hands it to
    :meth:`SpanRecorder.adopt` inside the worker.  It deliberately
    carries no file handles or clocks — only the coordinates a worker
    needs to keep emitting into the same trace.
    """

    trace_id: str
    parent_span_id: str
    span_dir: str


class Span:
    """One open (or closed) span; build records via the recorder."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start_s",
                 "duration_s", "status", "pid", "attrs")

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: str | None, attrs: dict | None = None) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = time.time()
        self.duration_s = 0.0
        self.status = "ok"
        self.pid = os.getpid()
        self.attrs = dict(attrs or {})

    def set(self, *, status: str | None = None, **attrs) -> "Span":
        """Attach attributes (and optionally a status) to the span."""
        if status is not None:
            self.status = status
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict:
        return {"schema": SPAN_SCHEMA, "name": self.name,
                "trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id, "start_s": self.start_s,
                "duration_s": self.duration_s, "status": self.status,
                "pid": self.pid, "attrs": self.attrs}


class _NullSpan:
    """What :meth:`SpanRecorder.span` yields while disabled: accepts
    the same calls, records nothing."""

    __slots__ = ()

    span_id = None
    parent_id = None

    def set(self, *, status: str | None = None, **attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class SpanRecorder:
    """Process-wide span emitter with one JSONL file per process.

    Lifecycle: the *parent* process calls :meth:`start` (opens the root
    span and a ``parent-<pid>.jsonl`` file) and eventually
    :meth:`finish`; *workers* call :meth:`adopt` with the propagated
    :class:`TraceContext` (idempotent per process — pool workers are
    reused across jobs).  Every record is flushed as it is written, so
    a SIGKILLed worker loses at most its currently-open spans, never
    previously completed ones, and a forked child never replays the
    parent's buffer.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.trace_id: str | None = None
        self._dir: Path | None = None
        self._fh = None
        self._pid: int | None = None
        self._stack: list[Span] = []
        self._seq: dict[tuple, int] = {}
        self._root: Span | None = None
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def _configure(self, span_dir, trace_id: str, role: str) -> None:
        path = Path(span_dir)
        path.mkdir(parents=True, exist_ok=True)
        self._dir = path
        self.trace_id = trace_id
        self._pid = os.getpid()
        self._fh = open(path / f"{role}-{self._pid}.jsonl", "a",
                        encoding="utf-8")
        self._stack = []
        self._seq = {}
        self._root = None
        self.enabled = True

    def start(self, span_dir, *, name: str,
              trace_id: str | None = None) -> Span:
        """Parent-side: configure capture under *span_dir* and open the
        trace's root span, named ``run:<name>``."""
        self._configure(span_dir, trace_id or new_trace_id(), "parent")
        self._root = self._open(f"run:{name}", parent_id=None)
        return self._root

    def adopt(self, ctx: TraceContext) -> None:
        """Worker-side: join the trace described by *ctx*.

        Re-configures only when the context is new to this process —
        a reused pool worker keeps its file; a freshly forked child
        (same context, different pid) gets its own, so two processes
        never interleave writes into one file.
        """
        if (self.enabled and self._pid == os.getpid()
                and self.trace_id == ctx.trace_id
                and self._dir == Path(ctx.span_dir)):
            return
        self._configure(ctx.span_dir, ctx.trace_id, "worker")

    def finish(self, *, status: str = "ok") -> Path | None:
        """Close the root span (if any) and stop recording.

        Returns the capture directory so callers can stitch it."""
        if not self.enabled:
            return None
        while self._stack and self._stack[-1] is not self._root:
            self._close(self._stack[-1])
        if self._root is not None:
            self._root.status = status
            self._close(self._root)
        span_dir = self._dir
        if self._fh is not None:
            self._fh.close()
        self.enabled = False
        self.trace_id = None
        self._dir = None
        self._fh = None
        self._root = None
        self._stack = []
        self._seq = {}
        return span_dir

    # -- emission ----------------------------------------------------------

    @property
    def current_id(self) -> str | None:
        """Span id of the innermost open span (implicit parent)."""
        return self._stack[-1].span_id if self._stack else None

    def context(self) -> TraceContext | None:
        """The propagation envelope for the current position, or
        ``None`` while disabled."""
        if not self.enabled:
            return None
        return TraceContext(trace_id=self.trace_id,
                            parent_span_id=self.current_id or "",
                            span_dir=str(self._dir))

    def _next_seq(self, parent_id: str | None, name: str) -> int:
        with self._lock:
            key = (parent_id, name)
            seq = self._seq.get(key, 0)
            self._seq[key] = seq + 1
        return seq

    def _open(self, name: str, parent_id: str | None, *,
              seq: int | None = None, attrs: dict | None = None) -> Span:
        if seq is None:
            seq = self._next_seq(parent_id, name)
        span = Span(name, self.trace_id,
                    derive_span_id(self.trace_id, parent_id, name, seq),
                    parent_id, attrs)
        self._stack.append(span)
        return span

    def _write(self, span: Span) -> None:
        with self._lock:
            self._fh.write(json.dumps(span.to_dict(),
                                      separators=(",", ":")) + "\n")
            self._fh.flush()

    def _close(self, span: Span) -> None:
        span.duration_s = time.time() - span.start_s
        if span in self._stack:
            self._stack.remove(span)
        self._write(span)

    @contextmanager
    def span(self, name: str, *, parent_id: str | None = "",
             seq: int | None = None, **attrs):
        """Bracket a wall-clock interval with one span.

        ``parent_id`` defaults to the innermost open span (pass an
        explicit id — e.g. from a propagated context — to parent across
        processes); ``seq`` overrides the sibling counter when the
        caller knows a deterministic one (job attempt numbers).  While
        disabled this yields the shared :data:`NULL_SPAN` and records
        nothing.  An escaping exception marks the span ``error``.
        """
        if not self.enabled:
            yield NULL_SPAN
            return
        parent = self.current_id if parent_id == "" else parent_id
        span = self._open(name, parent, seq=seq, attrs=attrs)
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            self._close(span)

    def event(self, name: str, *, parent_id: str | None = "",
              status: str = "ok", **attrs) -> None:
        """A zero-duration span: something *happened* (a watchdog kill,
        a chaos fault firing) rather than took time.  Thread-safe —
        the watchdog sidecar emits from its own thread."""
        if not self.enabled:
            return
        parent = self.current_id if parent_id == "" else parent_id
        seq = self._next_seq(parent, name)
        span = Span(name, self.trace_id,
                    derive_span_id(self.trace_id, parent, name, seq),
                    parent, attrs)
        span.status = status
        self._write(span)


#: The process-wide recorder every instrumentation point emits into.
SPANS = SpanRecorder()


# -- stitching ---------------------------------------------------------------

def read_spans(source) -> list[dict]:
    """Load raw span records from a capture directory or a single file.

    Directories are read as every ``*.jsonl`` except the stitched
    output; malformed lines are skipped (a SIGKILLed worker may tear
    its last record — that costs one span, not the trace).
    """
    source = Path(source)
    if source.is_dir():
        paths = sorted(p for p in source.glob("*.jsonl")
                       if p.name != STITCHED_NAME)
    else:
        paths = [source]
    records: list[dict] = []
    for path in paths:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(doc, dict) and doc.get("schema") == SPAN_SCHEMA:
                    records.append(doc)
    return records


@dataclass
class StitchedTrace:
    """One causally-ordered trace assembled from per-process files."""

    spans: list[dict] = field(default_factory=list)   # preorder walk
    roots: list[dict] = field(default_factory=list)
    orphans: list[dict] = field(default_factory=list)
    by_id: dict = field(default_factory=dict)
    children: dict = field(default_factory=dict)

    def child_spans(self, span: dict) -> list[dict]:
        return self.children.get(span["span_id"], [])

    def problems(self) -> list[str]:
        """Well-formedness violations (empty for a healthy trace)."""
        out = []
        if len(self.roots) != 1:
            out.append(f"expected exactly one root span, "
                       f"found {len(self.roots)}")
        if self.orphans:
            names = sorted({o["name"] for o in self.orphans})
            out.append(f"{len(self.orphans)} orphan span(s) reference "
                       f"missing parents: {', '.join(names[:5])}")
        return out


def stitch(records: list[dict]) -> StitchedTrace:
    """Merge raw records into one causally-ordered trace.

    Parents precede children (preorder walk from the roots); siblings
    order by start time, tie-broken by span id so the stitched output
    is stable.  Spans whose parent id resolves to no record — a parent
    lost to a SIGKILL before it could close — are collected as orphans
    and appended after the rooted spans rather than dropped.
    """
    by_id = {r["span_id"]: r for r in records}
    children: dict[str, list[dict]] = {}
    roots: list[dict] = []
    orphans: list[dict] = []
    for record in records:
        parent = record.get("parent_id")
        if parent is None:
            roots.append(record)
        elif parent in by_id:
            children.setdefault(parent, []).append(record)
        else:
            orphans.append(record)

    def order(siblings: list[dict]) -> list[dict]:
        return sorted(siblings, key=lambda r: (r["start_s"], r["span_id"]))

    for parent_id in children:
        children[parent_id] = order(children[parent_id])
    roots = order(roots)
    orphans = order(orphans)

    spans: list[dict] = []
    stack = list(reversed(roots))
    while stack:
        record = stack.pop()
        spans.append(record)
        stack.extend(reversed(children.get(record["span_id"], ())))
    spans.extend(orphans)
    return StitchedTrace(spans=spans, roots=roots, orphans=orphans,
                         by_id=by_id, children=children)


def stitch_to_file(span_dir, *, out=None) -> Path:
    """Stitch a capture directory and write the ordered trace to
    ``<dir>/trace.jsonl`` (or *out*); returns the written path."""
    span_dir = Path(span_dir)
    trace = stitch(read_spans(span_dir))
    path = Path(out) if out is not None else span_dir / STITCHED_NAME
    with open(path, "w", encoding="utf-8") as fh:
        for record in trace.spans:
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
    return path


def trace_structure(trace: StitchedTrace) -> tuple:
    """The trace's shape with every execution detail erased.

    A nested ``(name, (child, …))`` tuple per root, children sorted —
    equal structures mean the same span names connected by the same
    parent/child edges, which is exactly the ``--jobs``-independence
    guarantee (timing, pids and ids are allowed to differ)."""
    def shape(record: dict) -> tuple:
        kids = tuple(sorted(shape(child)
                            for child in trace.child_spans(record)))
        return (record["name"], kids)

    return tuple(sorted(shape(root) for root in trace.roots))


def critical_path(trace: StitchedTrace) -> list[dict]:
    """Root-to-leaf chain that dominated the wall clock: from each
    span, descend into its longest child."""
    if not trace.roots:
        return []
    path = [max(trace.roots, key=lambda r: r["duration_s"])]
    while True:
        kids = trace.child_spans(path[-1])
        if not kids:
            return path
        path.append(max(kids, key=lambda r: r["duration_s"]))


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    return f"{seconds * 1000:7.2f}ms"


def summarize_trace(trace: StitchedTrace) -> list[str]:
    """Text summary: critical path, then a per-span-name table
    (count / total / mean / min / max) — the phase histogram."""
    lines: list[str] = []
    if not trace.spans:
        return ["no spans"]
    root = trace.roots[0] if trace.roots else trace.spans[0]
    lines.append(f"trace {root['trace_id']}: {len(trace.spans)} spans, "
                 f"root {root['name']!r} {_fmt_s(root['duration_s'])}")
    for problem in trace.problems():
        lines.append(f"WARNING: {problem}")

    lines.append("critical path:")
    for depth, span in enumerate(critical_path(trace)):
        lines.append(f"  {'  ' * depth}{_fmt_s(span['duration_s'])}  "
                     f"{span['name']}")

    by_name: dict[str, list[float]] = {}
    for span in trace.spans:
        by_name.setdefault(span["name"], []).append(span["duration_s"])
    lines.append("spans by name:")
    width = max(len(name) for name in by_name)
    lines.append(f"  {'name':<{width}s}  {'count':>5s}  {'total':>9s}  "
                 f"{'mean':>9s}  {'min':>9s}  {'max':>9s}")
    for name in sorted(by_name, key=lambda n: -sum(by_name[n])):
        durations = by_name[name]
        lines.append(
            f"  {name:<{width}s}  {len(durations):>5d}  "
            f"{_fmt_s(sum(durations)):>9s}  "
            f"{_fmt_s(sum(durations) / len(durations)):>9s}  "
            f"{_fmt_s(min(durations)):>9s}  {_fmt_s(max(durations)):>9s}")
    errors = [s for s in trace.spans if s["status"] != "ok"]
    if errors:
        lines.append(f"errors: {len(errors)} span(s) closed with "
                     f"status=error "
                     f"({', '.join(sorted({s['name'] for s in errors})[:5])})")
    return lines
