"""Manifest post-processing: human summaries and run-to-run diffs.

This is the seed of the perf-trajectory tooling: ``repro stats a.json``
renders one run; ``repro stats a.json b.json`` diffs two runs of the
same experiment so a perf PR can show exactly which counters moved and
by how much.
"""

from __future__ import annotations


def _fmt_count(n) -> str:
    if n is None:                      # empty-histogram min/max
        return "-"
    return f"{n:,}" if isinstance(n, int) else f"{n:,.3f}"


def _flatten_histograms(metrics: dict) -> dict:
    """``{name: {count, sum, …}}`` → ``{name.count: v, name.sum: v}``,
    the counter-shaped view sections and diffs work on."""
    flat: dict = {}
    for key, summary in metrics.get("histograms", {}).items():
        flat[f"{key}.count"] = summary.get("count", 0)
        flat[f"{key}.sum"] = summary.get("sum", 0.0)
    return flat


def _fmt_delta(before, after) -> str:
    delta = after - before
    sign = "+" if delta >= 0 else ""
    if before:
        return f"{sign}{_fmt_count(delta)} ({sign}{delta / before * 100:.1f}%)"
    return f"{sign}{_fmt_count(delta)}"


def summarize_manifest(doc: dict) -> list[str]:
    """Render one manifest as a text summary (list of lines)."""
    config = doc.get("config", {})
    outcome = doc.get("outcome", {})
    totals = doc.get("totals", {})
    lines = [f"run: {doc.get('command', '?')}  "
             f"[{doc.get('created_at', '?')}]",
             f"status: {outcome.get('status', '?')}"]
    for key, value in sorted(outcome.items()):
        if key != "status":
            lines.append(f"  {key}: {value}")
    if config:
        cfg = ", ".join(f"{k}={v}" for k, v in sorted(config.items())
                        if not isinstance(v, dict))
        lines.append(f"config: {cfg}")
        mitigations = config.get("mitigations")
        if mitigations:
            on = [k for k, v in sorted(mitigations.items()) if v]
            lines.append(f"mitigations on: {', '.join(on) if on else 'none'}")
    lines.append(f"totals: {_fmt_count(totals.get('cycles', 0))} cycles, "
                 f"{totals.get('simulated_seconds', 0.0) * 1000:.3f} ms "
                 f"simulated, {totals.get('wall_time_s', 0.0):.3f} s wall")
    phases = doc.get("phases", [])
    if phases:
        lines.append("phases:")
        width = max(len(p["name"]) for p in phases)
        for p in phases:
            lines.append(f"  {p['name']:<{width}s}  "
                         f"{_fmt_count(p['cycles']):>14s} cycles  "
                         f"{p['wall_time_s']:8.3f} s wall")
    pmc = doc.get("pmc", {})
    nonzero = {k: v for k, v in pmc.items() if v}
    if nonzero:
        lines.append("pmc:")
        width = max(len(k) for k in nonzero)
        for name, value in sorted(nonzero.items()):
            lines.append(f"  {name:<{width}s}  {_fmt_count(value):>14s}")
    counters = doc.get("metrics", {}).get("counters", {})
    if counters:
        lines.append("metrics:")
        width = max(len(k) for k in counters)
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:<{width}s}  {_fmt_count(value):>14s}")
    histograms = doc.get("metrics", {}).get("histograms", {})
    if histograms:
        lines.append("histograms:")
        width = max(len(k) for k in histograms)
        for name, summary in sorted(histograms.items()):
            lines.append(
                f"  {name:<{width}s}  "
                f"count {_fmt_count(summary.get('count', 0)):>10s}  "
                f"sum {_fmt_count(summary.get('sum', 0.0)):>12s}  "
                f"min {_fmt_count(summary.get('min')):>10s}  "
                f"max {_fmt_count(summary.get('max')):>10s}")
    return lines


def _diff_section(title: str, before: dict, after: dict,
                  lines: list[str]) -> None:
    keys = sorted(set(before) | set(after))
    changed = [(k, before.get(k, 0), after.get(k, 0)) for k in keys
               if before.get(k, 0) != after.get(k, 0)]
    if not changed:
        return
    lines.append(f"{title}:")
    width = max(len(k) for k, _, _ in changed)
    for key, b, a in changed:
        lines.append(f"  {key:<{width}s}  {_fmt_count(b):>14s} -> "
                     f"{_fmt_count(a):>14s}  {_fmt_delta(b, a)}")


def diff_manifests(before: dict, after: dict) -> list[str]:
    """Render the differences between two manifests (list of lines)."""
    lines = [f"diff: {before.get('command', '?')} "
             f"[{before.get('created_at', '?')}] -> "
             f"{after.get('command', '?')} "
             f"[{after.get('created_at', '?')}]"]
    status = (before.get("outcome", {}).get("status", "?"),
              after.get("outcome", {}).get("status", "?"))
    if status[0] != status[1]:
        lines.append(f"status: {status[0]} -> {status[1]}")
    else:
        lines.append(f"status: {status[0]} (both)")

    totals_b = before.get("totals", {})
    totals_a = after.get("totals", {})
    for key in ("cycles", "simulated_seconds", "wall_time_s"):
        b, a = totals_b.get(key, 0), totals_a.get(key, 0)
        if b != a:
            lines.append(f"totals.{key}: {_fmt_count(b)} -> "
                         f"{_fmt_count(a)}  {_fmt_delta(b, a)}")

    phases_b = {p["name"]: p["cycles"] for p in before.get("phases", [])}
    phases_a = {p["name"]: p["cycles"] for p in after.get("phases", [])}
    _diff_section("phase cycles", phases_b, phases_a, lines)
    _diff_section("pmc", before.get("pmc", {}), after.get("pmc", {}), lines)
    _diff_section("metric counters",
                  before.get("metrics", {}).get("counters", {}),
                  after.get("metrics", {}).get("counters", {}), lines)
    _diff_section("metric histograms",
                  _flatten_histograms(before.get("metrics", {})),
                  _flatten_histograms(after.get("metrics", {})), lines)
    if len(lines) == 2:
        lines.append("no differences in phases, pmc, counters, "
                     "or histograms")
    return lines
