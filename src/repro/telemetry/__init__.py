"""Unified telemetry: metrics registry, structured traces, run manifests.

Three cooperating pieces (see ``docs/observability.md``):

* :mod:`.metrics` — a process-wide registry of counters/gauges/
  histograms the simulator layers emit into (no-op when disabled);
* :mod:`.trace`   — typed, cycle-stamped events (retire, episode,
  resteer, syscall, probe round) fanned out to JSON-lines or in-memory
  sinks;
* :mod:`.manifest` — one JSON document per experiment run: config,
  phase profile, metric/PMC snapshots, outcome.  Summarize or diff
  manifests with :mod:`.stats` (``repro stats`` on the CLI);
* :mod:`.spans`   — campaign-wide distributed tracing
  (``phantom.span/1`` wall-clock spans with cross-process context
  propagation, stitched into one causally-ordered trace);
* :mod:`.progress` — live ``phantom.progress/1`` job-completion events
  plus a ``repro top``-style single-line TTY renderer;
* :mod:`.exporters` — Chrome trace-event JSON (Perfetto) from span
  records, OpenMetrics text from metric snapshots.

Everything is behaviour-neutral: telemetry never touches simulated
cycles or machine state, so enabling it cannot change any result.
"""

from __future__ import annotations

from . import metrics as metrics
from .exporters import to_chrome_trace, to_openmetrics
from .manifest import MANIFEST_SCHEMA, PhaseProfile, RunManifest, \
    machine_config
from .merge import merge_metric_snapshots, merge_pmc
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, REGISTRY, \
    counter, gauge, histogram
from .profiling import profile_block, time_callable
from .progress import PROGRESS_SCHEMA, ProgressReporter
from .schema import CONTRACT_VIOLATION_JSON_SCHEMA, INTAKE_JSON_SCHEMA, \
    MANIFEST_JSON_SCHEMA, SchemaError, validate, validate_intake, \
    validate_manifest, validate_violation
from .spans import SPAN_JSON_SCHEMA, SPAN_SCHEMA, SPANS, Span, \
    SpanRecorder, StitchedTrace, TraceContext, critical_path, read_spans, \
    stitch, stitch_to_file, summarize_trace, trace_structure, validate_span
from .stats import diff_manifests, summarize_manifest
from .trace import JsonLinesSink, MemorySink, TRACE, TRACE_SCHEMA, \
    TraceCollector, TraceEvent, read_jsonl

__all__ = [
    "CONTRACT_VIOLATION_JSON_SCHEMA",
    "Counter",
    "INTAKE_JSON_SCHEMA",
    "Gauge",
    "Histogram",
    "JsonLinesSink",
    "MANIFEST_JSON_SCHEMA",
    "MANIFEST_SCHEMA",
    "MemorySink",
    "MetricsRegistry",
    "PROGRESS_SCHEMA",
    "PhaseProfile",
    "ProgressReporter",
    "REGISTRY",
    "RunManifest",
    "SPANS",
    "SPAN_JSON_SCHEMA",
    "SPAN_SCHEMA",
    "SchemaError",
    "Span",
    "SpanRecorder",
    "StitchedTrace",
    "TRACE",
    "TRACE_SCHEMA",
    "TraceCollector",
    "TraceContext",
    "TraceEvent",
    "counter",
    "critical_path",
    "diff_manifests",
    "enable_metrics",
    "gauge",
    "histogram",
    "machine_config",
    "merge_metric_snapshots",
    "merge_pmc",
    "metrics",
    "one_line_summary",
    "profile_block",
    "read_jsonl",
    "read_spans",
    "stitch",
    "stitch_to_file",
    "summarize_manifest",
    "summarize_trace",
    "time_callable",
    "to_chrome_trace",
    "to_openmetrics",
    "trace_structure",
    "validate",
    "validate_intake",
    "validate_manifest",
    "validate_span",
    "validate_violation",
]


def enable_metrics(**base_labels: str) -> MetricsRegistry:
    """Switch the process registry on (optionally setting base labels)."""
    if base_labels:
        REGISTRY.set_base_labels(**base_labels)
    REGISTRY.enable()
    return REGISTRY


def one_line_summary(*machines) -> str:
    """One line of telemetry for example scripts: episodes, resteers,
    probe rounds, simulated time — summed over *machines* plus the
    process metrics registry."""
    frontend = sum(m.cpu.pmc.read("resteer_frontend") for m in machines)
    backend = sum(m.cpu.pmc.read("resteer_backend") for m in machines)
    syscalls = sum(m.cpu.pmc.read("syscalls") for m in machines)
    seconds = sum(m.seconds() for m in machines)
    probe_rounds = sum(
        inst.value for inst in REGISTRY._instruments.values()
        if isinstance(inst, Counter) and inst.name == "sidechannel_probe_rounds")
    return (f"telemetry: {frontend + backend} speculation episodes "
            f"({frontend} frontend / {backend} backend resteers), "
            f"{probe_rounds} probe rounds, {syscalls} syscalls, "
            f"{seconds * 1000:.3f} ms simulated")
