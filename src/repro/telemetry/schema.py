"""JSON Schema for run manifests, plus a dependency-free validator.

The canonical schema is the ``MANIFEST_JSON_SCHEMA`` dict below; a
byte-identical copy is checked into ``tests/data/run_manifest.schema.json``
so CI can validate CLI output without importing this package, and a test
asserts the two copies never drift.

:func:`validate` implements the subset of JSON Schema the manifest
schema uses (type, properties, required, additionalProperties, items,
enum).  When the real ``jsonschema`` package is installed it is used
instead — same verdicts, better error messages.
"""

from __future__ import annotations

MANIFEST_JSON_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "$id": "phantom.run-manifest/1",
    "title": "Phantom reproduction run manifest",
    "type": "object",
    "required": ["schema", "command", "created_at", "config", "phases",
                 "metrics", "pmc", "outcome", "totals"],
    "properties": {
        "schema": {"type": "string", "enum": ["phantom.run-manifest/1"]},
        "command": {"type": "string"},
        "created_at": {"type": "string"},
        "config": {"type": "object"},
        "phases": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "cycles", "wall_time_s"],
                "properties": {
                    "name": {"type": "string"},
                    "cycles": {"type": "integer"},
                    "wall_time_s": {"type": "number"},
                },
            },
        },
        "metrics": {
            "type": "object",
            "required": ["counters", "gauges", "histograms"],
            "properties": {
                "counters": {"type": "object"},
                "gauges": {"type": "object"},
                "histograms": {"type": "object"},
                "base_labels": {"type": "object"},
            },
        },
        "pmc": {"type": "object"},
        "outcome": {
            "type": "object",
            "required": ["status"],
            "properties": {
                "status": {"type": "string"},
                "attempts": {"type": "integer"},
                "attempt_history": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["attempt", "error_kind", "error"],
                        "properties": {
                            "attempt": {"type": "integer"},
                            "error_kind": {"type": "string"},
                            "error": {"type": "string"},
                        },
                    },
                },
                "resume": {
                    "type": "object",
                    "required": ["from", "jobs_skipped", "jobs_rerun"],
                    "properties": {
                        "from": {"type": "string"},
                        "jobs_skipped": {"type": "integer"},
                        "jobs_rerun": {"type": "integer"},
                    },
                },
                "retried": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["job", "attempts", "history"],
                        "properties": {
                            "job": {"type": "string"},
                            "attempts": {"type": "integer"},
                            "history": {"type": "array"},
                        },
                    },
                },
                "supervision": {
                    "type": "object",
                    "properties": {
                        "pool_respawns": {"type": "integer"},
                        "requeues": {"type": "integer"},
                        "watchdog_kills": {"type": "integer"},
                        "jobs_lost": {"type": "integer"},
                        "degraded_in_process": {"type": "integer"},
                    },
                },
            },
        },
        "totals": {
            "type": "object",
            "required": ["cycles", "wall_time_s", "simulated_seconds"],
            "properties": {
                "cycles": {"type": "integer"},
                "wall_time_s": {"type": "number"},
                "simulated_seconds": {"type": "number"},
            },
        },
    },
}

CONTRACT_VIOLATION_JSON_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "$id": "phantom.contract-violation/1",
    "title": "Phantom leakage-contract violation artifact",
    "type": "object",
    "required": ["schema", "contract", "mitigation", "uarches",
                 "protects", "classes", "divergences", "pair"],
    "properties": {
        "schema": {"type": "string",
                   "enum": ["phantom.contract-violation/1"]},
        "contract": {"type": "string"},
        "mitigation": {"type": "string"},
        "uarches": {"type": "array", "items": {"type": "string"}},
        "protects": {"type": "array", "items": {"type": "string"}},
        "classes": {"type": "array", "items": {"type": "string"}},
        "divergences": {"type": "array", "items": {"type": "string"}},
        "shrink_checks": {"type": "integer"},
        "pair": {
            "type": "object",
            "required": ["schema", "name", "secret_a", "secret_b",
                         "program"],
            "properties": {
                "schema": {"type": "string",
                           "enum": ["phantom.fuzz-pair/1"]},
                "name": {"type": "string"},
                "secret_a": {"type": "string"},
                "secret_b": {"type": "string"},
                "program": {
                    "type": "object",
                    "required": ["schema", "name", "seed", "shape",
                                 "user_items"],
                    "properties": {
                        "schema": {"type": "string",
                                   "enum": ["phantom.fuzz-program/1"]},
                        "name": {"type": "string"},
                        "seed": {"type": "integer"},
                        "shape": {"type": "string"},
                        "user_items": {"type": "array",
                                       "items": {"type": "object"}},
                        "kernel_items": {"type": "array",
                                         "items": {"type": "object"}},
                        "patches": {"type": "array",
                                    "items": {"type": "object"}},
                        "secret_loads": {"type": "array",
                                         "items": {"type": "array"}},
                        "regs": {"type": "object"},
                        "data": {"type": "string"},
                        "runs": {"type": "integer"},
                        "max_instructions": {"type": "integer"},
                        "description": {"type": "string"},
                    },
                },
            },
        },
    },
}

INTAKE_JSON_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "$id": "phantom.intake/1",
    "title": "Phantom campaign-service intake journal record",
    "type": "object",
    "required": ["schema", "campaign_id", "seq", "state"],
    "properties": {
        "schema": {"type": "string", "enum": ["phantom.intake/1"]},
        "campaign_id": {"type": "string"},
        "seq": {"type": "integer"},
        "state": {"type": "string",
                  "enum": ["admitted", "done", "failed"]},
        "tenant": {"type": "string"},
        "request": {"type": "object"},
        "idempotency_key": {"type": "string"},
        "submitted_at": {"type": "number"},
        "finished_at": {"type": "number"},
        "memo": {"type": "object"},
        "manifest": {"type": "object"},
        "error": {"type": "object"},
    },
    "additionalProperties": False,
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


class SchemaError(ValueError):
    """A document does not conform to its schema."""


def _check(doc, schema: dict, path: str) -> None:
    expected = schema.get("type")
    if expected is not None:
        py_type = _TYPES[expected]
        if isinstance(doc, bool) and expected in ("integer", "number"):
            raise SchemaError(f"{path}: expected {expected}, got bool")
        if not isinstance(doc, py_type):
            raise SchemaError(f"{path}: expected {expected}, "
                              f"got {type(doc).__name__}")
    if "enum" in schema and doc not in schema["enum"]:
        raise SchemaError(f"{path}: {doc!r} not in {schema['enum']}")
    if isinstance(doc, dict):
        for name in schema.get("required", ()):
            if name not in doc:
                raise SchemaError(f"{path}: missing required key {name!r}")
        props = schema.get("properties", {})
        for key, value in doc.items():
            if key in props:
                _check(value, props[key], f"{path}.{key}")
            elif schema.get("additionalProperties") is False:
                raise SchemaError(f"{path}: unexpected key {key!r}")
    if isinstance(doc, list) and "items" in schema:
        for i, item in enumerate(doc):
            _check(item, schema["items"], f"{path}[{i}]")


def validate(doc: dict, schema: dict | None = None) -> None:
    """Raise :class:`SchemaError` if *doc* does not match *schema*
    (defaults to the run-manifest schema)."""
    schema = schema if schema is not None else MANIFEST_JSON_SCHEMA
    try:
        import jsonschema
    except ImportError:
        _check(doc, schema, "$")
        return
    try:
        jsonschema.validate(doc, schema)
    except jsonschema.ValidationError as exc:
        raise SchemaError(str(exc)) from exc


def validate_manifest(doc: dict) -> None:
    """Validate one run-manifest document."""
    validate(doc, MANIFEST_JSON_SCHEMA)


def validate_violation(doc: dict) -> None:
    """Validate one contract-violation artifact."""
    validate(doc, CONTRACT_VIOLATION_JSON_SCHEMA)


def validate_intake(doc: dict) -> None:
    """Validate one service intake-journal record."""
    validate(doc, INTAKE_JSON_SCHEMA)
