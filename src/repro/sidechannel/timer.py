"""Timing measurement with realistic jitter.

The simulator's cache latencies are deterministic; real ``rdtscp``
measurements are not.  The :class:`Timer` adds seeded Gaussian noise on
top of the true latency, so every attack has to do the same thresholding
and repetition work as on hardware — including the §7.3 noise handling.
"""

from __future__ import annotations

import random
from collections.abc import Callable


class Timer:
    """Jittered cycle measurements over a machine's timing primitives."""

    def __init__(self, machine, *, rng: random.Random | None = None,
                 sigma: float | None = None) -> None:
        self.machine = machine
        self.rng = rng or random.Random(0x7133)
        self._sigma = sigma

    @property
    def sigma(self) -> float:
        if self._sigma is not None:
            return self._sigma
        return self.machine.timing_jitter_sigma

    def _jitter(self, cycles: int) -> int:
        noisy = cycles + self.rng.gauss(0.0, self.sigma)
        return max(0, round(noisy))

    def time_load(self, va: int) -> int:
        """Measured latency of a data load at *va* (jittered cycles)."""
        return self._jitter(self.machine.timed_user_load(va))

    def time_exec(self, va: int) -> int:
        """Measured latency of an instruction fetch at *va*."""
        return self._jitter(self.machine.timed_user_exec(va))

    def time_call(self, fn: Callable[[], None]) -> int:
        """Measured duration of *fn* via the cycle counter."""
        start = self.machine.cycles
        fn()
        return self._jitter(self.machine.cycles - start)


def calibrate_threshold(timer: Timer, va: int, *, rounds: int = 32,
                        exec_: bool = False) -> int:
    """Return a hit/miss latency threshold for address *va*.

    Measures *rounds* hot and cold accesses and picks the midpoint of
    the two means — the standard Flush+Reload calibration loop.
    """
    measure = timer.time_exec if exec_ else timer.time_load
    touch = (timer.machine.user_exec_touch if exec_
             else timer.machine.user_touch)
    hot, cold = [], []
    for _ in range(rounds):
        touch(va)
        hot.append(measure(va))
        timer.machine.clflush(va)
        cold.append(measure(va))
    hot_mean = sum(hot) / len(hot)
    cold_mean = sum(cold) / len(cold)
    if not cold_mean > hot_mean:
        raise RuntimeError("calibration failed: no hit/miss separation")
    return round((hot_mean + cold_mean) / 2)
