"""Side-channel substrate: timers, Prime+Probe, Flush+Reload."""

from .flushreload import ReloadBuffer, SLOTS, SLOT_STRIDE
from .primeprobe import (L1I_SETS, L1I_WAYS, L2_SETS, L2_WAYS,
                         PrimeProbeL1D, PrimeProbeL1I, PrimeProbeL2,
                         probe_threshold)
from .timer import Timer, calibrate_threshold

__all__ = [
    "L1I_SETS",
    "L1I_WAYS",
    "L2_SETS",
    "L2_WAYS",
    "PrimeProbeL1D",
    "PrimeProbeL1I",
    "PrimeProbeL2",
    "ReloadBuffer",
    "SLOTS",
    "SLOT_STRIDE",
    "Timer",
    "calibrate_threshold",
    "probe_threshold",
]
