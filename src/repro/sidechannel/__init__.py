"""Side-channel substrate: timers, Prime+Probe, Flush+Reload, and the
:class:`LeakTrace` observer extraction the leakage contracts compare."""

from .flushreload import ReloadBuffer, SLOTS, SLOT_STRIDE
from .leaktrace import CHANNELS, LeakTrace, SPEC_COUNTERS, capture
from .primeprobe import (L1I_SETS, L1I_WAYS, L2_SETS, L2_WAYS,
                         PrimeProbeL1D, PrimeProbeL1I, PrimeProbeL2,
                         probe_threshold)
from .timer import Timer, calibrate_threshold

__all__ = [
    "CHANNELS",
    "L1I_SETS",
    "L1I_WAYS",
    "L2_SETS",
    "L2_WAYS",
    "PrimeProbeL1D",
    "PrimeProbeL1I",
    "PrimeProbeL2",
    "LeakTrace",
    "ReloadBuffer",
    "SLOTS",
    "SLOT_STRIDE",
    "SPEC_COUNTERS",
    "Timer",
    "calibrate_threshold",
    "capture",
    "probe_threshold",
]
