"""Flush+Reload over memory the attacker shares with the victim.

The MDS leak (paper §7.4) shares a *reload buffer* with the kernel
through physmap: the attacker's huge page has one physical address,
reachable both as the user mapping (flush/reload side) and as
``physmap + PA`` (the kernel-side address the disclosure gadget
dereferences).  Cache lines are physical, so a transient kernel load
makes the user reload fast.
"""

from __future__ import annotations

from ..params import HUGE_PAGE_SIZE
from ..telemetry import metrics as _metrics
from ..telemetry.trace import TRACE as _TRACE
from .timer import Timer, calibrate_threshold

_REG = _metrics.REGISTRY

#: One slot per byte value, each on its own cache line.
SLOTS = 256
SLOT_STRIDE = 64


class ReloadBuffer:
    """A 256-slot Flush+Reload buffer in a user huge page."""

    def __init__(self, machine, va: int = 0x0000_0000_7800_0000,
                 timer: Timer | None = None) -> None:
        self.machine = machine
        self.va = va
        self.timer = timer or Timer(machine)
        self._m_flushes = _metrics.counter("sidechannel_flushes",
                                           channel="FR")
        self._m_probes = _metrics.counter("sidechannel_probe_rounds",
                                          channel="FR")
        machine.map_user_huge(va)
        # Touch every slot once so translations and backing exist.
        for slot in range(SLOTS):
            machine.user_touch(self.slot_va(slot))
        self.threshold = calibrate_threshold(self.timer, self.slot_va(0))

    def slot_va(self, slot: int) -> int:
        if not 0 <= slot < SLOTS:
            raise ValueError(f"slot out of range: {slot}")
        return self.va + slot * SLOT_STRIDE

    def flush(self) -> None:
        """Flush all 256 slots."""
        if _REG.enabled:
            self._m_flushes.value += 1
        for slot in range(SLOTS):
            self.machine.clflush(self.slot_va(slot))

    def reload(self) -> list[int]:
        """Reload every slot; returns the slots that hit (fast)."""
        hits = []
        for slot in range(SLOTS):
            if self.timer.time_load(self.slot_va(slot)) < self.threshold:
                hits.append(slot)
        if _REG.enabled:
            self._m_probes.value += 1
        if _TRACE.enabled:
            _TRACE.emit("probe_round", self.machine.cycles,
                        channel="FR", hits=len(hits))
        return hits

    def leak_byte(self, trigger, *, retries: int = 3) -> int | None:
        """Flush, run *trigger*, reload; returns the leaked byte.

        Retries when zero or multiple slots hit.  Returns None when no
        signal is observed after all retries.
        """
        for _ in range(retries):
            self.flush()
            trigger()
            hits = self.reload()
            if len(hits) == 1:
                return hits[0]
        return None
