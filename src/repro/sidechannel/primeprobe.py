"""Prime+Probe on the L1 instruction cache and the L2 cache.

L1I: 64 sets indexed purely by page-offset bits [6:12), so any eight
user pages provide one eviction line per way for every set.

L2: 1024 sets indexed by PA bits [6:16); a single 2 MiB transparent huge
page (physically contiguous, 2 MiB-aligned) gives 32 same-set lines at
64 KiB stride for any chosen absolute L2 set — this is why the paper's
physmap exploit allocates huge pages (§7.2).
"""

from __future__ import annotations

from ..params import HUGE_PAGE_SIZE, PAGE_SIZE
from ..telemetry import metrics as _metrics
from ..telemetry.trace import TRACE as _TRACE
from .timer import Timer

_REG = _metrics.REGISTRY

L1I_SETS = 64
L1I_WAYS = 8
L2_SETS = 1024
L2_WAYS = 8
L2_SET_STRIDE = L2_SETS * 64  # 64 KiB between same-set lines


class _ProbeTelemetry:
    """Shared instrumentation: per-channel round counters and
    ``probe_round`` trace events (no-op while telemetry is disabled)."""

    channel = "?"

    def _bind_telemetry(self) -> None:
        self._m_primes = _metrics.counter("sidechannel_prime_rounds",
                                          channel=self.channel)
        self._m_probes = _metrics.counter("sidechannel_probe_rounds",
                                          channel=self.channel)

    def _count_prime(self) -> None:
        if _REG.enabled:
            self._m_primes.value += 1

    def _count_probe(self, set_index: int, misses: int) -> None:
        if _REG.enabled:
            self._m_probes.value += 1
        if _TRACE.enabled:
            _TRACE.emit("probe_round", self.machine.cycles,
                        channel=self.channel, set=set_index, misses=misses)


class PrimeProbeL1I(_ProbeTelemetry):
    """Prime+Probe over the instruction cache via executable user pages."""

    channel = "L1I"

    def __init__(self, machine, base_va: int = 0x0000_0000_6000_0000,
                 timer: Timer | None = None) -> None:
        self.machine = machine
        self.base_va = base_va
        self.timer = timer or Timer(machine)
        self._bind_telemetry()
        params = machine.mem.hier.params
        #: Per-line L1-hit/deeper threshold (evicted prime lines usually
        #: fall only to L2, so the relevant edge is L1 vs L2 latency).
        self.line_threshold = (params.l1_latency + params.l2_latency) // 2
        for i in range(L1I_WAYS):
            machine.map_user(base_va + i * PAGE_SIZE, PAGE_SIZE)

    def _lines(self, set_index: int) -> list[int]:
        if not 0 <= set_index < L1I_SETS:
            raise ValueError(f"L1I set out of range: {set_index}")
        offset = set_index * 64
        return [self.base_va + i * PAGE_SIZE + offset
                for i in range(L1I_WAYS)]

    def prime(self, set_index: int) -> None:
        """Fill every way of *set_index* with attacker lines."""
        self._count_prime()
        for va in self._lines(set_index):
            self.machine.user_exec_touch(va)

    def probe(self, set_index: int) -> int:
        """Total fetch latency over the primed lines (MRU-first)."""
        return sum(self.timer.time_exec(va)
                   for va in reversed(self._lines(set_index)))

    def probe_misses(self, set_index: int) -> int:
        """Number of primed lines that left L1 (per-line thresholding —
        much better SNR than the summed latency under timer jitter)."""
        misses = sum(self.timer.time_exec(va) > self.line_threshold
                     for va in reversed(self._lines(set_index)))
        self._count_probe(set_index, misses)
        return misses


class PrimeProbeL1D(_ProbeTelemetry):
    """Prime+Probe over the data cache via user data pages (64 sets)."""

    channel = "L1D"

    def __init__(self, machine, base_va: int = 0x0000_0000_6800_0000,
                 timer: Timer | None = None) -> None:
        self.machine = machine
        self.base_va = base_va
        self.timer = timer or Timer(machine)
        self._bind_telemetry()
        for i in range(L1I_WAYS):
            machine.map_user(base_va + i * PAGE_SIZE, PAGE_SIZE, nx=True)

    def _lines(self, set_index: int) -> list[int]:
        if not 0 <= set_index < L1I_SETS:
            raise ValueError(f"L1D set out of range: {set_index}")
        offset = set_index * 64
        return [self.base_va + i * PAGE_SIZE + offset
                for i in range(L1I_WAYS)]

    def prime(self, set_index: int) -> None:
        self._count_prime()
        for va in self._lines(set_index):
            self.machine.user_touch(va)

    def probe(self, set_index: int) -> int:
        return sum(self.timer.time_load(va)
                   for va in reversed(self._lines(set_index)))

    def probe_misses(self, set_index: int) -> int:
        params = self.machine.mem.hier.params
        threshold = (params.l1_latency + params.l2_latency) // 2
        misses = sum(self.timer.time_load(va) > threshold
                     for va in reversed(self._lines(set_index)))
        self._count_probe(set_index, misses)
        return misses


class PrimeProbeL2(_ProbeTelemetry):
    """Prime+Probe over L2 via a 2 MiB huge page (data loads)."""

    channel = "L2"

    def __init__(self, machine, huge_va: int = 0x0000_0000_7000_0000,
                 timer: Timer | None = None) -> None:
        self.machine = machine
        self.huge_va = huge_va
        self.timer = timer or Timer(machine)
        self._bind_telemetry()
        machine.map_user_huge(huge_va)

    def _lines(self, set_index: int) -> list[int]:
        if not 0 <= set_index < L2_SETS:
            raise ValueError(f"L2 set out of range: {set_index}")
        offset = set_index * 64
        return [self.huge_va + offset + k * L2_SET_STRIDE
                for k in range(L2_WAYS)]

    def prime(self, set_index: int) -> None:
        self._count_prime()
        for va in self._lines(set_index):
            self.machine.user_touch(va)

    def probe(self, set_index: int) -> int:
        return sum(self.timer.time_load(va)
                   for va in reversed(self._lines(set_index)))

    def probe_misses(self, set_index: int) -> int:
        """Lines evicted from L2 entirely (memory-latency reloads)."""
        params = self.machine.mem.hier.params
        threshold = (params.l2_latency + params.mem_latency) // 2
        misses = sum(self.timer.time_load(va) > threshold
                     for va in reversed(self._lines(set_index)))
        self._count_probe(set_index, misses)
        return misses

    @staticmethod
    def set_of_phys(pa: int) -> int:
        """The absolute L2 set a physical address maps to."""
        return (pa >> 6) & (L2_SETS - 1)


def probe_threshold(pp, set_index: int, *, rounds: int = 16,
                    victim=None) -> float:
    """Baseline probe latency for *set_index* (no victim activity)."""
    total = 0
    for _ in range(rounds):
        pp.prime(set_index)
        if victim is not None:
            victim()
        total += pp.probe(set_index)
    return total / rounds
