"""Attacker-observable state, extracted into one comparable record.

A :class:`LeakTrace` is the relational-testing counterpart of the
hardware traces in sca-fuzzer/Revizor: everything an attacker could in
principle observe after a victim ran, normalized into plain comparable
values.  The leakage contracts of :mod:`repro.fuzz.contracts` are
stated over its **channels**:

* ``cycles``        — the elapsed cycle count (timing);
* ``pmc``           — the speculation-related performance counters
  (resteers, phantom fetch/decode/execute, transient loads);
* ``episodes``      — the structural speculation-episode log (source,
  predicted/actual kind, target, pipeline reach);
* ``ret-episodes``  — the return-predictor slice of the episode log
  (anything predicted or decoded as ``ret``) — the Retbleed channel;
* ``icache``        — L1I Prime+Probe residue (per-set resident lines);
* ``dcache``        — L1D residue;
* ``l2``            — L2 residue (the paper's P2 huge-page channel).

Cache residue is recorded as full per-set line addresses in LRU order:
the simulator is deterministic, so two runs that differ only in secret
inputs produce byte-identical residue unless a secret-dependent access
happened — exactly the question a contract asks.  Artifacts store
digests plus the differing sets, never the full residue.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

#: Every observation channel a contract can mention, in report order.
CHANNELS = ("cycles", "pmc", "episodes", "ret-episodes", "icache",
            "dcache", "l2")

#: The PMC events an attacker-side sampler would watch (speculation
#: machinery only — architectural counters like ``instructions`` are
#: not attacker-visible for a victim run).
SPEC_COUNTERS = ("branch_mispredict", "resteer_frontend",
                 "resteer_backend", "phantom_fetch", "phantom_decode",
                 "phantom_exec_uops", "transient_load")


def _residue(cache) -> tuple[tuple[int, tuple[int, ...]], ...]:
    """Non-empty sets of *cache* as ``(set, (line, ...))`` in LRU
    order (replacement order is itself attacker-observable)."""
    out = []
    for index in range(cache.num_sets):
        lines = cache.resident_lines(index)
        if lines:
            out.append((index, tuple(lines)))
    return tuple(out)


def _episode_tuple(episode) -> tuple:
    """Structural view of one episode (cycle stamps excluded — pure
    timing shifts are the ``cycles`` channel's business)."""
    return (episode.source_pc,
            episode.predicted_kind.value
            if episode.predicted_kind is not None else None,
            episode.actual_kind.value,
            episode.target, episode.reach.name,
            episode.frontend_resteer, episode.cross_privilege,
            episode.nested)


@dataclass(frozen=True)
class LeakTrace:
    """One victim run's attacker-observable state, per channel."""

    uarch: str
    cycles: int
    pmc: tuple[tuple[str, int], ...]
    episodes: tuple[tuple, ...]
    ret_episodes: tuple[tuple, ...]
    icache: tuple[tuple[int, tuple[int, ...]], ...]
    dcache: tuple[tuple[int, tuple[int, ...]], ...]
    l2: tuple[tuple[int, tuple[int, ...]], ...]

    def channel(self, name: str):
        if name not in CHANNELS:
            raise ValueError(f"unknown channel {name!r} "
                             f"(one of {CHANNELS})")
        return getattr(self, name.replace("-", "_"))

    def digest(self, name: str) -> str:
        """Stable short digest of one channel (artifact-friendly)."""
        blob = repr(self.channel(name)).encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    def digests(self) -> dict[str, str]:
        return {name: self.digest(name) for name in CHANNELS}

    def diff(self, other: "LeakTrace",
             channels: tuple[str, ...] = CHANNELS) -> list[tuple[str, str]]:
        """Differing channels as ``(channel, summary)`` pairs."""
        out = []
        for name in CHANNELS:
            if name not in channels:
                continue
            mine, theirs = self.channel(name), other.channel(name)
            if mine != theirs:
                out.append((name, _summarize(name, mine, theirs)))
        return out


def _summarize(name: str, mine, theirs) -> str:
    if name == "cycles":
        return f"{mine} != {theirs}"
    if name == "pmc":
        da, db = dict(mine), dict(theirs)
        keys = sorted(k for k in set(da) | set(db)
                      if da.get(k) != db.get(k))
        pairs = ", ".join(f"{k} {da.get(k, 0)}!={db.get(k, 0)}"
                          for k in keys)
        return f"counters differ: {pairs}"
    if name in ("episodes", "ret-episodes"):
        first = next((i for i, pair in enumerate(zip(mine, theirs))
                      if pair[0] != pair[1]), min(len(mine), len(theirs)))
        return (f"{len(mine)} vs {len(theirs)} episode(s), first "
                f"difference at #{first}")
    # cache residue: report the differing sets, a few examples inline
    da, db = dict(mine), dict(theirs)
    sets = sorted(s for s in set(da) | set(db) if da.get(s) != db.get(s))
    examples = "; ".join(
        f"set {s}: {[hex(a) for a in da.get(s, ())]} != "
        f"{[hex(b) for b in db.get(s, ())]}" for s in sets[:2])
    return f"{len(sets)} set(s) differ ({examples})"


def capture(cpu, mem) -> LeakTrace:
    """Extract the trace from a finished run's CPU + memory system.

    Works on the bare fuzz-harness world and the booted
    :class:`~repro.kernel.Machine` alike — both expose the same CPU and
    hierarchy objects.  Enable ``cpu.record_episodes`` before the run
    or the episode channels stay empty.
    """
    hier = mem.hier
    episodes = tuple(_episode_tuple(e) for e in cpu.episodes)
    ret_episodes = tuple(
        e for e in episodes if "ret" in (e[1], e[2]))
    snapshot = cpu.pmc.snapshot()
    counters = tuple((name, snapshot[name]) for name in SPEC_COUNTERS
                     if name in snapshot)
    return LeakTrace(
        uarch=cpu.uarch.name,
        cycles=cpu.cycles,
        pmc=counters,
        episodes=episodes,
        ret_episodes=ret_episodes,
        icache=_residue(hier.l1i),
        dcache=_residue(hier.l1d),
        l2=_residue(hier.l2),
    )
