"""Per-tenant admission control: token-bucket rates and hard quotas.

A multi-tenant service dies the first time one client submits a loop;
admission control is what lets the campaign service absorb heavy
traffic without starving everyone else.  Two mechanisms, both typed
(see :mod:`.errors`) so clients can distinguish "slow down"
(:class:`RateLimited`, retryable after ``retry_after_s``) from "you
are over a hard limit" (:class:`QuotaExceeded`, not retryable until
campaigns finish):

* **Token bucket per tenant** — ``rate_per_s`` submissions refill a
  bucket of depth ``burst``; an empty bucket rejects with the exact
  time until the next token.  Deterministic under an injected clock,
  which is how the tests pin the arithmetic.
* **Hard quotas** — per-campaign job ceiling, concurrent active
  campaigns, and a cumulative job budget (``max_total_jobs``, 0 = off)
  against fleets that stay under the rate but are simply too big.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..telemetry import metrics as _metrics
from .errors import QuotaExceeded, RateLimited


@dataclass(frozen=True)
class TenantPolicy:
    """Admission limits for one tenant (or the service default)."""

    rate_per_s: float = 20.0
    burst: int = 40
    max_jobs_per_campaign: int = 4096
    max_active_campaigns: int = 8
    max_total_jobs: int = 0        # cumulative job budget; 0 = unlimited

    def describe(self) -> dict:
        return {"rate_per_s": self.rate_per_s, "burst": self.burst,
                "max_jobs_per_campaign": self.max_jobs_per_campaign,
                "max_active_campaigns": self.max_active_campaigns,
                "max_total_jobs": self.max_total_jobs}


class TokenBucket:
    """Classic token bucket over an injectable monotonic clock."""

    def __init__(self, rate_per_s: float, burst: int,
                 clock=time.monotonic) -> None:
        self.rate = max(1e-9, float(rate_per_s))
        self.burst = max(1.0, float(burst))
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def try_acquire(self, n: float = 1.0) -> float:
        """Take *n* tokens; returns 0.0 on success, else the seconds
        until *n* tokens will be available (nothing is taken)."""
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return 0.0
        return (n - self._tokens) / self.rate


@dataclass
class _TenantState:
    bucket: TokenBucket
    policy: TenantPolicy
    active_campaigns: int = 0
    total_jobs: int = 0
    submitted: int = 0
    rejected: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


class QuotaManager:
    """Admission decisions for every tenant the service has seen.

    ``overrides`` maps tenant name → :class:`TenantPolicy` for tenants
    with non-default limits (a paying fleet, a throttled abuser); every
    other tenant gets ``default_policy``.  Thread-safe: ``admit`` runs
    on the event loop, ``release`` from campaign worker threads.
    """

    def __init__(self, default_policy: TenantPolicy | None = None,
                 overrides: dict[str, TenantPolicy] | None = None,
                 clock=time.monotonic) -> None:
        self.default_policy = default_policy or TenantPolicy()
        self.overrides = dict(overrides or {})
        self._clock = clock
        self._tenants: dict[str, _TenantState] = {}
        self._lock = threading.Lock()

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self.overrides.get(tenant, self.default_policy)

    def _state(self, tenant: str) -> _TenantState:
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                policy = self.policy_for(tenant)
                state = _TenantState(
                    bucket=TokenBucket(policy.rate_per_s, policy.burst,
                                       self._clock),
                    policy=policy)
                self._tenants[tenant] = state
            return state

    def admit(self, tenant: str, n_jobs: int) -> None:
        """Admit one campaign of *n_jobs* for *tenant* or raise.

        Checks run cheapest-first and only a fully admitted campaign
        consumes a token or counts against quotas, so a rejection
        leaves the tenant's state untouched.
        """
        state = self._state(tenant)
        policy = state.policy
        with state.lock:
            if n_jobs > policy.max_jobs_per_campaign:
                self._reject(state, "service.quota_rejected")
                raise QuotaExceeded(
                    f"campaign of {n_jobs} jobs exceeds tenant "
                    f"{tenant!r}'s per-campaign ceiling of "
                    f"{policy.max_jobs_per_campaign}",
                    tenant=tenant, jobs=n_jobs,
                    max_jobs_per_campaign=policy.max_jobs_per_campaign)
            if state.active_campaigns >= policy.max_active_campaigns:
                self._reject(state, "service.quota_rejected")
                raise QuotaExceeded(
                    f"tenant {tenant!r} already has "
                    f"{state.active_campaigns} active campaigns "
                    f"(limit {policy.max_active_campaigns})",
                    tenant=tenant,
                    max_active_campaigns=policy.max_active_campaigns)
            if policy.max_total_jobs and \
                    state.total_jobs + n_jobs > policy.max_total_jobs:
                self._reject(state, "service.quota_rejected")
                raise QuotaExceeded(
                    f"tenant {tenant!r} would exceed its cumulative "
                    f"job budget ({state.total_jobs} + {n_jobs} > "
                    f"{policy.max_total_jobs})",
                    tenant=tenant, max_total_jobs=policy.max_total_jobs)
            retry_after = state.bucket.try_acquire()
            if retry_after > 0.0:
                self._reject(state, "service.rate_limited")
                raise RateLimited(
                    f"tenant {tenant!r} is over {policy.rate_per_s}/s "
                    f"(burst {policy.burst}); retry in "
                    f"{retry_after:.3f}s",
                    retry_after_s=retry_after, tenant=tenant)
            state.active_campaigns += 1
            state.total_jobs += n_jobs
            state.submitted += 1
        _metrics.REGISTRY.counter("service.admitted").inc()

    @staticmethod
    def _reject(state: _TenantState, counter: str) -> None:
        state.rejected += 1
        _metrics.REGISTRY.counter(counter).inc()

    def release(self, tenant: str) -> None:
        """A campaign for *tenant* left the running set."""
        state = self._state(tenant)
        with state.lock:
            state.active_campaigns = max(0, state.active_campaigns - 1)

    def restore(self, tenant: str, n_jobs: int) -> None:
        """Re-register an already-admitted campaign after a restart.

        Crash recovery must not re-run admission: the campaign was
        admitted by the previous instance (its token was spent, its
        journal record proves it), so only the standing counters —
        active campaigns, cumulative jobs — are restored.  No bucket
        draw, no ceilings: a recovered campaign can never bounce.
        """
        state = self._state(tenant)
        with state.lock:
            state.active_campaigns += 1
            state.total_jobs += n_jobs

    def snapshot(self) -> dict:
        """Per-tenant stats for ``/v1/stats``."""
        with self._lock:
            tenants = dict(self._tenants)
        return {tenant: {"active_campaigns": state.active_campaigns,
                         "total_jobs": state.total_jobs,
                         "submitted": state.submitted,
                         "rejected": state.rejected,
                         "policy": state.policy.describe()}
                for tenant, state in sorted(tenants.items())}
