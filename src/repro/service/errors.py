"""Typed service errors with a wire representation.

Every error the campaign service can hand a client is a
:class:`ServiceError` subclass carrying an HTTP status and a stable
machine-readable ``code``; :meth:`ServiceError.to_doc` renders the
``phantom.error/1`` document the HTTP layer returns, and
:func:`error_from_doc` rebuilds the typed exception client-side so
callers catch :class:`RateLimited` — not "status 429" — on both ends
of the wire.
"""

from __future__ import annotations

from ..errors import ReproError

ERROR_SCHEMA = "phantom.error/1"


class ServiceError(ReproError):
    """Base class for every error the campaign service reports."""

    code = "service_error"
    http_status = 500

    def __init__(self, message: str, **details) -> None:
        super().__init__(message)
        self.details = details

    def to_doc(self) -> dict:
        doc = {"schema": ERROR_SCHEMA, "error": self.code,
               "message": str(self)}
        if self.details:
            doc["details"] = dict(self.details)
        return doc


class BadRequest(ServiceError):
    """The submitted document is not a valid ``phantom.job-request/1``."""

    code = "bad_request"
    http_status = 400


class NotFound(ServiceError):
    """No campaign (or route) with that identity."""

    code = "not_found"
    http_status = 404


class RateLimited(ServiceError):
    """The tenant's token bucket is empty; retry after a delay."""

    code = "rate_limited"
    http_status = 429

    def __init__(self, message: str, *, retry_after_s: float = 0.0,
                 **details) -> None:
        super().__init__(message, retry_after_s=round(retry_after_s, 6),
                         **details)
        self.retry_after_s = retry_after_s


class QuotaExceeded(ServiceError):
    """The tenant is over a hard quota (jobs or active campaigns)."""

    code = "quota_exceeded"
    http_status = 403


class CampaignFailed(ServiceError):
    """A waited-on campaign finished with a failure outcome."""

    code = "campaign_failed"
    http_status = 500


_BY_CODE = {cls.code: cls for cls in
            (ServiceError, BadRequest, NotFound, RateLimited,
             QuotaExceeded, CampaignFailed)}


def error_from_doc(doc: dict, *, http_status: int | None = None
                   ) -> ServiceError:
    """``phantom.error/1`` document → the matching typed exception.

    Unknown codes degrade to the :class:`ServiceError` base (a newer
    server than client must still raise *something* typed).
    """
    code = doc.get("error", "service_error")
    message = doc.get("message", code)
    details = dict(doc.get("details", ()))
    cls = _BY_CODE.get(code, ServiceError)
    if cls is RateLimited:
        retry = details.pop("retry_after_s", 0.0)
        exc = cls(message, retry_after_s=retry, **details)
    else:
        exc = cls(message, **details)
    if http_status is not None:
        exc.details.setdefault("http_status", http_status)
    return exc
