"""Typed service errors with a wire representation.

Every error the campaign service can hand a client is a
:class:`ServiceError` subclass carrying an HTTP status and a stable
machine-readable ``code``; :meth:`ServiceError.to_doc` renders the
``phantom.error/1`` document the HTTP layer returns, and
:func:`error_from_doc` rebuilds the typed exception client-side so
callers catch :class:`RateLimited` — not "status 429" — on both ends
of the wire.
"""

from __future__ import annotations

from ..errors import ReproError

ERROR_SCHEMA = "phantom.error/1"


class ServiceError(ReproError):
    """Base class for every error the campaign service reports.

    ``retry_after_s`` is understood on *every* service error, not just
    rate limits: a full queue and a draining service both tell the
    client when trying again is worthwhile, the HTTP layer mirrors it
    into a ``Retry-After`` header, and the client's backoff honours it
    (see :class:`~repro.service.client.RetryPolicy`).
    """

    code = "service_error"
    http_status = 500

    def __init__(self, message: str, *, retry_after_s: float = 0.0,
                 **details) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)
        self.details = details
        if self.retry_after_s:
            self.details.setdefault("retry_after_s",
                                    round(self.retry_after_s, 6))

    def to_doc(self) -> dict:
        doc = {"schema": ERROR_SCHEMA, "error": self.code,
               "message": str(self)}
        if self.details:
            doc["details"] = dict(self.details)
        return doc


class BadRequest(ServiceError):
    """The submitted document is not a valid ``phantom.job-request/1``."""

    code = "bad_request"
    http_status = 400


class NotFound(ServiceError):
    """No campaign (or route) with that identity."""

    code = "not_found"
    http_status = 404


class RateLimited(ServiceError):
    """The tenant's token bucket is empty; retry after a delay."""

    code = "rate_limited"
    http_status = 429


class Unavailable(ServiceError):
    """The service cannot take the work *right now* — the intake queue
    is full, or the process is draining ahead of a shutdown.  Unlike
    :class:`QuotaExceeded` this is always retryable, and unlike
    :class:`RateLimited` it says nothing about the tenant: the hint in
    ``retry_after_s`` is derived from service-wide backlog."""

    code = "unavailable"
    http_status = 503


class CircuitOpen(Unavailable):
    """Client-side only: the circuit breaker is open, so the request
    was never sent.  Typed like :class:`Unavailable` (same handling —
    back off, try later) but distinguishable by code."""

    code = "circuit_open"


class QuotaExceeded(ServiceError):
    """The tenant is over a hard quota (jobs or active campaigns)."""

    code = "quota_exceeded"
    http_status = 403


class CampaignFailed(ServiceError):
    """A waited-on campaign finished with a failure outcome."""

    code = "campaign_failed"
    http_status = 500


_BY_CODE = {cls.code: cls for cls in
            (ServiceError, BadRequest, NotFound, RateLimited,
             Unavailable, CircuitOpen, QuotaExceeded, CampaignFailed)}


def error_from_doc(doc: dict, *, http_status: int | None = None
                   ) -> ServiceError:
    """``phantom.error/1`` document → the matching typed exception.

    Unknown codes degrade to the :class:`ServiceError` base (a newer
    server than client must still raise *something* typed).  A
    ``retry_after_s`` detail is rehydrated onto *any* error class, so
    the client's backoff sees the server's hint no matter which
    rejection carried it.
    """
    code = doc.get("error", "service_error")
    message = doc.get("message", code)
    details = dict(doc.get("details", ()))
    cls = _BY_CODE.get(code, ServiceError)
    retry = details.pop("retry_after_s", 0.0)
    try:
        retry = max(0.0, float(retry))
    except (TypeError, ValueError):
        retry = 0.0
    exc = cls(message, retry_after_s=retry, **details)
    if http_status is not None:
        exc.details.setdefault("http_status", http_status)
    return exc
