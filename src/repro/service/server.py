"""The campaign service: asyncio HTTP front, queued campaign execution.

``repro serve`` turns the batch runner into a long-lived multi-tenant
system: clients POST ``phantom.job-request/1`` documents, the service
admits them through per-tenant token buckets and quotas
(:mod:`.quota`), queues them, and executes each campaign through
:func:`~repro.service.run_campaign_memoized` — so every job whose
fingerprint is already in the content-addressed result store is
answered from disk instead of simulated, and fresh results are banked
for the next tenant who asks.  Campaign execution itself is the
existing :func:`repro.runner.run_campaign` machinery (process-pool
sharding, supervision, deterministic reduce), untouched.

Concurrency model: the asyncio loop owns all bookkeeping (campaign
table, quota admission, event fan-out); campaigns run one at a time on
a single worker thread (parallelism lives *inside* a campaign, via its
``jobs`` option) so the process-global metrics registry and span
recorder never see two campaigns interleaved.  Worker-side progress
events hop back onto the loop via ``call_soon_threadsafe``.

Durability: with ``--state-dir`` every admitted request is journaled
as a ``phantom.intake/1`` record *before* ``submit`` returns
(:mod:`.journal`), startup replays the journal (finished campaigns
keep their records and idempotency keys, unfinished ones re-enqueue in
admission order and re-run through the memo seam so already-finished
jobs are never executed twice), and SIGTERM drains gracefully
(:mod:`.lifecycle`): the in-flight campaign finishes, the journal is
flushed, new work bounces with a typed 503.

Endpoints (see ``docs/service.md`` for schemas):

* ``GET  /healthz``                 — liveness + queue depth
* ``GET  /readyz``                  — readiness (503 while draining)
* ``GET  /v1/stats``                — store/quota/campaign counters
* ``POST /v1/campaigns``            — submit; ``?wait=1`` blocks until done
* ``GET  /v1/campaigns/<id>``        — status document
* ``GET  /v1/campaigns/<id>/events`` — ``phantom.progress/1`` NDJSON stream
"""

from __future__ import annotations

import asyncio
import collections
import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..telemetry import metrics as _metrics
from ..telemetry.progress import ProgressReporter
from ..telemetry.spans import SPANS
from .errors import BadRequest, NotFound, ServiceError, Unavailable
from .journal import IntakeJournal, IntakeRecord
from .lifecycle import (ServiceLifecycle, install_drain_signal,
                        remove_drain_signal)
from .memo import run_campaign_memoized
from .protocol import (CAMPAIGN_STATUS_SCHEMA, HEALTH_SCHEMA, STATS_SCHEMA,
                       JobRequest)
from .quota import QuotaManager, TenantPolicy
from .store import ResultStore

_MAX_BODY = 4 << 20          # a job-request document is small; 4 MiB is ample
_EVENT_DONE = None           # stream sentinel


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` needs to boot one service process."""

    host: str = "127.0.0.1"
    port: int = 8321
    store_dir: str = "service-store"
    jobs: int = 1                  # default per-campaign worker processes
    store_max_entries: int = 0     # 0 = unbounded
    policy: TenantPolicy = TenantPolicy()
    overrides: tuple[tuple[str, TenantPolicy], ...] = ()
    max_queue: int = 256
    timeout_s: float | None = None   # per-job timeout inside campaigns
    retries: int = 0
    state_dir: str | None = None   # intake journal home; None = volatile
    default_wall_s: float = 30.0   # Retry-After prior before any sample

    def describe(self) -> dict:
        return {"host": self.host, "port": self.port,
                "store_dir": str(self.store_dir), "jobs": self.jobs,
                "store_max_entries": self.store_max_entries,
                "max_queue": self.max_queue,
                "state_dir": (str(self.state_dir)
                              if self.state_dir else None),
                "policy": self.policy.describe()}


@dataclass
class CampaignRecord:
    """Everything the service remembers about one submitted campaign."""

    id: str
    request: JobRequest
    jobs: int
    job_count: int
    seq: int = 0                   # admission order; keys the journal
    state: str = "queued"          # queued | running | done | failed
    recovered: bool = False        # re-enqueued from the intake journal
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    manifest: dict | None = None
    memo: dict | None = None
    error: dict | None = None
    event_lines: list[str] = field(default_factory=list)
    subscribers: list[asyncio.Queue] = field(default_factory=list)
    done: asyncio.Event = field(default_factory=asyncio.Event)

    def status_doc(self) -> dict:
        doc = {"schema": CAMPAIGN_STATUS_SCHEMA, "id": self.id,
               "state": self.state, "tenant": self.request.tenant,
               "experiment": self.request.experiment,
               "request_fingerprint": self.request.fingerprint(),
               "jobs": self.jobs, "job_count": self.job_count,
               "submitted_at": self.submitted_at}
        if self.recovered:
            doc["recovered"] = True
        if self.request.idempotency_key is not None:
            doc["idempotency_key"] = self.request.idempotency_key
        if self.started_at is not None:
            doc["started_at"] = self.started_at
        if self.finished_at is not None:
            doc["finished_at"] = self.finished_at
        if self.memo is not None:
            doc["memo"] = self.memo
        if self.manifest is not None:
            doc["manifest"] = self.manifest
        if self.error is not None:
            doc["error"] = self.error
        return doc


class _EventFanout:
    """File-like sink :class:`ProgressReporter` writes JSONL into,
    forwarding each complete line onto the loop thread-safely."""

    def __init__(self, loop: asyncio.AbstractEventLoop, push) -> None:
        self._loop = loop
        self._push = push
        self._buffer = ""

    def write(self, text: str) -> None:
        self._buffer += text
        while "\n" in self._buffer:
            line, self._buffer = self._buffer.split("\n", 1)
            if line.strip():
                self._loop.call_soon_threadsafe(self._push, line)

    def flush(self) -> None:   # file-like protocol
        pass


class CampaignService:
    """The service core, independent of any particular socket.

    Tests drive it directly (``await submit_doc(...)``); the HTTP layer
    below is a thin framing of the same methods.
    """

    def __init__(self, config: ServiceConfig, *,
                 store: ResultStore | None = None,
                 quotas: QuotaManager | None = None) -> None:
        self.config = config
        self.store = store or ResultStore(
            config.store_dir, max_entries=config.store_max_entries)
        self.quotas = quotas or QuotaManager(config.policy,
                                             dict(config.overrides))
        self.campaigns: dict[str, CampaignRecord] = {}
        self.lifecycle = ServiceLifecycle()
        self.journal: IntakeJournal | None = None
        if config.state_dir:
            self.journal = IntakeJournal(
                Path(config.state_dir) / "intake.jsonl")
        self.started_at = time.time()
        self.recovered_count = 0
        self._ids = itertools.count(1)
        self._idempotent: dict[tuple[str, str], str] = {}
        self._wall_times: collections.deque[float] = \
            collections.deque(maxlen=32)
        self._in_flight: CampaignRecord | None = None
        # Unbounded on purpose: the submit path enforces ``max_queue``
        # (with a Retry-After hint), while crash recovery must always
        # be able to re-enqueue what was already admitted.
        self._queue: asyncio.Queue[CampaignRecord] = asyncio.Queue()
        self._runner_task: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        if self.journal is not None:
            self.lifecycle.transition("recovering")
            self.recover()
        self.lifecycle.transition("ready")
        self._runner_task = asyncio.create_task(self._drain(),
                                                name="campaign-runner")

    async def close(self) -> None:
        if self._runner_task is not None:
            self._runner_task.cancel()
            try:
                await self._runner_task
            except asyncio.CancelledError:
                pass
            self._runner_task = None
        if self.journal is not None:
            self.journal.close()

    async def drain(self) -> None:
        """Graceful shutdown: finish the in-flight campaign, flush the
        journal, stop.  New submissions bounce with a typed 503 from
        the moment this is called; queued-but-unstarted campaigns stay
        in the journal and are recovered by the next instance."""
        if not self.lifecycle.transition("draining"):
            return
        SPANS.event("service:drain", queued=self._queue.qsize())
        _metrics.REGISTRY.counter("service.drains").inc()
        record = self._in_flight
        if record is not None:
            await record.done.wait()
        if self.journal is not None:
            self.journal.flush()
        await self.close()
        self.lifecycle.transition("stopped")

    # -- crash recovery ------------------------------------------------------

    def recover(self) -> int:
        """Replay the intake journal into the campaign table.

        Terminal campaigns are re-registered as finished records (their
        status documents and idempotency keys survive the restart);
        non-terminal ones are re-enqueued in admission order and will
        re-run through :func:`run_campaign_memoized` — every job that
        finished before the crash is answered from the result store,
        so recovery never executes a job twice and the recovered
        manifest is fingerprint-identical to an uninterrupted run's.
        Returns the number of campaigns re-enqueued.
        """
        assert self.journal is not None
        requeued = 0
        max_seq = 0
        for intake in self.journal.load():
            max_seq = max(max_seq, intake.seq)
            try:
                request = JobRequest.from_doc(intake.request)
            except BadRequest as exc:
                # A journal from a different protocol era: skip, count,
                # keep recovering everyone else.
                _metrics.REGISTRY.counter(
                    "service.recover_skipped").inc()
                SPANS.event("service:recover_skipped", status="error",
                            campaign=intake.campaign_id, error=str(exc))
                continue
            record = CampaignRecord(
                id=intake.campaign_id, request=request,
                jobs=0, job_count=0, seq=intake.seq, recovered=True,
                submitted_at=intake.submitted_at or time.time())
            if intake.terminal:
                record.state = intake.state
                record.finished_at = intake.finished_at
                record.memo = intake.memo
                record.manifest = intake.manifest
                record.error = intake.error
                record.done.set()
            else:
                try:
                    experiment = request.build()
                    record.job_count = len(list(experiment.job_specs()))
                except ServiceError as exc:
                    record.state = "failed"
                    record.error = exc.to_doc()
                    record.done.set()
                else:
                    options = request.options.for_service()
                    record.jobs = options.jobs if options.jobs \
                        else self.config.jobs
                    self.quotas.restore(request.tenant, record.job_count)
                    self._queue.put_nowait(record)
                    requeued += 1
            self.campaigns[record.id] = record
            if request.idempotency_key is not None:
                self._idempotent[(request.tenant,
                                  request.idempotency_key)] = record.id
        self._ids = itertools.count(max_seq + 1)
        self.recovered_count = requeued
        if requeued or max_seq:
            _metrics.REGISTRY.counter("service.campaigns_recovered") \
                .inc(requeued)
            SPANS.event("service:recover", requeued=requeued,
                        journaled=len(self.campaigns))
        return requeued

    # -- submission ----------------------------------------------------------

    def submit_doc(self, doc) -> CampaignRecord:
        """Validate, admit, journal, and queue one request document.

        Raises a typed :class:`ServiceError` (bad request, rate limit,
        quota, draining/full 503) without side effects; on success the
        campaign is journaled (write-ahead, when a ``state_dir`` is
        configured) and visible in the table before this returns.  A
        resubmission carrying a known ``(tenant, idempotency_key)``
        returns the original record — queued, running, or finished —
        instead of enqueueing a duplicate.
        """
        if not self.lifecycle.accepting:
            raise Unavailable(
                f"service is {self.lifecycle.state}; resubmit to the "
                f"next instance",
                retry_after_s=self._mean_wall_s(),
                state=self.lifecycle.state)
        request = JobRequest.from_doc(doc)
        if request.idempotency_key is not None:
            existing = self._idempotent.get(
                (request.tenant, request.idempotency_key))
            if existing is not None:
                _metrics.REGISTRY.counter(
                    "service.idempotent_replays").inc()
                SPANS.event("service:idempotent_replay",
                            tenant=request.tenant, campaign=existing)
                return self.campaigns[existing]
        experiment = request.build()          # validates params
        job_count = len(list(experiment.job_specs()))
        if self._queue.qsize() >= self.config.max_queue:
            raise Unavailable(
                "service queue is full; retry later",
                retry_after_s=self._backlog_retry_s(),
                max_queue=self.config.max_queue,
                queue_depth=self._queue.qsize())
        self.quotas.admit(request.tenant, job_count)
        options = request.options.for_service()
        jobs = options.jobs if options.jobs else self.config.jobs
        seq = next(self._ids)
        record = CampaignRecord(
            id=f"c{seq:06d}-{request.fingerprint()[:8]}",
            request=request, jobs=jobs, job_count=job_count, seq=seq)
        self.campaigns[record.id] = record
        if request.idempotency_key is not None:
            self._idempotent[(request.tenant,
                              request.idempotency_key)] = record.id
        if self.journal is not None:
            # The write-ahead barrier: on disk before the id escapes.
            self.journal.append_admitted(IntakeRecord(
                campaign_id=record.id, seq=seq, state="admitted",
                tenant=request.tenant, request=request.to_doc(),
                idempotency_key=request.idempotency_key,
                submitted_at=record.submitted_at))
        self._queue.put_nowait(record)
        _metrics.REGISTRY.counter("service.campaigns_submitted").inc()
        SPANS.event("service:submit", tenant=request.tenant,
                    experiment=request.experiment, campaign=record.id)
        return record

    # -- backlog arithmetic ---------------------------------------------------

    def _mean_wall_s(self) -> float:
        """Mean campaign wall time, or the configured prior before any
        campaign has finished."""
        if not self._wall_times:
            return self.config.default_wall_s
        return sum(self._wall_times) / len(self._wall_times)

    def _backlog_retry_s(self) -> float:
        """Retry-After for a full queue: how long the backlog will
        plausibly take to make room — queue depth times the mean
        campaign wall time, floored at one second."""
        return max(1.0, self._queue.qsize() * self._mean_wall_s())

    def get(self, campaign_id: str) -> CampaignRecord:
        record = self.campaigns.get(campaign_id)
        if record is None:
            raise NotFound(f"no campaign {campaign_id!r}")
        return record

    # -- execution -----------------------------------------------------------

    async def _drain(self) -> None:
        while True:
            record = await self._queue.get()
            self._in_flight = record
            record.state = "running"
            record.started_at = time.time()
            try:
                await asyncio.get_running_loop().run_in_executor(
                    None, self._run_one, record)
                record.state = "done"
            except Exception as exc:   # noqa: BLE001 — report, keep serving
                record.state = "failed"
                if isinstance(exc, ServiceError):
                    record.error = exc.to_doc()
                else:
                    record.error = ServiceError(
                        f"{type(exc).__name__}: {exc}").to_doc()
                _metrics.REGISTRY.counter("service.campaigns_failed").inc()
            finally:
                record.finished_at = time.time()
                self._wall_times.append(
                    max(0.0, record.finished_at - record.started_at))
                if self.journal is not None:
                    self.journal.append_terminal(
                        record.id, record.seq, record.state,
                        finished_at=record.finished_at,
                        memo=record.memo, manifest=record.manifest,
                        error=record.error)
                self.quotas.release(record.request.tenant)
                self._in_flight = None
                self._push_event(record, _EVENT_DONE)
                record.done.set()
                self._queue.task_done()

    def _run_one(self, record: CampaignRecord) -> None:
        """Worker-thread body: one memoized campaign, start to finish."""
        experiment = record.request.build()
        reporter = ProgressReporter(
            stream=_EventFanout(self._loop,
                                lambda line: self._push_event(record, line)))
        lineage = f"recovery:{self.store.root}" if record.recovered \
            else None
        with SPANS.span("service:campaign", campaign=record.id,
                        tenant=record.request.tenant,
                        experiment=record.request.experiment,
                        recovered=record.recovered):
            try:
                campaign, memo = run_campaign_memoized(
                    experiment, self.store, jobs=record.jobs,
                    timeout_s=self.config.timeout_s,
                    retries=self.config.retries, progress=reporter,
                    lineage=lineage)
            finally:
                reporter.close()
        record.manifest = campaign.manifest
        record.memo = memo.to_dict()
        _metrics.REGISTRY.counter("service.jobs_served").inc(memo.jobs)
        _metrics.REGISTRY.counter("service.jobs_deduped").inc(memo.hits)

    def _push_event(self, record: CampaignRecord, line: str | None) -> None:
        # Always runs on the loop thread: worker-side writes hop here
        # through _EventFanout's call_soon_threadsafe.
        if line is not None:
            record.event_lines.append(line)
        for queue in list(record.subscribers):
            queue.put_nowait(line)

    def subscribe(self, record: CampaignRecord) -> asyncio.Queue:
        """Replay + live queue of a campaign's progress lines; a
        ``None`` item marks the end of the stream."""
        queue: asyncio.Queue = asyncio.Queue()
        for line in record.event_lines:
            queue.put_nowait(line)
        if record.state in ("done", "failed"):
            queue.put_nowait(_EVENT_DONE)
        else:
            record.subscribers.append(queue)
        return queue

    def unsubscribe(self, record: CampaignRecord,
                    queue: asyncio.Queue) -> None:
        if queue in record.subscribers:
            record.subscribers.remove(queue)

    # -- introspection ---------------------------------------------------------

    def health_doc(self) -> dict:
        states: dict[str, int] = {}
        for record in self.campaigns.values():
            states[record.state] = states.get(record.state, 0) + 1
        return {"schema": HEALTH_SCHEMA, "status": "ok",
                "lifecycle": self.lifecycle.state,
                "uptime_s": round(time.time() - self.started_at, 3),
                "queue_depth": self._queue.qsize(),
                "campaigns": states}

    def ready_doc(self) -> tuple[int, dict]:
        """(http status, document) for ``/readyz``.

        Distinct from liveness on purpose: a draining or recovering
        service is alive (``/healthz`` 200 — do not restart it) but
        must not receive new work (``/readyz`` 503 — route elsewhere).
        """
        doc = {"schema": HEALTH_SCHEMA,
               "status": "ready" if self.lifecycle.ready
               else "unavailable",
               "lifecycle": self.lifecycle.state,
               "queue_depth": self._queue.qsize()}
        return (200 if self.lifecycle.ready else 503), doc

    def stats_doc(self) -> dict:
        return {"schema": STATS_SCHEMA,
                "store": self.store.stats(),
                "tenants": self.quotas.snapshot(),
                "campaigns": self.health_doc()["campaigns"],
                "config": self.config.describe()}


# -- the HTTP layer -----------------------------------------------------------
#
# Deliberately minimal HTTP/1.1 on asyncio streams (stdlib only, no new
# dependencies): one request per connection, Content-Length bodies,
# NDJSON streaming with Connection: close for the events endpoint.

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            403: "Forbidden", 404: "Not Found", 405: "Method Not Allowed",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}


def _response_bytes(status: int, body: bytes,
                    content_type: str = "application/json",
                    extra_headers: dict | None = None) -> bytes:
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             "Connection: close"]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


def _json_response(status: int, doc: dict,
                   extra_headers: dict | None = None) -> bytes:
    body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
    return _response_bytes(status, body, extra_headers=extra_headers)


class HttpFront:
    """Routes HTTP requests onto one :class:`CampaignService`."""

    def __init__(self, service: CampaignService) -> None:
        self.service = service

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, target, body = await self._read_request(reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except ValueError as exc:
                writer.write(_json_response(
                    400, BadRequest(str(exc)).to_doc()))
                return
            _metrics.REGISTRY.counter("service.http_requests").inc()
            try:
                await self._route(method, target, body, writer, reader)
            except ServiceError as exc:
                headers = {}
                if getattr(exc, "retry_after_s", 0):
                    headers["Retry-After"] = \
                        str(max(1, int(exc.retry_after_s + 0.5)))
                writer.write(_json_response(exc.http_status, exc.to_doc(),
                                            extra_headers=headers))
            except Exception as exc:   # noqa: BLE001 — never kill the server
                writer.write(_json_response(
                    500, ServiceError(f"{type(exc).__name__}: {exc}")
                    .to_doc()))
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(reader) -> tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise asyncio.IncompleteReadError(b"", None)
        parts = request_line.split()
        if len(parts) != 3:
            raise ValueError(f"malformed request line {request_line!r}")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > _MAX_BODY:
            raise ValueError(f"request body of {length} bytes exceeds "
                             f"the {_MAX_BODY}-byte limit")
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    async def _route(self, method: str, target: str, body: bytes,
                     writer: asyncio.StreamWriter,
                     reader: asyncio.StreamReader) -> None:
        path, _, query = target.partition("?")
        parts = [part for part in path.split("/") if part]
        service = self.service
        if method == "GET" and parts == ["healthz"]:
            writer.write(_json_response(200, service.health_doc()))
            return
        if method == "GET" and parts == ["readyz"]:
            status, doc = service.ready_doc()
            writer.write(_json_response(status, doc))
            return
        if method == "GET" and parts == ["v1", "stats"]:
            writer.write(_json_response(200, service.stats_doc()))
            return
        if parts[:2] == ["v1", "campaigns"]:
            if method == "POST" and len(parts) == 2:
                await self._submit(body, query, writer)
                return
            if method == "GET" and len(parts) == 3:
                record = service.get(parts[2])
                writer.write(_json_response(200, record.status_doc()))
                return
            if method == "GET" and len(parts) == 4 \
                    and parts[3] == "events":
                await self._stream_events(service.get(parts[2]), writer,
                                          reader)
                return
        raise NotFound(f"no route {method} {path}")

    async def _submit(self, body: bytes, query: str,
                      writer: asyncio.StreamWriter) -> None:
        try:
            doc = json.loads(body.decode("utf-8") or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise BadRequest(f"request body is not JSON: {exc}") from None
        record = self.service.submit_doc(doc)
        if "wait=1" in query.split("&"):
            await record.done.wait()
            writer.write(_json_response(200, record.status_doc()))
        else:
            writer.write(_json_response(202, record.status_doc()))

    async def _stream_events(self, record: CampaignRecord,
                             writer: asyncio.StreamWriter,
                             reader: asyncio.StreamReader) -> None:
        """NDJSON progress stream, disconnect-safe.

        A subscriber that goes away mid-stream must not linger in
        ``record.subscribers`` (the old behaviour: a half-closed
        socket's ``drain`` may never raise, so the dead queue kept
        accumulating events for as long as the campaign ran).  The
        reader is watched concurrently with the event queue: EOF —
        or any stray bytes; event clients never speak again on this
        connection — ends the stream and unsubscribes immediately.
        """
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        queue = self.service.subscribe(record)
        gone = asyncio.ensure_future(reader.read(64))
        getter: asyncio.Future | None = None
        try:
            while True:
                getter = asyncio.ensure_future(queue.get())
                done, _pending = await asyncio.wait(
                    {getter, gone}, return_when=asyncio.FIRST_COMPLETED)
                if getter not in done:
                    break                       # client went away
                line = getter.result()
                getter = None
                if line is _EVENT_DONE:
                    break
                writer.write(line.encode("utf-8") + b"\n")
                await writer.drain()
                if gone.done():
                    break
        except (ConnectionError, OSError):
            pass
        finally:
            for task in (getter, gone):
                if task is not None and not task.done():
                    task.cancel()
            self.service.unsubscribe(record, queue)


# -- entry points ---------------------------------------------------------------

async def serve(config: ServiceConfig, *,
                service: CampaignService | None = None,
                on_ready=None, install_signals: bool = True) -> None:
    """Run the service until cancelled or gracefully drained.

    ``on_ready(host, port, service)`` fires once the socket is bound —
    the hook tests and :func:`start_in_thread` use to learn an
    ephemeral port.  With ``install_signals`` (the default), SIGTERM
    triggers a graceful drain: the in-flight campaign finishes, the
    intake journal is flushed, new submissions bounce with a typed
    503, and this coroutine returns — queued-but-unstarted campaigns
    are recovered by the next ``serve`` on the same ``state_dir``.
    """
    service = service or CampaignService(config)
    await service.start()
    front = HttpFront(service)
    server = await asyncio.start_server(front.handle, config.host,
                                        config.port)
    host, port = server.sockets[0].getsockname()[:2]
    if on_ready is not None:
        on_ready(host, port, service)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    installed = install_drain_signal(loop, stop.set) \
        if install_signals else []
    try:
        async with server:
            serve_task = asyncio.ensure_future(server.serve_forever())
            stop_task = asyncio.ensure_future(stop.wait())
            try:
                await asyncio.wait({serve_task, stop_task},
                                   return_when=asyncio.FIRST_COMPLETED)
                if stop.is_set():
                    # Keep answering status polls during the drain;
                    # only submissions are rejected (typed 503).
                    await service.drain()
            finally:
                for task in (serve_task, stop_task):
                    task.cancel()
                    try:
                        await task
                    except (asyncio.CancelledError, Exception):
                        pass
    finally:
        remove_drain_signal(loop, installed)
        await service.close()


@dataclass
class ServiceHandle:
    """A service running on a background thread (tests, load replay)."""

    url: str
    service: CampaignService
    _loop: asyncio.AbstractEventLoop
    _thread: threading.Thread
    _task: "asyncio.Task"

    def stop(self, timeout: float = 10.0) -> None:
        self._loop.call_soon_threadsafe(self._task.cancel)
        self._thread.join(timeout)

    def drain(self, timeout: float = 60.0) -> None:
        """Graceful stop: what SIGTERM does, callable from tests."""
        def _begin() -> None:
            asyncio.ensure_future(self._drain_then_cancel())
        self._loop.call_soon_threadsafe(_begin)
        self._thread.join(timeout)

    async def _drain_then_cancel(self) -> None:
        await self.service.drain()
        self._task.cancel()


def start_in_thread(config: ServiceConfig) -> ServiceHandle:
    """Boot a service on a daemon thread and return its URL.

    Uses ``port=0`` friendly readiness signalling, so callers can bind
    ephemeral ports without racing the listener.
    """
    ready = threading.Event()
    state: dict = {}

    def _main() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)

        def _on_ready(host, port, service):
            state["url"] = f"http://{host}:{port}"
            state["service"] = service
            ready.set()

        task = loop.create_task(serve(config, on_ready=_on_ready,
                                      install_signals=False))
        state["loop"], state["task"] = loop, task
        try:
            loop.run_until_complete(task)
        except asyncio.CancelledError:
            pass
        finally:
            loop.close()

    thread = threading.Thread(target=_main, name="repro-service",
                              daemon=True)
    thread.start()
    if not ready.wait(timeout=30):
        raise RuntimeError("service failed to start within 30s")
    return ServiceHandle(url=state["url"], service=state["service"],
                         _loop=state["loop"], _thread=thread,
                         _task=state["task"])
