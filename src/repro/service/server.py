"""The campaign service: asyncio HTTP front, queued campaign execution.

``repro serve`` turns the batch runner into a long-lived multi-tenant
system: clients POST ``phantom.job-request/1`` documents, the service
admits them through per-tenant token buckets and quotas
(:mod:`.quota`), queues them, and executes each campaign through
:func:`~repro.service.run_campaign_memoized` — so every job whose
fingerprint is already in the content-addressed result store is
answered from disk instead of simulated, and fresh results are banked
for the next tenant who asks.  Campaign execution itself is the
existing :func:`repro.runner.run_campaign` machinery (process-pool
sharding, supervision, deterministic reduce), untouched.

Concurrency model: the asyncio loop owns all bookkeeping (campaign
table, quota admission, event fan-out); campaigns run one at a time on
a single worker thread (parallelism lives *inside* a campaign, via its
``jobs`` option) so the process-global metrics registry and span
recorder never see two campaigns interleaved.  Worker-side progress
events hop back onto the loop via ``call_soon_threadsafe``.

Endpoints (see ``docs/service.md`` for schemas):

* ``GET  /healthz``                 — liveness + queue depth
* ``GET  /v1/stats``                — store/quota/campaign counters
* ``POST /v1/campaigns``            — submit; ``?wait=1`` blocks until done
* ``GET  /v1/campaigns/<id>``        — status document
* ``GET  /v1/campaigns/<id>/events`` — ``phantom.progress/1`` NDJSON stream
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..telemetry import metrics as _metrics
from ..telemetry.progress import ProgressReporter
from ..telemetry.spans import SPANS
from .errors import BadRequest, NotFound, ServiceError
from .memo import run_campaign_memoized
from .protocol import (CAMPAIGN_STATUS_SCHEMA, HEALTH_SCHEMA, STATS_SCHEMA,
                       JobRequest)
from .quota import QuotaManager, TenantPolicy
from .store import ResultStore

_MAX_BODY = 4 << 20          # a job-request document is small; 4 MiB is ample
_EVENT_DONE = None           # stream sentinel


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` needs to boot one service process."""

    host: str = "127.0.0.1"
    port: int = 8321
    store_dir: str = "service-store"
    jobs: int = 1                  # default per-campaign worker processes
    store_max_entries: int = 0     # 0 = unbounded
    policy: TenantPolicy = TenantPolicy()
    overrides: tuple[tuple[str, TenantPolicy], ...] = ()
    max_queue: int = 256
    timeout_s: float | None = None   # per-job timeout inside campaigns
    retries: int = 0

    def describe(self) -> dict:
        return {"host": self.host, "port": self.port,
                "store_dir": str(self.store_dir), "jobs": self.jobs,
                "store_max_entries": self.store_max_entries,
                "max_queue": self.max_queue,
                "policy": self.policy.describe()}


@dataclass
class CampaignRecord:
    """Everything the service remembers about one submitted campaign."""

    id: str
    request: JobRequest
    jobs: int
    job_count: int
    state: str = "queued"          # queued | running | done | failed
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    manifest: dict | None = None
    memo: dict | None = None
    error: dict | None = None
    event_lines: list[str] = field(default_factory=list)
    subscribers: list[asyncio.Queue] = field(default_factory=list)
    done: asyncio.Event = field(default_factory=asyncio.Event)

    def status_doc(self) -> dict:
        doc = {"schema": CAMPAIGN_STATUS_SCHEMA, "id": self.id,
               "state": self.state, "tenant": self.request.tenant,
               "experiment": self.request.experiment,
               "request_fingerprint": self.request.fingerprint(),
               "jobs": self.jobs, "job_count": self.job_count,
               "submitted_at": self.submitted_at}
        if self.started_at is not None:
            doc["started_at"] = self.started_at
        if self.finished_at is not None:
            doc["finished_at"] = self.finished_at
        if self.memo is not None:
            doc["memo"] = self.memo
        if self.manifest is not None:
            doc["manifest"] = self.manifest
        if self.error is not None:
            doc["error"] = self.error
        return doc


class _EventFanout:
    """File-like sink :class:`ProgressReporter` writes JSONL into,
    forwarding each complete line onto the loop thread-safely."""

    def __init__(self, loop: asyncio.AbstractEventLoop, push) -> None:
        self._loop = loop
        self._push = push
        self._buffer = ""

    def write(self, text: str) -> None:
        self._buffer += text
        while "\n" in self._buffer:
            line, self._buffer = self._buffer.split("\n", 1)
            if line.strip():
                self._loop.call_soon_threadsafe(self._push, line)

    def flush(self) -> None:   # file-like protocol
        pass


class CampaignService:
    """The service core, independent of any particular socket.

    Tests drive it directly (``await submit_doc(...)``); the HTTP layer
    below is a thin framing of the same methods.
    """

    def __init__(self, config: ServiceConfig, *,
                 store: ResultStore | None = None,
                 quotas: QuotaManager | None = None) -> None:
        self.config = config
        self.store = store or ResultStore(
            config.store_dir, max_entries=config.store_max_entries)
        self.quotas = quotas or QuotaManager(config.policy,
                                             dict(config.overrides))
        self.campaigns: dict[str, CampaignRecord] = {}
        self.started_at = time.time()
        self._ids = itertools.count(1)
        self._queue: asyncio.Queue[CampaignRecord] = \
            asyncio.Queue(maxsize=config.max_queue)
        self._runner_task: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._runner_task = asyncio.create_task(self._drain(),
                                                name="campaign-runner")

    async def close(self) -> None:
        if self._runner_task is not None:
            self._runner_task.cancel()
            try:
                await self._runner_task
            except asyncio.CancelledError:
                pass
            self._runner_task = None

    # -- submission ----------------------------------------------------------

    def submit_doc(self, doc) -> CampaignRecord:
        """Validate, admit, and queue one request document.

        Raises a typed :class:`ServiceError` (bad request, rate limit,
        quota) without side effects; on success the campaign is queued
        and visible in the table immediately.
        """
        request = JobRequest.from_doc(doc)
        experiment = request.build()          # validates params
        job_count = len(list(experiment.job_specs()))
        if self._queue.full():
            raise ServiceError("service queue is full; retry later",
                               max_queue=self.config.max_queue)
        self.quotas.admit(request.tenant, job_count)
        options = request.options.for_service()
        jobs = options.jobs if options.jobs else self.config.jobs
        record = CampaignRecord(
            id=f"c{next(self._ids):06d}-{request.fingerprint()[:8]}",
            request=request, jobs=jobs, job_count=job_count)
        self.campaigns[record.id] = record
        self._queue.put_nowait(record)
        _metrics.REGISTRY.counter("service.campaigns_submitted").inc()
        SPANS.event("service:submit", tenant=request.tenant,
                    experiment=request.experiment, campaign=record.id)
        return record

    def get(self, campaign_id: str) -> CampaignRecord:
        record = self.campaigns.get(campaign_id)
        if record is None:
            raise NotFound(f"no campaign {campaign_id!r}")
        return record

    # -- execution -----------------------------------------------------------

    async def _drain(self) -> None:
        while True:
            record = await self._queue.get()
            record.state = "running"
            record.started_at = time.time()
            try:
                await asyncio.get_running_loop().run_in_executor(
                    None, self._run_one, record)
                record.state = "done"
            except Exception as exc:   # noqa: BLE001 — report, keep serving
                record.state = "failed"
                if isinstance(exc, ServiceError):
                    record.error = exc.to_doc()
                else:
                    record.error = ServiceError(
                        f"{type(exc).__name__}: {exc}").to_doc()
                _metrics.REGISTRY.counter("service.campaigns_failed").inc()
            finally:
                record.finished_at = time.time()
                self.quotas.release(record.request.tenant)
                self._push_event(record, _EVENT_DONE)
                record.done.set()
                self._queue.task_done()

    def _run_one(self, record: CampaignRecord) -> None:
        """Worker-thread body: one memoized campaign, start to finish."""
        experiment = record.request.build()
        reporter = ProgressReporter(
            stream=_EventFanout(self._loop,
                                lambda line: self._push_event(record, line)))
        with SPANS.span("service:campaign", campaign=record.id,
                        tenant=record.request.tenant,
                        experiment=record.request.experiment):
            try:
                campaign, memo = run_campaign_memoized(
                    experiment, self.store, jobs=record.jobs,
                    timeout_s=self.config.timeout_s,
                    retries=self.config.retries, progress=reporter)
            finally:
                reporter.close()
        record.manifest = campaign.manifest
        record.memo = memo.to_dict()
        _metrics.REGISTRY.counter("service.jobs_served").inc(memo.jobs)
        _metrics.REGISTRY.counter("service.jobs_deduped").inc(memo.hits)

    def _push_event(self, record: CampaignRecord, line: str | None) -> None:
        # Always runs on the loop thread: worker-side writes hop here
        # through _EventFanout's call_soon_threadsafe.
        if line is not None:
            record.event_lines.append(line)
        for queue in list(record.subscribers):
            queue.put_nowait(line)

    def subscribe(self, record: CampaignRecord) -> asyncio.Queue:
        """Replay + live queue of a campaign's progress lines; a
        ``None`` item marks the end of the stream."""
        queue: asyncio.Queue = asyncio.Queue()
        for line in record.event_lines:
            queue.put_nowait(line)
        if record.state in ("done", "failed"):
            queue.put_nowait(_EVENT_DONE)
        else:
            record.subscribers.append(queue)
        return queue

    def unsubscribe(self, record: CampaignRecord,
                    queue: asyncio.Queue) -> None:
        if queue in record.subscribers:
            record.subscribers.remove(queue)

    # -- introspection ---------------------------------------------------------

    def health_doc(self) -> dict:
        states: dict[str, int] = {}
        for record in self.campaigns.values():
            states[record.state] = states.get(record.state, 0) + 1
        return {"schema": HEALTH_SCHEMA, "status": "ok",
                "uptime_s": round(time.time() - self.started_at, 3),
                "queue_depth": self._queue.qsize(),
                "campaigns": states}

    def stats_doc(self) -> dict:
        return {"schema": STATS_SCHEMA,
                "store": self.store.stats(),
                "tenants": self.quotas.snapshot(),
                "campaigns": self.health_doc()["campaigns"],
                "config": self.config.describe()}


# -- the HTTP layer -----------------------------------------------------------
#
# Deliberately minimal HTTP/1.1 on asyncio streams (stdlib only, no new
# dependencies): one request per connection, Content-Length bodies,
# NDJSON streaming with Connection: close for the events endpoint.

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            403: "Forbidden", 404: "Not Found", 405: "Method Not Allowed",
            429: "Too Many Requests", 500: "Internal Server Error"}


def _response_bytes(status: int, body: bytes,
                    content_type: str = "application/json",
                    extra_headers: dict | None = None) -> bytes:
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             "Connection: close"]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


def _json_response(status: int, doc: dict,
                   extra_headers: dict | None = None) -> bytes:
    body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
    return _response_bytes(status, body, extra_headers=extra_headers)


class HttpFront:
    """Routes HTTP requests onto one :class:`CampaignService`."""

    def __init__(self, service: CampaignService) -> None:
        self.service = service

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, target, body = await self._read_request(reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except ValueError as exc:
                writer.write(_json_response(
                    400, BadRequest(str(exc)).to_doc()))
                return
            _metrics.REGISTRY.counter("service.http_requests").inc()
            try:
                await self._route(method, target, body, writer)
            except ServiceError as exc:
                headers = {}
                if getattr(exc, "retry_after_s", 0):
                    headers["Retry-After"] = \
                        str(max(1, int(exc.retry_after_s + 0.5)))
                writer.write(_json_response(exc.http_status, exc.to_doc(),
                                            extra_headers=headers))
            except Exception as exc:   # noqa: BLE001 — never kill the server
                writer.write(_json_response(
                    500, ServiceError(f"{type(exc).__name__}: {exc}")
                    .to_doc()))
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(reader) -> tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise asyncio.IncompleteReadError(b"", None)
        parts = request_line.split()
        if len(parts) != 3:
            raise ValueError(f"malformed request line {request_line!r}")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > _MAX_BODY:
            raise ValueError(f"request body of {length} bytes exceeds "
                             f"the {_MAX_BODY}-byte limit")
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    async def _route(self, method: str, target: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        path, _, query = target.partition("?")
        parts = [part for part in path.split("/") if part]
        service = self.service
        if method == "GET" and parts == ["healthz"]:
            writer.write(_json_response(200, service.health_doc()))
            return
        if method == "GET" and parts == ["v1", "stats"]:
            writer.write(_json_response(200, service.stats_doc()))
            return
        if parts[:2] == ["v1", "campaigns"]:
            if method == "POST" and len(parts) == 2:
                await self._submit(body, query, writer)
                return
            if method == "GET" and len(parts) == 3:
                record = service.get(parts[2])
                writer.write(_json_response(200, record.status_doc()))
                return
            if method == "GET" and len(parts) == 4 \
                    and parts[3] == "events":
                await self._stream_events(service.get(parts[2]), writer)
                return
        raise NotFound(f"no route {method} {path}")

    async def _submit(self, body: bytes, query: str,
                      writer: asyncio.StreamWriter) -> None:
        try:
            doc = json.loads(body.decode("utf-8") or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise BadRequest(f"request body is not JSON: {exc}") from None
        record = self.service.submit_doc(doc)
        if "wait=1" in query.split("&"):
            await record.done.wait()
            writer.write(_json_response(200, record.status_doc()))
        else:
            writer.write(_json_response(202, record.status_doc()))

    async def _stream_events(self, record: CampaignRecord,
                             writer: asyncio.StreamWriter) -> None:
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        queue = self.service.subscribe(record)
        try:
            while True:
                line = await queue.get()
                if line is _EVENT_DONE:
                    break
                writer.write(line.encode("utf-8") + b"\n")
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            self.service.unsubscribe(record, queue)


# -- entry points ---------------------------------------------------------------

async def serve(config: ServiceConfig, *,
                service: CampaignService | None = None,
                on_ready=None) -> None:
    """Run the service until cancelled.

    ``on_ready(host, port, service)`` fires once the socket is bound —
    the hook tests and :func:`start_in_thread` use to learn an
    ephemeral port.
    """
    service = service or CampaignService(config)
    await service.start()
    front = HttpFront(service)
    server = await asyncio.start_server(front.handle, config.host,
                                        config.port)
    host, port = server.sockets[0].getsockname()[:2]
    if on_ready is not None:
        on_ready(host, port, service)
    try:
        async with server:
            await server.serve_forever()
    finally:
        await service.close()


@dataclass
class ServiceHandle:
    """A service running on a background thread (tests, load replay)."""

    url: str
    service: CampaignService
    _loop: asyncio.AbstractEventLoop
    _thread: threading.Thread
    _task: "asyncio.Task"

    def stop(self, timeout: float = 10.0) -> None:
        self._loop.call_soon_threadsafe(self._task.cancel)
        self._thread.join(timeout)


def start_in_thread(config: ServiceConfig) -> ServiceHandle:
    """Boot a service on a daemon thread and return its URL.

    Uses ``port=0`` friendly readiness signalling, so callers can bind
    ephemeral ports without racing the listener.
    """
    ready = threading.Event()
    state: dict = {}

    def _main() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)

        def _on_ready(host, port, service):
            state["url"] = f"http://{host}:{port}"
            state["service"] = service
            ready.set()

        task = loop.create_task(serve(config, on_ready=_on_ready))
        state["loop"], state["task"] = loop, task
        try:
            loop.run_until_complete(task)
        except asyncio.CancelledError:
            pass
        finally:
            loop.close()

    thread = threading.Thread(target=_main, name="repro-service",
                              daemon=True)
    thread.start()
    if not ready.wait(timeout=30):
        raise RuntimeError("service failed to start within 30s")
    return ServiceHandle(url=state["url"], service=state["service"],
                         _loop=state["loop"], _thread=thread,
                         _task=state["task"])
