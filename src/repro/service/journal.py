"""Write-ahead intake journal: no admitted campaign is ever lost.

The campaign service queues accepted work in memory (an
``asyncio.Queue``); without this module a crash or restart between
``submit`` and completion silently dropped every accepted-but-
unfinished campaign.  The intake journal closes that window: every
admitted ``phantom.job-request/1`` is appended as a schema-validated
``phantom.intake/1`` record — flushed and fsynced — *before* the
submit call returns the campaign id, and a terminal record is appended
when the campaign finishes.  On startup with ``--state-dir`` the
service replays the journal, re-registers finished campaigns (their
status documents, manifests and idempotency keys survive the restart)
and re-enqueues every non-terminal campaign in admission order; the
re-run goes through the memoized execution seam, so jobs that finished
before the crash are answered from the content-addressed store and are
never executed twice.

Format choices mirror ``repro.resilience.checkpoint`` deliberately —
the journal is the same battle-tested shape at the service layer:

* **Append-only JSONL, torn-line tolerant.**  A crash mid-append
  corrupts at most the last line; the loader skips unparsable or
  foreign lines instead of failing.
* **Last record wins per campaign.**  A terminal record shadows the
  admitted record's state; duplicate appends are harmless.
* **Write failures degrade.**  ENOSPC on append is counted
  (``service.intake_write_errors``) and warned about once; the
  service keeps serving, the un-journaled campaign simply does not
  survive a crash — strictly no worse than having no journal.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from ..telemetry import metrics as _metrics
from ..telemetry.schema import SchemaError, validate_intake
from ..telemetry.spans import SPANS

INTAKE_SCHEMA = "phantom.intake/1"

#: Campaign states a journal record may carry.  ``admitted`` is the
#: write-ahead record; the other two are terminal.
INTAKE_STATES = ("admitted", "done", "failed")
TERMINAL_STATES = ("done", "failed")


@dataclass
class IntakeRecord:
    """One journaled campaign: the admitted request, then its fate.

    The admitted record carries everything needed to re-create the
    campaign after a crash (the full request document, tenant,
    idempotency key, admission order); terminal records carry the
    outcome (``memo``/``manifest`` for ``done``, ``error`` for
    ``failed``) and are merged over the admitted record by the loader.
    """

    campaign_id: str
    seq: int
    state: str
    tenant: str = ""
    request: dict = field(default_factory=dict)
    idempotency_key: str | None = None
    submitted_at: float = 0.0
    finished_at: float | None = None
    memo: dict | None = None
    manifest: dict | None = None
    error: dict | None = None

    def to_doc(self) -> dict:
        doc = {"schema": INTAKE_SCHEMA, "campaign_id": self.campaign_id,
               "seq": self.seq, "state": self.state}
        if self.tenant:
            doc["tenant"] = self.tenant
        if self.request:
            doc["request"] = self.request
        if self.idempotency_key is not None:
            doc["idempotency_key"] = self.idempotency_key
        if self.submitted_at:
            doc["submitted_at"] = self.submitted_at
        if self.finished_at is not None:
            doc["finished_at"] = self.finished_at
        if self.memo is not None:
            doc["memo"] = self.memo
        if self.manifest is not None:
            doc["manifest"] = self.manifest
        if self.error is not None:
            doc["error"] = self.error
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "IntakeRecord":
        return cls(campaign_id=doc["campaign_id"],
                   seq=int(doc.get("seq", 0)),
                   state=doc.get("state", "admitted"),
                   tenant=doc.get("tenant", ""),
                   request=dict(doc.get("request", ())),
                   idempotency_key=doc.get("idempotency_key"),
                   submitted_at=doc.get("submitted_at", 0.0),
                   finished_at=doc.get("finished_at"),
                   memo=doc.get("memo"),
                   manifest=doc.get("manifest"),
                   error=doc.get("error"))

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def merge(self, later: "IntakeRecord") -> "IntakeRecord":
        """The admitted record updated by a *later* record for the same
        campaign — later state/outcome over earlier request context."""
        return IntakeRecord(
            campaign_id=self.campaign_id,
            seq=later.seq or self.seq,
            state=later.state,
            tenant=later.tenant or self.tenant,
            request=later.request or self.request,
            idempotency_key=(later.idempotency_key
                             if later.idempotency_key is not None
                             else self.idempotency_key),
            submitted_at=later.submitted_at or self.submitted_at,
            finished_at=(later.finished_at
                         if later.finished_at is not None
                         else self.finished_at),
            memo=later.memo if later.memo is not None else self.memo,
            manifest=(later.manifest if later.manifest is not None
                      else self.manifest),
            error=later.error if later.error is not None else self.error)


class IntakeJournal:
    """Appends and replays ``phantom.intake/1`` records for one service.

    ``append`` is the write-ahead barrier: it validates, writes one
    JSON line, flushes, and fsyncs before returning, so a campaign id
    handed to a client is durably on disk first.  Intake is low-rate
    (campaigns, not jobs), so the fsync cost is irrelevant next to a
    single simulated cycle.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._warned = False
        self.write_errors = 0
        self.appended = 0

    # -- write ---------------------------------------------------------------

    def append(self, record: IntakeRecord) -> bool:
        """Durably append one record; ``True`` once it is on disk.

        A failed append (ENOSPC, a yanked volume) degrades: counted,
        warned once, and the service keeps running — the campaign just
        will not survive a crash, which is no worse than journal-less
        operation was.
        """
        doc = record.to_doc()
        validate_intake(doc)     # never journal a record we can't replay
        line = json.dumps(doc, sort_keys=True)
        try:
            self._fh.write(line + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except (OSError, ValueError) as exc:   # ValueError: closed file
            self.write_errors += 1
            _metrics.REGISTRY.counter("service.intake_write_errors").inc()
            SPANS.event("intake:write_error", status="error",
                        campaign=record.campaign_id, error=str(exc))
            if not self._warned:
                self._warned = True
                warnings.warn(
                    f"intake journal append to {self.path} failed "
                    f"({exc}); service continues, but campaign "
                    f"{record.campaign_id} will not survive a restart",
                    RuntimeWarning, stacklevel=2)
            return False
        self.appended += 1
        _metrics.REGISTRY.counter("service.intake_appends").inc()
        return True

    def append_admitted(self, record: IntakeRecord) -> bool:
        assert record.state == "admitted"
        return self.append(record)

    def append_terminal(self, campaign_id: str, seq: int, state: str, *,
                        finished_at: float, memo: dict | None = None,
                        manifest: dict | None = None,
                        error: dict | None = None) -> bool:
        if state not in TERMINAL_STATES:
            raise ValueError(f"terminal state must be one of "
                             f"{TERMINAL_STATES}, got {state!r}")
        return self.append(IntakeRecord(
            campaign_id=campaign_id, seq=seq, state=state,
            finished_at=finished_at, memo=memo, manifest=manifest,
            error=error))

    def flush(self) -> None:
        try:
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except (OSError, ValueError):
            pass

    def close(self) -> None:
        if not self._fh.closed:
            self.flush()
            self._fh.close()

    def __enter__(self) -> "IntakeJournal":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- read ----------------------------------------------------------------

    def load(self) -> list[IntakeRecord]:
        return load_intake(self.path)


def load_intake(path) -> list[IntakeRecord]:
    """Journal → merged records in admission order, last state winning.

    Tolerant by design, exactly like the checkpoint loader: a missing
    file is an empty journal, and torn, foreign, or schema-invalid
    lines are skipped (each skip counted via
    ``service.intake_skipped_lines``) — a crash mid-append costs one
    record, never the journal.  Terminal records without a preceding
    admitted record (their admit line was the torn one) are dropped:
    there is nothing to recover for them.
    """
    path = Path(path)
    merged: dict[str, IntakeRecord] = {}
    order: list[str] = []
    if not path.exists():
        return []
    skipped = 0
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if (not isinstance(doc, dict)
                    or doc.get("schema") != INTAKE_SCHEMA):
                skipped += 1
                continue
            try:
                validate_intake(doc)
                record = IntakeRecord.from_doc(doc)
            except (SchemaError, KeyError, TypeError, ValueError):
                skipped += 1
                continue
            if record.state not in INTAKE_STATES:
                skipped += 1
                continue
            prior = merged.get(record.campaign_id)
            if prior is None:
                if record.state != "admitted":
                    skipped += 1     # orphan terminal: nothing to recover
                    continue
                merged[record.campaign_id] = record
                order.append(record.campaign_id)
            else:
                merged[record.campaign_id] = prior.merge(record)
    if skipped:
        _metrics.REGISTRY.counter("service.intake_skipped_lines") \
            .inc(skipped)
    return [merged[campaign_id] for campaign_id in order]
