"""Memoized campaign execution: answer cached jobs from the store.

:func:`run_campaign_memoized` is :func:`repro.runner.run_campaign`
with a content-addressed :class:`~repro.service.ResultStore` in front
of it: every job whose fingerprint is already stored is *resumed* from
the stored record (the same seam checkpoint resume uses, so the
reducer and manifest merge treat it exactly like a fresh run), every
miss simulates and is stored as it completes.  A fully-warm campaign
therefore does zero simulated work and still yields a campaign
manifest whose :func:`~repro.runner.manifest_fingerprint` equals the
cold run's — the property the service-level dedup rests on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..resilience.checkpoint import spec_fingerprint
from ..runner import CampaignResult, run_campaign
from ..telemetry.spans import SPANS
from .store import ResultStore


@dataclass(frozen=True)
class MemoStats:
    """How one memoized campaign split between cache and simulation."""

    jobs: int
    hits: int
    stored: int

    @property
    def misses(self) -> int:
        return self.jobs - self.hits

    @property
    def hit_rate(self) -> float:
        return (self.hits / self.jobs) if self.jobs else 0.0

    def to_dict(self) -> dict:
        return {"jobs": self.jobs, "hits": self.hits,
                "misses": self.misses, "stored": self.stored,
                "hit_rate": round(self.hit_rate, 6)}


def run_campaign_memoized(experiment, store: ResultStore, *,
                          on_job_done=None, lineage: str | None = None,
                          **kwargs
                          ) -> tuple[CampaignResult, MemoStats]:
    """Run *experiment* answering every known job from *store*.

    Accepts every :func:`~repro.runner.run_campaign` keyword except
    ``resume`` (the store *is* the resume source here).  Fresh
    successful results are stored from the campaign's completion
    stream, so an interrupted campaign still banks its finished jobs.
    ``lineage`` overrides the resume-source label recorded in the
    manifest's execution lineage (the service tags crash-recovered
    campaigns ``recovery:<store>``); :func:`manifest_fingerprint`
    strips it either way.
    """
    if "resume" in kwargs:
        raise TypeError("run_campaign_memoized owns resume=; "
                        "pre-seed the store instead")
    specs = list(experiment.job_specs())
    with SPANS.span("service:memoize",
                    experiment=getattr(experiment, "name",
                                       type(experiment).__name__),
                    job_count=len(specs)) as span:
        cached = store.lookup(specs)
        stored = 0

        def _bank(result) -> None:
            nonlocal stored
            if spec_fingerprint(result.spec) not in cached:
                stored += store.put(result.spec, result)
            if on_job_done is not None:
                on_job_done(result)

        campaign = run_campaign(experiment, resume=cached or None,
                                on_job_done=_bank, **kwargs)
        span.set(hits=len(cached), misses=len(specs) - len(cached),
                 stored=stored)
    resume_info = campaign.manifest["outcome"].get("resume")
    if resume_info is not None:
        # Name the actual source in the lineage (fingerprint-stripped,
        # so this stays an execution detail).
        resume_info["from"] = lineage or f"store:{store.root}"
    stats = MemoStats(jobs=len(specs), hits=len(cached), stored=stored)
    return campaign, stats
