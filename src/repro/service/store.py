"""Content-addressed result store: memoize jobs by spec fingerprint.

Jobs are deterministic functions of their :class:`~repro.runner.JobSpec`
(the ``--jobs``-independence guarantee the whole runner rests on), so
two requests for the same (experiment, key, seed, machine, params) job
must produce the same result — which means the second one never needs
to simulate.  The store keeps one JSON file per job, addressed by the
SHA-256 :func:`~repro.resilience.spec_fingerprint` that already keys
the checkpoint journal, and wrapping the same
:class:`~repro.resilience.CheckpointRecord` serialization — a cache
hit rehydrates into exactly the :class:`~repro.runner.JobResult` a
resume would have produced, so the reducer cannot tell a warm campaign
from a cold one (their ``manifest_fingerprint``\\ s are equal).

Design points, mirroring the checkpoint journal it generalizes:

* **One object per fingerprint, written atomically.**  Entries land
  via write-to-temp + ``os.replace``, so readers never see a torn
  object and concurrent writers degrade to last-write-wins — harmless,
  both wrote the same deterministic result.
* **Corrupt entries are misses, not errors.**  An unparsable, foreign
  or mis-addressed object is counted (``service.cache_corrupt``),
  evicted, and re-simulated; the store can always be rebuilt from
  work.
* **Only successes memoize.**  Failures may be environmental (timeout,
  lost worker); caching them would pin flakes forever.
* **Bounded, oldest-first eviction.**  ``max_entries`` caps the object
  count; hits refresh an entry's mtime so eviction is LRU-ish without
  an index file.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from ..resilience.checkpoint import CheckpointRecord, spec_fingerprint
from ..runner.executor import JobResult
from ..runner.spec import JobSpec
from ..telemetry import metrics as _metrics

RESULT_ENTRY_SCHEMA = "phantom.result-entry/1"


class ResultStore:
    """Filesystem-backed content-addressed store of job results.

    Layout: ``root/objects/<fp[:2]>/<fp>.json`` — the two-character fan
    keeps directories small at millions of entries.  All counters are
    kept both as plain attributes (always-on, cheap) and mirrored into
    the process metrics registry (``service.cache_*``) so campaign
    manifests and the ``/v1/stats`` endpoint agree.
    """

    def __init__(self, root, *, max_entries: int = 0) -> None:
        self.root = Path(root)
        self._objects = self.root / "objects"
        self._objects.mkdir(parents=True, exist_ok=True)
        self.max_entries = max(0, int(max_entries))   # 0 = unbounded
        self.hits = 0
        self.misses = 0
        self.stored = 0
        self.evictions = 0
        self.corrupt = 0

    # -- addressing ----------------------------------------------------------

    def path_for(self, fingerprint: str) -> Path:
        return self._objects / fingerprint[:2] / f"{fingerprint}.json"

    def __len__(self) -> int:
        return sum(1 for _ in self._iter_paths())

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).exists()

    def _iter_paths(self):
        if not self._objects.exists():
            return
        for fan in sorted(self._objects.iterdir()):
            if fan.is_dir():
                yield from sorted(fan.glob("*.json"))

    # -- read ------------------------------------------------------------------

    def get(self, fingerprint: str) -> CheckpointRecord | None:
        """The stored record for *fingerprint*, or ``None`` on miss.

        Corrupt objects (torn write survivors, foreign schemas, an
        object whose recorded fingerprint disagrees with its address)
        are deleted and reported as misses — the job simply re-runs
        and re-stores, the same degradation the checkpoint journal
        chose for torn lines.
        """
        path = self.path_for(fingerprint)
        try:
            blob = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return self._miss()
        except OSError:
            return self._miss(corrupt=path)
        try:
            # Touch as soon as the bytes are in hand: the refresh both
            # implements LRU and shields this entry from a concurrent
            # eviction pass (evict_to re-checks mtimes before unlink).
            os.utime(path)
        except OSError:
            pass
        try:
            doc = json.loads(blob)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return self._miss(corrupt=path)
        if (not isinstance(doc, dict)
                or doc.get("schema") != RESULT_ENTRY_SCHEMA
                or doc.get("fingerprint") != fingerprint
                or not isinstance(doc.get("record"), dict)):
            return self._miss(corrupt=path)
        try:
            record = CheckpointRecord.from_dict(doc["record"])
        except (KeyError, TypeError):
            return self._miss(corrupt=path)
        self.hits += 1
        _metrics.REGISTRY.counter("service.cache_hits").inc()
        return record

    def _miss(self, corrupt: Path | None = None) -> None:
        self.misses += 1
        _metrics.REGISTRY.counter("service.cache_misses").inc()
        if corrupt is not None:
            self.corrupt += 1
            _metrics.REGISTRY.counter("service.cache_corrupt").inc()
            try:
                corrupt.unlink()
            except OSError:
                pass
        return None

    def lookup(self, specs) -> dict[str, CheckpointRecord]:
        """Fingerprint → record for every hit among *specs* — the
        mapping ``run_campaign(resume=...)`` accepts directly."""
        found: dict[str, CheckpointRecord] = {}
        for spec in specs:
            fingerprint = spec_fingerprint(spec)
            record = self.get(fingerprint)
            if record is not None:
                found[fingerprint] = record
        return found

    # -- write -----------------------------------------------------------------

    def put(self, spec: JobSpec, result: JobResult) -> bool:
        """Store *result* under its spec's fingerprint.

        Returns ``False`` (stores nothing) for failed results — see the
        module doc — and ``True`` once the entry is durably in place.
        """
        if not result.ok:
            return False
        return self.put_record(CheckpointRecord.from_result(spec, result))

    def put_record(self, record: CheckpointRecord) -> bool:
        path = self.path_for(record.fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"schema": RESULT_ENTRY_SCHEMA,
               "fingerprint": record.fingerprint,
               "stored_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
               "record": record.to_dict()}
        blob = json.dumps(doc, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(blob)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            return False
        self.stored += 1
        _metrics.REGISTRY.counter("service.cache_stores").inc()
        if self.max_entries:
            self.evict_to(self.max_entries)
        return True

    # -- maintenance -------------------------------------------------------------

    def evict_to(self, limit: int) -> int:
        """Delete oldest-mtime entries until at most *limit* remain.

        Eviction races live lookups by design (campaign completion
        writes — and therefore evicts — while the next campaign's
        ``lookup`` reads), so candidates are re-checked immediately
        before the unlink: a hit refreshes its entry's mtime
        (:meth:`get`), and an entry whose mtime moved since the
        candidate list was taken is being read *right now* — it is
        spared, and eviction moves on to the next-oldest.
        """
        paths = list(self._iter_paths())
        excess = len(paths) - max(0, int(limit))
        if excess <= 0:
            return 0

        def mtime(path: Path) -> float:
            try:
                return path.stat().st_mtime
            except OSError:
                return 0.0

        listed = {path: mtime(path) for path in paths}
        evicted = 0
        for path in sorted(paths, key=listed.__getitem__):
            if evicted >= excess:
                break
            try:
                if path.stat().st_mtime > listed[path]:
                    continue        # refreshed by an in-flight read
                path.unlink()
            except OSError:
                continue
            evicted += 1
        self.evictions += evicted
        _metrics.REGISTRY.counter("service.cache_evictions").inc(evicted)
        return evicted

    def stats(self) -> dict:
        """Snapshot for ``/v1/stats`` and load-test reports."""
        lookups = self.hits + self.misses
        return {"entries": len(self), "hits": self.hits,
                "misses": self.misses, "stored": self.stored,
                "evictions": self.evictions, "corrupt": self.corrupt,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
                "max_entries": self.max_entries, "root": str(self.root)}
