"""Load replay: hammer a service with overlapping campaigns.

The dedup claim behind the campaign service — "hundreds of overlapping
campaigns, almost all answered from the store" — is a systems property,
not a unit one, so it gets a harness: :func:`run_loadtest` boots a
service, replays a fleet of campaigns whose job sets overlap (the
matrix experiment's cell-prefix structure gives natural overlap), and
measures

* the **replay hit rate** — fraction of replayed jobs served from the
  content-addressed store (the acceptance bar is ≥ 0.95);
* **fingerprint consistency** — every warm campaign's
  :func:`~repro.runner.manifest_fingerprint` must equal its cold
  original's, or memoization changed results and is disqualified;
* **typed rejection** — a deliberately throttled tenant storms the
  service and must collect :class:`~repro.service.errors.RateLimited`
  / :class:`~repro.service.errors.QuotaExceeded`, never untyped
  failures or accepted work beyond its quota.

``repro serve --selftest`` and the CI ``service-smoke`` job both call
this module; tests call it with a small fleet.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

from ..runner import manifest_fingerprint
from .client import ServiceClient
from .errors import QuotaExceeded, RateLimited, ServiceError
from .protocol import JOB_REQUEST_SCHEMA
from .quota import TenantPolicy
from .server import ServiceConfig, start_in_thread

REPLAY_SCHEMA = "phantom.load-replay/1"

# The throttled tenant the storm phase plays: one active campaign,
# a near-empty bucket.  Everything it does beyond the first submit
# must bounce with a typed error.
STORM_TENANT = "storm"
STORM_POLICY = TenantPolicy(rate_per_s=0.5, burst=1,
                            max_active_campaigns=1,
                            max_jobs_per_campaign=64)


@dataclass(frozen=True)
class ReplayPlan:
    """Shape of one load replay."""

    distinct: int = 6        # distinct campaign shapes (overlapping cells)
    replays: int = 120       # warm submissions cycling the shapes
    tenants: tuple = ("alice", "bob", "carol")
    storm_attempts: int = 25
    jobs: int = 1            # workers per campaign
    min_hit_rate: float = 0.95

    def request_doc(self, index: int, tenant: str) -> dict:
        """The *index*-th campaign shape, as a request document.

        ``cells=index+1`` slices a prefix of the asymmetric combo
        matrix, so shape *k* contains every job of shape *k-1* — the
        overlap that makes even the cold phase partially dedup.
        """
        return {"schema": JOB_REQUEST_SCHEMA, "tenant": tenant,
                "experiment": "matrix",
                "params": {"uarches": ["zen 2"],
                           "cells": (index % self.distinct) + 1,
                           "seed": 0},
                "options": {"jobs": self.jobs}}


@dataclass
class ReplayReport:
    """Everything one replay measured; ``ok`` is the verdict."""

    plan: ReplayPlan
    cold_campaigns: int = 0
    cold_jobs: int = 0
    cold_hits: int = 0
    replay_campaigns: int = 0
    replay_jobs: int = 0
    replay_hits: int = 0
    mismatched_fingerprints: int = 0
    storm_accepted: int = 0
    storm_rate_limited: int = 0
    storm_quota_rejected: int = 0
    storm_untyped: int = 0
    wall_time_s: float = 0.0
    store_stats: dict = field(default_factory=dict)

    @property
    def replay_hit_rate(self) -> float:
        return (self.replay_hits / self.replay_jobs) \
            if self.replay_jobs else 0.0

    @property
    def ok(self) -> bool:
        return (self.replay_campaigns == self.plan.replays
                and self.replay_hit_rate >= self.plan.min_hit_rate
                and self.mismatched_fingerprints == 0
                and self.storm_untyped == 0
                and (self.storm_rate_limited
                     + self.storm_quota_rejected) > 0)

    def to_dict(self) -> dict:
        return {"schema": REPLAY_SCHEMA, "ok": self.ok,
                "plan": {"distinct": self.plan.distinct,
                         "replays": self.plan.replays,
                         "min_hit_rate": self.plan.min_hit_rate},
                "cold": {"campaigns": self.cold_campaigns,
                         "jobs": self.cold_jobs,
                         "hits": self.cold_hits},
                "replay": {"campaigns": self.replay_campaigns,
                           "jobs": self.replay_jobs,
                           "hits": self.replay_hits,
                           "hit_rate": round(self.replay_hit_rate, 6),
                           "mismatched_fingerprints":
                               self.mismatched_fingerprints},
                "storm": {"accepted": self.storm_accepted,
                          "rate_limited": self.storm_rate_limited,
                          "quota_rejected": self.storm_quota_rejected,
                          "untyped": self.storm_untyped},
                "wall_time_s": round(self.wall_time_s, 3),
                "store": dict(self.store_stats)}


def _fingerprint_digest(manifest: dict) -> str:
    blob = json.dumps(manifest_fingerprint(manifest), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def _wait_done(client: ServiceClient, campaign_id: str,
               timeout: float = 300.0) -> dict:
    deadline = time.monotonic() + timeout
    while True:
        status = client.campaign(campaign_id)
        if status["state"] in ("done", "failed"):
            return status
        if time.monotonic() > deadline:
            raise ServiceError(
                f"campaign {campaign_id} still {status['state']} "
                f"after {timeout}s")
        time.sleep(0.02)


def replay(url: str, plan: ReplayPlan | None = None) -> ReplayReport:
    """Run the three replay phases against a service at *url*.

    The service should give the plan's tenants headroom (the storm
    phase brings its own throttled tenant policy — see
    :data:`STORM_POLICY`, wired in by :func:`run_loadtest`).
    """
    plan = plan or ReplayPlan()
    client = ServiceClient(url)
    report = ReplayReport(plan=plan)
    started = time.monotonic()

    # Phase 1 — cold: establish every distinct shape and its
    # fingerprint.  Sequential on purpose: the digests are the oracle
    # the replay phase checks against.
    cold_digest: dict[int, str] = {}
    for index in range(plan.distinct):
        tenant = plan.tenants[index % len(plan.tenants)]
        status = client.submit(plan.request_doc(index, tenant), wait=True)
        if status["state"] != "done":
            raise ServiceError(f"cold campaign {index} failed: "
                               f"{status.get('error')}")
        report.cold_campaigns += 1
        report.cold_jobs += status["memo"]["jobs"]
        report.cold_hits += status["memo"]["hits"]
        cold_digest[index % plan.distinct] = \
            _fingerprint_digest(status["manifest"])

    # Phase 2 — replay: flood the queue with warm submissions (async
    # 202s, so submissions overlap execution), then collect.
    pending: list[tuple[int, str]] = []
    for index in range(plan.replays):
        tenant = plan.tenants[index % len(plan.tenants)]
        status = client.submit(plan.request_doc(index, tenant))
        pending.append((index % plan.distinct, status["id"]))
    for shape, campaign_id in pending:
        status = _wait_done(client, campaign_id)
        if status["state"] != "done":
            raise ServiceError(f"replay campaign {campaign_id} failed: "
                               f"{status.get('error')}")
        report.replay_campaigns += 1
        report.replay_jobs += status["memo"]["jobs"]
        report.replay_hits += status["memo"]["hits"]
        if _fingerprint_digest(status["manifest"]) != cold_digest[shape]:
            report.mismatched_fingerprints += 1

    # Phase 3 — storm: the throttled tenant hammers the service and
    # must be turned away with *typed* errors.
    storm_ids = []
    for index in range(plan.storm_attempts):
        try:
            status = client.submit(plan.request_doc(index, STORM_TENANT))
        except RateLimited:
            report.storm_rate_limited += 1
        except QuotaExceeded:
            report.storm_quota_rejected += 1
        except ServiceError:
            report.storm_untyped += 1
        else:
            report.storm_accepted += 1
            storm_ids.append(status["id"])
    for campaign_id in storm_ids:
        _wait_done(client, campaign_id)

    report.wall_time_s = time.monotonic() - started
    report.store_stats = client.stats()["store"]
    return report


def run_loadtest(store_dir, plan: ReplayPlan | None = None,
                 *, jobs: int = 1) -> ReplayReport:
    """Boot a service configured for replay, run it, tear it down."""
    plan = plan or ReplayPlan()
    config = ServiceConfig(
        port=0, store_dir=str(store_dir), jobs=jobs,
        max_queue=max(64, plan.replays + plan.distinct + 8),
        # Replay tenants get headroom — the point is measuring dedup,
        # not tripping the limiter; the storm tenant gets STORM_POLICY.
        policy=TenantPolicy(rate_per_s=1000.0, burst=2000,
                            max_active_campaigns=10_000),
        overrides=((STORM_TENANT, STORM_POLICY),))
    handle = start_in_thread(config)
    try:
        return replay(handle.url, plan)
    finally:
        handle.stop()
