"""Service lifecycle: startup recovery, readiness, and graceful drain.

A long-lived service has states a batch run never needed:

* ``starting``   — process up, socket not yet accepting work
* ``recovering`` — replaying the intake journal (``--state-dir``)
* ``ready``      — accepting submissions
* ``draining``   — SIGTERM received: the in-flight campaign finishes,
  the journal is flushed, new submissions bounce with a typed 503
  (queued-but-unstarted campaigns stay journaled and are recovered by
  the next instance)
* ``stopped``    — drain complete, process exiting

``/readyz`` reports this state machine (200 only in ``ready``), which
is deliberately distinct from ``/healthz`` liveness: a draining
service is perfectly *healthy* — it must not be restarted by a
supervisor mid-drain — but not *ready*, so load balancers stop routing
new work to it.  See ``docs/service.md`` ("Durability and crash
recovery").
"""

from __future__ import annotations

import signal
import time

from ..telemetry import metrics as _metrics
from ..telemetry.spans import SPANS

#: Every lifecycle state, in the order they are normally entered.
LIFECYCLE_STATES = ("starting", "recovering", "ready", "draining",
                    "stopped")

#: Transitions the state machine accepts; anything else is a no-op
#: (signals can race — a second SIGTERM during drain must be harmless).
_TRANSITIONS = {
    "starting": ("recovering", "ready", "draining", "stopped"),
    "recovering": ("ready", "draining", "stopped"),
    "ready": ("draining", "stopped"),
    "draining": ("stopped",),
    "stopped": (),
}


class ServiceLifecycle:
    """The service's state machine, observable and idempotent.

    Transitions are recorded as spans (``service:lifecycle``) and in
    the ``service.lifecycle_transitions`` counter; invalid transitions
    are silently ignored rather than raised, because the inputs are
    signals and shutdown races, not programmer errors.
    """

    def __init__(self) -> None:
        self.state = "starting"
        self.entered_at = time.time()
        self.history: list[tuple[str, float]] = [("starting",
                                                  self.entered_at)]

    def transition(self, state: str) -> bool:
        """Move to *state* if legal; returns whether anything changed."""
        if state not in LIFECYCLE_STATES:
            raise ValueError(f"unknown lifecycle state {state!r}")
        if state not in _TRANSITIONS[self.state]:
            return False
        SPANS.event("service:lifecycle", state=state,
                    previous=self.state)
        _metrics.REGISTRY.counter("service.lifecycle_transitions").inc()
        self.state = state
        self.entered_at = time.time()
        self.history.append((state, self.entered_at))
        return True

    # -- convenience predicates ---------------------------------------------

    @property
    def accepting(self) -> bool:
        """May ``submit`` admit new work right now?"""
        return self.state == "ready"

    @property
    def ready(self) -> bool:
        return self.state == "ready"

    @property
    def draining(self) -> bool:
        return self.state in ("draining", "stopped")

    def describe(self) -> dict:
        return {"state": self.state,
                "since": round(self.entered_at, 3),
                "history": [[state, round(stamp, 3)]
                            for state, stamp in self.history]}


def install_drain_signal(loop, trigger, *,
                         signals=(signal.SIGTERM,)) -> list:
    """Arm *signals* to call *trigger* once on the event loop.

    Returns the signals actually installed (``add_signal_handler`` is
    unavailable on some platforms/loops; the service then simply has
    no signal-driven drain, and tests drive ``drain()`` directly).
    SIGINT is deliberately left alone: Ctrl-C keeps its
    KeyboardInterrupt semantics for interactive use.
    """
    installed = []
    for signum in signals:
        try:
            loop.add_signal_handler(signum, trigger)
        except (NotImplementedError, RuntimeError, ValueError, OSError):
            continue
        installed.append(signum)
    return installed


def remove_drain_signal(loop, installed) -> None:
    for signum in installed:
        try:
            loop.remove_signal_handler(signum)
        except (NotImplementedError, RuntimeError, ValueError, OSError):
            pass
