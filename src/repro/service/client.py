"""A small synchronous client for the campaign service.

``repro submit`` and the load-replay harness both talk to the service
through this class; it is stdlib-only (:mod:`http.client`) and maps
``phantom.error/1`` responses back into the same typed
:class:`~repro.service.errors.ServiceError` hierarchy the server
raised, so ``except RateLimited`` works identically in-process and
over the wire.
"""

from __future__ import annotations

import http.client
import json
from urllib.parse import urlsplit

from .errors import ServiceError, error_from_doc
from .protocol import JOB_REQUEST_SCHEMA


class ServiceClient:
    """Blocking HTTP client bound to one service base URL."""

    def __init__(self, base_url: str, *, timeout: float = 300.0) -> None:
        parts = urlsplit(base_url if "//" in base_url
                         else f"http://{base_url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"only http:// service URLs are supported, "
                             f"got {base_url!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.timeout = timeout

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- plumbing -----------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: dict | None = None) -> dict:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise ServiceError(
                f"service returned non-JSON ({response.status}): "
                f"{raw[:200]!r}", http_status=response.status) from None
        if response.status >= 400:
            raise error_from_doc(doc, http_status=response.status)
        return doc

    # -- endpoints ------------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def submit(self, doc: dict, *, wait: bool = False) -> dict:
        """POST one ``phantom.job-request/1``; returns the campaign
        status document (final when ``wait=True``)."""
        path = "/v1/campaigns" + ("?wait=1" if wait else "")
        return self._request("POST", path, body=doc)

    def submit_request(self, tenant: str, experiment: str,
                       params: dict | None = None,
                       options: dict | None = None, *,
                       wait: bool = False) -> dict:
        """Convenience wrapper assembling the request document."""
        doc = {"schema": JOB_REQUEST_SCHEMA, "tenant": tenant,
               "experiment": experiment}
        if params:
            doc["params"] = params
        if options:
            doc["options"] = options
        return self.submit(doc, wait=wait)

    def campaign(self, campaign_id: str) -> dict:
        return self._request("GET", f"/v1/campaigns/{campaign_id}")

    def events(self, campaign_id: str):
        """Yield ``phantom.progress/1`` documents until the campaign
        finishes (streams live; replays history for finished ones)."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/v1/campaigns/{campaign_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    doc = json.loads(raw.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    raise ServiceError(
                        f"service returned non-JSON "
                        f"({response.status})") from None
                raise error_from_doc(doc, http_status=response.status)
            buffer = b""
            while True:
                chunk = response.read(4096)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()
