"""A small synchronous client for the campaign service.

``repro submit`` and the load-replay harness both talk to the service
through this class; it is stdlib-only (:mod:`http.client`) and maps
``phantom.error/1`` responses back into the same typed
:class:`~repro.service.errors.ServiceError` hierarchy the server
raised, so ``except RateLimited`` works identically in-process and
over the wire.

Robustness is opt-in and layered (defaults keep the old
fail-immediately behaviour, which tests and the load-replay storm
phase rely on):

* :class:`RetryPolicy` — bounded retries of *transient* faults
  (connection errors, 429 rate limits, 503 unavailable/draining) with
  :func:`~repro.runner.derive_seed`-jittered exponential backoff that
  always honours the server's ``Retry-After`` hint.  Deterministic
  per seed, so tests can pin the exact delay sequence.
* :class:`CircuitBreaker` — after ``failure_threshold`` consecutive
  transient failures the circuit opens and requests fail fast
  (:class:`~repro.service.errors.CircuitOpen`) for ``cooldown_s``;
  then a half-open probe decides between closing and re-opening.
  Fail-fast beats hammering a struggling service with a fleet's worth
  of synchronized retries.
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass
from urllib.parse import urlsplit

from ..runner.spec import derive_seed
from ..telemetry import metrics as _metrics
from .errors import (CircuitOpen, RateLimited, ServiceError, Unavailable,
                     error_from_doc)
from .protocol import JOB_REQUEST_SCHEMA, JobRequest

#: Transient transport faults worth retrying; everything else
#: (BadRequest, QuotaExceeded, ...) reflects the request, not the
#: weather, and is raised immediately.
_TRANSIENT_EXC = (ConnectionError, TimeoutError, OSError,
                  http.client.HTTPException)


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic jittered exponential backoff for transient faults.

    ``delay_for(attempt)`` grows ``backoff_base_s * 2**attempt`` up to
    ``backoff_cap_s``, jittered into ``[0.5, 1.0]`` of itself by
    :func:`~repro.runner.derive_seed` (stable across processes — a
    fleet of clients with distinct seeds decorrelates, one client
    retries reproducibly).  A server ``Retry-After`` hint always wins
    when it is longer: the server knows its backlog, the client only
    knows its schedule.
    """

    attempts: int = 4             # total tries = attempts (not 1+attempts)
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 10.0
    jitter_seed: int = 0

    def delay_for(self, attempt: int, *, retry_after_s: float = 0.0,
                  token: str = "") -> float:
        base = min(self.backoff_cap_s,
                   self.backoff_base_s * (2 ** attempt))
        frac = derive_seed(self.jitter_seed,
                           ("client-backoff", token, attempt)) \
            % 1_000_000 / 1_000_000
        return max(base * (0.5 + 0.5 * frac), retry_after_s)


class CircuitBreaker:
    """Half-open circuit breaker over an injectable monotonic clock.

    States: *closed* (requests flow; consecutive transient failures
    are counted), *open* (requests fail fast until ``cooldown_s``
    elapses), *half-open* (one probe request is allowed through; its
    outcome closes or re-opens the circuit).
    """

    def __init__(self, *, failure_threshold: int = 5,
                 cooldown_s: float = 30.0, clock=time.monotonic) -> None:
        self.failure_threshold = max(1, int(failure_threshold))
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self.state = "closed"
        self.failures = 0
        self._opened_at = 0.0
        self._probing = False

    def preflight(self) -> None:
        """Raise :class:`CircuitOpen` unless a request may go out."""
        if self.state == "open":
            elapsed = self._clock() - self._opened_at
            if elapsed < self.cooldown_s:
                raise CircuitOpen(
                    f"circuit breaker open after "
                    f"{self.failures} consecutive failures; probing "
                    f"in {self.cooldown_s - elapsed:.3f}s",
                    retry_after_s=self.cooldown_s - elapsed)
            self.state = "half-open"
            self._probing = False
        if self.state == "half-open":
            if self._probing:
                raise CircuitOpen(
                    "circuit breaker is half-open and its probe is "
                    "already in flight",
                    retry_after_s=self.cooldown_s)
            self._probing = True

    def record_success(self) -> None:
        self.state = "closed"
        self.failures = 0
        self._probing = False

    def record_failure(self) -> None:
        self._probing = False
        self.failures += 1
        if self.state == "half-open" \
                or self.failures >= self.failure_threshold:
            self.state = "open"
            self._opened_at = self._clock()
            _metrics.REGISTRY.counter("client.circuit_opened").inc()

    def describe(self) -> dict:
        return {"state": self.state, "failures": self.failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_s": self.cooldown_s}


class ServiceClient:
    """Blocking HTTP client bound to one service base URL.

    ``retry=None`` (default) keeps the raw one-shot behaviour; pass a
    :class:`RetryPolicy` (and optionally a :class:`CircuitBreaker`)
    for tenant-grade robustness.  ``sleeper`` is injectable so tests
    assert the delay sequence instead of sleeping it.
    """

    def __init__(self, base_url: str, *, timeout: float = 300.0,
                 retry: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 sleeper=time.sleep) -> None:
        parts = urlsplit(base_url if "//" in base_url
                         else f"http://{base_url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"only http:// service URLs are supported, "
                             f"got {base_url!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.timeout = timeout
        self.retry = retry
        self.breaker = breaker
        self._sleep = sleeper

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- plumbing -----------------------------------------------------------

    def _request_once(self, method: str, path: str,
                      body: dict | None = None) -> dict:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise ServiceError(
                f"service returned non-JSON ({response.status}): "
                f"{raw[:200]!r}", http_status=response.status) from None
        if response.status >= 400:
            raise error_from_doc(doc, http_status=response.status)
        return doc

    @staticmethod
    def _transient(exc: Exception) -> bool:
        """Worth retrying?  Transport faults and the two explicitly
        retryable service rejections — never request-shaped errors."""
        if isinstance(exc, (RateLimited, Unavailable)):
            return not isinstance(exc, CircuitOpen)
        if isinstance(exc, ServiceError):
            return False
        return isinstance(exc, _TRANSIENT_EXC)

    def _request(self, method: str, path: str,
                 body: dict | None = None) -> dict:
        if self.retry is None and self.breaker is None:
            return self._request_once(method, path, body)
        attempts = self.retry.attempts if self.retry is not None else 1
        last: Exception | None = None
        for attempt in range(max(1, attempts)):
            if self.breaker is not None:
                self.breaker.preflight()
            try:
                doc = self._request_once(method, path, body)
            except Exception as exc:   # noqa: BLE001 — classified below
                if not self._transient(exc):
                    raise
                if self.breaker is not None:
                    self.breaker.record_failure()
                _metrics.REGISTRY.counter("client.transient_errors").inc()
                last = exc
                if self.retry is None or attempt + 1 >= attempts:
                    raise
                delay = self.retry.delay_for(
                    attempt,
                    retry_after_s=getattr(exc, "retry_after_s", 0.0),
                    token=path)
                _metrics.REGISTRY.counter("client.retries").inc()
                self._sleep(delay)
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            return doc
        raise last if last is not None else ServiceError(
            "retry loop ended without a response")   # unreachable

    # -- endpoints ------------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def ready(self) -> dict:
        """``/readyz`` — raises :class:`Unavailable` (503) while the
        service is starting, recovering, or draining."""
        return self._request("GET", "/readyz")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def submit(self, doc: dict, *, wait: bool = False,
               idempotent: bool = False) -> dict:
        """POST one ``phantom.job-request/1``; returns the campaign
        status document (final when ``wait=True``).

        ``idempotent=True`` stamps the document with an idempotency
        key derived from the request fingerprint (work identity), so a
        retried or resubmitted request returns the original campaign
        record instead of running twice — including across service
        restarts, because the key is journaled with the intake record.
        """
        if idempotent and "idempotency_key" not in doc:
            doc = dict(doc)
            doc["idempotency_key"] = JobRequest.from_doc(doc).fingerprint()
        path = "/v1/campaigns" + ("?wait=1" if wait else "")
        return self._request("POST", path, body=doc)

    def submit_request(self, tenant: str, experiment: str,
                       params: dict | None = None,
                       options: dict | None = None, *,
                       wait: bool = False,
                       idempotent: bool = False) -> dict:
        """Convenience wrapper assembling the request document."""
        doc = {"schema": JOB_REQUEST_SCHEMA, "tenant": tenant,
               "experiment": experiment}
        if params:
            doc["params"] = params
        if options:
            doc["options"] = options
        return self.submit(doc, wait=wait, idempotent=idempotent)

    def campaign(self, campaign_id: str) -> dict:
        return self._request("GET", f"/v1/campaigns/{campaign_id}")

    def wait_for(self, campaign_id: str, *, timeout: float = 600.0,
                 poll_s: float = 0.25) -> dict:
        """Poll until *campaign_id* reaches a terminal state.

        The polling loop (rather than ``?wait=1``) is what a client
        uses across a service restart: the blocking submit dies with
        the old process, the poll simply starts answering again once
        the new instance has recovered the campaign.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.campaign(campaign_id)
            if status["state"] in ("done", "failed"):
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"campaign {campaign_id} still {status['state']!r} "
                    f"after {timeout}s")
            self._sleep(poll_s)

    def events(self, campaign_id: str):
        """Yield ``phantom.progress/1`` documents until the campaign
        finishes (streams live; replays history for finished ones)."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/v1/campaigns/{campaign_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    doc = json.loads(raw.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    raise ServiceError(
                        f"service returned non-JSON "
                        f"({response.status})") from None
                raise error_from_doc(doc, http_status=response.status)
            buffer = b""
            while True:
                chunk = response.read(4096)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()
