"""The service wire protocol: versioned request and status documents.

Clients submit campaigns as ``phantom.job-request/1`` JSON documents::

    {"schema": "phantom.job-request/1",
     "tenant": "alice",
     "experiment": "matrix",
     "params": {"uarches": ["zen 2"], "cells": 4, "seed": 0},
     "options": {"jobs": 2}}

``experiment`` names a builder in :data:`EXPERIMENTS` (the same frozen,
picklable Experiment dataclasses the CLI drives); ``params`` feeds that
builder and is validated key-by-key so a typo is a
:class:`~repro.service.errors.BadRequest`, never a silently-defaulted
campaign; ``options`` deserializes into the shared
:class:`~repro.runner.CampaignOptions` record (the exact dataclass the
CLI subcommands build from their flags).

The service answers with ``phantom.campaign-status/1`` documents and
streams ``phantom.progress/1`` events — both produced by code that
already exists (:mod:`repro.runner.reduce`,
:mod:`repro.telemetry.progress`); this module only frames them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..runner.options import CampaignOptions
from .errors import BadRequest

JOB_REQUEST_SCHEMA = "phantom.job-request/1"
CAMPAIGN_STATUS_SCHEMA = "phantom.campaign-status/1"
HEALTH_SCHEMA = "phantom.service-health/1"
STATS_SCHEMA = "phantom.service-stats/1"


# -- experiment builders ------------------------------------------------------
#
# Each builder: params dict -> a picklable Experiment.  Builders
# validate eagerly and import lazily (a service process that only ever
# runs matrix campaigns never imports the fuzz generator).

def _take(params: dict, known: dict) -> dict:
    """Apply *params* over the *known* defaults, rejecting strangers."""
    unknown = set(params) - set(known)
    if unknown:
        raise BadRequest(
            f"unknown param(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(known))})")
    merged = dict(known)
    merged.update(params)
    return merged

def _uarch_names(value, *, what: str) -> tuple[str, ...]:
    from ..pipeline import ALL_MICROARCHES, AMD_MICROARCHES, by_name

    if value == "all":
        return tuple(u.name for u in ALL_MICROARCHES)
    if value == "amd":
        return tuple(u.name for u in AMD_MICROARCHES)
    if isinstance(value, str):
        value = [value]
    if not isinstance(value, (list, tuple)) or not value:
        raise BadRequest(f"{what} must be a µarch name, a list of "
                         f"names, 'amd' or 'all'")
    try:
        return tuple(by_name(str(name)).name for name in value)
    except Exception as exc:
        raise BadRequest(f"{what}: {exc}") from None


def _int(params: dict, name: str, *, minimum: int = 0) -> int:
    value = params[name]
    if not isinstance(value, int) or isinstance(value, bool) \
            or value < minimum:
        raise BadRequest(f"param {name!r} must be an integer >= {minimum}, "
                         f"got {value!r}")
    return value


def build_matrix(params: dict):
    from ..core.matrix import ASYMMETRIC_COMBOS, MatrixExperiment

    merged = _take(params, {"uarches": "amd", "cells": 0, "seed": 0})
    uarches = _uarch_names(merged["uarches"], what="param 'uarches'")
    cells = _int(merged, "cells")
    combos = tuple(ASYMMETRIC_COMBOS[:cells]) if cells else ASYMMETRIC_COMBOS
    return MatrixExperiment(uarches=uarches, combos=combos,
                            seed=_int(merged, "seed"))


def build_kaslr(params: dict):
    from ..core import KaslrImageExperiment
    from ..kernel import MachineSpec

    merged = _take(params, {"uarch": "zen 3", "seed": 0})
    [uarch] = _uarch_names(merged["uarch"], what="param 'uarch'")
    return KaslrImageExperiment(
        machine=MachineSpec(uarch=uarch, kaslr_seed=_int(merged, "seed")))


def build_covert(params: dict):
    from ..core import CovertExperiment
    from ..kernel import MachineSpec

    merged = _take(params, {"uarch": "zen 4", "seed": 1, "bits": 512,
                            "channel": "fetch", "kaslr_seed": 0})
    [uarch] = _uarch_names(merged["uarch"], what="param 'uarch'")
    if merged["channel"] not in ("fetch", "execute"):
        raise BadRequest("param 'channel' must be 'fetch' or 'execute'")
    machine = MachineSpec(uarch=uarch,
                          kaslr_seed=_int(merged, "kaslr_seed"),
                          sibling_load=merged["channel"] == "fetch")
    return CovertExperiment(machine=machine, channel=merged["channel"],
                            n_bits=_int(merged, "bits", minimum=1),
                            seed=_int(merged, "seed"))


def build_fuzz(params: dict):
    from ..fuzz import DEFAULT_UARCHES, SHAPES, FuzzExperiment

    merged = _take(params, {"seed": 0, "iters": 50, "shape": None,
                            "uarches": None, "invariants": True})
    shape = merged["shape"]
    if shape is not None and shape not in SHAPES:
        raise BadRequest(f"param 'shape' must be one of "
                         f"{', '.join(SHAPES)}")
    uarches = DEFAULT_UARCHES if merged["uarches"] is None \
        else _uarch_names(merged["uarches"], what="param 'uarches'")
    return FuzzExperiment(seed=_int(merged, "seed"),
                          count=_int(merged, "iters", minimum=1),
                          shape=shape, uarches=uarches,
                          invariants=bool(merged["invariants"]))


EXPERIMENTS = {
    "matrix": build_matrix,
    "kaslr": build_kaslr,
    "covert": build_covert,
    "fuzz": build_fuzz,
}


# -- request documents --------------------------------------------------------

@dataclass(frozen=True)
class JobRequest:
    """One validated campaign submission.

    ``idempotency_key`` is the client's retry-safety handle: two
    submissions by the same tenant carrying the same key are the same
    *submission* (not merely the same work), so the service returns
    the first submission's campaign record instead of enqueueing a
    duplicate — across restarts too, because the key is journaled
    with the intake record.  Clients that want at-most-once semantics
    derive the key from :meth:`fingerprint` (the
    :class:`~repro.service.client.ServiceClient` does exactly that
    when asked); clients that want every resubmission to run simply
    omit it.
    """

    tenant: str
    experiment: str
    params: dict = field(default_factory=dict)
    options: CampaignOptions = CampaignOptions()
    idempotency_key: str | None = None

    @classmethod
    def from_doc(cls, doc) -> "JobRequest":
        if not isinstance(doc, dict):
            raise BadRequest("request body must be a JSON object")
        if doc.get("schema") != JOB_REQUEST_SCHEMA:
            raise BadRequest(
                f"expected schema {JOB_REQUEST_SCHEMA!r}, "
                f"got {doc.get('schema')!r}")
        tenant = doc.get("tenant")
        if not isinstance(tenant, str) or not tenant.strip():
            raise BadRequest("'tenant' must be a non-empty string")
        experiment = doc.get("experiment")
        if experiment not in EXPERIMENTS:
            raise BadRequest(
                f"unknown experiment {experiment!r} "
                f"(known: {', '.join(sorted(EXPERIMENTS))})")
        params = doc.get("params", {})
        if not isinstance(params, dict):
            raise BadRequest("'params' must be a JSON object")
        try:
            options = CampaignOptions.from_dict(doc.get("options", {}))
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"bad 'options': {exc}") from None
        idempotency_key = doc.get("idempotency_key")
        if idempotency_key is not None and (
                not isinstance(idempotency_key, str)
                or not idempotency_key.strip()
                or len(idempotency_key) > 256):
            raise BadRequest("'idempotency_key' must be a non-empty "
                             "string of at most 256 characters")
        unknown = set(doc) - {"schema", "tenant", "experiment", "params",
                              "options", "idempotency_key"}
        if unknown:
            raise BadRequest(
                f"unknown field(s): {', '.join(sorted(unknown))}")
        return cls(tenant=tenant.strip(), experiment=experiment,
                   params=dict(params), options=options,
                   idempotency_key=(idempotency_key.strip()
                                    if idempotency_key else None))

    def to_doc(self) -> dict:
        doc = {"schema": JOB_REQUEST_SCHEMA, "tenant": self.tenant,
               "experiment": self.experiment}
        if self.params:
            doc["params"] = dict(self.params)
        options = self.options.to_dict()
        if options:
            doc["options"] = options
        if self.idempotency_key is not None:
            doc["idempotency_key"] = self.idempotency_key
        return doc

    def build(self):
        """Params → the campaign's Experiment object (validates)."""
        return EXPERIMENTS[self.experiment](self.params)

    def fingerprint(self) -> str:
        """Stable identity of the requested *work* — tenant and
        execution options excluded, exactly like job fingerprints."""
        blob = json.dumps({"experiment": self.experiment,
                           "params": self.params},
                          sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode()).hexdigest()[:32]
