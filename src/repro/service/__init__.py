"""Campaign service: simulation-as-a-service with result memoization.

The batch runner (:mod:`repro.runner`) answers "run this campaign for
me, here, now".  This package turns it into a long-lived service:

* :mod:`~repro.service.store` — a content-addressed
  :class:`ResultStore` keyed by job :func:`~repro.resilience.spec_fingerprint`,
  so identical jobs are simulated once, ever;
* :mod:`~repro.service.memo` — :func:`run_campaign_memoized`, the
  store threaded through ``run_campaign``'s resume seam (warm and cold
  campaigns are :func:`~repro.runner.manifest_fingerprint`-identical);
* :mod:`~repro.service.quota` — per-tenant token buckets and hard
  quotas, raising the typed errors in :mod:`~repro.service.errors`;
* :mod:`~repro.service.protocol` — the ``phantom.job-request/1`` /
  ``phantom.campaign-status/1`` wire documents;
* :mod:`~repro.service.server` / :mod:`~repro.service.client` — the
  asyncio HTTP front (``repro serve``) and the blocking client
  (``repro submit``), stdlib only;
* :mod:`~repro.service.loadtest` — the replay harness behind the CI
  dedup gate.

See ``docs/service.md`` for the architecture and wire formats.
"""

from .client import CircuitBreaker, RetryPolicy, ServiceClient
from .errors import (ERROR_SCHEMA, BadRequest, CampaignFailed, CircuitOpen,
                     NotFound, QuotaExceeded, RateLimited, ServiceError,
                     Unavailable, error_from_doc)
from .journal import (INTAKE_SCHEMA, IntakeJournal, IntakeRecord,
                      load_intake)
from .lifecycle import LIFECYCLE_STATES, ServiceLifecycle
from .loadtest import (REPLAY_SCHEMA, ReplayPlan, ReplayReport, replay,
                       run_loadtest)
from .memo import MemoStats, run_campaign_memoized
from .protocol import (CAMPAIGN_STATUS_SCHEMA, EXPERIMENTS, HEALTH_SCHEMA,
                       JOB_REQUEST_SCHEMA, STATS_SCHEMA, JobRequest)
from .quota import QuotaManager, TenantPolicy, TokenBucket
from .server import (CampaignRecord, CampaignService, ServiceConfig,
                     ServiceHandle, serve, start_in_thread)
from .store import RESULT_ENTRY_SCHEMA, ResultStore

__all__ = [
    "BadRequest",
    "CampaignFailed",
    "CampaignRecord",
    "CampaignService",
    "CAMPAIGN_STATUS_SCHEMA",
    "CircuitBreaker",
    "CircuitOpen",
    "ERROR_SCHEMA",
    "EXPERIMENTS",
    "error_from_doc",
    "HEALTH_SCHEMA",
    "INTAKE_SCHEMA",
    "IntakeJournal",
    "IntakeRecord",
    "JobRequest",
    "JOB_REQUEST_SCHEMA",
    "LIFECYCLE_STATES",
    "load_intake",
    "MemoStats",
    "NotFound",
    "QuotaExceeded",
    "QuotaManager",
    "RateLimited",
    "ReplayPlan",
    "ReplayReport",
    "REPLAY_SCHEMA",
    "replay",
    "RESULT_ENTRY_SCHEMA",
    "ResultStore",
    "RetryPolicy",
    "run_campaign_memoized",
    "run_loadtest",
    "serve",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceHandle",
    "ServiceLifecycle",
    "start_in_thread",
    "STATS_SCHEMA",
    "TenantPolicy",
    "TokenBucket",
    "Unavailable",
]
