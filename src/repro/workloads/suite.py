"""A UnixBench-flavoured workload suite for mitigation-overhead runs.

The paper measures SuppressBPOnNonBr's cost with UnixBench (§6.3: 0.69 %
single-core, 0.42 % multi-core, geometric mean of 5 runs per test).
This suite mirrors the mix: ALU-heavy loops (dhrystone/whetstone
stand-ins), syscall and "pipe" style kernel-entry pressure, a branchy
shell-like dispatcher and a memory-copy loop — all executing on the
simulated CPU, where the mitigation's frontend cost accrues naturally.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass
from typing import ClassVar

from ..isa import Assembler, Cond, Reg
from ..kernel import (DEFAULT_MITIGATIONS, Machine, MachineSpec,
                      MitigationConfig, SYS_GETPID, SYS_NOISE)
from ..pipeline import Microarch
from ..runner import JobContext, JobSpec, run_campaign

_CODE_BASE = 0x0000_0000_0300_0000
_DATA_BASE = 0x0000_0000_0380_0000


def _run(machine: Machine, asm: Assembler) -> None:
    image = asm.image()
    machine.load_user_image(image)
    machine.run_user(image.segments[0].base, max_instructions=500_000)


def wl_dhrystone(machine: Machine) -> None:
    """Integer ALU loop."""
    asm = Assembler(_CODE_BASE)
    asm.mov_ri(Reg.RCX, 400)
    asm.mov_ri(Reg.RAX, 0)
    asm.label("loop")
    asm.add_ri(Reg.RAX, 7)
    asm.xor_rr(Reg.RBX, Reg.RAX)
    asm.shl_ri(Reg.RBX, 1)
    asm.sub_ri(Reg.RCX, 1)
    asm.jcc(Cond.NE, "loop")
    asm.hlt()
    _run(machine, asm)


def wl_whetstone(machine: Machine) -> None:
    """Shift/or chains (floating point stands in as integer mix)."""
    asm = Assembler(_CODE_BASE + 0x10000)
    asm.mov_ri(Reg.RCX, 300)
    asm.mov_ri(Reg.RDX, 0x1234_5678)
    asm.label("loop")
    asm.mov_rr(Reg.RAX, Reg.RDX)
    asm.shr_ri(Reg.RAX, 3)
    asm.or_rr(Reg.RDX, Reg.RAX)
    asm.add_rr(Reg.RDX, Reg.RAX)
    asm.sub_ri(Reg.RCX, 1)
    asm.jcc(Cond.NE, "loop")
    asm.hlt()
    _run(machine, asm)


def wl_syscall(machine: Machine) -> None:
    """getpid() in a loop (UnixBench syscall test)."""
    for _ in range(60):
        machine.syscall(SYS_GETPID)


def wl_pipe(machine: Machine) -> None:
    """Kernel-entry pressure with a branchy kernel body."""
    for _ in range(60):
        machine.syscall(SYS_NOISE)


def wl_shell(machine: Machine) -> None:
    """Branchy user code with calls (shell-script dispatch pattern)."""
    asm = Assembler(_CODE_BASE + 0x20000)
    asm.mov_ri(Reg.RCX, 120)
    asm.label("loop")
    asm.mov_rr(Reg.RAX, Reg.RCX)
    asm.and_ri(Reg.RAX, 3)
    asm.cmp_ri(Reg.RAX, 1)
    asm.jcc(Cond.E, "case1")
    asm.cmp_ri(Reg.RAX, 2)
    asm.jcc(Cond.E, "case2")
    asm.call("work")
    asm.jmp("next")
    asm.label("case1")
    asm.call("work")
    asm.jmp("next")
    asm.label("case2")
    asm.call("work")
    asm.label("next")
    asm.sub_ri(Reg.RCX, 1)
    asm.jcc(Cond.NE, "loop")
    asm.hlt()
    asm.label("work")
    asm.add_ri(Reg.RDX, 1)
    asm.ret()
    _run(machine, asm)


def wl_memcpy(machine: Machine) -> None:
    """Load/store streaming loop."""
    machine.map_user(_DATA_BASE, 2 * 4096)
    asm = Assembler(_CODE_BASE + 0x30000)
    asm.mov_ri(Reg.RSI, _DATA_BASE)
    asm.mov_ri(Reg.RDI, _DATA_BASE + 4096)
    asm.mov_ri(Reg.RCX, 120)
    asm.label("loop")
    asm.load(Reg.RAX, Reg.RSI)
    asm.store(Reg.RDI, 0, Reg.RAX)
    asm.add_ri(Reg.RSI, 8)
    asm.add_ri(Reg.RDI, 8)
    asm.sub_ri(Reg.RCX, 1)
    asm.jcc(Cond.NE, "loop")
    asm.hlt()
    _run(machine, asm)


WORKLOADS: dict[str, Callable[[Machine], None]] = {
    "dhrystone": wl_dhrystone,
    "whetstone": wl_whetstone,
    "syscall": wl_syscall,
    "pipe": wl_pipe,
    "shell": wl_shell,
    "memcpy": wl_memcpy,
}


@dataclass
class SuiteResult:
    """Cycle counts per workload for one configuration."""

    cycles: dict[str, int]

    def geometric_mean(self) -> float:
        values = list(self.cycles.values())
        return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True)
class SuiteExperiment:
    """The §6.3 campaign: one job per workload.

    Every run inside a job boots from the same :class:`MachineSpec`
    with ``rng_seed = seed + run`` — exactly the machines the serial
    suite built — so cycle counts match the pre-runner API at any
    ``--jobs``.
    """

    name: ClassVar[str] = "suite"

    machine: MachineSpec
    runs: int = 5
    seed: int = 0

    def campaign_config(self) -> dict:
        return {"uarch": self.machine.uarch, "runs": self.runs,
                "seed": self.seed,
                "workloads": sorted(WORKLOADS)}

    def job_specs(self) -> list[JobSpec]:
        return [JobSpec.make(self.name, (name,), self.seed,
                             machine=self.machine, workload=name)
                for name in WORKLOADS]

    def run_one(self, spec: JobSpec, ctx: JobContext) -> tuple[str, int]:
        workload = WORKLOADS[spec.param("workload")]
        cycles = 0
        for r in range(self.runs):
            machine = ctx.boot(
                spec.machine.with_(rng_seed=self.seed + r))
            before = machine.cycles
            workload(machine)
            cycles += machine.cycles - before
        return spec.key[0], cycles // self.runs

    def reduce(self, results) -> SuiteResult:
        return SuiteResult(cycles=dict(r.value for r in results if r.ok))


def run_suite(uarch: Microarch, *,
              mitigations: MitigationConfig = DEFAULT_MITIGATIONS,
              runs: int = 5, sibling_load: bool = False,
              seed: int = 0, jobs: int = 1) -> SuiteResult:
    """Run each workload *runs* times; per-workload cycles = mean.

    ``jobs`` shards the workloads across worker processes; cycle counts
    are identical at any value.
    """
    experiment = SuiteExperiment(
        machine=MachineSpec(uarch=uarch.name, mitigations=mitigations,
                            rng_seed=seed, sibling_load=sibling_load),
        runs=runs, seed=seed)
    return run_campaign(experiment, jobs=jobs).raise_on_failure().value


def mitigation_overhead(uarch: Microarch, *, runs: int = 5,
                        sibling_load: bool = False,
                        jobs: int = 1) -> float:
    """SuppressBPOnNonBr overhead as a geometric-mean ratio - 1."""
    base = run_suite(uarch, runs=runs, sibling_load=sibling_load,
                     jobs=jobs)
    hardened = run_suite(
        uarch, runs=runs, sibling_load=sibling_load, jobs=jobs,
        mitigations=MitigationConfig(suppress_bp_on_non_br=True))
    return hardened.geometric_mean() / base.geometric_mean() - 1.0
