"""UnixBench-flavoured workload suite for mitigation-overhead studies."""

from .suite import (SuiteExperiment, SuiteResult, WORKLOADS,
                    mitigation_overhead, run_suite)

__all__ = ["SuiteExperiment", "SuiteResult", "WORKLOADS",
           "mitigation_overhead", "run_suite"]
