"""UnixBench-flavoured workload suite for mitigation-overhead studies."""

from .suite import (SuiteResult, WORKLOADS, mitigation_overhead, run_suite)

__all__ = ["SuiteResult", "WORKLOADS", "mitigation_overhead", "run_suite"]
