"""Reducing per-job telemetry into one campaign manifest.

Each job — wherever it ran — yields a small, self-contained
``phantom.run-manifest/1`` document; :func:`merge_job_manifests` folds
them into a single schema-valid campaign manifest:

* one phase per job (name = the job's label, cycles = the simulated
  cycles of every machine the job booted);
* metric counters and PMC values summed, gauges maxed, histograms
  combined exactly (see :mod:`repro.telemetry.merge`);
* totals = summed simulated work; wall time = the campaign's real
  elapsed time (which is where ``--jobs`` shows up).

:func:`manifest_fingerprint` strips the wall-clock/timestamp fields so
tests can assert that manifests are identical at any worker count.
"""

from __future__ import annotations

import copy
import time

from ..telemetry.manifest import MANIFEST_SCHEMA
from ..telemetry.merge import merge_metric_snapshots, merge_pmc
from .spec import JobSpec

_EMPTY_METRICS = {"counters": {}, "gauges": {}, "histograms": {},
                  "base_labels": {}}


def job_manifest(spec: JobSpec, ctx, metrics: dict, *, status: str,
                 wall_time_s: float, **outcome_extra) -> dict:
    """The manifest document for one executed job."""
    config = {"experiment": spec.experiment, "key": list(spec.key),
              "seed": spec.seed}
    if spec.machine is not None:
        config.update(spec.machine.describe())
    config.update(dict(spec.params))
    outcome = {"status": status}
    outcome.update(outcome_extra)
    return {
        "schema": MANIFEST_SCHEMA,
        "command": f"{spec.experiment}-job",
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "config": config,
        "phases": [{"name": spec.label, "cycles": ctx.cycles,
                    "wall_time_s": wall_time_s}],
        "metrics": metrics,
        "pmc": ctx.pmc_snapshot(),
        "outcome": outcome,
        "totals": {"cycles": ctx.cycles, "wall_time_s": wall_time_s,
                   "simulated_seconds": ctx.simulated_seconds},
    }


def merge_job_manifests(command: str, config: dict, job_results,
                        *, wall_time_s: float) -> dict:
    """Fold every job's manifest into one campaign manifest."""
    phases: list[dict] = []
    metrics = copy.deepcopy(_EMPTY_METRICS)
    pmc: dict = {}
    cycles = 0
    simulated = 0.0
    failures = []
    for result in job_results:
        doc = result.manifest
        if not doc:
            continue
        phases.extend(doc.get("phases", ()))
        metrics = merge_metric_snapshots(metrics, doc.get("metrics", {}))
        pmc = merge_pmc(pmc, doc.get("pmc", {}))
        totals = doc.get("totals", {})
        cycles += totals.get("cycles", 0)
        simulated += totals.get("simulated_seconds", 0.0)
        if not result.ok:
            failures.append({"job": result.spec.label,
                             "error_kind": result.error_kind,
                             "error": result.error})
    ok = sum(result.ok for result in job_results)
    if not job_results or ok == len(job_results):
        status = "success"
    elif ok:
        status = "partial"
    else:
        status = "failure"
    outcome = {"status": status, "jobs_total": len(job_results),
               "jobs_failed": len(job_results) - ok}
    if failures:
        outcome["failures"] = failures
    # Jobs that needed more than one attempt keep their error history
    # in the campaign record (a retried success used to erase it).
    retried = [{"job": result.spec.label, "attempts": result.attempts,
                "history": list(getattr(result, "attempt_history", ()))}
               for result in job_results if result.attempts > 1]
    if retried:
        outcome["retried"] = retried
    return {
        "schema": MANIFEST_SCHEMA,
        "command": command,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "config": dict(config),
        "phases": phases,
        "metrics": metrics,
        "pmc": pmc,
        "outcome": outcome,
        "totals": {"cycles": cycles, "wall_time_s": wall_time_s,
                   "simulated_seconds": simulated},
    }


def manifest_fingerprint(doc: dict) -> dict:
    """*doc* minus wall-clock, timestamp, worker-count and recovery
    fields — equal fingerprints mean two campaigns did byte-identical
    simulated work (the whole point of the deterministic
    decomposition: ``--jobs`` is an execution detail, not part of the
    result).  Retry/resume/supervision lineage is stripped for the
    same reason: a campaign that lost workers, was interrupted and
    resumed must fingerprint equal to one that ran clean.

    Serving-plane metric families (``service.*``, ``client.*``) are
    stripped too: the per-job metrics scope is the process-global
    registry, so a campaign executing *inside* a ``repro serve``
    process absorbs whatever the HTTP plane increments concurrently
    (status polls, idempotent replays) — where the campaign ran, not
    what it computed."""
    out = copy.deepcopy(doc)
    out.pop("created_at", None)
    out.get("config", {}).pop("jobs", None)
    outcome = out.get("outcome", {})
    for execution_detail in ("jobs", "attempts", "attempt_history",
                             "retried", "resume", "supervision",
                             "spans", "progress", "elapsed_seconds"):
        outcome.pop(execution_detail, None)
    out.get("totals", {}).pop("wall_time_s", None)
    for phase in out.get("phases", ()):
        phase.pop("wall_time_s", None)
    for family in out.get("metrics", {}).values():
        if isinstance(family, dict):
            for name in [key for key in family
                         if str(key).startswith(("service.", "client."))]:
                family.pop(name)
    return out
