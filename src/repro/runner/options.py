"""One frozen options record for everything a campaign run shares.

Six CLI subcommands (``matrix``, ``kaslr``, ``physmap``, ``leak``,
``covert``, ``fuzz``) take the same execution knobs — worker count,
checkpoint/resume, span capture, progress streaming, result archiving —
and until this module each re-declared and re-plumbed them by hand.
:class:`CampaignOptions` is the single source of truth: the CLI builds
one from parsed arguments, the campaign service deserializes one from a
``phantom.job-request/1`` document, and both hand it to
:func:`repro.runner.run_campaign` through :meth:`campaign_kwargs`.

The record is frozen and JSON-round-trippable (:meth:`to_dict` /
:meth:`from_dict`) so it can ride inside request documents unchanged.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path


@dataclass(frozen=True)
class CampaignOptions:
    """Execution options shared by every campaign entry point.

    ``jobs=0`` means one worker per available CPU (the
    :func:`repro.runner.resolve_jobs` convention); results are
    identical at any value.  ``resume``/``checkpoint_every`` drive the
    resilience journal (see ``docs/resilience.md``); ``spans``/
    ``progress`` the observability layer (``docs/observability.md``);
    ``results_dir`` both archives the run manifest and hosts the
    per-command checkpoint journal.
    """

    jobs: int = 0
    resume: str | None = None
    checkpoint_every: int = 1
    spans: str | None = None
    progress: str | None = None
    results_dir: str | None = None

    # -- argparse plumbing -------------------------------------------------

    @staticmethod
    def add_arguments(parser, *, jobs_default: int = 0) -> None:
        """Register ``--jobs``/``--resume``/``--checkpoint-every`` on
        *parser* (the telemetry flags — ``--spans``, ``--progress``,
        ``--results-dir`` — are registered with the output flags, which
        non-campaign commands also take).  ``jobs_default`` lets a
        command keep a serial default (``fuzz`` uses 1) without
        re-declaring the flag."""
        default_note = "one per available CPU" if jobs_default == 0 \
            else "serial"
        parser.add_argument("--jobs", type=int, default=jobs_default,
                            help=f"worker processes for the campaign "
                                 f"(default {jobs_default} = "
                                 f"{default_note}; results are identical "
                                 f"at any value)")
        parser.add_argument("--resume", metavar="CHECKPOINT", default=None,
                            help="resume from a checkpoint journal: jobs "
                                 "already recorded there are skipped, and "
                                 "the merged manifest is identical to an "
                                 "uninterrupted run")
        parser.add_argument("--checkpoint-every", type=int, default=1,
                            metavar="N",
                            help="flush the checkpoint journal every N "
                                 "completed jobs (default 1 = each job "
                                 "durably, as it finishes)")

    @classmethod
    def from_args(cls, args) -> "CampaignOptions":
        """Collect whichever of the six options *args* carries."""
        values = {}
        for spec in fields(cls):
            if hasattr(args, spec.name):
                values[spec.name] = getattr(args, spec.name)
        return cls(**values)

    # -- serialization (the service submit path) ----------------------------

    def to_dict(self) -> dict:
        """JSON-ready dict with defaulted fields dropped."""
        defaults = CampaignOptions()
        return {spec.name: getattr(self, spec.name) for spec in fields(self)
                if getattr(self, spec.name) != getattr(defaults, spec.name)}

    @classmethod
    def from_dict(cls, doc: dict) -> "CampaignOptions":
        """Inverse of :meth:`to_dict`; unknown keys are rejected so a
        typo in a request document fails loudly."""
        known = {spec.name for spec in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(
                f"unknown campaign option(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})")
        return cls(**doc)

    def for_service(self) -> "CampaignOptions":
        """The subset a multi-tenant service honours from a client:
        worker count and flush cadence.  Paths (resume journal, span
        dir, progress sink, results dir) are server resources a remote
        tenant must not aim at the server's filesystem."""
        return replace(self, resume=None, spans=None, progress=None,
                       results_dir=None)

    # -- run_campaign plumbing ----------------------------------------------

    def checkpoint_path(self, command: str) -> Path | None:
        """Where this run journals finished jobs, or ``None``.

        With ``results_dir`` the run journals to
        ``DIR/<command>-checkpoint.jsonl`` (re-journaling any
        ``resume`` inheritance so the new journal is self-contained);
        ``resume`` without a results dir keeps appending to the resume
        journal itself.
        """
        if self.results_dir:
            return Path(self.results_dir) / f"{command}-checkpoint.jsonl"
        if self.resume:
            return Path(self.resume)
        return None

    def campaign_kwargs(self, command: str, *, progress=None) -> dict:
        """The checkpoint/resume/progress keyword arguments for one
        :func:`repro.runner.run_campaign` call.  Multi-campaign
        commands (``physmap``, ``leak``) reuse one kwargs dict — spec
        fingerprints keep their journal records apart."""
        kwargs: dict = {}
        checkpoint = self.checkpoint_path(command)
        if checkpoint is not None:
            kwargs["checkpoint"] = checkpoint
            kwargs["checkpoint_every"] = self.checkpoint_every
        if self.resume:
            kwargs["resume"] = self.resume
        if progress is not None:
            kwargs["progress"] = progress
        return kwargs

    def describe(self) -> dict:
        """Full field dump (manifest/config use — includes defaults)."""
        return asdict(self)
