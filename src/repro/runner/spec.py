"""Declarative job specs and deterministic per-job seed derivation.

A campaign (a Table 1 sweep, a KASLR break, a covert-channel run) is a
set of :class:`JobSpec`\\ s — plain, frozen, picklable records — that
the executor can run in any order on any number of workers.  Two rules
make results independent of ``--jobs``:

1. **Decomposition is a function of the campaign, never of the worker
   count.**  Experiments shard work into fixed-size chunks (bits,
   candidates, cells); ``--jobs`` only decides how many chunks run at
   once.
2. **Randomness is derived, not shared.**  Each job's seed comes from
   :func:`derive_seed` over the campaign seed and the job's stable key,
   so a job sees the same random stream whether it runs first on one
   worker or last on sixteen.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:   # pragma: no cover
    from ..kernel import MachineSpec
    from ..telemetry.spans import TraceContext


def derive_seed(campaign_seed: int, job_key) -> int:
    """Deterministic 63-bit seed for one job of a campaign.

    Uses SHA-256 (not ``hash()``, which is salted per process) so the
    derivation is stable across processes, platforms, and Python
    versions — the byte-identical-at-any-``--jobs`` guarantee rests on
    this.  *job_key* may be any value with a stable ``repr``; by
    convention experiments use tuples of strings and ints.
    """
    blob = f"{campaign_seed}|{job_key!r}".encode()
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class JobSpec:
    """One schedulable unit of a campaign.

    ``key`` identifies the job within its campaign (and orders the
    reduce step); ``seed`` is the job's derived random seed;
    ``machine`` describes the fresh machine the job boots, if any;
    ``params`` carries experiment-specific scalars as a sorted tuple of
    pairs (kept hashable so specs stay frozen); ``trace`` is the
    propagated :class:`~repro.telemetry.TraceContext` when the campaign
    records spans — an execution detail, excluded from checkpoint
    fingerprints and manifests so traced and untraced runs stay
    byte-identical.
    """

    experiment: str
    key: tuple
    seed: int
    machine: "MachineSpec | None" = None
    params: tuple[tuple[str, Any], ...] = ()
    trace: "TraceContext | None" = None

    @classmethod
    def make(cls, experiment: str, key: tuple, seed: int,
             machine: "MachineSpec | None" = None, **params) -> "JobSpec":
        return cls(experiment=experiment, key=tuple(key), seed=seed,
                   machine=machine,
                   params=tuple(sorted(params.items())))

    def param(self, name: str, default=None):
        for key, value in self.params:
            if key == name:
                return value
        return default

    @property
    def label(self) -> str:
        parts = "/".join(str(part) for part in self.key)
        return f"{self.experiment}[{parts}]"
