"""The campaign executor: shard jobs across worker processes.

:func:`run_campaign` takes any object satisfying the
:class:`repro.core.experiment.Experiment` protocol, expands its
:meth:`job_specs`, executes each spec — in-process for ``jobs=1``, on a
``ProcessPoolExecutor`` otherwise — and reduces the ordered results.

Failure semantics: a job that raises or exceeds its timeout becomes a
failed :class:`JobResult` (error captured, campaign continues); the
merged campaign manifest records it and the overall status degrades to
``partial`` (or ``failure`` when nothing succeeded).  Compatibility
wrappers that predate the runner (``run_matrix`` …) call
:meth:`CampaignResult.raise_on_failure` to restore raise-on-error
behaviour.

Every job runs in its own metrics scope (the worker's registry is
reset around it) and returns a small ``phantom.run-manifest/1``
document; the reducer merges those into one campaign manifest.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..errors import ReproError
from ..telemetry import metrics as _metrics
from .reduce import job_manifest, merge_job_manifests
from .spec import JobSpec


class CampaignError(ReproError):
    """Raised by strict wrappers when a campaign had failed jobs."""


class JobTimeout(ReproError):
    """A job exceeded its per-job timeout."""


def resolve_jobs(jobs: int | None) -> int:
    """``--jobs`` semantics: ``None``/``0`` means one worker per CPU."""
    if not jobs:
        return os.cpu_count() or 1
    return max(1, int(jobs))


class JobContext:
    """Per-job runtime handed to ``Experiment.run_one``.

    Booting machines through the context lets the executor account
    simulated cycles and PMC totals for the job manifest without the
    experiment threading them back by hand.
    """

    def __init__(self) -> None:
        self.machines: list = []

    def boot(self, spec):
        """Boot *spec* (a :class:`repro.kernel.MachineSpec`) and track
        the machine for cycle/PMC accounting."""
        from ..kernel import Machine

        return self.track(Machine.from_spec(spec))

    def track(self, machine):
        self.machines.append(machine)
        return machine

    @property
    def cycles(self) -> int:
        return sum(m.cycles for m in self.machines)

    @property
    def simulated_seconds(self) -> float:
        return sum(m.seconds() for m in self.machines)

    def pmc_snapshot(self) -> dict:
        merged: dict[str, int] = {}
        for machine in self.machines:
            for name, value in machine.cpu.pmc.snapshot().items():
                merged[name] = merged.get(name, 0) + value
        return merged


@dataclass
class JobResult:
    """Outcome of one job: a value, or a captured failure."""

    spec: JobSpec
    value: Any = None
    error: str | None = None
    error_kind: str | None = None          # "exception" | "timeout"
    attempts: int = 1
    wall_time_s: float = 0.0
    manifest: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class CampaignResult:
    """Everything one campaign produced, in job-spec order."""

    experiment: str
    jobs: int
    results: list[JobResult]
    value: Any
    manifest: dict

    @property
    def failures(self) -> list[JobResult]:
        return [r for r in self.results if not r.ok]

    def raise_on_failure(self) -> "CampaignResult":
        if self.failures:
            summary = "; ".join(f"{r.spec.label}: {r.error}"
                                for r in self.failures[:3])
            raise CampaignError(
                f"{len(self.failures)}/{len(self.results)} jobs failed "
                f"in campaign {self.experiment!r}: {summary}")
        return self


class _JobAlarm:
    """Per-job wall-clock timeout via ``SIGALRM`` (worker processes run
    jobs on their main thread, where the signal can be delivered; off
    the main thread the timeout degrades to unenforced).

    Exiting restores the full prior alarm state: the previous handler
    *and* whatever was left of a previously armed ``ITIMER_REAL``
    (minus the time spent inside this context), so nesting — or running
    under host code that uses the same timer — never silently cancels
    an outer deadline.  A zero/None timeout arms nothing and therefore
    disturbs nothing.
    """

    #: Re-arm delay used when an outer alarm expired while this one
    #: held the timer: fire it as soon as possible (0 would disarm).
    _IMMEDIATE = 1e-6

    def __init__(self, timeout_s: float | None) -> None:
        self.armed = (timeout_s is not None and timeout_s > 0
                      and hasattr(signal, "SIGALRM")
                      and threading.current_thread()
                      is threading.main_thread())
        self.timeout_s = timeout_s

    def __enter__(self) -> "_JobAlarm":
        if self.armed:
            def _on_alarm(signum, frame):
                raise JobTimeout(f"job exceeded {self.timeout_s}s")

            self._previous = signal.signal(signal.SIGALRM, _on_alarm)
            self._entered_at = time.monotonic()
            self._prev_delay, self._prev_interval = signal.setitimer(
                signal.ITIMER_REAL, self.timeout_s)
        return self

    def __exit__(self, *exc) -> bool:
        if self.armed:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, self._previous)
            if self._prev_delay > 0:
                elapsed = time.monotonic() - self._entered_at
                remaining = self._prev_delay - elapsed
                signal.setitimer(signal.ITIMER_REAL,
                                 max(remaining, self._IMMEDIATE),
                                 self._prev_interval)
        return False


def execute_job(experiment, spec: JobSpec, *, timeout_s: float | None = None,
                retries: int = 0) -> JobResult:
    """Run one job to a :class:`JobResult` — never raises.

    Must stay a module-level function: it is the callable the process
    pool pickles.
    """
    registry = _metrics.REGISTRY
    wall_start = time.perf_counter()
    errors: list[tuple[str, str]] = []
    ctx = JobContext()
    for attempt in range(retries + 1):
        ctx = JobContext()
        registry.reset()
        registry.enable()
        try:
            with _JobAlarm(timeout_s):
                value = experiment.run_one(spec, ctx)
        except JobTimeout as exc:
            errors.append(("timeout", str(exc)))
        except Exception as exc:   # noqa: BLE001 — capture, don't abort
            errors.append(("exception", f"{type(exc).__name__}: {exc}"))
        else:
            wall = time.perf_counter() - wall_start
            manifest = job_manifest(spec, ctx, registry.snapshot(),
                                    status="success", wall_time_s=wall)
            registry.disable()
            return JobResult(spec=spec, value=value, attempts=attempt + 1,
                             wall_time_s=wall, manifest=manifest)
        registry.disable()
    kind, message = errors[-1]
    wall = time.perf_counter() - wall_start
    manifest = job_manifest(spec, ctx, registry.snapshot(),
                            status="failure", wall_time_s=wall,
                            error=message, error_kind=kind)
    return JobResult(spec=spec, error=message, error_kind=kind,
                     attempts=len(errors), wall_time_s=wall,
                     manifest=manifest)


def run_campaign(experiment, *, jobs: int | None = None,
                 timeout_s: float | None = None, retries: int = 0,
                 config: dict | None = None) -> CampaignResult:
    """Execute every job of *experiment* and reduce the results.

    ``jobs=None``/``0`` uses one worker per CPU core; ``jobs=1`` (or a
    single-job campaign) runs in-process with no pool overhead.  The
    result order always follows ``experiment.job_specs()`` order, so
    reduction is deterministic at any worker count.
    """
    specs: Sequence[JobSpec] = list(experiment.job_specs())
    n_workers = resolve_jobs(jobs)
    wall_start = time.perf_counter()
    if n_workers <= 1 or len(specs) <= 1:
        results = [execute_job(experiment, spec, timeout_s=timeout_s,
                               retries=retries) for spec in specs]
    else:
        with ProcessPoolExecutor(
                max_workers=min(n_workers, len(specs))) as pool:
            futures = [pool.submit(execute_job, experiment, spec,
                                   timeout_s=timeout_s, retries=retries)
                       for spec in specs]
            results = [future.result() for future in futures]
    value = experiment.reduce(results)
    name = getattr(experiment, "name", type(experiment).__name__)
    campaign_config = {"experiment": name, "jobs": n_workers,
                       "job_count": len(specs)}
    campaign_config.update(getattr(experiment, "campaign_config",
                                   dict)() or {})
    campaign_config.update(config or {})
    manifest = merge_job_manifests(
        name, campaign_config, results,
        wall_time_s=time.perf_counter() - wall_start)
    return CampaignResult(experiment=name, jobs=n_workers,
                          results=results, value=value, manifest=manifest)
