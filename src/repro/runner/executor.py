"""The campaign executor: shard jobs across worker processes.

:func:`run_campaign` takes any object satisfying the
:class:`repro.core.experiment.Experiment` protocol, expands its
:meth:`job_specs`, executes each spec — in-process for ``jobs=1``, on a
``ProcessPoolExecutor`` otherwise — and reduces the ordered results.

Failure semantics: a job that raises or exceeds its timeout becomes a
failed :class:`JobResult` (error captured, campaign continues); the
merged campaign manifest records it and the overall status degrades to
``partial`` (or ``failure`` when nothing succeeded).  Compatibility
wrappers that predate the runner (``run_matrix`` …) call
:meth:`CampaignResult.raise_on_failure` to restore raise-on-error
behaviour.

Beyond per-job failures, campaigns survive *infrastructure* failures
(see :mod:`repro.resilience`): pooled execution runs under a
supervisor that respawns broken pools and requeues in-flight jobs,
``checkpoint=`` journals each finished job to an append-only JSONL
file, and ``resume=`` skips jobs already journaled there — producing a
campaign manifest fingerprint-identical to an uninterrupted run.  A
``KeyboardInterrupt`` while a checkpoint is active flushes the journal
and surfaces as :class:`CampaignInterrupted` with a resume hint.

Every job runs in its own metrics scope (the worker's registry is
reset around it) and returns a small ``phantom.run-manifest/1``
document; the reducer merges those into one campaign manifest.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from ..errors import ReproError
from ..telemetry import metrics as _metrics
from ..telemetry.spans import SPANS
from .reduce import job_manifest, merge_job_manifests
from .spec import JobSpec


class CampaignError(ReproError):
    """Raised by strict wrappers when a campaign had failed jobs."""


class CampaignInterrupted(ReproError):
    """A campaign was interrupted with its checkpoint journal intact.

    Raised in place of ``KeyboardInterrupt`` when ``checkpoint=`` is
    active: the journal has been flushed, so re-running with
    ``resume=checkpoint`` picks up where the interrupt landed.
    """

    def __init__(self, message: str, *, done: int = 0, total: int = 0,
                 checkpoint=None) -> None:
        super().__init__(message)
        self.done = done
        self.total = total
        self.checkpoint = checkpoint


class JobTimeout(ReproError):
    """A job exceeded its per-job timeout."""


@dataclass(frozen=True)
class CheckpointOps:
    """The checkpoint primitives the campaign loop needs, as one typed
    object.

    ``run_campaign`` imports :mod:`repro.resilience.checkpoint` lazily
    (the resilience package imports the runner, so a module-level
    import would cycle) and hands the pieces to :func:`_run_campaign`.
    They used to travel as a positional 3-tuple unpacked by order — a
    silent-swap hazard; named fields make any mismatch an
    ``AttributeError`` at the call site instead.
    """

    #: :class:`repro.resilience.CheckpointWriter` (class, not instance).
    writer_cls: type
    #: ``load_checkpoint(path) -> {fingerprint: CheckpointRecord}``.
    load: Callable[..., Mapping]
    #: ``spec_fingerprint(spec) -> str``.
    fingerprint: Callable[[JobSpec], str]

    @classmethod
    def default(cls) -> "CheckpointOps":
        from ..resilience.checkpoint import (CheckpointWriter,
                                             load_checkpoint,
                                             spec_fingerprint)

        return cls(writer_cls=CheckpointWriter, load=load_checkpoint,
                   fingerprint=spec_fingerprint)


def resolve_jobs(jobs: int | None) -> int:
    """``--jobs`` semantics: ``None``/``0`` means one worker per
    *available* CPU — the scheduling affinity mask when the platform
    exposes it (a cgroup-limited CI container may see 2 of 64 cores;
    oversubscribing the other 62 just thrashes), falling back to the
    raw core count elsewhere."""
    if not jobs:
        if hasattr(os, "sched_getaffinity"):
            try:
                return max(1, len(os.sched_getaffinity(0)))
            except OSError:  # pragma: no cover — exotic platforms
                pass
        return os.cpu_count() or 1
    return max(1, int(jobs))


class JobContext:
    """Per-job runtime handed to ``Experiment.run_one``.

    Booting machines through the context lets the executor account
    simulated cycles and PMC totals for the job manifest without the
    experiment threading them back by hand.
    """

    def __init__(self) -> None:
        self.machines: list = []

    def boot(self, spec):
        """Boot *spec* (a :class:`repro.kernel.MachineSpec`) and track
        the machine for cycle/PMC accounting."""
        from ..kernel import Machine

        with SPANS.span("boot", arch=getattr(spec, "name", "")):
            return self.track(Machine.from_spec(spec))

    def span(self, name: str, **attrs):
        """Bracket an experiment phase (``warm``, ``measure:…``) with a
        trace span; a no-op context while tracing is disabled."""
        return SPANS.span(name, **attrs)

    def track(self, machine):
        self.machines.append(machine)
        return machine

    @property
    def cycles(self) -> int:
        return sum(m.cycles for m in self.machines)

    @property
    def simulated_seconds(self) -> float:
        return sum(m.seconds() for m in self.machines)

    def pmc_snapshot(self) -> dict:
        merged: dict[str, int] = {}
        for machine in self.machines:
            for name, value in machine.cpu.pmc.snapshot().items():
                merged[name] = merged.get(name, 0) + value
        return merged


@dataclass
class JobResult:
    """Outcome of one job: a value, or a captured failure."""

    spec: JobSpec
    value: Any = None
    error: str | None = None
    error_kind: str | None = None   # "exception" | "timeout" |
    #                                 "worker-lost" | "hung"
    attempts: int = 1
    #: Failed attempts that preceded the final outcome, oldest first:
    #: ``{"attempt": n, "error_kind": ..., "error": ...}`` — so a
    #: retried success no longer erases its earlier failures from the
    #: campaign record.
    attempt_history: list = field(default_factory=list)
    wall_time_s: float = 0.0
    manifest: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class CampaignResult:
    """Everything one campaign produced, in job-spec order."""

    experiment: str
    jobs: int
    results: list[JobResult]
    value: Any
    manifest: dict

    @property
    def failures(self) -> list[JobResult]:
        return [r for r in self.results if not r.ok]

    def raise_on_failure(self) -> "CampaignResult":
        if self.failures:
            summary = "; ".join(f"{r.spec.label}: {r.error}"
                                for r in self.failures[:3])
            raise CampaignError(
                f"{len(self.failures)}/{len(self.results)} jobs failed "
                f"in campaign {self.experiment!r}: {summary}")
        return self


#: One warning per process when a requested timeout cannot be armed.
_UNENFORCED_WARNED = False


class _JobAlarm:
    """Per-job wall-clock timeout via ``SIGALRM`` (worker processes run
    jobs on their main thread, where the signal can be delivered; off
    the main thread — or without ``SIGALRM`` at all — the timeout
    degrades to unenforced, which is *counted*
    (``runner.timeout_unenforced``) and warned about once rather than
    silently running unbounded).

    Exiting restores the full prior alarm state: the previous handler
    *and* whatever was left of a previously armed ``ITIMER_REAL``
    (minus the time spent inside this context), so nesting — or running
    under host code that uses the same timer — never silently cancels
    an outer deadline.  A zero/None timeout arms nothing and therefore
    disturbs nothing.
    """

    #: Re-arm delay used when an outer alarm expired while this one
    #: held the timer: fire it as soon as possible (0 would disarm).
    _IMMEDIATE = 1e-6

    def __init__(self, timeout_s: float | None) -> None:
        wanted = timeout_s is not None and timeout_s > 0
        can_arm = (hasattr(signal, "SIGALRM")
                   and threading.current_thread()
                   is threading.main_thread())
        self.armed = wanted and can_arm
        self.unenforced = wanted and not can_arm
        self.timeout_s = timeout_s

    def __enter__(self) -> "_JobAlarm":
        if self.unenforced:
            global _UNENFORCED_WARNED
            _metrics.REGISTRY.counter("runner.timeout_unenforced").inc()
            if not _UNENFORCED_WARNED:
                _UNENFORCED_WARNED = True
                warnings.warn(
                    f"job timeout of {self.timeout_s}s cannot be "
                    "enforced here (SIGALRM unavailable or not on the "
                    "main thread); the job runs unbounded — rely on "
                    "the campaign watchdog instead",
                    RuntimeWarning, stacklevel=3)
        if self.armed:
            def _on_alarm(signum, frame):
                raise JobTimeout(f"job exceeded {self.timeout_s}s")

            self._previous = signal.signal(signal.SIGALRM, _on_alarm)
            self._entered_at = time.monotonic()
            self._prev_delay, self._prev_interval = signal.setitimer(
                signal.ITIMER_REAL, self.timeout_s)
        return self

    def __exit__(self, *exc) -> bool:
        if self.armed:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, self._previous)
            if self._prev_delay > 0:
                elapsed = time.monotonic() - self._entered_at
                remaining = self._prev_delay - elapsed
                signal.setitimer(signal.ITIMER_REAL,
                                 max(remaining, self._IMMEDIATE),
                                 self._prev_interval)
        return False


def _attempt_history(errors: list[tuple[str, str]]) -> list[dict]:
    """Error tuples → manifest-ready per-attempt records."""
    return [{"attempt": number, "error_kind": kind, "error": message}
            for number, (kind, message) in enumerate(errors, start=1)]


def execute_job(experiment, spec: JobSpec, *, timeout_s: float | None = None,
                retries: int = 0) -> JobResult:
    """Run one job to a :class:`JobResult` — never raises.

    Must stay a module-level function: it is the callable the process
    pool pickles.
    """
    registry = _metrics.REGISTRY
    wall_start = time.perf_counter()
    errors: list[tuple[str, str]] = []
    ctx = JobContext()
    trace_ctx = spec.trace
    if trace_ctx is not None:
        SPANS.adopt(trace_ctx)
    job_parent = trace_ctx.parent_span_id if trace_ctx is not None else ""
    for attempt in range(retries + 1):
        ctx = JobContext()
        registry.reset()
        registry.enable()
        try:
            with SPANS.span(spec.label, parent_id=job_parent, seq=attempt,
                            attempt=attempt):
                with _JobAlarm(timeout_s):
                    value = experiment.run_one(spec, ctx)
        except JobTimeout as exc:
            errors.append(("timeout", str(exc)))
        except Exception as exc:   # noqa: BLE001 — capture, don't abort
            errors.append(("exception", f"{type(exc).__name__}: {exc}"))
        else:
            wall = time.perf_counter() - wall_start
            history = _attempt_history(errors)
            extra = {"attempt_history": history} if history else {}
            manifest = job_manifest(spec, ctx, registry.snapshot(),
                                    status="success", wall_time_s=wall,
                                    attempts=attempt + 1, **extra)
            registry.disable()
            return JobResult(spec=spec, value=value, attempts=attempt + 1,
                             attempt_history=history, wall_time_s=wall,
                             manifest=manifest)
        registry.disable()
    kind, message = errors[-1]
    wall = time.perf_counter() - wall_start
    history = _attempt_history(errors[:-1])
    extra = {"attempt_history": history} if history else {}
    manifest = job_manifest(spec, ctx, registry.snapshot(),
                            status="failure", wall_time_s=wall,
                            error=message, error_kind=kind,
                            attempts=len(errors), **extra)
    return JobResult(spec=spec, error=message, error_kind=kind,
                     attempts=len(errors), attempt_history=history,
                     wall_time_s=wall, manifest=manifest)


def run_campaign(experiment, *, jobs: int | None = None,
                 timeout_s: float | None = None, retries: int = 0,
                 config: dict | None = None, checkpoint=None,
                 checkpoint_every: int = 1, resume=None,
                 supervision=None, on_job_done=None,
                 progress=None) -> CampaignResult:
    """Execute every job of *experiment* and reduce the results.

    ``jobs=None``/``0`` uses one worker per available CPU; ``jobs=1``
    (or a single-job campaign) runs in-process with no pool overhead.
    The result order always follows ``experiment.job_specs()`` order,
    so reduction is deterministic at any worker count.

    Resilience (see :mod:`repro.resilience` and ``docs/resilience.md``):

    * ``checkpoint`` — a path (or prepared ``CheckpointWriter``) to
      journal each finished job to, flushed every ``checkpoint_every``
      records; a ``KeyboardInterrupt`` then surfaces as
      :class:`CampaignInterrupted` with the journal flushed.
    * ``resume`` — a checkpoint path whose journaled jobs are skipped;
      their recorded results merge into the manifest exactly as if
      they had just run.  An in-memory mapping of
      ``{spec_fingerprint: CheckpointRecord}`` is accepted in place of
      a path — the campaign service's content-addressed result store
      answers cache hits through exactly this seam.
    * ``supervision`` — a :class:`repro.resilience.SupervisionPolicy`
      for the pooled path (pool respawn, requeue, watchdog, backoff);
      the default policy applies when omitted.
    * ``on_job_done`` — callback invoked with each recorded
      :class:`JobResult` (the chaos harness's interruption point).

    Observability (see ``docs/observability.md``): when the process
    span recorder is active, the campaign runs under a
    ``campaign:<name>`` span whose :class:`TraceContext` is stamped
    into every dispatched spec (workers parent their job spans on it);
    ``progress`` — an optional
    :class:`repro.telemetry.ProgressReporter` fed from the same
    completion stream as ``on_job_done``.  Both are strictly
    observational: manifests and results are byte-identical with them
    on or off.
    """
    specs: Sequence[JobSpec] = list(experiment.job_specs())
    n_workers = resolve_jobs(jobs)
    name = getattr(experiment, "name", type(experiment).__name__)
    wall_start = time.perf_counter()

    with SPANS.span(f"campaign:{name}", jobs=n_workers,
                    job_count=len(specs)):
        trace_ctx = SPANS.context()
        if trace_ctx is not None:
            specs = [replace(spec, trace=trace_ctx) for spec in specs]
        return _run_campaign(
            experiment, specs, n_workers=n_workers, name=name,
            wall_start=wall_start, timeout_s=timeout_s, retries=retries,
            config=config, checkpoint=checkpoint,
            checkpoint_every=checkpoint_every, resume=resume,
            supervision=supervision, on_job_done=on_job_done,
            progress=progress, checkpoint_ops=CheckpointOps.default())


def _run_campaign(experiment, specs, *, n_workers, name, wall_start,
                  timeout_s, retries, config, checkpoint, checkpoint_every,
                  resume, supervision, on_job_done, progress,
                  checkpoint_ops: CheckpointOps) -> CampaignResult:
    slots: list[JobResult | None] = [None] * len(specs)
    resume_info = None
    resumed_from_records = isinstance(resume, Mapping)
    if resume is not None:
        journal = resume if resumed_from_records \
            else checkpoint_ops.load(resume)
        hits = 0
        for index, spec in enumerate(specs):
            record = journal.get(checkpoint_ops.fingerprint(spec))
            if record is not None:
                slots[index] = record.to_job_result(spec)
                hits += 1
        _metrics.REGISTRY.counter("resilience.jobs_resumed").inc(hits)
        source = "<records>" if resumed_from_records else str(resume)
        resume_info = {"from": source, "jobs_skipped": hits,
                       "jobs_rerun": len(specs) - hits}

    owns_writer = False
    if isinstance(checkpoint, checkpoint_ops.writer_cls):
        writer = checkpoint
    elif checkpoint is not None:
        writer = checkpoint_ops.writer_cls(checkpoint, every=checkpoint_every)
        owns_writer = True
    else:
        writer = None
    if writer is not None and resume is not None \
            and (resumed_from_records or writer.path != Path(resume)):
        # Journaling to a different file than we resumed from: copy the
        # inherited results over so the new journal is self-contained.
        for index, inherited in enumerate(slots):
            if inherited is not None:
                writer.append(specs[index], inherited)

    todo = [index for index in range(len(specs)) if slots[index] is None]
    if progress is not None:
        progress.begin(campaign=name, total=len(specs),
                       done=len(specs) - len(todo))

    def record(index: int, result: JobResult) -> None:
        slots[index] = result
        if writer is not None:
            writer.append(specs[index], result)
        if progress is not None:
            progress.on_job_done(result)
        if on_job_done is not None:
            on_job_done(result)

    supervision_stats = None
    try:
        if n_workers <= 1 or len(todo) <= 1:
            for index in todo:
                record(index, execute_job(experiment, specs[index],
                                          timeout_s=timeout_s,
                                          retries=retries))
        else:
            from ..resilience.supervisor import SupervisionPolicy, supervise

            supervision_stats = supervise(
                experiment, specs, todo, record, n_workers=n_workers,
                timeout_s=timeout_s, retries=retries,
                policy=supervision or SupervisionPolicy())
    except KeyboardInterrupt:
        if progress is not None:
            progress.end("interrupted")
        if writer is None:
            raise
        writer.flush()
        done = sum(result is not None for result in slots)
        raise CampaignInterrupted(
            f"campaign {name!r} interrupted with {done}/{len(specs)} "
            f"jobs done; resume from {writer.path}",
            done=done, total=len(specs),
            checkpoint=str(writer.path)) from None
    finally:
        if writer is not None:
            if owns_writer:
                writer.close()
            else:
                writer.flush()

    results: list[JobResult] = slots   # every slot filled now
    with SPANS.span("reduce", job_count=len(results)):
        value = experiment.reduce(results)
        campaign_config = {"experiment": name, "jobs": n_workers,
                           "job_count": len(specs)}
        campaign_config.update(getattr(experiment, "campaign_config",
                                       dict)() or {})
        campaign_config.update(config or {})
        manifest = merge_job_manifests(
            name, campaign_config, results,
            wall_time_s=time.perf_counter() - wall_start)
    if resume_info is not None:
        manifest["outcome"]["resume"] = resume_info
    if supervision_stats and any(supervision_stats.values()):
        manifest["outcome"]["supervision"] = supervision_stats
    if progress is not None:
        progress.end(manifest["outcome"]["status"])
    return CampaignResult(experiment=name, jobs=n_workers,
                          results=results, value=value, manifest=manifest)
