"""Parallel campaign runner: declarative jobs, process-pool execution.

Every headline result in the paper is a *campaign* — 22 train×victim
cells per µarch, hundreds of Prime+Probe trials, thousands of covert
bits — and each trial boots a fresh machine, so campaigns are
embarrassingly parallel.  This package schedules them:

* :class:`JobSpec` / :func:`derive_seed` — declarative, picklable job
  descriptions with deterministic per-job seeds (results are
  byte-identical at any ``--jobs`` value);
* :func:`run_campaign` — shard jobs across a process pool with per-job
  timeout/retry and failure capture instead of campaign abort; pooled
  runs are supervised (pool respawn, requeue, watchdog) and can
  journal to / resume from a checkpoint (see :mod:`repro.resilience`);
* :func:`merge_job_manifests` — fold per-job
  ``phantom.run-manifest/1`` documents into one campaign manifest.

Experiments plug in through the :class:`repro.core.experiment.Experiment`
protocol (``job_specs()`` / ``run_one(spec, ctx)`` / ``reduce(results)``).
See ``docs/parallel-runner.md``.
"""

from .executor import (CampaignError, CampaignInterrupted, CampaignResult,
                       CheckpointOps, JobContext, JobResult, JobTimeout,
                       execute_job, resolve_jobs, run_campaign)
from .options import CampaignOptions
from .reduce import job_manifest, manifest_fingerprint, merge_job_manifests
from .spec import JobSpec, derive_seed

__all__ = [
    "CampaignError",
    "CampaignInterrupted",
    "CampaignOptions",
    "CampaignResult",
    "CheckpointOps",
    "JobContext",
    "JobResult",
    "JobSpec",
    "JobTimeout",
    "derive_seed",
    "execute_job",
    "job_manifest",
    "manifest_fingerprint",
    "merge_job_manifests",
    "resolve_jobs",
    "run_campaign",
]
