"""Execution harness: run one :class:`FuzzProgram` on one engine.

A harness run builds a miniature two-world machine — user code/data/
stack plus an optional supervisor nano-kernel stub — directly on
:class:`~repro.memory.MemorySystem` and :class:`~repro.pipeline.CPU`
rather than booting a full :class:`~repro.kernel.Machine`.  Booting the
kernel image costs ~170 ms; this harness is ~1 ms per program, which is
what makes a 200-program oracle sweep fit a CI smoke budget.  The trap
protocol (syscall/sysret save-restore, costs, PMC accounting) mirrors
``Machine._trap`` so syscall-crossing programs exercise the same
privilege-switch paths the real experiments do.

Everything that can end a run is folded into a deterministic *outcome
string* (``halt``, ``pagefault:u:r:0x15002000``, ``limit``, ...), so a
program whose architectural behaviour is "fault on run 2" still
replays bit-identically and still diverges loudly if one engine faults
differently from the other.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from ..errors import (DecodeError, GeneralProtectionFault, HaltRequested,
                      MemoryError_, PageFault, ReproError, SimulationLimit)
from ..isa import Image, Reg, Segment
from ..kernel.mitigations import MitigationConfig
from ..memory import MemorySystem
from ..params import PAGE_SIZE
from ..pipeline import CPU, Microarch
from .program import (BuiltProgram, FuzzProgram, KERNEL_CODE,
                      KERNEL_CODE_PAGES, KERNEL_STACK_TOP,
                      KERNEL_STACK_PAGES, USER_DATA, USER_DATA_PAGES,
                      USER_STACK_TOP, USER_STACK_PAGES)

#: Physical memory given to each fuzz world (a handful of pages used).
PHYS_SIZE = 4 << 20


class ProgramExit(ReproError):
    """Deterministic early stop raised by the harness trap handler."""

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(reason)


@dataclass(frozen=True)
class Observables:
    """Everything two engines must agree on, byte for byte."""

    outcome: str                       # per-run outcomes joined by ";"
    pc: int
    kernel_mode: bool
    regs: tuple[int, ...]
    flags: tuple[bool, bool, bool, bool]
    cycles: int
    instructions: int
    pmc: tuple[tuple[str, int], ...]
    episodes: tuple[tuple, ...]
    data_sha: str

    #: Field presentation order for divergence reports.
    FIELDS = ("outcome", "pc", "kernel_mode", "regs", "flags", "cycles",
              "instructions", "pmc", "episodes", "data_sha")

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.FIELDS}


def compare_observables(a: Observables, b: Observables,
                        *, exclude: tuple[str, ...] = ()) -> list[str]:
    """Human-readable list of differing fields (empty when identical)."""
    diffs = []
    for name in Observables.FIELDS:
        if name in exclude:
            continue
        va, vb = getattr(a, name), getattr(b, name)
        if va != vb:
            if name == "pmc":  # report only the differing counters
                da, db = dict(va), dict(vb)
                keys = sorted(k for k in set(da) | set(db)
                              if da.get(k) != db.get(k))
                va = {k: da.get(k) for k in keys}
                vb = {k: db.get(k) for k in keys}
            diffs.append(f"{name}: {va!r} != {vb!r}")
    return diffs


@dataclass
class World:
    """A built fuzz machine, kept alive for post-run invariant checks."""

    built: BuiltProgram
    mem: MemorySystem
    cpu: CPU
    saved_user_pc: int = 0
    saved_user_rsp: int = 0
    run_outcomes: list[str] = field(default_factory=list)
    mitigations: MitigationConfig | None = None

    @property
    def program(self) -> FuzzProgram:
        return self.built.program


def build_world(program: FuzzProgram | BuiltProgram, uarch: Microarch, *,
                fastpath: bool,
                mitigations: MitigationConfig | None = None) -> World:
    """Map a program's images into a fresh MemorySystem + CPU.

    *mitigations* arms the same switches a booted
    :class:`~repro.kernel.Machine` would: the MSR bits are set before
    the first instruction, and the kernel-entry actions (IBPB, RSB
    stuffing) run in the trap handler exactly as ``Machine._trap``
    performs them.
    """
    built = program if isinstance(program, BuiltProgram) else program.build()
    mem = MemorySystem(PHYS_SIZE, hierarchy=uarch.hierarchy,
                       rng=random.Random(0), fastpath=fastpath)
    cpu = CPU(uarch, mem, rng=random.Random(0), fastpath=fastpath)
    if mitigations is not None:
        cpu.msr.suppress_bp_on_non_br = mitigations.suppress_bp_on_non_br
        cpu.msr.auto_ibrs = mitigations.auto_ibrs

    mem.load_image(built.user_image, user=True)
    data = built.program.data.ljust(USER_DATA_PAGES * PAGE_SIZE, b"\x00")
    data_image = Image()
    data_image.add(Segment(USER_DATA, data))
    mem.load_image(data_image, user=True, nx=True)
    mem.map_anonymous(USER_STACK_TOP - USER_STACK_PAGES * PAGE_SIZE,
                      USER_STACK_PAGES * PAGE_SIZE, user=True, nx=True)
    if built.kernel_image is not None:
        mem.load_image(built.kernel_image, user=False)
        mem.map_anonymous(KERNEL_STACK_TOP - KERNEL_STACK_PAGES * PAGE_SIZE,
                          KERNEL_STACK_PAGES * PAGE_SIZE, user=False,
                          nx=True)

    world = World(built=built, mem=mem, cpu=cpu, mitigations=mitigations)
    cpu.trap_handler = _make_trap_handler(world)
    return world


#: Where the fuzz world's RSB-stuffing pad "lives": the tail of the
#: mapped kernel code region (never executed architecturally — only
#: the return predictor sees it, mirroring ``rsb_stuff_pad``).
RSB_STUFF_PAD = KERNEL_CODE + KERNEL_CODE_PAGES * PAGE_SIZE - 64


def _make_trap_handler(world: World):
    """Nano-kernel trap protocol, mirroring ``Machine._trap``."""

    def trap(cpu: CPU, trap_name: str, instr, result) -> None:
        uarch = cpu.uarch
        if trap_name == "syscall":
            if cpu.kernel_mode:
                raise ProgramExit("nested-syscall")
            if world.built.kernel_image is None:
                raise ProgramExit("syscall-no-kernel")
            world.saved_user_pc = result.next_pc
            world.saved_user_rsp = cpu.state.read(Reg.RSP)
            mitigations = world.mitigations
            if mitigations is not None:
                if mitigations.ibpb_on_kernel_entry:
                    cpu.bpu.ibpb()
                if mitigations.rsb_stuffing_on_entry:
                    cpu.bpu.rsb.clear()
                    for _ in range(cpu.bpu.rsb.depth):
                        cpu.bpu.rsb.push(RSB_STUFF_PAD)
                    cpu.cycles += 2 * cpu.bpu.rsb.depth
            cpu.kernel_mode = True
            cpu.state.write(Reg.RSP, KERNEL_STACK_TOP - 64)
            cpu.cycles += uarch.syscall_entry_cost
            cpu.pmc.add("syscalls")
            cpu.pc = KERNEL_CODE
            return
        if trap_name == "sysret":
            if not cpu.kernel_mode:
                raise ProgramExit("sysret-user")
            cpu.kernel_mode = False
            cpu.state.write(Reg.RSP, world.saved_user_rsp)
            cpu.cycles += uarch.syscall_exit_cost
            cpu.pc = world.saved_user_pc
            return
        if trap_name == "ud2":
            raise ProgramExit("ud2")
        raise ProgramExit(f"trap:{trap_name}")

    return trap


def _reset_for_run(world: World) -> None:
    """Per-run architectural reset (a fresh process entering the same
    warm machine: caches, BTB and rewritten code persist across runs)."""
    cpu = world.cpu
    cpu.kernel_mode = False
    state = cpu.state
    for i in range(16):
        state.regs[i] = 0
    flags = state.flags
    flags.zf = flags.sf = flags.cf = flags.of = False
    for reg, value in world.program.initial_regs().items():
        state.write(reg, value)
    state.write(Reg.RSP, USER_STACK_TOP - 64)


def _apply_patches(world: World, before_run: int) -> None:
    """Rewrite patched items in place (self-modifying code event)."""
    for patch in world.program.patches:
        if patch.before_run != before_run:
            continue
        va, raw = world.built.patch_bytes(patch)
        pa = world.mem.aspace.translate(va, write=True, user_mode=True)
        world.mem.phys.write(pa, raw)
        world.cpu.invalidate_code(va, va + len(raw))


def _run_once(world: World) -> str:
    """One entry-to-exit run; returns the outcome token."""
    cpu = world.cpu
    try:
        cpu.run(world.built.entry,
                max_instructions=world.program.max_instructions)
    except HaltRequested:
        return "halt"
    except ProgramExit as exc:
        return exc.reason
    except PageFault as fault:
        mode = "u" if fault.user else "k"
        kind = "x" if fault.exec_ else ("w" if fault.write else "r")
        return f"pagefault:{mode}:{kind}:{fault.va:#x}"
    except GeneralProtectionFault:
        return "gpf"
    except SimulationLimit:
        return "limit"
    except DecodeError:
        return "decode-error"
    except MemoryError_:
        return "memory-error"
    except ReproError as exc:  # any other modelled stop, deterministically
        return f"error:{type(exc).__name__}"
    return "returned"


def _data_digest(world: World) -> str:
    """SHA-256 over the (physical) data region after the final run."""
    digest = hashlib.sha256()
    for page in range(USER_DATA_PAGES):
        va = USER_DATA + page * PAGE_SIZE
        pa = world.mem.aspace.translate_noperm(va)
        if pa is None:
            digest.update(b"\x00" * PAGE_SIZE)
        else:
            digest.update(world.mem.phys.read(pa, PAGE_SIZE))
    return digest.hexdigest()


def collect_observables(world: World) -> Observables:
    cpu = world.cpu
    flags = cpu.state.flags
    episodes = tuple(
        (e.source_pc,
         e.predicted_kind.value if e.predicted_kind is not None else None,
         e.actual_kind.value, e.target, e.reach.name, e.frontend_resteer,
         e.cross_privilege, e.nested, e.cycle)
        for e in cpu.episodes)
    return Observables(
        outcome=";".join(world.run_outcomes),
        pc=cpu.pc,
        kernel_mode=cpu.kernel_mode,
        regs=tuple(cpu.state.regs),
        flags=(flags.zf, flags.sf, flags.cf, flags.of),
        cycles=cpu.cycles,
        instructions=cpu.pmc.read("instructions"),
        pmc=tuple(cpu.pmc.snapshot().items()),
        episodes=episodes,
        data_sha=_data_digest(world),
    )


def run_world(world: World) -> Observables:
    """Execute every scheduled run of an already-built world."""
    for run_index in range(world.program.runs):
        if run_index:
            _apply_patches(world, run_index)
        _reset_for_run(world)
        world.run_outcomes.append(_run_once(world))
    return collect_observables(world)


def run_program(program: FuzzProgram | BuiltProgram, uarch: Microarch, *,
                fastpath: bool, record_episodes: bool = True,
                instr_hook=None,
                mitigations: MitigationConfig | None = None
                ) -> tuple[Observables, World]:
    """Run every scheduled run of *program* on one engine.

    Returns the final observables plus the live :class:`World` so
    invariant checks can inspect engine-internal caches afterwards.
    """
    world = build_world(program, uarch, fastpath=fastpath,
                        mitigations=mitigations)
    world.cpu.record_episodes = record_episodes
    if instr_hook is not None:
        world.cpu.instr_hook = instr_hook
    observables = run_world(world)
    return observables, world
