"""Known-answer witnesses: the paper's listings as contract inputs.

The relational fuzzer finds *unknown* violations; this module pins the
*known* ones.  Each witness replays one of Phantom's published attack
listings on a freshly booted :class:`~repro.kernel.Machine`, twice,
with two different secret values steering the phantom target (or, for
Listing 3's second phase, the disclosure pointer), and extracts the
:class:`~repro.sidechannel.leaktrace.LeakTrace` of each run.  Diffing
the two traces over a contract's protected channels must reproduce the
paper's answers:

* every listing **violates** ``no-if-leak`` on unmitigated Zen 2 *and*
  Zen 3 — the decoder-detectable misprediction fetches the
  secret-steered target into L1I/L2 before any resolution (§6.2);
* every listing **satisfies** ``suppress-bp-safe`` — the MSR gate stops
  transient *execution* at non-branch sites, so no secret-dependent
  data access survives (O4: the fetch itself still happens, which is
  exactly why that contract's clause only covers ``dcache``);
* Listing 3 under ``no-leak`` shows a ``dcache``/``l2`` data leak on
  Zen 2 (phantom window reaches execute) but **not** on Zen 3 (decoder
  wins the resteer race) — Table 1's regime split.

These are the fuzzing analogue of the repo's end-to-end exploit tests:
if a model change silently closes (or opens) a channel, the known
answers move before any fuzz campaign does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.kaslr_image import TARGET_REGION_OFFSET
from ..core.primitives import P2MappedMemory, PhantomInjector
from ..kernel import (MachineSpec, SYS_GETPID, SYS_READV)
from ..kernel.layout import (DISCLOSURE_GADGET_OFFSET, FDGET_POS_OFFSET,
                             TASK_PID_NR_NS_OFFSET)
from ..kernel.mitigations import Mitigation
from ..pipeline import by_name
from ..sidechannel.leaktrace import LeakTrace, capture
from .contracts import Contract
from .oracle import DEFAULT_UARCHES, Divergence

#: The pinned witnesses, in paper order.
LISTINGS = ("listing1", "listing2", "listing3")

#: Default secret pair for the known-answer runs (arbitrary, distinct,
#: both mapping inside the probe target region).
SECRET_A = 11
SECRET_B = 52


def run_listing(name: str, uarch: str, mitigations, secret: int
                ) -> LeakTrace:
    """Replay one listing with *secret* steering the attack; returns
    the machine's leak trace.

    *mitigations* is a :class:`~repro.kernel.MitigationConfig`.  The
    boot is fully pinned (``kaslr_seed=0``, ``rng_seed=0``, no syscall
    noise), so two runs differ only through *secret*.
    """
    secret &= 0xFF
    spec = MachineSpec(uarch=uarch, kaslr_seed=0, rng_seed=0,
                       mitigations=mitigations,
                       syscall_noise_evictions=0)
    machine = spec.boot()
    machine.cpu.record_episodes = True
    injector = PhantomInjector(machine)
    image = machine.kaslr.image_base
    # The instruction-fetch channel: phantom target indexed by the
    # secret, one I-cache line per value, inside the mapped image.
    if_target = image + TARGET_REGION_OFFSET + secret * 64

    if name == "listing1":
        # getpid(): jmp* prediction on __task_pid_nr_ns's nopl.
        injector.inject(image + TASK_PID_NR_NS_OFFSET, if_target)
        machine.syscall(SYS_GETPID)
    elif name == "listing2":
        # readv(): same site class, __fdget_pos's nopl.
        injector.inject(image + FDGET_POS_OFFSET, if_target)
        machine.syscall(SYS_READV, 3, 0)
    elif name == "listing3":
        # Phase 1 — the fetch channel, as listing 2.
        injector.inject(image + FDGET_POS_OFFSET, if_target)
        machine.syscall(SYS_READV, 3, 0)
        # Phase 2 — the execute channel: point the phantom window at
        # the disclosure gadget and steer its load through RSI -> R12
        # (§7.2) to a secret-indexed physmap line.  Only µarches whose
        # window reaches execute leave this residue.
        injector.inject(image + FDGET_POS_OFFSET,
                        image + DISCLOSURE_GADGET_OFFSET)
        pointer = (machine.kaslr.physmap_base + 0x1_0000 + secret * 64
                   - P2MappedMemory.GADGET_DISPLACEMENT)
        machine.syscall(SYS_READV, 3, pointer)
    else:
        raise ValueError(f"unknown listing {name!r} "
                         f"(one of {LISTINGS})")
    return capture(machine.cpu, machine.mem)


@dataclass
class WitnessVerdict:
    """Contract check of one listing across the µarch matrix."""

    listing: str
    contract: Contract
    mitigation: Mitigation
    uarches: tuple[str, ...]
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    @property
    def classes(self) -> tuple[str, ...]:
        return tuple(sorted({d.klass for d in self.divergences}))

    def classes_on(self, uarch: str) -> tuple[str, ...]:
        display = by_name(uarch).name
        return tuple(sorted({d.klass for d in self.divergences
                             if d.uarch == display}))

    def to_dict(self) -> dict:
        return {"listing": self.listing, "contract": self.contract.name,
                "mitigation": self.mitigation.name, "ok": self.ok,
                "classes": list(self.classes),
                "divergences": [str(d) for d in self.divergences]}


def check_listing(name: str, contract: Contract,
                  uarches: Sequence[str] = DEFAULT_UARCHES, *,
                  mitigation: Mitigation | None = None,
                  secret_a: int = SECRET_A,
                  secret_b: int = SECRET_B) -> WitnessVerdict:
    """Run one listing under *contract* with two secrets; any protected
    channel differing between the runs is a contract violation."""
    effective = mitigation if mitigation is not None \
        else contract.resolve_mitigation()
    verdict = WitnessVerdict(listing=name, contract=contract,
                             mitigation=effective,
                             uarches=tuple(uarches))
    for uarch in uarches:
        trace_a = run_listing(name, uarch, effective.config, secret_a)
        trace_b = run_listing(name, uarch, effective.config, secret_b)
        display = by_name(uarch).name
        for channel, summary in trace_a.diff(trace_b, contract.protects):
            verdict.divergences.append(
                Divergence("contract", display, f"{channel}: {summary}"))
    return verdict
