"""Differential fuzzing and invariant checking for the dual-engine
simulator (see docs/fuzzing.md).

The pieces compose as a pipeline:

* :mod:`~repro.fuzz.gen` — seeded deterministic program generator,
* :mod:`~repro.fuzz.harness` — run one program on one engine,
* :mod:`~repro.fuzz.invariants` — machine-checkable simulator claims,
* :mod:`~repro.fuzz.oracle` — the full differential matrix per program,
* :mod:`~repro.fuzz.contracts` — leakage contracts: which observables
  may depend on secret inputs, per mitigation,
* :mod:`~repro.fuzz.relational` — public-equivalent secret-divergent
  input pairs checked against a contract,
* :mod:`~repro.fuzz.witness` — the paper's listings as pinned
  known-answer contract inputs,
* :mod:`~repro.fuzz.shrink` — minimize failures to tiny reproducers,
* :mod:`~repro.fuzz.corpus` — committed regression corpus on disk.
"""

from .contracts import (CONTRACTS, Contract, VIOLATION_SCHEMA,
                        contract_by_name, contract_names, save_violation,
                        violation_document)
from .corpus import (COUNTEREXAMPLE_SCHEMA, SEED_CORPUS, iter_corpus,
                     iter_pair_corpus, load_program, save_counterexample,
                     save_program, seed_corpus, write_seed_corpus)
from .gen import SHAPES, generate
from .harness import (Observables, World, compare_observables,
                      run_program)
from .invariants import Violation, despeculated
from .oracle import (CHUNK, DEFAULT_UARCHES, Divergence, FuzzExperiment,
                     Verdict, check_program, check_range, program_seed)
from .program import (BuiltProgram, FuzzProgram, FuzzProgramError,
                      InstrSpec, Item, Patch, PROGRAM_SCHEMA,
                      SECRET_OFFSET, SECRET_SIZE)
from .relational import (ContractExperiment, ContractVerdict, PAIR_SCHEMA,
                         RelationalPair, check_pair, check_pair_range,
                         generate_pair, load_pair, pair_seed, save_pair)
from .shrink import (PairShrinkResult, ShrinkResult, shrink, shrink_pair)
from .witness import (LISTINGS, WitnessVerdict, check_listing, run_listing)

__all__ = [
    "BuiltProgram",
    "CHUNK",
    "CONTRACTS",
    "COUNTEREXAMPLE_SCHEMA",
    "Contract",
    "ContractExperiment",
    "ContractVerdict",
    "DEFAULT_UARCHES",
    "Divergence",
    "FuzzExperiment",
    "FuzzProgram",
    "FuzzProgramError",
    "InstrSpec",
    "Item",
    "LISTINGS",
    "Observables",
    "PAIR_SCHEMA",
    "PROGRAM_SCHEMA",
    "PairShrinkResult",
    "Patch",
    "RelationalPair",
    "SECRET_OFFSET",
    "SECRET_SIZE",
    "SEED_CORPUS",
    "SHAPES",
    "ShrinkResult",
    "VIOLATION_SCHEMA",
    "Verdict",
    "Violation",
    "WitnessVerdict",
    "World",
    "check_listing",
    "check_pair",
    "check_pair_range",
    "check_program",
    "check_range",
    "compare_observables",
    "contract_by_name",
    "contract_names",
    "despeculated",
    "generate",
    "generate_pair",
    "iter_corpus",
    "iter_pair_corpus",
    "load_pair",
    "load_program",
    "pair_seed",
    "program_seed",
    "run_listing",
    "run_program",
    "save_counterexample",
    "save_pair",
    "save_program",
    "save_violation",
    "seed_corpus",
    "shrink",
    "shrink_pair",
    "violation_document",
    "write_seed_corpus",
]
