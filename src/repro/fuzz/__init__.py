"""Differential fuzzing and invariant checking for the dual-engine
simulator (see docs/fuzzing.md).

The pieces compose as a pipeline:

* :mod:`~repro.fuzz.gen` — seeded deterministic program generator,
* :mod:`~repro.fuzz.harness` — run one program on one engine,
* :mod:`~repro.fuzz.invariants` — machine-checkable simulator claims,
* :mod:`~repro.fuzz.oracle` — the full differential matrix per program,
* :mod:`~repro.fuzz.shrink` — minimize failures to tiny reproducers,
* :mod:`~repro.fuzz.corpus` — committed regression corpus on disk.
"""

from .corpus import (COUNTEREXAMPLE_SCHEMA, SEED_CORPUS, iter_corpus,
                     load_program, save_counterexample, save_program,
                     seed_corpus, write_seed_corpus)
from .gen import SHAPES, generate
from .harness import (Observables, World, compare_observables,
                      run_program)
from .invariants import Violation, despeculated
from .oracle import (CHUNK, DEFAULT_UARCHES, Divergence, FuzzExperiment,
                     Verdict, check_program, check_range, program_seed)
from .program import (BuiltProgram, FuzzProgram, FuzzProgramError,
                      InstrSpec, Item, Patch, PROGRAM_SCHEMA)
from .shrink import ShrinkResult, shrink

__all__ = [
    "BuiltProgram",
    "CHUNK",
    "COUNTEREXAMPLE_SCHEMA",
    "DEFAULT_UARCHES",
    "Divergence",
    "FuzzExperiment",
    "FuzzProgram",
    "FuzzProgramError",
    "InstrSpec",
    "Item",
    "Observables",
    "PROGRAM_SCHEMA",
    "Patch",
    "SEED_CORPUS",
    "SHAPES",
    "ShrinkResult",
    "Verdict",
    "Violation",
    "World",
    "check_program",
    "check_range",
    "compare_observables",
    "despeculated",
    "generate",
    "iter_corpus",
    "load_program",
    "program_seed",
    "run_program",
    "save_counterexample",
    "save_program",
    "seed_corpus",
    "shrink",
    "write_seed_corpus",
]
