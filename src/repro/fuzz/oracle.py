"""Differential oracle: one program, every equivalence the repo claims.

For each µarch in the matrix (≥ 2 configs — by default one where the
decoder loses the resteer race and one where it wins), the oracle runs
the program under the naive interpreter and the fast-path engine and
compares the full :class:`~repro.fuzz.harness.Observables` — cycles,
registers, flags, PMC snapshot, episode list, data digest, outcome.
The naive run carries the PMC-monotonicity hook (architecturally
invisible, so hooked-slow vs unhooked-fast still has to match — the
comparison doubles as a test of that claim); it rides the slow engine
because superblock dispatch steps aside while a per-instruction hook
is attached, and the oracle's fast run must exercise the fused path.
Both worlds are then subjected to the post-run invariant checks from
:mod:`repro.fuzz.invariants`.

The `--jobs 1` vs `--jobs N` axis is covered by
:class:`FuzzExperiment`, which shards a seed range into fixed-size
chunks through the campaign runner; equal
:func:`~repro.runner.manifest_fingerprint` at different worker counts
is the same determinism statement the rest of the repo makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..pipeline import by_name
from ..runner import JobSpec, derive_seed
from ..core.experiment import chunked, values
from .gen import generate
from .harness import build_world, compare_observables, run_world
from .invariants import (PMCMonotoneHook, check_cache_coherence,
                         check_episodes, check_no_transient_architectural_effect,
                         check_pmc_episode_consistency)
from .program import FuzzProgram

#: Default µarch matrix: Zen 2's decoder loses the resteer race
#: (phantom execute µops > 0), Zen 3's wins — the two engine-relevant
#: regimes of pipeline/config.py.
DEFAULT_UARCHES = ("zen2", "zen3")

#: Fixed shard size for the campaign decomposition (never a function
#: of --jobs; see repro.runner.spec).
CHUNK = 5


@dataclass(frozen=True)
class Divergence:
    """One oracle finding."""

    kind: str        # "engine" | "invariant"
    uarch: str
    detail: str

    def __str__(self) -> str:
        return f"{self.kind}/{self.uarch}: {self.detail}"

    @property
    def klass(self) -> str:
        """Coarse class used by the shrinker to preserve the failure
        mode while minimizing: kind, µarch and the leading token of the
        detail (the differing field or violated invariant)."""
        head = self.detail.split(":", 1)[0].split(" ", 1)[0]
        return f"{self.kind}/{self.uarch}/{head}"


@dataclass
class Verdict:
    """Everything the oracle concluded about one program."""

    program: FuzzProgram
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    @property
    def classes(self) -> tuple[str, ...]:
        return tuple(sorted({d.klass for d in self.divergences}))

    def to_dict(self) -> dict:
        return {"program": self.program.name, "ok": self.ok,
                "divergences": [str(d) for d in self.divergences]}


def check_program(program: FuzzProgram,
                  uarches: Sequence[str] = DEFAULT_UARCHES,
                  *, invariants: bool = True) -> Verdict:
    """Run the full oracle matrix over one program."""
    verdict = Verdict(program=program)
    report = verdict.divergences
    for name in uarches:
        uarch = by_name(name)
        # Build the slow world by hand so the monotonicity hook can be
        # bound to its CPU before the first instruction retires.  The
        # hook rides the *naive* engine: it is architecturally passive
        # (hooked-slow vs unhooked-fast still has to match — the
        # comparison doubles as a test of that claim), and the fast
        # engine must run bare because superblock dispatch steps aside
        # whenever a per-instruction hook is observing — a hooked fast
        # run would silently stop exercising the fused path.
        slow_world = build_world(program, uarch, fastpath=False)
        slow_world.cpu.record_episodes = True
        hook = PMCMonotoneHook(slow_world.cpu)
        slow_world.cpu.instr_hook = hook
        slow = run_world(slow_world)

        fast_world = build_world(program, uarch, fastpath=True)
        fast_world.cpu.record_episodes = True
        fast = run_world(fast_world)

        for diff in compare_observables(slow, fast):
            report.append(Divergence("engine", uarch.name, diff))
        if not invariants:
            continue
        for violation in hook.violations:
            report.append(Divergence("invariant", uarch.name,
                                     str(violation)))
        for world in (slow_world, fast_world):
            for violation in check_cache_coherence(world):
                report.append(Divergence("invariant", uarch.name,
                                         str(violation)))
        for violation in check_episodes(fast, uarch):
            report.append(Divergence("invariant", uarch.name,
                                     str(violation)))
        for violation in check_pmc_episode_consistency(fast):
            report.append(Divergence("invariant", uarch.name,
                                     str(violation)))
        for violation in check_no_transient_architectural_effect(
                program, uarch, fast):
            report.append(Divergence("invariant", uarch.name,
                                     str(violation)))
    return verdict


def program_seed(campaign_seed: int, index: int) -> int:
    """Seed for the *index*-th generated program — a function of the
    campaign seed and the index only, never of chunking or workers."""
    return derive_seed(campaign_seed, ("program", index))


def check_range(campaign_seed: int, start: int, stop: int,
                uarches: Sequence[str] = DEFAULT_UARCHES,
                *, shape: str | None = None,
                invariants: bool = True) -> list[Verdict]:
    """Generate and check programs *start*..*stop* of a campaign."""
    verdicts = []
    for index in range(start, stop):
        program = generate(program_seed(campaign_seed, index), shape)
        verdicts.append(check_program(program, uarches,
                                      invariants=invariants))
    return verdicts


@dataclass(frozen=True)
class FuzzExperiment:
    """The fuzz sweep as a campaign: shards a seed range through the
    parallel runner so `repro fuzz --jobs N` and the jobs-differential
    tests reuse the exact same decomposition."""

    seed: int = 0
    count: int = 50
    shape: str | None = None
    uarches: tuple[str, ...] = DEFAULT_UARCHES
    invariants: bool = True
    name: str = "fuzz"

    def campaign_config(self) -> dict:
        return {"seed": self.seed, "count": self.count,
                "shape": self.shape, "uarches": list(self.uarches),
                "invariants": self.invariants}

    def job_specs(self) -> list[JobSpec]:
        return [
            JobSpec.make("fuzz", key=(index,),
                         seed=derive_seed(self.seed, ("chunk", index)),
                         start=start, stop=stop)
            for index, start, stop in chunked(self.count, CHUNK)
        ]

    def run_one(self, spec: JobSpec, ctx) -> list[dict]:
        verdicts = check_range(self.seed, spec.param("start"),
                               spec.param("stop"), self.uarches,
                               shape=self.shape,
                               invariants=self.invariants)
        return [
            {"index": spec.param("start") + offset, **verdict.to_dict()}
            for offset, verdict in enumerate(verdicts)
        ]

    def reduce(self, results) -> dict:
        rows = [row for value in values(results) for row in value]
        failures = [row for row in rows if not row["ok"]]
        return {"programs": len(rows), "failures": failures,
                "failed_indices": [row["index"] for row in failures]}
