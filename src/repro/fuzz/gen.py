"""Seeded random program generator.

``generate(seed)`` is a pure function from a 64-bit seed to a
:class:`~repro.fuzz.program.FuzzProgram`: the same seed always yields
the same program, byte for byte, on any worker process — the property
the whole oracle rests on (same seed → same programs → same verdicts).

Programs are weighted toward the shapes the dual-engine claim is most
likely to break on:

* ``branchy``   — dense conditional/direct/indirect control flow and
  bounded loops, retraining the BTB so phantom episodes fire;
* ``alias``     — overlapping data pointers and mixed-width loads and
  stores, stressing store-to-load forwarding and the alias checks;
* ``straddle``  — instructions straddling code-page boundaries and
  loads crossing data-page boundaries (dual translations per access);
* ``syscall``   — user/kernel crossings through a generated nano-kernel
  stub (privilege-split step caches, cross-privilege episodes);
* ``smc``       — multi-run programs whose code is rewritten between
  runs (``invalidate_code``: branches become nops and vice versa, so
  stale BTB entries meet changed decode bytes);
* ``mixed``     — a blend of all of the above.

Structural discipline keeps generated programs terminating by
construction: inter-block branches only jump *forward*, loops are
counted down from a small immediate with the counter register reserved
against clobbering, and calls target forward function bodies that end
in ``ret``.  Everything else — wild displacements, patched-in back
edges — is bounded by the per-run instruction budget and folds into a
deterministic outcome token instead of a hang.

The generator never emits ``rdtsc``: reading the cycle counter makes
architectural state legitimately timing-dependent, which would void the
no-speculation memory invariant (see :mod:`repro.fuzz.invariants`).
"""

from __future__ import annotations

import random

from ..isa import Cond, NOPL_SEQUENCES, Reg, encode
from ..params import PAGE_SIZE
from .program import (FuzzProgram, InstrSpec, Item, Patch, SECRET_OFFSET,
                      SECRET_SIZE, USER_CODE_PAGES, USER_DATA,
                      USER_DATA_PAGES)

#: Generator shapes, selectable by name or drawn uniformly per seed.
SHAPES = ("branchy", "alias", "straddle", "syscall", "smc", "mixed")

#: General-purpose registers the generator may touch (never RSP — the
#: stack pointer is managed structurally by push/pop/call/ret balance).
_GP = tuple(r for r in Reg if r is not Reg.RSP)

#: Registers holding stable data pointers; never written by generated
#: code so every load/store base stays inside (or deliberately just
#: outside) the data region.
_POINTERS = (Reg.RSI, Reg.RDI, Reg.R8)

_ALU_RR = ("add_rr", "sub_rr", "xor_rr", "or_rr")
_CODE_BYTE_BUDGET = USER_CODE_PAGES * PAGE_SIZE - 512


def _length(spec: InstrSpec) -> int:
    """Encoded length of *spec* (displacement-independent, so the
    placeholder resolution is exact)."""
    return len(encode(spec.resolve(None)))


class _Emitter:
    """Accumulates items while tracking byte layout and patchability."""

    def __init__(self) -> None:
        self.items: list[Item] = []
        self.pending: list[str] = []
        self.offset = 0  # bytes emitted so far (base-relative)
        self.patchable: list[tuple[int, str, int]] = []  # (index, tag, len)

    def label(self, name: str) -> None:
        self.pending.append(name)

    def emit(self, spec: InstrSpec, tag: str | None = None) -> None:
        self.items.append(Item(instr=spec, labels=tuple(self.pending)))
        self.pending.clear()
        length = _length(spec)
        self.offset += length
        if tag is not None:
            self.patchable.append((len(self.items) - 1, tag, length))


#: Secret-tainted gadget flavours the relational generator can emit.
TAINT_GADGETS = ("load", "branch", "index")


class _Gen:
    def __init__(self, seed: int, shape: str, taint: bool = False) -> None:
        self.rng = random.Random(seed)
        self.seed = seed
        self.shape = shape
        self.taint = taint
        self.secret_reads: list[tuple[int, int]] = []
        self.user = _Emitter()
        self.kernel: list[Item] = []
        self.patches: list[Patch] = []
        self.runs = 1
        self._uniq = 0
        self._loop_counters: set[Reg] = set()
        # Pointer values: overlapping bases make aliasing likely.
        offsets = [0, 8, 64, 256, 1024, 4080]
        self.rng.shuffle(offsets)
        if shape in ("alias", "mixed"):
            offsets[1] = offsets[0] + self.rng.choice((0, 8))
        self.pointer_values = {
            reg: USER_DATA + offsets[i] for i, reg in enumerate(_POINTERS)}

    # -- small helpers ---------------------------------------------------

    def uniq(self, prefix: str) -> str:
        self._uniq += 1
        return f"{prefix}{self._uniq}"

    def writable(self) -> Reg:
        pool = [r for r in _GP
                if r not in _POINTERS and r not in self._loop_counters]
        return self.rng.choice(pool)

    def any_reg(self) -> Reg:
        return self.rng.choice(_GP)

    def cond(self) -> str:
        return self.rng.choice(list(Cond)).name.lower()

    # -- instruction menu ------------------------------------------------

    def alu(self) -> InstrSpec:
        kind = self.rng.randrange(8)
        dest = self.writable()
        if kind == 0:
            return InstrSpec("mov_ri", dest=dest.name.lower(),
                             imm=self.rng.getrandbits(32))
        if kind == 1:
            return InstrSpec(self.rng.choice(("add_ri", "sub_ri", "cmp_ri")),
                             dest=dest.name.lower(),
                             imm=self.rng.randrange(1 << 31))
        if kind == 2:
            return InstrSpec(self.rng.choice(("shl_ri", "shr_ri")),
                             dest=dest.name.lower(),
                             imm=self.rng.randrange(64))
        if kind == 3:
            return InstrSpec(self.rng.choice(("inc", "dec", "neg", "not")),
                             dest=dest.name.lower())
        if kind == 4:
            return InstrSpec("cmov", cc=self.cond(), dest=dest.name.lower(),
                             src=self.any_reg().name.lower())
        if kind == 5:
            return InstrSpec(self.rng.choice(("cmp_rr", "test_rr")),
                             dest=self.any_reg().name.lower(),
                             src=self.any_reg().name.lower())
        if kind == 6:
            return InstrSpec("imul_rr", dest=dest.name.lower(),
                             src=self.any_reg().name.lower())
        return InstrSpec(self.rng.choice(_ALU_RR), dest=dest.name.lower(),
                         src=self.any_reg().name.lower())

    def mem_disp(self) -> int:
        roll = self.rng.random()
        if self.shape in ("alias", "mixed") and roll < 0.5:
            return self.rng.choice((0, 8, 16, 24))
        if self.shape in ("straddle", "mixed") and roll < 0.65:
            # Land the access on the data-page boundary so the quadword
            # translates both pages.
            return PAGE_SIZE - self.rng.choice((1, 2, 4, 7))
        if roll < 0.02:  # rare: past the mapped region -> page fault
            return USER_DATA_PAGES * PAGE_SIZE + 64
        return 8 * self.rng.randrange(64)

    def mem_op(self) -> InstrSpec:
        base = self.rng.choice(_POINTERS).name.lower()
        disp = self.mem_disp()
        kind = self.rng.randrange(4)
        if kind == 0:
            return InstrSpec("mov_rm", dest=self.writable().name.lower(),
                             base=base, disp=disp)
        if kind == 1:
            return InstrSpec("movb_rm", dest=self.writable().name.lower(),
                             base=base, disp=disp)
        if kind == 2:
            return InstrSpec("mov_mr", src=self.any_reg().name.lower(),
                             base=base, disp=disp)
        return InstrSpec("lea", dest=self.writable().name.lower(),
                         base=base, disp=disp)

    def body_instr(self) -> InstrSpec:
        mem_weight = {"alias": 0.55, "straddle": 0.45}.get(self.shape, 0.3)
        if self.rng.random() < mem_weight:
            return self.mem_op()
        if self.rng.random() < 0.06:
            return InstrSpec(self.rng.choice(("lfence", "mfence")))
        return self.alu()

    # -- secret-tainted gadgets (relational fuzzing) ---------------------

    def emit_secret_gadget(self) -> None:
        """One secret-consuming gadget: a byte load from the secret
        region, annotated in ``secret_reads``, optionally followed by a
        secret-dependent branch or a secret-indexed second access — the
        classic leaking idioms a leakage contract must notice.
        """
        rng = self.rng
        kind = rng.choice(TAINT_GADGETS)
        secret_byte = rng.randrange(SECRET_SIZE)
        ptr = self.writable()
        self.user.emit(InstrSpec("mov_ri", dest=ptr.name.lower(),
                                 imm=USER_DATA + SECRET_OFFSET + secret_byte))
        val = rng.choice([r for r in _GP
                          if r not in _POINTERS
                          and r not in self._loop_counters and r is not ptr])
        self.secret_reads.append((len(self.user.items), secret_byte))
        self.user.emit(InstrSpec("movb_rm", dest=val.name.lower(),
                                 base=ptr.name.lower(), disp=0))
        if kind == "branch":
            # Secret-dependent direction: fetched code differs per run.
            skip = self.uniq("T")
            self.user.emit(InstrSpec("cmp_ri", dest=val.name.lower(),
                                     imm=128))
            self.user.emit(InstrSpec("jcc", cc=rng.choice(("b", "ae")),
                                     target=skip))
            for _ in range(rng.randrange(1, 4)):
                self.user.emit(self.body_instr())
            self.user.label(skip)
        elif kind == "index":
            # Secret-indexed access: the touched D-cache line encodes
            # the byte (16-byte stride keeps it inside the data pages).
            self.user.emit(InstrSpec("shl_ri", dest=val.name.lower(),
                                     imm=4))
            base = rng.choice([r for r in _GP
                               if r not in _POINTERS
                               and r not in self._loop_counters
                               and r is not val])
            self.user.emit(InstrSpec("mov_ri", dest=base.name.lower(),
                                     imm=USER_DATA))
            self.user.emit(InstrSpec("add_rr", dest=base.name.lower(),
                                     src=val.name.lower()))
            self.user.emit(InstrSpec("mov_rm", dest=val.name.lower(),
                                     base=base.name.lower(), disp=0))

    # -- structure -------------------------------------------------------

    def emit_pad_to_boundary(self) -> None:
        """Pad with long nops so the next instruction straddles a code
        page boundary (the decoder must translate both pages)."""
        user = self.user
        page_off = user.offset % PAGE_SIZE
        remaining = PAGE_SIZE - page_off
        target_tail = self.rng.choice((1, 2, 4, 7, 9))
        pad = remaining - target_tail
        if pad < 0 or user.offset + remaining + 64 > _CODE_BYTE_BUDGET:
            return
        lengths = sorted(NOPL_SEQUENCES, reverse=True)
        while pad:
            for length in lengths:
                if length <= pad:
                    user.emit(InstrSpec("nopl", imm=length))
                    pad -= length
                    break
            else:
                user.emit(InstrSpec("nop"))
                pad -= 1
        # 10-byte immediate move: bytes on both sides of the boundary.
        user.emit(InstrSpec("mov_ri", dest=self.writable().name.lower(),
                            imm=self.rng.getrandbits(64)))

    def emit_short_skip(self) -> None:
        """``jmp8`` over a handful of instructions (rel8 stays in range
        because the skipped body is at most ~30 bytes)."""
        skip = self.uniq("S")
        self.user.emit(InstrSpec("jmp8", target=skip))
        for _ in range(self.rng.randrange(1, 4)):
            self.user.emit(self.body_instr())
        self.user.label(skip)

    def emit_indirect(self, label: str, *, call: bool) -> None:
        scratch = self.writable()
        self.user.emit(InstrSpec("mov_ri", dest=scratch.name.lower(),
                                 imm_label=label))
        mnemonic = "call_reg" if call else "jmp_reg"
        self.user.emit(InstrSpec(mnemonic, dest=scratch.name.lower()))

    def emit_block_body(self, n: int) -> None:
        loop = self.rng.random() < (0.45 if self.shape == "branchy" else 0.25)
        counter: Reg | None = None
        if loop:
            counter = self.writable()
            self._loop_counters.add(counter)
            head = self.uniq("P")
            self.user.emit(InstrSpec("mov_ri", dest=counter.name.lower(),
                                     imm=self.rng.randrange(2, 7)))
            self.user.label(head)
        for _ in range(n):
            if self.rng.random() < 0.12:
                self.emit_short_skip()
            else:
                spec = self.body_instr()
                tag = None
                if spec.mnemonic in _ALU_RR:
                    tag = "alu"
                elif spec.mnemonic == "mov_ri" and spec.imm_label is None:
                    tag = "mov_ri"
                self.user.emit(spec, tag=tag)
        if loop and counter is not None:
            self.user.emit(InstrSpec("dec", dest=counter.name.lower()))
            self.user.emit(InstrSpec("jcc", cc="ne", target=head))
            self._loop_counters.discard(counter)

    def emit_terminator(self, block: int, labels: list[str],
                        functions: list[str], use_kernel: bool) -> None:
        """Transfer control out of block *block* — always forward."""
        forward = labels[block + 1:]
        target = self.rng.choice(forward)
        roll = self.rng.random()
        if use_kernel and roll < (0.45 if self.shape == "syscall" else 0.12):
            self.user.emit(InstrSpec("mov_ri", dest="rax",
                                     imm=self.rng.randrange(512)))
            self.user.emit(InstrSpec("syscall"))
            return  # falls through to the next block after sysret
        if functions and roll < 0.3:
            fn = self.rng.choice(functions)
            if self.rng.random() < 0.3:
                self.emit_indirect(fn, call=True)
            else:
                self.user.emit(InstrSpec("call", target=fn))
            return
        if roll < 0.5:
            self.user.emit(InstrSpec("jcc", cc=self.cond(), target=target),
                           tag="jcc")
            return
        if roll < 0.62:
            self.emit_indirect(target, call=False)
            return
        if roll < 0.8:
            self.user.emit(InstrSpec("jmp", target=target))
            return
        # fall through

    def emit_function(self, name: str) -> None:
        self.user.label(name)
        reg = self.writable()
        balanced = self.rng.random() < 0.8
        if balanced:
            self.user.emit(InstrSpec("push", dest=reg.name.lower()))
        for _ in range(self.rng.randrange(1, 5)):
            self.user.emit(self.body_instr())
        if balanced:
            self.user.emit(InstrSpec("pop", dest=reg.name.lower()))
        self.user.emit(InstrSpec("ret"))

    def emit_kernel(self) -> None:
        """Nano-kernel syscall body: a few instructions, an optional
        forward branch, then ``sysret``."""
        items: list[Item] = []
        pending: list[str] = []

        def emit(spec: InstrSpec) -> None:
            items.append(Item(instr=spec, labels=tuple(pending)))
            pending.clear()

        for _ in range(self.rng.randrange(2, 6)):
            emit(self.alu())
        if self.rng.random() < 0.5:
            skip = self.uniq("K")
            emit(InstrSpec("jcc", cc=self.cond(), target=skip))
            emit(self.alu())
            pending.append(skip)
        reg = self.writable()
        emit(InstrSpec("push", dest=reg.name.lower()))
        emit(InstrSpec("pop", dest=reg.name.lower()))
        emit(InstrSpec("sysret"))
        self.kernel = items

    # -- self-modifying patches -----------------------------------------

    def plan_patches(self) -> None:
        self.runs = self.rng.randrange(2, 4)
        candidates = list(self.user.patchable)
        self.rng.shuffle(candidates)
        n_patches = min(len(candidates), self.rng.randrange(1, 4))
        for index, tag, length in candidates[:n_patches]:
            before_run = self.rng.randrange(1, self.runs)
            if tag == "jcc":
                # Branch bytes become a nop: the BTB still predicts a
                # branch here, the decoder now disagrees — the exact
                # decoder-detectable mismatch Phantom is about.
                replacement = InstrSpec("nopl", imm=length)
            elif tag == "alu":
                replacement = InstrSpec(
                    self.rng.choice(_ALU_RR), dest=self.writable().name.lower(),
                    src=self.any_reg().name.lower())
            else:  # mov_ri: same shape, different immediate
                original = self.user.items[index].instr
                replacement = InstrSpec("mov_ri", dest=original.dest,
                                        imm=self.rng.getrandbits(32))
            if _length(replacement) <= length:
                self.patches.append(Patch(before_run=before_run, index=index,
                                          instr=replacement))
        if not self.patches:
            self.runs = 1

    # -- top level -------------------------------------------------------

    def build(self) -> FuzzProgram:
        rng = self.rng
        shape = self.shape
        use_kernel = shape in ("syscall", "mixed") and \
            (shape == "syscall" or rng.random() < 0.5)
        n_blocks = {"branchy": rng.randrange(8, 13),
                    "syscall": rng.randrange(5, 9)}.get(
                        shape, rng.randrange(4, 9))
        n_functions = rng.randrange(0, 3) if shape != "straddle" else 0
        functions = [self.uniq("F") for _ in range(n_functions)]
        labels = [f"L{i}" for i in range(n_blocks)] + ["exit"]

        emitted = 0
        for block in range(n_blocks):
            self.user.label(labels[block])
            emitted += 1
            if shape == "straddle" and rng.random() < 0.6:
                self.emit_pad_to_boundary()
            self.emit_block_body(rng.randrange(2, 8))
            if self.taint and len(self.secret_reads) < 3 \
                    and rng.random() < 0.4:
                self.emit_secret_gadget()
            self.emit_terminator(block, labels, functions, use_kernel)
            if self.user.offset > _CODE_BYTE_BUDGET - 1024:
                break
        # Blocks dropped by the byte budget still need their labels:
        # park them on the exit instruction.
        for name in labels[emitted:-1]:
            self.user.label(name)
        if self.taint and not self.secret_reads:
            # Every tainted program consumes at least one secret byte.
            self.emit_secret_gadget()
        self.user.label("exit")
        self.user.emit(InstrSpec("hlt"))
        for name in functions:
            self.emit_function(name)
        if use_kernel:
            self.emit_kernel()
        if shape == "smc" and self.user.patchable:
            self.plan_patches()

        regs = tuple(sorted(
            [(reg.name.lower(), value)
             for reg, value in self.pointer_values.items()] +
            [(reg.name.lower(), rng.getrandbits(64))
             for reg in (Reg.RAX, Reg.RCX, Reg.RDX)]))
        data = rng.randbytes(512)
        prefix = "tainted-" if self.taint else ""
        return FuzzProgram(
            name=f"{prefix}{shape}-{self.seed & 0xFFFFFFFFFFFFFFFF:016x}",
            seed=self.seed, shape=shape,
            user_items=tuple(self.user.items),
            kernel_items=tuple(self.kernel),
            regs=regs, data=data,
            patches=tuple(self.patches), runs=self.runs,
            max_instructions=6000,
            secret_loads=tuple(self.secret_reads))


def generate(seed: int, shape: str | None = None, *,
             taint: bool = False) -> FuzzProgram:
    """Deterministically generate one program from *seed*.

    When *shape* is None it is drawn from the seed itself, so a plain
    integer sequence of seeds sweeps all shapes.  With ``taint=True``
    the program additionally consumes 1–3 bytes of the secret region
    through :data:`TAINT_GADGETS`, with every consuming load annotated
    in :attr:`~repro.fuzz.program.FuzzProgram.secret_loads` — the raw
    material of the relational pair generator.
    """
    if shape is None:
        shape = SHAPES[random.Random(seed ^ 0x5EED).randrange(len(SHAPES))]
    elif shape not in SHAPES:
        raise ValueError(f"unknown shape {shape!r} (one of {SHAPES})")
    return _Gen(seed, shape, taint=taint).build()
