"""Machine-checkable invariants of the dual-engine simulator.

Each check returns a list of :class:`Violation` records (empty when the
invariant holds); the oracle folds them into its verdict next to the
engine-differential diffs.  The four families from the issue:

1. **Transient stores are never architecturally visible** — a program
   replayed on a de-speculated variant of the same µarch (zero backend
   window, zero phantom execute µops) must reach the identical
   architectural state: registers, flags, data-region digest, outcome.
   Anything speculation "leaked" into architecture shows up here.
2. **PMC counters are monotone** — sampled between consecutive retired
   instructions via :attr:`CPU.instr_hook` (architecturally invisible,
   so hooked and unhooked runs must still produce equal observables).
3. **Generation-guarded caches never serve stale entries** — after a
   run, every surviving cache entry (software-TLB PTE, decoded
   instruction, transient decode tuple) is re-derived from the current
   page tables and memory image and must match; and every cached pc
   must be indexed in ``CPU._code_pages``, otherwise
   ``invalidate_code`` could miss it on the next self-modifying write.
4. **Resteer episodes are well-formed** — cycles monotone, canonical
   addresses, reach consistent with the episode flavour and the
   µarch's decoder-race outcome, and the episode list consistent with
   the resteer PMCs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import DecodeError
from ..isa import BranchKind, Instruction, decode
from ..params import PAGE_SHIFT, PAGE_SIZE, is_canonical
from ..pipeline import CPU, Microarch, Reach
from .harness import Observables, World, compare_observables, run_program
from .program import FuzzProgram

#: Maximum encoded instruction length (mirrors the CPU's fetch window).
_MAX_INSTR_BYTES = 16

#: Observable fields that may legitimately differ once speculation is
#: disabled: timing, performance counters and the episodes themselves.
SPECULATIVE_FIELDS = ("cycles", "pmc", "episodes")


@dataclass(frozen=True)
class Violation:
    """One invariant failure."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.detail}"


def despeculated(uarch: Microarch) -> Microarch:
    """*uarch* with every transient window closed: no backend Spectre
    window, and a decoder that resteers before anything can issue."""
    return replace(uarch, backend_window_uops=0,
                   frontend_resteer_latency=uarch.issue_latency)


# ---------------------------------------------------------------------------
# 1. transient stores never become architectural
# ---------------------------------------------------------------------------

def check_no_transient_architectural_effect(
        program: FuzzProgram, uarch: Microarch,
        reference: Observables) -> list[Violation]:
    """Replay on the de-speculated µarch; architecture must match.

    Skipped for programs that execute ``rdtsc``: reading the cycle
    counter makes architectural state legitimately timing-dependent.
    """
    if program.uses_rdtsc:
        return []
    nospec, _ = run_program(program, despeculated(uarch), fastpath=True)
    diffs = compare_observables(reference, nospec,
                                exclude=SPECULATIVE_FIELDS)
    return [Violation("transient-architectural",
                      f"{uarch.name}: speculation changed architectural "
                      f"state: {diff}") for diff in diffs]


# ---------------------------------------------------------------------------
# 2. PMC monotonicity
# ---------------------------------------------------------------------------

class PMCMonotoneHook:
    """``instr_hook`` sampling the PMC bank between retired
    instructions; any counter that ever decreases is recorded."""

    def __init__(self, cpu: CPU) -> None:
        self._counts = cpu.pmc.counts
        self._previous = list(cpu.pmc.counts)
        self._events = cpu.pmc.snapshot().keys()
        self.violations: list[Violation] = []

    def __call__(self, pc: int, instr: Instruction) -> None:
        counts = self._counts
        previous = self._previous
        for slot, value in enumerate(counts):
            if value < previous[slot]:
                event = list(self._events)[slot]
                self.violations.append(Violation(
                    "pmc-monotone",
                    f"{event} decreased {previous[slot]} -> {value} "
                    f"at pc={pc:#x}"))
            previous[slot] = value


# ---------------------------------------------------------------------------
# 3. generation-guarded caches serve no stale entries
# ---------------------------------------------------------------------------

def _read_code(world: World, pc: int, size: int) -> bytes | None:
    """Current bytes at *pc* via the page tables (None if unmapped)."""
    out = bytearray()
    pos = pc
    while pos < pc + size:
        pa = world.mem.aspace.translate_noperm(pos)
        if pa is None:
            return bytes(out) if out else None
        chunk = min(pc + size - pos, PAGE_SIZE - (pos & (PAGE_SIZE - 1)))
        out += world.mem.phys.read(pa, chunk)
        pos += chunk
    return bytes(out)


def _check_decoded(world: World, pc: int, cached: Instruction | None,
                   label: str) -> Violation | None:
    raw = _read_code(world, pc, _MAX_INSTR_BYTES)
    if raw is None:
        return None  # page gone: entry unreachable, nothing to compare
    try:
        current = decode(raw)
    except DecodeError:
        current = None
    if cached is None:
        if current is not None:
            return Violation(
                "stale-cache",
                f"{label} caches 'undecodable' at {pc:#x} but bytes now "
                f"decode to {current}")
        return None
    if current != cached:
        return Violation(
            "stale-cache",
            f"{label} entry at {pc:#x} decodes {cached} but memory now "
            f"holds {current}")
    return None


def check_cache_coherence(world: World) -> list[Violation]:
    """Re-derive every surviving cache entry from current state."""
    violations: list[Violation] = []
    cpu, mem = world.cpu, world.mem
    aspace = mem.aspace

    # Software TLB: entries are only valid for the generation they were
    # filled under; when generations match, each cached resolution must
    # agree with a fresh page walk.
    xlat = mem.xlat
    if xlat._generation == aspace.generation:
        for vpn, entry in xlat._ptes.items():
            current = aspace.pte(vpn << PAGE_SHIFT)
            if entry is not current and entry != current:
                violations.append(Violation(
                    "stale-cache",
                    f"TLB caches {entry} for vpn {vpn:#x}, page tables "
                    f"hold {current}"))

    # Decode cache and transient decode cache: cached instructions must
    # match what the current code bytes decode to.
    for pc, instr in cpu._decode_cache.items():
        violation = _check_decoded(world, pc, instr, "decode-cache")
        if violation is not None:
            violations.append(violation)
    if cpu._transient_gen == aspace.generation:
        for pc, entry in cpu._transient_cache.items():
            cached = entry[0] if entry is not None else None
            violation = _check_decoded(world, pc, cached, "transient-cache")
            if violation is not None:
                violations.append(violation)

    # Invalidation-index coverage: a cached pc missing from
    # ``_code_pages`` would survive ``invalidate_code`` and serve stale
    # bytes after the next self-modifying write.
    indexed = {pc for pcs in cpu._code_pages.values() for pc in pcs}
    for label, cache in (("decode", cpu._decode_cache),
                         ("step-user", cpu._step_cache_user),
                         ("step-kernel", cpu._step_cache_kernel),
                         ("transient", cpu._transient_cache),
                         ("superblock-user", cpu._sb_user),
                         ("superblock-kernel", cpu._sb_kernel),
                         ("transient-block-user", cpu._tb_user),
                         ("transient-block-kernel", cpu._tb_kernel)):
        missing = set(cache) - indexed
        for pc in sorted(missing):
            violations.append(Violation(
                "stale-cache",
                f"{label} cache holds pc {pc:#x} not indexed for "
                f"invalidation"))

    # Block-index coverage: every interior pc of a live (super|transient)
    # block must map back to its head through the block index, or a
    # mid-block write would retire the head entry but leave the block
    # serving fused stale bytes.
    for label, caches, index in (
            ("superblock",
             ((False, cpu._sb_user), (True, cpu._sb_kernel)),
             cpu._sb_index),
            ("transient-block",
             ((False, cpu._tb_user), (True, cpu._tb_kernel)),
             cpu._tb_index)):
        owned = {(kernel, head)
                 for owners in index.values() for kernel, head in owners}
        for kernel, cache in caches:
            for head, entry in cache.items():
                if entry is not None and (kernel, head) not in owned:
                    violations.append(Violation(
                        "stale-cache",
                        f"{label} at {head:#x} (kernel={kernel}) has no "
                        f"interior-pc index entries"))
    return violations


# ---------------------------------------------------------------------------
# 4. episode well-formedness
# ---------------------------------------------------------------------------

def check_episodes(observables: Observables,
                   uarch: Microarch) -> list[Violation]:
    violations: list[Violation] = []
    kinds = {kind.value for kind in BranchKind if kind.is_branch}
    last_cycle = 0
    for episode in observables.episodes:
        (source_pc, predicted, actual, target, reach, frontend,
         _cross, _nested, cycle) = episode
        where = f"episode at pc={source_pc:#x} cycle={cycle}"
        if cycle < last_cycle:
            violations.append(Violation(
                "episode-form", f"{where}: cycle went backwards "
                f"({last_cycle} -> {cycle})"))
        last_cycle = max(last_cycle, cycle)
        if not is_canonical(source_pc) or not is_canonical(target):
            violations.append(Violation(
                "episode-form", f"{where}: non-canonical address "
                f"(source={source_pc:#x}, target={target:#x})"))
        if reach not in Reach.__members__:
            violations.append(Violation(
                "episode-form", f"{where}: unknown reach {reach!r}"))
            continue
        if predicted is not None and predicted not in kinds:
            violations.append(Violation(
                "episode-form", f"{where}: predicted kind {predicted!r} "
                f"is not a branch kind"))
        if frontend and reach == Reach.EXECUTE.name \
                and uarch.phantom_exec_uops == 0:
            violations.append(Violation(
                "episode-form",
                f"{where}: frontend resteer reached EXECUTE on "
                f"{uarch.name}, whose decoder wins the race"))
        if not frontend and reach != Reach.EXECUTE.name:
            violations.append(Violation(
                "episode-form",
                f"{where}: backend-detected episode with reach {reach} "
                f"(execute-detected mispredictions execute by definition)"))
    return violations


def check_pmc_episode_consistency(
        observables: Observables) -> list[Violation]:
    """The resteer PMCs and the episode record are two views of the
    same events; they must agree exactly."""
    violations: list[Violation] = []
    pmc = dict(observables.pmc)
    frontend = sum(1 for e in observables.episodes if e[5])
    backend = sum(1 for e in observables.episodes if not e[5])
    if pmc.get("resteer_frontend") != frontend:
        violations.append(Violation(
            "pmc-episode",
            f"resteer_frontend={pmc.get('resteer_frontend')} but "
            f"{frontend} frontend episodes recorded"))
    if pmc.get("resteer_backend") != backend:
        violations.append(Violation(
            "pmc-episode",
            f"resteer_backend={pmc.get('resteer_backend')} but "
            f"{backend} backend episodes recorded"))
    return violations
