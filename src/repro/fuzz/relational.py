"""Relational (pair-based) contract fuzzing.

Property-based testing finds programs where two *engines* disagree;
relational testing finds programs where two *inputs* disagree in ways a
:class:`~repro.fuzz.contracts.Contract` forbids.  A
:class:`RelationalPair` is one secret-tainted
:class:`~repro.fuzz.program.FuzzProgram` plus two secret regions that
are **public-equivalent** (identical ``data[:SECRET_OFFSET]``, same
code, same registers) and **secret-divergent** (they differ at every
secret byte the program's taint gadgets consume).  Running both
variants under the contract's mitigations and diffing the two
:class:`~repro.sidechannel.leaktrace.LeakTrace` records over the
contract's protected channels yields the violation verdict; each
variant additionally runs on both engines, so a contract campaign is
also a differential-engine campaign for free.

Sharding follows :class:`~repro.fuzz.oracle.FuzzExperiment` exactly:
pair *i* of a campaign is a pure function of ``(campaign_seed, i)``,
chunks are fixed-size, and the reduced violation manifest is
fingerprint-identical at any ``--jobs``.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from ..core.experiment import chunked, values
from ..kernel.mitigations import Mitigation, mitigation_by_name
from ..pipeline import by_name
from ..runner import JobSpec, derive_seed
from ..sidechannel.leaktrace import LeakTrace, capture
from .contracts import Contract, contract_by_name
from .gen import generate
from .harness import build_world, compare_observables, run_world
from .oracle import CHUNK, DEFAULT_UARCHES, Divergence
from .program import FuzzProgram, SECRET_OFFSET, SECRET_SIZE

#: Schema tag on serialized pairs (clean corpus entries).
PAIR_SCHEMA = "phantom.fuzz-pair/1"

#: Mixed into the campaign-derived seed for secret material so the
#: secret stream is independent of the program-shape stream.
_SECRET_SALT = 0x5EC2E7


@dataclass(frozen=True)
class RelationalPair:
    """One program with two public-equivalent secret inputs."""

    program: FuzzProgram
    secret_a: bytes
    secret_b: bytes

    def __post_init__(self) -> None:
        if len(self.secret_a) != SECRET_SIZE or \
                len(self.secret_b) != SECRET_SIZE:
            raise ValueError(f"secrets must be {SECRET_SIZE} bytes")

    @property
    def name(self) -> str:
        return self.program.name

    @property
    def consumed(self) -> tuple[int, ...]:
        """Secret bytes the program's annotated loads actually read."""
        return tuple(sorted({byte for _, byte
                             in self.program.secret_loads}))

    def _variant(self, secret: bytes) -> FuzzProgram:
        data = self.program.data.ljust(SECRET_OFFSET, b"\x00")
        return self.program.with_(
            data=data[:SECRET_OFFSET] + secret)

    @property
    def variant_a(self) -> FuzzProgram:
        return self._variant(self.secret_a)

    @property
    def variant_b(self) -> FuzzProgram:
        return self._variant(self.secret_b)

    def public_projection(self, variant: FuzzProgram) -> bytes:
        """The contract-visible projection of one variant's input."""
        return variant.data[:SECRET_OFFSET]

    def to_dict(self) -> dict:
        return {
            "schema": PAIR_SCHEMA,
            "name": self.name,
            "secret_a": self.secret_a.hex(),
            "secret_b": self.secret_b.hex(),
            "program": self.program.to_dict(),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "RelationalPair":
        if doc.get("schema") != PAIR_SCHEMA:
            raise ValueError(
                f"not a {PAIR_SCHEMA} document: {doc.get('schema')!r}")
        return cls(program=FuzzProgram.from_dict(doc["program"]),
                   secret_a=bytes.fromhex(doc["secret_a"]),
                   secret_b=bytes.fromhex(doc["secret_b"]))

    def with_(self, **changes) -> "RelationalPair":
        from dataclasses import replace
        return replace(self, **changes)


def pair_seed(campaign_seed: int, index: int) -> int:
    """Seed for the *index*-th pair — a function of the campaign seed
    and the index only, never of chunking or workers."""
    return derive_seed(campaign_seed, ("pair", index))


def generate_pair(seed: int, shape: str | None = None) -> RelationalPair:
    """Generate one relational pair.  Deterministic in *seed*.

    The program comes from the tainted generator (so it carries
    ``secret_loads`` annotations); ``secret_a`` is uniform random and
    ``secret_b`` equals it everywhere **except** the consumed bytes,
    where it is forced to differ.  Any observable difference between
    the variants is therefore attributable to the secret reads, and the
    public projections are equal by construction.
    """
    program = generate(seed, shape, taint=True)
    rng = random.Random(seed ^ _SECRET_SALT)
    secret_a = bytes(rng.randrange(256) for _ in range(SECRET_SIZE))
    flipped = bytearray(secret_a)
    for byte in sorted({b for _, b in program.secret_loads}):
        flipped[byte] ^= 1 + rng.randrange(255)
    secret_b = bytes(flipped)
    # Normalize the base program's data so variant A *is* the program
    # as serialized (replay of the bare program matches variant A).
    data = program.data.ljust(SECRET_OFFSET, b"\x00")[:SECRET_OFFSET]
    program = program.with_(data=data + secret_a)
    return RelationalPair(program=program, secret_a=secret_a,
                          secret_b=secret_b)


# -- checking --------------------------------------------------------------


@dataclass
class ContractVerdict:
    """Everything the relational oracle concluded about one pair."""

    pair: RelationalPair
    contract: Contract
    mitigation: Mitigation
    uarches: tuple[str, ...]
    divergences: list[Divergence] = field(default_factory=list)
    traces: dict = field(default_factory=dict)  # (uarch, "a"|"b") -> LeakTrace

    @property
    def ok(self) -> bool:
        return not self.divergences

    @property
    def classes(self) -> tuple[str, ...]:
        return tuple(sorted({d.klass for d in self.divergences}))

    @property
    def contract_classes(self) -> tuple[str, ...]:
        return tuple(c for c in self.classes if c.startswith("contract/"))

    def to_dict(self) -> dict:
        return {"pair": self.pair.name, "contract": self.contract.name,
                "mitigation": self.mitigation.name, "ok": self.ok,
                "classes": list(self.classes),
                "divergences": [str(d) for d in self.divergences]}


def _run_variant(variant: FuzzProgram, uarch, mitigation: Mitigation,
                 report: list[Divergence]) -> LeakTrace:
    """Run one variant on both engines; cross-check them; return the
    fast engine's leak trace."""
    slow_world = build_world(variant, uarch, fastpath=False,
                             mitigations=mitigation.config)
    slow_world.cpu.record_episodes = True
    slow = run_world(slow_world)
    fast_world = build_world(variant, uarch, fastpath=True,
                             mitigations=mitigation.config)
    fast_world.cpu.record_episodes = True
    fast = run_world(fast_world)
    for diff in compare_observables(slow, fast):
        report.append(Divergence("engine", uarch.name, diff))
    slow_trace = capture(slow_world.cpu, slow_world.mem)
    fast_trace = capture(fast_world.cpu, fast_world.mem)
    for channel, summary in slow_trace.diff(fast_trace):
        report.append(Divergence("engine", uarch.name,
                                 f"trace-{channel}: {summary}"))
    return fast_trace


def check_pair(pair: RelationalPair, contract: Contract,
               uarches: Sequence[str] = DEFAULT_UARCHES, *,
               mitigation: Mitigation | None = None) -> ContractVerdict:
    """Run the pair under *contract* across the µarch matrix.

    *mitigation* overrides the contract's default mitigation setting
    (the ``repro fuzz --contract C --mitigation M`` axis: does mitigation
    M uphold contract C's clause?).
    """
    effective = mitigation if mitigation is not None \
        else contract.resolve_mitigation()
    verdict = ContractVerdict(pair=pair, contract=contract,
                              mitigation=effective,
                              uarches=tuple(uarches))
    report = verdict.divergences
    for name in uarches:
        uarch = by_name(name)
        trace_a = _run_variant(pair.variant_a, uarch, effective, report)
        trace_b = _run_variant(pair.variant_b, uarch, effective, report)
        verdict.traces[(name, "a")] = trace_a
        verdict.traces[(name, "b")] = trace_b
        for channel, summary in trace_a.diff(trace_b, contract.protects):
            report.append(Divergence("contract", uarch.name,
                                     f"{channel}: {summary}"))
    return verdict


def check_pair_range(campaign_seed: int, start: int, stop: int,
                     contract: Contract,
                     uarches: Sequence[str] = DEFAULT_UARCHES, *,
                     shape: str | None = None,
                     mitigation: Mitigation | None = None
                     ) -> list[ContractVerdict]:
    """Generate and check pairs *start*..*stop* of a campaign."""
    verdicts = []
    for index in range(start, stop):
        pair = generate_pair(pair_seed(campaign_seed, index), shape)
        verdicts.append(check_pair(pair, contract, uarches,
                                   mitigation=mitigation))
    return verdicts


# -- campaign --------------------------------------------------------------


@dataclass(frozen=True)
class ContractExperiment:
    """The contract sweep as a campaign, sharded like
    :class:`~repro.fuzz.oracle.FuzzExperiment`: fixed-size seed-range
    chunks, worker-count-independent manifests."""

    seed: int = 0
    count: int = 50
    contract: str = "no-leak"
    shape: str | None = None
    uarches: tuple[str, ...] = DEFAULT_UARCHES
    mitigation: str | None = None     # override; None = contract default
    name: str = "contract-fuzz"

    def resolve(self) -> tuple[Contract, Mitigation | None]:
        contract = contract_by_name(self.contract)
        override = mitigation_by_name(self.mitigation) \
            if self.mitigation is not None else None
        return contract, override

    def campaign_config(self) -> dict:
        return {"seed": self.seed, "count": self.count,
                "contract": self.contract, "shape": self.shape,
                "uarches": list(self.uarches),
                "mitigation": self.mitigation}

    def job_specs(self) -> list[JobSpec]:
        return [
            JobSpec.make("contract", key=(index,),
                         seed=derive_seed(self.seed, ("chunk", index)),
                         start=start, stop=stop)
            for index, start, stop in chunked(self.count, CHUNK)
        ]

    def run_one(self, spec: JobSpec, ctx) -> list[dict]:
        contract, override = self.resolve()
        verdicts = check_pair_range(self.seed, spec.param("start"),
                                    spec.param("stop"), contract,
                                    self.uarches, shape=self.shape,
                                    mitigation=override)
        return [
            {"index": spec.param("start") + offset, **verdict.to_dict()}
            for offset, verdict in enumerate(verdicts)
        ]

    def reduce(self, results) -> dict:
        rows = [row for value in values(results) for row in value]
        violations = [row for row in rows if not row["ok"]]
        classes = sorted({klass for row in violations
                          for klass in row["classes"]})
        return {"pairs": len(rows), "violations": violations,
                "violated_indices": [row["index"] for row in violations],
                "classes": classes}


# -- pair persistence ------------------------------------------------------


def save_pair(pair: RelationalPair, directory: Path | str) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"pair-{pair.name}.json"
    path.write_text(json.dumps(pair.to_dict(), indent=2,
                               sort_keys=False) + "\n")
    return path


def load_pair(path: Path | str) -> RelationalPair:
    """Load a pair from a pair document **or** a violation artifact."""
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") == "phantom.contract-violation/1":
        doc = doc["pair"]
    return RelationalPair.from_dict(doc)
