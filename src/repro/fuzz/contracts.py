"""Leakage contracts: which observables may depend on secret inputs.

A **contract** is the unit of relational (model-based) testing à la
Revizor/sca-fuzzer: it names a mitigation setting (from
:data:`repro.kernel.mitigations.MITIGATIONS`) and an **observer
clause** — the subset of :data:`~repro.sidechannel.leaktrace.CHANNELS`
the contract *protects*.  Running a public-equivalent, secret-divergent
input pair under the contract's mitigations and finding any protected
channel differing between the two :class:`LeakTrace` records is a
**contract violation**: the system leaks a secret through a channel the
contract declares closed, whether the mechanism is speculative (a
phantom fetch of a secret-correlated target) or architectural (a
secret-indexed load).  Channels outside the clause are *permitted* to
depend on secrets — that is the contract's honest statement of residual
leakage (SuppressBPOnNonBr, for example, still permits the whole
instruction-fetch side: O4).

Violations ship as ``phantom.contract-violation/1`` artifacts
(:func:`violation_document` / :func:`save_violation`), validated
against :data:`repro.telemetry.schema.CONTRACT_VIOLATION_JSON_SCHEMA`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..kernel.mitigations import (Mitigation, MitigationConfig,
                                  mitigation_by_name)
from ..sidechannel.leaktrace import CHANNELS

#: Schema tag on shipped violation artifacts.
VIOLATION_SCHEMA = "phantom.contract-violation/1"


@dataclass(frozen=True)
class Contract:
    """One leakage contract: (mitigation setting, observer clause)."""

    name: str
    #: Mitigation registry entry armed while checking this contract.
    mitigation: str
    #: Channels that must NOT depend on secret inputs.
    protects: tuple[str, ...]
    #: The µarch guarantee this contract is an executable statement of.
    claim: str

    def __post_init__(self) -> None:
        unknown = set(self.protects) - set(CHANNELS)
        if unknown:
            raise ValueError(f"contract {self.name}: unknown channels "
                             f"{sorted(unknown)}")

    @property
    def permits(self) -> tuple[str, ...]:
        """Channels the contract allows to depend on secrets."""
        return tuple(c for c in CHANNELS if c not in self.protects)

    def resolve_mitigation(self) -> Mitigation:
        return mitigation_by_name(self.mitigation)

    def mitigation_config(self) -> MitigationConfig:
        return self.resolve_mitigation().config

    def to_dict(self) -> dict:
        return {"name": self.name, "mitigation": self.mitigation,
                "protects": list(self.protects),
                "permits": list(self.permits), "claim": self.claim}


#: The contract registry.  Ordering is the docs/CLI presentation order.
CONTRACTS: tuple[Contract, ...] = (
    Contract(
        name="no-leak",
        mitigation="none",
        protects=CHANNELS,
        claim="Nothing attacker-visible may depend on secrets — the "
              "strictest clause; the bring-up finder that any leaking "
              "idiom violates."),
    Contract(
        name="no-if-leak",
        mitigation="none",
        protects=("icache", "l2"),
        claim="The instruction-fetch side (L1I/L2 code residue) is "
              "secret-independent.  Phantom's central result is that "
              "this fails on every tested µarch: a decoder-detectable "
              "misprediction fetches the predicted target before any "
              "mitigation can intervene."),
    Contract(
        name="suppress-bp-safe",
        mitigation="suppress-bp",
        protects=("dcache",),
        claim="With SuppressBPOnNonBr armed, prediction sites on "
              "non-branch bytes never reach transient execute, so no "
              "secret-dependent data access happens there (O4 — fetch "
              "and decode remain permitted, hence the narrow clause)."),
    Contract(
        name="auto-ibrs-safe",
        mitigation="auto-ibrs",
        protects=("dcache",),
        claim="With AutoIBRS armed (Zen 4), cross-privilege "
              "predictions are refused before execute, closing the "
              "data side; the fetch/decode of the predicted target "
              "still happens (O5)."),
    Contract(
        name="retbleed-safe",
        mitigation="rsb-stuffing",
        protects=("ret-episodes",),
        claim="With RSB stuffing on kernel entry, no return executes "
              "under a secret-dependent (or user-poisoned) return "
              "prediction — the episode log's ret slice is "
              "secret-independent."),
    Contract(
        name="ibpb-hardened",
        mitigation="ibpb",
        protects=("icache", "dcache", "l2"),
        claim="With IBPB on every kernel entry, injected predictions "
              "die before kernel code runs: no speculative cache "
              "residue may depend on secrets (§8.2)."),
)

_BY_NAME = {c.name: c for c in CONTRACTS}


def contract_names() -> tuple[str, ...]:
    return tuple(c.name for c in CONTRACTS)


def contract_by_name(name: str) -> Contract:
    """Resolve a contract, separator- and case-insensitive."""
    key = name.strip().lower().replace("_", "-").replace(" ", "-")
    try:
        return _BY_NAME[key]
    except KeyError:
        known = ", ".join(contract_names())
        raise ValueError(
            f"unknown contract {name!r} (one of: {known})") from None


# -- violation artifacts ---------------------------------------------------


def violation_document(pair, verdict, *, shrink_checks: int = 0) -> dict:
    """The ``phantom.contract-violation/1`` document for one violating
    pair (*verdict* is a :class:`~repro.fuzz.relational.ContractVerdict`).
    """
    contract = verdict.contract
    return {
        "schema": VIOLATION_SCHEMA,
        "contract": contract.name,
        "mitigation": verdict.mitigation.name,
        "uarches": list(verdict.uarches),
        "protects": list(contract.protects),
        "classes": list(verdict.classes),
        "divergences": [str(d) for d in verdict.divergences],
        "shrink_checks": shrink_checks,
        "pair": pair.to_dict(),
    }


def save_violation(pair, verdict, directory: Path | str, *,
                   shrink_checks: int = 0) -> Path:
    """Write one violation artifact; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    doc = violation_document(pair, verdict, shrink_checks=shrink_checks)
    path = directory / f"violation-{verdict.contract.name}-{pair.name}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    return path
