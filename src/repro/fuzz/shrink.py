"""Delta-debugging shrinker: minimize a failing program while
preserving its failure class.

The oracle's :attr:`~repro.fuzz.oracle.Divergence.klass` strings (kind
+ µarch + differing field / violated invariant) define "the same bug";
a candidate reduction is accepted when it still produces at least one
of the original classes.  Reductions that no longer assemble (dangling
``imm_label``, out-of-range displacement, ...) simply fail the
predicate and are rejected.

Passes, in order of expected payoff:

1. drop self-modifying patches (and shrink the run count to match),
2. ddmin over the user instruction list — chunks first, then single
   items; a removed item's labels migrate to its successor so every
   branch target keeps resolving (the final ``hlt`` is never removed),
3. ddmin over the kernel stub (the trailing ``sysret`` is kept),
4. neutralize surviving instructions to single-byte nops,
5. truncate the data region.

Every oracle evaluation is counted against ``max_checks`` so shrinking
a pathological input stays time-boxed; the partially-shrunk program is
returned when the budget runs out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .oracle import DEFAULT_UARCHES, Verdict, check_program
from .program import FuzzProgram, InstrSpec, Item, Patch


@dataclass
class ShrinkResult:
    program: FuzzProgram
    checks: int
    items_before: int
    items_after: int

    @property
    def reduced(self) -> bool:
        return self.items_after < self.items_before


class _Budget:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    @property
    def exhausted(self) -> bool:
        return self.used >= self.limit

    def spend(self) -> None:
        self.used += 1


def _without_items(items: Sequence[Item], removed: set[int]) -> tuple[Item, ...]:
    """Drop *removed* indices; their labels migrate to the next kept
    item (the caller guarantees the last index is never removed)."""
    out: list[Item] = []
    carry: list[str] = []
    for index, item in enumerate(items):
        if index in removed:
            carry.extend(item.labels)
            continue
        if carry:
            item = Item(instr=item.instr,
                        labels=tuple(carry) + item.labels)
            carry = []
        out.append(item)
    return tuple(out)


def _drop_user_items(program: FuzzProgram,
                     removed: set[int]) -> FuzzProgram:
    remap: dict[int, int] = {}
    kept = 0
    for index in range(len(program.user_items)):
        if index not in removed:
            remap[index] = kept
            kept += 1
    patches = tuple(
        Patch(before_run=p.before_run, index=remap[p.index], instr=p.instr)
        for p in program.patches if p.index not in removed)
    runs = program.runs if patches else 1
    # Secret-operand annotations are positional like patches: deleted
    # loads lose their annotation, surviving ones follow their item.
    secret_loads = tuple(
        (remap[index], byte) for index, byte in program.secret_loads
        if index not in removed)
    return program.with_(user_items=_without_items(program.user_items,
                                                   removed),
                         patches=patches, runs=runs,
                         secret_loads=secret_loads)


def _sweep(size: int, keep_last: bool, attempt, budget: _Budget) -> bool:
    """One left-to-right pass trying to remove chunks of *size*."""
    removed_any = False
    start = 0
    while not budget.exhausted:
        length = attempt.current_length()
        limit = length - 1 if keep_last else length
        if start >= limit:
            break
        stop = min(start + size, limit)
        if attempt(set(range(start, stop))):
            removed_any = True
            # indices shifted left; retry the same start
        else:
            start = stop
    return removed_any


class _ItemReducer:
    """Stateful removal attempt over one item list of the program."""

    def __init__(self, program: FuzzProgram, which: str,
                 predicate, budget: _Budget) -> None:
        self.program = program
        self.which = which
        self.predicate = predicate
        self.budget = budget

    def current_length(self) -> int:
        return len(getattr(self.program, self.which))

    def __call__(self, removed: set[int]) -> bool:
        if not removed:
            return False
        self.budget.spend()
        if self.which == "user_items":
            candidate = _drop_user_items(self.program, removed)
        else:
            items = _without_items(self.program.kernel_items, removed)
            candidate = self.program.with_(kernel_items=items)
        if self.predicate(candidate):
            self.program = candidate
            return True
        return False


def _reduce_items(program: FuzzProgram, which: str, keep_last: bool,
                  predicate, budget: _Budget) -> FuzzProgram:
    reducer = _ItemReducer(program, which, predicate, budget)
    size = max(1, reducer.current_length() // 2)
    while size >= 1 and not budget.exhausted:
        removed_any = _sweep(size, keep_last, reducer, budget)
        if size == 1:
            if not removed_any:
                break
            continue  # single-item pass again until quiescent
        size //= 2
    return reducer.program


def _drop_patches(program: FuzzProgram, predicate,
                  budget: _Budget) -> FuzzProgram:
    # All at once first, then one by one.
    if program.patches and not budget.exhausted:
        budget.spend()
        candidate = program.with_(patches=(), runs=1)
        if predicate(candidate):
            return candidate
    index = 0
    while index < len(program.patches) and not budget.exhausted:
        budget.spend()
        remaining = tuple(p for i, p in enumerate(program.patches)
                          if i != index)
        runs = (max(p.before_run for p in remaining) + 1) if remaining else 1
        candidate = program.with_(patches=remaining, runs=runs)
        if predicate(candidate):
            program = candidate
        else:
            index += 1
    return program


def _neutralize_items(program: FuzzProgram, predicate,
                      budget: _Budget) -> FuzzProgram:
    """Replace surviving instructions with single-byte nops."""
    patched = {p.index for p in program.patches}
    nop = InstrSpec("nop")
    for index in range(len(program.user_items) - 1):  # keep final hlt
        if budget.exhausted:
            break
        item = program.user_items[index]
        if item.instr == nop or index in patched:
            continue
        budget.spend()
        items = list(program.user_items)
        items[index] = Item(instr=nop, labels=item.labels)
        candidate = program.with_(
            user_items=tuple(items),
            secret_loads=tuple(entry for entry in program.secret_loads
                               if entry[0] != index))
        if predicate(candidate):
            program = candidate
    return program


def _truncate_data(program: FuzzProgram, predicate,
                   budget: _Budget) -> FuzzProgram:
    while program.data and not budget.exhausted:
        budget.spend()
        candidate = program.with_(data=program.data[:len(program.data) // 2])
        if predicate(candidate):
            program = candidate
        else:
            break
    return program


def shrink(program: FuzzProgram, verdict: Verdict, *,
           uarches: Sequence[str] = DEFAULT_UARCHES,
           invariants: bool = True,
           max_checks: int = 250) -> ShrinkResult:
    """Minimize *program* while at least one of *verdict*'s divergence
    classes keeps reproducing."""
    classes = set(verdict.classes)
    if not classes:
        raise ValueError("cannot shrink a passing program")
    budget = _Budget(max_checks)

    def predicate(candidate: FuzzProgram) -> bool:
        try:
            result = check_program(candidate, uarches,
                                   invariants=invariants)
        except Exception:
            return False  # malformed reduction: reject
        return bool(set(result.classes) & classes)

    items_before = len(program.user_items)
    program = _drop_patches(program, predicate, budget)
    program = _reduce_items(program, "user_items", True, predicate, budget)
    if program.kernel_items:
        program = _reduce_items(program, "kernel_items", True, predicate,
                                budget)
    program = _neutralize_items(program, predicate, budget)
    program = _truncate_data(program, predicate, budget)
    shrunk = program.with_(
        description=(program.description + " " if program.description
                     else "") + f"shrunk; classes: {sorted(classes)}")
    return ShrinkResult(program=shrunk, checks=budget.used,
                        items_before=items_before,
                        items_after=len(shrunk.user_items))


# -- relational (pair) shrinking -------------------------------------------


@dataclass
class PairShrinkResult:
    pair: "RelationalPair"
    checks: int
    items_before: int
    items_after: int

    @property
    def reduced(self) -> bool:
        return self.items_after < self.items_before


def shrink_pair(pair, verdict, *,
                uarches: Sequence[str] = DEFAULT_UARCHES,
                mitigation=None, max_checks: int = 250) -> PairShrinkResult:
    """Minimize a contract-violating pair while the violating
    contract+observer class keeps reproducing.

    Reuses the program passes (patches, ddmin, neutralize) with a
    pair-level predicate — every candidate runs both variants under the
    verdict's contract.  The data region is **not** truncated: the
    secret region is the relational input and must survive.  A final
    one-shot pass aligns ``secret_b`` with ``secret_a`` at every secret
    byte the shrunk program no longer reads, so the shipped pair
    differs only where it matters.
    """
    from .relational import check_pair  # local: avoid import cycle risk

    contract = verdict.contract
    classes = set(verdict.contract_classes) or set(verdict.classes)
    if not classes:
        raise ValueError("cannot shrink a contract-satisfying pair")
    budget = _Budget(max_checks)

    def pair_ok(candidate) -> bool:
        try:
            result = check_pair(candidate, contract, uarches,
                                mitigation=mitigation)
        except Exception:
            return False  # malformed reduction: reject
        return bool(set(result.classes) & classes)

    current = pair
    items_before = len(current.program.user_items)

    def predicate(candidate_program: FuzzProgram) -> bool:
        return pair_ok(current.with_(program=candidate_program))

    program = _drop_patches(current.program, predicate, budget)
    program = _reduce_items(program, "user_items", True, predicate, budget)
    if program.kernel_items:
        program = _reduce_items(program, "kernel_items", True, predicate,
                                budget)
    program = _neutralize_items(program, predicate, budget)
    current = current.with_(program=program)

    # Align unread secret bytes (one shot): keep b != a only at bytes
    # the surviving annotated loads consume.
    consumed = set(current.consumed)
    aligned = bytes(b if index in consumed else a
                    for index, (a, b)
                    in enumerate(zip(current.secret_a, current.secret_b)))
    if aligned != current.secret_b and not budget.exhausted:
        budget.spend()
        candidate = current.with_(secret_b=aligned)
        if pair_ok(candidate):
            current = candidate

    shrunk_program = current.program.with_(
        description=(current.program.description + " "
                     if current.program.description else "")
        + f"shrunk; classes: {sorted(classes)}")
    current = current.with_(program=shrunk_program)
    return PairShrinkResult(pair=current, checks=budget.used,
                            items_before=items_before,
                            items_after=len(shrunk_program.user_items))
