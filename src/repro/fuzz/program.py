"""Serializable fuzz programs: the unit the generator, oracle and
shrinker all speak.

A :class:`FuzzProgram` is a tiny two-world program — user code, an
optional nano-kernel syscall stub, an initialized data region, initial
registers — described entirely by plain data so that it can cross the
process-pool boundary, be committed to ``tests/fuzz/corpus/`` as JSON,
and rebuild *bit-identical* images on every replay.  Instructions are
:class:`InstrSpec` records (mnemonic + operands by name) rather than
encoded bytes, which keeps corpus entries reviewable and lets the
shrinker drop or neutralize single instructions without byte surgery.

Branch targets and address immediates are **labels**, resolved at build
time:

* ``target`` — a label the instruction's displacement points at
  (``jmp``/``jcc``/``call``/``jmp8``);
* ``imm_label`` — a label whose absolute address becomes the ``mov_ri``
  immediate (how generated programs materialize indirect-branch
  targets).

Because every implemented encoding has a displacement-independent
length, the build runs two passes: pass one lays the program out with
placeholder immediates to learn the symbol table, pass two re-emits
with ``imm_label`` immediates resolved — layout identical by
construction.

Self-modifying behaviour is modelled as :class:`Patch` events: before
run *k*, the bytes of one item are rewritten in place (shorter
encodings are nop-padded), exercising ``CPU.invalidate_code`` exactly
as :meth:`repro.kernel.Machine.write_user` does.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

from ..errors import ReproError
from ..isa import Assembler, Cond, Image, Instruction, Mnemonic, Reg, encode
from ..params import PAGE_SIZE

#: Schema tag written into corpus entries.
PROGRAM_SCHEMA = "phantom.fuzz-program/1"

#: Fixed fuzz-world layout (user addresses mirror the attacker process
#: of :mod:`repro.kernel.machine`, kernel addresses sit in their own
#: supervisor region so syscall-crossing programs change privilege).
USER_CODE = 0x0000_0000_1400_0000
USER_CODE_PAGES = 4
USER_DATA = 0x0000_0000_1500_0000
USER_DATA_PAGES = 2
USER_STACK_TOP = 0x0000_7FFF_E000_0000
USER_STACK_PAGES = 8
KERNEL_CODE = 0xFFFF_FFFF_9100_0000
KERNEL_CODE_PAGES = 2
KERNEL_STACK_TOP = 0xFFFF_FFFF_9200_0000
KERNEL_STACK_PAGES = 4

#: Secret-region convention for relational (contract) fuzzing: the tail
#: of the 512-byte initialized data blob is the secret input, the head
#: is public.  Pairs that agree on ``data[:SECRET_OFFSET]`` are
#: public-equivalent by construction (see repro.fuzz.relational).
SECRET_OFFSET = 256
SECRET_SIZE = 256

#: Mnemonics whose displacement is a label-resolved branch target.
_LABEL_BRANCHES = frozenset({Mnemonic.JMP, Mnemonic.JMP_SHORT, Mnemonic.JCC,
                             Mnemonic.CALL})


class FuzzProgramError(ReproError):
    """A program record is malformed or cannot be laid out."""


@dataclass(frozen=True)
class InstrSpec:
    """One instruction, operands by name (JSON- and pickle-friendly)."""

    mnemonic: str
    dest: str | None = None
    src: str | None = None
    base: str | None = None
    imm: int | None = None
    disp: int = 0
    cc: str | None = None
    target: str | None = None        # label for branch displacement
    imm_label: str | None = None     # label address -> imm (mov_ri)

    def to_dict(self) -> dict:
        out: dict = {"mnemonic": self.mnemonic}
        for name in ("dest", "src", "base", "imm", "cc", "target",
                     "imm_label"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        if self.disp:
            out["disp"] = self.disp
        return out

    @classmethod
    def from_dict(cls, doc: dict) -> "InstrSpec":
        known = {"mnemonic", "dest", "src", "base", "imm", "disp", "cc",
                 "target", "imm_label"}
        unknown = set(doc) - known
        if unknown:
            raise FuzzProgramError(f"unknown InstrSpec fields: {unknown}")
        return cls(**doc)

    # -- resolution ------------------------------------------------------

    def _reg(self, name: str | None) -> Reg | None:
        if name is None:
            return None
        try:
            return Reg[name.upper()]
        except KeyError:
            raise FuzzProgramError(f"unknown register {name!r}") from None

    def resolve(self, symbols: dict[str, int] | None = None) -> Instruction:
        """Build the :class:`Instruction` (labels resolved via *symbols*,
        or placeholder-zero when *symbols* is None — the layout pass)."""
        try:
            mnemonic = Mnemonic(self.mnemonic)
        except ValueError:
            raise FuzzProgramError(
                f"unknown mnemonic {self.mnemonic!r}") from None
        cc = Cond[self.cc.upper()] if self.cc is not None else None
        imm = self.imm
        if self.imm_label is not None:
            if mnemonic is not Mnemonic.MOV_RI:
                raise FuzzProgramError(
                    f"imm_label only valid on mov_ri, not {self.mnemonic}")
            imm = 0 if symbols is None else symbols[self.imm_label]
        return Instruction(mnemonic, dest=self._reg(self.dest),
                           src=self._reg(self.src), base=self._reg(self.base),
                           imm=imm, disp=self.disp, cc=cc)

    @property
    def is_label_branch(self) -> bool:
        return self.target is not None


@dataclass(frozen=True)
class Item:
    """One program slot: the labels that land here plus one instruction.

    Labels belong to the *position*, not the instruction — the shrinker
    moves a removed item's labels onto its successor so every branch
    target keeps resolving.
    """

    instr: InstrSpec
    labels: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        out = self.instr.to_dict()
        if self.labels:
            out["labels"] = list(self.labels)
        return out

    @classmethod
    def from_dict(cls, doc: dict) -> "Item":
        doc = dict(doc)
        labels = tuple(doc.pop("labels", ()))
        return cls(instr=InstrSpec.from_dict(doc), labels=labels)


@dataclass(frozen=True)
class Patch:
    """Rewrite item *index*'s bytes before run *before_run* (≥ 1)."""

    before_run: int
    index: int
    instr: InstrSpec

    def to_dict(self) -> dict:
        return {"before_run": self.before_run, "index": self.index,
                "instr": self.instr.to_dict()}

    @classmethod
    def from_dict(cls, doc: dict) -> "Patch":
        return cls(before_run=doc["before_run"], index=doc["index"],
                   instr=InstrSpec.from_dict(doc["instr"]))


@dataclass(frozen=True)
class FuzzProgram:
    """A complete, replayable fuzz input."""

    name: str
    seed: int
    shape: str
    user_items: tuple[Item, ...]
    kernel_items: tuple[Item, ...] = ()
    regs: tuple[tuple[str, int], ...] = ()
    data: bytes = b""
    patches: tuple[Patch, ...] = ()
    runs: int = 1
    max_instructions: int = 4000
    description: str = ""
    #: Secret-operand annotations: ``(item_index, secret_byte)`` pairs
    #: marking user items that load byte ``secret_byte`` of the secret
    #: region (``data[SECRET_OFFSET + secret_byte]``).  The relational
    #: pair generator writes them; the shrinker must keep them pointing
    #: at the surviving loads when items are dropped.
    secret_loads: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if not self.user_items:
            raise FuzzProgramError("program has no user items")
        for index, secret_byte in self.secret_loads:
            if not 0 <= index < len(self.user_items):
                raise FuzzProgramError(
                    f"secret_loads index {index} out of range")
            if not 0 <= secret_byte < SECRET_SIZE:
                raise FuzzProgramError(
                    f"secret byte {secret_byte} outside the secret "
                    f"region (0..{SECRET_SIZE - 1})")
        if len(self.data) > USER_DATA_PAGES * PAGE_SIZE:
            raise FuzzProgramError("data exceeds the mapped data region")
        for patch in self.patches:
            if not 1 <= patch.before_run < self.runs:
                raise FuzzProgramError(
                    f"patch before_run {patch.before_run} outside "
                    f"1..{self.runs - 1}")
            if not 0 <= patch.index < len(self.user_items):
                raise FuzzProgramError(
                    f"patch index {patch.index} out of range")

    # -- derived properties ---------------------------------------------

    @property
    def uses_rdtsc(self) -> bool:
        """True when any executed instruction reads the cycle counter —
        such programs have *legitimately* timing-dependent architecture,
        so the no-speculation memory invariant does not apply."""
        specs = [item.instr for item in self.user_items]
        specs += [item.instr for item in self.kernel_items]
        specs += [patch.instr for patch in self.patches]
        return any(spec.mnemonic == Mnemonic.RDTSC.value for spec in specs)

    def initial_regs(self) -> dict[Reg, int]:
        return {Reg[name.upper()]: value for name, value in self.regs}

    # -- layout ----------------------------------------------------------

    def _assemble(self, items: tuple[Item, ...], base: int,
                  symbols: dict[str, int] | None) -> tuple:
        """One layout pass.  Returns ``(segment, symbols, item_pcs)``."""
        asm = Assembler(base)
        item_pcs: list[int] = []
        for item in items:
            for label in item.labels:
                asm.label(label)
            item_pcs.append(asm.pc)
            spec = item.instr
            if spec.is_label_branch:
                instr = spec.resolve(symbols)
                method = {Mnemonic.JMP: asm.jmp,
                          Mnemonic.JMP_SHORT: asm.jmp_short,
                          Mnemonic.CALL: asm.call}.get(instr.mnemonic)
                if instr.mnemonic is Mnemonic.JCC:
                    asm.jcc(instr.cc, spec.target)
                elif method is not None:
                    method(spec.target)
                else:
                    raise FuzzProgramError(
                        f"{spec.mnemonic} cannot take a label target")
            else:
                asm.emit(spec.resolve(symbols))
        segment, segment_symbols = asm.finish()
        return segment, segment_symbols, item_pcs


    def build(self) -> "BuiltProgram":
        """Lay the program out into loadable images (two passes: learn
        the symbol table, then resolve ``imm_label`` immediates)."""
        user_seg, user_syms, _ = self._assemble(self.user_items,
                                                USER_CODE, None)
        kernel_syms: dict[str, int] = {}
        if self.kernel_items:
            _, kernel_syms, _ = self._assemble(self.kernel_items,
                                               KERNEL_CODE, None)
        symbols = {**user_syms, **kernel_syms}

        user_seg, _, user_pcs = self._assemble(self.user_items, USER_CODE,
                                               symbols)
        if user_seg.end > USER_CODE + USER_CODE_PAGES * PAGE_SIZE:
            raise FuzzProgramError("user code exceeds the mapped region")
        user_image = Image()
        user_image.add(user_seg, user_syms)

        kernel_image = None
        if self.kernel_items:
            kernel_seg, _, _ = self._assemble(self.kernel_items,
                                              KERNEL_CODE, symbols)
            if kernel_seg.end > KERNEL_CODE + KERNEL_CODE_PAGES * PAGE_SIZE:
                raise FuzzProgramError(
                    "kernel stub exceeds the mapped region")
            kernel_image = Image()
            kernel_image.add(kernel_seg, kernel_syms)

        item_lengths = []
        for index, pc in enumerate(user_pcs):
            end = user_pcs[index + 1] if index + 1 < len(user_pcs) \
                else user_seg.end
            item_lengths.append(end - pc)
        return BuiltProgram(program=self, user_image=user_image,
                            kernel_image=kernel_image, symbols=symbols,
                            item_pcs=tuple(user_pcs),
                            item_lengths=tuple(item_lengths))

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": PROGRAM_SCHEMA,
            "name": self.name,
            "seed": self.seed,
            "shape": self.shape,
            "description": self.description,
            "runs": self.runs,
            "max_instructions": self.max_instructions,
            "regs": {name: value for name, value in self.regs},
            "data": self.data.hex(),
            "user_items": [item.to_dict() for item in self.user_items],
            "kernel_items": [item.to_dict() for item in self.kernel_items],
            "patches": [patch.to_dict() for patch in self.patches],
            **({"secret_loads": [list(entry)
                                 for entry in self.secret_loads]}
               if self.secret_loads else {}),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FuzzProgram":
        if doc.get("schema") != PROGRAM_SCHEMA:
            raise FuzzProgramError(
                f"not a {PROGRAM_SCHEMA} document: {doc.get('schema')!r}")
        return cls(
            name=doc["name"], seed=doc["seed"], shape=doc["shape"],
            description=doc.get("description", ""),
            runs=doc.get("runs", 1),
            max_instructions=doc.get("max_instructions", 4000),
            regs=tuple(sorted(doc.get("regs", {}).items())),
            data=bytes.fromhex(doc.get("data", "")),
            user_items=tuple(Item.from_dict(d) for d in doc["user_items"]),
            kernel_items=tuple(Item.from_dict(d)
                               for d in doc.get("kernel_items", ())),
            patches=tuple(Patch.from_dict(d)
                          for d in doc.get("patches", ())),
            secret_loads=tuple((index, byte) for index, byte
                               in doc.get("secret_loads", ())),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FuzzProgram":
        return cls.from_dict(json.loads(text))

    def with_(self, **changes) -> "FuzzProgram":
        return replace(self, **changes)


@dataclass(frozen=True)
class BuiltProgram:
    """A laid-out program: images, symbols, and per-item addresses."""

    program: FuzzProgram
    user_image: Image
    kernel_image: Image | None
    symbols: dict[str, int] = field(default_factory=dict)
    item_pcs: tuple[int, ...] = ()
    item_lengths: tuple[int, ...] = ()

    @property
    def entry(self) -> int:
        return USER_CODE

    @property
    def kernel_entry(self) -> int | None:
        return KERNEL_CODE if self.kernel_image is not None else None

    def patch_bytes(self, patch: Patch) -> tuple[int, bytes]:
        """Encode *patch* for in-place rewrite: ``(address, bytes)``.

        The replacement must fit the patched item's span; shorter
        encodings are padded with single-byte nops so the following
        instruction keeps its address.
        """
        pc = self.item_pcs[patch.index]
        span = self.item_lengths[patch.index]
        spec = patch.instr
        instr = spec.resolve(self.symbols)
        if spec.is_label_branch:
            target = self.symbols[spec.target]
            placeholder = encode(instr)
            disp = target - (pc + len(placeholder))
            instr = replace(instr, disp=disp)
        raw = encode(instr)
        if len(raw) > span:
            raise FuzzProgramError(
                f"patch at item {patch.index} is {len(raw)} bytes, "
                f"item span is {span}")
        return pc, raw + b"\x90" * (span - len(raw))
