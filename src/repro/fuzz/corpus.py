"""Regression corpus: committed reproducers and their on-disk format.

Corpus entries are :data:`~repro.fuzz.program.PROGRAM_SCHEMA` JSON
documents.  Two sources feed the directory:

* the **seed corpus** — one generated program per generator shape,
  pinned by ``(shape, seed)`` in :data:`SEED_CORPUS` and regenerated
  bit-identically by :func:`seed_corpus` (a committed entry that stops
  matching its pin means the generator changed — version the pin, do
  not silently regenerate);
* **minimized counterexamples** — shrunk failing programs written by
  ``repro fuzz`` when the oracle diverges; commit them after fixing the
  bug so the regression replays forever in tier-1
  (``tests/fuzz/test_corpus_replay.py``).
"""

from __future__ import annotations

import json
from pathlib import Path

from .gen import generate
from .program import FuzzProgram

#: Schema tag for minimized counterexamples written by ``repro fuzz``.
COUNTEREXAMPLE_SCHEMA = "phantom.fuzz-counterexample/1"

#: The committed seed corpus: one pinned program per generator shape.
#: Seeds were chosen so the set covers distinct outcomes (clean halts,
#: multi-run self-modifying programs, a user page fault) — see
#: tests/fuzz/test_corpus_replay.py.
SEED_CORPUS: tuple[tuple[str, int], ...] = (
    ("branchy", 9),     # episode-rich loop nest, clean halt
    ("alias", 14),      # overlapping pointers, store-forwarding heavy
    ("straddle", 17),   # code + data page-boundary straddles
    ("syscall", 4),     # kernel crossings, ends in a user page fault
    ("smc", 5),         # three runs, two code rewrites between them
    ("mixed", 16),      # kernel stub + dense speculation
)


def seed_corpus() -> list[FuzzProgram]:
    """Regenerate the pinned seed corpus."""
    return [generate(seed, shape) for shape, seed in SEED_CORPUS]


def save_program(program: FuzzProgram, directory: Path | str) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{program.name}.json"
    path.write_text(program.to_json())
    return path


def load_program(path: Path | str) -> FuzzProgram:
    """Load a corpus entry — a plain program document or a
    counterexample document wrapping one."""
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") == COUNTEREXAMPLE_SCHEMA:
        doc = doc["program"]
    return FuzzProgram.from_dict(doc)


def save_counterexample(program: FuzzProgram, divergences: list[str],
                        directory: Path | str, *,
                        shrink_checks: int = 0) -> Path:
    """Write a minimized failing program plus its oracle findings."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    doc = {
        "schema": COUNTEREXAMPLE_SCHEMA,
        "divergences": divergences,
        "shrink_checks": shrink_checks,
        "program": program.to_dict(),
    }
    path = directory / f"counterexample-{program.name}.json"
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


#: Schemas iter_corpus silently skips: relational-pair documents and
#: contract-violation artifacts live in the same directory but replay
#: through tests/fuzz/test_contract_corpus.py, not the program oracle.
_RELATIONAL_SCHEMAS = ("phantom.fuzz-pair/1", "phantom.contract-violation/1")


def iter_corpus(directory: Path | str) -> list[tuple[Path, FuzzProgram]]:
    """All *program* corpus entries under *directory*, sorted by file
    name (relational pair / violation documents are skipped)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    entries = []
    for path in sorted(directory.glob("*.json")):
        doc = json.loads(path.read_text())
        if doc.get("schema") in _RELATIONAL_SCHEMAS:
            continue
        entries.append((path, load_program(path)))
    return entries


def iter_pair_corpus(directory: Path | str) -> list[tuple[Path, dict]]:
    """All relational documents (pairs and violation artifacts) under
    *directory* as raw docs, sorted by file name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    entries = []
    for path in sorted(directory.glob("*.json")):
        doc = json.loads(path.read_text())
        if doc.get("schema") in _RELATIONAL_SCHEMAS:
            entries.append((path, doc))
    return entries


def write_seed_corpus(directory: Path | str) -> list[Path]:
    """(Re)write the pinned seed corpus into *directory*."""
    return [save_program(program, directory) for program in seed_corpus()]
