"""Exception hierarchy for the phantom-repro simulator."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all simulator errors."""


class EncodingError(ReproError):
    """An instruction could not be encoded."""


class DecodeError(ReproError):
    """A byte sequence does not decode to a valid instruction."""


class TruncatedError(DecodeError):
    """The buffer ended before the instruction did (more bytes needed)."""


class AssemblerError(ReproError):
    """Program construction failed (duplicate label, overlap, ...)."""


class MemoryError_(ReproError):
    """Physical memory access outside the installed range."""


class PageFault(ReproError):
    """A virtual memory access violated the page tables.

    Attributes mirror the x86 page-fault error code: *present* (the
    translation existed but permissions failed), *write*, *user*
    (access originated in user mode), *exec* (instruction fetch).
    """

    def __init__(self, va: int, *, present: bool, write: bool = False,
                 user: bool = False, exec_: bool = False) -> None:
        self.va = va
        self.present = present
        self.write = write
        self.user = user
        self.exec_ = exec_
        kind = "exec" if exec_ else ("write" if write else "read")
        mode = "user" if user else "supervisor"
        why = "protection" if present else "not-present"
        super().__init__(f"page fault: {kind} of {va:#x} from {mode} ({why})")


class GeneralProtectionFault(ReproError):
    """Privilege violation that is not a paging problem (e.g. bad sysret)."""


class HaltRequested(ReproError):
    """The running program executed ``hlt`` (normal program exit)."""


class SimulationLimit(ReproError):
    """The cycle or instruction budget for a run was exhausted."""
