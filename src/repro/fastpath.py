"""Fast-path execution gate.

The simulator ships two architecturally identical execution engines: the
naive per-step interpreter and a fast path built on compiled step thunks
plus translation memoization (see ``docs/performance.md``).  The
``PHANTOM_REPRO_FASTPATH`` environment variable selects the engine at
*construction* time — ``CPU``/``MemorySystem`` read it once when built,
so flipping the variable mid-run has no effect on live objects.  Any
value other than ``0``/``false``/``off`` (or unset) enables the fast
path; the slow path exists purely as the differential-testing oracle.
"""

from __future__ import annotations

import os

ENV_VAR = "PHANTOM_REPRO_FASTPATH"

_DISABLED = ("0", "false", "off", "no")


def fastpath_enabled() -> bool:
    """True unless ``PHANTOM_REPRO_FASTPATH`` explicitly disables it."""
    return os.environ.get(ENV_VAR, "1").strip().lower() not in _DISABLED
