"""Fast-path execution gate.

The simulator ships two architecturally identical execution engines: the
naive per-step interpreter and a fast path built on compiled step thunks,
superblock compilation and translation memoization (see
``docs/performance.md``).  The ``PHANTOM_REPRO_FASTPATH`` environment
variable selects the engine at *construction* time — ``CPU``/
``MemorySystem`` read it once when built, so flipping the variable
mid-run has no effect on live objects.

Accepted values:

* unset, ``1`` or anything not listed below — fast path fully on;
* ``0`` / ``false`` / ``off`` / ``no`` — naive path (the
  differential-testing oracle);
* a comma-separated flag list selectively disabling fast-path layers
  while keeping the rest: ``superblocks=0`` (step thunks only, no
  superblock fusion), ``quiesce=0`` (ticked idle instead of
  event-skipped), or both (``superblocks=0,quiesce=0``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

ENV_VAR = "PHANTOM_REPRO_FASTPATH"

_DISABLED = ("0", "false", "off", "no")

#: Flags the selective syntax understands.
_FLAGS = ("superblocks", "quiesce")


@dataclass(frozen=True)
class FastpathConfig:
    """Parsed engine selection.

    ``enabled`` picks the engine; the layer flags only matter when the
    fast path is on (the naive engine never fuses superblocks, and both
    engines must agree on idle semantics — quiescence skipping is
    behaviour-neutral by construction, pinned by
    ``tests/pipeline/test_quiescence.py``).
    """

    enabled: bool = True
    superblocks: bool = True
    quiesce: bool = True


def parse_fastpath(value: str | None) -> FastpathConfig:
    """Parse one ``PHANTOM_REPRO_FASTPATH`` value (None = unset)."""
    if value is None:
        return FastpathConfig()
    text = value.strip().lower()
    if not text:
        return FastpathConfig()
    if text in _DISABLED:
        return FastpathConfig(enabled=False, superblocks=False,
                              quiesce=False)
    flags = {"superblocks": True, "quiesce": True}
    saw_flag = False
    for part in text.split(","):
        part = part.strip()
        if "=" not in part:
            continue
        name, _, raw = part.partition("=")
        name = name.strip()
        if name in _FLAGS:
            saw_flag = True
            flags[name] = raw.strip() not in _DISABLED
    if not saw_flag and text != "1":
        # Unknown non-flag value: historical behaviour is "anything not
        # explicitly disabling enables the fast path".
        return FastpathConfig()
    return FastpathConfig(enabled=True, **flags)


def fastpath_config() -> FastpathConfig:
    """The engine configuration the environment selects."""
    return parse_fastpath(os.environ.get(ENV_VAR))


def fastpath_enabled() -> bool:
    """True unless ``PHANTOM_REPRO_FASTPATH`` explicitly disables it."""
    return fastpath_config().enabled
