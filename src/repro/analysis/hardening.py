"""Software mitigations from §2.4/§8.2, as code-generation helpers.

* :func:`emit_lfence_guard` — the compiler mitigation of placing a
  speculation barrier behind a conditional branch; the corpus generator
  uses it for "hardened" builds and :mod:`repro.analysis.gadgets`
  models its effect on speculative paths.
* :func:`emit_retpoline` — Turner's retpoline [64]: replace an indirect
  branch with a construct that captures speculation in a safe infinite
  loop.  The thunk works natively on the simulated CPU: the ``ret``'s
  RSB prediction points at the capture loop (whose ``lfence`` stops any
  transient progress) while the architectural target comes from the
  stack the thunk just rewrote.
"""

from __future__ import annotations

import itertools

from ..isa import Assembler, Reg

_counter = itertools.count()


def emit_lfence_guard(asm: Assembler) -> None:
    """Barrier after a conditional branch (call directly after jcc)."""
    asm.lfence()


def emit_retpoline(asm: Assembler, target_reg: Reg) -> dict[str, int]:
    """Emit a retpoline for ``jmp *target_reg`` at the current pc.

    Layout (as in the Linux/retpoline construction)::

        call  load_target
      capture:
        lfence            ; speculation lands here and is fenced
        jmp   capture
      load_target:
        mov   [rsp], reg  ; overwrite the return address
        ret               ; "returns" to the real target

    Returns the emitted labels (absolute addresses).
    """
    uid = next(_counter)
    call_label = f"__retpoline_load_{uid}"
    capture_label = f"__retpoline_capture_{uid}"
    start = asm.pc
    asm.call(call_label)
    capture = asm.label(capture_label)
    asm.lfence()
    asm.jmp(capture_label)
    load = asm.label(call_label)
    asm.store(Reg.RSP, 0, target_reg)
    asm.ret()
    return {"start": start, "capture": capture, "load_target": load}


def emit_retpoline_call(asm: Assembler, target_reg: Reg) -> dict[str, int]:
    """Retpoline for ``call *target_reg``: a direct call to a thunk that
    performs the retpolined jump, so the return address of the original
    call site is pushed first."""
    uid = next(_counter)
    thunk_label = f"__retpoline_thunk_{uid}"
    skip_label = f"__retpoline_skip_{uid}"
    start = asm.pc
    asm.call(thunk_label)
    asm.jmp(skip_label)
    asm.label(thunk_label)
    labels = emit_retpoline(asm, target_reg)
    asm.label(skip_label)
    return {"start": start, **labels}
