"""Binary rewriting with relocation: apply mitigations to existing code.

The hardening transforms of §2.4/§8.2 are compiler passes on real
systems; this module applies them to already-assembled functions:

* **lift** — decode the function into an instruction list, turning
  intra-function PC-relative branches into label references;
* **transform** — insert barriers / replace indirect branches;
* **emit** — reassemble at a (possibly new) base with every displaced
  branch fixed up.  Out-of-function direct targets are preserved as
  absolute addresses, so rewritten functions keep calling their
  original callees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import Assembler, BranchKind, Image, Instruction, Mnemonic
from .disasm import DecodedInstr, Disassembler
from .hardening import emit_retpoline, emit_retpoline_call

_PCREL = frozenset({Mnemonic.JMP, Mnemonic.JMP_SHORT, Mnemonic.JCC,
                    Mnemonic.CALL})


@dataclass
class RewriteItem:
    """One instruction of the function being rewritten.

    ``label`` names this position for intra-function branch fixups;
    ``local_target`` is set when the original instruction branches to
    another instruction *inside* the function, ``absolute_target`` when
    it leaves the function.  ``retpoline`` marks indirect branches the
    emitter must expand into thunks.
    """

    original: Instruction
    label: str
    local_target: str | None = None
    absolute_target: int | None = None
    retpoline: bool = False


@dataclass
class FunctionCode:
    """A decoded function ready for transformation."""

    entry: int
    items: list[RewriteItem] = field(default_factory=list)

    def mnemonics(self) -> list[Mnemonic]:
        return [item.original.mnemonic for item in self.items]


def lift_function(image: Image, entry: int, *,
                  max_bytes: int = 4096) -> FunctionCode:
    """Linear-sweep decode of a self-contained function at *entry*.

    The sweep continues past a ``ret`` while earlier branches target
    bytes beyond it (multi-exit functions); branches leaving the swept
    range keep absolute targets.
    """
    disasm = Disassembler(image)
    decoded: list[DecodedInstr] = []
    pc = entry
    pending_targets: set[int] = set()
    while pc < entry + max_bytes:
        instr = disasm.instruction_at(pc)
        if instr is None:
            break
        decoded.append(instr)
        if instr.kind in (BranchKind.DIRECT, BranchKind.CONDITIONAL,
                          BranchKind.CALL_DIRECT):
            target = instr.target()
            if entry <= target < entry + max_bytes:
                pending_targets.add(target)
        pc = instr.end
        if instr.instr.mnemonic in (Mnemonic.RET, Mnemonic.HLT) \
                and not any(t >= pc for t in pending_targets):
            break
    starts = {d.pc for d in decoded}
    code = FunctionCode(entry=entry)
    for d in decoded:
        item = RewriteItem(original=d.instr, label=f"pc_{d.pc:x}")
        if d.instr.mnemonic in _PCREL:
            target = d.target()
            if target in starts:
                item.local_target = f"pc_{target:x}"
            else:
                item.absolute_target = target
        code.items.append(item)
    return code


def insert_lfence_after_conditionals(code: FunctionCode) -> FunctionCode:
    """§8.2: place a speculation barrier on both sides of every jcc.

    The not-taken side gets an lfence directly after the branch; the
    taken side gets one at each conditional-branch target (which takes
    over the target's label so branches land on the fence first).
    """
    taken_labels = {item.local_target for item in code.items
                    if item.original.mnemonic is Mnemonic.JCC
                    and item.local_target}
    out = FunctionCode(entry=code.entry)
    fence_id = 0
    for item in code.items:
        if item.label in taken_labels:
            out.items.append(RewriteItem(
                original=Instruction(Mnemonic.LFENCE), label=item.label))
            item = RewriteItem(original=item.original,
                               label=f"{item.label}_post",
                               local_target=item.local_target,
                               absolute_target=item.absolute_target,
                               retpoline=item.retpoline)
        out.items.append(item)
        if item.original.mnemonic is Mnemonic.JCC:
            out.items.append(RewriteItem(
                original=Instruction(Mnemonic.LFENCE),
                label=f"__fence_{fence_id}"))
            fence_id += 1
    return out


def retpoline_indirect_branches(code: FunctionCode) -> FunctionCode:
    """§2.4: mark ``jmp *reg`` / ``call *reg`` for retpoline expansion."""
    out = FunctionCode(entry=code.entry)
    for item in code.items:
        if item.original.mnemonic in (Mnemonic.JMP_REG, Mnemonic.CALL_REG):
            out.items.append(RewriteItem(original=item.original,
                                         label=item.label, retpoline=True))
        else:
            out.items.append(item)
    return out


def emit_function(code: FunctionCode, base: int) -> Image:
    """Reassemble *code* at *base*, fixing up every displacement."""
    asm = Assembler(base)
    for item in code.items:
        asm.label(item.label)
        instr = item.original
        if item.retpoline:
            if instr.mnemonic is Mnemonic.JMP_REG:
                emit_retpoline(asm, instr.dest)
            else:
                emit_retpoline_call(asm, instr.dest)
            continue
        m = instr.mnemonic
        if m in _PCREL:
            target = item.local_target if item.local_target is not None \
                else item.absolute_target
            if m in (Mnemonic.JMP, Mnemonic.JMP_SHORT):
                # Short jumps are re-emitted near: insertions may have
                # pushed their targets out of rel8 range.
                asm.jmp(target)
            elif m is Mnemonic.JCC:
                asm.jcc(instr.cc, target)
            else:
                asm.call(target)
        else:
            asm.emit(instr)
    segment, _ = asm.finish()
    image = Image()
    image.add(segment)
    return image


def harden_function(image: Image, entry: int, new_base: int, *,
                    lfence: bool = True,
                    retpoline: bool = True) -> Image:
    """Lift, transform, re-emit: the full §8.2 hardening pipeline."""
    code = lift_function(image, entry)
    if lfence:
        code = insert_lfence_after_conditionals(code)
    if retpoline:
        code = retpoline_indirect_branches(code)
    return emit_function(code, new_base)
